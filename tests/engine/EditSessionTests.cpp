//===- tests/engine/EditSessionTests.cpp ----------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// engine::EditSession — the incremental re-analysis loop. Each test
/// replays a short edit script and checks the two contracts: every
/// revision renders the bytes a cold solve of that source renders, and
/// the per-revision counters (cache_cross_rev_hits, cache_dep_misses,
/// impls_invalidated) describe exactly the reuse and invalidation the
/// edit caused.
///
//===----------------------------------------------------------------------===//

#include "engine/EditSession.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace argus;
using namespace argus::engine;

namespace {

// One impl per (trait, head) of interest. The edit below flips the
// `impl Show for A;` line to `impl Show for B;` — same length, so every
// goal keeps its source span and stale entries are found by key and
// killed by the dependency check, not by span drift. The Stable goal
// never consults a Show slice, so it must survive every edit.
const char BaseSource[] = "struct A;\n"
                          "struct B;\n"
                          "struct Wrap<T>;\n"
                          "trait Show;\n"
                          "trait Stable;\n"
                          "impl Show for A;\n"
                          "impl<T> Show for Wrap<T> where T: Show;\n"
                          "impl Stable for A;\n"
                          "goal Wrap<A>: Show;\n"
                          "goal A: Stable;\n";

std::string editedSource() {
  std::string Edited = BaseSource;
  size_t Pos = Edited.find("impl Show for A;");
  EXPECT_NE(Pos, std::string::npos);
  Edited.replace(Pos, 16, "impl Show for B;");
  return Edited;
}

/// The byte-level artifact diffed against a cold solve.
std::string renderAll(engine::Session &S) {
  if (!S.parseOk())
    return S.parseErrorText();
  std::string Out;
  for (size_t T = 0; T != S.numTrees(); ++T) {
    Out += S.diagnosticText(T) + "\n";
    Out += S.bottomUpText(T) + "\n";
    Out += S.treeJSON(T) + "\n";
  }
  return Out.empty() ? "ok" : Out;
}

/// Origins carry the session name, so the cold comparison session must
/// share the edit session's name for the bytes to be comparable.
const char SessionName[] = "edit";

std::string coldRender(const std::string &Source) {
  engine::Session S(SessionName, Source, SessionOptions());
  return renderAll(S);
}

/// Default SessionOptions leave the cache off (the EditSession then
/// solves every revision cold); incremental tests opt in explicitly.
SessionOptions cached() {
  SessionOptions Opts;
  Opts.Cache = CacheMode::Shared;
  return Opts;
}

} // namespace

TEST(EditSession, StartsEmpty) {
  EditSession Edit(SessionName, cached());
  EXPECT_EQ(Edit.revision(), 0u);
  EXPECT_EQ(Edit.current(), nullptr);
  EXPECT_EQ(Edit.cache().size(), 0u);
}

TEST(EditSession, IdenticalRevisionReplaysFromCache) {
  EditSession Edit(SessionName, cached());
  // Solving is lazy: each revision must be driven (rendered) before the
  // next apply(), or its results are never published to the cache.
  engine::Session &R1 = Edit.apply(BaseSource);
  EXPECT_EQ(Edit.revision(), 1u);
  EXPECT_EQ(renderAll(R1), coldRender(BaseSource));
  EXPECT_EQ(R1.stats().ImplsInvalidated, 0u);
  EXPECT_EQ(R1.stats().CacheCrossRevHits, 0u);

  engine::Session &R2 = Edit.apply(BaseSource);
  EXPECT_EQ(Edit.revision(), 2u);
  EXPECT_EQ(renderAll(R2), coldRender(BaseSource));
  EXPECT_EQ(R2.stats().ImplsInvalidated, 0u);
  EXPECT_GT(R2.stats().CacheCrossRevHits, 0u)
      << "an unchanged revision must be served by the previous one";
}

TEST(EditSession, EditInvalidatesExactlyTheDependentGoals) {
  std::string Edited = editedSource();
  const std::string ColdBase = coldRender(BaseSource);
  const std::string ColdEdited = coldRender(Edited);
  ASSERT_NE(ColdBase, ColdEdited) << "the edit must be observable";

  EditSession Edit(SessionName, cached());

  engine::Session &R1 = Edit.apply(BaseSource);
  EXPECT_EQ(renderAll(R1), ColdBase);
  EXPECT_EQ(R1.stats().ImplsInvalidated, 0u) << "no previous revision";
  EXPECT_EQ(R1.stats().CacheCrossRevHits, 0u);

  // Rev 2: one impl edited in place. The Show goals re-solve (their
  // entries dep on the changed slice); the Stable goal replays.
  engine::Session &R2 = Edit.apply(Edited);
  EXPECT_EQ(renderAll(R2), ColdEdited);
  EXPECT_EQ(R2.stats().ImplsInvalidated, 1u);
  EXPECT_GT(R2.stats().CacheDepMisses, 0u)
      << "stale Show entries must be found and rejected by dep check";
  EXPECT_GT(R2.stats().CacheCrossRevHits, 0u)
      << "the Stable goal never saw the edited slice and must replay";

  // Rev 3 reverts: rev 1's entries are valid again verbatim.
  engine::Session &R3 = Edit.apply(BaseSource);
  EXPECT_EQ(renderAll(R3), ColdBase);
  EXPECT_EQ(R3.stats().ImplsInvalidated, 1u);
  EXPECT_GT(R3.stats().CacheCrossRevHits, 0u)
      << "reverting must resurrect the original entries";
}

TEST(EditSession, CacheModeOffSolvesEveryRevisionCold) {
  SessionOptions Opts;
  Opts.Cache = CacheMode::Off;
  EditSession Edit(SessionName, Opts);
  engine::Session &R1 = Edit.apply(BaseSource);
  engine::Session &R2 = Edit.apply(BaseSource);
  EXPECT_EQ(R2.stats().CacheHits, 0u);
  EXPECT_EQ(R2.stats().CacheCrossRevHits, 0u);
  EXPECT_EQ(Edit.cache().size(), 0u);
  EXPECT_EQ(renderAll(R2), coldRender(BaseSource));
  (void)R1;
}

TEST(EditSession, ParseFailureIsARevisionToo) {
  EditSession Edit(SessionName, cached());
  engine::Session &R1 = Edit.apply(BaseSource);
  EXPECT_TRUE(R1.parseOk());
  EXPECT_EQ(renderAll(R1), coldRender(BaseSource));
  engine::Session &R2 = Edit.apply("struct ;;; nonsense");
  EXPECT_FALSE(R2.parseOk());
  EXPECT_EQ(Edit.revision(), 2u);
  // Recovering re-analyzes cleanly; the cache survived the bad revision.
  engine::Session &R3 = Edit.apply(BaseSource);
  EXPECT_TRUE(R3.parseOk());
  EXPECT_EQ(renderAll(R3), coldRender(BaseSource));
  EXPECT_GT(R3.stats().CacheCrossRevHits, 0u)
      << "rev 1 entries must survive an unparseable intermediate state";
}

TEST(EditSession, RestartResumesFromPersistedCache) {
  // The save-on-exit / load-on-start loop: revisions 1-4 in one
  // EditSession, saveCache, then a brand-new EditSession (the restarted
  // process) loads the image and replays revisions 5-8. Every revision
  // matches its cold render byte for byte, the restarted session's
  // first revision is served by entries no live session of its own
  // recorded, and the pending load outcome is stamped onto that
  // revision's stats.
  std::string Path = testing::TempDir() + "argus_edit_restart.gc";
  std::string Edited = editedSource();
  const std::string Script[] = {BaseSource, Edited, BaseSource, Edited};

  {
    EditSession Edit(SessionName, cached());
    for (const std::string &Src : Script)
      EXPECT_EQ(renderAll(Edit.apply(Src)), coldRender(Src));
    std::string Error;
    ASSERT_TRUE(Edit.saveCache(Path, nullptr, &Error)) << Error;
  }

  EditSession Restarted(SessionName, cached());
  Restarted.loadCache(Path);
  for (size_t R = 0; R != 4; ++R) {
    engine::Session &S = Restarted.apply(Script[R % 2 == 0 ? 0 : 1]);
    EXPECT_EQ(renderAll(S), coldRender(Script[R % 2 == 0 ? 0 : 1]));
    if (R == 0) {
      EXPECT_GT(S.stats().CacheDiskEntriesLoaded, 0u)
          << "the load outcome must be stamped on the next revision";
      EXPECT_EQ(S.stats().CacheLoadRejects, 0u);
      EXPECT_GT(S.stats().CacheDiskHits, 0u)
          << "revision 1 after restart must replay from disk entries";
      EXPECT_GT(S.stats().CacheCrossRevHits, 0u);
    }
  }
  std::remove(Path.c_str());

  // A mangled image degrades the restart to a cold start: rejection is
  // stamped, nothing is resident, output is still exact.
  EditSession ColdStart(SessionName, cached());
  ColdStart.loadCache(Path); // Deleted above: IoError.
  engine::Session &S = ColdStart.apply(BaseSource);
  EXPECT_EQ(renderAll(S), coldRender(BaseSource));
  EXPECT_EQ(S.stats().CacheDiskEntriesLoaded, 0u);
  EXPECT_EQ(S.stats().CacheLoadRejects, 1u);
  EXPECT_EQ(S.stats().CacheDiskHits, 0u);
}
