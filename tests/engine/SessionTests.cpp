//===- tests/engine/SessionTests.cpp --------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine::Session contract: stages run lazily and cache, the
/// SessionStats counters agree with the underlying components' own
/// statistics, timings are populated, and the stats serialize to the
/// JSON shape the CLI's --trace emitter documents.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "engine/Session.h"

#include <gtest/gtest.h>

using namespace argus;
using namespace argus::engine;

namespace {

const CorpusEntry &entry(const char *Id) {
  for (const CorpusEntry &Candidate : evaluationSuite())
    if (Candidate.Id == Id)
      return Candidate;
  ADD_FAILURE() << "missing corpus entry " << Id;
  return evaluationSuite().front();
}

engine::Session bevySession() {
  const CorpusEntry &Entry = entry("bevy-resmut-missing");
  return engine::Session(Entry.Id, Entry.Source);
}

} // namespace

TEST(EngineSession, StagesAreLazy) {
  engine::Session S = bevySession();
  const SessionStats &Stats = S.stats();
  EXPECT_FALSE(Stats.ran(Stage::Parse));
  EXPECT_FALSE(Stats.ran(Stage::Solve));

  S.parse();
  EXPECT_TRUE(Stats.ran(Stage::Parse));
  EXPECT_FALSE(Stats.ran(Stage::Solve));

  // Asking for a tree forces every prerequisite.
  S.tree(0);
  EXPECT_TRUE(Stats.ran(Stage::Solve));
  EXPECT_TRUE(Stats.ran(Stage::Extract));
  EXPECT_FALSE(Stats.ran(Stage::Analyze));
}

TEST(EngineSession, StagesCacheAndReturnStableReferences) {
  engine::Session S = bevySession();
  const SolveOutcome &First = S.solve();
  const SolveOutcome &Second = S.solve();
  EXPECT_EQ(&First, &Second);
  EXPECT_EQ(S.stats().StageRuns[static_cast<size_t>(Stage::Solve)], 1u);

  const InertiaResult &Inertia = S.inertia(0);
  EXPECT_EQ(&Inertia, &S.inertia(0));
  EXPECT_EQ(S.stats().StageRuns[static_cast<size_t>(Stage::Analyze)], 1u);
}

TEST(EngineSession, CountersMatchComponentStatistics) {
  engine::Session S = bevySession();
  S.inertia(0);
  const SessionStats &Stats = S.stats();
  const SolveOutcome &Out = S.solve();

  EXPECT_EQ(Stats.ParseErrors, 0u);
  EXPECT_EQ(Stats.GoalEvaluations, Out.NumEvaluations);
  EXPECT_EQ(Stats.MemoHits, Out.NumMemoHits);
  EXPECT_EQ(Stats.FixpointRounds, Out.RoundsUsed);
  EXPECT_GT(Stats.GoalEvaluations, 0u);

  EXPECT_EQ(Stats.TreesExtracted, S.numTrees());
  size_t Goals = 0;
  for (size_t I = 0; I != S.numTrees(); ++I)
    Goals += S.tree(I).numGoals();
  EXPECT_EQ(Stats.TreeGoals, Goals);

  EXPECT_EQ(Stats.FailedLeaves, S.inertia(0).Order.size());
  EXPECT_EQ(Stats.DNFConjuncts, S.inertia(0).MCS.size());
  EXPECT_GT(Stats.FailedLeaves, 0u);
}

TEST(EngineSession, TimingsArePopulated) {
  engine::Session S = bevySession();
  S.inertia(0);
  S.diagnosticText(0);
  const SessionStats &Stats = S.stats();
  for (Stage St : {Stage::Parse, Stage::Solve, Stage::Extract,
                   Stage::Analyze, Stage::Render}) {
    EXPECT_TRUE(Stats.ran(St)) << stageName(St);
    EXPECT_GT(Stats.secondsFor(St), 0.0) << stageName(St);
  }
  EXPECT_GE(Stats.totalSeconds(),
            Stats.secondsFor(Stage::Solve) +
                Stats.secondsFor(Stage::Extract));
}

TEST(EngineSession, FreshRunsDoNotDisturbTheCache) {
  engine::Session S = bevySession();
  const SolveOutcome &Cached = S.solve();
  uint64_t EvalsBefore = S.stats().GoalEvaluations;

  SolveOutcome Fresh = S.solveFresh();
  EXPECT_EQ(Fresh.NumEvaluations, Cached.NumEvaluations);
  EXPECT_EQ(&S.solve(), &Cached);
  EXPECT_EQ(S.stats().GoalEvaluations, EvalsBefore);

  size_t CachedSize = S.tree(0).size();
  size_t TreesBefore = S.stats().TreesExtracted;
  Extraction Fuller = S.extractFresh([] {
    ExtractOptions O;
    O.ShowInternal = true;
    O.ElideStatefulNodes = false;
    return O;
  }());
  EXPECT_GE(Fuller.Trees.at(0).size(), CachedSize);
  EXPECT_EQ(S.stats().TreesExtracted, TreesBefore);
}

TEST(EngineSession, InertiaWithMatchesDefaultWeights) {
  engine::Session S = bevySession();
  InertiaResult Custom =
      S.inertiaWith(0, [&](const GoalKind &K) { return K.weight(); });
  EXPECT_EQ(Custom.Order, S.inertia(0).Order);
}

TEST(EngineSession, ParseFailureIsReported) {
  engine::Session S("broken.tl", "struct ;;; nonsense");
  EXPECT_FALSE(S.parseOk());
  EXPECT_GT(S.stats().ParseErrors, 0u);
  std::string Text = S.parseErrorText();
  EXPECT_NE(Text.find("broken.tl"), std::string::npos);
}

TEST(EngineSession, OpenRejectsMissingFiles) {
  EXPECT_FALSE(engine::Session::open("/nonexistent/missing.tl").has_value());
}

TEST(EngineSession, StatsSerializeToTraceJSON) {
  engine::Session S = bevySession();
  S.inertia(0);
  std::string JSON = S.stats().toJSON(/*Pretty=*/true);
  EXPECT_NE(JSON.find("\"name\": \"bevy-resmut-missing\""),
            std::string::npos);
  for (const char *Key :
       {"\"stages\"", "\"parse\"", "\"solve\"", "\"extract\"",
        "\"analyze\"", "\"seconds\"", "\"runs\"", "\"counters\"",
        "\"goal_evaluations\"", "\"fixpoint_rounds\"",
        "\"trees_extracted\"", "\"dnf_conjuncts\""})
    EXPECT_NE(JSON.find(Key), std::string::npos) << Key;
}

TEST(EngineSession, RunsEveryCorpusEntry) {
  // The whole evaluation suite goes through the unified pipeline; every
  // entry parses, solves with errors, and yields at least one tree.
  for (const CorpusEntry &Entry : evaluationSuite()) {
    engine::Session S(Entry.Id, Entry.Source);
    EXPECT_TRUE(S.parseOk()) << Entry.Id;
    EXPECT_TRUE(S.hasTraitErrors()) << Entry.Id;
    ASSERT_GE(S.numTrees(), 1u) << Entry.Id;
    EXPECT_FALSE(S.diagnosticText(0).empty()) << Entry.Id;
  }
}
