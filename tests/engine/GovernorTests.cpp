//===- tests/engine/GovernorTests.cpp -------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resource-governance contract: budgets stop stages exactly at
/// their ceilings, deadlines degrade to partial results instead of
/// hanging, every FailureCode is reachable through deterministic fault
/// injection and serializes through the stats trace, and a governed
/// batch never perturbs the bytes of its non-failing sibling jobs —
/// including the ISSUE acceptance case of one pathological DNF/solver
/// blowup inside an 8-thread batch.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "engine/Batch.h"
#include "engine/Session.h"
#include "solver/CachePersist.h"
#include "solver/GoalCache.h"
#include "support/FaultInjector.h"
#include "support/Governance.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <set>
#include <string>

using namespace argus;
using namespace argus::engine;

namespace {

const CorpusEntry &firstCorpusEntry() { return evaluationSuite().front(); }

const CorpusEntry &stressEntry(const char *Id) {
  for (const CorpusEntry &Entry : stressSuite())
    if (Entry.Id == Id)
      return Entry;
  ADD_FAILURE() << "no stress entry " << Id;
  return stressSuite().front();
}

/// Worker used wherever the tests compare outputs byte for byte.
std::string fullPipeline(engine::Session &S) {
  if (!S.parseOk())
    return S.parseErrorText();
  if (S.numTrees() == 0)
    return "ok";
  return S.diagnosticText(0) + "\n" + S.bottomUpText(0) + "\n" +
         S.treeJSON(0);
}

/// Drives every stage of one Session; returns the recorded failures.
const std::vector<Failure> &driveAll(engine::Session &S) {
  if (S.parseOk() && S.hasTraitErrors() && S.numTrees() != 0) {
    (void)S.inertia(0);
    (void)S.bottomUpText(0);
  }
  return S.stats().Failures;
}

SessionOptions injecting(const char *Sites) {
  SessionOptions Opts;
  Opts.Faults.Sites = Sites;
  return Opts;
}

bool hasFailure(const std::vector<Failure> &Failures, FailureCode Code,
                Stage At) {
  for (const Failure &F : Failures)
    if (F.Code == Code && F.At == At)
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// ExecutionBudget
//===----------------------------------------------------------------------===//

TEST(ExecutionBudget, UnarmedBudgetNeverStops) {
  ExecutionBudget Budget;
  for (int I = 0; I != 1000; ++I)
    EXPECT_FALSE(Budget.tick());
  EXPECT_FALSE(Budget.stopped());
  EXPECT_EQ(Budget.reason(), StopReason::None);
}

TEST(ExecutionBudget, WorkCeilingTripsExactly) {
  // The ceiling is the allowed work: exactly WorkCeiling units pass, the
  // next one trips — deterministically, no clock involved.
  ExecutionBudget Budget;
  Budget.armStage(/*DeadlineSeconds=*/0.0, /*WorkCeiling=*/10);
  for (uint64_t I = 0; I != 10; ++I)
    EXPECT_FALSE(Budget.tick()) << "tick " << I;
  EXPECT_TRUE(Budget.tick());
  EXPECT_EQ(Budget.stageReason(), StopReason::WorkExceeded);
  EXPECT_TRUE(Budget.stopped());
}

TEST(ExecutionBudget, ArmStageClearsStageScopedStops) {
  ExecutionBudget Budget;
  Budget.armStage(0.0, 5);
  while (!Budget.tick())
    ;
  EXPECT_TRUE(Budget.stopped());
  Budget.armStage(0.0, 0); // Next stage: unlimited.
  EXPECT_FALSE(Budget.stopped());
  EXPECT_FALSE(Budget.tick());
}

TEST(ExecutionBudget, CancelIsStickyAcrossStages) {
  ExecutionBudget Budget;
  Budget.cancel();
  // cancel() may come from another thread; the owner observes it at its
  // next poll — stopped() polls immediately, tick() within 64 units.
  EXPECT_TRUE(Budget.stopped());
  bool Tripped = false;
  for (int I = 0; I != 64 && !Tripped; ++I)
    Tripped = Budget.tick();
  EXPECT_TRUE(Tripped);
  Budget.armStage(0.0, 0);
  EXPECT_TRUE(Budget.stopped()) << "job-level stops survive re-arming";
  EXPECT_EQ(Budget.jobReason(), StopReason::Cancelled);
}

TEST(ExecutionBudget, FirstCancelReasonWins) {
  ExecutionBudget Budget;
  Budget.cancel(StopReason::DeadlineExceeded);
  Budget.cancel(StopReason::Cancelled);
  EXPECT_EQ(Budget.jobReason(), StopReason::DeadlineExceeded);
}

TEST(ExecutionBudget, JobDeadlineTripsDuringTicks) {
  ExecutionBudget Budget;
  Budget.armJob(/*DeadlineSeconds=*/0.02);
  auto Start = std::chrono::steady_clock::now();
  bool Stopped = false;
  // 50M iterations would take far longer than 20ms; the deadline must
  // break us out long before that.
  for (uint64_t I = 0; I != 50000000 && !Stopped; ++I)
    Stopped = Budget.tick();
  EXPECT_TRUE(Stopped);
  EXPECT_EQ(Budget.jobReason(), StopReason::DeadlineExceeded);
  EXPECT_LT(std::chrono::duration<double>(
                std::chrono::steady_clock::now() - Start)
                .count(),
            10.0);
}

//===----------------------------------------------------------------------===//
// FaultInjector
//===----------------------------------------------------------------------===//

TEST(FaultInjectorTest, DisabledInjectorNeverFires) {
  FaultInjector Faults("", 0);
  EXPECT_FALSE(Faults.enabled());
  EXPECT_FALSE(Faults.shouldFail("solve.overflow", "job"));
  EXPECT_EQ(Faults.fired(), 0u);
}

TEST(FaultInjectorTest, MatchesListedSitesOnly) {
  FaultInjector Faults("solve.overflow, dnf.truncate", 0);
  EXPECT_TRUE(Faults.shouldFail("solve.overflow", "job"));
  EXPECT_TRUE(Faults.shouldFail("dnf.truncate", "job"));
  EXPECT_FALSE(Faults.shouldFail("parse.error", "job"));
  EXPECT_EQ(Faults.fired(), 2u);
}

TEST(FaultInjectorTest, AllWildcardMatchesEverySite) {
  FaultInjector Faults("all", 7);
  EXPECT_TRUE(Faults.shouldFail("parse.error", "a"));
  EXPECT_TRUE(Faults.shouldFail("worker.panic", "b"));
}

TEST(FaultInjectorTest, ProbabilisticDrawsAreDeterministic) {
  // Same seed, same (site, scope) → same decision, regardless of call
  // order; this is what makes injected batches reproducible at any
  // thread count.
  FaultInjector A("all", 42, 0.5);
  FaultInjector B("all", 42, 0.5);
  bool SawFire = false, SawSkip = false;
  for (int I = 0; I != 64; ++I) {
    std::string Scope = "job-" + std::to_string(I);
    bool FiredA = A.shouldFail("solve.overflow", Scope);
    SawFire |= FiredA;
    SawSkip |= !FiredA;
    EXPECT_EQ(FiredA, B.shouldFail("solve.overflow", Scope)) << Scope;
  }
  EXPECT_TRUE(SawFire);
  EXPECT_TRUE(SawSkip);
}

//===----------------------------------------------------------------------===//
// Failure taxonomy and exit codes
//===----------------------------------------------------------------------===//

TEST(FailureTaxonomy, ExitCodeTable) {
  EXPECT_EQ(exitCodeFor(FailureCode::None), 0);
  EXPECT_EQ(exitCodeFor(FailureCode::ParseError), 2);
  EXPECT_EQ(exitCodeFor(FailureCode::SolverOverflow), 3);
  EXPECT_EQ(exitCodeFor(FailureCode::DnfTruncated), 3);
  EXPECT_EQ(exitCodeFor(FailureCode::ExtractTruncated), 3);
  EXPECT_EQ(exitCodeFor(FailureCode::DeadlineExceeded), 3);
  EXPECT_EQ(exitCodeFor(FailureCode::WorkExceeded), 3);
  EXPECT_EQ(exitCodeFor(FailureCode::Cancelled), 3);
  EXPECT_EQ(exitCodeFor(FailureCode::WorkerPanic), 4);
}

TEST(FailureTaxonomy, EveryCodeHasADistinctName) {
  std::set<std::string> Names;
  for (size_t I = 0; I != NumFailureCodes; ++I)
    Names.insert(failureCodeName(static_cast<FailureCode>(I)));
  EXPECT_EQ(Names.size(), NumFailureCodes);
}

//===----------------------------------------------------------------------===//
// Fault-injection matrix: every code reachable, with the right stage
//===----------------------------------------------------------------------===//

TEST(FaultMatrix, ParseErrorInjection) {
  const CorpusEntry &Entry = firstCorpusEntry();
  engine::Session S(Entry.Id, Entry.Source, injecting("parse.error"));
  EXPECT_FALSE(S.parseOk());
  EXPECT_TRUE(hasFailure(S.stats().Failures, FailureCode::ParseError,
                         Stage::Parse));
  EXPECT_EQ(S.stats().exitCode(), 2);
  EXPECT_GE(S.stats().FaultsInjected, 1u);
}

TEST(FaultMatrix, SolverOverflowInjection) {
  const CorpusEntry &Entry = firstCorpusEntry();
  engine::Session S(Entry.Id, Entry.Source, injecting("solve.overflow"));
  const std::vector<Failure> &Failures = driveAll(S);
  EXPECT_TRUE(hasFailure(Failures, FailureCode::SolverOverflow,
                         Stage::Solve));
  EXPECT_EQ(S.stats().exitCode(), 3);
}

TEST(FaultMatrix, DnfTruncationInjection) {
  // Needs a program whose DNF actually exceeds the injected 1-conjunct
  // cap; the evaluation corpus is deliberately tiny there, so use the
  // DNF-dense stress program (cheap under the cap: truncation clips the
  // product early).
  const CorpusEntry &Entry = stressEntry("stress-dnf-dense");
  engine::Session S(Entry.Id, Entry.Source, injecting("dnf.truncate"));
  const std::vector<Failure> &Failures = driveAll(S);
  EXPECT_TRUE(hasFailure(Failures, FailureCode::DnfTruncated,
                         Stage::Analyze));
}

TEST(FaultMatrix, DnfTruncationDegradesIdenticallyAcrossKernels) {
  // Kernel dispatch must not change how governance degrades: under an
  // injected 1-conjunct cap, Auto and both forced kernels record the
  // same truncation failure, count a dispatch, and render byte-identical
  // truncated output (the cap keeps the smallest conjuncts of the same
  // sorted antichain regardless of kernel).
  const CorpusEntry &Entry = stressEntry("stress-dnf-dense");
  std::string Reference;
  for (DNFKernel Kernel :
       {DNFKernel::Auto, DNFKernel::Bitset, DNFKernel::Reference}) {
    SessionOptions Opts = injecting("dnf.truncate");
    Opts.Analysis.Kernel = Kernel;
    engine::Session S(Entry.Id, Entry.Source, Opts);
    const std::vector<Failure> &Failures = driveAll(S);
    EXPECT_TRUE(hasFailure(Failures, FailureCode::DnfTruncated,
                           Stage::Analyze))
        << static_cast<int>(Kernel);
    EXPECT_GT(S.stats().DNFTruncations, 0u) << static_cast<int>(Kernel);
    // driveAll analyzes tree 0 only: exactly one dispatch, forced iff
    // the kernel was pinned.
    uint64_t Analyzed = S.numTrees() != 0 ? 1u : 0u;
    EXPECT_EQ(S.stats().DispatchBitset + S.stats().DispatchReference,
              Analyzed)
        << static_cast<int>(Kernel);
    EXPECT_EQ(S.stats().DispatchForced,
              Kernel == DNFKernel::Auto ? 0u : Analyzed)
        << static_cast<int>(Kernel);
    std::string Out = fullPipeline(S);
    if (Kernel == DNFKernel::Auto)
      Reference = Out;
    else
      EXPECT_EQ(Out, Reference) << static_cast<int>(Kernel);
  }
}

TEST(FaultMatrix, ExtractTruncationInjection) {
  const CorpusEntry &Entry = firstCorpusEntry();
  engine::Session S(Entry.Id, Entry.Source, injecting("extract.truncate"));
  const std::vector<Failure> &Failures = driveAll(S);
  EXPECT_TRUE(hasFailure(Failures, FailureCode::ExtractTruncated,
                         Stage::Extract));
  EXPECT_GT(S.stats().TreeGoalsTruncated, 0u);
}

TEST(FaultMatrix, CoherenceDeadlineDegradesToUnindexedPath) {
  // A deadline hit mid-coherence — while the candidate index is being
  // built — must discard the partial index and degrade to the lazy scan
  // path: a structured Coherence-stage failure plus byte-identical
  // output, never a wrong (partially pruned) tree.
  const CorpusEntry &Entry = firstCorpusEntry();

  SessionOptions NoIndex;
  NoIndex.Solver.EnableCandidateIndex = false;
  engine::Session Unindexed(Entry.Id, Entry.Source, NoIndex);
  std::string Expected = fullPipeline(Unindexed);

  engine::Session S(Entry.Id, Entry.Source, injecting("coherence.deadline"));
  EXPECT_EQ(fullPipeline(S), Expected);
  EXPECT_TRUE(hasFailure(S.stats().Failures, FailureCode::DeadlineExceeded,
                         Stage::Coherence));
  // The discarded build leaves the solver on the lazy path: no prebuilt
  // buckets served, no impls pruned.
  EXPECT_EQ(S.stats().IndexBucketHits, 0u);
  EXPECT_EQ(S.stats().ImplsSubsumed, 0u);
  EXPECT_EQ(S.stats().exitCode(), 3);
}

TEST(FaultMatrix, CoherenceWorkCeilingDegradesToUnindexedPath) {
  // Same contract through a real (uninjected) ceiling: one work unit is
  // less than the index build's per-impl ticks, so the budget stops the
  // build partway through rather than at stage entry.
  const CorpusEntry &Entry = firstCorpusEntry();

  SessionOptions NoIndex;
  NoIndex.Solver.EnableCandidateIndex = false;
  engine::Session Unindexed(Entry.Id, Entry.Source, NoIndex);
  std::string Expected = fullPipeline(Unindexed);

  SessionOptions Opts;
  Opts.Limits.StageWorkCeiling[static_cast<size_t>(Stage::Coherence)] = 1;
  engine::Session S(Entry.Id, Entry.Source, Opts);
  EXPECT_EQ(fullPipeline(S), Expected);
  EXPECT_TRUE(hasFailure(S.stats().Failures, FailureCode::WorkExceeded,
                         Stage::Coherence));
  EXPECT_EQ(S.stats().IndexBucketHits, 0u);
  EXPECT_EQ(S.stats().ImplsSubsumed, 0u);
}

TEST(FaultMatrix, StageDeadlineInjection) {
  const CorpusEntry &Entry = firstCorpusEntry();
  engine::Session S(Entry.Id, Entry.Source, injecting("solve.deadline"));
  const std::vector<Failure> &Failures = driveAll(S);
  EXPECT_TRUE(hasFailure(Failures, FailureCode::DeadlineExceeded,
                         Stage::Solve));
  EXPECT_EQ(S.stats().DeadlineHits, 1u);
}

TEST(FaultMatrix, StageWorkInjection) {
  const CorpusEntry &Entry = firstCorpusEntry();
  engine::Session S(Entry.Id, Entry.Source, injecting("solve.work"));
  const std::vector<Failure> &Failures = driveAll(S);
  EXPECT_TRUE(
      hasFailure(Failures, FailureCode::WorkExceeded, Stage::Solve));
  EXPECT_EQ(S.stats().WorkCeilingHits, 1u);
}

TEST(FaultMatrix, CancellationInjection) {
  const CorpusEntry &Entry = firstCorpusEntry();
  engine::Session S(Entry.Id, Entry.Source, injecting("solve.cancel"));
  const std::vector<Failure> &Failures = driveAll(S);
  EXPECT_TRUE(hasFailure(Failures, FailureCode::Cancelled, Stage::Solve));
  EXPECT_GE(S.stats().Cancellations, 1u);
}

TEST(FaultMatrix, CacheRejectInjection) {
  // cache.reject forces every goal-cache insert to be rejected. The
  // rendering must not change (the cache only replays work, never
  // decides results), nothing may be published, and the site must only
  // be probed when a cache mode is active.
  const CorpusEntry &Entry = firstCorpusEntry();
  engine::Session Plain(Entry.Id, Entry.Source, SessionOptions());
  std::string PlainOut = fullPipeline(Plain);

  SessionOptions Opts = injecting("cache.reject");
  Opts.Cache = CacheMode::Session;
  engine::Session S(Entry.Id, Entry.Source, Opts);
  EXPECT_EQ(fullPipeline(S), PlainOut);
  EXPECT_EQ(S.stats().CacheInserts, 0u);
  EXPECT_GT(S.stats().CacheInsertsRejected, 0u);
  EXPECT_GE(S.stats().FaultsInjected, 1u);
  // No degradation: rejected inserts are invisible outside the counters.
  EXPECT_FALSE(S.stats().degraded());

  // With the cache off the site is never probed, so a site list naming
  // it must not perturb the injected-fault count of a cache-less run.
  engine::Session Off(Entry.Id, Entry.Source, injecting("cache.reject"));
  EXPECT_EQ(fullPipeline(Off), PlainOut);
  EXPECT_EQ(Off.stats().FaultsInjected, 0u);
  EXPECT_EQ(Off.stats().CacheInsertsRejected, 0u);
}

TEST(FaultMatrix, CacheDepMissInjection) {
  // cache.depmiss forces every dependency check to report a stale
  // entry, so a warm cache behaves as if every consulted impl had been
  // edited: zero hits, every lookup degrades to a cold solve of the
  // same subtree, and — because the dependency check only guards
  // replay, never decides results — the rendering is byte-identical
  // even with a live deadline ticking over the extra work.
  const CorpusEntry &Entry = firstCorpusEntry();
  engine::Session Plain(Entry.Id, Entry.Source, SessionOptions());
  std::string PlainOut = fullPipeline(Plain);

  GoalCache Shared;
  SessionOptions Warm;
  Warm.Cache = CacheMode::Shared;
  Warm.SharedCache = &Shared;
  engine::Session Warmup(Entry.Id, Entry.Source, Warm);
  EXPECT_EQ(fullPipeline(Warmup), PlainOut);
  EXPECT_GT(Shared.size(), 0u);

  SessionOptions Opts = injecting("cache.depmiss");
  Opts.Cache = CacheMode::Shared;
  Opts.SharedCache = &Shared;
  Opts.Limits.JobDeadlineSeconds = 5.0; // live, never fires
  engine::Session S(Entry.Id, Entry.Source, Opts);
  EXPECT_EQ(fullPipeline(S), PlainOut);
  EXPECT_EQ(S.stats().CacheHits, 0u)
      << "a forced dep miss must suppress every replay";
  EXPECT_GT(S.stats().CacheDepMisses, 0u);
  EXPECT_GE(S.stats().FaultsInjected, 1u);
  EXPECT_EQ(S.stats().DeadlineHits, 0u);
  EXPECT_FALSE(S.stats().degraded());

  // With the cache off the dependency check never runs, so the site is
  // never probed.
  engine::Session Off(Entry.Id, Entry.Source, injecting("cache.depmiss"));
  EXPECT_EQ(fullPipeline(Off), PlainOut);
  EXPECT_EQ(Off.stats().FaultsInjected, 0u);
  EXPECT_EQ(Off.stats().CacheDepMisses, 0u);
}

TEST(FaultMatrix, CacheIoInjection) {
  // cache.io fails the persisted-image read before any bytes arrive.
  // The load reports a structured IoError, the session is stamped with
  // cache_load_rejected, and the solve proceeds cold — byte-identical
  // to an uninjected cold run even with a live deadline ticking.
  const CorpusEntry &Entry = firstCorpusEntry();
  engine::Session Plain(Entry.Id, Entry.Source, SessionOptions());
  std::string PlainOut = fullPipeline(Plain);

  std::string Path = testing::TempDir() + "argus_governor_cache_io.gc";
  {
    GoalCache Warm;
    SessionOptions WarmOpts;
    WarmOpts.Cache = CacheMode::Shared;
    WarmOpts.SharedCache = &Warm;
    engine::Session Warmup(Entry.Id, Entry.Source, WarmOpts);
    EXPECT_EQ(fullPipeline(Warmup), PlainOut);
    ASSERT_TRUE(saveGoalCache(Warm, Path).Ok);
  }

  FaultInjector Io("cache.io", /*Seed=*/1);
  GoalCache Loaded;
  CacheLoadResult R = loadGoalCache(Loaded, Path, &Io, Path);
  EXPECT_EQ(R.Status, CacheLoadStatus::IoError);
  EXPECT_EQ(Loaded.size(), 0u);
  EXPECT_GE(Io.fired(), 1u);
  // The injected failure also abandons saves before the temp file.
  EXPECT_FALSE(saveGoalCache(Loaded, Path, &Io, Path).Ok);

  SessionOptions Opts;
  Opts.Cache = CacheMode::Shared;
  Opts.SharedCache = &Loaded;
  Opts.Limits.JobDeadlineSeconds = 5.0; // live, never fires
  engine::Session S(Entry.Id, Entry.Source, Opts);
  S.noteCacheLoad(R.EntriesLoaded, /*Rejected=*/true,
                  std::string(cacheLoadStatusName(R.Status)) + ": " +
                      R.Detail);
  EXPECT_EQ(fullPipeline(S), PlainOut);
  EXPECT_EQ(S.stats().CacheDiskHits, 0u);
  EXPECT_EQ(S.stats().CacheDiskEntriesLoaded, 0u);
  EXPECT_EQ(S.stats().CacheLoadRejects, 1u);
  EXPECT_EQ(S.stats().DeadlineHits, 0u);
  EXPECT_TRUE(
      hasFailure(S.stats().Failures, FailureCode::CacheLoadRejected,
                 Stage::Solve));
  std::remove(Path.c_str());
}

TEST(FaultMatrix, CacheLoadCorruptInjection) {
  // cache.load_corrupt flips one byte of the image after a successful
  // read, driving the checksum rejection end to end: structured
  // BadChecksum, nothing committed, and the solve under a live deadline
  // reproduces the uninjected cold bytes. The uninjected control load
  // of the same file proves the image itself was good.
  const CorpusEntry &Entry = firstCorpusEntry();
  engine::Session Plain(Entry.Id, Entry.Source, SessionOptions());
  std::string PlainOut = fullPipeline(Plain);

  std::string Path =
      testing::TempDir() + "argus_governor_cache_corrupt.gc";
  {
    GoalCache Warm;
    SessionOptions WarmOpts;
    WarmOpts.Cache = CacheMode::Shared;
    WarmOpts.SharedCache = &Warm;
    engine::Session Warmup(Entry.Id, Entry.Source, WarmOpts);
    (void)fullPipeline(Warmup);
    ASSERT_GT(Warm.size(), 0u);
    ASSERT_TRUE(saveGoalCache(Warm, Path).Ok);
  }

  GoalCache Control;
  ASSERT_TRUE(loadGoalCache(Control, Path, nullptr, {}).ok());
  ASSERT_GT(Control.size(), 0u);

  FaultInjector Corrupt("cache.load_corrupt", /*Seed=*/1);
  GoalCache Loaded;
  CacheLoadResult R = loadGoalCache(Loaded, Path, &Corrupt, Path);
  EXPECT_EQ(R.Status, CacheLoadStatus::BadChecksum);
  EXPECT_EQ(R.EntriesLoaded, 0u);
  EXPECT_EQ(Loaded.size(), 0u);
  EXPECT_GE(Corrupt.fired(), 1u);

  SessionOptions Opts;
  Opts.Cache = CacheMode::Shared;
  Opts.SharedCache = &Loaded;
  Opts.Limits.JobDeadlineSeconds = 5.0; // live, never fires
  engine::Session S(Entry.Id, Entry.Source, Opts);
  S.noteCacheLoad(R.EntriesLoaded, /*Rejected=*/true,
                  std::string(cacheLoadStatusName(R.Status)) + ": " +
                      R.Detail);
  EXPECT_EQ(fullPipeline(S), PlainOut);
  EXPECT_EQ(S.stats().CacheDiskHits, 0u);
  EXPECT_EQ(S.stats().CacheLoadRejects, 1u);
  EXPECT_EQ(S.stats().DeadlineHits, 0u);
  EXPECT_TRUE(
      hasFailure(S.stats().Failures, FailureCode::CacheLoadRejected,
                 Stage::Solve));

  // The same session shape against the control cache replays from disk
  // with identical bytes — the degradation above cost work, never
  // correctness.
  SessionOptions WarmOpts;
  WarmOpts.Cache = CacheMode::Shared;
  WarmOpts.SharedCache = &Control;
  engine::Session FromDisk(Entry.Id, Entry.Source, WarmOpts);
  EXPECT_EQ(fullPipeline(FromDisk), PlainOut);
  EXPECT_GT(FromDisk.stats().CacheDiskHits, 0u);
  std::remove(Path.c_str());
}

TEST(FaultMatrix, CancelledSolveNeverPoisonsASharedCache) {
  // A cancellation mid-solve must leave the shared cache exactly as it
  // was: no partial entries, and later sessions through the same cache
  // still reproduce clean bytes.
  const CorpusEntry &Entry = firstCorpusEntry();
  engine::Session Plain(Entry.Id, Entry.Source, SessionOptions());
  std::string PlainOut = fullPipeline(Plain);

  GoalCache Shared;
  SessionOptions Opts = injecting("solve.cancel");
  Opts.Cache = CacheMode::Shared;
  Opts.SharedCache = &Shared;
  engine::Session Cancelled(Entry.Id, Entry.Source, Opts);
  (void)driveAll(Cancelled);
  EXPECT_GE(Cancelled.stats().Cancellations, 1u);
  EXPECT_EQ(Cancelled.stats().CacheInserts, 0u);
  EXPECT_EQ(Shared.size(), 0u);

  SessionOptions Clean;
  Clean.Cache = CacheMode::Shared;
  Clean.SharedCache = &Shared;
  engine::Session After(Entry.Id, Entry.Source, Clean);
  EXPECT_EQ(fullPipeline(After), PlainOut);
}

TEST(FaultMatrix, WorkerPanicInjection) {
  std::vector<BatchJob> Jobs;
  for (const CorpusEntry &Entry : evaluationSuite())
    Jobs.push_back({Entry.Id, Entry.Source});
  std::vector<BatchResult> Results =
      BatchDriver(injecting("worker.panic"), 4).run(Jobs, fullPipeline);
  for (size_t I = 0; I != Results.size(); ++I) {
    EXPECT_TRUE(Results[I].failed()) << Jobs[I].Name;
    ASSERT_FALSE(Results[I].Stats.Failures.empty());
    EXPECT_EQ(Results[I].Stats.Failures.front().Code,
              FailureCode::WorkerPanic);
    // The panic fires before any stage runs, so it is attributed to the
    // earliest stage and names the job.
    EXPECT_NE(Results[I].Stats.Failures.front().Detail.find(Jobs[I].Name),
              std::string::npos);
    EXPECT_EQ(Results[I].Stats.exitCode(), 4);
  }
  EXPECT_EQ(BatchDriver::worstExitCode(Results), 4);
}

TEST(FaultMatrix, FailuresSerializeThroughStatsTrace) {
  const CorpusEntry &Entry = firstCorpusEntry();
  std::vector<BatchJob> Jobs = {{Entry.Id, Entry.Source}};
  std::vector<BatchResult> Results =
      BatchDriver(injecting("solve.overflow"), 1).run(Jobs, fullPipeline);
  std::string Trace = BatchDriver::statsTraceJSON(Results, 1);
  EXPECT_NE(Trace.find("\"failures\""), std::string::npos);
  EXPECT_NE(Trace.find("\"solver_overflow\""), std::string::npos);
  EXPECT_NE(Trace.find("\"solve\""), std::string::npos);
  EXPECT_NE(Trace.find("\"degraded\": true"), std::string::npos);
}

TEST(FaultMatrix, InjectionNeverChangesNonTargetedJobs) {
  // Fault scoped to one job by name: the other jobs' outputs must be
  // byte-identical to a fault-free batch. Probability 0.5 with a fixed
  // seed partitions jobs deterministically; we then check the clean
  // partition against an uninjected run.
  std::vector<BatchJob> Jobs;
  for (const CorpusEntry &Entry : evaluationSuite())
    Jobs.push_back({Entry.Id, Entry.Source});

  std::vector<BatchResult> Clean =
      BatchDriver(SessionOptions(), 1).run(Jobs, fullPipeline);

  SessionOptions Opts = injecting("solve.overflow");
  Opts.Faults.Seed = 42;
  Opts.Faults.Probability = 0.5;
  std::vector<BatchResult> Injected =
      BatchDriver(Opts, 8).run(Jobs, fullPipeline);

  size_t Hit = 0;
  for (size_t I = 0; I != Jobs.size(); ++I) {
    if (Injected[I].Stats.failed()) {
      ++Hit;
      continue;
    }
    EXPECT_EQ(Injected[I].Output, Clean[I].Output) << Jobs[I].Name;
  }
  EXPECT_GT(Hit, 0u) << "seed 42 at p=0.5 should hit at least one job";
  EXPECT_LT(Hit, Jobs.size()) << "and spare at least one";
}

//===----------------------------------------------------------------------===//
// Real deadlines on the stress corpus
//===----------------------------------------------------------------------===//

TEST(Deadlines, SolverBlowupDegradesInsteadOfHanging) {
  const CorpusEntry &Entry = stressEntry("stress-solve-blowup");
  SessionOptions Opts;
  Opts.Limits.JobDeadlineSeconds = 0.1;
  auto Start = std::chrono::steady_clock::now();
  engine::Session S(Entry.Id, Entry.Source, Opts);
  EXPECT_TRUE(S.parseOk());
  // Ungoverned, this solve burns the full 2M-evaluation budget; the
  // deadline must stop it in ~100ms. No throw, no hang — a partial
  // outcome plus a structured failure.
  EXPECT_NO_THROW((void)S.hasTraitErrors());
  double Elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  EXPECT_TRUE(hasFailure(S.stats().Failures, FailureCode::DeadlineExceeded,
                         Stage::Solve));
  EXPECT_EQ(S.stats().DeadlineHits, 1u);
  EXPECT_EQ(S.stats().exitCode(), 3);
  // Generous bound (sanitizers, loaded CI): the point is "not seconds".
  EXPECT_LT(Elapsed, 5.0);
  EXPECT_GT(S.stats().GoalEvaluations, 0u) << "partial work was recorded";
}

TEST(Deadlines, AcceptanceBatchSiblingsAreByteIdentical) {
  // The ISSUE acceptance case: a DNF/solver-dense program that cannot
  // finish inside a 100ms deadline rides along an 8-thread batch. It
  // must come back degraded (not hung, not thrown), and every sibling's
  // output must match a run without the pathological job byte for byte.
  std::vector<BatchJob> Siblings;
  for (const CorpusEntry &Entry : evaluationSuite())
    Siblings.push_back({Entry.Id, Entry.Source});

  std::vector<BatchResult> Baseline =
      BatchDriver(SessionOptions(), 1).run(Siblings, fullPipeline);

  std::vector<BatchJob> WithStress = Siblings;
  const CorpusEntry &Stress = stressEntry("stress-deadline-combined");
  WithStress.push_back({Stress.Id, Stress.Source});

  SessionOptions Opts;
  Opts.Limits.JobDeadlineSeconds = 0.1;
  std::vector<BatchResult> Governed =
      BatchDriver(Opts, 8).run(WithStress, fullPipeline);

  ASSERT_EQ(Governed.size(), Siblings.size() + 1);
  const BatchResult &StressResult = Governed.back();
  EXPECT_FALSE(StressResult.failed()) << StressResult.Error;
  EXPECT_TRUE(StressResult.Stats.degraded());
  EXPECT_TRUE(hasFailure(StressResult.Stats.Failures,
                         FailureCode::DeadlineExceeded, Stage::Solve));

  for (size_t I = 0; I != Siblings.size(); ++I) {
    EXPECT_FALSE(Governed[I].Stats.failed())
        << Siblings[I].Name << " tripped the deadline; raise it?";
    EXPECT_EQ(Governed[I].Output, Baseline[I].Output) << Siblings[I].Name;
  }
}

//===----------------------------------------------------------------------===//
// Work ceilings and the relaxed-budget retry
//===----------------------------------------------------------------------===//

namespace {

/// Finds a corpus program whose solve does enough work to exceed a tiny
/// ceiling but fits comfortably after one 8x relaxation.
const CorpusEntry *entryWithSolveWorkBetween(uint64_t Lo, uint64_t Hi) {
  for (const CorpusEntry &Entry : evaluationSuite()) {
    engine::Session S(Entry.Id, Entry.Source, SessionOptions());
    (void)S.hasTraitErrors();
    if (S.stats().GoalEvaluations > Lo && S.stats().GoalEvaluations < Hi)
      return &Entry;
  }
  return nullptr;
}

} // namespace

TEST(WorkCeilings, DeterministicStopAndRetrySucceeds) {
  const CorpusEntry *Entry = entryWithSolveWorkBetween(8, 60);
  ASSERT_NE(Entry, nullptr)
      << "no corpus program in the 8..60 goal-evaluation window";

  std::vector<BatchJob> Jobs = {{Entry->Id, Entry->Source}};
  std::vector<BatchResult> Ungoverned =
      BatchDriver(SessionOptions(), 1).run(Jobs, fullPipeline);

  SessionOptions Opts;
  Opts.Limits.StageWorkCeiling[static_cast<size_t>(Stage::Solve)] = 8;

  // Without retry: a deterministic WorkExceeded partial result.
  std::vector<BatchResult> Stopped =
      BatchDriver(Opts, 1).run(Jobs, fullPipeline);
  EXPECT_TRUE(hasFailure(Stopped[0].Stats.Failures,
                         FailureCode::WorkExceeded, Stage::Solve));
  EXPECT_FALSE(Stopped[0].Retried);

  // With retry: the 8x-relaxed serial rerun fits (ceiling 64 against
  // <60 evaluations) and must reproduce the ungoverned bytes exactly.
  BatchOptions BOpts;
  BOpts.RetryOverruns = true;
  std::vector<BatchResult> Retried =
      BatchDriver(Opts, 1, BOpts).run(Jobs, fullPipeline);
  EXPECT_TRUE(Retried[0].Retried);
  EXPECT_FALSE(Retried[0].Stats.failed())
      << "relaxed rerun still failed: "
      << (Retried[0].Stats.Failures.empty()
              ? "?"
              : Retried[0].Stats.Failures.front().Detail);
  EXPECT_EQ(Retried[0].Output, Ungoverned[0].Output);
}

TEST(WorkCeilings, DeterministicFailuresAreNotRetried) {
  // SolverOverflow comes from SolverOptions ceilings, not the governor;
  // a rerun cannot change it, so the driver must not waste a retry.
  const CorpusEntry &Entry = firstCorpusEntry();
  std::vector<BatchJob> Jobs = {{Entry.Id, Entry.Source}};
  BatchOptions BOpts;
  BOpts.RetryOverruns = true;
  std::vector<BatchResult> Results =
      BatchDriver(injecting("solve.overflow"), 1, BOpts)
          .run(Jobs, fullPipeline);
  EXPECT_FALSE(Results[0].Retried);
  EXPECT_TRUE(hasFailure(Results[0].Stats.Failures,
                         FailureCode::SolverOverflow, Stage::Solve));
}

TEST(WorkCeilings, RelaxedLimitsScaleEverything) {
  ResourceLimits Limits;
  Limits.JobDeadlineSeconds = 1.0;
  Limits.StageWorkCeiling[0] = 10;
  ResourceLimits Relaxed = Limits.relaxed(8.0);
  EXPECT_DOUBLE_EQ(Relaxed.JobDeadlineSeconds, 8.0);
  EXPECT_EQ(Relaxed.StageWorkCeiling[0], 80u);
  EXPECT_EQ(Relaxed.StageWorkCeiling[1], 0u) << "unlimited stays unlimited";
}
