//===- tests/engine/BatchTests.cpp ----------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine::BatchDriver contract: results come back in input order
/// with byte-identical payloads at any thread count (the determinism
/// guarantee the CLI's --batch mode and tools/check.sh rely on), worker
/// failures are contained per job, and the aggregate stats trace
/// serializes every program.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "engine/Batch.h"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace argus;
using namespace argus::engine;

namespace {

std::vector<BatchJob> corpusJobs() {
  std::vector<BatchJob> Jobs;
  for (const CorpusEntry &Entry : evaluationSuite())
    Jobs.push_back({Entry.Id, Entry.Source});
  return Jobs;
}

/// The worker the determinism test replays at several thread counts:
/// full pipeline, concatenating the diagnostic and the tree JSON.
std::string fullPipeline(engine::Session &S) {
  if (!S.parseOk())
    return S.parseErrorText();
  if (S.numTrees() == 0)
    return "ok";
  return S.diagnosticText(0) + "\n" + S.treeJSON(0);
}

} // namespace

TEST(EngineBatch, ParallelRunsAreByteIdenticalToSerial) {
  std::vector<BatchJob> Jobs = corpusJobs();
  std::vector<BatchResult> Serial =
      BatchDriver(SessionOptions(), 1).run(Jobs, fullPipeline);
  ASSERT_EQ(Serial.size(), Jobs.size());

  for (unsigned Threads : {2u, 8u}) {
    std::vector<BatchResult> Parallel =
        BatchDriver(SessionOptions(), Threads).run(Jobs, fullPipeline);
    ASSERT_EQ(Parallel.size(), Serial.size());
    for (size_t I = 0; I != Serial.size(); ++I) {
      // Same order, same bytes, regardless of which thread ran the job.
      EXPECT_EQ(Parallel[I].Name, Jobs[I].Name);
      EXPECT_EQ(Parallel[I].Output, Serial[I].Output) << Jobs[I].Name;
      EXPECT_EQ(Parallel[I].HasTraitErrors, Serial[I].HasTraitErrors);
    }
  }
}

TEST(EngineBatch, ResultsCarryPerSessionStats) {
  std::vector<BatchJob> Jobs = corpusJobs();
  std::vector<BatchResult> Results =
      BatchDriver(SessionOptions(), 4).run(Jobs, fullPipeline);
  for (size_t I = 0; I != Results.size(); ++I) {
    EXPECT_EQ(Results[I].Stats.Name, Jobs[I].Name);
    EXPECT_GT(Results[I].Stats.GoalEvaluations, 0u) << Jobs[I].Name;
    EXPECT_TRUE(Results[I].Stats.ran(Stage::Solve)) << Jobs[I].Name;
    EXPECT_TRUE(Results[I].HasTraitErrors) << Jobs[I].Name;
    EXPECT_FALSE(Results[I].failed()) << Results[I].Error;
  }
}

TEST(EngineBatch, WorkerFailuresAreContainedPerJob) {
  std::vector<BatchJob> Jobs = corpusJobs();
  const std::string &Poison = Jobs[3].Name;
  std::vector<BatchResult> Results =
      BatchDriver(SessionOptions(), 8).run(Jobs, [&](engine::Session &S) {
        if (S.name() == Poison)
          throw std::runtime_error("worker exploded");
        return fullPipeline(S);
      });
  ASSERT_EQ(Results.size(), Jobs.size());
  for (size_t I = 0; I != Results.size(); ++I) {
    if (Jobs[I].Name == Poison) {
      EXPECT_TRUE(Results[I].failed());
      EXPECT_NE(Results[I].Error.find("worker exploded"),
                std::string::npos);
    } else {
      EXPECT_FALSE(Results[I].failed()) << Jobs[I].Name;
      EXPECT_FALSE(Results[I].Output.empty()) << Jobs[I].Name;
    }
  }
}

TEST(EngineBatch, MidSolveThrowKeepsCompletedStageStats) {
  // Regression: a worker that throws after solving used to lose the
  // job's stats entirely (and re-forcing parse on the panic path could
  // rethrow out of the catch, terminating the process). The stats of
  // the stages that did run must survive the panic.
  std::vector<BatchJob> Jobs = corpusJobs();
  const std::string &Poison = Jobs[2].Name;
  std::vector<BatchResult> Results =
      BatchDriver(SessionOptions(), 4).run(Jobs, [&](engine::Session &S) {
        if (S.name() == Poison) {
          (void)S.hasTraitErrors(); // Solve, then die mid-worker.
          throw std::runtime_error("mid-solve explosion");
        }
        return fullPipeline(S);
      });
  for (size_t I = 0; I != Results.size(); ++I) {
    if (Jobs[I].Name != Poison)
      continue;
    EXPECT_TRUE(Results[I].failed());
    // Parse/solve coherence: both stages completed before the throw.
    EXPECT_TRUE(Results[I].ParseOk);
    EXPECT_TRUE(Results[I].HasTraitErrors);
    EXPECT_GT(Results[I].Stats.GoalEvaluations, 0u);
    EXPECT_TRUE(Results[I].Stats.ran(Stage::Solve));
    // And the panic is a structured failure naming job and stage.
    ASSERT_FALSE(Results[I].Stats.Failures.empty());
    const Failure &F = Results[I].Stats.Failures.back();
    EXPECT_EQ(F.Code, FailureCode::WorkerPanic);
    EXPECT_EQ(F.At, Stage::Solve);
    EXPECT_NE(F.Detail.find(Poison), std::string::npos);
    EXPECT_NE(F.Detail.find("mid-solve explosion"), std::string::npos);
    EXPECT_EQ(Results[I].Stats.exitCode(), 4);
  }
}

TEST(EngineBatch, ThrowBeforeAnyStageIsContained) {
  std::vector<BatchJob> Jobs = corpusJobs();
  std::vector<BatchResult> Results =
      BatchDriver(SessionOptions(), 8).run(Jobs, [](engine::Session &) {
        throw std::runtime_error("instant panic");
        return std::string();
      });
  for (size_t I = 0; I != Results.size(); ++I) {
    EXPECT_TRUE(Results[I].failed());
    // No stage ran, so nothing can claim the parse succeeded.
    EXPECT_FALSE(Results[I].ParseOk);
    EXPECT_FALSE(Results[I].HasTraitErrors);
    ASSERT_FALSE(Results[I].Stats.Failures.empty());
    EXPECT_EQ(Results[I].Stats.Failures.front().Code,
              FailureCode::WorkerPanic);
  }
}

TEST(EngineBatch, WorstExitCodeAggregates) {
  std::vector<BatchJob> Jobs = corpusJobs();
  std::vector<BatchResult> Clean =
      BatchDriver(SessionOptions(), 2).run(Jobs, fullPipeline);
  // Trait errors are a successful debugging run, not a failure.
  EXPECT_EQ(BatchDriver::worstExitCode(Clean), 0);

  const std::string &Poison = Jobs[0].Name;
  std::vector<BatchResult> OnePanic =
      BatchDriver(SessionOptions(), 2).run(Jobs, [&](engine::Session &S) {
        if (S.name() == Poison)
          throw std::runtime_error("boom");
        return fullPipeline(S);
      });
  EXPECT_EQ(BatchDriver::worstExitCode(OnePanic), 4);
}

TEST(EngineBatch, DuplicateJobNamesKeepDistinctResults) {
  // Two jobs can share a display name (same file name in different
  // directories, say). Stats are keyed by result slot, not by name, and
  // the shared goal cache keys on content fingerprints, not names — so
  // each job must reproduce the bytes of a solo run of its own source.
  std::vector<BatchJob> Jobs = corpusJobs();
  ASSERT_GE(Jobs.size(), 2u);
  std::vector<BatchJob> Dup = {{"dup.tl", Jobs[0].Source},
                               {"dup.tl", Jobs[1].Source}};

  auto Solo = [](const BatchJob &Job) {
    std::vector<BatchResult> R =
        BatchDriver(SessionOptions(), 1).run({Job}, fullPipeline);
    return R.at(0).Output;
  };
  std::string Solo0 = Solo(Dup[0]), Solo1 = Solo(Dup[1]);
  ASSERT_NE(Solo0, Solo1) << "fixture needs two distinct programs";

  for (CacheMode Mode : {CacheMode::Off, CacheMode::Shared})
    for (unsigned Threads : {1u, 2u}) {
      SessionOptions Opts;
      Opts.Cache = Mode;
      std::vector<BatchResult> Results =
          BatchDriver(Opts, Threads).run(Dup, fullPipeline);
      ASSERT_EQ(Results.size(), 2u);
      EXPECT_EQ(Results[0].Output, Solo0);
      EXPECT_EQ(Results[1].Output, Solo1)
          << "same-name jobs must not alias cache entries or stats";
      EXPECT_EQ(Results[0].Stats.Name, "dup.tl");
      EXPECT_EQ(Results[1].Stats.Name, "dup.tl");
      EXPECT_GT(Results[1].Stats.GoalEvaluations, 0u);
    }
}

TEST(EngineBatch, EmptyJobListYieldsNoResults) {
  EXPECT_TRUE(BatchDriver(SessionOptions(), 8)
                  .run({}, fullPipeline)
                  .empty());
}

TEST(EngineBatch, StatsTraceSerializesEveryProgram) {
  std::vector<BatchJob> Jobs = corpusJobs();
  std::vector<BatchResult> Results =
      BatchDriver(SessionOptions(), 2).run(Jobs, fullPipeline);
  std::string Trace = BatchDriver::statsTraceJSON(Results, 2);
  EXPECT_NE(Trace.find("\"jobs\": 2"), std::string::npos);
  for (const BatchJob &Job : Jobs)
    EXPECT_NE(Trace.find("\"" + Job.Name + "\""), std::string::npos);
}
