//===- tests/engine/BatchTests.cpp ----------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine::BatchDriver contract: results come back in input order
/// with byte-identical payloads at any thread count (the determinism
/// guarantee the CLI's --batch mode and tools/check.sh rely on), worker
/// failures are contained per job, and the aggregate stats trace
/// serializes every program.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "engine/Batch.h"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace argus;
using namespace argus::engine;

namespace {

std::vector<BatchJob> corpusJobs() {
  std::vector<BatchJob> Jobs;
  for (const CorpusEntry &Entry : evaluationSuite())
    Jobs.push_back({Entry.Id, Entry.Source});
  return Jobs;
}

/// The worker the determinism test replays at several thread counts:
/// full pipeline, concatenating the diagnostic and the tree JSON.
std::string fullPipeline(engine::Session &S) {
  if (!S.parseOk())
    return S.parseErrorText();
  if (S.numTrees() == 0)
    return "ok";
  return S.diagnosticText(0) + "\n" + S.treeJSON(0);
}

} // namespace

TEST(EngineBatch, ParallelRunsAreByteIdenticalToSerial) {
  std::vector<BatchJob> Jobs = corpusJobs();
  std::vector<BatchResult> Serial =
      BatchDriver(SessionOptions(), 1).run(Jobs, fullPipeline);
  ASSERT_EQ(Serial.size(), Jobs.size());

  for (unsigned Threads : {2u, 8u}) {
    std::vector<BatchResult> Parallel =
        BatchDriver(SessionOptions(), Threads).run(Jobs, fullPipeline);
    ASSERT_EQ(Parallel.size(), Serial.size());
    for (size_t I = 0; I != Serial.size(); ++I) {
      // Same order, same bytes, regardless of which thread ran the job.
      EXPECT_EQ(Parallel[I].Name, Jobs[I].Name);
      EXPECT_EQ(Parallel[I].Output, Serial[I].Output) << Jobs[I].Name;
      EXPECT_EQ(Parallel[I].HasTraitErrors, Serial[I].HasTraitErrors);
    }
  }
}

TEST(EngineBatch, ResultsCarryPerSessionStats) {
  std::vector<BatchJob> Jobs = corpusJobs();
  std::vector<BatchResult> Results =
      BatchDriver(SessionOptions(), 4).run(Jobs, fullPipeline);
  for (size_t I = 0; I != Results.size(); ++I) {
    EXPECT_EQ(Results[I].Stats.Name, Jobs[I].Name);
    EXPECT_GT(Results[I].Stats.GoalEvaluations, 0u) << Jobs[I].Name;
    EXPECT_TRUE(Results[I].Stats.ran(Stage::Solve)) << Jobs[I].Name;
    EXPECT_TRUE(Results[I].HasTraitErrors) << Jobs[I].Name;
    EXPECT_FALSE(Results[I].failed()) << Results[I].Error;
  }
}

TEST(EngineBatch, WorkerFailuresAreContainedPerJob) {
  std::vector<BatchJob> Jobs = corpusJobs();
  const std::string &Poison = Jobs[3].Name;
  std::vector<BatchResult> Results =
      BatchDriver(SessionOptions(), 8).run(Jobs, [&](engine::Session &S) {
        if (S.name() == Poison)
          throw std::runtime_error("worker exploded");
        return fullPipeline(S);
      });
  ASSERT_EQ(Results.size(), Jobs.size());
  for (size_t I = 0; I != Results.size(); ++I) {
    if (Jobs[I].Name == Poison) {
      EXPECT_TRUE(Results[I].failed());
      EXPECT_NE(Results[I].Error.find("worker exploded"),
                std::string::npos);
    } else {
      EXPECT_FALSE(Results[I].failed()) << Jobs[I].Name;
      EXPECT_FALSE(Results[I].Output.empty()) << Jobs[I].Name;
    }
  }
}

TEST(EngineBatch, EmptyJobListYieldsNoResults) {
  EXPECT_TRUE(BatchDriver(SessionOptions(), 8)
                  .run({}, fullPipeline)
                  .empty());
}

TEST(EngineBatch, StatsTraceSerializesEveryProgram) {
  std::vector<BatchJob> Jobs = corpusJobs();
  std::vector<BatchResult> Results =
      BatchDriver(SessionOptions(), 2).run(Jobs, fullPipeline);
  std::string Trace = BatchDriver::statsTraceJSON(Results, 2);
  EXPECT_NE(Trace.find("\"jobs\": 2"), std::string::npos);
  for (const BatchJob &Job : Jobs)
    EXPECT_NE(Trace.find("\"" + Job.Name + "\""), std::string::npos);
}
