//===- tests/tools/CLITests.cpp - End-to-end CLI tests --------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the installed `argus` binary the way a user or CI would: real
/// process, real files, checking stdout and exit codes. The binary path
/// is injected by CMake as ARGUS_CLI_PATH.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/stat.h>

namespace {

struct RunResult {
  int ExitCode;
  std::string Stdout;
};

RunResult runCLI(const std::string &Args) {
  std::string Command = std::string(ARGUS_CLI_PATH) + " " + Args + " 2>&1";
  FILE *Pipe = popen(Command.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  RunResult Result;
  char Buffer[4096];
  size_t Read;
  while ((Read = fread(Buffer, 1, sizeof(Buffer), Pipe)) > 0)
    Result.Stdout.append(Buffer, Read);
  int Status = pclose(Pipe);
  Result.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return Result;
}

std::string writeTemp(const char *Name, const char *Contents) {
  std::string Path = std::string(::testing::TempDir()) + Name;
  std::ofstream File(Path);
  File << Contents;
  return Path;
}

const char *FailingProgram = R"(
#[external] struct ResMut<T>;
struct Timer;
#[external] trait Resource;
#[external] trait SystemParam;
#[external] impl<T> SystemParam for ResMut<T> where T: Resource;
impl Resource for Timer;
goal Timer: SystemParam;
)";

const char *PassingProgram = R"(
struct Timer;
trait Resource;
impl Resource for Timer;
goal Timer: Resource;
)";

} // namespace

TEST(CLI, DefaultOutputShowsDiagnosticAndBottomUp) {
  std::string Path = writeTemp("cli_fail.tl", FailingProgram);
  RunResult Result = runCLI(Path);
  EXPECT_EQ(Result.ExitCode, 1);
  EXPECT_NE(Result.Stdout.find("error[E0277]"), std::string::npos);
  EXPECT_NE(Result.Stdout.find("== Bottom Up =="), std::string::npos);
  EXPECT_NE(Result.Stdout.find("Timer: SystemParam"), std::string::npos);
}

TEST(CLI, CheckModeExitCodes) {
  std::string Fail = writeTemp("cli_fail2.tl", FailingProgram);
  std::string Pass = writeTemp("cli_pass.tl", PassingProgram);
  EXPECT_EQ(runCLI(Fail + " --check").ExitCode, 1);
  EXPECT_EQ(runCLI(Pass + " --check").ExitCode, 0);
}

TEST(CLI, PassingProgramReportsSuccess) {
  std::string Pass = writeTemp("cli_pass2.tl", PassingProgram);
  RunResult Result = runCLI(Pass);
  EXPECT_EQ(Result.ExitCode, 0);
  EXPECT_NE(Result.Stdout.find("goal(s) hold"), std::string::npos);
}

TEST(CLI, SuggestAndMCS) {
  std::string Path = writeTemp("cli_fix.tl", FailingProgram);
  RunResult Result = runCLI(Path + " --mcs --suggest");
  EXPECT_NE(Result.Stdout.find("minimum correction subsets"),
            std::string::npos);
  EXPECT_NE(Result.Stdout.find("ResMut<Timer>"), std::string::npos);
}

TEST(CLI, HTMLAndJSONOutputs) {
  std::string Path = writeTemp("cli_html.tl", FailingProgram);
  std::string HTMLPath = std::string(::testing::TempDir()) + "cli_out.html";
  RunResult Result = runCLI(Path + " --json --html " + HTMLPath);
  EXPECT_NE(Result.Stdout.find("\"predicate\": \"Timer: SystemParam\""),
            std::string::npos);
  std::ifstream HTML(HTMLPath);
  ASSERT_TRUE(HTML.good());
  std::string Contents((std::istreambuf_iterator<char>(HTML)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(Contents.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(Contents.find("Timer: SystemParam"), std::string::npos);
}

TEST(CLI, ParseErrorsExitWithTwo) {
  std::string Path = writeTemp("cli_bad.tl", "struct struct;;");
  RunResult Result = runCLI(Path);
  EXPECT_EQ(Result.ExitCode, 2);
}

TEST(CLI, UnknownOptionShowsUsage) {
  RunResult Result = runCLI("--frobnicate");
  EXPECT_EQ(Result.ExitCode, 2);
  EXPECT_NE(Result.Stdout.find("usage:"), std::string::npos);
}

TEST(CLI, CoherenceWarningsAreEmitted) {
  std::string Path = writeTemp("cli_orphan.tl",
                               "#[external] struct Vec<T>;\n"
                               "#[external] trait Display;\n"
                               "impl<T> Display for Vec<T>;\n"
                               "goal Vec<()>: Display;");
  RunResult Result = runCLI(Path);
  EXPECT_NE(Result.Stdout.find("warning:"), std::string::npos);
  EXPECT_NE(Result.Stdout.find("orphan"), std::string::npos);
}

TEST(CLI, UnknownOptionNamesTheFlag) {
  RunResult Result = runCLI("--frobnicate");
  EXPECT_EQ(Result.ExitCode, 2);
  EXPECT_NE(Result.Stdout.find("--frobnicate"), std::string::npos);
}

TEST(CLI, VersionPrintsAndExitsZero) {
  RunResult Result = runCLI("--version");
  EXPECT_EQ(Result.ExitCode, 0);
  EXPECT_NE(Result.Stdout.find("argus "), std::string::npos);
}

TEST(CLI, BatchIsDeterministicAcrossJobCounts) {
  // A three-program directory: two failing, one passing.
  std::string Dir = std::string(::testing::TempDir()) + "cli_batch_dir";
  mkdir(Dir.c_str(), 0755);
  std::ofstream(Dir + "/a_fail.tl") << FailingProgram;
  std::ofstream(Dir + "/b_pass.tl") << PassingProgram;
  std::ofstream(Dir + "/c_fail.tl") << FailingProgram;

  RunResult Serial = runCLI("--batch " + Dir + " --json --jobs 1");
  RunResult Parallel = runCLI("--batch " + Dir + " --json --jobs 8");
  EXPECT_EQ(Serial.ExitCode, 1); // trait errors present
  EXPECT_EQ(Serial.Stdout, Parallel.Stdout);
  // Blocks appear in sorted input order, headed by the file path.
  size_t A = Serial.Stdout.find("/a_fail.tl ===");
  size_t B = Serial.Stdout.find("/b_pass.tl ===");
  size_t C = Serial.Stdout.find("/c_fail.tl ===");
  EXPECT_NE(A, std::string::npos);
  EXPECT_LT(A, B);
  EXPECT_LT(B, C);
}

TEST(CLI, TraceWritesPerStageStats) {
  std::string Path = writeTemp("cli_trace.tl", FailingProgram);
  std::string TracePath = std::string(::testing::TempDir()) + "cli_trace.json";
  RunResult Result = runCLI(Path + " --trace " + TracePath);
  EXPECT_EQ(Result.ExitCode, 1);
  std::ifstream In(TracePath);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Trace = Buffer.str();
  EXPECT_NE(Trace.find("\"stages\""), std::string::npos);
  EXPECT_NE(Trace.find("\"goal_evaluations\""), std::string::npos);
  EXPECT_NE(Trace.find("\"solve\""), std::string::npos);
}

TEST(CLI, BadJobsValueIsRejected) {
  RunResult Result = runCLI("--batch . --jobs 0");
  EXPECT_EQ(Result.ExitCode, 2);
}
