//===- tests/tools/CLITests.cpp - End-to-end CLI tests --------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the installed `argus` binary the way a user or CI would: real
/// process, real files, checking stdout and exit codes. The binary path
/// is injected by CMake as ARGUS_CLI_PATH.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/stat.h>

namespace {

struct RunResult {
  int ExitCode;
  std::string Stdout;
};

RunResult runCLI(const std::string &Args) {
  std::string Command = std::string(ARGUS_CLI_PATH) + " " + Args + " 2>&1";
  FILE *Pipe = popen(Command.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  RunResult Result;
  char Buffer[4096];
  size_t Read;
  while ((Read = fread(Buffer, 1, sizeof(Buffer), Pipe)) > 0)
    Result.Stdout.append(Buffer, Read);
  int Status = pclose(Pipe);
  Result.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return Result;
}

std::string writeTemp(const char *Name, const char *Contents) {
  std::string Path = std::string(::testing::TempDir()) + Name;
  std::ofstream File(Path);
  File << Contents;
  return Path;
}

const char *FailingProgram = R"(
#[external] struct ResMut<T>;
struct Timer;
#[external] trait Resource;
#[external] trait SystemParam;
#[external] impl<T> SystemParam for ResMut<T> where T: Resource;
impl Resource for Timer;
goal Timer: SystemParam;
)";

const char *PassingProgram = R"(
struct Timer;
trait Resource;
impl Resource for Timer;
goal Timer: Resource;
)";

} // namespace

TEST(CLI, DefaultOutputShowsDiagnosticAndBottomUp) {
  std::string Path = writeTemp("cli_fail.tl", FailingProgram);
  RunResult Result = runCLI(Path);
  EXPECT_EQ(Result.ExitCode, 1);
  EXPECT_NE(Result.Stdout.find("error[E0277]"), std::string::npos);
  EXPECT_NE(Result.Stdout.find("== Bottom Up =="), std::string::npos);
  EXPECT_NE(Result.Stdout.find("Timer: SystemParam"), std::string::npos);
}

TEST(CLI, CheckModeExitCodes) {
  std::string Fail = writeTemp("cli_fail2.tl", FailingProgram);
  std::string Pass = writeTemp("cli_pass.tl", PassingProgram);
  EXPECT_EQ(runCLI(Fail + " --check").ExitCode, 1);
  EXPECT_EQ(runCLI(Pass + " --check").ExitCode, 0);
}

TEST(CLI, PassingProgramReportsSuccess) {
  std::string Pass = writeTemp("cli_pass2.tl", PassingProgram);
  RunResult Result = runCLI(Pass);
  EXPECT_EQ(Result.ExitCode, 0);
  EXPECT_NE(Result.Stdout.find("goal(s) hold"), std::string::npos);
}

TEST(CLI, SuggestAndMCS) {
  std::string Path = writeTemp("cli_fix.tl", FailingProgram);
  RunResult Result = runCLI(Path + " --mcs --suggest");
  EXPECT_NE(Result.Stdout.find("minimum correction subsets"),
            std::string::npos);
  EXPECT_NE(Result.Stdout.find("ResMut<Timer>"), std::string::npos);
}

TEST(CLI, HTMLAndJSONOutputs) {
  std::string Path = writeTemp("cli_html.tl", FailingProgram);
  std::string HTMLPath = std::string(::testing::TempDir()) + "cli_out.html";
  RunResult Result = runCLI(Path + " --json --html " + HTMLPath);
  EXPECT_NE(Result.Stdout.find("\"predicate\": \"Timer: SystemParam\""),
            std::string::npos);
  std::ifstream HTML(HTMLPath);
  ASSERT_TRUE(HTML.good());
  std::string Contents((std::istreambuf_iterator<char>(HTML)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(Contents.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(Contents.find("Timer: SystemParam"), std::string::npos);
}

TEST(CLI, ParseErrorsExitWithTwo) {
  std::string Path = writeTemp("cli_bad.tl", "struct struct;;");
  RunResult Result = runCLI(Path);
  EXPECT_EQ(Result.ExitCode, 2);
}

TEST(CLI, UnknownOptionShowsUsage) {
  RunResult Result = runCLI("--frobnicate");
  EXPECT_EQ(Result.ExitCode, 2);
  EXPECT_NE(Result.Stdout.find("usage:"), std::string::npos);
}

TEST(CLI, CoherenceWarningsAreEmitted) {
  std::string Path = writeTemp("cli_orphan.tl",
                               "#[external] struct Vec<T>;\n"
                               "#[external] trait Display;\n"
                               "impl<T> Display for Vec<T>;\n"
                               "goal Vec<()>: Display;");
  RunResult Result = runCLI(Path);
  EXPECT_NE(Result.Stdout.find("warning:"), std::string::npos);
  EXPECT_NE(Result.Stdout.find("orphan"), std::string::npos);
}

TEST(CLI, UnknownOptionNamesTheFlag) {
  RunResult Result = runCLI("--frobnicate");
  EXPECT_EQ(Result.ExitCode, 2);
  EXPECT_NE(Result.Stdout.find("--frobnicate"), std::string::npos);
}

TEST(CLI, VersionPrintsAndExitsZero) {
  RunResult Result = runCLI("--version");
  EXPECT_EQ(Result.ExitCode, 0);
  EXPECT_NE(Result.Stdout.find("argus "), std::string::npos);
}

TEST(CLI, BatchIsDeterministicAcrossJobCounts) {
  // A three-program directory: two failing, one passing.
  std::string Dir = std::string(::testing::TempDir()) + "cli_batch_dir";
  mkdir(Dir.c_str(), 0755);
  std::ofstream(Dir + "/a_fail.tl") << FailingProgram;
  std::ofstream(Dir + "/b_pass.tl") << PassingProgram;
  std::ofstream(Dir + "/c_fail.tl") << FailingProgram;

  RunResult Serial = runCLI("--batch " + Dir + " --json --jobs 1");
  RunResult Parallel = runCLI("--batch " + Dir + " --json --jobs 8");
  EXPECT_EQ(Serial.ExitCode, 1); // trait errors present
  EXPECT_EQ(Serial.Stdout, Parallel.Stdout);
  // Blocks appear in sorted input order, headed by the file path.
  size_t A = Serial.Stdout.find("/a_fail.tl ===");
  size_t B = Serial.Stdout.find("/b_pass.tl ===");
  size_t C = Serial.Stdout.find("/c_fail.tl ===");
  EXPECT_NE(A, std::string::npos);
  EXPECT_LT(A, B);
  EXPECT_LT(B, C);
}

TEST(CLI, TraceWritesPerStageStats) {
  std::string Path = writeTemp("cli_trace.tl", FailingProgram);
  std::string TracePath = std::string(::testing::TempDir()) + "cli_trace.json";
  RunResult Result = runCLI(Path + " --trace " + TracePath);
  EXPECT_EQ(Result.ExitCode, 1);
  std::ifstream In(TracePath);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Trace = Buffer.str();
  EXPECT_NE(Trace.find("\"stages\""), std::string::npos);
  EXPECT_NE(Trace.find("\"goal_evaluations\""), std::string::npos);
  EXPECT_NE(Trace.find("\"solve\""), std::string::npos);
}

TEST(CLI, BadJobsValueIsRejected) {
  RunResult Result = runCLI("--batch . --jobs 0");
  EXPECT_EQ(Result.ExitCode, 2);
}

//===----------------------------------------------------------------------===//
// Resource governance and fault injection
//===----------------------------------------------------------------------===//

TEST(CLI, BadGovernanceFlagValuesAreRejected) {
  EXPECT_EQ(runCLI("x.tl --deadline 0").ExitCode, 2);
  EXPECT_EQ(runCLI("x.tl --deadline nope").ExitCode, 2);
  EXPECT_EQ(runCLI("x.tl --inject-prob 1.5").ExitCode, 2);
  EXPECT_EQ(runCLI("x.tl --inject-seed 12x").ExitCode, 2);
}

TEST(CLI, RetryOverrunsRequiresBatch) {
  std::string Path = writeTemp("cli_retry.tl", FailingProgram);
  RunResult Result = runCLI(Path + " --retry-overruns");
  EXPECT_EQ(Result.ExitCode, 2);
  EXPECT_NE(Result.Stdout.find("--retry-overruns"), std::string::npos);
}

TEST(CLI, InjectedParseFaultExitsTwo) {
  std::string Path = writeTemp("cli_inject_parse.tl", FailingProgram);
  RunResult Result = runCLI(Path + " --inject parse.error");
  EXPECT_EQ(Result.ExitCode, 2);
}

TEST(CLI, InjectedDegradationExitsThreeWithNote) {
  std::string Path = writeTemp("cli_inject_solve.tl", FailingProgram);
  RunResult Result = runCLI(Path + " --inject solve.overflow");
  EXPECT_EQ(Result.ExitCode, 3);
  EXPECT_NE(Result.Stdout.find("note: solver_overflow during solve"),
            std::string::npos);
}

TEST(CLI, InjectionDoesNotPerturbUntargetedRun) {
  // --inject with a site the run never reaches must leave output and
  // exit code untouched.
  std::string Path = writeTemp("cli_inject_none.tl", FailingProgram);
  RunResult Plain = runCLI(Path);
  RunResult Injected = runCLI(Path + " --inject worker.panic");
  EXPECT_EQ(Injected.ExitCode, Plain.ExitCode);
  EXPECT_EQ(Injected.Stdout, Plain.Stdout);
}

TEST(CLI, BatchWorkerPanicExitsFourAndNamesJobs) {
  std::string Dir = std::string(::testing::TempDir()) + "cli_panic_dir";
  mkdir(Dir.c_str(), 0755);
  std::ofstream(Dir + "/a_fail.tl") << FailingProgram;
  std::ofstream(Dir + "/b_pass.tl") << PassingProgram;

  RunResult Result = runCLI("--batch " + Dir + " --inject worker.panic");
  EXPECT_EQ(Result.ExitCode, 4);
  EXPECT_NE(Result.Stdout.find("error: injected worker panic"),
            std::string::npos);
  EXPECT_NE(Result.Stdout.find("note: worker_panic during"),
            std::string::npos);
  EXPECT_NE(Result.Stdout.find("a_fail.tl"), std::string::npos);
}

TEST(CLI, DeadlineDegradesBatchJobWithoutPerturbingSiblings) {
  // The CLI half of the acceptance case: a solver blowup under a 100ms
  // deadline degrades (exit 3) while the sibling programs' blocks stay
  // byte-identical to a batch without it, at --jobs 8.
  std::string Dir = std::string(::testing::TempDir()) + "cli_deadline_dir";
  mkdir(Dir.c_str(), 0755);
  std::ofstream(Dir + "/a_fail.tl") << FailingProgram;
  std::ofstream(Dir + "/b_pass.tl") << PassingProgram;
  std::string Blowup = Dir + "/z_blowup.tl";
  std::ofstream(Blowup) << R"(
struct Leaf;
struct Node<A, B>;
trait Blow;
impl<A, B> Blow for Node<A, B>
  where Node<A, Node<B, Leaf>>: Blow, Node<Node<A, Leaf>, B>: Blow;
goal Node<Leaf, Leaf>: Blow;
)";

  RunResult Governed =
      runCLI("--batch " + Dir + " --jobs 8 --deadline 0.1");
  EXPECT_EQ(Governed.ExitCode, 3);
  EXPECT_NE(Governed.Stdout.find("note: deadline_exceeded during solve"),
            std::string::npos);

  // Remove the pathological job and rerun ungoverned: the sibling
  // blocks (everything before the blowup's header) must match.
  remove(Blowup.c_str());
  RunResult Baseline = runCLI("--batch " + Dir + " --jobs 1");
  std::string Marker = "=== " + Dir + "/z_blowup.tl ===";
  size_t Cut = Governed.Stdout.find(Marker);
  ASSERT_NE(Cut, std::string::npos);
  EXPECT_EQ(Governed.Stdout.substr(0, Cut), Baseline.Stdout);
}

TEST(CLI, TraceCarriesFailuresAndGovernanceCounters) {
  std::string Path = writeTemp("cli_gov_trace.tl", FailingProgram);
  std::string TracePath =
      std::string(::testing::TempDir()) + "cli_gov_trace.json";
  RunResult Result =
      runCLI(Path + " --inject solve.overflow --trace " + TracePath);
  EXPECT_EQ(Result.ExitCode, 3);
  std::ifstream In(TracePath);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Trace = Buffer.str();
  EXPECT_NE(Trace.find("\"failures\""), std::string::npos);
  EXPECT_NE(Trace.find("\"solver_overflow\""), std::string::npos);
  EXPECT_NE(Trace.find("\"degraded\": true"), std::string::npos);
  EXPECT_NE(Trace.find("\"faults_injected\""), std::string::npos);
  EXPECT_NE(Trace.find("\"deadline_hits\""), std::string::npos);
}

TEST(CLI, StatsLineCarriesGovernanceCounters) {
  std::string Path = writeTemp("cli_gov_stats.tl", FailingProgram);
  RunResult Result = runCLI(Path + " --inject solve.overflow --stats");
  EXPECT_NE(Result.Stdout.find("failures=1"), std::string::npos);
  EXPECT_NE(Result.Stdout.find("faults_injected=1"), std::string::npos);
}

TEST(CLI, CacheOffRejectsPersistFlagsAsUsageError) {
  std::string Path = writeTemp("cli_persist_off.tl", FailingProgram);
  std::string Image = std::string(::testing::TempDir()) + "cli_off.gc";
  RunResult Load =
      runCLI(Path + " --cache off --cache-load " + Image);
  EXPECT_EQ(Load.ExitCode, 2);
  EXPECT_NE(Load.Stdout.find("--cache off cannot be combined"),
            std::string::npos);
  RunResult Save =
      runCLI(Path + " --cache off --cache-save " + Image);
  EXPECT_EQ(Save.ExitCode, 2);
  EXPECT_NE(Save.Stdout.find("--cache off cannot be combined"),
            std::string::npos);
  // The flags alone are fine: persistence implies a shared cache.
  RunResult Solo = runCLI(Path + " --cache-save " + Image);
  EXPECT_EQ(Solo.ExitCode, 1);
  std::remove(Image.c_str());
}

TEST(CLI, CacheSaveLoadRoundTripIsByteIdenticalWithDiskHits) {
  std::string Path = writeTemp("cli_persist_rt.tl", FailingProgram);
  std::string Image = std::string(::testing::TempDir()) + "cli_rt.gc";
  RunResult Cold = runCLI(Path + " --json");
  RunResult Save = runCLI(Path + " --json --cache-save " + Image);
  EXPECT_EQ(Save.ExitCode, Cold.ExitCode);
  EXPECT_EQ(Save.Stdout, Cold.Stdout);
  RunResult Warm = runCLI(Path + " --json --cache-load " + Image);
  EXPECT_EQ(Warm.ExitCode, Cold.ExitCode);
  EXPECT_EQ(Warm.Stdout, Cold.Stdout);
  RunResult Stats = runCLI(Path + " --stats --cache-load " + Image);
  EXPECT_NE(Stats.Stdout.find("cache_load_rejects=0"), std::string::npos);
  EXPECT_EQ(Stats.Stdout.find("cache_disk_hits=0 "), std::string::npos)
      << "the loaded image should serve at least one hit: "
      << Stats.Stdout;
  std::remove(Image.c_str());
}

TEST(CLI, TruncatedCacheImageDegradesToColdRunWithExitThree) {
  std::string Path = writeTemp("cli_persist_trunc.tl", FailingProgram);
  std::string Image = std::string(::testing::TempDir()) + "cli_trunc.gc";
  RunResult Cold = runCLI(Path + " --json");
  ASSERT_EQ(runCLI(Path + " --cache-save " + Image).ExitCode, 1);
  // Truncate the image to 100 bytes in place.
  {
    std::ifstream In(Image, std::ios::binary);
    char Buffer[100];
    In.read(Buffer, sizeof(Buffer));
    std::ofstream Out(Image, std::ios::binary | std::ios::trunc);
    Out.write(Buffer, In.gcount());
  }
  // Redirect stdout to a file so the note (stderr) and the JSON can be
  // checked separately: the note names the structured failure, the JSON
  // must be byte-identical to the cold run.
  // (The fd swap keeps the note on the pipe even after runCLI's own
  // trailing "2>&1", which then only applies to the exit builtin.)
  std::string OutFile = std::string(::testing::TempDir()) + "cli_trunc.out";
  RunResult Rejected =
      runCLI(Path + " --json --cache-load " + Image + " 2>&1 1>" + OutFile +
             "; exit $?");
  EXPECT_EQ(Rejected.ExitCode, 3);
  EXPECT_NE(Rejected.Stdout.find("cache_load_rejected"), std::string::npos);
  std::ifstream In(OutFile);
  std::stringstream Warm;
  Warm << In.rdbuf();
  EXPECT_EQ(Warm.str(), Cold.Stdout);
  std::remove(OutFile.c_str());
  std::remove(Image.c_str());
}
