//===- tests/support/SourceManagerTests.cpp -------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/SourceManager.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

class SourceManagerTest : public ::testing::Test {
protected:
  SourceManager Sources;
};

} // namespace

TEST_F(SourceManagerTest, LineColumnResolution) {
  FileId File = Sources.addFile("main.tl", "abc\ndef\n\nxyz");
  EXPECT_EQ(Sources.lineColumn(File, 0), (LineColumn{1, 1}));
  EXPECT_EQ(Sources.lineColumn(File, 2), (LineColumn{1, 3}));
  EXPECT_EQ(Sources.lineColumn(File, 4), (LineColumn{2, 1}));
  EXPECT_EQ(Sources.lineColumn(File, 8), (LineColumn{3, 1}));
  EXPECT_EQ(Sources.lineColumn(File, 9), (LineColumn{4, 1}));
  EXPECT_EQ(Sources.lineColumn(File, 12), (LineColumn{4, 4}));
}

TEST_F(SourceManagerTest, SpanText) {
  FileId File = Sources.addFile("main.tl", "struct Timer;");
  Span S{File, 7, 12};
  EXPECT_EQ(Sources.spanText(S), "Timer");
  EXPECT_EQ(S.length(), 5u);
}

TEST_F(SourceManagerTest, LineText) {
  FileId File = Sources.addFile("main.tl", "first\nsecond\nthird");
  EXPECT_EQ(Sources.lineText(File, 1), "first");
  EXPECT_EQ(Sources.lineText(File, 2), "second");
  EXPECT_EQ(Sources.lineText(File, 3), "third");
}

TEST_F(SourceManagerTest, DescribeFormatsNameLineColumn) {
  FileId File = Sources.addFile("bevy.tl", "line one\nline two");
  Span S{File, 9, 13};
  EXPECT_EQ(Sources.describe(S), "bevy.tl:2:1");
  EXPECT_EQ(Sources.describe(Span()), "<unknown>");
}

TEST_F(SourceManagerTest, MultipleFilesAreIndependent) {
  FileId A = Sources.addFile("a.tl", "aaaa");
  FileId B = Sources.addFile("b.tl", "bb\nbb");
  EXPECT_EQ(Sources.numFiles(), 2u);
  EXPECT_EQ(Sources.fileName(A), "a.tl");
  EXPECT_EQ(Sources.fileName(B), "b.tl");
  EXPECT_EQ(Sources.lineColumn(B, 3), (LineColumn{2, 1}));
}

TEST_F(SourceManagerTest, EmptyFile) {
  FileId File = Sources.addFile("empty.tl", "");
  EXPECT_EQ(Sources.lineColumn(File, 0), (LineColumn{1, 1}));
  EXPECT_EQ(Sources.lineText(File, 1), "");
}
