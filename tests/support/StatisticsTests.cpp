//===- tests/support/StatisticsTests.cpp ----------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <gtest/gtest.h>

using namespace argus;
using namespace argus::stats;

TEST(Statistics, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Statistics, QuantileInterpolates) {
  std::vector<double> Values = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(Values, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(Values, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(Values, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 0.25), 1.75);
}

TEST(Statistics, RegularizedGammaKnownValues) {
  // P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(regularizedGammaP(0.5, 1.0), std::erf(1.0), 1e-10);
  EXPECT_NEAR(regularizedGammaP(0.5, 4.0), std::erf(2.0), 1e-10);
  // P(1, x) = 1 - exp(-x).
  EXPECT_NEAR(regularizedGammaP(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-10);
  EXPECT_DOUBLE_EQ(regularizedGammaP(3.0, 0.0), 0.0);
}

TEST(Statistics, ChiSquareSurvivalMatchesTables) {
  // Critical values of the chi-square distribution, 1 dof.
  EXPECT_NEAR(chiSquareSurvival(3.841, 1.0), 0.05, 1e-3);
  EXPECT_NEAR(chiSquareSurvival(6.635, 1.0), 0.01, 1e-3);
  // 2 dof: survival(x) = exp(-x/2).
  EXPECT_NEAR(chiSquareSurvival(4.0, 2.0), std::exp(-2.0), 1e-10);
  EXPECT_DOUBLE_EQ(chiSquareSurvival(0.0, 1.0), 1.0);
}

TEST(Statistics, ChiSquare2x2MatchesHandComputation) {
  // Table: [[42, 8], [19, 31]] (close to the paper's localization rates:
  // 84% vs 38% of 50 trials each).
  TestResult R = chiSquare2x2(42, 8, 19, 31);
  // Expected cells are 30.5/19.5 per row; statistic = sum (o-e)^2/e.
  double E = 42 - 30.5;
  double Expected = E * E * (1.0 / 30.5 + 1.0 / 19.5 + 1.0 / 30.5 +
                             1.0 / 19.5) / 2.0 * 2.0;
  // Direct formula for 2x2: N(ad-bc)^2 / (row1 row2 col1 col2).
  double N = 100.0;
  double Direct = N * (42.0 * 31 - 8.0 * 19) * (42.0 * 31 - 8.0 * 19) /
                  (50.0 * 50.0 * 61.0 * 39.0);
  (void)Expected;
  EXPECT_NEAR(R.Statistic, Direct, 1e-9);
  EXPECT_LT(R.PValue, 0.001);
}

TEST(Statistics, ChiSquareDegenerateTableIsNull) {
  TestResult R = chiSquare2x2(0, 0, 5, 5);
  EXPECT_DOUBLE_EQ(R.Statistic, 0.0);
  EXPECT_DOUBLE_EQ(R.PValue, 1.0);
}

TEST(Statistics, KruskalWallisSeparatedGroups) {
  // Clearly separated groups: H should be large, p small.
  std::vector<std::vector<double>> Groups = {
      {1.0, 2.0, 3.0, 4.0, 5.0}, {10.0, 11.0, 12.0, 13.0, 14.0}};
  TestResult R = kruskalWallis(Groups);
  EXPECT_GT(R.Statistic, 6.0);
  EXPECT_LT(R.PValue, 0.01);
  EXPECT_DOUBLE_EQ(R.Dof, 1.0);
}

TEST(Statistics, KruskalWallisIdenticalGroups) {
  std::vector<std::vector<double>> Groups = {{1.0, 2.0, 3.0},
                                             {1.0, 2.0, 3.0}};
  TestResult R = kruskalWallis(Groups);
  EXPECT_NEAR(R.Statistic, 0.0, 1e-9);
  EXPECT_GT(R.PValue, 0.9);
}

TEST(Statistics, KruskalWallisHandlesTies) {
  // All values tied: statistic must be 0 (and not NaN from the tie
  // correction).
  std::vector<std::vector<double>> Groups = {{5.0, 5.0}, {5.0, 5.0}};
  TestResult R = kruskalWallis(Groups);
  EXPECT_TRUE(std::isfinite(R.Statistic));
}

TEST(Statistics, NormalQuantileKnownValues) {
  EXPECT_NEAR(normalQuantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normalQuantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(normalQuantile(0.9999), 3.719016, 1e-4);
}

TEST(Statistics, WilsonIntervalMatchesPaperStyleCI) {
  // The paper reports 84% (42/50) with CI [71%, 93%] — a Wilson interval.
  Interval CI = wilsonInterval(42, 50);
  EXPECT_NEAR(CI.Lo, 0.71, 0.015);
  EXPECT_NEAR(CI.Hi, 0.93, 0.015);
  // And 38% (19/50) with CI [25%, 53%].
  Interval CI2 = wilsonInterval(19, 50);
  EXPECT_NEAR(CI2.Lo, 0.25, 0.015);
  EXPECT_NEAR(CI2.Hi, 0.53, 0.015);
}

TEST(Statistics, WilsonIntervalEdges) {
  Interval Zero = wilsonInterval(0, 10);
  EXPECT_DOUBLE_EQ(Zero.Lo, 0.0);
  EXPECT_GT(Zero.Hi, 0.0);
  Interval Full = wilsonInterval(10, 10);
  EXPECT_LT(Full.Lo, 1.0);
  EXPECT_DOUBLE_EQ(Full.Hi, 1.0);
}

TEST(Statistics, BootstrapMedianCoversTrueMedian) {
  Rng R(99);
  std::vector<double> Values;
  for (int I = 0; I != 101; ++I)
    Values.push_back(static_cast<double>(I));
  Interval CI = bootstrapMedianInterval(Values, R, 500);
  EXPECT_LE(CI.Lo, 50.0);
  EXPECT_GE(CI.Hi, 50.0);
  EXPECT_LT(CI.Hi - CI.Lo, 40.0);
}
