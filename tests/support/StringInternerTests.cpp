//===- tests/support/StringInternerTests.cpp ------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

#include <gtest/gtest.h>

using namespace argus;

TEST(StringInterner, InterningIsIdempotent) {
  StringInterner Interner;
  Symbol A = Interner.intern("SelectStatement");
  Symbol B = Interner.intern("SelectStatement");
  EXPECT_EQ(A, B);
  EXPECT_EQ(Interner.size(), 1u);
}

TEST(StringInterner, DistinctStringsGetDistinctSymbols) {
  StringInterner Interner;
  Symbol A = Interner.intern("users::table");
  Symbol B = Interner.intern("posts::table");
  EXPECT_NE(A, B);
  EXPECT_EQ(Interner.text(A), "users::table");
  EXPECT_EQ(Interner.text(B), "posts::table");
}

TEST(StringInterner, LookupDoesNotIntern) {
  StringInterner Interner;
  EXPECT_FALSE(Interner.lookup("missing").isValid());
  EXPECT_EQ(Interner.size(), 0u);
  Symbol A = Interner.intern("present");
  EXPECT_EQ(Interner.lookup("present"), A);
}

TEST(StringInterner, TextReferencesStayStableAcrossGrowth) {
  StringInterner Interner;
  Symbol First = Interner.intern("zero");
  const std::string *FirstPtr = &Interner.text(First);
  // Force rehash/growth; SSO strings are the dangerous case.
  for (int I = 0; I != 10000; ++I)
    Interner.intern("sym" + std::to_string(I));
  EXPECT_EQ(&Interner.text(First), FirstPtr);
  EXPECT_EQ(Interner.text(First), "zero");
  // Lookup through the map (whose keys view into storage) still works.
  EXPECT_EQ(Interner.lookup("zero"), First);
  EXPECT_EQ(Interner.lookup("sym9999"), Interner.intern("sym9999"));
}

TEST(StringInterner, EmptyStringIsInternable) {
  StringInterner Interner;
  Symbol Empty = Interner.intern("");
  EXPECT_TRUE(Empty.isValid());
  EXPECT_EQ(Interner.text(Empty), "");
  EXPECT_EQ(Interner.intern(""), Empty);
}
