//===- tests/support/RandomTests.cpp --------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <gtest/gtest.h>

using namespace argus;

TEST(Rng, DeterministicAcrossInstances) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Different = 0;
  for (int I = 0; I != 20; ++I)
    Different += A.next() != B.next();
  EXPECT_GT(Different, 15);
}

TEST(Rng, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.below(13), 13u);
}

TEST(Rng, RangeIsInclusive) {
  Rng R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.range(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng R(11);
  double Sum = 0.0;
  const int N = 20000;
  for (int I = 0; I != N; ++I) {
    double U = R.uniform();
    ASSERT_GE(U, 0.0);
    ASSERT_LT(U, 1.0);
    Sum += U;
  }
  EXPECT_NEAR(Sum / N, 0.5, 0.02);
}

TEST(Rng, NormalHasRoughlyUnitMoments) {
  Rng R(13);
  const int N = 20000;
  double Sum = 0.0, SumSq = 0.0;
  for (int I = 0; I != N; ++I) {
    double X = R.normal();
    Sum += X;
    SumSq += X * X;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 0.0, 0.05);
  EXPECT_NEAR(Var, 1.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng A(21);
  Rng Child = A.fork();
  // The child should not replay the parent's sequence.
  Rng B(21);
  B.fork();
  int Same = 0;
  for (int I = 0; I != 20; ++I)
    Same += Child.next() == B.next();
  EXPECT_LT(Same, 5);
}
