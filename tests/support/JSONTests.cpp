//===- tests/support/JSONTests.cpp ----------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/JSON.h"

#include <gtest/gtest.h>

using namespace argus;

TEST(JSONWriter, EmptyObjectAndArray) {
  JSONWriter W;
  W.beginObject();
  W.endObject();
  EXPECT_EQ(W.str(), "{}");

  JSONWriter A;
  A.beginArray();
  A.endArray();
  EXPECT_EQ(A.str(), "[]");
}

TEST(JSONWriter, FlatObject) {
  JSONWriter W;
  W.beginObject();
  W.keyValue("name", "Timer");
  W.keyValue("count", 3);
  W.keyValue("ok", true);
  W.key("missing");
  W.nullValue();
  W.endObject();
  EXPECT_EQ(W.str(),
            "{\"name\":\"Timer\",\"count\":3,\"ok\":true,\"missing\":null}");
}

TEST(JSONWriter, NestedContainers) {
  JSONWriter W;
  W.beginObject();
  W.key("goals");
  W.beginArray();
  W.value(1);
  W.beginObject();
  W.keyValue("kind", "trait");
  W.endObject();
  W.endArray();
  W.endObject();
  EXPECT_EQ(W.str(), "{\"goals\":[1,{\"kind\":\"trait\"}]}");
}

TEST(JSONWriter, EscapesControlAndQuote) {
  EXPECT_EQ(JSONWriter::escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JSONWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JSONWriter, NonFiniteDoublesBecomeNull) {
  JSONWriter W;
  W.beginArray();
  W.value(1.5);
  W.value(std::numeric_limits<double>::quiet_NaN());
  W.value(std::numeric_limits<double>::infinity());
  W.endArray();
  EXPECT_EQ(W.str(), "[1.5,null,null]");
}

TEST(JSONWriter, PrettyPrinting) {
  JSONWriter W(/*Pretty=*/true);
  W.beginObject();
  W.keyValue("a", 1);
  W.endObject();
  EXPECT_EQ(W.str(), "{\n  \"a\": 1\n}");
}

TEST(JSONWriter, NegativeAndLargeIntegers) {
  JSONWriter W;
  W.beginArray();
  W.value(static_cast<int64_t>(-42));
  W.value(static_cast<uint64_t>(18446744073709551615ULL));
  W.endArray();
  EXPECT_EQ(W.str(), "[-42,18446744073709551615]");
}
