//===- tests/support/ArenaTests.cpp ---------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>

using namespace argus;

TEST(BumpAllocator, AllocationsAreDisjointAndAligned) {
  BumpAllocator A(256);
  std::set<uintptr_t> Seen;
  for (int I = 0; I < 100; ++I) {
    void *P = A.allocate(24, 8);
    ASSERT_NE(P, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 8, 0u);
    // Write the full extent; ASan (CHECK_SANITIZE=1) verifies ownership.
    std::memset(P, 0xAB, 24);
    EXPECT_TRUE(Seen.insert(reinterpret_cast<uintptr_t>(P)).second);
  }
  EXPECT_GE(A.bytesAllocated(), 2400u);
  EXPECT_GT(A.numChunks(), 1u);
}

TEST(BumpAllocator, OversizedRequestGetsDedicatedChunk) {
  BumpAllocator A(64);
  void *P = A.allocate(1000, 16);
  ASSERT_NE(P, nullptr);
  std::memset(P, 1, 1000);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 16, 0u);
}

TEST(BumpAllocator, ResetRecyclesChunksWithoutGrowth) {
  BumpAllocator A(512);
  for (int I = 0; I < 50; ++I)
    A.allocate(100);
  size_t ChunksAfterWarmup = A.numChunks();
  for (int Round = 0; Round < 10; ++Round) {
    A.reset();
    EXPECT_EQ(A.bytesAllocated(), 0u);
    for (int I = 0; I < 50; ++I)
      A.allocate(100);
  }
  // Steady state: the retained chunks absorb the same workload with no
  // new chunk allocation.
  EXPECT_EQ(A.numChunks(), ChunksAfterWarmup);
  EXPECT_EQ(A.numResets(), 10u);
}

TEST(BumpAllocator, TypedArrayAllocation) {
  BumpAllocator A;
  uint64_t *Arr = A.allocArray<uint64_t>(32);
  ASSERT_NE(Arr, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Arr) % alignof(uint64_t), 0u);
  for (int I = 0; I < 32; ++I)
    Arr[I] = I;
  EXPECT_EQ(Arr[31], 31u);
}

TEST(U64BufferPool, CapacityPersistsAcrossAcquireRelease) {
  U64BufferPool Pool;
  std::vector<uint64_t> Buf = Pool.acquire();
  EXPECT_TRUE(Buf.empty());
  for (int I = 0; I < 1000; ++I)
    Buf.push_back(I);
  size_t Cap = Buf.capacity();
  Pool.release(std::move(Buf));
  EXPECT_EQ(Pool.numFree(), 1u);

  std::vector<uint64_t> Again = Pool.acquire();
  EXPECT_TRUE(Again.empty());
  EXPECT_EQ(Again.capacity(), Cap);
  EXPECT_EQ(Pool.numFree(), 0u);
}

TEST(ScratchTag, RetagReportsStaleness) {
  ScratchTag Tag;
  int A = 0, B = 0;
  EXPECT_FALSE(Tag.retag(&A, &B)); // First use: contents stale.
  EXPECT_TRUE(Tag.retag(&A, &B));  // Same identities: reusable.
  EXPECT_FALSE(Tag.retag(&B, &A)); // Different identities: stale again.
  EXPECT_TRUE(Tag.retag(&B, &A));
}

TEST(SolveScratch, SlotsOwnOpaqueBoxes) {
  SolveScratch S;
  auto &Slot = S.slot(SolveScratch::SlotEncodeMemo);
  EXPECT_EQ(Slot.Ptr, nullptr);
  Slot.Ptr = new std::vector<int>{1, 2, 3};
  Slot.Deleter = [](void *P) { delete static_cast<std::vector<int> *>(P); };
  auto *V = static_cast<std::vector<int> *>(
      S.slot(SolveScratch::SlotEncodeMemo).Ptr);
  EXPECT_EQ(V->size(), 3u);
  // Destructor of S frees the box (leak-checked under sanitizers).
}

TEST(SolveScratch, BeginSolveResetsArenaOnly) {
  SolveScratch S;
  S.arena().allocate(100);
  std::vector<uint64_t> Buf = S.u64Pool().acquire();
  Buf.resize(64);
  S.u64Pool().release(std::move(Buf));

  S.beginSolve();
  EXPECT_EQ(S.arena().bytesAllocated(), 0u);
  EXPECT_EQ(S.u64Pool().numFree(), 1u); // Pools survive.
  EXPECT_EQ(S.numSolves(), 1u);
}
