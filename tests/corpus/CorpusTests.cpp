//===- tests/corpus/CorpusTests.cpp ---------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates every program in the 17-entry evaluation suite as a fixture:
/// it parses, is coherent, fails to solve (each contains exactly one
/// injected fault), extracts to a non-empty idealized tree, and its
/// annotated ground-truth root cause is locatable in that tree. These are
/// the preconditions of the Figure 12a experiment.
///
//===----------------------------------------------------------------------===//

#include "analysis/CompilerDistance.h"
#include "analysis/Inertia.h"
#include "corpus/Corpus.h"
#include "extract/Extract.h"
#include "solver/Coherence.h"
#include "tlang/Printer.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

class SuiteTest : public ::testing::TestWithParam<CorpusEntry> {};

std::vector<CorpusEntry> allEntries() { return evaluationSuite(); }

/// Finds the ground-truth predicate among the ranked failed leaves.
size_t truthRank(const Program &Prog, const InferenceTree &Tree,
                 const std::vector<IGoalId> &Order) {
  for (const Predicate &Truth : Prog.rootCauses())
    for (size_t I = 0; I != Order.size(); ++I)
      if (Tree.goal(Order[I]).Pred == Truth)
        return I;
  return Order.size();
}

} // namespace

TEST_P(SuiteTest, ParsesAndHasAnnotations) {
  LoadedProgram Loaded = loadEntry(GetParam());
  EXPECT_FALSE(Loaded.Prog->goals().empty());
  EXPECT_FALSE(Loaded.Prog->rootCauses().empty());
  EXPECT_FALSE(Loaded.Prog->impls().empty());
}

TEST_P(SuiteTest, IsCoherent) {
  LoadedProgram Loaded = loadEntry(GetParam());
  std::vector<CoherenceError> Errors = checkCoherence(*Loaded.Prog);
  for (const CoherenceError &Error : Errors)
    ADD_FAILURE() << GetParam().Id << ": " << Error.Message;
}

TEST_P(SuiteTest, FailsToSolveWithExactlyOneFailingGoal) {
  LoadedProgram Loaded = loadEntry(GetParam());
  Solver Solve(*Loaded.Prog);
  SolveOutcome Out = Solve.solve();
  size_t Failing = 0;
  for (EvalResult Result : Out.FinalResults)
    Failing += Result != EvalResult::Yes;
  EXPECT_EQ(Failing, 1u) << GetParam().Id;
}

TEST_P(SuiteTest, ExtractsOneTreeWithFailedLeaves) {
  LoadedProgram Loaded = loadEntry(GetParam());
  Solver Solve(*Loaded.Prog);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(*Loaded.Prog, Out, Solve.inferContext());
  ASSERT_EQ(Ex.Trees.size(), 1u) << GetParam().Id;
  EXPECT_FALSE(Ex.Trees[0].failedLeaves().empty()) << GetParam().Id;
}

TEST_P(SuiteTest, GroundTruthIsLocatableInTheTree) {
  LoadedProgram Loaded = loadEntry(GetParam());
  Solver Solve(*Loaded.Prog);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(*Loaded.Prog, Out, Solve.inferContext());
  ASSERT_EQ(Ex.Trees.size(), 1u);
  const InferenceTree &Tree = Ex.Trees[0];
  bool Found = false;
  for (const Predicate &Truth : Loaded.Prog->rootCauses())
    Found |= findGoalByPredicate(Tree, Truth).isValid();
  TypePrinter Printer(*Loaded.Prog);
  std::string Leaves;
  for (IGoalId Leaf : Tree.failedLeaves())
    Leaves += "  " + Printer.print(Tree.goal(Leaf).Pred) + "\n";
  EXPECT_TRUE(Found) << GetParam().Id << " leaves were:\n" << Leaves;
}

TEST_P(SuiteTest, InertiaRanksGroundTruthAtOrNearTheTop) {
  LoadedProgram Loaded = loadEntry(GetParam());
  Solver Solve(*Loaded.Prog);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(*Loaded.Prog, Out, Solve.inferContext());
  ASSERT_EQ(Ex.Trees.size(), 1u);
  const InferenceTree &Tree = Ex.Trees[0];
  InertiaResult Inertia = rankByInertia(*Loaded.Prog, Tree);
  size_t Rank = truthRank(*Loaded.Prog, Tree, Inertia.Order);
  // The overflow-family programs annotate the root goal (the developer's
  // fix site) rather than a grown leaf; everything else must rank 0.
  if (GetParam().Id == "ast-box-growth" ||
      GetParam().Id == "space-relay-overflow")
    EXPECT_LE(Rank, Inertia.Order.size()) << GetParam().Id;
  else
    EXPECT_EQ(Rank, 0u) << GetParam().Id;
}

INSTANTIATE_TEST_SUITE_P(
    EvaluationSuite, SuiteTest, ::testing::ValuesIn(allEntries()),
    [](const ::testing::TestParamInfo<CorpusEntry> &Info) {
      std::string Name = Info.param.Id;
      std::replace(Name.begin(), Name.end(), '-', '_');
      return Name;
    });

TEST(CorpusSuite, HasSeventeenPrograms) {
  EXPECT_EQ(evaluationSuite().size(), 17u);
}

TEST(CorpusSuite, CoversAllSixFamilies) {
  std::set<std::string> Families;
  for (const CorpusEntry &Entry : evaluationSuite())
    Families.insert(Entry.Family);
  EXPECT_EQ(Families,
            (std::set<std::string>{"diesel", "bevy", "axum", "ast", "brew",
                                   "space"}));
}

TEST(CorpusSuite, IdsAreUnique) {
  std::set<std::string> Ids;
  for (const CorpusEntry &Entry : evaluationSuite())
    EXPECT_TRUE(Ids.insert(Entry.Id).second) << Entry.Id;
}
