//===- tests/corpus/CorpusTests.cpp ---------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates every program in the 17-entry evaluation suite as a fixture:
/// it parses, is coherent, fails to solve (each contains exactly one
/// injected fault), extracts to a non-empty idealized tree, and its
/// annotated ground-truth root cause is locatable in that tree. These are
/// the preconditions of the Figure 12a experiment.
///
//===----------------------------------------------------------------------===//

#include "analysis/CompilerDistance.h"
#include "corpus/Corpus.h"
#include "engine/Session.h"
#include "tlang/Printer.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

class SuiteTest : public ::testing::TestWithParam<CorpusEntry> {};

std::vector<CorpusEntry> allEntries() { return evaluationSuite(); }

/// Finds the ground-truth predicate among the ranked failed leaves.
size_t truthRank(const Program &Prog, const InferenceTree &Tree,
                 const std::vector<IGoalId> &Order) {
  for (const Predicate &Truth : Prog.rootCauses())
    for (size_t I = 0; I != Order.size(); ++I)
      if (Tree.goal(Order[I]).Pred == Truth)
        return I;
  return Order.size();
}

} // namespace

TEST_P(SuiteTest, ParsesAndHasAnnotations) {
  LoadedProgram Loaded = loadEntry(GetParam());
  EXPECT_FALSE(Loaded.Prog->goals().empty());
  EXPECT_FALSE(Loaded.Prog->rootCauses().empty());
  EXPECT_FALSE(Loaded.Prog->impls().empty());
}

TEST_P(SuiteTest, IsCoherent) {
  engine::Session ES(GetParam().Id, GetParam().Source);
  for (const CoherenceError &Error : ES.coherence())
    ADD_FAILURE() << GetParam().Id << ": " << Error.Message;
}

TEST_P(SuiteTest, FailsToSolveWithExactlyOneFailingGoal) {
  engine::Session ES(GetParam().Id, GetParam().Source);
  size_t Failing = 0;
  for (EvalResult Result : ES.solve().FinalResults)
    Failing += Result != EvalResult::Yes;
  EXPECT_EQ(Failing, 1u) << GetParam().Id;
}

TEST_P(SuiteTest, ExtractsOneTreeWithFailedLeaves) {
  engine::Session ES(GetParam().Id, GetParam().Source);
  ASSERT_EQ(ES.numTrees(), 1u) << GetParam().Id;
  EXPECT_FALSE(ES.tree(0).failedLeaves().empty()) << GetParam().Id;
}

TEST_P(SuiteTest, GroundTruthIsLocatableInTheTree) {
  engine::Session ES(GetParam().Id, GetParam().Source);
  ASSERT_EQ(ES.numTrees(), 1u);
  const InferenceTree &Tree = ES.tree(0);
  bool Found = false;
  for (const Predicate &Truth : ES.program().rootCauses())
    Found |= findGoalByPredicate(Tree, Truth).isValid();
  TypePrinter Printer(ES.program());
  std::string Leaves;
  for (IGoalId Leaf : Tree.failedLeaves())
    Leaves += "  " + Printer.print(Tree.goal(Leaf).Pred) + "\n";
  EXPECT_TRUE(Found) << GetParam().Id << " leaves were:\n" << Leaves;
}

TEST_P(SuiteTest, InertiaRanksGroundTruthAtOrNearTheTop) {
  engine::Session ES(GetParam().Id, GetParam().Source);
  ASSERT_EQ(ES.numTrees(), 1u);
  const InferenceTree &Tree = ES.tree(0);
  const InertiaResult &Inertia = ES.inertia(0);
  size_t Rank = truthRank(ES.program(), Tree, Inertia.Order);
  // The overflow-family programs annotate the root goal (the developer's
  // fix site) rather than a grown leaf; everything else must rank 0.
  if (GetParam().Id == "ast-box-growth" ||
      GetParam().Id == "space-relay-overflow")
    EXPECT_LE(Rank, Inertia.Order.size()) << GetParam().Id;
  else
    EXPECT_EQ(Rank, 0u) << GetParam().Id;
}

INSTANTIATE_TEST_SUITE_P(
    EvaluationSuite, SuiteTest, ::testing::ValuesIn(allEntries()),
    [](const ::testing::TestParamInfo<CorpusEntry> &Info) {
      std::string Name = Info.param.Id;
      std::replace(Name.begin(), Name.end(), '-', '_');
      return Name;
    });

TEST(CorpusSuite, HasSeventeenPrograms) {
  EXPECT_EQ(evaluationSuite().size(), 17u);
}

TEST(CorpusSuite, CoversAllSixFamilies) {
  std::set<std::string> Families;
  for (const CorpusEntry &Entry : evaluationSuite())
    Families.insert(Entry.Family);
  EXPECT_EQ(Families,
            (std::set<std::string>{"diesel", "bevy", "axum", "ast", "brew",
                                   "space"}));
}

TEST(CorpusSuite, IdsAreUnique) {
  std::set<std::string> Ids;
  for (const CorpusEntry &Entry : evaluationSuite())
    EXPECT_TRUE(Ids.insert(Entry.Id).second) << Entry.Id;
}
