//===- tests/corpus/GeneratorTests.cpp ------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DNF.h"
#include "analysis/Inertia.h"
#include "corpus/Generator.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

/// Checks the AND/OR result invariants of a generated tree.
void checkConsistency(const InferenceTree &Tree, IGoalId Id) {
  const IdealGoal &Goal = Tree.goal(Id);
  if (Goal.Candidates.empty())
    return;
  // A successful goal has a successful candidate; a failed goal has no
  // successful candidate.
  bool AnySuccess = false;
  for (ICandId CandId : Goal.Candidates) {
    const IdealCandidate &Cand = Tree.candidate(CandId);
    AnySuccess |= Cand.Result == EvalResult::Yes;
    // A successful candidate has only successful subgoals.
    if (Cand.Result == EvalResult::Yes)
      for (IGoalId Sub : Cand.SubGoals)
        EXPECT_EQ(Tree.goal(Sub).Result, EvalResult::Yes);
    for (IGoalId Sub : Cand.SubGoals) {
      EXPECT_EQ(Tree.goal(Sub).Parent, CandId);
      checkConsistency(Tree, Sub);
    }
  }
  if (Goal.Result == EvalResult::Yes)
    EXPECT_TRUE(AnySuccess);
  else
    EXPECT_FALSE(AnySuccess);
}

} // namespace

class GeneratorSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(GeneratorSizeTest, HitsTargetSizeWithinTolerance) {
  GeneratorOptions Opts;
  Opts.TargetNodes = GetParam();
  Opts.Seed = 7;
  GeneratedWorkload Workload = generateTree(Opts);
  double Actual = static_cast<double>(Workload.Tree.size());
  double Target = static_cast<double>(Opts.TargetNodes);
  EXPECT_GE(Actual, 0.8 * Target);
  EXPECT_LE(Actual, 1.3 * Target + 8.0);
}

TEST_P(GeneratorSizeTest, TreeIsConsistentAndAnalyzable) {
  GeneratorOptions Opts;
  Opts.TargetNodes = GetParam();
  Opts.Seed = 11;
  GeneratedWorkload Workload = generateTree(Opts);
  const InferenceTree &Tree = Workload.Tree;
  ASSERT_TRUE(Tree.rootId().isValid());
  EXPECT_TRUE(idealFailed(Tree.root().Result));
  checkConsistency(Tree, Tree.rootId());

  // The failing skeleton yields a nonempty MCS whose members are failed
  // leaves.
  DNFFormula Formula = computeMCS(Tree);
  ASSERT_FALSE(Formula.Conjuncts.empty());
  auto Leaves = Tree.failedLeaves();
  for (const auto &Conjunct : Formula.Conjuncts)
    for (IGoalId Member : Conjunct)
      EXPECT_NE(std::find(Leaves.begin(), Leaves.end(), Member),
                Leaves.end());

  // Inertia ranks every leaf exactly once.
  InertiaResult Inertia = rankByInertia(*Workload.Prog, Tree);
  EXPECT_EQ(Inertia.Order.size(), Leaves.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratorSizeTest,
                         ::testing::Values(1, 16, 64, 256, 1024, 4096,
                                           16384));

TEST(Generator, DeterministicForAGivenSeed) {
  GeneratorOptions Opts;
  Opts.TargetNodes = 500;
  Opts.Seed = 42;
  GeneratedWorkload A = generateTree(Opts);
  GeneratedWorkload B = generateTree(Opts);
  EXPECT_EQ(A.Tree.size(), B.Tree.size());
  EXPECT_EQ(A.Tree.failedLeaves().size(), B.Tree.failedLeaves().size());
}

TEST(Generator, SeedsVaryTheShape) {
  GeneratorOptions Opts;
  Opts.TargetNodes = 500;
  Opts.Seed = 1;
  size_t LeavesA = generateTree(Opts).Tree.failedLeaves().size();
  bool Different = false;
  for (uint64_t Seed = 2; Seed != 8 && !Different; ++Seed) {
    Opts.Seed = Seed;
    Different = generateTree(Opts).Tree.failedLeaves().size() != LeavesA;
  }
  EXPECT_TRUE(Different);
}

TEST(Generator, BranchProbabilityControlsLeafCount) {
  GeneratorOptions Chain;
  Chain.TargetNodes = 2000;
  Chain.Seed = 3;
  Chain.BranchProbability = 0.0;
  GeneratorOptions Branchy = Chain;
  Branchy.BranchProbability = 0.5;
  EXPECT_LT(generateTree(Chain).Tree.failedLeaves().size(),
            generateTree(Branchy).Tree.failedLeaves().size());
}

TEST(Generator, OverflowLeavesAppearWhenRequested) {
  GeneratorOptions Opts;
  Opts.TargetNodes = 4000;
  Opts.Seed = 5;
  Opts.OverflowProbability = 1.0;
  GeneratedWorkload Workload = generateTree(Opts);
  bool SawOverflow = false;
  for (IGoalId Leaf : Workload.Tree.failedLeaves())
    SawOverflow |= Workload.Tree.goal(Leaf).Result == EvalResult::Overflow;
  EXPECT_TRUE(SawOverflow);
}
