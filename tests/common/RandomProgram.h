//===- tests/common/RandomProgram.h - Shared program generator -*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The random trait-program generator shared by the solver property
/// tests, the goal-cache differential tests, and the fuzz driver's
/// --solve mode. Deterministic in the seed, so every consumer replays
/// the same program space and a failing seed reproduces anywhere.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_TESTS_COMMON_RANDOMPROGRAM_H
#define ARGUS_TESTS_COMMON_RANDOMPROGRAM_H

#include "support/Random.h"

#include <cstddef>
#include <string>
#include <vector>

namespace argus {
namespace testgen {

/// Generates a random (syntactically valid, declare-before-use) trait
/// program: a pool of nullary and unary structs, traits, impls with
/// random where-clauses, and concrete/inference goals. Recursion is
/// possible (the depth limit handles it); ambiguity is possible (the
/// fixpoint handles it).
inline std::string randomProgram(uint64_t Seed) {
  Rng Gen(Seed);
  std::string Out;

  const size_t NumStructs = 3 + Gen.below(4); // S0.. nullary
  const size_t NumGenerics = 1 + Gen.below(3); // G0<T>..
  const size_t NumTraits = 2 + Gen.below(3);
  for (size_t I = 0; I != NumStructs; ++I)
    Out += (Gen.chance(0.4) ? "#[external] struct S" : "struct S") +
           std::to_string(I) + ";\n";
  for (size_t I = 0; I != NumGenerics; ++I)
    Out += (Gen.chance(0.4) ? "#[external] struct G" : "struct G") +
           std::to_string(I) + "<T>;\n";
  for (size_t I = 0; I != NumTraits; ++I)
    Out += (Gen.chance(0.5) ? "#[external] trait Tr" : "trait Tr") +
           std::to_string(I) + ";\n";

  auto RandomConcrete = [&]() {
    if (Gen.chance(0.3))
      return "G" + std::to_string(Gen.below(NumGenerics)) + "<S" +
             std::to_string(Gen.below(NumStructs)) + ">";
    return "S" + std::to_string(Gen.below(NumStructs));
  };
  auto RandomTrait = [&]() {
    return "Tr" + std::to_string(Gen.below(NumTraits));
  };

  const size_t NumImpls = 2 + Gen.below(6);
  for (size_t I = 0; I != NumImpls; ++I) {
    switch (Gen.below(3)) {
    case 0: // Concrete impl.
      Out += "impl " + RandomTrait() + " for " + RandomConcrete() + ";\n";
      break;
    case 1: { // Conditional impl on a generic container.
      std::string Trait = RandomTrait();
      Out += "impl<T> " + Trait + " for G" +
             std::to_string(Gen.below(NumGenerics)) + "<T> where T: " +
             RandomTrait() + ";\n";
      break;
    }
    case 2: { // Blanket impl. The bound trait index strictly decreases
              // so blanket chains form a DAG: without a cache, mutually
              // recursive blanket impls make the candidate search
              // exponential (the budget would catch it, but these tests
              // exercise the semantics, not the limiter).
      size_t Target = Gen.below(NumTraits);
      if (Target == 0)
        break;
      Out += "impl<T> Tr" + std::to_string(Target) + " for T where T: Tr" +
             std::to_string(Gen.below(Target)) + ";\n";
      break;
    }
    }
  }

  const size_t NumGoals = 1 + Gen.below(3);
  for (size_t I = 0; I != NumGoals; ++I) {
    if (Gen.chance(0.25))
      Out += "goal ?X" + std::to_string(I) + ": " + RandomTrait() + ";\n";
    else
      Out += "goal " + RandomConcrete() + ": " + RandomTrait() + ";\n";
  }
  return Out;
}

/// One deterministic single-impl edit of a generated program, chosen by
/// the seed: remove an impl, add a concrete impl, reorder the impl
/// block, or rename the trait of a concrete impl. Always yields a
/// parseable declare-before-use program (S0/S1 and Tr0/Tr1 always
/// exist). Shared by the cache property tests and the engine-level
/// differential tests so both replay the same edit space.
inline std::string editProgram(const std::string &Source, uint64_t Seed) {
  std::vector<std::string> Lines;
  for (size_t Pos = 0; Pos < Source.size();) {
    size_t Eol = Source.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = Source.size();
    Lines.push_back(Source.substr(Pos, Eol - Pos));
    Pos = Eol + 1;
  }
  std::vector<size_t> Impls, Concrete;
  size_t FirstGoal = Lines.size();
  for (size_t I = 0; I != Lines.size(); ++I) {
    if (Lines[I].rfind("impl", 0) == 0) {
      Impls.push_back(I);
      if (Lines[I].rfind("impl Tr", 0) == 0)
        Concrete.push_back(I);
    }
    if (FirstGoal == Lines.size() && Lines[I].rfind("goal", 0) == 0)
      FirstGoal = I;
  }

  Rng Gen(Seed * 0x9E3779B97F4A7C15ull + 0xED17);
  unsigned Kind = static_cast<unsigned>(Gen.below(4));
  if ((Kind == 0 && Impls.empty()) || (Kind == 2 && Impls.size() < 2) ||
      (Kind == 3 && Concrete.empty()))
    Kind = 1; // Fall back to the always-possible add edit.
  switch (Kind) {
  case 0: // Remove one impl.
    Lines.erase(Lines.begin() +
                static_cast<std::ptrdiff_t>(Impls[Gen.below(Impls.size())]));
    break;
  case 1: // Add a concrete impl just before the goals.
    Lines.insert(Lines.begin() + static_cast<std::ptrdiff_t>(FirstGoal),
                 "impl Tr" + std::to_string(Gen.below(2)) + " for S" +
                     std::to_string(Gen.below(2)) + ";");
    break;
  case 2: // Reorder: swap the first and last impl lines.
    std::swap(Lines[Impls.front()], Lines[Impls.back()]);
    break;
  case 3: { // Rename the trait of one concrete impl ("impl TrD for …").
    std::string &Line = Lines[Concrete[Gen.below(Concrete.size())]];
    size_t Digit = std::string("impl Tr").size();
    Line[Digit] = Line[Digit] == '0' ? '1' : '0';
    break;
  }
  }

  std::string Out;
  for (const std::string &Line : Lines)
    Out += Line + "\n";
  return Out;
}

} // namespace testgen
} // namespace argus

#endif // ARGUS_TESTS_COMMON_RANDOMPROGRAM_H
