//===- tests/common/RandomProgram.h - Shared program generator -*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The random trait-program generator shared by the solver property
/// tests, the goal-cache differential tests, and the fuzz driver's
/// --solve mode. Deterministic in the seed, so every consumer replays
/// the same program space and a failing seed reproduces anywhere.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_TESTS_COMMON_RANDOMPROGRAM_H
#define ARGUS_TESTS_COMMON_RANDOMPROGRAM_H

#include "support/Random.h"

#include <string>

namespace argus {
namespace testgen {

/// Generates a random (syntactically valid, declare-before-use) trait
/// program: a pool of nullary and unary structs, traits, impls with
/// random where-clauses, and concrete/inference goals. Recursion is
/// possible (the depth limit handles it); ambiguity is possible (the
/// fixpoint handles it).
inline std::string randomProgram(uint64_t Seed) {
  Rng Gen(Seed);
  std::string Out;

  const size_t NumStructs = 3 + Gen.below(4); // S0.. nullary
  const size_t NumGenerics = 1 + Gen.below(3); // G0<T>..
  const size_t NumTraits = 2 + Gen.below(3);
  for (size_t I = 0; I != NumStructs; ++I)
    Out += (Gen.chance(0.4) ? "#[external] struct S" : "struct S") +
           std::to_string(I) + ";\n";
  for (size_t I = 0; I != NumGenerics; ++I)
    Out += (Gen.chance(0.4) ? "#[external] struct G" : "struct G") +
           std::to_string(I) + "<T>;\n";
  for (size_t I = 0; I != NumTraits; ++I)
    Out += (Gen.chance(0.5) ? "#[external] trait Tr" : "trait Tr") +
           std::to_string(I) + ";\n";

  auto RandomConcrete = [&]() {
    if (Gen.chance(0.3))
      return "G" + std::to_string(Gen.below(NumGenerics)) + "<S" +
             std::to_string(Gen.below(NumStructs)) + ">";
    return "S" + std::to_string(Gen.below(NumStructs));
  };
  auto RandomTrait = [&]() {
    return "Tr" + std::to_string(Gen.below(NumTraits));
  };

  const size_t NumImpls = 2 + Gen.below(6);
  for (size_t I = 0; I != NumImpls; ++I) {
    switch (Gen.below(3)) {
    case 0: // Concrete impl.
      Out += "impl " + RandomTrait() + " for " + RandomConcrete() + ";\n";
      break;
    case 1: { // Conditional impl on a generic container.
      std::string Trait = RandomTrait();
      Out += "impl<T> " + Trait + " for G" +
             std::to_string(Gen.below(NumGenerics)) + "<T> where T: " +
             RandomTrait() + ";\n";
      break;
    }
    case 2: { // Blanket impl. The bound trait index strictly decreases
              // so blanket chains form a DAG: without a cache, mutually
              // recursive blanket impls make the candidate search
              // exponential (the budget would catch it, but these tests
              // exercise the semantics, not the limiter).
      size_t Target = Gen.below(NumTraits);
      if (Target == 0)
        break;
      Out += "impl<T> Tr" + std::to_string(Target) + " for T where T: Tr" +
             std::to_string(Gen.below(Target)) + ";\n";
      break;
    }
    }
  }

  const size_t NumGoals = 1 + Gen.below(3);
  for (size_t I = 0; I != NumGoals; ++I) {
    if (Gen.chance(0.25))
      Out += "goal ?X" + std::to_string(I) + ": " + RandomTrait() + ";\n";
    else
      Out += "goal " + RandomConcrete() + ": " + RandomTrait() + ";\n";
  }
  return Out;
}

} // namespace testgen
} // namespace argus

#endif // ARGUS_TESTS_COMMON_RANDOMPROGRAM_H
