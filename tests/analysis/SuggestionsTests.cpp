//===- tests/analysis/SuggestionsTests.cpp --------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Suggestions.h"
#include "extract/Extract.h"
#include "tlang/Parser.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

class SuggestionsTest : public ::testing::Test {
protected:
  Session S;
  Program Prog{S};

  void load(std::string Source) {
    ParseResult Result = parseSource(Prog, "test.tl", std::move(Source));
    ASSERT_TRUE(Result.Success) << Result.describe(S.sources());
  }
};

} // namespace

TEST_F(SuggestionsTest, BevyWrapperSuggestionIsVerified) {
  // The Section 7.1 workflow: Timer: SystemParam fails; the verified fix
  // is ResMut<Timer> (Timer: Resource holds). Res<Timer> works too;
  // Query<..> does not wrap a resource.
  load("#[external] struct ResMut<T>;\n"
       "#[external] struct Res<T>;\n"
       "#[external] struct NotAParam<T>;\n"
       "struct Timer;\n"
       "#[external] trait Resource;\n"
       "#[external] trait SystemParam;\n"
       "#[external] impl<T> SystemParam for ResMut<T> where T: Resource;\n"
       "#[external] impl<T> SystemParam for Res<T> where T: Resource;\n"
       "impl Resource for Timer;");
  Predicate Leaf = Predicate::traitBound(S.types().adt(S.name("Timer")),
                                         S.name("SystemParam"));
  std::vector<FixSuggestion> Fixes = suggestFixes(Prog, Leaf);
  // Two verified wrappers + the orphan-rule impl suggestion (Timer is
  // local).
  ASSERT_EQ(Fixes.size(), 3u);
  EXPECT_EQ(Fixes[0].SuggestionKind, FixSuggestion::Kind::WrapInType);
  EXPECT_EQ(Fixes[0].SuggestedType,
            S.types().adt(S.name("ResMut"),
                          {S.types().adt(S.name("Timer"))}));
  EXPECT_NE(Fixes[0].Rendered.find("ResMut<Timer>"), std::string::npos);
  EXPECT_EQ(Fixes[1].SuggestionKind, FixSuggestion::Kind::WrapInType);
  EXPECT_EQ(Fixes[2].SuggestionKind, FixSuggestion::Kind::ImplementTrait);
}

TEST_F(SuggestionsTest, UnverifiableWrappersAreRejected) {
  // Timer is not a Resource here, so ResMut<Timer> would *not* fix the
  // bound; no wrapper may be suggested.
  load("#[external] struct ResMut<T>;\n"
       "struct Timer;\n"
       "#[external] trait Resource;\n"
       "#[external] trait SystemParam;\n"
       "#[external] impl<T> SystemParam for ResMut<T> where T: Resource;");
  Predicate Leaf = Predicate::traitBound(S.types().adt(S.name("Timer")),
                                         S.name("SystemParam"));
  std::vector<FixSuggestion> Fixes = suggestFixes(Prog, Leaf);
  for (const FixSuggestion &Fix : Fixes)
    EXPECT_NE(Fix.SuggestionKind, FixSuggestion::Kind::WrapInType);
}

TEST_F(SuggestionsTest, OrphanRuleGatesImplSuggestion) {
  load("#[external] struct Query;\n"
       "#[external] trait Display;\n"
       "struct Local;\n"
       "trait LocalTrait;");
  // External type + external trait: no impl suggestion.
  Predicate ExternalBoth = Predicate::traitBound(
      S.types().adt(S.name("Query")), S.name("Display"));
  EXPECT_TRUE(suggestFixes(Prog, ExternalBoth).empty());
  // Local type: the impl suggestion appears.
  Predicate LocalSelf = Predicate::traitBound(
      S.types().adt(S.name("Local")), S.name("Display"));
  std::vector<FixSuggestion> Fixes = suggestFixes(Prog, LocalSelf);
  ASSERT_EQ(Fixes.size(), 1u);
  EXPECT_EQ(Fixes[0].SuggestionKind, FixSuggestion::Kind::ImplementTrait);
  EXPECT_NE(Fixes[0].Rendered.find("the type is local"),
            std::string::npos);
  // Local trait: also allowed.
  Predicate LocalTrait = Predicate::traitBound(
      S.types().adt(S.name("Query")), S.name("LocalTrait"));
  ASSERT_EQ(suggestFixes(Prog, LocalTrait).size(), 1u);
}

TEST_F(SuggestionsTest, ProjectionMismatchSuggestsTypeChange) {
  load("struct Once;\n"
       "struct users::table;\n"
       "trait AppearsInFromClause<QS> { type Count; }");
  TypeId Table = S.types().adt(S.name("users::table"));
  TypeId Projection = S.types().projection(
      Table, S.name("AppearsInFromClause"), {Table}, S.name("Count"));
  Predicate Leaf =
      Predicate::projectionEq(Projection, S.types().adt(S.name("Once")));
  std::vector<FixSuggestion> Fixes = suggestFixes(Prog, Leaf);
  ASSERT_EQ(Fixes.size(), 1u);
  EXPECT_EQ(Fixes[0].SuggestionKind, FixSuggestion::Kind::ChangeType);
}

TEST_F(SuggestionsTest, BlanketImplsDoNotWrap) {
  load("struct Timer;\n"
       "trait Marker;\n"
       "trait Goal;\n"
       "impl<T> Goal for T where T: Marker;");
  Predicate Leaf = Predicate::traitBound(S.types().adt(S.name("Timer")),
                                         S.name("Goal"));
  std::vector<FixSuggestion> Fixes = suggestFixes(Prog, Leaf);
  for (const FixSuggestion &Fix : Fixes)
    EXPECT_NE(Fix.SuggestionKind, FixSuggestion::Kind::WrapInType);
}

TEST_F(SuggestionsTest, MultiSlotWrappersNeedAllSlotsKnown) {
  // Query<D, F> has two generic slots; plugging Timer into one leaves
  // the other unknown, so no wrapper is offered.
  load("#[external] struct Query<D, F>;\n"
       "struct Timer;\n"
       "#[external] trait QueryData;\n"
       "#[external] trait QueryFilter;\n"
       "#[external] trait SystemParam;\n"
       "#[external] impl<D, F> SystemParam for Query<D, F>\n"
       "  where D: QueryData, F: QueryFilter;\n"
       "impl QueryData for Timer;");
  Predicate Leaf = Predicate::traitBound(S.types().adt(S.name("Timer")),
                                         S.name("SystemParam"));
  std::vector<FixSuggestion> Fixes = suggestFixes(Prog, Leaf);
  for (const FixSuggestion &Fix : Fixes)
    EXPECT_NE(Fix.SuggestionKind, FixSuggestion::Kind::WrapInType);
}
