//===- tests/analysis/GoalKindTests.cpp -----------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/GoalKind.h"
#include "tlang/Parser.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

/// One row of the Appendix A.1 weight table.
struct WeightCase {
  const char *Name;
  GoalKind Kind;
  size_t Expected;
};

GoalKind make(GoalKind::Tag Tag, Locality SelfLoc = Locality::Local,
              Locality TraitLoc = Locality::Local, size_t Arity = 0,
              size_t Delta = 0) {
  GoalKind K;
  K.Kind = Tag;
  K.SelfLoc = SelfLoc;
  K.TraitLoc = TraitLoc;
  K.Arity = Arity;
  K.Delta = Delta;
  return K;
}

class WeightTableTest : public ::testing::TestWithParam<WeightCase> {};

} // namespace

TEST_P(WeightTableTest, MatchesAppendixA1) {
  const WeightCase &Case = GetParam();
  EXPECT_EQ(Case.Kind.weight(), Case.Expected) << Case.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AppendixA1, WeightTableTest,
    ::testing::Values(
        WeightCase{"trait_local_local",
                   make(GoalKind::Tag::Trait, Locality::Local,
                        Locality::Local),
                   0},
        WeightCase{"trait_local_external",
                   make(GoalKind::Tag::Trait, Locality::Local,
                        Locality::External),
                   1},
        WeightCase{"trait_external_local",
                   make(GoalKind::Tag::Trait, Locality::External,
                        Locality::Local),
                   1},
        WeightCase{"fn_to_trait_local",
                   make(GoalKind::Tag::FnToTrait, Locality::Local,
                        Locality::Local, /*Arity=*/3),
                   1},
        WeightCase{"trait_external_external",
                   make(GoalKind::Tag::Trait, Locality::External,
                        Locality::External),
                   2},
        WeightCase{"ty_change", make(GoalKind::Tag::TyChange), 4},
        WeightCase{"incorrect_params_2",
                   make(GoalKind::Tag::IncorrectParams, Locality::Local,
                        Locality::Local, /*Arity=*/2),
                   10},
        WeightCase{"add_fn_params_1",
                   make(GoalKind::Tag::AddFnParams, Locality::Local,
                        Locality::Local, 0, /*Delta=*/1),
                   5},
        WeightCase{"delete_fn_params_3",
                   make(GoalKind::Tag::DeleteFnParams, Locality::Local,
                        Locality::Local, 0, /*Delta=*/3),
                   15},
        WeightCase{"fn_to_trait_external_arity2",
                   make(GoalKind::Tag::FnToTrait, Locality::Local,
                        Locality::External, /*Arity=*/2),
                   14},
        WeightCase{"ty_as_callable_arity1",
                   make(GoalKind::Tag::TyAsCallable, Locality::Local,
                        Locality::Local, /*Arity=*/1),
                   9},
        WeightCase{"misc", make(GoalKind::Tag::Misc), 50}),
    [](const ::testing::TestParamInfo<WeightCase> &Info) {
      return Info.param.Name;
    });

namespace {

class ClassifyTest : public ::testing::Test {
protected:
  Session S;
  Program Prog{S};

  void load(std::string Source) {
    ParseResult Result = parseSource(Prog, "test.tl", std::move(Source));
    ASSERT_TRUE(Result.Success) << Result.describe(S.sources());
  }

  const Predicate &goalPred(size_t Index) {
    return Prog.goals()[Index].Pred;
  }
};

} // namespace

TEST_F(ClassifyTest, TraitLocalities) {
  load("struct Timer;\n"
       "#[external] struct Query;\n"
       "trait LocalTrait;\n"
       "#[external] trait SystemParam;\n"
       "goal Timer: LocalTrait;\n"
       "goal Timer: SystemParam;\n"
       "goal Query: LocalTrait;\n"
       "goal Query: SystemParam;");
  GoalKind K0 = classifyGoal(Prog, goalPred(0));
  EXPECT_EQ(K0.Kind, GoalKind::Tag::Trait);
  EXPECT_EQ(K0.weight(), 0u);
  EXPECT_EQ(classifyGoal(Prog, goalPred(1)).weight(), 1u);
  EXPECT_EQ(classifyGoal(Prog, goalPred(2)).weight(), 1u);
  EXPECT_EQ(classifyGoal(Prog, goalPred(3)).weight(), 2u);
}

TEST_F(ClassifyTest, FnToTrait) {
  load("struct Timer;\n"
       "trait LocalSystem;\n"
       "#[external] trait System;\n"
       "fn run_timer(Timer);\n"
       "goal run_timer: LocalSystem;\n"
       "goal run_timer: System;");
  GoalKind Local = classifyGoal(Prog, goalPred(0));
  EXPECT_EQ(Local.Kind, GoalKind::Tag::FnToTrait);
  EXPECT_EQ(Local.weight(), 1u);
  GoalKind External = classifyGoal(Prog, goalPred(1));
  EXPECT_EQ(External.Kind, GoalKind::Tag::FnToTrait);
  EXPECT_EQ(External.Arity, 1u);
  EXPECT_EQ(External.weight(), 9u); // 4 + 5 * 1.
}

TEST_F(ClassifyTest, TyAsCallable) {
  load("struct Timer;\n"
       "#[external, fn_trait] trait Handler<Sig>;\n"
       "goal Timer: Handler<fn(Timer, Timer)>;");
  GoalKind K = classifyGoal(Prog, goalPred(0));
  EXPECT_EQ(K.Kind, GoalKind::Tag::TyAsCallable);
  EXPECT_EQ(K.Arity, 2u);
  EXPECT_EQ(K.weight(), 14u);
}

TEST_F(ClassifyTest, FnSignatureDeltas) {
  load("struct Timer;\n"
       "#[fn_trait] trait Callable<Sig>;\n"
       "fn two_params(Timer, Timer);\n"
       "goal two_params: Callable<fn(Timer)>;\n"        // Delete 1.
       "goal two_params: Callable<fn(Timer, Timer, Timer)>;\n" // Add 1.
       "goal two_params: Callable<fn((), ())>;");       // Same arity.
  GoalKind Del = classifyGoal(Prog, goalPred(0));
  EXPECT_EQ(Del.Kind, GoalKind::Tag::DeleteFnParams);
  EXPECT_EQ(Del.Delta, 1u);
  EXPECT_EQ(Del.weight(), 5u);
  GoalKind Add = classifyGoal(Prog, goalPred(1));
  EXPECT_EQ(Add.Kind, GoalKind::Tag::AddFnParams);
  EXPECT_EQ(Add.Delta, 1u);
  GoalKind Wrong = classifyGoal(Prog, goalPred(2));
  EXPECT_EQ(Wrong.Kind, GoalKind::Tag::IncorrectParams);
  EXPECT_EQ(Wrong.Arity, 2u);
  EXPECT_EQ(Wrong.weight(), 10u);
}

TEST_F(ClassifyTest, ProjectionIsTyChange) {
  load("struct Once;\n"
       "struct users::table;\n"
       "trait AppearsInFromClause<QS> { type Count; }\n"
       "goal <users::table as AppearsInFromClause<users::table>>::Count "
       "== Once;");
  GoalKind K = classifyGoal(Prog, goalPred(0));
  EXPECT_EQ(K.Kind, GoalKind::Tag::TyChange);
  EXPECT_EQ(K.weight(), 4u);
}

TEST_F(ClassifyTest, RegionPredicatesAreMisc) {
  load("struct Timer;\n"
       "goal &'a Timer: 'static;");
  GoalKind K = classifyGoal(Prog, goalPred(0));
  EXPECT_EQ(K.Kind, GoalKind::Tag::Misc);
  EXPECT_EQ(K.weight(), 50u);
}

TEST_F(ClassifyTest, ReferenceSubjectInheritsPointeeLocality) {
  load("#[external] struct Query;\n"
       "trait LocalTrait;\n"
       "goal &Query: LocalTrait;");
  GoalKind K = classifyGoal(Prog, goalPred(0));
  EXPECT_EQ(K.Kind, GoalKind::Tag::Trait);
  EXPECT_EQ(K.SelfLoc, Locality::External);
}
