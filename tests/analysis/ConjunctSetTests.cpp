//===- tests/analysis/ConjunctSetTests.cpp --------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the ConjunctSet small-buffer bitset, plus a randomized
/// differential test pinning absorbConjunctSets to the reference vector
/// absorb: on the same formula the two must keep exactly the same
/// minimal conjuncts, for universes both inside and beyond the inline
/// two-word budget.
///
//===----------------------------------------------------------------------===//

#include "analysis/ConjunctSet.h"
#include "analysis/DNF.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace argus;

namespace {

ConjunctSet make(size_t NumBits, std::initializer_list<size_t> Bits) {
  ConjunctSet S(NumBits);
  for (size_t Bit : Bits)
    S.set(Bit);
  return S;
}

/// Canonical form for comparing kept-conjunct collections across
/// representations: sorted id vectors, sorted by (size, lex).
std::vector<std::vector<IGoalId>>
canonical(std::vector<std::vector<IGoalId>> Conjuncts) {
  std::sort(Conjuncts.begin(), Conjuncts.end(),
            [](const std::vector<IGoalId> &A, const std::vector<IGoalId> &B) {
              if (A.size() != B.size())
                return A.size() < B.size();
              return A < B;
            });
  return Conjuncts;
}

std::vector<std::vector<IGoalId>>
toIdVectors(const std::vector<ConjunctSet> &Sets) {
  std::vector<std::vector<IGoalId>> Out;
  std::vector<uint32_t> Bits;
  for (const ConjunctSet &S : Sets) {
    Bits.clear();
    S.appendSetBits(Bits);
    std::vector<IGoalId> Ids;
    for (uint32_t Bit : Bits)
      Ids.push_back(IGoalId(Bit));
    Out.push_back(std::move(Ids));
  }
  return Out;
}

} // namespace

TEST(ConjunctSet, InlineUpToTwoWords) {
  ConjunctSet Small(1);
  EXPECT_EQ(Small.words(), 1u);
  EXPECT_FALSE(Small.spilled());

  ConjunctSet Boundary(128);
  EXPECT_EQ(Boundary.words(), 2u);
  EXPECT_FALSE(Boundary.spilled());

  ConjunctSet Spill(129);
  EXPECT_EQ(Spill.words(), 3u);
  EXPECT_TRUE(Spill.spilled());
}

TEST(ConjunctSet, SetTestCount) {
  for (size_t NumBits : {64u, 128u, 300u}) {
    ConjunctSet S(NumBits);
    EXPECT_EQ(S.count(), 0u);
    std::vector<size_t> Bits = {0, 1, 63, NumBits - 1, NumBits / 2};
    std::sort(Bits.begin(), Bits.end());
    Bits.erase(std::unique(Bits.begin(), Bits.end()), Bits.end());
    for (size_t Bit : Bits)
      S.set(Bit);
    for (size_t Bit : Bits)
      EXPECT_TRUE(S.test(Bit)) << NumBits << ":" << Bit;
    EXPECT_FALSE(S.test(2));
    EXPECT_EQ(S.count(), Bits.size());
  }
}

TEST(ConjunctSet, UnionSubsetEquality) {
  for (size_t NumBits : {60u, 200u}) {
    ConjunctSet A = make(NumBits, {1, 5, 40});
    ConjunctSet B = make(NumBits, {5, NumBits - 1});
    EXPECT_FALSE(A.isSubsetOf(B));
    EXPECT_FALSE(B.isSubsetOf(A));

    ConjunctSet U = A;
    U.unionWith(B);
    EXPECT_EQ(U.count(), 4u);
    EXPECT_TRUE(A.isSubsetOf(U));
    EXPECT_TRUE(B.isSubsetOf(U));
    EXPECT_FALSE(U.isSubsetOf(A));
    EXPECT_TRUE(U.isSubsetOf(U)); // Non-strict.

    EXPECT_NE(A, B);
    ConjunctSet A2 = make(NumBits, {40, 5, 1});
    EXPECT_EQ(A, A2);
  }
}

TEST(ConjunctSet, CopyAndMoveSemantics) {
  ConjunctSet Spill = make(300, {0, 128, 299});

  ConjunctSet Copy = Spill;
  EXPECT_EQ(Copy, Spill);
  Copy.set(7);
  EXPECT_NE(Copy, Spill); // Deep copy: the original is untouched.
  EXPECT_FALSE(Spill.test(7));

  ConjunctSet Moved = std::move(Copy);
  EXPECT_TRUE(Moved.test(7));
  EXPECT_TRUE(Moved.test(299));
  EXPECT_EQ(Moved.words(), 5u);

  ConjunctSet Assigned(1);
  Assigned = Spill;
  EXPECT_EQ(Assigned, Spill);
  Assigned = std::move(Moved);
  EXPECT_TRUE(Assigned.test(7));
}

TEST(ConjunctSet, AppendSetBitsAscending) {
  ConjunctSet S = make(300, {299, 0, 64, 63, 130});
  std::vector<uint32_t> Bits;
  S.appendSetBits(Bits);
  EXPECT_EQ(Bits, (std::vector<uint32_t>{0, 63, 64, 130, 299}));
}

TEST(ConjunctSet, CompareIsWordLexicographic) {
  ConjunctSet A = make(64, {0, 1}); // Word value 3.
  ConjunctSet B = make(64, {1, 2}); // Word value 6.
  EXPECT_LT(ConjunctSet::compare(A, B), 0);
  EXPECT_GT(ConjunctSet::compare(B, A), 0);
  EXPECT_EQ(ConjunctSet::compare(A, A), 0);
}

TEST(ConjunctSet, AbsorbMatchesReferenceOnRandomFormulas) {
  // Randomized differential: the bitset absorption must keep exactly the
  // conjuncts the reference vector absorption keeps. Universes straddle
  // the inline/heap boundary.
  for (size_t NumAtoms : {17u, 64u, 128u, 130u, 257u}) {
    for (uint64_t Seed = 0; Seed != 20; ++Seed) {
      Rng Gen(Seed * 977 + NumAtoms);
      size_t NumConjuncts = 1 + Gen.below(120);
      std::vector<std::vector<IGoalId>> Reference;
      std::vector<ConjunctSet> Bitsets;
      for (size_t C = 0; C != NumConjuncts; ++C) {
        size_t Size = 1 + Gen.below(std::min<size_t>(NumAtoms, 24));
        std::vector<uint32_t> Atoms;
        for (size_t I = 0; I != Size; ++I)
          Atoms.push_back(static_cast<uint32_t>(Gen.below(NumAtoms)));
        std::sort(Atoms.begin(), Atoms.end());
        Atoms.erase(std::unique(Atoms.begin(), Atoms.end()), Atoms.end());

        ConjunctSet Set(NumAtoms);
        std::vector<IGoalId> Ids;
        for (uint32_t Atom : Atoms) {
          Set.set(Atom);
          Ids.push_back(IGoalId(Atom));
        }
        Bitsets.push_back(std::move(Set));
        Reference.push_back(std::move(Ids));
      }

      absorb(Reference);
      DNFStats Stats;
      absorbConjunctSets(Bitsets, &Stats);

      EXPECT_EQ(canonical(toIdVectors(Bitsets)), canonical(Reference))
          << "atoms=" << NumAtoms << " seed=" << Seed;
      EXPECT_GT(Stats.WordsTouched, 0u);
    }
  }
}
