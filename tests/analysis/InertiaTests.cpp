//===- tests/analysis/InertiaTests.cpp ------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/CompilerDistance.h"
#include "analysis/Inertia.h"
#include "extract/Extract.h"
#include "tlang/Parser.h"
#include "tlang/Printer.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

const char *BevyProgram =
    "#[external] struct ResMut<T>;\n"
    "struct Timer;\n"
    "#[external] trait Resource;\n"
    "#[external] trait SystemParam;\n"
    "#[external] impl<T> SystemParam for ResMut<T> where T: Resource;\n"
    "#[external] trait System;\n"
    "#[external, fn_trait] trait SystemParamFunction<Sig>;\n"
    "#[external] struct IsFunctionSystem;\n"
    "#[external] struct IsSystem;\n"
    "#[external] trait IntoSystem<Marker>;\n"
    "#[external] impl<P, Func> IntoSystem<(IsFunctionSystem, fn(P))> for "
    "Func\n"
    "  where Func: SystemParamFunction<fn(P)>, P: SystemParam;\n"
    "#[external] impl<Sys> IntoSystem<IsSystem> for Sys where Sys: System;\n"
    "impl Resource for Timer;\n"
    "fn run_timer(Timer);\n"
    "goal run_timer: IntoSystem<?M>;";

class InertiaTest : public ::testing::Test {
protected:
  Session S;
  Program Prog{S};

  InferenceTree failingTree(std::string Source) {
    ParseResult Result = parseSource(Prog, "test.tl", std::move(Source));
    EXPECT_TRUE(Result.Success) << Result.describe(S.sources());
    Solver Solve(Prog);
    SolveOutcome Out = Solve.solve();
    Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
    EXPECT_EQ(Ex.Trees.size(), 1u);
    return std::move(Ex.Trees[0]);
  }

  std::vector<std::string> orderStrings(const InferenceTree &Tree,
                                        const std::vector<IGoalId> &Order) {
    TypePrinter Printer(Prog);
    std::vector<std::string> Out;
    for (IGoalId Id : Order)
      Out.push_back(Printer.print(Tree.goal(Id).Pred));
    return Out;
  }
};

} // namespace

TEST_F(InertiaTest, BevyExampleRanksSystemParamFirst) {
  // The paper's running example (Figures 9a and 10): Timer: SystemParam
  // (a local type, category Trait{L,E}, weight 1) must sort above
  // run_timer: System (a function trait bound, FnToTrait external,
  // weight 4 + 5*1 = 9).
  InferenceTree Tree = failingTree(BevyProgram);
  InertiaResult Result = rankByInertia(Prog, Tree);
  auto Order = orderStrings(Tree, Result.Order);
  ASSERT_EQ(Order.size(), 2u);
  EXPECT_EQ(Order[0], "Timer: SystemParam");
  EXPECT_EQ(Order[1], "fn(Timer) {run_timer}: System");
  // And the recorded categories/weights match the paper's analysis.
  EXPECT_EQ(Result.Kinds[0].Kind, GoalKind::Tag::Trait);
  EXPECT_EQ(Result.Weights[0], 1u);
  EXPECT_EQ(Result.Kinds[1].Kind, GoalKind::Tag::FnToTrait);
  EXPECT_EQ(Result.Weights[1], 9u);
}

TEST_F(InertiaTest, MCSAndScoresExposed) {
  InferenceTree Tree = failingTree(BevyProgram);
  InertiaResult Result = rankByInertia(Prog, Tree);
  ASSERT_EQ(Result.MCS.size(), 2u);
  ASSERT_EQ(Result.ConjunctScores.size(), 2u);
  // One conjunct scores 1 (SystemParam), the other 9 (System).
  std::vector<size_t> Scores = Result.ConjunctScores;
  std::sort(Scores.begin(), Scores.end());
  EXPECT_EQ(Scores[0], 1u);
  EXPECT_EQ(Scores[1], 9u);
}

TEST_F(InertiaTest, UniformWeightsAblationKeepsTreeOrder) {
  InferenceTree Tree = failingTree(BevyProgram);
  InertiaResult Uniform = rankByInertiaWith(
      Prog, Tree, [](const GoalKind &) { return size_t(1); });
  // With uniform weights, both conjuncts tie and tree order is kept:
  // SystemParam is evaluated before System (impl declaration order), so
  // the order happens to agree — but scores are equal now.
  EXPECT_EQ(Uniform.BestScores[0], Uniform.BestScores[1]);
}

TEST_F(InertiaTest, ConjunctScoreSumsMembers) {
  InferenceTree Tree = failingTree("struct Timer;\n"
                                   "trait A;\n"
                                   "#[external] trait B;\n"
                                   "trait Both;\n"
                                   "impl<T> Both for T where T: A, T: B;\n"
                                   "goal Timer: Both;");
  InertiaResult Result = rankByInertia(Prog, Tree);
  ASSERT_EQ(Result.MCS.size(), 1u);
  // Timer: A weighs 0 (local/local), Timer: B weighs 1 (local/external).
  EXPECT_EQ(Result.ConjunctScores[0], 1u);
  // Within the single conjunct, the lighter predicate ranks first.
  auto Order = orderStrings(Tree, Result.Order);
  EXPECT_EQ(Order[0], "Timer: A");
  EXPECT_EQ(Order[1], "Timer: B");
}

TEST_F(InertiaTest, DepthBaselineOrdersDeepestFirst) {
  InferenceTree Tree = failingTree(BevyProgram);
  auto Order = orderStrings(Tree, rankByDepth(Tree));
  ASSERT_EQ(Order.size(), 2u);
  // Timer: SystemParam sits deeper than run_timer: System in this tree.
  EXPECT_EQ(Order[0], "Timer: SystemParam");
}

TEST_F(InertiaTest, InferVarBaselineOrdersConcreteFirst) {
  InferenceTree Tree = failingTree(
      "struct Timer;\n"
      "struct Pair<A, B>;\n"
      "trait Wanted;\n"
      "trait Loose;\n"
      "trait Root<M>;\n"
      "struct M1;\n"
      "struct M2;\n"
      "impl<T> Root<M1> for T where T: Wanted;\n"
      "impl<T, U> Root<M2> for T where Pair<U, U>: Loose;\n"
      "goal Timer: Root<?M>;");
  auto Ranked = rankByInferVars(Tree);
  ASSERT_EQ(Ranked.size(), 2u);
  EXPECT_EQ(Tree.goal(Ranked[0]).UnresolvedVars, 0u);
  EXPECT_GT(Tree.goal(Ranked[1]).UnresolvedVars, 0u);
}

TEST_F(InertiaTest, RankOfFindsIndex) {
  InferenceTree Tree = failingTree(BevyProgram);
  InertiaResult Result = rankByInertia(Prog, Tree);
  Predicate Truth = Predicate::traitBound(
      S.types().adt(S.name("Timer")), S.name("SystemParam"));
  IGoalId Target = findGoalByPredicate(Tree, Truth);
  ASSERT_TRUE(Target.isValid());
  EXPECT_EQ(rankOf(Result.Order, Target), 0u);
  EXPECT_EQ(rankOf(Result.Order, IGoalId(9999)), Result.Order.size());
}

TEST_F(InertiaTest, CompilerStopsAtBranchPoint) {
  // rustc's diagnostic model: with a branch point at the root, it reports
  // the root — distance 2 from the true root cause (root -> subgoal ->
  // leaf would be... here SystemParam is 2 goal-edges below the root).
  InferenceTree Tree = failingTree(BevyProgram);
  IGoalId Reported = compilerReportedNode(Tree);
  EXPECT_EQ(Reported, Tree.rootId());
  Predicate Truth = Predicate::traitBound(
      S.types().adt(S.name("Timer")), S.name("SystemParam"));
  IGoalId Target = findGoalByPredicate(Tree, Truth);
  ASSERT_TRUE(Target.isValid());
  EXPECT_EQ(nodeDistance(Tree, Reported, Target),
            Tree.goal(Target).Depth);
}

TEST_F(InertiaTest, CompilerFollowsSingleChainToLeaf) {
  InferenceTree Tree = failingTree(
      "struct Vec<T>;\n"
      "struct Timer;\n"
      "trait Display;\n"
      "impl<T> Display for Vec<T> where T: Display;\n"
      "goal Vec<Vec<Timer>>: Display;");
  IGoalId Reported = compilerReportedNode(Tree);
  TypePrinter Printer(Prog);
  // No branch points: rustc reports the deepest failure, like Figure 2's
  // "type mismatch resolving ... Count == Once".
  EXPECT_EQ(Printer.print(Tree.goal(Reported).Pred), "Timer: Display");
  EXPECT_EQ(nodeDistance(Tree, Reported, Reported), 0u);
}

TEST_F(InertiaTest, NodeDistanceThroughCommonAncestor) {
  InferenceTree Tree = failingTree(BevyProgram);
  auto Leaves = Tree.failedLeaves();
  ASSERT_EQ(Leaves.size(), 2u);
  size_t Dist = nodeDistance(Tree, Leaves[0], Leaves[1]);
  EXPECT_EQ(Dist,
            Tree.goal(Leaves[0]).Depth + Tree.goal(Leaves[1]).Depth);
}
