//===- tests/analysis/DNFTests.cpp ----------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DNF.h"
#include "extract/Extract.h"
#include "tlang/Parser.h"
#include "tlang/Printer.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

IGoalId g(uint32_t Id) { return IGoalId(Id); }

std::vector<std::vector<IGoalId>> conj(
    std::initializer_list<std::initializer_list<uint32_t>> Sets) {
  std::vector<std::vector<IGoalId>> Out;
  for (auto &Set : Sets) {
    std::vector<IGoalId> Conjunct;
    for (uint32_t Id : Set)
      Conjunct.push_back(g(Id));
    Out.push_back(std::move(Conjunct));
  }
  return Out;
}

} // namespace

TEST(DNF, AbsorptionRemovesSupersetsAndDuplicates) {
  auto Conjuncts = conj({{1, 2}, {1}, {1, 2, 3}, {1}, {2, 3}});
  absorb(Conjuncts);
  EXPECT_EQ(Conjuncts, conj({{1}, {2, 3}}));
}

TEST(DNF, ConjoinDistributes) {
  DNFFormula A;
  A.Conjuncts = conj({{1}, {2}});
  DNFFormula B;
  B.Conjuncts = conj({{3}, {4}});
  DNFFormula Out = conjoinDNF(A, B);
  EXPECT_EQ(Out.Conjuncts, conj({{1, 3}, {1, 4}, {2, 3}, {2, 4}}));
}

TEST(DNF, ConjoinWithSharedAtomAbsorbs) {
  DNFFormula A;
  A.Conjuncts = conj({{1}, {2}});
  DNFFormula B;
  B.Conjuncts = conj({{1}});
  // (1 + 2) * 1 = 1 + 12 -> absorbs to 1... wait: {1,1}={1} and {2,1}:
  // {1} absorbs {1,2}.
  DNFFormula Out = conjoinDNF(A, B);
  EXPECT_EQ(Out.Conjuncts, conj({{1}}));
}

TEST(DNF, TrueAndFalseIdentities) {
  DNFFormula A;
  A.Conjuncts = conj({{1}});
  EXPECT_EQ(conjoinDNF(DNFFormula::trueFormula(), A).Conjuncts,
            A.Conjuncts);
  EXPECT_TRUE(conjoinDNF(DNFFormula::falseFormula(), A).isFalse());
  EXPECT_TRUE(disjoinDNF(DNFFormula::trueFormula(), A).IsTrue);
  EXPECT_EQ(disjoinDNF(DNFFormula::falseFormula(), A).Conjuncts,
            A.Conjuncts);
}

namespace {

class MCSTest : public ::testing::Test {
protected:
  Session S;
  Program Prog{S};

  InferenceTree failingTree(std::string Source) {
    ParseResult Result = parseSource(Prog, "test.tl", std::move(Source));
    EXPECT_TRUE(Result.Success) << Result.describe(S.sources());
    Solver Solve(Prog);
    SolveOutcome Out = Solve.solve();
    Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
    EXPECT_EQ(Ex.Trees.size(), 1u);
    return std::move(Ex.Trees[0]);
  }

  std::vector<std::vector<std::string>> mcsStrings(
      const InferenceTree &Tree) {
    TypePrinter Printer(Prog);
    std::vector<std::vector<std::string>> Out;
    for (const auto &Conjunct : computeMCS(Tree).Conjuncts) {
      std::vector<std::string> Set;
      for (IGoalId Member : Conjunct)
        Set.push_back(Printer.print(Tree.goal(Member).Pred));
      std::sort(Set.begin(), Set.end());
      Out.push_back(std::move(Set));
    }
    std::sort(Out.begin(), Out.end());
    return Out;
  }
};

} // namespace

TEST_F(MCSTest, SingleFailureSingleSingletonMCS) {
  InferenceTree Tree = failingTree("struct Timer;\n"
                                   "trait Resource;\n"
                                   "goal Timer: Resource;");
  auto MCS = mcsStrings(Tree);
  ASSERT_EQ(MCS.size(), 1u);
  EXPECT_EQ(MCS[0], std::vector<std::string>{"Timer: Resource"});
}

TEST_F(MCSTest, BranchPointYieldsOneMCSPerAlternative) {
  // The Figure 10 example: either Timer: SystemParam or run_timer:
  // System would satisfy the root.
  InferenceTree Tree = failingTree(
      "#[external] struct ResMut<T>;\n"
      "struct Timer;\n"
      "#[external] trait Resource;\n"
      "#[external] trait SystemParam;\n"
      "#[external] impl<T> SystemParam for ResMut<T> where T: Resource;\n"
      "#[external] trait System;\n"
      "#[external, fn_trait] trait SystemParamFunction<Sig>;\n"
      "#[external] struct IsFunctionSystem;\n"
      "#[external] struct IsSystem;\n"
      "#[external] trait IntoSystem<Marker>;\n"
      "#[external] impl<P, Func> IntoSystem<(IsFunctionSystem, fn(P))> for "
      "Func\n"
      "  where Func: SystemParamFunction<fn(P)>, P: SystemParam;\n"
      "#[external] impl<Sys> IntoSystem<IsSystem> for Sys where Sys: "
      "System;\n"
      "impl Resource for Timer;\n"
      "fn run_timer(Timer);\n"
      "goal run_timer: IntoSystem<?M>;");
  auto MCS = mcsStrings(Tree);
  ASSERT_EQ(MCS.size(), 2u);
  EXPECT_EQ(MCS[0], std::vector<std::string>{"Timer: SystemParam"});
  EXPECT_EQ(MCS[1],
            std::vector<std::string>{"fn(Timer) {run_timer}: System"});
}

TEST_F(MCSTest, ConjunctionCollectsAllRequiredFixes) {
  // One impl requires two bounds, both missing: the only MCS has both.
  InferenceTree Tree = failingTree("struct Timer;\n"
                                   "trait A;\n"
                                   "trait B;\n"
                                   "trait Both;\n"
                                   "impl<T> Both for T where T: A, T: B;\n"
                                   "goal Timer: Both;");
  auto MCS = mcsStrings(Tree);
  ASSERT_EQ(MCS.size(), 1u);
  EXPECT_EQ(MCS[0], (std::vector<std::string>{"Timer: A", "Timer: B"}));
}

TEST_F(MCSTest, MixedAndOrStructure) {
  // Two impls: one requires {A, B}, the other requires {C}. MCS = {{C},
  // {A, B}}.
  InferenceTree Tree = failingTree("struct Timer;\n"
                                   "struct M1;\n"
                                   "struct M2;\n"
                                   "trait A;\n"
                                   "trait B;\n"
                                   "trait C;\n"
                                   "trait Goal<M>;\n"
                                   "impl<T> Goal<M1> for T where T: A, T: "
                                   "B;\n"
                                   "impl<T> Goal<M2> for T where T: C;\n"
                                   "goal Timer: Goal<?M>;");
  auto MCS = mcsStrings(Tree);
  ASSERT_EQ(MCS.size(), 2u);
  EXPECT_EQ(MCS[0], (std::vector<std::string>{"Timer: A", "Timer: B"}));
  EXPECT_EQ(MCS[1], std::vector<std::string>{"Timer: C"});
}

TEST_F(MCSTest, SharedSubgoalAbsorbs) {
  // Impl via M1 needs {A}; impl via M2 needs {A, B}: the smaller set
  // absorbs the larger.
  InferenceTree Tree = failingTree("struct Timer;\n"
                                   "struct M1;\n"
                                   "struct M2;\n"
                                   "trait A;\n"
                                   "trait B;\n"
                                   "trait Goal<M>;\n"
                                   "impl<T> Goal<M1> for T where T: A;\n"
                                   "impl<T> Goal<M2> for T where T: A, T: "
                                   "B;\n"
                                   "goal Timer: Goal<?M>;");
  auto MCS = mcsStrings(Tree);
  ASSERT_EQ(MCS.size(), 1u);
  EXPECT_EQ(MCS[0], std::vector<std::string>{"Timer: A"});
}

TEST_F(MCSTest, DeepChainPropagatesLeafAtom) {
  InferenceTree Tree = failingTree(
      "struct Vec<T>;\n"
      "struct Timer;\n"
      "trait Display;\n"
      "impl<T> Display for Vec<T> where T: Display;\n"
      "goal Vec<Vec<Timer>>: Display;");
  auto MCS = mcsStrings(Tree);
  ASSERT_EQ(MCS.size(), 1u);
  EXPECT_EQ(MCS[0], std::vector<std::string>{"Timer: Display"});
}

TEST_F(MCSTest, CostEstimateBoundsActual) {
  // The Auto-dispatch estimator counts un-absorbed conjuncts, so it must
  // upper-bound the minimal antichain the kernels emit, and must count
  // at least one node on any failing tree.
  InferenceTree Tree = failingTree(
      "struct Timer;\nstruct Window;\ntrait Resource;\ntrait Draw;\n"
      "trait App;\n"
      "impl App for Timer where Timer: Resource;\n"
      "impl App for Window where Window: Draw;\n"
      "goal Timer: App;");
  DNFCostEstimate Est = estimateDNFCost(Tree);
  EXPECT_GT(Est.Nodes, 0u);
  EXPECT_GE(Est.Conjuncts, computeMCS(Tree).Conjuncts.size());
}

TEST_F(MCSTest, CostEstimateExactOnPureChain) {
  // A straight failing chain has no branching and no absorption: exactly
  // one conjunct, and the estimator must agree exactly.
  InferenceTree Tree = failingTree(
      "struct A;\nstruct Wrap<T>;\ntrait Show;\n"
      "impl<T> Show for Wrap<T> where T: Show;\n"
      "goal Wrap<Wrap<A>>: Show;");
  DNFCostEstimate Est = estimateDNFCost(Tree);
  EXPECT_EQ(Est.Conjuncts, 1u);
  EXPECT_EQ(computeMCS(Tree).Conjuncts.size(), 1u);
}

TEST_F(MCSTest, AutoDispatchRespectsThresholds) {
  InferenceTree Tree = failingTree(
      "struct Timer;\nstruct Window;\ntrait Resource;\ntrait Draw;\n"
      "trait App;\n"
      "impl App for Timer where Timer: Resource;\n"
      "goal Timer: App;");

  // Zero thresholds: any failing tree exceeds them, so Auto must route
  // to the bitset kernel — and record an un-forced dispatch.
  AnalysisOptions Low;
  Low.AutoNodeThreshold = 0;
  Low.AutoConjunctThreshold = 0;
  DNFStats LowStats;
  DNFFormula FromLow = computeMCS(Tree, Low, &LowStats);
  EXPECT_EQ(LowStats.DispatchBitset, 1u);
  EXPECT_EQ(LowStats.DispatchReference, 0u);
  EXPECT_EQ(LowStats.DispatchForced, 0u);

  // Defaults: this tiny tree sits far below both thresholds, so Auto
  // must route to the reference kernel.
  DNFStats AutoStats;
  DNFFormula FromAuto = computeMCS(Tree, AnalysisOptions(), &AutoStats);
  EXPECT_EQ(AutoStats.DispatchReference, 1u);
  EXPECT_EQ(AutoStats.DispatchBitset, 0u);
  EXPECT_EQ(AutoStats.DispatchForced, 0u);

  // Both routes and both forced kernels agree on the formula.
  for (DNFKernel Kernel : {DNFKernel::Bitset, DNFKernel::Reference}) {
    AnalysisOptions Forced;
    Forced.Kernel = Kernel;
    DNFStats ForcedStats;
    DNFFormula FromForced = computeMCS(Tree, Forced, &ForcedStats);
    EXPECT_EQ(FromForced.Conjuncts, FromAuto.Conjuncts);
    EXPECT_EQ(FromForced.Conjuncts, FromLow.Conjuncts);
    EXPECT_EQ(ForcedStats.DispatchForced, 1u);
  }
}

TEST(DNFProperty, AbsorbIsIdempotent) {
  // Property check over a family of random-ish conjunct sets.
  for (uint32_t Seed = 0; Seed != 50; ++Seed) {
    std::vector<std::vector<IGoalId>> Conjuncts;
    uint32_t State = Seed * 2654435761u + 1;
    auto Next = [&State]() {
      State = State * 1664525u + 1013904223u;
      return State >> 24;
    };
    size_t NumConjuncts = 1 + Next() % 8;
    for (size_t I = 0; I != NumConjuncts; ++I) {
      std::vector<IGoalId> Set;
      size_t Size = 1 + Next() % 5;
      for (size_t J = 0; J != Size; ++J)
        Set.push_back(g(Next() % 6));
      std::sort(Set.begin(), Set.end());
      Set.erase(std::unique(Set.begin(), Set.end()), Set.end());
      Conjuncts.push_back(std::move(Set));
    }
    auto Once = Conjuncts;
    absorb(Once);
    auto Twice = Once;
    absorb(Twice);
    EXPECT_EQ(Once, Twice) << "seed " << Seed;
    // No conjunct is a superset of another.
    for (size_t I = 0; I != Once.size(); ++I)
      for (size_t J = 0; J != Once.size(); ++J) {
        if (I == J)
          continue;
        EXPECT_FALSE(std::includes(Once[I].begin(), Once[I].end(),
                                   Once[J].begin(), Once[J].end()))
            << "seed " << Seed;
      }
  }
}
