//===- tests/solver/CoherenceTests.cpp ------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/Coherence.h"
#include "tlang/Parser.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

class CoherenceTest : public ::testing::Test {
protected:
  Session S;
  Program Prog{S};

  void load(std::string Source) {
    ParseResult Result = parseSource(Prog, "test.tl", std::move(Source));
    ASSERT_TRUE(Result.Success) << Result.describe(S.sources());
  }
};

} // namespace

TEST_F(CoherenceTest, DisjointImplsDoNotOverlap) {
  load("struct A;\n"
       "struct B;\n"
       "trait Foo;\n"
       "impl Foo for A;\n"
       "impl Foo for B;");
  EXPECT_TRUE(checkCoherence(Prog).empty());
}

TEST_F(CoherenceTest, BlanketImplOverlapsConcrete) {
  load("struct A;\n"
       "trait Foo;\n"
       "impl Foo for A;\n"
       "impl<T> Foo for T;");
  std::vector<CoherenceError> Errors = checkCoherence(Prog);
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_EQ(Errors[0].ErrorKind, CoherenceError::Kind::Overlap);
}

TEST_F(CoherenceTest, MarkerTypeParameterAvoidsOverlap) {
  // Bevy's trick (Section 2.3, footnote 1): distinct marker arguments
  // make otherwise-overlapping blanket impls coherent.
  load("struct IsFunctionSystem;\n"
       "struct IsSystem;\n"
       "trait IntoSystem<Marker>;\n"
       "impl<T> IntoSystem<IsFunctionSystem> for T;\n"
       "impl<T> IntoSystem<IsSystem> for T;");
  EXPECT_TRUE(checkCoherence(Prog).empty());
}

TEST_F(CoherenceTest, SameMarkerStillOverlaps) {
  load("struct M;\n"
       "trait IntoSystem<Marker>;\n"
       "impl<T> IntoSystem<M> for T;\n"
       "impl<U> IntoSystem<M> for U;");
  std::vector<CoherenceError> Errors = checkCoherence(Prog);
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_EQ(Errors[0].ErrorKind, CoherenceError::Kind::Overlap);
}

TEST_F(CoherenceTest, OrphanRuleViolationDetected) {
  load("#[external] struct Vec<T>;\n"
       "#[external] trait Display;\n"
       "impl<T> Display for Vec<T>;");
  std::vector<CoherenceError> Errors = checkCoherence(Prog);
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_EQ(Errors[0].ErrorKind, CoherenceError::Kind::Orphan);
}

TEST_F(CoherenceTest, LocalTypeOrLocalTraitSatisfiesOrphanRule) {
  load("#[external] struct Vec<T>;\n"
       "#[external] trait Display;\n"
       "struct Wrapper;\n"
       "trait LocalTrait;\n"
       "impl Display for Wrapper;\n"       // Local type: fine.
       "impl<T> LocalTrait for Vec<T>;"); // Local trait: fine.
  EXPECT_TRUE(checkCoherence(Prog).empty());
}

TEST_F(CoherenceTest, ExternalCrateImplsAreExemptFromOurOrphanCheck) {
  // An #[external] impl of an external trait for an external type models
  // the defining crate's own impl.
  load("#[external] struct Vec<T>;\n"
       "#[external] trait Display;\n"
       "#[external] impl<T> Display for Vec<T>;");
  EXPECT_TRUE(checkCoherence(Prog).empty());
}

TEST_F(CoherenceTest, OverlapIsCheckedPerTrait) {
  load("struct A;\n"
       "trait Foo;\n"
       "trait Bar;\n"
       "impl Foo for A;\n"
       "impl Bar for A;");
  EXPECT_TRUE(checkCoherence(Prog).empty());
}
