//===- tests/solver/GoalCacheTests.cpp ------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GoalCache contract: canonical encoding round-trips across arenas,
/// keys separate flag combinations and origin spans while dependency
/// fingerprints decide validity against a program, the sharded map
/// keeps-first per (key, deps) and evicts LRU at capacity, rejection
/// keeps poisoned subtrees out, and a cache of any capacity — including
/// a pathological single slot — never changes solver results, even when
/// entries outlive the program that recorded them.
///
//===----------------------------------------------------------------------===//

#include "common/RandomProgram.h"
#include "extract/Extract.h"
#include "extract/TreeJSON.h"
#include "solver/GoalCache.h"
#include "solver/Solver.h"
#include "support/Governance.h"
#include "tlang/Parser.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

/// A small program with one failing and one holding goal — enough to
/// populate a cache with both polarities.
const char *BasicSource = "struct A;\n"
                          "struct B;\n"
                          "struct Wrap<T>;\n"
                          "trait Show;\n"
                          "impl Show for A;\n"
                          "impl<T> Show for Wrap<T> where T: Show;\n"
                          "goal Wrap<A>: Show;\n"
                          "goal Wrap<B>: Show;\n";

struct Parsed {
  Session S;
  Program Prog;
  Parsed(const std::string &Source) : Prog(S) {
    ParseResult R = parseSource(Prog, "cache.tl", Source);
    EXPECT_TRUE(R.Success) << Source;
  }
};

SolverOptions cacheOptions(GoalCache *Cache, bool RejectAll = false) {
  SolverOptions Opts;
  Opts.Cache = Cache;
  Opts.CacheRejectAll = RejectAll;
  return Opts;
}

/// Full solve + extraction serialization: the byte-level artifact the
/// differential assertions compare.
std::string solveToJSON(const std::string &Source, GoalCache *Cache,
                        SolveOutcome *OutStats = nullptr,
                        bool RejectAll = false) {
  Parsed P(Source);
  SolverOptions Opts =
      Cache ? cacheOptions(Cache, RejectAll) : SolverOptions();
  Solver Solve(P.Prog, Opts);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(P.Prog, Out, Solve.inferContext());
  std::string JSON;
  for (const InferenceTree &Tree : Ex.Trees)
    JSON += treeToJSON(P.Prog, Tree, /*Pretty=*/true) + "\n";
  if (OutStats)
    *OutStats = std::move(Out);
  return JSON;
}

/// solveToJSON under a stage work ceiling; reports the work consumed.
std::string solveGoverned(const std::string &Source, GoalCache *Cache,
                          uint64_t Ceiling, uint64_t *WorkOut) {
  Parsed P(Source);
  SolverOptions Opts = Cache ? cacheOptions(Cache) : SolverOptions();
  ExecutionBudget Budget;
  Budget.armStage(/*DeadlineSeconds=*/0, Ceiling);
  Opts.Budget = &Budget;
  Solver Solve(P.Prog, Opts);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(P.Prog, Out, Solve.inferContext());
  std::string JSON;
  for (const InferenceTree &Tree : Ex.Trees)
    JSON += treeToJSON(P.Prog, Tree, /*Pretty=*/true) + "\n";
  if (WorkOut)
    *WorkOut = Budget.stageWork();
  return JSON;
}

} // namespace

//===----------------------------------------------------------------------===//
// Canonical encoding
//===----------------------------------------------------------------------===//

TEST(CacheEncoding, TypesRoundTripAcrossArenas) {
  Session S;
  Program Prog(S);
  ASSERT_TRUE(parseSource(Prog, "enc.tl", BasicSource).Success);
  TypeArena &Arena = S.types();

  Symbol Wrap = S.name("Wrap");
  Symbol A = S.name("A");
  TypeId Inner = Arena.adt(A, {});
  TypeId Outer = Arena.adt(Wrap, {Inner});

  CacheEncoder Enc(Arena, CacheEncoder::RawVars);
  CacheEnc Tokens;
  Enc.type(Tokens, Outer);
  EXPECT_FALSE(Enc.sawVar());

  size_t Pos = 0;
  CacheDecoder Dec(Arena, /*VarsBase=*/0);
  EXPECT_EQ(Dec.type(Tokens, Pos), Outer);
  EXPECT_EQ(Pos, Tokens.size());
}

TEST(CacheEncoding, InferenceVariablesAreTagged) {
  Session S;
  Program Prog(S);
  ASSERT_TRUE(parseSource(Prog, "enc.tl", BasicSource).Success);
  TypeArena &Arena = S.types();
  TypeId Var = Arena.infer(7);

  CacheEnc Tokens;
  CacheEncoder Enc(Arena, CacheEncoder::RawVars);
  Enc.type(Tokens, Var);
  EXPECT_TRUE(Enc.sawVar());
  Enc.resetSawVar();
  EXPECT_FALSE(Enc.sawVar());

  size_t Pos = 0;
  CacheDecoder Dec(Arena, /*VarsBase=*/0);
  EXPECT_EQ(Dec.type(Tokens, Pos), Var) << "raw variables keep their index";
}

TEST(CacheEncoding, PredicatesRoundTrip) {
  Session S;
  Program Prog(S);
  ASSERT_TRUE(parseSource(Prog, "enc.tl", BasicSource).Success);
  TypeArena &Arena = S.types();
  Symbol Show = S.name("Show");
  Symbol A = S.name("A");
  Predicate P = Predicate::traitBound(Arena.adt(A, {}), Show, {});

  CacheEnc Tokens;
  CacheEncoder Enc(Arena, CacheEncoder::RawVars);
  Enc.pred(Tokens, P);

  size_t Pos = 0;
  CacheDecoder Dec(Arena, /*VarsBase=*/0);
  Predicate Back = Dec.pred(Tokens, Pos);
  EXPECT_EQ(Back.Kind, P.Kind);
  EXPECT_EQ(Back.Subject, P.Subject);
  EXPECT_EQ(Back.Trait, P.Trait);
  EXPECT_EQ(Pos, Tokens.size());
}

TEST(CacheEncoding, HashSaltSeparatesDomains) {
  CacheEnc Tokens = {1, 2, 3};
  EXPECT_NE(hashCacheEnc(Tokens, 0x1111), hashCacheEnc(Tokens, 0x2222));
}

//===----------------------------------------------------------------------===//
// Keys
//===----------------------------------------------------------------------===//

TEST(CacheKeying, FlagsAndOriginSeparateKeys) {
  GoalCache::Key Base;
  Base.FlagsFp = 1;
  Base.Origin = Span{FileId(), 10, 20};
  Base.Pred = {10, 20};
  GoalCache::finalizeKey(Base);

  GoalCache::Key Same = Base;
  GoalCache::finalizeKey(Same);
  EXPECT_EQ(Base.Hash, Same.Hash);
  EXPECT_TRUE(Base == Same);

  GoalCache::Key Flags = Base;
  Flags.FlagsFp = 2;
  GoalCache::finalizeKey(Flags);
  EXPECT_FALSE(Base == Flags) << "tree-shaping flags isolate entries";

  GoalCache::Key Origin = Base;
  Origin.Origin = Span{FileId(), 10, 21};
  GoalCache::finalizeKey(Origin);
  EXPECT_FALSE(Base == Origin)
      << "the same goal at a different span is a different entry";
  EXPECT_NE(Base.Hash, Origin.Hash);

  GoalCache::Key Pred = Base;
  Pred.Pred = {10, 21};
  GoalCache::finalizeKey(Pred);
  EXPECT_FALSE(Base == Pred);
}

TEST(CacheKeying, SplitHashMatchesFinalizeKey) {
  GoalCache::Key K;
  K.FlagsFp = 5;
  K.Origin = Span{FileId(), 3, 9};
  K.Pred = {1, 2, 3};
  K.Env = std::make_shared<const CacheEnc>(CacheEnc{7, 8});
  GoalCache::finalizeKey(K);
  uint64_t Seed = GoalCache::envSeed(K.FlagsFp, K.Env.get());
  EXPECT_EQ(K.Hash, GoalCache::finishKeyHash(Seed, K.Origin, K.Pred))
      << "the hoisted flags+environment prefix must compose to the same"
         " hash finalizeKey computes in one shot";
}

TEST(CacheKeying, KeyEqualityComparesEnvDeeply) {
  GoalCache::Key A, B;
  A.FlagsFp = B.FlagsFp = 1;
  A.Origin = B.Origin = Span{FileId(), 4, 8};
  A.Pred = B.Pred = {10, 20};
  A.Env = std::make_shared<const CacheEnc>(CacheEnc{7});
  B.Env = std::make_shared<const CacheEnc>(CacheEnc{7});
  GoalCache::finalizeKey(A);
  GoalCache::finalizeKey(B);
  EXPECT_EQ(A.Hash, B.Hash);
  EXPECT_TRUE(A == B) << "distinct shared_ptrs, equal contents";

  B.Env = std::make_shared<const CacheEnc>(CacheEnc{8});
  EXPECT_FALSE(A == B);
}

//===----------------------------------------------------------------------===//
// Sharded map semantics
//===----------------------------------------------------------------------===//

namespace {

GoalCache::Key keyFor(uint64_t N) {
  GoalCache::Key K;
  K.FlagsFp = 1;
  K.Pred = {N};
  GoalCache::finalizeKey(K);
  return K;
}

GoalCache::EntryPtr entryWithEvals(uint64_t Evals) {
  auto E = std::make_shared<GoalCache::Entry>();
  E->TotalEvals = Evals;
  return E;
}

/// A dependency unit distinguished only by its trait token — enough to
/// make two entries' Deps unequal.
GoalCache::EntryPtr entryWithDep(uint64_t Evals, uint64_t Trait) {
  auto E = std::make_shared<GoalCache::Entry>();
  E->TotalEvals = Evals;
  GoalCache::DepUnit U;
  U.K = GoalCache::DepUnit::Kind::TraitDecl;
  U.Trait = Trait;
  U.Fp = Trait * 3;
  E->Deps.push_back(U);
  return E;
}

/// Number of variants resident under \p K.
size_t variantCount(GoalCache &Cache, const GoalCache::Key &K) {
  std::vector<GoalCache::EntryPtr> Out;
  Cache.lookup(K, Out);
  return Out.size();
}

/// First variant under \p K, or null.
GoalCache::EntryPtr lookupOne(GoalCache &Cache, const GoalCache::Key &K) {
  std::vector<GoalCache::EntryPtr> Out;
  Cache.lookup(K, Out);
  return Out.empty() ? nullptr : Out.front();
}

} // namespace

TEST(CacheMap, InsertIsKeepFirstPerKeyAndDeps) {
  GoalCache Cache(GoalCache::Config{4, 16});
  GoalCache::Key K = keyFor(1);
  EXPECT_TRUE(Cache.insert(K, entryWithEvals(10)));
  EXPECT_FALSE(Cache.insert(K, entryWithEvals(99)))
      << "second insert with the same key and deps loses";
  ASSERT_NE(lookupOne(Cache, K), nullptr);
  EXPECT_EQ(lookupOne(Cache, K)->TotalEvals, 10u);
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(CacheMap, DistinctDepSetsCoexistUnderOneKey) {
  // The key no longer isolates programs, so the same goal recorded
  // against two programs (different dependency fingerprints) yields two
  // variants under one key; lookup returns both for the consumer's
  // dependency check to arbitrate.
  GoalCache Cache(GoalCache::Config{4, 16});
  GoalCache::Key K = keyFor(1);
  EXPECT_TRUE(Cache.insert(K, entryWithDep(10, /*Trait=*/1)));
  EXPECT_TRUE(Cache.insert(K, entryWithDep(20, /*Trait=*/2)))
      << "a different dependency set is a new variant, not a duplicate";
  EXPECT_FALSE(Cache.insert(K, entryWithDep(30, /*Trait=*/1)))
      << "equal deps still keep-first";
  EXPECT_EQ(variantCount(Cache, K), 2u);
  EXPECT_EQ(Cache.size(), 2u);
}

TEST(CacheMap, MissesReturnNothing) {
  GoalCache Cache;
  EXPECT_EQ(variantCount(Cache, keyFor(42)), 0u);
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(CacheMap, CapacityEvictsLeastRecentlyUsed) {
  // One shard, two slots: inserting a third key evicts the stalest.
  GoalCache Cache(GoalCache::Config{1, 2});
  EXPECT_TRUE(Cache.insert(keyFor(1), entryWithEvals(1)));
  EXPECT_TRUE(Cache.insert(keyFor(2), entryWithEvals(2)));
  // Touch key 1 so key 2 is now least recently used.
  EXPECT_NE(lookupOne(Cache, keyFor(1)), nullptr);
  EXPECT_TRUE(Cache.insert(keyFor(3), entryWithEvals(3)));
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.evictions(), 1u);
  EXPECT_NE(lookupOne(Cache, keyFor(1)), nullptr)
      << "recently used survives";
  EXPECT_EQ(lookupOne(Cache, keyFor(2)), nullptr) << "LRU entry evicted";
  EXPECT_NE(lookupOne(Cache, keyFor(3)), nullptr);
}

//===----------------------------------------------------------------------===//
// Solver integration
//===----------------------------------------------------------------------===//

TEST(CacheSolver, WarmCacheReusesSubtrees) {
  GoalCache Cache;
  SolveOutcome Cold, Warm;
  std::string First = solveToJSON(BasicSource, &Cache, &Cold);
  std::string Second = solveToJSON(BasicSource, &Cache, &Warm);
  EXPECT_EQ(First, Second);
  EXPECT_GT(Cold.NumCacheInserts, 0u);
  EXPECT_GT(Warm.NumCacheHits, 0u);
  EXPECT_LT(Warm.NumSolverSteps, Cold.NumSolverSteps)
      << "hits must replace real candidate assembly";
}

TEST(CacheSolver, MatchesUncachedByteForByte) {
  std::string Plain = solveToJSON(BasicSource, nullptr);
  GoalCache Cache;
  EXPECT_EQ(Plain, solveToJSON(BasicSource, &Cache));
  EXPECT_EQ(Plain, solveToJSON(BasicSource, &Cache)) << "warm replay";
}

TEST(CacheSolver, SingleSlotCacheIsStillCorrect) {
  std::string Plain = solveToJSON(BasicSource, nullptr);
  GoalCache Tiny(GoalCache::Config{1, 1});
  EXPECT_EQ(Plain, solveToJSON(BasicSource, &Tiny));
  EXPECT_EQ(Plain, solveToJSON(BasicSource, &Tiny));
}

TEST(CacheSolver, RejectAllInsertsNothing) {
  GoalCache Cache;
  SolveOutcome Out;
  std::string Plain = solveToJSON(BasicSource, nullptr);
  EXPECT_EQ(Plain, solveToJSON(BasicSource, &Cache, &Out,
                               /*RejectAll=*/true));
  EXPECT_EQ(Out.NumCacheInserts, 0u);
  EXPECT_GT(Out.NumCacheInsertsRejected, 0u);
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(CacheSolver, SharedPreludeHitsAcrossDistinctPrograms) {
  // Same cache, different second goal: the programs are distinct, but
  // their shared prelude (declarations plus the first goal, at identical
  // spans) must be served from the first program's entries — dependency
  // fingerprints, not program identity, decide reuse. Output stays the
  // cold solve's, byte for byte.
  std::string Other = "struct A;\n"
                      "struct B;\n"
                      "struct Wrap<T>;\n"
                      "trait Show;\n"
                      "impl Show for A;\n"
                      "impl<T> Show for Wrap<T> where T: Show;\n"
                      "goal Wrap<A>: Show;\n"
                      "goal Wrap<Wrap<B>>: Show;\n";
  std::string PlainA = solveToJSON(BasicSource, nullptr);
  std::string PlainB = solveToJSON(Other, nullptr);

  GoalCache Shared;
  SolveOutcome OutB;
  EXPECT_EQ(PlainA, solveToJSON(BasicSource, &Shared));
  EXPECT_EQ(PlainB, solveToJSON(Other, &Shared, &OutB));
  EXPECT_GT(OutB.NumCacheHits, 0u)
      << "the shared first goal must hit the first program's entry";
  EXPECT_EQ(OutB.NumCacheDepMisses, 0u)
      << "nothing the shared goals consulted differs between programs";
}

TEST(CacheSolver, EditedImplInvalidatesDependentGoals) {
  // A same-length edit retargets the ground impl from A to B: both goals'
  // recorded subtrees consulted the slices that change, so neither may be
  // served stale — the edited program's warm solve must equal its cold
  // solve and count dependency misses, not hits.
  std::string Edited = "struct A;\n"
                       "struct B;\n"
                       "struct Wrap<T>;\n"
                       "trait Show;\n"
                       "impl Show for B;\n"
                       "impl<T> Show for Wrap<T> where T: Show;\n"
                       "goal Wrap<A>: Show;\n"
                       "goal Wrap<B>: Show;\n";
  std::string PlainEdited = solveToJSON(Edited, nullptr);
  ASSERT_NE(PlainEdited, solveToJSON(BasicSource, nullptr))
      << "the edit must actually flip the goals' outcomes";

  GoalCache Shared;
  SolveOutcome Out;
  (void)solveToJSON(BasicSource, &Shared);
  ASSERT_GT(Shared.size(), 0u);
  EXPECT_EQ(PlainEdited, solveToJSON(Edited, &Shared, &Out));
  EXPECT_GT(Out.NumCacheDepMisses, 0u)
      << "stale entries must be rejected by their dependency check";
}

TEST(CacheSolver, ForcedDepMissDegradesToColdSolve) {
  // The cache.depmiss fault hook fails every dependency check: a warm
  // cache becomes pure overhead, but the output must not move.
  GoalCache Cache;
  std::string Plain = solveToJSON(BasicSource, nullptr);
  EXPECT_EQ(Plain, solveToJSON(BasicSource, &Cache));

  Parsed P(BasicSource);
  SolverOptions Opts = cacheOptions(&Cache);
  Opts.CacheForceDepMiss = true;
  Solver Solve(P.Prog, Opts);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(P.Prog, Out, Solve.inferContext());
  std::string JSON;
  for (const InferenceTree &Tree : Ex.Trees)
    JSON += treeToJSON(P.Prog, Tree, /*Pretty=*/true) + "\n";
  EXPECT_EQ(Plain, JSON);
  EXPECT_EQ(Out.NumCacheHits, 0u);
  EXPECT_GT(Out.NumCacheDepMisses, 0u);
}

TEST(CacheSolver, LegacyMemoizationDisablesTheCache) {
  Parsed P(BasicSource);
  GoalCache Cache;
  SolverOptions Opts = cacheOptions(&Cache);
  Opts.EnableMemoization = true;
  Solver Solve(P.Prog, Opts);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.NumCacheHits + Out.NumCacheMisses + Out.NumCacheInserts,
            0u);
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(CacheSolver, CachedWinnerSubstSurvivesReplay) {
  // The projection goal's NormalizesTo subgoal records the trait goal's
  // entry with its winner substitution; the warm replay hits that entry
  // and substitutes the associated binding with the spliced winner — an
  // empty one would normalize Out to the unbound generic instead of A.
  // Regression: finishRecording used to read the winner through a
  // reference aliasing the recording frame it had just moved from and
  // destroyed. (The origin-keyed cache means the standalone trait goal
  // on line 5 no longer feeds the projection on line 6 — each goal decl
  // replays only its own recorded subtree.)
  std::string Source = "struct A;\n"
                       "struct Wrap<T>;\n"
                       "trait Conv { type Out; }\n"
                       "impl<T> Conv for Wrap<T> { type Out = T; }\n"
                       "goal Wrap<A>: Conv;\n"
                       "goal <Wrap<A> as Conv>::Out == A;\n";
  std::string Plain = solveToJSON(Source, nullptr);
  GoalCache Cache;
  SolveOutcome Cold, Warm;
  EXPECT_EQ(Plain, solveToJSON(Source, &Cache, &Cold));
  EXPECT_EQ(Plain, solveToJSON(Source, &Cache, &Warm)) << "warm replay";
  EXPECT_GT(Warm.NumCacheHits, 0u)
      << "the replayed projection must consume its recorded entry";
}

TEST(CacheSolver, WorkCeilingParityWithWarmCache) {
  // An uncached governed run ticks the budget once per goal evaluation.
  // A cache hit must charge the skipped evaluations too — and refuse
  // hits the remaining stage ceiling cannot absorb — or the warm run
  // does strictly less governed work and stops at a different goal than
  // the cold run under the same ceiling.
  GoalCache Cache;
  (void)solveToJSON(BasicSource, &Cache); // Warm, ungoverned.
  ASSERT_GT(Cache.size(), 0u);
  for (uint64_t Ceiling = 1; Ceiling <= 32; ++Ceiling) {
    uint64_t PlainWork = 0, CachedWork = 0;
    std::string Plain =
        solveGoverned(BasicSource, nullptr, Ceiling, &PlainWork);
    std::string Cached =
        solveGoverned(BasicSource, &Cache, Ceiling, &CachedWork);
    EXPECT_EQ(Plain, Cached) << "ceiling " << Ceiling;
    EXPECT_EQ(PlainWork, CachedWork) << "ceiling " << Ceiling;
  }
}

TEST(CacheSolver, SeededProgramsSurviveSingleSlotSharing) {
  // A capacity-1 cache shared across many generated programs thrashes
  // constantly (every program evicts the last one's entry); outputs must
  // not change.
  GoalCache Tiny(GoalCache::Config{1, 1});
  for (uint64_t Seed = 0; Seed != 25; ++Seed) {
    std::string Source = testgen::randomProgram(Seed);
    EXPECT_EQ(solveToJSON(Source, nullptr), solveToJSON(Source, &Tiny))
        << "seed " << Seed;
  }
}
