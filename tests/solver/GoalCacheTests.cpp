//===- tests/solver/GoalCacheTests.cpp ------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The GoalCache contract: canonical encoding round-trips across arenas,
/// fingerprints isolate programs and flag combinations, the sharded map
/// keeps-first and evicts LRU at capacity, rejection keeps poisoned
/// subtrees out, and a cache of any capacity — including a pathological
/// single slot — never changes solver results.
///
//===----------------------------------------------------------------------===//

#include "common/RandomProgram.h"
#include "extract/Extract.h"
#include "extract/TreeJSON.h"
#include "solver/GoalCache.h"
#include "solver/Solver.h"
#include "support/Governance.h"
#include "tlang/Parser.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

/// A small program with one failing and one holding goal — enough to
/// populate a cache with both polarities.
const char *BasicSource = "struct A;\n"
                          "struct B;\n"
                          "struct Wrap<T>;\n"
                          "trait Show;\n"
                          "impl Show for A;\n"
                          "impl<T> Show for Wrap<T> where T: Show;\n"
                          "goal Wrap<A>: Show;\n"
                          "goal Wrap<B>: Show;\n";

struct Parsed {
  Session S;
  Program Prog;
  Parsed(const std::string &Source) : Prog(S) {
    ParseResult R = parseSource(Prog, "cache.tl", Source);
    EXPECT_TRUE(R.Success) << Source;
  }
};

SolverOptions cacheOptions(const std::string &Source, GoalCache *Cache,
                           bool RejectAll = false) {
  SolverOptions Opts;
  Opts.Cache = Cache;
  Opts.CacheRejectAll = RejectAll;
  auto Fp = GoalCache::fingerprint(Source, Opts.EmitWellFormedGoals,
                                   Opts.EnableCandidateIndex,
                                   Opts.EnableMemoization);
  Opts.CacheFp0 = Fp.first;
  Opts.CacheFp1 = Fp.second;
  return Opts;
}

/// Full solve + extraction serialization: the byte-level artifact the
/// differential assertions compare.
std::string solveToJSON(const std::string &Source, GoalCache *Cache,
                        SolveOutcome *OutStats = nullptr,
                        bool RejectAll = false) {
  Parsed P(Source);
  SolverOptions Opts =
      Cache ? cacheOptions(Source, Cache, RejectAll) : SolverOptions();
  Solver Solve(P.Prog, Opts);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(P.Prog, Out, Solve.inferContext());
  std::string JSON;
  for (const InferenceTree &Tree : Ex.Trees)
    JSON += treeToJSON(P.Prog, Tree, /*Pretty=*/true) + "\n";
  if (OutStats)
    *OutStats = std::move(Out);
  return JSON;
}

/// solveToJSON under a stage work ceiling; reports the work consumed.
std::string solveGoverned(const std::string &Source, GoalCache *Cache,
                          uint64_t Ceiling, uint64_t *WorkOut) {
  Parsed P(Source);
  SolverOptions Opts =
      Cache ? cacheOptions(Source, Cache) : SolverOptions();
  ExecutionBudget Budget;
  Budget.armStage(/*DeadlineSeconds=*/0, Ceiling);
  Opts.Budget = &Budget;
  Solver Solve(P.Prog, Opts);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(P.Prog, Out, Solve.inferContext());
  std::string JSON;
  for (const InferenceTree &Tree : Ex.Trees)
    JSON += treeToJSON(P.Prog, Tree, /*Pretty=*/true) + "\n";
  if (WorkOut)
    *WorkOut = Budget.stageWork();
  return JSON;
}

} // namespace

//===----------------------------------------------------------------------===//
// Canonical encoding
//===----------------------------------------------------------------------===//

TEST(CacheEncoding, TypesRoundTripAcrossArenas) {
  Session S;
  Program Prog(S);
  ASSERT_TRUE(parseSource(Prog, "enc.tl", BasicSource).Success);
  TypeArena &Arena = S.types();

  Symbol Wrap = S.name("Wrap");
  Symbol A = S.name("A");
  TypeId Inner = Arena.adt(A, {});
  TypeId Outer = Arena.adt(Wrap, {Inner});

  CacheEncoder Enc(Arena, CacheEncoder::RawVars);
  CacheEnc Tokens;
  Enc.type(Tokens, Outer);
  EXPECT_FALSE(Enc.sawVar());

  size_t Pos = 0;
  CacheDecoder Dec(Arena, /*VarsBase=*/0);
  EXPECT_EQ(Dec.type(Tokens, Pos), Outer);
  EXPECT_EQ(Pos, Tokens.size());
}

TEST(CacheEncoding, InferenceVariablesAreTagged) {
  Session S;
  Program Prog(S);
  ASSERT_TRUE(parseSource(Prog, "enc.tl", BasicSource).Success);
  TypeArena &Arena = S.types();
  TypeId Var = Arena.infer(7);

  CacheEnc Tokens;
  CacheEncoder Enc(Arena, CacheEncoder::RawVars);
  Enc.type(Tokens, Var);
  EXPECT_TRUE(Enc.sawVar());
  Enc.resetSawVar();
  EXPECT_FALSE(Enc.sawVar());

  size_t Pos = 0;
  CacheDecoder Dec(Arena, /*VarsBase=*/0);
  EXPECT_EQ(Dec.type(Tokens, Pos), Var) << "raw variables keep their index";
}

TEST(CacheEncoding, PredicatesRoundTrip) {
  Session S;
  Program Prog(S);
  ASSERT_TRUE(parseSource(Prog, "enc.tl", BasicSource).Success);
  TypeArena &Arena = S.types();
  Symbol Show = S.name("Show");
  Symbol A = S.name("A");
  Predicate P = Predicate::traitBound(Arena.adt(A, {}), Show, {});

  CacheEnc Tokens;
  CacheEncoder Enc(Arena, CacheEncoder::RawVars);
  Enc.pred(Tokens, P);

  size_t Pos = 0;
  CacheDecoder Dec(Arena, /*VarsBase=*/0);
  Predicate Back = Dec.pred(Tokens, Pos);
  EXPECT_EQ(Back.Kind, P.Kind);
  EXPECT_EQ(Back.Subject, P.Subject);
  EXPECT_EQ(Back.Trait, P.Trait);
  EXPECT_EQ(Pos, Tokens.size());
}

TEST(CacheEncoding, HashSaltSeparatesDomains) {
  CacheEnc Tokens = {1, 2, 3};
  EXPECT_NE(hashCacheEnc(Tokens, 0x1111), hashCacheEnc(Tokens, 0x2222));
}

//===----------------------------------------------------------------------===//
// Fingerprints and keys
//===----------------------------------------------------------------------===//

TEST(CacheKeying, FingerprintSeparatesSourcesAndFlags) {
  auto Base = GoalCache::fingerprint("struct A;", true, true, false);
  EXPECT_EQ(Base, GoalCache::fingerprint("struct A;", true, true, false));
  EXPECT_NE(Base, GoalCache::fingerprint("struct B;", true, true, false));
  EXPECT_NE(Base, GoalCache::fingerprint("struct A;", false, true, false));
  EXPECT_NE(Base, GoalCache::fingerprint("struct A;", true, false, false));
  EXPECT_NE(Base, GoalCache::fingerprint("struct A;", true, true, true));
}

TEST(CacheKeying, KeyEqualityComparesEnvDeeply) {
  GoalCache::Key A, B;
  A.Fp0 = B.Fp0 = 1;
  A.Fp1 = B.Fp1 = 2;
  A.Pred = B.Pred = {10, 20};
  A.Env = std::make_shared<const CacheEnc>(CacheEnc{7});
  B.Env = std::make_shared<const CacheEnc>(CacheEnc{7});
  GoalCache::finalizeKey(A);
  GoalCache::finalizeKey(B);
  EXPECT_EQ(A.Hash, B.Hash);
  EXPECT_TRUE(A == B) << "distinct shared_ptrs, equal contents";

  B.Env = std::make_shared<const CacheEnc>(CacheEnc{8});
  EXPECT_FALSE(A == B);
  GoalCache::Key C = A;
  C.Fp1 = 3;
  EXPECT_FALSE(A == C) << "fingerprint isolates programs";
}

//===----------------------------------------------------------------------===//
// Sharded map semantics
//===----------------------------------------------------------------------===//

namespace {

GoalCache::Key keyFor(uint64_t N) {
  GoalCache::Key K;
  K.Fp0 = 1;
  K.Fp1 = 2;
  K.Pred = {N};
  GoalCache::finalizeKey(K);
  return K;
}

GoalCache::EntryPtr entryWithEvals(uint64_t Evals) {
  auto E = std::make_shared<GoalCache::Entry>();
  E->TotalEvals = Evals;
  return E;
}

} // namespace

TEST(CacheMap, InsertIsKeepFirst) {
  GoalCache Cache(GoalCache::Config{4, 16});
  GoalCache::Key K = keyFor(1);
  EXPECT_TRUE(Cache.insert(K, entryWithEvals(10)));
  EXPECT_FALSE(Cache.insert(K, entryWithEvals(99)))
      << "second insert under the same key loses";
  ASSERT_NE(Cache.lookup(K), nullptr);
  EXPECT_EQ(Cache.lookup(K)->TotalEvals, 10u);
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(CacheMap, MissesReturnNull) {
  GoalCache Cache;
  EXPECT_EQ(Cache.lookup(keyFor(42)), nullptr);
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(CacheMap, CapacityEvictsLeastRecentlyUsed) {
  // One shard, two slots: inserting a third key evicts the stalest.
  GoalCache Cache(GoalCache::Config{1, 2});
  EXPECT_TRUE(Cache.insert(keyFor(1), entryWithEvals(1)));
  EXPECT_TRUE(Cache.insert(keyFor(2), entryWithEvals(2)));
  // Touch key 1 so key 2 is now least recently used.
  EXPECT_NE(Cache.lookup(keyFor(1)), nullptr);
  EXPECT_TRUE(Cache.insert(keyFor(3), entryWithEvals(3)));
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.evictions(), 1u);
  EXPECT_NE(Cache.lookup(keyFor(1)), nullptr) << "recently used survives";
  EXPECT_EQ(Cache.lookup(keyFor(2)), nullptr) << "LRU entry evicted";
  EXPECT_NE(Cache.lookup(keyFor(3)), nullptr);
}

//===----------------------------------------------------------------------===//
// Solver integration
//===----------------------------------------------------------------------===//

TEST(CacheSolver, WarmCacheReusesSubtrees) {
  GoalCache Cache;
  SolveOutcome Cold, Warm;
  std::string First = solveToJSON(BasicSource, &Cache, &Cold);
  std::string Second = solveToJSON(BasicSource, &Cache, &Warm);
  EXPECT_EQ(First, Second);
  EXPECT_GT(Cold.NumCacheInserts, 0u);
  EXPECT_GT(Warm.NumCacheHits, 0u);
  EXPECT_LT(Warm.NumSolverSteps, Cold.NumSolverSteps)
      << "hits must replace real candidate assembly";
}

TEST(CacheSolver, MatchesUncachedByteForByte) {
  std::string Plain = solveToJSON(BasicSource, nullptr);
  GoalCache Cache;
  EXPECT_EQ(Plain, solveToJSON(BasicSource, &Cache));
  EXPECT_EQ(Plain, solveToJSON(BasicSource, &Cache)) << "warm replay";
}

TEST(CacheSolver, SingleSlotCacheIsStillCorrect) {
  std::string Plain = solveToJSON(BasicSource, nullptr);
  GoalCache Tiny(GoalCache::Config{1, 1});
  EXPECT_EQ(Plain, solveToJSON(BasicSource, &Tiny));
  EXPECT_EQ(Plain, solveToJSON(BasicSource, &Tiny));
}

TEST(CacheSolver, RejectAllInsertsNothing) {
  GoalCache Cache;
  SolveOutcome Out;
  std::string Plain = solveToJSON(BasicSource, nullptr);
  EXPECT_EQ(Plain, solveToJSON(BasicSource, &Cache, &Out,
                               /*RejectAll=*/true));
  EXPECT_EQ(Out.NumCacheInserts, 0u);
  EXPECT_GT(Out.NumCacheInsertsRejected, 0u);
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(CacheSolver, DistinctProgramsNeverShareEntries) {
  // Same cache, different second goal: the fingerprint must isolate the
  // programs even though they share every declaration.
  std::string Other = "struct A;\n"
                      "struct B;\n"
                      "struct Wrap<T>;\n"
                      "trait Show;\n"
                      "impl Show for A;\n"
                      "impl<T> Show for Wrap<T> where T: Show;\n"
                      "goal Wrap<A>: Show;\n"
                      "goal Wrap<Wrap<B>>: Show;\n";
  std::string PlainA = solveToJSON(BasicSource, nullptr);
  std::string PlainB = solveToJSON(Other, nullptr);

  GoalCache Shared;
  SolveOutcome OutB;
  EXPECT_EQ(PlainA, solveToJSON(BasicSource, &Shared));
  EXPECT_EQ(PlainB, solveToJSON(Other, &Shared, &OutB));
  EXPECT_EQ(OutB.NumCacheHits, 0u)
      << "entries from a different program must not hit";
}

TEST(CacheSolver, LegacyMemoizationDisablesTheCache) {
  Parsed P(BasicSource);
  GoalCache Cache;
  SolverOptions Opts = cacheOptions(BasicSource, &Cache);
  Opts.EnableMemoization = true;
  Solver Solve(P.Prog, Opts);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.NumCacheHits + Out.NumCacheMisses + Out.NumCacheInserts,
            0u);
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(CacheSolver, CachedWinnerSubstSurvivesStandaloneRecording) {
  // The trait goal is proved standalone first, so its entry is recorded
  // with no caller TraitEvalInfo: the winner lives in the recording
  // frame itself. The projection goal then hits that entry through its
  // NormalizesTo subgoal and substitutes the associated binding with
  // the spliced winner substitution — an empty one would normalize Out
  // to the unbound generic instead of A. Regression: finishRecording
  // used to read the winner through a reference aliasing the recording
  // frame it had just moved from and destroyed.
  std::string Source = "struct A;\n"
                       "struct Wrap<T>;\n"
                       "trait Conv { type Out; }\n"
                       "impl<T> Conv for Wrap<T> { type Out = T; }\n"
                       "goal Wrap<A>: Conv;\n"
                       "goal <Wrap<A> as Conv>::Out == A;\n";
  std::string Plain = solveToJSON(Source, nullptr);
  GoalCache Cache;
  SolveOutcome Out;
  EXPECT_EQ(Plain, solveToJSON(Source, &Cache, &Out));
  EXPECT_GT(Out.NumCacheHits, 0u)
      << "the projection goal must consume the trait goal's entry";
  EXPECT_EQ(Plain, solveToJSON(Source, &Cache)) << "warm replay";
}

TEST(CacheSolver, WorkCeilingParityWithWarmCache) {
  // An uncached governed run ticks the budget once per goal evaluation.
  // A cache hit must charge the skipped evaluations too — and refuse
  // hits the remaining stage ceiling cannot absorb — or the warm run
  // does strictly less governed work and stops at a different goal than
  // the cold run under the same ceiling.
  GoalCache Cache;
  (void)solveToJSON(BasicSource, &Cache); // Warm, ungoverned.
  ASSERT_GT(Cache.size(), 0u);
  for (uint64_t Ceiling = 1; Ceiling <= 32; ++Ceiling) {
    uint64_t PlainWork = 0, CachedWork = 0;
    std::string Plain =
        solveGoverned(BasicSource, nullptr, Ceiling, &PlainWork);
    std::string Cached =
        solveGoverned(BasicSource, &Cache, Ceiling, &CachedWork);
    EXPECT_EQ(Plain, Cached) << "ceiling " << Ceiling;
    EXPECT_EQ(PlainWork, CachedWork) << "ceiling " << Ceiling;
  }
}

TEST(CacheSolver, SeededProgramsSurviveSingleSlotSharing) {
  // A capacity-1 cache shared across many generated programs thrashes
  // constantly (every program evicts the last one's entry); outputs must
  // not change.
  GoalCache Tiny(GoalCache::Config{1, 1});
  for (uint64_t Seed = 0; Seed != 25; ++Seed) {
    std::string Source = testgen::randomProgram(Seed);
    EXPECT_EQ(solveToJSON(Source, nullptr), solveToJSON(Source, &Tiny))
        << "seed " << Seed;
  }
}
