//===- tests/solver/SolverTests.cpp ---------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/Solver.h"
#include "tlang/Parser.h"
#include "tlang/Printer.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

class SolverTest : public ::testing::Test {
protected:
  Session S;
  Program Prog{S};

  void load(std::string Source) {
    ParseResult Result = parseSource(Prog, "test.tl", std::move(Source));
    ASSERT_TRUE(Result.Success) << Result.describe(S.sources());
  }

  /// Renders the failed leaves of the first goal for easy assertions.
  std::vector<std::string> failedLeafStrings(const SolveOutcome &Out,
                                             Solver &Solve,
                                             size_t GoalIndex = 0) {
    PrintOptions Opts;
    Opts.Resolve = [&](TypeId T) {
      return Solve.inferContext().resolve(T);
    };
    TypePrinter Printer(Prog, Opts);
    std::vector<std::string> Result;
    for (GoalNodeId Leaf :
         Out.Forest.failedLeaves(Out.FinalRoots[GoalIndex]))
      Result.push_back(Printer.print(Out.Forest.goal(Leaf).Pred));
    return Result;
  }
};

} // namespace

TEST_F(SolverTest, DirectImplSucceeds) {
  load("struct Timer;\n"
       "trait Resource;\n"
       "impl Resource for Timer;\n"
       "goal Timer: Resource;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  ASSERT_EQ(Out.FinalResults.size(), 1u);
  EXPECT_EQ(Out.FinalResults[0], EvalResult::Yes);
  EXPECT_FALSE(Out.hasErrors());
}

TEST_F(SolverTest, MissingImplFails) {
  load("struct Timer;\n"
       "trait Resource;\n"
       "goal Timer: Resource;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::No);
  EXPECT_TRUE(Out.hasErrors());
  // The failing goal is its own failed leaf: no candidates at all.
  auto Leaves = Out.Forest.failedLeaves(Out.FinalRoots[0]);
  ASSERT_EQ(Leaves.size(), 1u);
  EXPECT_EQ(Leaves[0], Out.FinalRoots[0]);
}

TEST_F(SolverTest, WhereClauseChainSucceeds) {
  load("struct Vec<T>;\n"
       "struct Timer;\n"
       "trait Display;\n"
       "impl Display for Timer;\n"
       "impl<T> Display for Vec<T> where T: Display;\n"
       "goal Vec<Vec<Timer>>: Display;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::Yes);
}

TEST_F(SolverTest, WhereClauseChainFailsAtTheLeaf) {
  load("struct Vec<T>;\n"
       "struct Timer;\n"
       "trait Display;\n"
       "impl<T> Display for Vec<T> where T: Display;\n"
       "goal Vec<Vec<Timer>>: Display;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::No);
  auto Leaves = failedLeafStrings(Out, Solve);
  ASSERT_EQ(Leaves.size(), 1u);
  EXPECT_EQ(Leaves[0], "Timer: Display");
}

TEST_F(SolverTest, ParamEnvAssumptionProvesGoal) {
  load("struct Vec<T>;\n"
       "trait Display;\n"
       "impl<T> Display for Vec<T> where T: Display;\n"
       "goal Vec<?T>: Display where ?T: Display;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::Yes);
}

TEST_F(SolverTest, BevyStyleBranchPointBlamesSystemParam) {
  // The Figure 4 structure: run_timer fails IntoSystem because Timer (a
  // bare parameter) is not a SystemParam; the other branch (System) also
  // fails. The failed leaves must mention Timer: SystemParam — the key
  // bound the rustc diagnostic elides.
  load("#[external] struct ResMut<T>;\n"
       "struct Timer;\n"
       "#[external] trait Resource;\n"
       "#[external] trait SystemParam;\n"
       "#[external] impl<T> SystemParam for ResMut<T> where T: Resource;\n"
       "#[external] trait System;\n"
       "#[external, fn_trait] trait SystemParamFunction<Sig>;\n"
       "#[external] struct IsFunctionSystem;\n"
       "#[external] struct IsSystem;\n"
       "#[external] trait IntoSystem<Marker>;\n"
       "#[external] impl<P, Func> IntoSystem<(IsFunctionSystem, fn(P))> for "
       "Func\n"
       "  where Func: SystemParamFunction<fn(P)>, P: SystemParam;\n"
       "#[external] impl<Sys> IntoSystem<IsSystem> for Sys where Sys: "
       "System;\n"
       "impl Resource for Timer;\n"
       "fn run_timer(Timer);\n"
       "goal run_timer: IntoSystem<?M>;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::No);
  auto Leaves = failedLeafStrings(Out, Solve);
  ASSERT_EQ(Leaves.size(), 2u);
  // Both branches of the inference tree fail; Timer: SystemParam is among
  // the leaves (order is tree order here, ranking comes later).
  EXPECT_TRUE(Leaves[0] == "Timer: SystemParam" ||
              Leaves[1] == "Timer: SystemParam")
      << Leaves[0] << " / " << Leaves[1];
  EXPECT_TRUE(Leaves[0] == "fn(Timer) {run_timer}: System" ||
              Leaves[1] == "fn(Timer) {run_timer}: System");
}

TEST_F(SolverTest, FixedBevyProgramSucceeds) {
  load("#[external] struct ResMut<T>;\n"
       "struct Timer;\n"
       "#[external] trait Resource;\n"
       "#[external] trait SystemParam;\n"
       "#[external] impl<T> SystemParam for ResMut<T> where T: Resource;\n"
       "#[external, fn_trait] trait SystemParamFunction<Sig>;\n"
       "#[external] struct IsFunctionSystem;\n"
       "#[external] trait IntoSystem<Marker>;\n"
       "#[external] impl<P, Func> IntoSystem<(IsFunctionSystem, fn(P))> for "
       "Func\n"
       "  where Func: SystemParamFunction<fn(P)>, P: SystemParam;\n"
       "impl Resource for Timer;\n"
       "fn run_timer(ResMut<Timer>);\n"
       "goal run_timer: IntoSystem<?M>;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::Yes);
  // The marker was inferred along the way.
  EXPECT_EQ(Solve.inferContext().countUnresolved(
                Prog.goals()[0].Pred.Args[0]),
            0u);
}

TEST_F(SolverTest, AstRecursionOverflows) {
  // Figure 3: the impls form a cycle; the solver must report overflow
  // (E0275), not hang.
  load("trait AstAssocs: Sized { type Data: AssocData<Self>; }\n"
       "trait AssocData<A>;\n"
       "struct EmptyNode;\n"
       "impl<Data> AstAssocs for Data where Data: AssocData<Data> {\n"
       "  type Data = Data;\n"
       "}\n"
       "impl<A> AssocData<A> for EmptyNode where A: AstAssocs;\n"
       "goal EmptyNode: AstAssocs;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::Overflow);
  // The overflow leaf repeats the root predicate.
  auto Leaves = failedLeafStrings(Out, Solve);
  ASSERT_FALSE(Leaves.empty());
  EXPECT_EQ(Leaves[0], "EmptyNode: AstAssocs");
}

TEST_F(SolverTest, DepthLimitCatchesGrowingRecursion) {
  load("struct Vec<T>;\n"
       "struct Seed;\n"
       "trait Grow;\n"
       "impl<T> Grow for T where Vec<T>: Grow;\n"
       "goal Seed: Grow;");
  SolverOptions Opts;
  Opts.MaxDepth = 16;
  Solver Solve(Prog, Opts);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::Overflow);
}

TEST_F(SolverTest, ProjectionNormalizationSucceeds) {
  load("struct Once;\n"
       "struct users::table;\n"
       "trait AppearsInFromClause<QS> { type Count; }\n"
       "impl AppearsInFromClause<users::table> for users::table {\n"
       "  type Count = Once;\n"
       "}\n"
       "goal <users::table as AppearsInFromClause<users::table>>::Count "
       "== Once;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::Yes);
}

TEST_F(SolverTest, ProjectionMismatchFails) {
  // The Diesel Figure 2 shape: Count normalizes to Never, expected Once.
  load("struct Once;\n"
       "struct Never;\n"
       "struct users::table;\n"
       "struct posts::table;\n"
       "trait AppearsInFromClause<QS> { type Count; }\n"
       "impl AppearsInFromClause<users::table> for users::table {\n"
       "  type Count = Once;\n"
       "}\n"
       "impl AppearsInFromClause<users::table> for posts::table {\n"
       "  type Count = Never;\n"
       "}\n"
       "goal <posts::table as AppearsInFromClause<users::table>>::Count "
       "== Once;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::No);
}

TEST_F(SolverTest, NormalizesToNodeCapturesValue) {
  load("struct Once;\n"
       "struct users::table;\n"
       "trait AppearsInFromClause<QS> { type Count; }\n"
       "impl AppearsInFromClause<users::table> for users::table {\n"
       "  type Count = Once;\n"
       "}\n"
       "goal <users::table as AppearsInFromClause<users::table>>::Count "
       "== Once;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  // Find the NormalizesTo node and check its captured value.
  bool Found = false;
  for (size_t I = 0; I != Out.Forest.numGoals(); ++I) {
    const GoalNode &Node = Out.Forest.goal(GoalNodeId(uint32_t(I)));
    if (Node.Pred.Kind == PredicateKind::NormalizesTo &&
        Node.NormalizedValue.isValid()) {
      EXPECT_EQ(Node.NormalizedValue, S.types().adt(S.name("Once")));
      Found = true;
    }
  }
  EXPECT_TRUE(Found);
}

TEST_F(SolverTest, AmbiguityResolvedAcrossFixpointRounds) {
  // Goal 1 is ambiguous in round 0 (two impls could apply to ?T); goal 2
  // pins ?T via projection; round 1 resolves goal 1. This is the
  // interleaving of Section 4.
  load("struct A;\n"
       "struct B;\n"
       "struct Holder<T>;\n"
       "trait Display;\n"
       "impl Display for A;\n"
       "impl Display for B;\n"
       "trait Picker { type Choice; }\n"
       "impl Picker for Holder<A> { type Choice = A; }\n"
       "goal ?T: Display;\n"
       "goal <Holder<A> as Picker>::Choice == ?T;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::Yes);
  EXPECT_EQ(Out.FinalResults[1], EvalResult::Yes);
  EXPECT_GE(Out.RoundsUsed, 2u);
  // The first goal has two snapshots: an ambiguous one and a resolved
  // one.
  ASSERT_EQ(Out.Snapshots[0].size(), 2u);
  EXPECT_EQ(Out.Forest.goal(Out.Snapshots[0][0]).Result,
            EvalResult::Maybe);
  EXPECT_EQ(Out.Forest.goal(Out.Snapshots[0][1]).Result, EvalResult::Yes);
}

TEST_F(SolverTest, ResidualAmbiguityIsAnError) {
  load("struct A;\n"
       "struct B;\n"
       "trait Display;\n"
       "impl Display for A;\n"
       "impl Display for B;\n"
       "goal ?T: Display;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::Maybe);
  EXPECT_TRUE(Out.hasErrors());
}

TEST_F(SolverTest, SpeculationGroupsAreAssigned) {
  load("struct Vec<T>;\n"
       "trait ToString;\n"
       "trait CustomToString;\n"
       "impl<T> CustomToString for Vec<T>;\n"
       "#[speculative] goal Vec<()>: ToString;\n"
       "#[speculative] goal Vec<()>: CustomToString;\n"
       "goal Vec<()>: CustomToString;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.SpeculationGroups[0], 0u);
  EXPECT_EQ(Out.SpeculationGroups[1], 0u);
  EXPECT_EQ(Out.SpeculationGroups[2], UINT32_MAX);
  EXPECT_EQ(Out.FinalResults[0], EvalResult::No);
  EXPECT_EQ(Out.FinalResults[1], EvalResult::Yes);
}

TEST_F(SolverTest, FnTraitBuiltinMatchesSignature) {
  load("struct Timer;\n"
       "#[fn_trait] trait Callable<Sig>;\n"
       "fn tick(Timer) -> Timer;\n"
       "goal tick: Callable<fn(Timer) -> Timer>;\n"
       "goal tick: Callable<fn(Timer)>;\n"
       "goal fn(Timer) -> Timer: Callable<fn(Timer) -> Timer>;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::Yes);
  EXPECT_EQ(Out.FinalResults[1], EvalResult::No); // Return type differs.
  EXPECT_EQ(Out.FinalResults[2], EvalResult::Yes); // fn pointers too.
}

TEST_F(SolverTest, FnTraitOutputNormalizes) {
  load("struct Timer;\n"
       "#[fn_trait] trait Callable<Sig> { type Output; }\n"
       "fn tick(Timer) -> Timer;\n"
       "goal <tick as Callable<fn(Timer) -> Timer>>::Output == Timer;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::Yes);
}

TEST_F(SolverTest, AssocTypeBoundsAreEnforced) {
  // An impl whose binding violates the trait's associated-type bound
  // fails through that bound.
  load("trait Meta;\n"
       "struct Good;\n"
       "struct Bad;\n"
       "impl Meta for Good;\n"
       "trait Node { type Info: Meta; }\n"
       "struct N1;\n"
       "struct N2;\n"
       "impl Node for N1 { type Info = Good; }\n"
       "impl Node for N2 { type Info = Bad; }\n"
       "goal N1: Node;\n"
       "goal N2: Node;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::Yes);
  EXPECT_EQ(Out.FinalResults[1], EvalResult::No);
  auto Leaves = failedLeafStrings(Out, Solve, 1);
  ASSERT_EQ(Leaves.size(), 1u);
  EXPECT_EQ(Leaves[0], "Bad: Meta");
}

TEST_F(SolverTest, EvaluationBudgetForcesOverflow) {
  // A deep (but finite) search that exceeds the global evaluation budget
  // must come back as overflow rather than running arbitrarily long.
  load("struct V1<T>; struct V2<T>;\n"
       "struct Timer;\n"
       "trait Display;\n"
       "impl Display for Timer;\n"
       "impl<T> Display for V1<T> where T: Display;\n"
       "impl<T> Display for V2<T> where V1<T>: Display;\n"
       "goal V2<V2<V2<V2<Timer>>>>: Display;");
  SolverOptions Tight;
  Tight.MaxGoalEvaluations = 10;
  Solver Limited(Prog, Tight);
  SolveOutcome Out = Limited.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::Overflow);

  Solver Unlimited(Prog);
  EXPECT_EQ(Unlimited.solve().FinalResults[0], EvalResult::Yes);
}

TEST_F(SolverTest, AmbiguousSelfRecordsAMarkerCandidate) {
  load("struct A;\n"
       "trait Display;\n"
       "impl Display for A;\n"
       "goal ?T: Display;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::Maybe);
  const GoalNode &Root = Out.Forest.goal(Out.FinalRoots[0]);
  ASSERT_EQ(Root.Candidates.size(), 1u);
  const CandidateNode &Cand = Out.Forest.candidate(Root.Candidates[0]);
  EXPECT_EQ(Cand.Kind, CandidateKind::Builtin);
  EXPECT_EQ(S.text(Cand.BuiltinName), "ambiguous-self");
  EXPECT_EQ(Cand.Result, EvalResult::Maybe);
}

TEST_F(SolverTest, SelfInImplWhereClauses) {
  // `Self` inside an impl's where-clause denotes the impl's self type,
  // exactly as the paper's Figure 3a writes `where Data: AssocData<Self>`.
  load("struct Inner;\n"
       "struct Wrapper<T>;\n"
       "trait Marker<W>;\n"
       "trait Tagged;\n"
       "impl<T> Marker<Wrapper<T>> for T;\n"
       "impl<T> Tagged for Wrapper<T> where Wrapper<T>: Marker<Self>;\n"
       "goal Wrapper<Inner>: Tagged;");
  // Wrapper<Inner>: Marker<Self=Wrapper<Inner>>? The Marker impl gives
  // `T: Marker<Wrapper<T>>`, i.e. Wrapper<Inner>: Marker<Wrapper<
  // Wrapper<Inner>>> — which does NOT match Marker<Wrapper<Inner>>, so
  // the goal fails; but with the where clause `T: Marker<Self>` below it
  // succeeds.
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::No);

  Session S2;
  Program P2(S2);
  ASSERT_TRUE(parseSource(P2, "t.tl",
                          "struct Inner;\n"
                          "struct Wrapper<T>;\n"
                          "trait Marker<W>;\n"
                          "trait Tagged;\n"
                          "impl<T> Marker<Wrapper<T>> for T;\n"
                          "impl<T> Tagged for Wrapper<T> where T: "
                          "Marker<Self>;\n"
                          "goal Wrapper<Inner>: Tagged;")
                  .Success);
  Solver Solve2(P2);
  EXPECT_EQ(Solve2.solve().FinalResults[0], EvalResult::Yes);
}

TEST_F(SolverTest, SupertraitElaborationOfAssumptions) {
  // An `?T: Ord` assumption justifies `?T: Eq` through the supertrait
  // bound (rustc's elaborated predicates); transitively through
  // PartialEq too.
  load("trait PartialEq;\n"
       "trait Eq: PartialEq;\n"
       "trait Ord: Eq;\n"
       "goal ?T: PartialEq where ?T: Ord;\n"
       "goal ?U: Ord where ?U: PartialEq;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::Yes);
  // Elaboration only goes up the hierarchy, never down.
  EXPECT_NE(Out.FinalResults[1], EvalResult::Yes);
}

TEST_F(SolverTest, ElaborationSubstitutesTraitArguments) {
  load("struct Meters;\n"
       "trait From<T>;\n"
       "trait Into<T>: From<T>;\n"
       "goal ?X: From<Meters> where ?X: Into<Meters>;\n"
       "goal ?Y: From<Meters> where ?Y: Into<?Z>;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::Yes);
  // The second goal resolves too: matching the elaborated assumption
  // unifies ?Z with Meters.
  EXPECT_EQ(Out.FinalResults[1], EvalResult::Yes);
}

TEST_F(SolverTest, ProjectionSubjectsNormalizeBeforeAssembly) {
  // `<N1 as Node>::Info: Meta` must resolve Info to Good first and then
  // prove Good: Meta (rustc normalizes goal types before candidate
  // assembly).
  load("trait Meta;\n"
       "trait Marked;\n"
       "struct Good;\n"
       "struct Bad;\n"
       "impl Meta for Good;\n"
       "trait Node { type Info; }\n"
       "struct N1;\n"
       "struct N2;\n"
       "impl Node for N1 { type Info = Good; }\n"
       "impl Node for N2 { type Info = Bad; }\n"
       "goal <N1 as Node>::Info: Meta;\n"
       "goal <N2 as Node>::Info: Meta;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::Yes);
  EXPECT_EQ(Out.FinalResults[1], EvalResult::No);
  // The failing case blames Bad: Meta, not the raw projection.
  auto Leaves = failedLeafStrings(Out, Solve, 1);
  ASSERT_EQ(Leaves.size(), 1u);
  EXPECT_EQ(Leaves[0], "Bad: Meta");
}

TEST_F(SolverTest, RigidProjectionSubjectsMatchAssumptions) {
  // With only an assumption proving T: Node, <T as Node>::Info stays
  // rigid; a structurally identical assumption proves the bound and the
  // solver must not loop.
  load("trait Meta;\n"
       "trait Node { type Info; }\n"
       "goal <?T as Node>::Info: Meta\n"
       "  where ?T: Node, <?T as Node>::Info: Meta;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::Yes);
}

TEST_F(SolverTest, OutlivesGoals) {
  load("struct Timer;\n"
       "goal &'static Timer: 'a;\n"
       "goal &'a Timer: 'static;\n"
       "goal Timer: 'static;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  EXPECT_EQ(Out.FinalResults[0], EvalResult::Yes); // 'static: 'a.
  EXPECT_EQ(Out.FinalResults[1], EvalResult::No);  // 'a does not outlive.
  EXPECT_EQ(Out.FinalResults[2], EvalResult::Yes); // No regions inside.
}

TEST_F(SolverTest, InternalGoalsAppearInRawTree) {
  load("struct Timer;\n"
       "trait Resource;\n"
       "impl Resource for Timer;\n"
       "goal Timer: Resource;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  bool SawWellFormed = false;
  for (size_t I = 0; I != Out.Forest.numGoals(); ++I)
    SawWellFormed |= Out.Forest.goal(GoalNodeId(uint32_t(I))).Pred.Kind ==
                     PredicateKind::WellFormed;
  EXPECT_TRUE(SawWellFormed);

  SolverOptions Quieter;
  Quieter.EmitWellFormedGoals = false;
  Program Fresh(S);
  // Re-parse into a fresh program to re-solve without WF noise.
  ASSERT_TRUE(parseSource(Fresh, "t.tl",
                          "struct Timer2;\n"
                          "trait Resource2;\n"
                          "impl Resource2 for Timer2;\n"
                          "goal Timer2: Resource2;")
                  .Success);
  Solver Solve2(Fresh, Quieter);
  SolveOutcome Out2 = Solve2.solve();
  for (size_t I = 0; I != Out2.Forest.numGoals(); ++I)
    EXPECT_NE(Out2.Forest.goal(GoalNodeId(uint32_t(I))).Pred.Kind,
              PredicateKind::WellFormed);
}

TEST_F(SolverTest, MemoizationPreservesResults) {
  load("struct Vec<T>;\n"
       "struct Timer;\n"
       "trait Display;\n"
       "impl Display for Timer;\n"
       "impl<T> Display for Vec<T> where T: Display;\n"
       "goal (Vec<Timer>, Vec<Timer>): Display;\n"
       "goal Vec<Timer>: Display;\n"
       "goal Vec<Timer>: Display;");
  Solver Plain(Prog);
  SolveOutcome PlainOut = Plain.solve();

  SolverOptions Memo;
  Memo.EnableMemoization = true;
  Solver Cached(Prog, Memo);
  SolveOutcome CachedOut = Cached.solve();

  ASSERT_EQ(PlainOut.FinalResults.size(), CachedOut.FinalResults.size());
  for (size_t I = 0; I != PlainOut.FinalResults.size(); ++I)
    EXPECT_EQ(PlainOut.FinalResults[I], CachedOut.FinalResults[I]);
  EXPECT_GT(CachedOut.NumMemoHits, 0u);
  EXPECT_LT(CachedOut.NumEvaluations, PlainOut.NumEvaluations);
}

TEST_F(SolverTest, SubtreeSizeCountsGoalAndCandidateNodes) {
  load("struct Timer;\n"
       "trait Resource;\n"
       "impl Resource for Timer;\n"
       "goal Timer: Resource;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  // Root goal + impl candidate + WF subgoal + its builtin candidate,
  // plus the trait has no where clauses: at least 4 nodes.
  EXPECT_GE(Out.Forest.subtreeSize(Out.FinalRoots[0]), 4u);
}
