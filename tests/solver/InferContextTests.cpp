//===- tests/solver/InferContextTests.cpp ---------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "solver/InferContext.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

class InferContextTest : public ::testing::Test {
protected:
  StringInterner Interner;
  TypeArena Arena;
  InferContext Infcx{Arena, 0};

  Symbol name(std::string_view Text) { return Interner.intern(Text); }
};

} // namespace

TEST_F(InferContextTest, UnifyBindsVariables) {
  TypeId V = Infcx.freshVar();
  TypeId Timer = Arena.adt(name("Timer"));
  EXPECT_TRUE(Infcx.unify(V, Timer));
  EXPECT_EQ(Infcx.resolve(V), Timer);
}

TEST_F(InferContextTest, UnifyIsSymmetric) {
  TypeId V = Infcx.freshVar();
  TypeId Timer = Arena.adt(name("Timer"));
  EXPECT_TRUE(Infcx.unify(Timer, V));
  EXPECT_EQ(Infcx.resolve(V), Timer);
}

TEST_F(InferContextTest, StructuralUnification) {
  TypeId V = Infcx.freshVar();
  TypeId VecV = Arena.adt(name("Vec"), {V});
  TypeId VecTimer = Arena.adt(name("Vec"), {Arena.adt(name("Timer"))});
  EXPECT_TRUE(Infcx.unify(VecV, VecTimer));
  EXPECT_EQ(Infcx.resolve(V), Arena.adt(name("Timer")));
}

TEST_F(InferContextTest, MismatchedConstructorsFail) {
  TypeId VecUnit = Arena.adt(name("Vec"), {Arena.unit()});
  TypeId SetUnit = Arena.adt(name("Set"), {Arena.unit()});
  EXPECT_FALSE(Infcx.unify(VecUnit, SetUnit));
}

TEST_F(InferContextTest, OccursCheckRejectsInfiniteTypes) {
  TypeId V = Infcx.freshVar();
  TypeId VecV = Arena.adt(name("Vec"), {V});
  EXPECT_FALSE(Infcx.unify(V, VecV));
}

TEST_F(InferContextTest, OccursCheckThroughBindings) {
  TypeId A = Infcx.freshVar();
  TypeId B = Infcx.freshVar();
  ASSERT_TRUE(Infcx.unify(A, Arena.adt(name("Vec"), {B})));
  // B := Vec<A> would create A := Vec<Vec<A>> indirectly.
  EXPECT_FALSE(Infcx.unify(B, Arena.adt(name("Vec"), {A})));
}

TEST_F(InferContextTest, VarVarUnification) {
  TypeId A = Infcx.freshVar();
  TypeId B = Infcx.freshVar();
  EXPECT_TRUE(Infcx.unify(A, B));
  TypeId Timer = Arena.adt(name("Timer"));
  EXPECT_TRUE(Infcx.unify(A, Timer));
  EXPECT_EQ(Infcx.resolve(B), Timer);
}

TEST_F(InferContextTest, SnapshotRollback) {
  TypeId V = Infcx.freshVar();
  InferContext::Snapshot Snap = Infcx.snapshot();
  ASSERT_TRUE(Infcx.unify(V, Arena.unit()));
  EXPECT_TRUE(Infcx.isBound(Arena.get(V).InferIndex));
  Infcx.rollbackTo(Snap);
  EXPECT_FALSE(Infcx.isBound(Arena.get(V).InferIndex));
  // Can rebind after rollback.
  EXPECT_TRUE(Infcx.unify(V, Arena.adt(name("Timer"))));
}

TEST_F(InferContextTest, RegionsAreErasedDuringUnification) {
  TypeId RefA = Arena.reference(Region::named(name("a")), false,
                                Arena.unit());
  TypeId RefStatic =
      Arena.reference(Region::makeStatic(), false, Arena.unit());
  EXPECT_TRUE(Infcx.unify(RefA, RefStatic));
  // But mutability is structural.
  TypeId RefMut = Arena.reference(Region::makeStatic(), true, Arena.unit());
  EXPECT_FALSE(Infcx.unify(RefA, RefMut));
}

TEST_F(InferContextTest, ParamsUnifyOnlyWithThemselves) {
  TypeId T = Arena.param(name("T"));
  TypeId U = Arena.param(name("U"));
  EXPECT_TRUE(Infcx.unify(T, T));
  EXPECT_FALSE(Infcx.unify(T, U));
}

TEST_F(InferContextTest, RigidProjectionsUnifyStructurally) {
  TypeId SelfTy = Arena.adt(name("Table"));
  TypeId P1 = Arena.projection(SelfTy, name("Tr"), {}, name("Count"));
  TypeId P2 = Arena.projection(SelfTy, name("Tr"), {}, name("Count"));
  TypeId P3 = Arena.projection(SelfTy, name("Tr"), {}, name("Other"));
  EXPECT_TRUE(Infcx.unify(P1, P2));
  EXPECT_FALSE(Infcx.unify(P1, P3));
}

TEST_F(InferContextTest, CountUnresolvedDeduplicates) {
  TypeId A = Infcx.freshVar();
  TypeId Pair = Arena.tuple({A, A});
  EXPECT_EQ(Infcx.countUnresolved(Pair), 1u);
  ASSERT_TRUE(Infcx.unify(A, Arena.unit()));
  EXPECT_EQ(Infcx.countUnresolved(Pair), 0u);
}

TEST_F(InferContextTest, ResolvePredicate) {
  TypeId A = Infcx.freshVar();
  Predicate P = Predicate::traitBound(A, name("Display"), {A});
  ASSERT_TRUE(Infcx.unify(A, Arena.unit()));
  Predicate Resolved = Infcx.resolve(P);
  EXPECT_EQ(Resolved.Subject, Arena.unit());
  EXPECT_EQ(Resolved.Args[0], Arena.unit());
  EXPECT_TRUE(Infcx.isFullyResolved(Resolved));
}

TEST_F(InferContextTest, FirstFreshRespectsSourceVariables) {
  InferContext Scoped(Arena, 5);
  TypeId V = Scoped.freshVar();
  EXPECT_EQ(Arena.get(V).InferIndex, 5u);
}
