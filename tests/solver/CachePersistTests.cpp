//===- tests/solver/CachePersistTests.cpp ---------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persisted-cache contract: a serialized GoalCache image reloads
/// into a byte-identical solve served by disk entries; re-serialization
/// is deterministic; and the loader treats every image as adversarial —
/// truncation at any byte, single bit flips, magic/version/flags
/// forgery, section swaps, and structurally invalid records each yield
/// a structured CacheLoadStatus with all-or-nothing semantics (a
/// rejected image never leaves a partial load behind, and never
/// disturbs entries already resident). The file-level wrappers route
/// the cache.io and cache.load_corrupt fault sites through the same
/// rejection paths.
///
//===----------------------------------------------------------------------===//

#include "extract/Extract.h"
#include "extract/TreeJSON.h"
#include "solver/CachePersist.h"
#include "solver/GoalCache.h"
#include "solver/Solver.h"
#include "support/FaultInjector.h"
#include "tlang/Parser.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace argus;

namespace {

const char *BasicSource = "struct A;\n"
                          "struct B;\n"
                          "struct Wrap<T>;\n"
                          "trait Show;\n"
                          "impl Show for A;\n"
                          "impl<T> Show for Wrap<T> where T: Show;\n"
                          "goal Wrap<A>: Show;\n"
                          "goal Wrap<B>: Show;\n";

struct Parsed {
  Session S;
  Program Prog;
  Parsed(const std::string &Source) : Prog(S) {
    ParseResult R = parseSource(Prog, "persist.tl", Source);
    EXPECT_TRUE(R.Success) << Source;
  }
};

/// Full solve + extraction serialization against \p Cache (or cold when
/// null) — the byte-level artifact the round-trip assertions compare.
std::string solveToJSON(const std::string &Source, GoalCache *Cache,
                        SolveOutcome *OutStats = nullptr) {
  Parsed P(Source);
  SolverOptions Opts;
  Opts.Cache = Cache;
  Solver Solve(P.Prog, Opts);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(P.Prog, Out, Solve.inferContext());
  std::string JSON;
  for (const InferenceTree &Tree : Ex.Trees)
    JSON += treeToJSON(P.Prog, Tree, /*Pretty=*/true) + "\n";
  if (OutStats)
    *OutStats = std::move(Out);
  return JSON;
}

/// A cache populated by one solve of \p Source.
std::string populatedImage(const std::string &Source,
                           size_t *EntriesOut = nullptr) {
  GoalCache Cache;
  (void)solveToJSON(Source, &Cache);
  if (EntriesOut)
    *EntriesOut = Cache.size();
  return serializeGoalCache(Cache);
}

uint64_t fnv1a(const char *Data, size_t N) {
  uint64_t H = 14695981039346656037ull;
  for (size_t I = 0; I != N; ++I) {
    H ^= static_cast<unsigned char>(Data[I]);
    H *= 1099511628211ull;
  }
  return H;
}

uint64_t readWord(const std::string &S, size_t WordIndex) {
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(
             static_cast<unsigned char>(S[WordIndex * 8 + I]))
         << (8 * I);
  return V;
}

void writeWord(std::string &S, size_t WordIndex, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    S[WordIndex * 8 + I] = static_cast<char>((V >> (8 * I)) & 0xFF);
}

/// Recomputes every checksum so a forged field must be caught by the
/// validator it targets, not by checksum collateral.
void fixChecksums(std::string &Image) {
  ASSERT_GE(Image.size(), 88u);
  uint64_t SymWords = readWord(Image, 4);
  uint64_t EntryWords = readWord(Image, 6);
  uint64_t TotalWords = Image.size() / 8;
  ASSERT_EQ(10 + SymWords + EntryWords + 1, TotalWords);
  const char *Sym = Image.data() + 10 * 8;
  writeWord(Image, 7, fnv1a(Sym, static_cast<size_t>(SymWords) * 8));
  writeWord(Image, 8, fnv1a(Sym + SymWords * 8,
                            static_cast<size_t>(EntryWords) * 8));
  writeWord(Image, 9, fnv1a(Image.data(), 9 * 8));
  writeWord(Image, TotalWords - 1, fnv1a(Image.data(), Image.size() - 8));
}

TEST(CachePersist, EmptyCacheRoundTrips) {
  std::string Image = serializeGoalCache(GoalCache());
  ASSERT_GE(Image.size(), 88u) << "even an empty cache has a full header";
  GoalCache Fresh;
  CacheLoadResult R = deserializeGoalCache(Fresh, Image);
  EXPECT_TRUE(R.ok()) << R.Detail;
  EXPECT_EQ(R.EntriesLoaded, 0u);
  EXPECT_EQ(Fresh.size(), 0u);
}

TEST(CachePersist, RoundTripServesByteIdenticalSolveFromDisk) {
  std::string Cold = solveToJSON(BasicSource, nullptr);
  size_t Entries = 0;
  std::string Image = populatedImage(BasicSource, &Entries);
  ASSERT_GT(Entries, 0u);

  GoalCache Loaded;
  CacheLoadResult R = deserializeGoalCache(Loaded, Image);
  ASSERT_TRUE(R.ok()) << R.Detail;
  EXPECT_EQ(R.EntriesLoaded, Entries);
  EXPECT_EQ(R.EntriesInImage, Entries);
  EXPECT_EQ(Loaded.size(), Entries);

  SolveOutcome Warm;
  std::string FromDisk = solveToJSON(BasicSource, &Loaded, &Warm);
  EXPECT_EQ(FromDisk, Cold);
  EXPECT_GT(Warm.NumCacheDiskHits, 0u)
      << "the loaded entries should have served the warm solve";
  EXPECT_GT(Warm.NumCacheCrossRevHits, 0u)
      << "disk hits are cross-revision hits by definition";
}

TEST(CachePersist, ReserializationIsDeterministic) {
  std::string Image = populatedImage(BasicSource);
  GoalCache Loaded;
  ASSERT_TRUE(deserializeGoalCache(Loaded, Image).ok());
  // Same resident state, same bytes — twice over, and across the
  // load/serialize round trip itself.
  std::string Again = serializeGoalCache(Loaded);
  EXPECT_EQ(serializeGoalCache(Loaded), Again);
  GoalCache Reloaded;
  ASSERT_TRUE(deserializeGoalCache(Reloaded, Again).ok());
  EXPECT_EQ(Reloaded.size(), Loaded.size());
}

TEST(CachePersist, EveryTruncationIsRejectedAllOrNothing) {
  std::string Image = populatedImage(BasicSource);
  for (size_t Len = 0; Len < Image.size(); ++Len) {
    GoalCache Fresh;
    CacheLoadResult R =
        deserializeGoalCache(Fresh, std::string_view(Image).substr(0, Len));
    EXPECT_FALSE(R.ok()) << "prefix of " << Len << " bytes accepted";
    EXPECT_EQ(Fresh.size(), 0u)
        << "partial load left entries behind at prefix " << Len;
  }
}

TEST(CachePersist, EverySingleBitFlipIsRejected) {
  std::string Image = populatedImage(BasicSource);
  for (size_t Byte = 0; Byte != Image.size(); ++Byte) {
    std::string Mutant = Image;
    Mutant[Byte] ^= static_cast<char>(1u << (Byte % 8));
    GoalCache Fresh;
    CacheLoadResult R = deserializeGoalCache(Fresh, Mutant);
    EXPECT_FALSE(R.ok()) << "bit flip at byte " << Byte << " accepted";
    EXPECT_EQ(Fresh.size(), 0u);
  }
}

TEST(CachePersist, MagicVersionAndFlagsForgeryAreClassified) {
  std::string Image = populatedImage(BasicSource);

  std::string BadMagic = Image;
  writeWord(BadMagic, 0, 0x0123456789abcdefull);
  fixChecksums(BadMagic);
  GoalCache C1;
  EXPECT_EQ(deserializeGoalCache(C1, BadMagic).Status,
            CacheLoadStatus::BadMagic);

  std::string Skewed = Image;
  writeWord(Skewed, 1, CacheImageVersion + 1);
  fixChecksums(Skewed);
  GoalCache C2;
  EXPECT_EQ(deserializeGoalCache(C2, Skewed).Status,
            CacheLoadStatus::BadVersion);

  // Version skew with a stale header checksum reads as corruption, not
  // as a future version — the checksum is validated first.
  std::string SkewedStale = Image;
  writeWord(SkewedStale, 1, CacheImageVersion + 1);
  GoalCache C3;
  EXPECT_EQ(deserializeGoalCache(C3, SkewedStale).Status,
            CacheLoadStatus::BadChecksum);

  std::string Flagged = Image;
  writeWord(Flagged, 2, 1);
  fixChecksums(Flagged);
  GoalCache C4;
  EXPECT_EQ(deserializeGoalCache(C4, Flagged).Status,
            CacheLoadStatus::Malformed);

  EXPECT_EQ(C1.size() + C2.size() + C3.size() + C4.size(), 0u);
}

TEST(CachePersist, SwappedSectionsAreRejectedEvenWithValidChecksums) {
  std::string Image = populatedImage(BasicSource);
  uint64_t SymWords = readWord(Image, 4);
  uint64_t EntryWords = readWord(Image, 6);
  ASSERT_GT(SymWords, 0u);
  ASSERT_GT(EntryWords, 0u);

  // Swap the two sections bodily and update the header to match; the
  // checksums then pass and rejection must come from the parsers.
  std::string Swapped = Image.substr(0, 80);
  Swapped += Image.substr(80 + SymWords * 8, EntryWords * 8);
  Swapped += Image.substr(80, SymWords * 8);
  Swapped += Image.substr(80 + (SymWords + EntryWords) * 8);
  writeWord(Swapped, 4, EntryWords);
  writeWord(Swapped, 6, SymWords);
  fixChecksums(Swapped);
  GoalCache Fresh;
  CacheLoadResult R = deserializeGoalCache(Fresh, Swapped);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(Fresh.size(), 0u);
}

TEST(CachePersist, ForgedEntryCountIsMalformedNotPartial) {
  std::string Image = populatedImage(BasicSource);
  std::string Forged = Image;
  writeWord(Forged, 5, readWord(Image, 5) + 100); // entryCount
  fixChecksums(Forged);
  GoalCache Fresh;
  CacheLoadResult R = deserializeGoalCache(Fresh, Forged);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(Fresh.size(), 0u) << "entries parsed before the forged count"
                                 " ran out must not be committed";
}

TEST(CachePersist, RejectedLoadLeavesResidentEntriesUntouched) {
  GoalCache Cache;
  std::string Baseline = solveToJSON(BasicSource, &Cache);
  size_t Resident = Cache.size();
  ASSERT_GT(Resident, 0u);

  std::string Image = populatedImage(BasicSource);
  Image.resize(Image.size() / 2); // Guaranteed rejection.
  CacheLoadResult R = deserializeGoalCache(Cache, Image);
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(Cache.size(), Resident);
  // And the survivors still serve a byte-identical solve.
  EXPECT_EQ(solveToJSON(BasicSource, &Cache), Baseline);
}

TEST(CachePersist, LoadingIntoWarmCacheKeepsFirst) {
  GoalCache Cache;
  (void)solveToJSON(BasicSource, &Cache);
  size_t Resident = Cache.size();
  std::string Image = populatedImage(BasicSource);
  CacheLoadResult R = deserializeGoalCache(Cache, Image);
  EXPECT_TRUE(R.ok()) << R.Detail;
  // Same keys, already resident: keep-first means nothing is replaced
  // and the size never shrinks.
  EXPECT_GE(Cache.size(), Resident);
}

TEST(CachePersist, FileRoundTripAndMissingFile) {
  std::string Path =
      testing::TempDir() + "argus_cache_persist_roundtrip.gc";
  size_t Entries = 0;
  GoalCache Cache;
  (void)solveToJSON(BasicSource, &Cache);
  Entries = Cache.size();

  CacheSaveResult S = saveGoalCache(Cache, Path);
  ASSERT_TRUE(S.Ok) << S.Detail;
  EXPECT_EQ(S.EntriesSaved, Entries);
  EXPECT_GT(S.ImageBytes, 0u);

  GoalCache Loaded;
  CacheLoadResult L = loadGoalCache(Loaded, Path, nullptr, {});
  EXPECT_TRUE(L.ok()) << L.Detail;
  EXPECT_EQ(Loaded.size(), Entries);
  std::remove(Path.c_str());

  GoalCache Fresh;
  CacheLoadResult Missing = loadGoalCache(Fresh, Path, nullptr, {});
  EXPECT_EQ(Missing.Status, CacheLoadStatus::IoError);
  EXPECT_EQ(Fresh.size(), 0u);
}

TEST(CachePersist, FaultSitesDriveIoAndCorruptionRejection) {
  std::string Path = testing::TempDir() + "argus_cache_persist_faults.gc";
  GoalCache Cache;
  (void)solveToJSON(BasicSource, &Cache);
  ASSERT_TRUE(saveGoalCache(Cache, Path).Ok);

  FaultInjector Io("cache.io", /*Seed=*/1);
  GoalCache C1;
  EXPECT_EQ(loadGoalCache(C1, Path, &Io, Path).Status,
            CacheLoadStatus::IoError);
  EXPECT_EQ(C1.size(), 0u);
  CacheSaveResult S = saveGoalCache(Cache, Path, &Io, Path);
  EXPECT_FALSE(S.Ok);

  FaultInjector Corrupt("cache.load_corrupt", /*Seed=*/1);
  GoalCache C2;
  CacheLoadResult R = loadGoalCache(C2, Path, &Corrupt, Path);
  EXPECT_EQ(R.Status, CacheLoadStatus::BadChecksum);
  EXPECT_EQ(C2.size(), 0u);

  // Unrelated sites leave the load alone.
  FaultInjector Other("cache.reject", /*Seed=*/1);
  GoalCache C3;
  EXPECT_TRUE(loadGoalCache(C3, Path, &Other, Path).ok());
  EXPECT_EQ(C3.size(), Cache.size());
  std::remove(Path.c_str());
}

} // namespace
