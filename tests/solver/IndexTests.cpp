//===- tests/solver/IndexTests.cpp ----------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Edge-case tests for the coherence-time candidate index and its
/// subsumption inprocessing (solver/Index.cpp). The correctness bar is
/// byte-identical proof trees with the index and pruning on or off, so
/// every case that *keeps* an impl also proves that pruning it would
/// have changed behavior, and every case that *prunes* one checks the
/// trees byte for byte against the unindexed solve.
///
//===----------------------------------------------------------------------===//

#include "extract/Extract.h"
#include "extract/TreeJSON.h"
#include "solver/Index.h"
#include "solver/Solver.h"
#include "support/Governance.h"
#include "tlang/Parser.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

/// Parses, optionally builds the prebuilt index, solves, and returns the
/// pretty-printed JSON of every extracted tree concatenated. Used for the
/// byte-identity assertions.
std::string solveToJSON(const std::string &Source, bool Index, bool Subsume,
                        SolverIndexStats *StatsOut = nullptr,
                        std::vector<std::string> *NotesOut = nullptr) {
  Session S;
  Program Prog(S);
  EXPECT_TRUE(parseSource(Prog, "index.tl", Source).Success) << Source;

  SolverOptions Opts;
  Opts.EnableCandidateIndex = Index;
  Opts.EnableSubsumption = Subsume;
  if (Index) {
    SolverIndexOptions IOpts;
    IOpts.EnableSubsumption = Subsume;
    SolverIndexStats Built = buildSolverIndex(Prog, IOpts);
    EXPECT_TRUE(Built.Completed) << Source;
    EXPECT_TRUE(Prog.hasSolverIndex()) << Source;
    if (StatsOut)
      *StatsOut = Built;
    if (NotesOut)
      *NotesOut = Prog.indexNotes();
  }

  Solver Solve(Prog, Opts);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
  std::string JSON;
  for (const InferenceTree &Tree : Ex.Trees)
    JSON += treeToJSON(Prog, Tree, /*Pretty=*/true) + "\n";
  return JSON;
}

/// Root result of the sole goal in \p Source under the given index
/// configuration. Used by the keep-cases to pin the selection semantics
/// the pruning must not disturb.
EvalResult rootResult(const std::string &Source, bool Index, bool Subsume) {
  Session S;
  Program Prog(S);
  EXPECT_TRUE(parseSource(Prog, "index.tl", Source).Success) << Source;
  if (Index) {
    SolverIndexOptions IOpts;
    IOpts.EnableSubsumption = Subsume;
    EXPECT_TRUE(buildSolverIndex(Prog, IOpts).Completed) << Source;
  }
  SolverOptions Opts;
  Opts.EnableCandidateIndex = Index;
  Opts.EnableSubsumption = Subsume;
  Solver Solve(Prog, Opts);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
  EXPECT_EQ(Ex.Trees.size(), 1u) << Source;
  if (Ex.Trees.empty())
    return EvalResult::Overflow;
  return Ex.Trees[0].root().Result;
}

bool anyNoteContains(const std::vector<std::string> &Notes,
                     const std::string &Needle) {
  for (const std::string &Note : Notes)
    if (Note.find(Needle) != std::string::npos)
      return true;
  return false;
}

/// An impl whose head no reachable goal can mention is pruned, and the
/// trees stay byte-identical: head unification against it would have
/// failed tracelessly anyway.
TEST(SolverIndex, UnreachableHeadImplIsPrunedTreeIdentically) {
  const std::string Source = "struct A;\n"
                             "struct B;\n"
                             "trait Show;\n"
                             "impl Show for A;\n"
                             "impl Show for B;\n"
                             "goal A: Show;\n";
  SolverIndexStats Stats;
  std::vector<std::string> Notes;
  std::string Indexed =
      solveToJSON(Source, /*Index=*/true, /*Subsume=*/true, &Stats, &Notes);
  EXPECT_EQ(Stats.ImplsSubsumed, 1u);
  EXPECT_TRUE(anyNoteContains(
      Notes, "no reachable goal's self type has this head"));

  // Byte-identical against the fully lazy path and the unpruned index.
  EXPECT_EQ(Indexed, solveToJSON(Source, /*Index=*/false, /*Subsume=*/false));
  EXPECT_EQ(Indexed, solveToJSON(Source, /*Index=*/true, /*Subsume=*/false));
}

/// An impl of a trait no goal, where-clause, or projection ever queries
/// is pruned by the (trait, arity)-pair rule.
TEST(SolverIndex, UnqueriedTraitPairImplIsPruned) {
  const std::string Source = "struct A;\n"
                             "trait Show;\n"
                             "trait Hidden;\n"
                             "impl Show for A;\n"
                             "impl Hidden for A;\n"
                             "goal A: Show;\n";
  SolverIndexStats Stats;
  std::vector<std::string> Notes;
  std::string Indexed =
      solveToJSON(Source, /*Index=*/true, /*Subsume=*/true, &Stats, &Notes);
  EXPECT_EQ(Stats.ImplsSubsumed, 1u);
  EXPECT_TRUE(
      anyNoteContains(Notes, "no reachable goal mentions this trait shape"));
  EXPECT_EQ(Indexed, solveToJSON(Source, /*Index=*/false, /*Subsume=*/false));
}

/// Overlapping-but-not-subsuming heads: a concrete impl and a generic
/// impl that both match the goal. Neither may be pruned — both assemble,
/// and the goal reports ambiguity. Pruning either would flip the result.
TEST(SolverIndex, OverlappingHeadsBothKept) {
  const std::string Source = "struct A;\n"
                             "struct Wrap<T>;\n"
                             "trait Show;\n"
                             "impl Show for Wrap<A>;\n"
                             "impl<T> Show for Wrap<T>;\n"
                             "goal Wrap<A>: Show;\n";
  SolverIndexStats Stats;
  std::string Indexed =
      solveToJSON(Source, /*Index=*/true, /*Subsume=*/true, &Stats);
  EXPECT_EQ(Stats.ImplsSubsumed, 0u);

  // Both candidates succeed, so the goal is ambiguous — with and without
  // the index. A pruned impl would have made it an unambiguous Yes.
  EXPECT_EQ(rootResult(Source, true, true), EvalResult::Maybe);
  EXPECT_EQ(rootResult(Source, false, false), EvalResult::Maybe);
  EXPECT_EQ(Indexed, solveToJSON(Source, /*Index=*/false, /*Subsume=*/false));
}

/// A blanket impl strictly generalizing a concrete one is a selection
/// fact, not a pruning opportunity: both stay candidates (the goal is
/// ambiguous), and the pair is surfaced as a "shadowed" trace note.
TEST(SolverIndex, BlanketShadowingConcreteKeptWithNote) {
  const std::string Source = "struct A;\n"
                             "trait Show;\n"
                             "impl Show for A;\n"
                             "impl<T> Show for T;\n"
                             "goal A: Show;\n";
  SolverIndexStats Stats;
  std::vector<std::string> Notes;
  std::string Indexed =
      solveToJSON(Source, /*Index=*/true, /*Subsume=*/true, &Stats, &Notes);
  EXPECT_EQ(Stats.ImplsSubsumed, 0u);
  EXPECT_GE(Stats.ShadowedPairs, 1u);
  EXPECT_TRUE(anyNoteContains(Notes, "shadowed:"));
  EXPECT_TRUE(anyNoteContains(Notes, "kept: both remain candidates"));

  EXPECT_EQ(rootResult(Source, true, true), EvalResult::Maybe);
  EXPECT_EQ(Indexed, solveToJSON(Source, /*Index=*/false, /*Subsume=*/false));
}

/// An impl reachable only because a goal *environment* poses its shape
/// must not be pruned. The case is behavior-relevant, not just
/// work-relevant: the environment assumption and the impl are two
/// successful candidates, so the goal is ambiguous — pruning the impl
/// would flip Maybe to Yes.
TEST(SolverIndex, EnvironmentReachableImplKept) {
  const std::string Source = "struct B;\n"
                             "trait Show;\n"
                             "impl Show for B;\n"
                             "goal B: Show where B: Show;\n";
  SolverIndexStats Stats;
  std::string Indexed =
      solveToJSON(Source, /*Index=*/true, /*Subsume=*/true, &Stats);
  EXPECT_EQ(Stats.ImplsSubsumed, 0u);

  EXPECT_EQ(rootResult(Source, true, true), EvalResult::Maybe);
  EXPECT_EQ(rootResult(Source, false, false), EvalResult::Maybe);
  EXPECT_EQ(Indexed, solveToJSON(Source, /*Index=*/false, /*Subsume=*/false));
}

/// A budget stop mid-build discards the partial index: nothing is
/// installed, the solver stays on the lazy path, and the output is
/// byte-identical to a run that never attempted the index. Degrade must
/// never mean "a differently pruned tree".
TEST(SolverIndex, BudgetStopMidBuildDegradesToLazyPath) {
  const std::string Source = "struct A;\n"
                             "struct B;\n"
                             "struct C;\n"
                             "trait Show;\n"
                             "impl Show for A;\n"
                             "impl Show for B;\n"
                             "impl Show for C;\n"
                             "impl<T> Show for T;\n"
                             "goal A: Show;\n";
  Session S;
  Program Prog(S);
  ASSERT_TRUE(parseSource(Prog, "index.tl", Source).Success);

  ExecutionBudget Budget;
  Budget.armStage(/*DeadlineSeconds=*/0.0, /*WorkCeiling=*/1);
  SolverIndexOptions IOpts;
  IOpts.Budget = &Budget;
  SolverIndexStats Built = buildSolverIndex(Prog, IOpts);
  EXPECT_FALSE(Built.Completed);
  EXPECT_FALSE(Prog.hasSolverIndex());
  EXPECT_TRUE(Budget.stopped());
  EXPECT_EQ(Budget.stageReason(), StopReason::WorkExceeded);

  // The degraded Program solves on the lazy path; its trees match a run
  // that never tried to build an index.
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
  std::string JSON;
  for (const InferenceTree &Tree : Ex.Trees)
    JSON += treeToJSON(Prog, Tree, /*Pretty=*/true) + "\n";
  EXPECT_EQ(JSON, solveToJSON(Source, /*Index=*/false, /*Subsume=*/false));
}

/// A completed subsumption-off build materializes every slice unpruned:
/// same bytes, zero impls subsumed, no notes.
TEST(SolverIndex, SubsumptionOffMaterializesUnpruned) {
  const std::string Source = "struct A;\n"
                             "struct B;\n"
                             "trait Show;\n"
                             "impl Show for A;\n"
                             "impl Show for B;\n"
                             "goal A: Show;\n";
  SolverIndexStats Stats;
  std::vector<std::string> Notes;
  std::string Indexed =
      solveToJSON(Source, /*Index=*/true, /*Subsume=*/false, &Stats, &Notes);
  EXPECT_EQ(Stats.ImplsSubsumed, 0u);
  EXPECT_TRUE(Notes.empty());
  EXPECT_EQ(Indexed, solveToJSON(Source, /*Index=*/false, /*Subsume=*/false));
}

} // namespace
