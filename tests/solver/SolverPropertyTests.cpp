//===- tests/solver/SolverPropertyTests.cpp -------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests over randomly generated trait programs: the solver's
/// AND/OR result invariants, determinism, memoization transparency, and
/// extraction consistency must hold for every program the generator can
/// produce, not just the corpus.
///
//===----------------------------------------------------------------------===//

#include "common/RandomProgram.h"
#include "extract/Extract.h"
#include "extract/TreeJSON.h"
#include "solver/GoalCache.h"
#include "solver/Index.h"
#include "solver/Solver.h"
#include "tlang/Parser.h"

#include <gtest/gtest.h>

using namespace argus;
using testgen::editProgram;
using testgen::randomProgram;

namespace {

/// Recomputes a goal's result from its recorded candidates and checks
/// the selection semantics; recurses over the whole forest.
void checkGoalInvariants(const ProofForest &Forest, GoalNodeId Id) {
  const GoalNode &Goal = Forest.goal(Id);
  if (Goal.FromCache || Goal.Result == EvalResult::Overflow)
    return; // Cached nodes carry no candidates; overflow short-circuits.

  size_t Successes = 0;
  EvalResult Folded = EvalResult::No;
  for (CandNodeId CandId : Goal.Candidates) {
    const CandidateNode &Cand = Forest.candidate(CandId);
    Successes += Cand.Result == EvalResult::Yes;
    Folded = disjoin(Folded, Cand.Result);

    // A candidate's result conjoins its subgoals (builtin candidates may
    // have none and carry their own verdict).
    if (!Cand.SubGoals.empty()) {
      EvalResult Conj = EvalResult::Yes;
      for (GoalNodeId Sub : Cand.SubGoals) {
        EXPECT_EQ(Forest.goal(Sub).ParentCandidate, CandId);
        Conj = conjoin(Conj, Forest.goal(Sub).Result);
        checkGoalInvariants(Forest, Sub);
      }
      if (Cand.Kind == CandidateKind::Impl)
        EXPECT_EQ(Cand.Result, Conj) << "candidate result must conjoin "
                                        "its subgoals";
    }
  }

  switch (Goal.Result) {
  case EvalResult::Yes:
    EXPECT_EQ(Successes, 1u) << "a yes goal selects exactly one candidate";
    EXPECT_TRUE(Goal.SelectedCandidate.isValid() ||
                Goal.Pred.Kind != PredicateKind::Trait);
    break;
  case EvalResult::Maybe:
    // Ambiguity: several successes, or residual maybes.
    EXPECT_TRUE(Successes > 1 || Folded == EvalResult::Maybe);
    break;
  case EvalResult::No:
    EXPECT_EQ(Successes, 0u);
    break;
  case EvalResult::Overflow:
    break;
  }
}

class SolverPropertyTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(SolverPropertyTest, ResultLatticeInvariantsHold) {
  Session S;
  Program Prog(S);
  std::string Source = randomProgram(GetParam());
  ParseResult Parsed = parseSource(Prog, "fuzz.tl", Source);
  ASSERT_TRUE(Parsed.Success) << Source;

  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  for (GoalNodeId Root : Out.FinalRoots)
    checkGoalInvariants(Out.Forest, Root);
}

TEST_P(SolverPropertyTest, SolvingIsDeterministic) {
  std::string Source = randomProgram(GetParam());
  auto Run = [&]() {
    Session S;
    Program Prog(S);
    EXPECT_TRUE(parseSource(Prog, "fuzz.tl", Source).Success);
    Solver Solve(Prog);
    return Solve.solve().FinalResults;
  };
  EXPECT_EQ(Run(), Run());
}

TEST_P(SolverPropertyTest, MemoizationIsTransparent) {
  std::string Source = randomProgram(GetParam());
  Session S1, S2;
  Program P1(S1), P2(S2);
  ASSERT_TRUE(parseSource(P1, "fuzz.tl", Source).Success);
  ASSERT_TRUE(parseSource(P2, "fuzz.tl", Source).Success);

  Solver Plain(P1);
  SolverOptions Memo;
  Memo.EnableMemoization = true;
  Solver Cached(P2, Memo);
  EXPECT_EQ(Plain.solve().FinalResults, Cached.solve().FinalResults)
      << Source;
}

TEST_P(SolverPropertyTest, ExtractionPreservesFailureStructure) {
  Session S;
  Program Prog(S);
  ASSERT_TRUE(parseSource(Prog, "fuzz.tl", randomProgram(GetParam()))
                  .Success);
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());

  // One tree per failing goal, and it is rooted at a failure with at
  // least one failed leaf.
  size_t Failing = 0;
  for (EvalResult Result : Out.FinalResults)
    Failing += Result != EvalResult::Yes;
  EXPECT_EQ(Ex.Trees.size(), Failing);
  for (const InferenceTree &Tree : Ex.Trees) {
    EXPECT_TRUE(idealFailed(Tree.root().Result));
    EXPECT_FALSE(Tree.failedLeaves().empty());
    // No internal-kind successes survive default extraction, and every
    // surviving node's parent links are consistent.
    for (size_t I = 0; I != Tree.numGoals(); ++I) {
      const IdealGoal &Goal = Tree.goal(IGoalId(uint32_t(I)));
      if (!isUserFacing(Goal.Pred.Kind))
        EXPECT_TRUE(idealFailed(Goal.Result));
      if (Goal.Parent.isValid()) {
        const IdealCandidate &Parent = Tree.candidate(Goal.Parent);
        bool Found = false;
        for (IGoalId Sub : Parent.SubGoals)
          Found |= Sub == Goal.Id;
        EXPECT_TRUE(Found);
      }
    }
  }
}

TEST_P(SolverPropertyTest, FailedLeavesAreFullyResolvedOrAmbiguous) {
  Session S;
  Program Prog(S);
  ASSERT_TRUE(parseSource(Prog, "fuzz.tl", randomProgram(GetParam()))
                  .Success);
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
  for (const InferenceTree &Tree : Ex.Trees)
    for (IGoalId Leaf : Tree.failedLeaves()) {
      const IdealGoal &Goal = Tree.goal(Leaf);
      // A No/Overflow verdict on a leaf is definite; only Maybe leaves
      // may carry unresolved inference variables... and residual Maybe
      // goals must carry at least one (otherwise they would have
      // resolved).
      if (Goal.Result == EvalResult::Maybe &&
          Goal.Pred.Kind == PredicateKind::Trait &&
          Tree.goal(Tree.rootId()).Result == EvalResult::Maybe)
        EXPECT_GE(Goal.UnresolvedVars + Tree.root().UnresolvedVars, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

//===----------------------------------------------------------------------===//
// Goal-cache properties (500 seeds; see also the engine-level
// differential tests in tests/integration/CacheDifferentialTests.cpp)
//===----------------------------------------------------------------------===//

namespace {

class CachePropertyTest : public ::testing::TestWithParam<uint64_t> {};

/// Solves \p Source against \p Cache (null = uncached) with the default
/// solver options. Entry validity is decided per lookup by dependency
/// fingerprints, so no per-program wiring is needed.
SolveOutcome solveWithCache(const std::string &Source, GoalCache *Cache) {
  Session S;
  Program Prog(S);
  EXPECT_TRUE(parseSource(Prog, "fuzz.tl", Source).Success) << Source;
  SolverOptions Opts;
  Opts.Cache = Cache;
  Solver Solve(Prog, Opts);
  return Solve.solve();
}

/// Serializes every extracted tree of one solve — the byte-level
/// artifact the cached/uncached comparison diffs.
std::string treesAsJSON(const std::string &Source, GoalCache *Cache) {
  Session S;
  Program Prog(S);
  EXPECT_TRUE(parseSource(Prog, "fuzz.tl", Source).Success) << Source;
  SolverOptions Opts;
  Opts.Cache = Cache;
  Solver Solve(Prog, Opts);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
  std::string JSON;
  for (const InferenceTree &Tree : Ex.Trees)
    JSON += treeToJSON(Prog, Tree, /*Pretty=*/true) + "\n";
  return JSON;
}

/// One cell of the (shared cache x candidate index x subsumption)
/// matrix: like treesAsJSON, but with the prebuilt solver index
/// optionally built and installed (coherence-time, as the engine does)
/// before solving.
std::string treesAsJSONCell(const std::string &Source, GoalCache *Cache,
                            bool Index, bool Subsume) {
  Session S;
  Program Prog(S);
  EXPECT_TRUE(parseSource(Prog, "fuzz.tl", Source).Success) << Source;
  SolverOptions Opts;
  Opts.Cache = Cache;
  Opts.EnableCandidateIndex = Index;
  Opts.EnableSubsumption = Subsume;
  if (Index) {
    SolverIndexOptions IOpts;
    IOpts.EnableSubsumption = Subsume;
    SolverIndexStats Built = buildSolverIndex(Prog, IOpts);
    EXPECT_TRUE(Built.Completed) << Source;
    EXPECT_TRUE(Prog.hasSolverIndex()) << Source;
  }
  Solver Solve(Prog, Opts);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
  std::string JSON;
  for (const InferenceTree &Tree : Ex.Trees)
    JSON += treeToJSON(Prog, Tree, /*Pretty=*/true) + "\n";
  return JSON;
}

} // namespace

TEST_P(CachePropertyTest, CachedSolvingMatchesUncached) {
  std::string Source = randomProgram(GetParam());
  SolveOutcome Plain = solveWithCache(Source, nullptr);
  GoalCache Cache;
  SolveOutcome Cold = solveWithCache(Source, &Cache);
  EXPECT_EQ(Plain.FinalResults, Cold.FinalResults) << Source;
  // A warm second solve over the same cache replays recorded subtrees
  // (never more real work than the cold run) and still agrees.
  SolveOutcome Warm = solveWithCache(Source, &Cache);
  EXPECT_EQ(Plain.FinalResults, Warm.FinalResults) << Source;
  EXPECT_LE(Warm.NumSolverSteps, Cold.NumSolverSteps) << Source;
}

TEST_P(CachePropertyTest, CacheCountersAreDeterministic) {
  std::string Source = randomProgram(GetParam());
  GoalCache C1, C2;
  SolveOutcome A = solveWithCache(Source, &C1);
  SolveOutcome B = solveWithCache(Source, &C2);
  EXPECT_EQ(A.NumCacheHits, B.NumCacheHits) << Source;
  EXPECT_EQ(A.NumCacheMisses, B.NumCacheMisses) << Source;
  EXPECT_EQ(A.NumCacheInserts, B.NumCacheInserts) << Source;
  EXPECT_EQ(A.NumCacheInsertsRejected, B.NumCacheInsertsRejected) << Source;
  EXPECT_EQ(A.NumSolverSteps, B.NumSolverSteps) << Source;
  EXPECT_EQ(C1.size(), C2.size()) << Source;
}

TEST_P(CachePropertyTest, CachedExtractionIsByteIdentical) {
  std::string Source = randomProgram(GetParam());
  std::string Plain = treesAsJSON(Source, nullptr);
  GoalCache Cache;
  EXPECT_EQ(Plain, treesAsJSON(Source, &Cache)) << Source;
  // Warm replay: every splice must reproduce the trees byte for byte.
  EXPECT_EQ(Plain, treesAsJSON(Source, &Cache)) << Source;
}

TEST_P(CachePropertyTest, EditedProgramsMatchColdSolveByteForByte) {
  // The cache is populated by the original program, then consulted by a
  // single-impl edit of it (add/remove/reorder/rename). Dependency
  // fingerprints must reject exactly the stale entries: the warm solve
  // of the edited program — results and serialized trees — is required
  // to be byte-identical to its cold solve.
  std::string Source = randomProgram(GetParam());
  std::string Edited = editProgram(Source, GetParam());
  SolveOutcome Cold = solveWithCache(Edited, nullptr);
  std::string ColdJSON = treesAsJSON(Edited, nullptr);

  GoalCache Shared;
  (void)solveWithCache(Source, &Shared);
  SolveOutcome Warm = solveWithCache(Edited, &Shared);
  EXPECT_EQ(Cold.FinalResults, Warm.FinalResults)
      << "original:\n" << Source << "edited:\n" << Edited;
  EXPECT_EQ(ColdJSON, treesAsJSON(Edited, &Shared))
      << "original:\n" << Source << "edited:\n" << Edited;
  EXPECT_EQ(ColdJSON, treesAsJSON(Edited, &Shared)) << "warm replay";
}

TEST_P(CachePropertyTest, EditedProgramsByteIdenticalAcrossIndexMatrix) {
  // The shared-cache single-impl-edit harness crossed with the prebuilt
  // candidate index and the subsumption pass: every cell — cache
  // populated by the original program, then consulted by its edited
  // twin — must reproduce the cold unindexed bytes. This is where a
  // selection-variant prune or a stale pruned-slice fingerprint would
  // surface: the edit can make a previously subsumed impl reachable
  // (or vice versa), and the dependency check must then force a cold
  // re-solve rather than replay the stale subtree.
  std::string Source = randomProgram(GetParam());
  std::string Edited = editProgram(Source, GetParam());
  std::string Baseline = treesAsJSONCell(Edited, nullptr,
                                         /*Index=*/false, /*Subsume=*/false);

  struct Cell {
    bool Index;
    bool Subsume;
  } Cells[] = {{false, false}, {true, false}, {true, true}};
  for (const Cell &C : Cells) {
    GoalCache Shared;
    (void)treesAsJSONCell(Source, &Shared, C.Index, C.Subsume);
    EXPECT_EQ(Baseline,
              treesAsJSONCell(Edited, &Shared, C.Index, C.Subsume))
        << "index=" << C.Index << " subsume=" << C.Subsume
        << "\noriginal:\n" << Source << "edited:\n" << Edited;
  }
}

TEST(CacheEditAdversarial, AddedImplFlipsPreviouslyFailingGoal) {
  // The failing goal's recorded subtree consulted an *empty* impl slice
  // for (Tr0, S0) — a negative dependency. The same-length edit
  // retargets the decoy impl onto exactly that slice without moving any
  // later span, so the stale entry's key (origin included) still
  // matches the edited program's lookup; only the empty-slice
  // fingerprint stands between the consumer and a stale "no".
  std::string Original = "struct S0;\n"
                         "struct S9;\n"
                         "trait Tr0;\n"
                         "trait Tr9;\n"
                         "impl Tr9 for S9;\n"
                         "goal S0: Tr0;\n";
  std::string Edited = "struct S0;\n"
                       "struct S9;\n"
                       "trait Tr0;\n"
                       "trait Tr9;\n"
                       "impl Tr0 for S0;\n"
                       "goal S0: Tr0;\n";
  SolveOutcome Cold = solveWithCache(Edited, nullptr);
  ASSERT_EQ(Cold.FinalResults.size(), 1u);
  ASSERT_EQ(Cold.FinalResults[0], EvalResult::Yes);

  GoalCache Shared;
  SolveOutcome Orig = solveWithCache(Original, &Shared);
  ASSERT_EQ(Orig.FinalResults.size(), 1u);
  ASSERT_EQ(Orig.FinalResults[0], EvalResult::No);
  ASSERT_GT(Shared.size(), 0u) << "the failing goal must be recorded";

  SolveOutcome Warm = solveWithCache(Edited, &Shared);
  EXPECT_EQ(Warm.FinalResults, Cold.FinalResults)
      << "a stale 'no' must not survive a matching impl appearing";
  EXPECT_GT(Warm.NumCacheDepMisses, 0u)
      << "the stale entry must fall to its negative dependency";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CachePropertyTest,
                         ::testing::Range<uint64_t>(0, 500));
