//===- tests/solver/SolverPropertyTests.cpp -------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests over randomly generated trait programs: the solver's
/// AND/OR result invariants, determinism, memoization transparency, and
/// extraction consistency must hold for every program the generator can
/// produce, not just the corpus.
///
//===----------------------------------------------------------------------===//

#include "extract/Extract.h"
#include "solver/Solver.h"
#include "support/Random.h"
#include "tlang/Parser.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

/// Generates a random (syntactically valid, declare-before-use) trait
/// program: a pool of nullary and unary structs, traits, impls with
/// random where-clauses, and concrete/inference goals. Recursion is
/// possible (the depth limit handles it); ambiguity is possible (the
/// fixpoint handles it).
std::string randomProgram(uint64_t Seed) {
  Rng Gen(Seed);
  std::string Out;

  const size_t NumStructs = 3 + Gen.below(4); // S0.. nullary
  const size_t NumGenerics = 1 + Gen.below(3); // G0<T>..
  const size_t NumTraits = 2 + Gen.below(3);
  for (size_t I = 0; I != NumStructs; ++I)
    Out += (Gen.chance(0.4) ? "#[external] struct S" : "struct S") +
           std::to_string(I) + ";\n";
  for (size_t I = 0; I != NumGenerics; ++I)
    Out += (Gen.chance(0.4) ? "#[external] struct G" : "struct G") +
           std::to_string(I) + "<T>;\n";
  for (size_t I = 0; I != NumTraits; ++I)
    Out += (Gen.chance(0.5) ? "#[external] trait Tr" : "trait Tr") +
           std::to_string(I) + ";\n";

  auto RandomConcrete = [&]() {
    if (Gen.chance(0.3))
      return "G" + std::to_string(Gen.below(NumGenerics)) + "<S" +
             std::to_string(Gen.below(NumStructs)) + ">";
    return "S" + std::to_string(Gen.below(NumStructs));
  };
  auto RandomTrait = [&]() {
    return "Tr" + std::to_string(Gen.below(NumTraits));
  };

  const size_t NumImpls = 2 + Gen.below(6);
  for (size_t I = 0; I != NumImpls; ++I) {
    switch (Gen.below(3)) {
    case 0: // Concrete impl.
      Out += "impl " + RandomTrait() + " for " + RandomConcrete() + ";\n";
      break;
    case 1: { // Conditional impl on a generic container.
      std::string Trait = RandomTrait();
      Out += "impl<T> " + Trait + " for G" +
             std::to_string(Gen.below(NumGenerics)) + "<T> where T: " +
             RandomTrait() + ";\n";
      break;
    }
    case 2: { // Blanket impl. The bound trait index strictly decreases
              // so blanket chains form a DAG: without a cache, mutually
              // recursive blanket impls make the candidate search
              // exponential (the budget would catch it, but these tests
              // exercise the semantics, not the limiter).
      size_t Target = Gen.below(NumTraits);
      if (Target == 0)
        break;
      Out += "impl<T> Tr" + std::to_string(Target) + " for T where T: Tr" +
             std::to_string(Gen.below(Target)) + ";\n";
      break;
    }
    }
  }

  const size_t NumGoals = 1 + Gen.below(3);
  for (size_t I = 0; I != NumGoals; ++I) {
    if (Gen.chance(0.25))
      Out += "goal ?X" + std::to_string(I) + ": " + RandomTrait() + ";\n";
    else
      Out += "goal " + RandomConcrete() + ": " + RandomTrait() + ";\n";
  }
  return Out;
}

/// Recomputes a goal's result from its recorded candidates and checks
/// the selection semantics; recurses over the whole forest.
void checkGoalInvariants(const ProofForest &Forest, GoalNodeId Id) {
  const GoalNode &Goal = Forest.goal(Id);
  if (Goal.FromCache || Goal.Result == EvalResult::Overflow)
    return; // Cached nodes carry no candidates; overflow short-circuits.

  size_t Successes = 0;
  EvalResult Folded = EvalResult::No;
  for (CandNodeId CandId : Goal.Candidates) {
    const CandidateNode &Cand = Forest.candidate(CandId);
    Successes += Cand.Result == EvalResult::Yes;
    Folded = disjoin(Folded, Cand.Result);

    // A candidate's result conjoins its subgoals (builtin candidates may
    // have none and carry their own verdict).
    if (!Cand.SubGoals.empty()) {
      EvalResult Conj = EvalResult::Yes;
      for (GoalNodeId Sub : Cand.SubGoals) {
        EXPECT_EQ(Forest.goal(Sub).ParentCandidate, CandId);
        Conj = conjoin(Conj, Forest.goal(Sub).Result);
        checkGoalInvariants(Forest, Sub);
      }
      if (Cand.Kind == CandidateKind::Impl)
        EXPECT_EQ(Cand.Result, Conj) << "candidate result must conjoin "
                                        "its subgoals";
    }
  }

  switch (Goal.Result) {
  case EvalResult::Yes:
    EXPECT_EQ(Successes, 1u) << "a yes goal selects exactly one candidate";
    EXPECT_TRUE(Goal.SelectedCandidate.isValid() ||
                Goal.Pred.Kind != PredicateKind::Trait);
    break;
  case EvalResult::Maybe:
    // Ambiguity: several successes, or residual maybes.
    EXPECT_TRUE(Successes > 1 || Folded == EvalResult::Maybe);
    break;
  case EvalResult::No:
    EXPECT_EQ(Successes, 0u);
    break;
  case EvalResult::Overflow:
    break;
  }
}

class SolverPropertyTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(SolverPropertyTest, ResultLatticeInvariantsHold) {
  Session S;
  Program Prog(S);
  std::string Source = randomProgram(GetParam());
  ParseResult Parsed = parseSource(Prog, "fuzz.tl", Source);
  ASSERT_TRUE(Parsed.Success) << Source;

  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  for (GoalNodeId Root : Out.FinalRoots)
    checkGoalInvariants(Out.Forest, Root);
}

TEST_P(SolverPropertyTest, SolvingIsDeterministic) {
  std::string Source = randomProgram(GetParam());
  auto Run = [&]() {
    Session S;
    Program Prog(S);
    EXPECT_TRUE(parseSource(Prog, "fuzz.tl", Source).Success);
    Solver Solve(Prog);
    return Solve.solve().FinalResults;
  };
  EXPECT_EQ(Run(), Run());
}

TEST_P(SolverPropertyTest, MemoizationIsTransparent) {
  std::string Source = randomProgram(GetParam());
  Session S1, S2;
  Program P1(S1), P2(S2);
  ASSERT_TRUE(parseSource(P1, "fuzz.tl", Source).Success);
  ASSERT_TRUE(parseSource(P2, "fuzz.tl", Source).Success);

  Solver Plain(P1);
  SolverOptions Memo;
  Memo.EnableMemoization = true;
  Solver Cached(P2, Memo);
  EXPECT_EQ(Plain.solve().FinalResults, Cached.solve().FinalResults)
      << Source;
}

TEST_P(SolverPropertyTest, ExtractionPreservesFailureStructure) {
  Session S;
  Program Prog(S);
  ASSERT_TRUE(parseSource(Prog, "fuzz.tl", randomProgram(GetParam()))
                  .Success);
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());

  // One tree per failing goal, and it is rooted at a failure with at
  // least one failed leaf.
  size_t Failing = 0;
  for (EvalResult Result : Out.FinalResults)
    Failing += Result != EvalResult::Yes;
  EXPECT_EQ(Ex.Trees.size(), Failing);
  for (const InferenceTree &Tree : Ex.Trees) {
    EXPECT_TRUE(idealFailed(Tree.root().Result));
    EXPECT_FALSE(Tree.failedLeaves().empty());
    // No internal-kind successes survive default extraction, and every
    // surviving node's parent links are consistent.
    for (size_t I = 0; I != Tree.numGoals(); ++I) {
      const IdealGoal &Goal = Tree.goal(IGoalId(uint32_t(I)));
      if (!isUserFacing(Goal.Pred.Kind))
        EXPECT_TRUE(idealFailed(Goal.Result));
      if (Goal.Parent.isValid()) {
        const IdealCandidate &Parent = Tree.candidate(Goal.Parent);
        bool Found = false;
        for (IGoalId Sub : Parent.SubGoals)
          Found |= Sub == Goal.Id;
        EXPECT_TRUE(Found);
      }
    }
  }
}

TEST_P(SolverPropertyTest, FailedLeavesAreFullyResolvedOrAmbiguous) {
  Session S;
  Program Prog(S);
  ASSERT_TRUE(parseSource(Prog, "fuzz.tl", randomProgram(GetParam()))
                  .Success);
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
  for (const InferenceTree &Tree : Ex.Trees)
    for (IGoalId Leaf : Tree.failedLeaves()) {
      const IdealGoal &Goal = Tree.goal(Leaf);
      // A No/Overflow verdict on a leaf is definite; only Maybe leaves
      // may carry unresolved inference variables... and residual Maybe
      // goals must carry at least one (otherwise they would have
      // resolved).
      if (Goal.Result == EvalResult::Maybe &&
          Goal.Pred.Kind == PredicateKind::Trait &&
          Tree.goal(Tree.rootId()).Result == EvalResult::Maybe)
        EXPECT_GE(Goal.UnresolvedVars + Tree.root().UnresolvedVars, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));
