//===- tests/tlang/LexerTests.cpp -----------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tlang/Lexer.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

class LexerTest : public ::testing::Test {
protected:
  SourceManager Sources;

  std::vector<Token> lex(std::string Text) {
    FileId File = Sources.addFile("lex.tl", std::move(Text));
    return tokenize(Sources, File);
  }

  std::vector<TokenKind> kindsOf(std::string Text) {
    std::vector<TokenKind> Kinds;
    for (const Token &Tok : lex(std::move(Text)))
      Kinds.push_back(Tok.Kind);
    return Kinds;
  }
};

} // namespace

TEST_F(LexerTest, EmptyInputYieldsEof) {
  std::vector<Token> Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Eof);
}

TEST_F(LexerTest, IdentifiersAndKeywordsAreIdent) {
  std::vector<Token> Tokens = lex("struct Timer impl_2 _x");
  ASSERT_EQ(Tokens.size(), 5u);
  for (size_t I = 0; I != 4; ++I)
    EXPECT_EQ(Tokens[I].Kind, TokenKind::Ident);
  EXPECT_EQ(Tokens[0].Text, "struct");
  EXPECT_EQ(Tokens[2].Text, "impl_2");
  EXPECT_EQ(Tokens[3].Text, "_x");
}

TEST_F(LexerTest, MultiCharPunctuation) {
  EXPECT_EQ(kindsOf(":: -> == = : <"),
            (std::vector<TokenKind>{TokenKind::PathSep, TokenKind::Arrow,
                                    TokenKind::EqEq, TokenKind::Eq,
                                    TokenKind::Colon, TokenKind::Lt,
                                    TokenKind::Eof}));
}

TEST_F(LexerTest, AdjacentGtAreSeparate) {
  // Nested generics must not lex '>>' as one token.
  std::vector<Token> Tokens = lex("Vec<Vec<T>>");
  ASSERT_EQ(Tokens.size(), 8u);
  EXPECT_EQ(Tokens[5].Kind, TokenKind::Gt);
  EXPECT_EQ(Tokens[6].Kind, TokenKind::Gt);
}

TEST_F(LexerTest, LifetimesCarryTheirName) {
  std::vector<Token> Tokens = lex("&'static &'a");
  ASSERT_EQ(Tokens.size(), 5u);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Lifetime);
  EXPECT_EQ(Tokens[1].Text, "static");
  EXPECT_EQ(Tokens[3].Text, "a");
}

TEST_F(LexerTest, InferPlaceholders) {
  std::vector<Token> Tokens = lex("?M ?T2");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::InferName);
  EXPECT_EQ(Tokens[0].Text, "M");
  EXPECT_EQ(Tokens[1].Text, "T2");
}

TEST_F(LexerTest, LineCommentsAreSkipped) {
  std::vector<Token> Tokens = lex("a // comment with :: tokens\nb");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Text, "a");
  EXPECT_EQ(Tokens[1].Text, "b");
}

TEST_F(LexerTest, StringLiterals) {
  std::vector<Token> Tokens = lex("#[x = \"hello, world\"]");
  ASSERT_EQ(Tokens.size(), 7u);
  EXPECT_EQ(Tokens[4].Kind, TokenKind::String);
  EXPECT_EQ(Tokens[4].Text, "hello, world");
}

TEST_F(LexerTest, UnterminatedStringIsAnError) {
  std::vector<Token> Tokens = lex("\"oops\nnext");
  bool SawError = false;
  for (const Token &Tok : Tokens)
    SawError |= Tok.Kind == TokenKind::Error;
  EXPECT_TRUE(SawError);
}

TEST_F(LexerTest, SpansCoverTheLexeme) {
  std::vector<Token> Tokens = lex("goal Timer");
  ASSERT_GE(Tokens.size(), 2u);
  EXPECT_EQ(Sources.spanText(Tokens[0].Sp), "goal");
  EXPECT_EQ(Sources.spanText(Tokens[1].Sp), "Timer");
  EXPECT_EQ(Tokens[1].Sp.Begin, 5u);
  EXPECT_EQ(Tokens[1].Sp.End, 10u);
}

TEST_F(LexerTest, UnknownCharacterIsErrorToken) {
  std::vector<Token> Tokens = lex("a $ b");
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Error);
  EXPECT_EQ(Tokens[1].Text, "$");
}

TEST_F(LexerTest, EveryKindHasAName) {
  for (int Kind = 0; Kind <= static_cast<int>(TokenKind::Error); ++Kind)
    EXPECT_NE(tokenKindName(static_cast<TokenKind>(Kind)),
              std::string("<token>"));
}
