//===- tests/tlang/ParserFuzzTests.cpp ------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Robustness fuzzing: the parser must terminate and report errors
/// gracefully (never crash, hang, or accept garbage silently) on
/// arbitrary token soup, truncated real programs, and byte-level noise.
///
//===----------------------------------------------------------------------===//

#include "support/Random.h"
#include "tlang/Parser.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

const char *Fragments[] = {
    "struct", "trait",  "impl", "fn",   "goal", "where", "for",  "type",
    "as",     "root_cause", "Self", "T",  "Vec",  "<",    ">",   "(",
    ")",      "{",      "}",    "[",  "]",    ",",    ";",    ":",
    "::",     "->",     "==",   "=",  "&",    "+",    "#",    "'a",
    "'static", "?M",    "mut",  "external", "fn_trait", "\"s\"", "$",
};

std::string tokenSoup(uint64_t Seed) {
  Rng Gen(Seed);
  std::string Out;
  size_t Length = 1 + Gen.below(60);
  for (size_t I = 0; I != Length; ++I) {
    Out += Fragments[Gen.below(std::size(Fragments))];
    Out += Gen.chance(0.8) ? " " : "\n";
  }
  return Out;
}

const char *RealProgram =
    "#[external] struct ResMut<T>;\n"
    "struct Timer;\n"
    "#[external] trait Resource;\n"
    "#[external] trait SystemParam;\n"
    "#[external] impl<T> SystemParam for ResMut<T> where T: Resource;\n"
    "impl Resource for Timer;\n"
    "fn run_timer(Timer);\n"
    "goal ResMut<Timer>: SystemParam;\n";

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(ParserFuzzTest, TokenSoupNeverCrashes) {
  Session S;
  Program Prog(S);
  // Must terminate and produce a coherent result object; any parse
  // errors must render without crashing.
  ParseResult Result =
      parseSource(Prog, "soup.tl", tokenSoup(GetParam()));
  std::string Description = Result.describe(S.sources());
  if (!Result.Success)
    EXPECT_FALSE(Result.Errors.empty());
  else
    EXPECT_TRUE(Description.empty());
}

TEST_P(ParserFuzzTest, TruncatedProgramsFailGracefully) {
  std::string Full = RealProgram;
  size_t Cut = GetParam() % Full.size();
  Session S;
  Program Prog(S);
  ParseResult Result =
      parseSource(Prog, "cut.tl", Full.substr(0, Cut));
  // Either a clean prefix parse or errors — never a crash; and the
  // declarations that did parse are intact.
  for (const TypeCtorDecl &Ctor : Prog.typeCtors())
    EXPECT_FALSE(S.text(Ctor.Name).empty());
  (void)Result;
}

TEST_P(ParserFuzzTest, ByteNoiseInjection) {
  Rng Gen(GetParam() * 31 + 7);
  std::string Mutated = RealProgram;
  for (int I = 0; I != 8; ++I)
    Mutated[Gen.below(Mutated.size())] =
        static_cast<char>(32 + Gen.below(95));
  Session S;
  Program Prog(S);
  ParseResult Result = parseSource(Prog, "noise.tl", Mutated);
  (void)Result.describe(S.sources());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<uint64_t>(0, 60));
