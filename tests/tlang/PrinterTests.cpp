//===- tests/tlang/PrinterTests.cpp ---------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tlang/Parser.h"
#include "tlang/Printer.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

class PrinterTest : public ::testing::Test {
protected:
  Session S;
  Program Prog{S};

  void load(std::string Source) {
    ParseResult Result = parseSource(Prog, "test.tl", std::move(Source));
    ASSERT_TRUE(Result.Success) << Result.describe(S.sources());
  }
};

} // namespace

TEST_F(PrinterTest, ShortPathsByDefault) {
  load("#[external] struct diesel::query_builder::SelectStatement<F>;\n"
       "struct users::table;\n"
       "trait Query;\n"
       "goal diesel::query_builder::SelectStatement<users::table>: Query;");
  TypePrinter Short(Prog);
  EXPECT_EQ(Short.print(Prog.goals()[0].Pred.Subject),
            "SelectStatement<table>");
  PrintOptions Full;
  Full.FullPaths = true;
  TypePrinter FullPrinter(Prog, Full);
  EXPECT_EQ(FullPrinter.print(Prog.goals()[0].Pred.Subject),
            "diesel::query_builder::SelectStatement<users::table>");
}

TEST_F(PrinterTest, DisambiguationAddsParentSegment) {
  load("struct users::table;\n"
       "struct posts::table;\n"
       "trait Query;\n"
       "goal users::table: Query;");
  // The rustc-style printer shows just "table" (the paper's Section 2.1
  // confusion); Argus disambiguates.
  TypePrinter Plain(Prog);
  EXPECT_EQ(Plain.print(Prog.goals()[0].Pred.Subject), "table");
  PrintOptions Opts;
  Opts.DisambiguateShortNames = true;
  TypePrinter Argus(Prog, Opts);
  EXPECT_EQ(Argus.print(Prog.goals()[0].Pred.Subject), "users::table");
}

TEST_F(PrinterTest, ElisionReplacesLargeArgLists) {
  load("struct FromClause<T>;\n"
       "struct SelectStatement<F, S, D, W>;\n"
       "struct A; struct B; struct C; struct D;\n"
       "trait Query;\n"
       "goal SelectStatement<FromClause<A>, B, C, D>: Query;");
  PrintOptions Opts;
  Opts.ElideArgs = true;
  TypePrinter Printer(Prog, Opts);
  EXPECT_EQ(Printer.print(Prog.goals()[0].Pred.Subject),
            "SelectStatement<...>");
  TypePrinter NoElide(Prog);
  EXPECT_EQ(NoElide.print(Prog.goals()[0].Pred.Subject),
            "SelectStatement<FromClause<A>, B, C, D>");
}

TEST_F(PrinterTest, FnDefPrintsRustStyle) {
  load("struct Timer;\n"
       "fn run_timer(Timer);\n"
       "trait IntoSystem<M>;\n"
       "goal run_timer: IntoSystem<?M>;");
  TypePrinter Printer(Prog);
  EXPECT_EQ(Printer.print(Prog.goals()[0].Pred.Subject),
            "fn(Timer) {run_timer}");
  EXPECT_EQ(Printer.print(Prog.goals()[0].Pred),
            "fn(Timer) {run_timer}: IntoSystem<_>");
}

TEST_F(PrinterTest, ProjectionAndPredicates) {
  load("struct Once;\n"
       "struct users::table;\n"
       "trait AppearsInFromClause<QS> { type Count; }\n"
       "goal <users::table as AppearsInFromClause<users::table>>::Count "
       "== Once;");
  TypePrinter Printer(Prog);
  EXPECT_EQ(Printer.print(Prog.goals()[0].Pred),
            "<table as AppearsInFromClause<table>>::Count == Once");
}

TEST_F(PrinterTest, ImplHeaders) {
  load("struct ResMut<T>;\n"
       "trait Resource;\n"
       "trait SystemParam;\n"
       "impl<T> SystemParam for ResMut<T> where T: Resource;");
  TypePrinter Printer(Prog);
  const ImplDecl &Impl = Prog.impls()[0];
  EXPECT_EQ(Printer.printImplHeader(Impl),
            "impl<T> SystemParam for ResMut<T>");
  EXPECT_EQ(Printer.printImplFull(Impl),
            "impl<T> SystemParam for ResMut<T> where T: Resource");
}

TEST_F(PrinterTest, ReferencesTuplesUnit) {
  load("struct Timer;\n"
       "trait Foo;\n"
       "goal &'a mut Timer: Foo;\n"
       "goal (Timer, ()): Foo;\n"
       "goal fn(Timer) -> Timer: Foo;");
  TypePrinter Printer(Prog);
  EXPECT_EQ(Printer.print(Prog.goals()[0].Pred.Subject), "&'a mut Timer");
  EXPECT_EQ(Printer.print(Prog.goals()[1].Pred.Subject), "(Timer, ())");
  EXPECT_EQ(Printer.print(Prog.goals()[2].Pred.Subject),
            "fn(Timer) -> Timer");
}

TEST_F(PrinterTest, ResolveHookSubstitutesBindings) {
  load("struct Vec<T>;\n"
       "trait Foo;\n"
       "goal Vec<?X>: Foo;");
  TypeId Unit = S.types().unit();
  PrintOptions Opts;
  Opts.Resolve = [&](TypeId T) {
    return S.types().get(T).Kind == TypeKind::Infer ? Unit : T;
  };
  TypePrinter Printer(Prog, Opts);
  EXPECT_EQ(Printer.print(Prog.goals()[0].Pred.Subject), "Vec<()>");
}

TEST_F(PrinterTest, InternalPredicateForms) {
  load("struct Timer;");
  TypeId Timer = S.types().adt(S.name("Timer"));
  TypePrinter Printer(Prog);
  EXPECT_EQ(Printer.print(Predicate::wellFormed(Timer)), "WF(Timer)");
  EXPECT_EQ(Printer.print(Predicate::sized(Timer)), "Timer: Sized");
  EXPECT_EQ(Printer.print(Predicate::outlives(Timer, Region::makeStatic())),
            "Timer: 'static");
  EXPECT_EQ(Printer.print(Predicate::regionOutlives(
                Region::named(S.name("a")), Region::makeStatic())),
            "'a: 'static");
}
