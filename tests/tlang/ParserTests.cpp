//===- tests/tlang/ParserTests.cpp ----------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tlang/Parser.h"
#include "tlang/Printer.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

class ParserTest : public ::testing::Test {
protected:
  Session S;
  Program Prog{S};

  ParseResult parse(std::string Source) {
    return parseSource(Prog, "test.tl", std::move(Source));
  }

  void parseOk(std::string Source) {
    ParseResult Result = parse(std::move(Source));
    ASSERT_TRUE(Result.Success) << Result.describe(S.sources());
  }
};

} // namespace

TEST_F(ParserTest, StructDeclaration) {
  parseOk("struct Timer;\n"
          "#[external] struct diesel::SelectStatement<F, S>;");
  const TypeCtorDecl *Timer = Prog.findTypeCtor(S.name("Timer"));
  ASSERT_NE(Timer, nullptr);
  EXPECT_EQ(Timer->Loc, Locality::Local);
  EXPECT_TRUE(Timer->Params.empty());

  const TypeCtorDecl *Select =
      Prog.findTypeCtor(S.name("diesel::SelectStatement"));
  ASSERT_NE(Select, nullptr);
  EXPECT_EQ(Select->Loc, Locality::External);
  EXPECT_EQ(Select->Params.size(), 2u);
}

TEST_F(ParserTest, TraitWithAssocTypeAndSupertrait) {
  parseOk("trait AssocData<A>;\n"
          "trait AstAssocs: Sized { type Data: AssocData<Self>; }");
  const TraitDecl *Trait = Prog.findTrait(S.name("AstAssocs"));
  ASSERT_NE(Trait, nullptr);
  ASSERT_EQ(Trait->WhereClauses.size(), 1u);
  EXPECT_EQ(Trait->WhereClauses[0].Kind, PredicateKind::Sized);
  ASSERT_EQ(Trait->AssocTypes.size(), 1u);
  EXPECT_EQ(S.text(Trait->AssocTypes[0].Name), "Data");
  ASSERT_EQ(Trait->AssocTypes[0].Bounds.size(), 1u);
  const Predicate &Bound = Trait->AssocTypes[0].Bounds[0];
  EXPECT_EQ(Bound.Kind, PredicateKind::Trait);
  EXPECT_EQ(S.types().get(Bound.Subject).Kind, TypeKind::Projection);
}

TEST_F(ParserTest, ForwardReferencesBetweenTraits) {
  // AstAssocs's assoc bound mentions AssocData, whose own use-sites
  // mention AstAssocs: mutual reference must parse (Figure 3 of the
  // paper).
  parseOk("trait AstAssocs: Sized { type Data: AssocData<Self>; }\n"
          "trait AssocData<A> where A: AstAssocs;\n"
          "struct EmptyNode;\n"
          "impl<Data> AstAssocs for Data where Data: AssocData<Data> {\n"
          "  type Data = Data;\n"
          "}\n"
          "impl<A> AssocData<A> for EmptyNode where A: AstAssocs;\n"
          "goal EmptyNode: AstAssocs;");
  EXPECT_EQ(Prog.impls().size(), 2u);
  EXPECT_EQ(Prog.goals().size(), 1u);
}

TEST_F(ParserTest, ImplWithWhereAndBindings) {
  parseOk("struct ResMut<T>;\n"
          "trait Resource;\n"
          "trait SystemParam { type State; }\n"
          "struct Unit;\n"
          "impl<T> SystemParam for ResMut<T> where T: Resource {\n"
          "  type State = Unit;\n"
          "}");
  ASSERT_EQ(Prog.impls().size(), 1u);
  const ImplDecl &Impl = Prog.impls()[0];
  EXPECT_EQ(Impl.Generics.size(), 1u);
  EXPECT_EQ(Impl.WhereClauses.size(), 1u);
  ASSERT_EQ(Impl.Bindings.size(), 1u);
  EXPECT_EQ(S.text(Impl.Bindings[0].first), "State");
}

TEST_F(ParserTest, FnItemAndFnDefTypes) {
  parseOk("struct Timer;\n"
          "fn run_timer(Timer);\n"
          "trait IntoSystem<M>;\n"
          "goal run_timer: IntoSystem<?M>;");
  ASSERT_EQ(Prog.goals().size(), 1u);
  const GoalDecl &Goal = Prog.goals()[0];
  const Type &Subject = S.types().get(Goal.Pred.Subject);
  EXPECT_EQ(Subject.Kind, TypeKind::FnDef);
  EXPECT_EQ(S.text(Subject.Name), "run_timer");
  ASSERT_EQ(Goal.Pred.Args.size(), 1u);
  EXPECT_EQ(S.types().get(Goal.Pred.Args[0]).Kind, TypeKind::Infer);
}

TEST_F(ParserTest, SharedInferPlaceholdersUnify) {
  parseOk("struct Vec<T>;\n"
          "trait Foo<A, B>;\n"
          "goal Vec<?X>: Foo<?X, ?Y>;");
  const GoalDecl &Goal = Prog.goals()[0];
  const Type &Subject = S.types().get(Goal.Pred.Subject);
  // ?X inside the subject and as first trait arg must be the same
  // variable.
  EXPECT_EQ(Subject.Args[0], Goal.Pred.Args[0]);
  EXPECT_NE(Goal.Pred.Args[0], Goal.Pred.Args[1]);
}

TEST_F(ParserTest, ProjectionPredicates) {
  parseOk("struct Once;\n"
          "struct users::table;\n"
          "trait AppearsInFromClause<QS> { type Count; }\n"
          "goal <users::table as AppearsInFromClause<users::table>>::Count "
          "== Once;");
  const GoalDecl &Goal = Prog.goals()[0];
  EXPECT_EQ(Goal.Pred.Kind, PredicateKind::Projection);
  EXPECT_EQ(S.types().get(Goal.Pred.Subject).Kind, TypeKind::Projection);
}

TEST_F(ParserTest, ShortNameResolutionWhenUnique) {
  parseOk("struct diesel::query_builder::SelectStatement<F>;\n"
          "trait Query;\n"
          "impl<F> Query for SelectStatement<F>;");
  const ImplDecl &Impl = Prog.impls()[0];
  const Type &SelfTy = S.types().get(Impl.SelfTy);
  EXPECT_EQ(S.text(SelfTy.Name), "diesel::query_builder::SelectStatement");
}

TEST_F(ParserTest, AmbiguousShortNameIsAnError) {
  ParseResult Result = parse("struct users::table;\n"
                             "struct posts::table;\n"
                             "trait Query;\n"
                             "impl Query for table;");
  EXPECT_FALSE(Result.Success);
  ASSERT_FALSE(Result.Errors.empty());
  EXPECT_NE(Result.Errors[0].Message.find("ambiguous"), std::string::npos);
}

TEST_F(ParserTest, GoalEnvironmentWhereClause) {
  parseOk("trait Display;\n"
          "struct Vec<T>;\n"
          "goal Vec<?T>: Display where ?T: Display;");
  const GoalDecl &Goal = Prog.goals()[0];
  ASSERT_EQ(Goal.Env.size(), 1u);
  EXPECT_EQ(Goal.Env[0].Kind, PredicateKind::Trait);
}

TEST_F(ParserTest, SpeculativeGoals) {
  parseOk("struct Vec<T>;\n"
          "trait ToString;\n"
          "trait CustomToString;\n"
          "#[speculative] goal Vec<()>: ToString;\n"
          "#[speculative] goal Vec<()>: CustomToString;");
  ASSERT_EQ(Prog.goals().size(), 2u);
  EXPECT_TRUE(Prog.goals()[0].Speculative);
  EXPECT_TRUE(Prog.goals()[1].Speculative);
}

TEST_F(ParserTest, RootCauseDirective) {
  parseOk("struct Timer;\n"
          "trait SystemParam;\n"
          "root_cause Timer: SystemParam;");
  ASSERT_EQ(Prog.rootCauses().size(), 1u);
  EXPECT_EQ(Prog.rootCauses()[0].Kind, PredicateKind::Trait);
}

TEST_F(ParserTest, PlusExpandsToMultipleGoals) {
  parseOk("struct Timer;\n"
          "trait A;\n"
          "trait B;\n"
          "goal Timer: A + B;");
  EXPECT_EQ(Prog.goals().size(), 2u);
}

TEST_F(ParserTest, ReferencesAndTuples) {
  parseOk("struct Timer;\n"
          "trait Foo;\n"
          "goal &'static mut Timer: Foo;\n"
          "goal (Timer, ()): Foo;");
  const Type &RefTy = S.types().get(Prog.goals()[0].Pred.Subject);
  EXPECT_EQ(RefTy.Kind, TypeKind::Ref);
  EXPECT_TRUE(RefTy.Mutable);
  EXPECT_EQ(RefTy.Rgn.Kind, RegionKind::Static);
  const Type &TupleTy = S.types().get(Prog.goals()[1].Pred.Subject);
  EXPECT_EQ(TupleTy.Kind, TypeKind::Tuple);
  EXPECT_EQ(TupleTy.Args.size(), 2u);
}

TEST_F(ParserTest, OutlivesPredicates) {
  parseOk("struct Timer;\n"
          "goal &'a Timer: 'a;\n"
          "goal 'a: 'static;");
  EXPECT_EQ(Prog.goals()[0].Pred.Kind, PredicateKind::Outlives);
  EXPECT_EQ(Prog.goals()[1].Pred.Kind, PredicateKind::RegionOutlives);
}

TEST_F(ParserTest, UnknownTypeIsAnError) {
  ParseResult Result = parse("trait Foo;\n"
                             "goal Missing: Foo;");
  EXPECT_FALSE(Result.Success);
}

TEST_F(ParserTest, DuplicateStructIsAnError) {
  ParseResult Result = parse("struct Timer;\nstruct Timer;");
  EXPECT_FALSE(Result.Success);
}

TEST_F(ParserTest, WrongArityIsAnError) {
  ParseResult Result = parse("struct Vec<T>;\n"
                             "trait Foo;\n"
                             "goal Vec<(), ()>: Foo;");
  EXPECT_FALSE(Result.Success);
}

TEST_F(ParserTest, UndeclaredForwardReferenceIsAnError) {
  ParseResult Result = parse("trait Foo where Self: Bar;");
  EXPECT_FALSE(Result.Success);
}

TEST_F(ParserTest, LineCommentsAreSkipped) {
  parseOk("// The timer resource.\n"
          "struct Timer; // trailing\n");
  EXPECT_NE(Prog.findTypeCtor(S.name("Timer")), nullptr);
}

TEST_F(ParserTest, FnTraitAttribute) {
  parseOk("#[fn_trait] trait SystemParamFunction<Sig>;");
  const TraitDecl *Trait = Prog.findTrait(S.name("SystemParamFunction"));
  ASSERT_NE(Trait, nullptr);
  EXPECT_TRUE(Trait->IsFnTrait);
}
