//===- tests/tlang/ProgramTests.cpp ---------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tlang/Parser.h"
#include "tlang/Program.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

class ProgramTest : public ::testing::Test {
protected:
  Session S;
  Program Prog{S};

  void load(std::string Source) {
    ParseResult Result = parseSource(Prog, "test.tl", std::move(Source));
    ASSERT_TRUE(Result.Success) << Result.describe(S.sources());
  }
};

} // namespace

TEST_F(ProgramTest, LastSegment) {
  EXPECT_EQ(Program::lastSegment("diesel::query::SelectStatement"),
            "SelectStatement");
  EXPECT_EQ(Program::lastSegment("Timer"), "Timer");
  EXPECT_EQ(Program::lastSegment("a::b"), "b");
}

TEST_F(ProgramTest, LocalityLookups) {
  load("#[external] struct Vec<T>;\n"
       "struct Timer;\n"
       "#[external] trait Display;\n"
       "trait Local;\n"
       "#[external] fn lib_fn();\n"
       "fn app_fn();");
  EXPECT_EQ(Prog.localityOf(S.name("Vec")), Locality::External);
  EXPECT_EQ(Prog.localityOf(S.name("Timer")), Locality::Local);
  EXPECT_EQ(Prog.localityOf(S.name("Display")), Locality::External);
  EXPECT_EQ(Prog.localityOf(S.name("Local")), Locality::Local);
  EXPECT_EQ(Prog.localityOf(S.name("lib_fn")), Locality::External);
  EXPECT_EQ(Prog.localityOf(S.name("app_fn")), Locality::Local);
  // Unknown names default to Local (developer-controlled).
  EXPECT_EQ(Prog.localityOf(S.name("Unknown")), Locality::Local);
}

TEST_F(ProgramTest, TypeLocalityFollowsTheHead) {
  load("#[external] struct Vec<T>;\n"
       "struct Timer;");
  TypeId Timer = S.types().adt(S.name("Timer"));
  TypeId VecTimer = S.types().adt(S.name("Vec"), {Timer});
  // The head constructor decides: Vec<Timer> is external even though
  // Timer is local.
  EXPECT_EQ(Prog.typeLocality(VecTimer), Locality::External);
  EXPECT_EQ(Prog.typeLocality(Timer), Locality::Local);
  // References and projections delegate to their subject.
  TypeId Ref = S.types().reference(Region::erased(), false, VecTimer);
  EXPECT_EQ(Prog.typeLocality(Ref), Locality::External);
  // Params and inference variables count as local.
  EXPECT_EQ(Prog.typeLocality(S.types().param(S.name("T"))),
            Locality::Local);
  EXPECT_EQ(Prog.typeLocality(S.types().infer(0)), Locality::Local);
}

TEST_F(ProgramTest, ShortNameIndex) {
  load("struct users::table;\n"
       "struct posts::table;\n"
       "struct Timer;");
  EXPECT_EQ(Prog.resolveShortName("table").size(), 2u);
  EXPECT_EQ(Prog.resolveShortName("Timer").size(), 1u);
  EXPECT_TRUE(Prog.resolveShortName("missing").empty());
  EXPECT_TRUE(Prog.isShortNameAmbiguous(S.name("users::table")));
  EXPECT_FALSE(Prog.isShortNameAmbiguous(S.name("Timer")));
}

TEST_F(ProgramTest, ImplsIndexedByTrait) {
  load("struct A;\n"
       "struct B;\n"
       "trait Foo;\n"
       "trait Bar;\n"
       "impl Foo for A;\n"
       "impl Foo for B;\n"
       "impl Bar for A;");
  EXPECT_EQ(Prog.implsOf(S.name("Foo")).size(), 2u);
  EXPECT_EQ(Prog.implsOf(S.name("Bar")).size(), 1u);
  EXPECT_TRUE(Prog.implsOf(S.name("Missing")).empty());
  // Impl ids are stable handles.
  ImplId First = Prog.implsOf(S.name("Foo"))[0];
  EXPECT_EQ(Prog.impl(First).Trait, S.name("Foo"));
}

TEST_F(ProgramTest, TraitAssocLookup) {
  load("trait Node { type Info; type Extra; }");
  const TraitDecl *Trait = Prog.findTrait(S.name("Node"));
  ASSERT_NE(Trait, nullptr);
  EXPECT_NE(Trait->findAssoc(S.name("Info")), nullptr);
  EXPECT_NE(Trait->findAssoc(S.name("Extra")), nullptr);
  EXPECT_EQ(Trait->findAssoc(S.name("Missing")), nullptr);
}
