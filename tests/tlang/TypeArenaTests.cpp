//===- tests/tlang/TypeArenaTests.cpp -------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tlang/TypeArena.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

class TypeArenaTest : public ::testing::Test {
protected:
  StringInterner Interner;
  TypeArena Arena;

  Symbol name(std::string_view Text) { return Interner.intern(Text); }
};

} // namespace

TEST_F(TypeArenaTest, StructuralInterning) {
  TypeId A = Arena.adt(name("Vec"), {Arena.unit()});
  TypeId B = Arena.adt(name("Vec"), {Arena.unit()});
  EXPECT_EQ(A, B);
  TypeId C = Arena.adt(name("Vec"), {Arena.param(name("T"))});
  EXPECT_NE(A, C);
}

TEST_F(TypeArenaTest, SubstituteReplacesParams) {
  Symbol T = name("T");
  TypeId VecT = Arena.adt(name("Vec"), {Arena.param(T)});
  ParamSubst Subst;
  Subst.emplace(T, Arena.unit());
  TypeId VecUnit = Arena.substitute(VecT, Subst);
  EXPECT_EQ(VecUnit, Arena.adt(name("Vec"), {Arena.unit()}));
  // Unrelated params survive.
  TypeId VecU = Arena.adt(name("Vec"), {Arena.param(name("U"))});
  EXPECT_EQ(Arena.substitute(VecU, Subst), VecU);
}

TEST_F(TypeArenaTest, SubstituteIsIdentityWhenNoParams) {
  TypeId Concrete = Arena.adt(name("Timer"));
  ParamSubst Subst;
  Subst.emplace(name("T"), Arena.unit());
  EXPECT_EQ(Arena.substitute(Concrete, Subst), Concrete);
}

TEST_F(TypeArenaTest, SubstituteInferFollowsChains) {
  TypeId V0 = Arena.infer(0);
  TypeId V1 = Arena.infer(1);
  TypeId Timer = Arena.adt(name("Timer"));
  // 0 -> Vec<1>, 1 -> Timer.
  TypeId Vec1 = Arena.adt(name("Vec"), {V1});
  auto Lookup = [&](uint32_t Index) {
    if (Index == 0)
      return Vec1;
    if (Index == 1)
      return Timer;
    return TypeId::invalid();
  };
  TypeId Resolved = Arena.substituteInfer(V0, Lookup);
  EXPECT_EQ(Resolved, Arena.adt(name("Vec"), {Timer}));
}

TEST_F(TypeArenaTest, OccursCheck) {
  TypeId V0 = Arena.infer(0);
  TypeId VecV0 = Arena.adt(name("Vec"), {V0});
  EXPECT_TRUE(Arena.occurs(VecV0, 0));
  EXPECT_FALSE(Arena.occurs(VecV0, 1));
  EXPECT_TRUE(Arena.occurs(V0, 0));
}

TEST_F(TypeArenaTest, CollectInferVars) {
  TypeId Pair = Arena.tuple({Arena.infer(3), Arena.infer(3)});
  std::vector<uint32_t> Vars;
  Arena.collectInferVars(Pair, Vars);
  EXPECT_EQ(Vars.size(), 2u); // Duplicates included.
  EXPECT_EQ(Vars[0], 3u);
}

TEST_F(TypeArenaTest, HasParams) {
  EXPECT_FALSE(Arena.hasParams(Arena.unit()));
  EXPECT_TRUE(Arena.hasParams(Arena.param(name("T"))));
  TypeId Nested = Arena.reference(Region::erased(), true,
                                  Arena.adt(name("Vec"),
                                            {Arena.param(name("T"))}));
  EXPECT_TRUE(Arena.hasParams(Nested));
}

TEST_F(TypeArenaTest, CollectRegions) {
  TypeId Inner = Arena.reference(Region::named(name("a")), false,
                                 Arena.unit());
  TypeId Outer = Arena.reference(Region::makeStatic(), false, Inner);
  std::vector<Region> Regions;
  Arena.collectRegions(Outer, Regions);
  ASSERT_EQ(Regions.size(), 2u);
  EXPECT_EQ(Regions[0].Kind, RegionKind::Static);
  EXPECT_EQ(Regions[1].Kind, RegionKind::Named);
}

TEST_F(TypeArenaTest, TypeSizeCountsNodes) {
  EXPECT_EQ(Arena.typeSize(Arena.unit()), 1u);
  TypeId VecVecUnit = Arena.adt(
      name("Vec"), {Arena.adt(name("Vec"), {Arena.unit()})});
  EXPECT_EQ(Arena.typeSize(VecVecUnit), 3u);
}

TEST_F(TypeArenaTest, FnDefIncludesNameInIdentity) {
  TypeId A = Arena.fnDef(name("run_timer"), {Arena.unit()}, Arena.unit());
  TypeId B = Arena.fnDef(name("other_fn"), {Arena.unit()}, Arena.unit());
  EXPECT_NE(A, B);
  TypeId Ptr = Arena.fnPtr({Arena.unit()}, Arena.unit());
  EXPECT_NE(A, Ptr);
}

TEST_F(TypeArenaTest, ProjectionLayout) {
  TypeId SelfTy = Arena.param(name("Self"));
  TypeId Proj = Arena.projection(SelfTy, name("AstAssocs"), {},
                                 name("Data"));
  const Type &Node = Arena.get(Proj);
  EXPECT_EQ(Node.Kind, TypeKind::Projection);
  EXPECT_EQ(Node.Args.size(), 1u);
  EXPECT_EQ(Node.Args[0], SelfTy);
}
