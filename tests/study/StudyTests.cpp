//===- tests/study/StudyTests.cpp -----------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "study/Simulator.h"

#include <gtest/gtest.h>

#include <set>

using namespace argus;

namespace {

class StudyTest : public ::testing::Test {
protected:
  static const std::vector<StudyTask> &tasks() {
    static const std::vector<StudyTask> Tasks = buildStudyTasks();
    return Tasks;
  }
};

} // namespace

TEST_F(StudyTest, SevenTasksWithExpectedProfiles) {
  const std::vector<StudyTask> &Tasks = tasks();
  ASSERT_EQ(Tasks.size(), 7u);
  // Every study task ranks its ground truth at the top of the bottom-up
  // view (inertia's job).
  for (const StudyTask &Task : Tasks) {
    EXPECT_EQ(Task.TruthRank, 0u) << Task.Id;
    EXPECT_GE(Task.NumLeaves, 1u) << Task.Id;
  }
  // The branch-point tasks (Bevy, Axum) hide the truth from the
  // diagnostic; the chain tasks mention it.
  std::set<std::string> Blind;
  for (const StudyTask &Task : Tasks)
    if (!Task.DiagnosticMentionsTruth)
      Blind.insert(Task.Id);
  EXPECT_EQ(Blind, (std::set<std::string>{"bevy-resmut-missing",
                                          "bevy-assets-mesh",
                                          "axum-handler-deserialize"}));
  // Hidden truths imply positive compiler distance.
  for (const StudyTask &Task : Tasks)
    if (!Task.DiagnosticMentionsTruth)
      EXPECT_GT(Task.CompilerDistance, 0u) << Task.Id;
}

TEST_F(StudyTest, DesignMatchesProtocol) {
  StudyConfig Config;
  StudyResults Results = runStudy(Config, tasks());
  // 25 participants x 4 tasks.
  EXPECT_EQ(Results.Outcomes.size(), 100u);
  EXPECT_EQ(Results.Argus.Trials, 50u);
  EXPECT_EQ(Results.Rustc.Trials, 50u);

  // Within-subjects: every participant did 2 tasks per condition, all
  // distinct.
  for (unsigned P = 0; P != Config.NumParticipants; ++P) {
    unsigned ArgusCount = 0;
    std::set<size_t> Distinct;
    for (const TaskOutcome &Outcome : Results.Outcomes)
      if (Outcome.Participant == P) {
        ArgusCount += Outcome.WithArgus;
        Distinct.insert(Outcome.TaskIndex);
      }
    EXPECT_EQ(ArgusCount, 2u);
    EXPECT_EQ(Distinct.size(), 4u);
  }
}

TEST_F(StudyTest, TimesAreCensoredAtTheCap) {
  StudyConfig Config;
  StudyResults Results = runStudy(Config, tasks());
  for (const TaskOutcome &Outcome : Results.Outcomes) {
    EXPECT_LE(Outcome.LocalizeSeconds, Config.CapSeconds);
    EXPECT_LE(Outcome.FixSeconds, Config.CapSeconds);
    EXPECT_GT(Outcome.LocalizeSeconds, 0.0);
    // Fixing never precedes localization.
    if (Outcome.Fixed) {
      EXPECT_TRUE(Outcome.Localized);
      EXPECT_GE(Outcome.FixSeconds, Outcome.LocalizeSeconds);
    }
    if (!Outcome.Localized)
      EXPECT_FALSE(Outcome.Fixed);
  }
}

TEST_F(StudyTest, DeterministicForAGivenSeed) {
  StudyConfig Config;
  StudyResults A = runStudy(Config, tasks());
  StudyResults B = runStudy(Config, tasks());
  ASSERT_EQ(A.Outcomes.size(), B.Outcomes.size());
  for (size_t I = 0; I != A.Outcomes.size(); ++I) {
    EXPECT_EQ(A.Outcomes[I].Localized, B.Outcomes[I].Localized);
    EXPECT_DOUBLE_EQ(A.Outcomes[I].LocalizeSeconds,
                     B.Outcomes[I].LocalizeSeconds);
  }
}

TEST_F(StudyTest, Figure11ShapeHolds) {
  // The headline result, averaged over several seeds to control
  // Monte-Carlo noise: Argus localizes at roughly twice the rate,
  // several times faster, and fixes more — the paper's 2.2x / 3.3x /
  // 1.6x effects.
  double ArgusLoc = 0, RustcLoc = 0, ArgusFix = 0, RustcFix = 0;
  double ArgusTime = 0, RustcTime = 0;
  const int Seeds = 10;
  for (int I = 0; I != Seeds; ++I) {
    StudyConfig Config;
    Config.Seed = 90 + I;
    StudyResults R = runStudy(Config, tasks());
    ArgusLoc += R.Argus.LocalizeRate;
    RustcLoc += R.Rustc.LocalizeRate;
    ArgusFix += R.Argus.FixRate;
    RustcFix += R.Rustc.FixRate;
    ArgusTime += R.Argus.LocalizeMedianSeconds;
    RustcTime += R.Rustc.LocalizeMedianSeconds;
  }
  ArgusLoc /= Seeds;
  RustcLoc /= Seeds;
  ArgusFix /= Seeds;
  RustcFix /= Seeds;
  ArgusTime /= Seeds;
  RustcTime /= Seeds;

  EXPECT_GT(ArgusLoc, 0.70);          // Paper: 0.84.
  EXPECT_LT(RustcLoc, 0.55);          // Paper: 0.38.
  EXPECT_GT(ArgusLoc / RustcLoc, 1.5); // Paper: 2.2x.
  EXPECT_GT(RustcTime / ArgusTime, 2.0); // Paper: 3.3x.
  EXPECT_GT(ArgusFix, RustcFix);      // Paper: 0.50 vs 0.32.
  EXPECT_GT(RustcTime, 500.0);        // Paper: 9m58s, near the cap.
  EXPECT_LT(ArgusTime, 330.0);        // Paper: 3m03s.
}

TEST_F(StudyTest, EffectsAreStatisticallySignificant) {
  StudyConfig Config;
  StudyResults Results = runStudy(Config, tasks());
  // The paper reports p < 0.001 for localization rate and time; with the
  // same N our simulated effects are comparably strong.
  EXPECT_LT(Results.LocalizeRateTest.PValue, 0.01);
  EXPECT_LT(Results.LocalizeTimeTest.PValue, 0.01);
  EXPECT_LT(Results.FixRateTest.PValue, 0.05);
}

TEST_F(StudyTest, BehavioralTracesEmergeFromMechanics) {
  // RQ2 observations (Section 5.1.2), averaged over seeds: top-down in
  // roughly a quarter of Argus tasks, source searched in most tasks but
  // not all (instant recognitions skip it), docs as a deeper fallback.
  double TopDown = 0, Source = 0, Docs = 0, Popup = 0;
  const int Seeds = 10;
  for (int I = 0; I != Seeds; ++I) {
    StudyConfig Config;
    Config.Seed = 300 + I;
    StudyResults R = runStudy(Config, tasks());
    TopDown += R.Behavior.TopDownShare;
    Source += R.Behavior.SourceSearchShare;
    Docs += R.Behavior.DocsShare;
    Popup += R.Behavior.ImplPopupShare;
  }
  TopDown /= Seeds;
  Source /= Seeds;
  Docs /= Seeds;
  Popup /= Seeds;
  EXPECT_GT(TopDown, 0.08); // Paper: 24%.
  EXPECT_LT(TopDown, 0.45);
  EXPECT_GT(Source, 0.5); // Paper: 73%.
  EXPECT_LT(Source, 0.95);
  EXPECT_GT(Docs, 0.1); // Paper: 31%.
  EXPECT_LT(Docs, 0.55);
  EXPECT_LT(Docs, Source); // Docs are the deeper fallback.
  EXPECT_GT(Popup, 0.3);   // Fixers consult the implementors.
}

TEST_F(StudyTest, CSVExportIsWellFormed) {
  StudyConfig Config;
  StudyResults Results = runStudy(Config, tasks());
  std::string CSV = outcomesToCSV(Results, tasks());
  // Header + one line per outcome.
  size_t Lines = std::count(CSV.begin(), CSV.end(), '\n');
  EXPECT_EQ(Lines, Results.Outcomes.size() + 1);
  EXPECT_EQ(CSV.rfind("participant,task,condition", 0), 0u);
  EXPECT_NE(CSV.find(",argus,"), std::string::npos);
  EXPECT_NE(CSV.find(",rustc,"), std::string::npos);
  EXPECT_NE(CSV.find("bevy-resmut-missing"), std::string::npos);
  // Every row has the full column count.
  size_t FirstRow = CSV.find('\n') + 1;
  size_t RowEnd = CSV.find('\n', FirstRow);
  std::string Row = CSV.substr(FirstRow, RowEnd - FirstRow);
  EXPECT_EQ(std::count(Row.begin(), Row.end(), ','), 11);
}

TEST_F(StudyTest, ReportMentionsAllFigureRows) {
  StudyConfig Config;
  StudyResults Results = runStudy(Config, tasks());
  std::string Report = formatStudyReport(Results);
  EXPECT_NE(Report.find("with Argus"), std::string::npos);
  EXPECT_NE(Report.find("without Argus"), std::string::npos);
  EXPECT_NE(Report.find("localized"), std::string::npos);
  EXPECT_NE(Report.find("time-to-localize"), std::string::npos);
  EXPECT_NE(Report.find("time-to-fix"), std::string::npos);
  EXPECT_NE(Report.find("chi2"), std::string::npos);
}

TEST_F(StudyTest, NoArgusConditionCollapsesWithoutRanking) {
  // Sanity ablation: if the bottom-up view ranked the truth last instead
  // of first, the Argus advantage shrinks (scanning cost grows with
  // rank).
  std::vector<StudyTask> Degraded = tasks();
  for (StudyTask &Task : Degraded) {
    Task.NumLeaves = 12;
    Task.TruthRank = 11;
  }
  StudyConfig Config;
  StudyResults Good = runStudy(Config, tasks());
  StudyResults Bad = runStudy(Config, Degraded);
  EXPECT_GT(Bad.Argus.LocalizeMedianSeconds,
            Good.Argus.LocalizeMedianSeconds);
}
