//===- tests/diagnostics/DiagnosticsTests.cpp -----------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "diagnostics/Diagnostics.h"
#include "extract/Extract.h"
#include "tlang/Parser.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

class DiagnosticsTest : public ::testing::Test {
protected:
  Session S;
  Program Prog{S};

  InferenceTree failingTree(std::string Source) {
    ParseResult Result = parseSource(Prog, "app.tl", std::move(Source));
    EXPECT_TRUE(Result.Success) << Result.describe(S.sources());
    Solver Solve(Prog);
    SolveOutcome Out = Solve.solve();
    Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
    EXPECT_GE(Ex.Trees.size(), 1u);
    return std::move(Ex.Trees[0]);
  }
};

const char *BevyProgram =
    "#[external] struct ResMut<T>;\n"
    "struct Timer;\n"
    "#[external] trait Resource;\n"
    "#[external] trait SystemParam;\n"
    "#[external] impl<T> SystemParam for ResMut<T> where T: Resource;\n"
    "#[external] trait System;\n"
    "#[external, fn_trait] trait SystemParamFunction<Sig>;\n"
    "#[external] struct IsFunctionSystem;\n"
    "#[external] struct IsSystem;\n"
    "#[external] trait IntoSystem<Marker>;\n"
    "#[external] impl<P, Func> IntoSystem<(IsFunctionSystem, fn(P))> for "
    "Func\n"
    "  where Func: SystemParamFunction<fn(P)>, P: SystemParam;\n"
    "#[external] impl<Sys> IntoSystem<IsSystem> for Sys where Sys: System;\n"
    "impl Resource for Timer;\n"
    "fn run_timer(Timer);\n"
    "goal run_timer: IntoSystem<?M>;";

} // namespace

TEST_F(DiagnosticsTest, MissingImplIsE0277) {
  InferenceTree Tree = failingTree("struct Timer;\n"
                                   "trait Resource;\n"
                                   "goal Timer: Resource;");
  DiagnosticRenderer Renderer(Prog);
  RenderedDiagnostic Diag = Renderer.render(Tree);
  EXPECT_EQ(Diag.ErrorCode, "E0277");
  EXPECT_NE(Diag.Text.find(
                "the trait bound `Timer: Resource` is not satisfied"),
            std::string::npos);
  EXPECT_NE(Diag.Text.find("--> app.tl:3"), std::string::npos);
  EXPECT_NE(Diag.Text.find("required by a bound introduced by this call"),
            std::string::npos);
}

TEST_F(DiagnosticsTest, DeepChainLeadsWithDeepestFailure) {
  InferenceTree Tree = failingTree(
      "struct V1<T>; struct V2<T>; struct V3<T>; struct V4<T>;\n"
      "struct V5<T>; struct V6<T>;\n"
      "struct Timer;\n"
      "trait Display;\n"
      "impl<T> Display for V1<T> where T: Display;\n"
      "impl<T> Display for V2<T> where V1<T>: Display;\n"
      "impl<T> Display for V3<T> where V2<T>: Display;\n"
      "impl<T> Display for V4<T> where V3<T>: Display;\n"
      "impl<T> Display for V5<T> where V4<T>: Display;\n"
      "impl<T> Display for V6<T> where V5<T>: Display;\n"
      "goal V6<Timer>: Display;");
  DiagnosticRenderer Renderer(Prog);
  RenderedDiagnostic Diag = Renderer.render(Tree);
  // Leads with the deepest failure, like Figure 2b.
  EXPECT_NE(Diag.Text.find(
                "the trait bound `Timer: Display` is not satisfied"),
            std::string::npos);
  // The middle of the provenance chain is elided.
  EXPECT_GT(Diag.HiddenRequirements, 0u);
  EXPECT_NE(Diag.Text.find("redundant requirement"), std::string::npos);
  // The elided goals are genuinely not mentioned.
  size_t Mentioned = Diag.MentionedGoals.size();
  size_t ChainLength = Tree.pathToRoot(Diag.ReportedNode).size();
  EXPECT_EQ(Mentioned + Diag.HiddenRequirements, ChainLength);
}

TEST_F(DiagnosticsTest, ShowFullChainsDisablesElision) {
  InferenceTree Tree = failingTree(
      "struct V1<T>; struct V2<T>; struct V3<T>; struct V4<T>;\n"
      "struct V5<T>; struct V6<T>;\n"
      "struct Timer;\n"
      "trait Display;\n"
      "impl<T> Display for V1<T> where T: Display;\n"
      "impl<T> Display for V2<T> where V1<T>: Display;\n"
      "impl<T> Display for V3<T> where V2<T>: Display;\n"
      "impl<T> Display for V4<T> where V3<T>: Display;\n"
      "impl<T> Display for V5<T> where V4<T>: Display;\n"
      "impl<T> Display for V6<T> where V5<T>: Display;\n"
      "goal V6<Timer>: Display;");
  DiagnosticOptions Opts;
  Opts.ShowFullChains = true;
  DiagnosticRenderer Renderer(Prog, Opts);
  RenderedDiagnostic Diag = Renderer.render(Tree);
  EXPECT_EQ(Diag.HiddenRequirements, 0u);
  EXPECT_EQ(Diag.Text.find("redundant"), std::string::npos);
}

TEST_F(DiagnosticsTest, BevyDiagnosticOmitsSystemParam) {
  // The central Section 2.3 observation: the rustc text never mentions
  // the SystemParam bound, because the branch point stops the chain.
  InferenceTree Tree = failingTree(BevyProgram);
  DiagnosticRenderer Renderer(Prog);
  RenderedDiagnostic Diag = Renderer.render(Tree);
  EXPECT_EQ(Diag.ErrorCode, "E0277");
  EXPECT_NE(Diag.Text.find("IntoSystem"), std::string::npos);
  EXPECT_EQ(Diag.Text.find("SystemParam"), std::string::npos);
  EXPECT_EQ(Diag.ReportedNode, Tree.rootId());
}

TEST_F(DiagnosticsTest, OverflowIsE0275) {
  InferenceTree Tree = failingTree(
      "trait AstAssocs: Sized { type Data: AssocData<Self>; }\n"
      "trait AssocData<A>;\n"
      "struct EmptyNode;\n"
      "impl<Data> AstAssocs for Data where Data: AssocData<Data> {\n"
      "  type Data = Data;\n"
      "}\n"
      "impl<A> AssocData<A> for EmptyNode where A: AstAssocs;\n"
      "goal EmptyNode: AstAssocs;");
  DiagnosticRenderer Renderer(Prog);
  RenderedDiagnostic Diag = Renderer.render(Tree);
  EXPECT_EQ(Diag.ErrorCode, "E0275");
  EXPECT_NE(Diag.Text.find("overflow evaluating the requirement "
                           "`EmptyNode: AstAssocs`"),
            std::string::npos);
}

TEST_F(DiagnosticsTest, ProjectionMismatchIsE0271) {
  InferenceTree Tree = failingTree(
      "struct Once;\n"
      "struct Never;\n"
      "struct users::table;\n"
      "struct posts::table;\n"
      "trait AppearsInFromClause<QS> { type Count; }\n"
      "impl AppearsInFromClause<users::table> for posts::table {\n"
      "  type Count = Never;\n"
      "}\n"
      "goal <posts::table as AppearsInFromClause<users::table>>::Count "
      "== Once;");
  DiagnosticRenderer Renderer(Prog);
  RenderedDiagnostic Diag = Renderer.render(Tree);
  EXPECT_EQ(Diag.ErrorCode, "E0271");
  EXPECT_NE(Diag.Text.find("type mismatch resolving"), std::string::npos);
  // The rustc-style printer shortens both tables to `table` — the
  // Section 2.1 confusion, reproduced.
  EXPECT_NE(Diag.Text.find("<table as AppearsInFromClause<table>>"),
            std::string::npos);
}

TEST_F(DiagnosticsTest, ResidualAmbiguityIsE0283) {
  InferenceTree Tree = failingTree("struct A;\n"
                                   "struct B;\n"
                                   "trait Display;\n"
                                   "impl Display for A;\n"
                                   "impl Display for B;\n"
                                   "goal ?T: Display;");
  DiagnosticRenderer Renderer(Prog);
  RenderedDiagnostic Diag = Renderer.render(Tree);
  EXPECT_EQ(Diag.ErrorCode, "E0283");
  EXPECT_NE(Diag.Text.find("type annotations needed"), std::string::npos);
  // The competing impls are listed, as rustc does.
  EXPECT_NE(Diag.Text.find("multiple `impl`s satisfying"),
            std::string::npos);
  EXPECT_NE(Diag.Text.find("impl Display for A"), std::string::npos);
  EXPECT_NE(Diag.Text.find("impl Display for B"), std::string::npos);
}

TEST_F(DiagnosticsTest, MentionsIsAccurate) {
  InferenceTree Tree = failingTree(BevyProgram);
  DiagnosticRenderer Renderer(Prog);
  RenderedDiagnostic Diag = Renderer.render(Tree);
  EXPECT_TRUE(Diag.mentions(Tree.rootId()));
  for (IGoalId Leaf : Tree.failedLeaves())
    EXPECT_FALSE(Diag.mentions(Leaf));
}
