//===- tests/interface/HTMLExportTests.cpp --------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "extract/Extract.h"
#include "interface/HTMLExport.h"
#include "tlang/Parser.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

class HTMLExportTest : public ::testing::Test {
protected:
  Session S;
  Program Prog{S};
  std::vector<InferenceTree> Trees;

  InferenceTree &loadTree(std::string Source) {
    ParseResult Result = parseSource(Prog, "app.tl", std::move(Source));
    EXPECT_TRUE(Result.Success) << Result.describe(S.sources());
    Solver Solve(Prog);
    SolveOutcome Out = Solve.solve();
    Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
    EXPECT_EQ(Ex.Trees.size(), 1u);
    Trees.push_back(std::move(Ex.Trees[0]));
    return Trees.back();
  }
};

} // namespace

TEST(EscapeHTML, EscapesMetacharacters) {
  EXPECT_EQ(escapeHTML("Vec<T> & \"x\""),
            "Vec&lt;T&gt; &amp; &quot;x&quot;");
  EXPECT_EQ(escapeHTML("plain"), "plain");
}

TEST_F(HTMLExportTest, DocumentStructure) {
  InferenceTree &Tree = loadTree("struct Vec<T>;\n"
                                 "struct Timer;\n"
                                 "trait Display;\n"
                                 "impl<T> Display for Vec<T> where T: "
                                 "Display;\n"
                                 "goal Vec<Timer>: Display;");
  std::string HTML = treeToHTML(Prog, Tree);
  EXPECT_NE(HTML.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(HTML.find("Bottom up"), std::string::npos);
  EXPECT_NE(HTML.find("Minimum correction subsets"), std::string::npos);
  EXPECT_NE(HTML.find("<details"), std::string::npos);
  EXPECT_NE(HTML.find("Timer: Display"), std::string::npos);
  // Types are escaped, never raw.
  EXPECT_EQ(HTML.find("Vec<Timer>: Display<"), std::string::npos);
  EXPECT_NE(HTML.find("Vec&lt;Timer&gt;: Display"), std::string::npos);
  // The diagnostic section is included by default.
  EXPECT_NE(HTML.find("static diagnostic"), std::string::npos);
  EXPECT_NE(HTML.find("E0277"), std::string::npos);
}

TEST_F(HTMLExportTest, HoverTitlesCarryFullPaths) {
  InferenceTree &Tree =
      loadTree("#[external] struct diesel::SelectStatement<F>;\n"
               "struct users::table;\n"
               "trait Query;\n"
               "goal diesel::SelectStatement<users::table>: Query;");
  std::string HTML = treeToHTML(Prog, Tree);
  // Short text in the body, full path in the title attribute.
  EXPECT_NE(HTML.find("title=\"diesel::SelectStatement&lt;users::table"
                      "&gt;: Query\""),
            std::string::npos);
}

TEST_F(HTMLExportTest, OptionsAreHonored) {
  InferenceTree &Tree = loadTree("struct Timer;\n"
                                 "trait Resource;\n"
                                 "goal Timer: Resource;");
  HTMLExportOptions Opts;
  Opts.Title = "my <debug> session";
  Opts.IncludeDiagnostic = false;
  std::string HTML = treeToHTML(Prog, Tree, Opts);
  EXPECT_NE(HTML.find("<title>my &lt;debug&gt; session</title>"),
            std::string::npos);
  EXPECT_EQ(HTML.find("static diagnostic"), std::string::npos);
}

TEST_F(HTMLExportTest, WeightsAndCategoriesShown) {
  InferenceTree &Tree = loadTree("struct Timer;\n"
                                 "#[external] trait SystemParam;\n"
                                 "goal Timer: SystemParam;");
  std::string HTML = treeToHTML(Prog, Tree);
  EXPECT_NE(HTML.find("(Trait, weight 1)"), std::string::npos);
}
