//===- tests/interface/ViewTests.cpp --------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "extract/Extract.h"
#include "interface/View.h"
#include "tlang/Parser.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

const char *BevyProgram =
    "#[external] struct ResMut<T>;\n"
    "struct Timer;\n"
    "#[external] trait Resource;\n"
    "#[external] trait SystemParam;\n"
    "#[external] impl<T> SystemParam for ResMut<T> where T: Resource;\n"
    "#[external] trait System;\n"
    "#[external, fn_trait] trait SystemParamFunction<Sig>;\n"
    "#[external] struct IsFunctionSystem;\n"
    "#[external] struct IsSystem;\n"
    "#[external] trait IntoSystem<Marker>;\n"
    "#[external] impl<P, Func> IntoSystem<(IsFunctionSystem, fn(P))> for "
    "Func\n"
    "  where Func: SystemParamFunction<fn(P)>, P: SystemParam;\n"
    "#[external] impl<Sys> IntoSystem<IsSystem> for Sys where Sys: System;\n"
    "impl Resource for Timer;\n"
    "fn run_timer(Timer);\n"
    "goal run_timer: IntoSystem<?M>;";

class ViewTest : public ::testing::Test {
protected:
  Session S;
  Program Prog{S};
  std::vector<InferenceTree> Trees;

  InferenceTree &loadBevy() { return loadTree(BevyProgram); }

  InferenceTree &loadTree(std::string Source) {
    ParseResult Result = parseSource(Prog, "app.tl", std::move(Source));
    EXPECT_TRUE(Result.Success) << Result.describe(S.sources());
    Solver Solve(Prog);
    SolveOutcome Out = Solve.solve();
    Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
    EXPECT_EQ(Ex.Trees.size(), 1u);
    Trees.push_back(std::move(Ex.Trees[0]));
    return Trees.back();
  }

  static size_t findRow(const std::vector<ViewRow> &Rows,
                        std::string_view Needle) {
    for (size_t I = 0; I != Rows.size(); ++I)
      if (Rows[I].Text.find(Needle) != std::string::npos)
        return I;
    return Rows.size();
  }
};

} // namespace

TEST_F(ViewTest, BottomUpShowsRankedLeavesCollapsed) {
  ArgusInterface UI(Prog, loadBevy());
  std::vector<ViewRow> Rows = UI.rows();
  // Header + two leaves, nothing unfolded yet.
  ASSERT_EQ(Rows.size(), 3u);
  EXPECT_EQ(Rows[0].RowKind, ViewRow::Kind::Header);
  // Inertia puts Timer: SystemParam first (the paper's Figure 9a).
  EXPECT_NE(Rows[1].Text.find("Timer: SystemParam"), std::string::npos);
  EXPECT_NE(Rows[2].Text.find("run_timer"), std::string::npos);
  EXPECT_TRUE(Rows[1].Expandable);
  EXPECT_FALSE(Rows[1].Expanded);
}

TEST_F(ViewTest, CollapseSeqUnfoldsTowardsRoot) {
  ArgusInterface UI(Prog, loadBevy());
  ASSERT_TRUE(UI.toggleExpand(1));
  std::vector<ViewRow> Rows = UI.rows();
  // Row 1 expanded: now shows the impl candidate and the parent goal.
  ASSERT_GT(Rows.size(), 3u);
  EXPECT_TRUE(Rows[1].Expanded);
  EXPECT_EQ(Rows[2].RowKind, ViewRow::Kind::Candidate);
  EXPECT_NE(Rows[2].Text.find("impl"), std::string::npos);
  EXPECT_EQ(Rows[3].RowKind, ViewRow::Kind::Goal);
  EXPECT_NE(Rows[3].Text.find("IntoSystem"), std::string::npos);
  // Collapsing restores the original shape.
  ASSERT_TRUE(UI.toggleExpand(1));
  EXPECT_EQ(UI.rows().size(), 3u);
}

TEST_F(ViewTest, ExpandAllReachesTheRootFromEveryLeaf) {
  ArgusInterface UI(Prog, loadBevy());
  UI.expandAll();
  std::vector<ViewRow> Rows = UI.rows();
  // Both chains fully unfolded mention the root predicate.
  size_t RootMentions = 0;
  for (const ViewRow &Row : Rows)
    if (Row.Text.find("IntoSystem<") != std::string::npos &&
        Row.RowKind == ViewRow::Kind::Goal)
      ++RootMentions;
  EXPECT_GE(RootMentions, 2u);
}

TEST_F(ViewTest, TopDownStartsAtRootAndUnfoldsDownwards) {
  ArgusInterface UI(Prog, loadBevy());
  UI.setActiveView(ViewKind::TopDown);
  std::vector<ViewRow> Rows = UI.rows();
  ASSERT_EQ(Rows.size(), 2u); // Header + root.
  EXPECT_NE(Rows[1].Text.find("IntoSystem"), std::string::npos);
  ASSERT_TRUE(UI.toggleExpand(1));
  Rows = UI.rows();
  // Root expanded: both impl candidates visible — the branch point the
  // static diagnostic hides.
  size_t Impls = 0;
  for (const ViewRow &Row : Rows)
    Impls += Row.RowKind == ViewRow::Kind::Candidate;
  EXPECT_EQ(Impls, 2u);
}

TEST_F(ViewTest, ShortTysHoverShowsFullPaths) {
  loadTree("#[external] struct diesel::query_builder::SelectStatement<F>;\n"
           "struct users::table;\n"
           "trait Query;\n"
           "goal diesel::query_builder::SelectStatement<users::table>: "
           "Query;");
  ArgusInterface UI(Prog, Trees.back());
  std::vector<ViewRow> Rows = UI.rows();
  size_t Row = findRow(Rows, "SelectStatement");
  ASSERT_LT(Row, Rows.size());
  // Rendered short...
  EXPECT_EQ(Rows[Row].Text.find("diesel::query_builder"),
            std::string::npos);
  // ...full paths on hover (Figure 7a).
  std::string Hover = UI.hoverMinibuffer(Row);
  EXPECT_NE(Hover.find("diesel::query_builder::SelectStatement"),
            std::string::npos);
  EXPECT_NE(Hover.find("users::table"), std::string::npos);
  EXPECT_NE(Hover.find("Query"), std::string::npos);
}

TEST_F(ViewTest, EllipsisToggleExpandsArgumentsInPlace) {
  loadTree("struct Wide<A, B, C, D, E>;\n"
           "struct P1; struct P2; struct P3; struct P4; struct P5;\n"
           "trait Query;\n"
           "goal Wide<P1, P2, P3, P4, P5>: Query;");
  ArgusInterface UI(Prog, Trees.back());
  std::vector<ViewRow> Rows = UI.rows();
  size_t Row = findRow(Rows, "Wide");
  ASSERT_LT(Row, Rows.size());
  EXPECT_NE(Rows[Row].Text.find("Wide<...>"), std::string::npos);
  ASSERT_TRUE(UI.toggleTypeEllipsis(Row));
  Rows = UI.rows();
  EXPECT_NE(Rows[Row].Text.find("Wide<P1, P2, P3, P4, P5>"),
            std::string::npos);
  // Toggling back restores the ellipsis.
  ASSERT_TRUE(UI.toggleTypeEllipsis(Row));
  Rows = UI.rows();
  EXPECT_NE(Rows[Row].Text.find("Wide<...>"), std::string::npos);
}

TEST_F(ViewTest, AmbiguousShortNamesAreDisambiguated) {
  loadTree("struct users::table;\n"
           "struct posts::table;\n"
           "trait AppearsOnTable<QS>;\n"
           "goal posts::table: AppearsOnTable<users::table>;");
  ArgusInterface UI(Prog, Trees.back());
  std::vector<ViewRow> Rows = UI.rows();
  size_t Row = findRow(Rows, "AppearsOnTable");
  ASSERT_LT(Row, Rows.size());
  // Unlike the rustc renderer, Argus shows the distinguishing parent
  // segment.
  EXPECT_NE(Rows[Row].Text.find("posts::table"), std::string::npos);
  EXPECT_NE(Rows[Row].Text.find("users::table"), std::string::npos);
}

TEST_F(ViewTest, ImplsPopupListsAllImplementors) {
  ArgusInterface UI(Prog, loadBevy());
  std::vector<ViewRow> Rows = UI.rows();
  size_t Row = findRow(Rows, "Timer: SystemParam");
  ASSERT_LT(Row, Rows.size());
  std::vector<std::string> Popup = UI.implsPopup(Row);
  ASSERT_EQ(Popup.size(), 1u);
  EXPECT_EQ(Popup[0],
            "impl<T> SystemParam for ResMut<T> where T: Resource");
}

TEST_F(ViewTest, DefinitionLinksTargetDeclarations) {
  ArgusInterface UI(Prog, loadBevy());
  std::vector<ViewRow> Rows = UI.rows();
  size_t Row = findRow(Rows, "Timer: SystemParam");
  ASSERT_LT(Row, Rows.size());
  std::vector<DefinitionLink> Links = UI.definitionLinks(Row);
  ASSERT_EQ(Links.size(), 2u);
  EXPECT_EQ(Links[0].Name, "Timer");
  EXPECT_EQ(Links[1].Name, "SystemParam");
  // Timer is declared on line 2 of the source.
  LineColumn LC = S.sources().lineColumn(Links[0].Target.File,
                                         Links[0].Target.Begin);
  EXPECT_EQ(LC.Line, 2u);
}

TEST_F(ViewTest, RenderTextShowsMarkersAndFolds) {
  ArgusInterface UI(Prog, loadBevy());
  std::string Text = UI.renderText();
  EXPECT_NE(Text.find("== Bottom Up =="), std::string::npos);
  EXPECT_NE(Text.find("> [x] Timer: SystemParam"), std::string::npos);
  UI.setActiveView(ViewKind::TopDown);
  Text = UI.renderText();
  EXPECT_NE(Text.find("== Top Down =="), std::string::npos);
}

TEST_F(ViewTest, SearchFindsGoalsCaseInsensitively) {
  ArgusInterface UI(Prog, loadBevy());
  std::vector<IGoalId> Matches = UI.searchGoals("systemparam");
  ASSERT_FALSE(Matches.empty());
  TypePrinter Printer(Prog);
  bool SawTimer = false;
  for (IGoalId Id : Matches)
    SawTimer |= Printer.print(UI.tree().goal(Id).Pred) ==
                "Timer: SystemParam";
  EXPECT_TRUE(SawTimer);
  EXPECT_TRUE(UI.searchGoals("no-such-trait-here").empty());
  // An empty needle matches everything.
  EXPECT_EQ(UI.searchGoals("").size(), UI.tree().numGoals());
}

TEST_F(ViewTest, RevealGoalInTopDown) {
  ArgusInterface UI(Prog, loadBevy());
  UI.setActiveView(ViewKind::TopDown);
  std::vector<IGoalId> Matches = UI.searchGoals("Timer: SystemParam");
  ASSERT_FALSE(Matches.empty());
  // Not visible while the tree is collapsed.
  EXPECT_EQ(UI.rowOf(Matches[0]), UI.rows().size());
  ASSERT_TRUE(UI.revealGoal(Matches[0]));
  size_t Row = UI.rowOf(Matches[0]);
  ASSERT_LT(Row, UI.rows().size());
  EXPECT_NE(UI.rows()[Row].Text.find("Timer: SystemParam"),
            std::string::npos);
}

TEST_F(ViewTest, RevealGoalInBottomUp) {
  ArgusInterface UI(Prog, loadBevy());
  // The root predicate is hidden until a leaf chain unfolds to it.
  std::vector<IGoalId> Matches = UI.searchGoals("IntoSystem");
  ASSERT_FALSE(Matches.empty());
  IGoalId Root = UI.tree().rootId();
  EXPECT_EQ(UI.rowOf(Root), UI.rows().size());
  ASSERT_TRUE(UI.revealGoal(Root));
  EXPECT_LT(UI.rowOf(Root), UI.rows().size());
}

TEST_F(ViewTest, HeaderAndCandidateRowsAreNotExpandable) {
  ArgusInterface UI(Prog, loadBevy());
  EXPECT_FALSE(UI.toggleExpand(0)); // Header.
  ASSERT_TRUE(UI.toggleExpand(1));
  EXPECT_FALSE(UI.toggleExpand(2)); // Candidate row.
}
