//===- tests/interface/ViewJSONTests.cpp ----------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "extract/Extract.h"
#include "interface/ViewJSON.h"
#include "tlang/Parser.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

class ViewJSONTest : public ::testing::Test {
protected:
  Session S;
  Program Prog{S};
  std::vector<InferenceTree> Trees;

  InferenceTree &loadTree(std::string Source) {
    ParseResult Result = parseSource(Prog, "app.tl", std::move(Source));
    EXPECT_TRUE(Result.Success) << Result.describe(S.sources());
    Solver Solve(Prog);
    SolveOutcome Out = Solve.solve();
    Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
    EXPECT_EQ(Ex.Trees.size(), 1u);
    Trees.push_back(std::move(Ex.Trees[0]));
    return Trees.back();
  }
};

} // namespace

TEST_F(ViewJSONTest, BottomUpStateSerializes) {
  loadTree("struct Timer;\n"
           "trait Resource;\n"
           "goal Timer: Resource;");
  ArgusInterface UI(Prog, Trees.back());
  std::string JSON = viewToJSON(UI, Prog);
  EXPECT_NE(JSON.find("\"view\":\"bottom-up\""), std::string::npos);
  EXPECT_NE(JSON.find("\"text\":\"[x] Timer: Resource\""),
            std::string::npos);
  EXPECT_NE(JSON.find("\"result\":\"no\""), std::string::npos);
  EXPECT_NE(JSON.find("\"kind\":\"header\""), std::string::npos);
}

TEST_F(ViewJSONTest, FoldStateAndViewSwitchAreReflected) {
  loadTree("struct Vec<T>;\n"
           "struct Timer;\n"
           "trait Display;\n"
           "impl<T> Display for Vec<T> where T: Display;\n"
           "goal Vec<Timer>: Display;");
  ArgusInterface UI(Prog, Trees.back());
  EXPECT_NE(viewToJSON(UI, Prog).find("\"expanded\":false"),
            std::string::npos);
  UI.toggleExpand(1);
  std::string JSON = viewToJSON(UI, Prog);
  EXPECT_NE(JSON.find("\"expanded\":true"), std::string::npos);
  EXPECT_NE(JSON.find("\"kind\":\"candidate\""), std::string::npos);

  UI.setActiveView(ViewKind::TopDown);
  EXPECT_NE(viewToJSON(UI, Prog).find("\"view\":\"top-down\""),
            std::string::npos);
}

TEST_F(ViewJSONTest, GoalRowsCarryHoverAndDefinitions) {
  loadTree("struct users::table;\n"
           "trait Query;\n"
           "goal users::table: Query;");
  ArgusInterface UI(Prog, Trees.back());
  std::string JSON = viewToJSON(UI, Prog, /*Pretty=*/true);
  EXPECT_NE(JSON.find("\"hover\": \"users::table\\nQuery\""),
            std::string::npos);
  EXPECT_NE(JSON.find("\"name\": \"users::table\""), std::string::npos);
  EXPECT_NE(JSON.find("app.tl:1:1"), std::string::npos);
}
