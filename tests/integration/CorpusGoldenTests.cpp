//===- tests/integration/CorpusGoldenTests.cpp ----------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Golden expectations per evaluation-suite program: the diagnostic error
/// code, whether the static text contains the root cause, the number of
/// failed leaves, and the inertia category of the ground truth. These
/// pin down the per-program behaviour behind the Figure 12a aggregates,
/// so a regression in any one program is caught by name.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "engine/Session.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

struct Golden {
  const char *Id;
  const char *ErrorCode;
  bool DiagnosticMentionsTruth;
  size_t FailedLeaves;
  GoalKind::Tag TruthCategory;
};

const Golden Expectations[] = {
    {"diesel-missing-join", "E0271", true, 1, GoalKind::Tag::TyChange},
    {"diesel-select-foreign-column", "E0271", true, 1,
     GoalKind::Tag::TyChange},
    {"diesel-type-mismatched-eq", "E0271", true, 1,
     GoalKind::Tag::TyChange},
    {"bevy-resmut-missing", "E0277", false, 2, GoalKind::Tag::Trait},
    {"bevy-assets-mesh", "E0277", false, 4, GoalKind::Tag::Trait},
    {"bevy-query-filter", "E0277", false, 2, GoalKind::Tag::Trait},
    {"axum-handler-deserialize", "E0277", false, 2,
     GoalKind::Tag::Trait},
    {"axum-missing-intoresponse", "E0277", false, 2,
     GoalKind::Tag::Trait},
    {"axum-state-clone", "E0277", false, 2, GoalKind::Tag::Trait},
    {"ast-assoc-recursion", "E0275", true, 1, GoalKind::Tag::Trait},
    {"ast-box-growth", "E0275", true, 2, GoalKind::Tag::Trait},
    {"brew-incompatible-ingredients", "E0277", true, 1,
     GoalKind::Tag::Trait},
    {"brew-stir-step-signature", "E0277", false, 2,
     GoalKind::Tag::IncorrectParams},
    {"brew-potency-mismatch", "E0271", true, 1, GoalKind::Tag::TyChange},
    {"space-unreachable-route", "E0277", true, 1, GoalKind::Tag::Trait},
    {"space-fuel-projection", "E0271", true, 1, GoalKind::Tag::TyChange},
    {"space-relay-overflow", "E0275", true, 2, GoalKind::Tag::Trait},
};

class GoldenTest : public ::testing::TestWithParam<Golden> {};

} // namespace

TEST_P(GoldenTest, MatchesExpectations) {
  const Golden &Expected = GetParam();
  const CorpusEntry *Entry = nullptr;
  for (const CorpusEntry &Candidate : evaluationSuite())
    if (Candidate.Id == Expected.Id)
      Entry = &Candidate;
  ASSERT_NE(Entry, nullptr) << Expected.Id;

  engine::Session ES(Entry->Id, Entry->Source);
  const Program &Prog = ES.program();
  ASSERT_EQ(ES.numTrees(), 1u);
  const InferenceTree &Tree = ES.tree(0);

  RenderedDiagnostic Diag = ES.diagnostic(0);
  EXPECT_EQ(Diag.ErrorCode, Expected.ErrorCode);

  // Does the text mention the root cause anywhere?
  bool Mentions = false;
  for (IGoalId Goal : Diag.MentionedGoals)
    for (const Predicate &Truth : Prog.rootCauses())
      Mentions |= Tree.goal(Goal).Pred == Truth;
  EXPECT_EQ(Mentions, Expected.DiagnosticMentionsTruth);

  EXPECT_EQ(Tree.failedLeaves().size(), Expected.FailedLeaves);

  // The ground truth's inertia category.
  IGoalId TruthNode;
  for (const Predicate &Truth : Prog.rootCauses())
    for (IGoalId Leaf : Tree.failedLeaves())
      if (Tree.goal(Leaf).Pred == Truth && !TruthNode.isValid())
        TruthNode = Leaf;
  if (!TruthNode.isValid())
    TruthNode = Tree.rootId(); // Overflow programs annotate the root.
  EXPECT_EQ(classifyGoal(Prog, Tree.goal(TruthNode).Pred).Kind,
            Expected.TruthCategory);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, GoldenTest, ::testing::ValuesIn(Expectations),
    [](const ::testing::TestParamInfo<Golden> &Info) {
      std::string Name = Info.param.Id;
      std::replace(Name.begin(), Name.end(), '-', '_');
      return Name;
    });
