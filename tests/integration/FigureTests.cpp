//===- tests/integration/FigureTests.cpp ----------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end assertions that the paper's figures reproduce: each test
/// drives the whole pipeline (parse -> solve -> extract -> rank ->
/// render) on the corresponding corpus program and checks the observable
/// claims the figure makes.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "engine/Session.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

class FigureTest : public ::testing::Test {
protected:
  std::optional<engine::Session> ES;

  const InferenceTree &pipeline(const char *Id) {
    const CorpusEntry *Entry = nullptr;
    for (const CorpusEntry &Candidate : evaluationSuite())
      if (Candidate.Id == Id)
        Entry = &Candidate;
    EXPECT_NE(Entry, nullptr) << Id;
    ES.emplace(Entry->Id, Entry->Source);
    EXPECT_EQ(ES->numTrees(), 1u);
    return ES->tree(0);
  }

  const Program &prog() { return ES->program(); }
};

} // namespace

TEST_F(FigureTest, Figure2DieselDiagnostic) {
  const InferenceTree &Tree = pipeline("diesel-missing-join");
  RenderedDiagnostic Diag = ES->diagnostic(0);

  // Figure 2b: E0271, leading with the Count == Once mismatch, with the
  // two tables printed identically and the middle of the chain hidden.
  EXPECT_EQ(Diag.ErrorCode, "E0271");
  EXPECT_NE(Diag.Text.find("type mismatch resolving `<table as "
                           "AppearsInFromClause<table>>::Count == Once`"),
            std::string::npos);
  EXPECT_NE(Diag.Text.find("redundant requirements hidden"),
            std::string::npos);
  EXPECT_GT(Diag.HiddenRequirements, 0u);

  // The Argus view disambiguates the tables and can unfold to the elided
  // Eq<...> step.
  ArgusInterface UI(prog(), Tree);
  UI.expandAll();
  std::string Text = UI.renderText();
  EXPECT_NE(Text.find("users::table"), std::string::npos);
  EXPECT_NE(Text.find("posts::table"), std::string::npos);
  EXPECT_NE(Text.find("Eq<"), std::string::npos);
}

TEST_F(FigureTest, Figure3AstCycle) {
  const InferenceTree &Tree = pipeline("ast-assoc-recursion");
  RenderedDiagnostic Diag = ES->diagnostic(0);
  EXPECT_EQ(Diag.ErrorCode, "E0275");
  EXPECT_NE(
      Diag.Text.find(
          "overflow evaluating the requirement `EmptyNode: AstAssocs`"),
      std::string::npos);

  // Figure 3c: the cycle is two logical steps: AstAssocs ->
  // AssocData<EmptyNode> -> AstAssocs.
  ArgusInterface UI(prog(), Tree);
  UI.setActiveView(ViewKind::TopDown);
  UI.expandAll();
  std::vector<ViewRow> Rows = UI.rows();
  std::vector<std::string> GoalTexts;
  for (const ViewRow &Row : Rows)
    if (Row.RowKind == ViewRow::Kind::Goal)
      GoalTexts.push_back(Row.Text);
  ASSERT_EQ(GoalTexts.size(), 3u);
  EXPECT_NE(GoalTexts[0].find("EmptyNode: AstAssocs"), std::string::npos);
  EXPECT_NE(GoalTexts[1].find("EmptyNode: AssocData<EmptyNode>"),
            std::string::npos);
  EXPECT_NE(GoalTexts[2].find("EmptyNode: AstAssocs"), std::string::npos);
}

TEST_F(FigureTest, Figure4BevyDiagnosticOmitsTheKeyTrait) {
  pipeline("bevy-resmut-missing");
  RenderedDiagnostic Diag = ES->diagnostic(0);

  // Figure 4b: the #[on_unimplemented] headline, and no mention of
  // SystemParam anywhere in the static text.
  EXPECT_NE(Diag.Text.find("does not describe a valid system "
                           "configuration"),
            std::string::npos);
  EXPECT_NE(Diag.Text.find("{run_timer}"), std::string::npos);
  EXPECT_EQ(Diag.Text.find("SystemParam"), std::string::npos);
}

TEST_F(FigureTest, Figure9BottomUpLeadsWithSystemParam) {
  const InferenceTree &Tree = pipeline("bevy-resmut-missing");
  ArgusInterface UI(prog(), Tree);
  std::vector<ViewRow> Rows = UI.rows();
  // Figure 9a: the bottom-up view's first entry is Timer: SystemParam —
  // the bound the compiler elided.
  ASSERT_GE(Rows.size(), 3u);
  EXPECT_NE(Rows[1].Text.find("Timer: SystemParam"), std::string::npos);
  // Figure 9b: the top-down view exposes the branch point (two impl
  // alternatives for IntoSystem).
  UI.setActiveView(ViewKind::TopDown);
  UI.toggleExpand(1);
  size_t Candidates = 0;
  for (const ViewRow &Row : UI.rows())
    Candidates += Row.RowKind == ViewRow::Kind::Candidate;
  EXPECT_EQ(Candidates, 2u);
}

TEST_F(FigureTest, Figure10InertiaPipeline) {
  const InferenceTree &Tree = pipeline("bevy-resmut-missing");
  const InertiaResult &Inertia = ES->inertia(0);
  // Figure 10: two minimum correction subsets; Timer: SystemParam is in
  // the lighter one and therefore sorts first.
  ASSERT_EQ(Inertia.MCS.size(), 2u);
  std::vector<size_t> Scores = Inertia.ConjunctScores;
  std::sort(Scores.begin(), Scores.end());
  EXPECT_LT(Scores[0], Scores[1]);
  TypePrinter Printer(prog());
  EXPECT_EQ(Printer.print(Tree.goal(Inertia.Order[0]).Pred),
            "Timer: SystemParam");
}

TEST_F(FigureTest, Section71SuggestionsFindResMut) {
  pipeline("bevy-resmut-missing");
  std::vector<FixSuggestion> Fixes = ES->suggestTop(0);
  ASSERT_FALSE(Fixes.empty());
  EXPECT_EQ(Fixes[0].SuggestionKind, FixSuggestion::Kind::WrapInType);
  EXPECT_NE(Fixes[0].Rendered.find("ResMut<Timer>"), std::string::npos);
}

TEST_F(FigureTest, Section4PredicateCountsMatchTheGap) {
  // Section 4: the model has 3 user-facing predicates; the solver
  // internally evaluates more kinds, which extraction hides unless the
  // toggle is set.
  const InferenceTree &Tree = pipeline("diesel-missing-join");
  for (size_t I = 0; I != Tree.numGoals(); ++I)
    EXPECT_TRUE(isUserFacing(
        Tree.goal(IGoalId(static_cast<uint32_t>(I))).Pred.Kind));

  ExtractOptions ShowAll;
  ShowAll.ShowInternal = true;
  ShowAll.ElideStatefulNodes = false;
  Extraction Full = ES->extractFresh(ShowAll);
  size_t Internal = 0;
  for (size_t I = 0; I != Full.Trees[0].numGoals(); ++I)
    Internal += !isUserFacing(
        Full.Trees[0].goal(IGoalId(static_cast<uint32_t>(I))).Pred.Kind);
  EXPECT_GT(Internal, 0u);
}
