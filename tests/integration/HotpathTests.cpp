//===- tests/integration/HotpathTests.cpp ---------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end guarantees for the perf fast paths:
///
///  * The bitset DNF kernel and the reference vector kernel compute the
///    same minimal conjunct sets on every corpus tree and on randomized
///    generated trees, including DNF-dense shapes (wide OR/AND fanout)
///    where conjunction cross products and absorption dominate.
///
///  * The solver's impl head-constructor index is invisible in output:
///    with the index on and off, proof forests, tree JSON, and interface
///    view JSON are byte-identical on the whole evaluation suite — the
///    index may only skip work, never change it.
///
///  * The DNF conjunct cap truncates and records the truncation.
///
//===----------------------------------------------------------------------===//

#include "analysis/DNF.h"
#include "corpus/Corpus.h"
#include "corpus/Generator.h"
#include "engine/Session.h"
#include "interface/ViewJSON.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

void expectKernelsAgree(const InferenceTree &Tree, const char *Label) {
  AnalysisOptions Forced;
  Forced.Kernel = DNFKernel::Bitset;
  DNFStats BitsetStats, ReferenceStats, AutoStats;
  DNFFormula Bitset = computeMCS(Tree, Forced, &BitsetStats);
  DNFFormula Reference = computeMCSReference(Tree, Forced, &ReferenceStats);
  EXPECT_EQ(Bitset.IsTrue, Reference.IsTrue) << Label;
  EXPECT_EQ(Bitset.Conjuncts, Reference.Conjuncts) << Label;
  EXPECT_EQ(BitsetStats.Atoms, ReferenceStats.Atoms) << Label;
  EXPECT_EQ(BitsetStats.Truncations, 0u) << Label;
  EXPECT_EQ(BitsetStats.DispatchBitset, 1u) << Label;
  EXPECT_EQ(BitsetStats.DispatchForced, 1u) << Label;

  // Auto dispatch must agree wherever the cost model routes the tree,
  // and must record exactly one un-forced dispatch.
  DNFFormula Auto = computeMCS(Tree, AnalysisOptions(), &AutoStats);
  EXPECT_EQ(Auto.IsTrue, Reference.IsTrue) << Label;
  EXPECT_EQ(Auto.Conjuncts, Reference.Conjuncts) << Label;
  EXPECT_EQ(AutoStats.DispatchForced, 0u) << Label;
  EXPECT_EQ(AutoStats.DispatchBitset + AutoStats.DispatchReference, 1u)
      << Label;
}

} // namespace

TEST(Hotpath, KernelsAgreeOnEvaluationSuite) {
  for (const CorpusEntry &Entry : evaluationSuite()) {
    engine::Session S(Entry.Id, Entry.Source);
    for (size_t T = 0; T != S.numTrees(); ++T)
      expectKernelsAgree(S.tree(T), Entry.Id.c_str());
  }
}

TEST(Hotpath, KernelsAgreeOnGeneratedTrees) {
  // Realistic shapes (narrow failing skeletons) across seeds and sizes.
  for (uint64_t Seed : {1u, 42u, 99u, 1201u}) {
    for (size_t Nodes : {64u, 700u, 2554u}) {
      for (double BranchProbability : {0.1, 0.5}) {
        GeneratorOptions Opts;
        Opts.Seed = Seed;
        Opts.TargetNodes = Nodes;
        Opts.BranchProbability = BranchProbability;
        GeneratedWorkload W = generateTree(Opts);
        expectKernelsAgree(W.Tree, "generated");
      }
    }
  }
}

TEST(Hotpath, KernelsAgreeOnDenseTrees) {
  // DNF-dense shapes: every failing goal branches and candidates carry
  // several failing subgoals, so multi-atom conjuncts, conjunction cross
  // products, and absorption all do real work. The or2/and3 shape also
  // pushes past 128 atoms' worth of leaves, exercising duplicate-atom
  // collapsing on the way.
  struct Shape {
    size_t OrWidth, AndWidth;
    uint32_t Depth;
  };
  for (Shape S : {Shape{2, 2, 3}, Shape{3, 2, 3}, Shape{2, 3, 3},
                  Shape{2, 2, 4}}) {
    for (uint64_t Seed : {7u, 31u}) {
      GeneratorOptions Opts;
      Opts.Seed = Seed;
      Opts.TargetNodes = 2048;
      Opts.BranchProbability = 1.0;
      Opts.BranchWidth = S.OrWidth;
      Opts.FailingSubgoalsPerCandidate = S.AndWidth;
      Opts.MaxFanout = 0;
      Opts.OverflowProbability = 0.0;
      Opts.MaxFailDepth = S.Depth;
      GeneratedWorkload W = generateTree(Opts);
      expectKernelsAgree(W.Tree, "dense");
    }
  }
}

TEST(Hotpath, KernelsAgreeAcrossDispatchBoundary) {
  // Property: on generated trees straddling the Auto-dispatch node
  // threshold (default 2048), the kernel the cost model picks is the
  // one its estimate implies, and all three kernel modes stay
  // output-identical on both sides of the boundary.
  AnalysisOptions Defaults;
  for (uint64_t Seed : {3u, 77u, 1201u}) {
    for (size_t Nodes : {1024u, 1900u, 2049u, 2554u, 4096u}) {
      GeneratorOptions Opts;
      Opts.Seed = Seed;
      Opts.TargetNodes = Nodes;
      Opts.BranchProbability = 0.25;
      GeneratedWorkload W = generateTree(Opts);
      expectKernelsAgree(W.Tree, "boundary");

      DNFCostEstimate Est = estimateDNFCost(W.Tree);
      bool WantBitset = Est.Nodes > Defaults.AutoNodeThreshold ||
                        Est.Conjuncts > Defaults.AutoConjunctThreshold;
      DNFStats Stats;
      (void)computeMCS(W.Tree, Defaults, &Stats);
      EXPECT_EQ(Stats.DispatchBitset, WantBitset ? 1u : 0u)
          << "seed " << Seed << " nodes " << Nodes;
      EXPECT_EQ(Stats.DispatchReference, WantBitset ? 0u : 1u)
          << "seed " << Seed << " nodes " << Nodes;
    }
  }
}

TEST(Hotpath, ExactIndexPrunesLargeSlicesAndStaysInvisible) {
  // A trait with many concrete impls under one head constructor: the
  // level-1 head bucket cannot tell Wrap<S0> from Wrap<S7>, so only the
  // level-2 exact index can skip the non-matching impls — and it must,
  // since the slice clears the cost-model minimum. The pruned run's
  // output must stay byte-identical to a run with the index off.
  std::string Source = "trait Tag;\ntrait Want;\nstruct Wrap<T>;\n";
  for (int I = 0; I != 8; ++I) {
    Source += "struct S" + std::to_string(I) + ";\n";
    Source += "impl Tag for Wrap<S" + std::to_string(I) + ">;\n";
  }
  Source += "goal Wrap<S0>: Tag;\ngoal Wrap<S0>: Want;\n";

  engine::SessionOptions On; // Defaults: exact index enabled.
  ASSERT_TRUE(On.Solver.EnableExactIndex);
  ASSERT_LE(On.Solver.ExactIndexMinSlice, 8u);
  engine::SessionOptions Off;
  Off.Solver.EnableExactIndex = false;

  engine::Session SOn("exact-prune", Source, On);
  engine::Session SOff("exact-prune", Source, Off);
  SOn.solve();
  SOff.solve();
  EXPECT_GT(SOn.stats().DispatchExactPrunes, 0u);
  EXPECT_EQ(SOff.stats().DispatchExactPrunes, 0u);
  ASSERT_EQ(SOn.numTrees(), SOff.numTrees());
  for (size_t T = 0; T != SOn.numTrees(); ++T)
    EXPECT_EQ(SOn.treeJSON(T), SOff.treeJSON(T));

  // Below the cost-model minimum the solver must not pay for keying:
  // raising the threshold past the slice size turns pruning off without
  // touching the output.
  engine::SessionOptions Gated = On;
  Gated.Solver.ExactIndexMinSlice = 9;
  engine::Session SGated("exact-prune", Source, Gated);
  SGated.solve();
  EXPECT_EQ(SGated.stats().DispatchExactPrunes, 0u);
  ASSERT_EQ(SGated.numTrees(), SOff.numTrees());
  for (size_t T = 0; T != SGated.numTrees(); ++T)
    EXPECT_EQ(SGated.treeJSON(T), SOff.treeJSON(T));
}

TEST(Hotpath, CandidateIndexIsInvisibleInOutput) {
  engine::SessionOptions WithIndex;
  ASSERT_TRUE(WithIndex.Solver.EnableCandidateIndex); // The default.
  engine::SessionOptions WithoutIndex;
  WithoutIndex.Solver.EnableCandidateIndex = false;

  uint64_t TotalBucketHits = 0;
  for (const CorpusEntry &Entry : evaluationSuite()) {
    engine::Session On(Entry.Id, Entry.Source, WithIndex);
    engine::Session Off(Entry.Id, Entry.Source, WithoutIndex);

    // Same search: every goal evaluation the indexed run performs, the
    // unindexed run performs too.
    On.solve();
    Off.solve();
    EXPECT_EQ(On.stats().GoalEvaluations, Off.stats().GoalEvaluations)
        << Entry.Id;
    EXPECT_EQ(Off.stats().CandidatesFiltered, 0u) << Entry.Id;
    // The engine installs the prebuilt index before solving, so trait
    // goals walk preassembled buckets: no live scan-and-filter work
    // remains on the indexed path.
    EXPECT_EQ(On.stats().CandidatesFiltered, 0u) << Entry.Id;
    TotalBucketHits += On.stats().IndexBucketHits;

    ASSERT_EQ(On.numTrees(), Off.numTrees()) << Entry.Id;
    for (size_t T = 0; T != On.numTrees(); ++T) {
      EXPECT_EQ(On.treeJSON(T), Off.treeJSON(T)) << Entry.Id << "#" << T;
      ArgusInterface UIOn = On.interface(T);
      ArgusInterface UIOff = Off.interface(T);
      EXPECT_EQ(viewToJSON(UIOn, On.program(), /*Pretty=*/true),
                viewToJSON(UIOff, Off.program(), /*Pretty=*/true))
          << Entry.Id << "#" << T;
    }
  }
  // The prebuilt index must actually serve enumerations somewhere on the
  // suite, otherwise the fast path is dead code.
  EXPECT_GT(TotalBucketHits, 0u);
}

TEST(Hotpath, ConjunctCapTruncatesAndRecords) {
  GeneratorOptions GenOpts;
  GenOpts.Seed = 7;
  GenOpts.TargetNodes = 512;
  GenOpts.BranchProbability = 1.0;
  GenOpts.BranchWidth = 2;
  GenOpts.FailingSubgoalsPerCandidate = 2;
  GenOpts.MaxFanout = 0;
  GenOpts.OverflowProbability = 0.0;
  GenOpts.MaxFailDepth = 3;
  GeneratedWorkload W = generateTree(GenOpts);

  // Uncapped, this tree normalizes to far more than four conjuncts.
  AnalysisOptions Uncapped;
  ASSERT_GT(computeMCS(W.Tree, Uncapped).Conjuncts.size(), 4u);

  for (DNFKernel Kernel :
       {DNFKernel::Auto, DNFKernel::Bitset, DNFKernel::Reference}) {
    AnalysisOptions Capped;
    Capped.Kernel = Kernel;
    Capped.MaxConjuncts = 4;
    DNFStats Stats;
    DNFFormula F = computeMCS(W.Tree, Capped, &Stats);
    EXPECT_LE(F.Conjuncts.size(), 4u) << static_cast<int>(Kernel);
    EXPECT_GT(Stats.Truncations, 0u) << static_cast<int>(Kernel);
    EXPECT_TRUE(Stats.truncated()) << static_cast<int>(Kernel);
  }
}

TEST(Hotpath, SessionSurfacesAnalysisCounters) {
  // The engine plumbs AnalysisOptions through and accumulates the DNF
  // work counters; a tiny cap must surface as recorded truncations.
  const CorpusEntry *Entry = nullptr;
  for (const CorpusEntry &Candidate : evaluationSuite())
    if (Candidate.Id == "bevy-assets-mesh")
      Entry = &Candidate;
  ASSERT_NE(Entry, nullptr);

  engine::SessionOptions Opts;
  Opts.Analysis.MaxConjuncts = 1;
  // Force the bitset kernel so DNFWordsTouched (a bitset-only counter)
  // is exercised regardless of where the cost model would route.
  Opts.Analysis.Kernel = DNFKernel::Bitset;
  engine::Session S(Entry->Id, Entry->Source, Opts);
  ASSERT_GT(S.numTrees(), 0u);
  for (size_t T = 0; T != S.numTrees(); ++T)
    S.inertia(T);
  EXPECT_GT(S.stats().DNFWordsTouched, 0u);
  EXPECT_GT(S.stats().DNFTruncations, 0u);
  EXPECT_GT(S.stats().ArenaHashLookups, 0u);
  EXPECT_EQ(S.stats().DispatchBitset, static_cast<uint64_t>(S.numTrees()));
  EXPECT_EQ(S.stats().DispatchReference, 0u);
  EXPECT_EQ(S.stats().DispatchForced,
            static_cast<uint64_t>(S.numTrees()));
}
