//===- tests/integration/HotpathTests.cpp ---------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end guarantees for the perf fast paths:
///
///  * The bitset DNF kernel and the reference vector kernel compute the
///    same minimal conjunct sets on every corpus tree and on randomized
///    generated trees, including DNF-dense shapes (wide OR/AND fanout)
///    where conjunction cross products and absorption dominate.
///
///  * The solver's impl head-constructor index is invisible in output:
///    with the index on and off, proof forests, tree JSON, and interface
///    view JSON are byte-identical on the whole evaluation suite — the
///    index may only skip work, never change it.
///
///  * The DNF conjunct cap truncates and records the truncation.
///
//===----------------------------------------------------------------------===//

#include "analysis/DNF.h"
#include "corpus/Corpus.h"
#include "corpus/Generator.h"
#include "engine/Session.h"
#include "interface/ViewJSON.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

void expectKernelsAgree(const InferenceTree &Tree, const char *Label) {
  AnalysisOptions Opts;
  DNFStats BitsetStats, ReferenceStats;
  DNFFormula Bitset = computeMCS(Tree, Opts, &BitsetStats);
  DNFFormula Reference = computeMCSReference(Tree, Opts, &ReferenceStats);
  EXPECT_EQ(Bitset.IsTrue, Reference.IsTrue) << Label;
  EXPECT_EQ(Bitset.Conjuncts, Reference.Conjuncts) << Label;
  EXPECT_EQ(BitsetStats.Atoms, ReferenceStats.Atoms) << Label;
  EXPECT_EQ(BitsetStats.Truncations, 0u) << Label;
}

} // namespace

TEST(Hotpath, KernelsAgreeOnEvaluationSuite) {
  for (const CorpusEntry &Entry : evaluationSuite()) {
    engine::Session S(Entry.Id, Entry.Source);
    for (size_t T = 0; T != S.numTrees(); ++T)
      expectKernelsAgree(S.tree(T), Entry.Id.c_str());
  }
}

TEST(Hotpath, KernelsAgreeOnGeneratedTrees) {
  // Realistic shapes (narrow failing skeletons) across seeds and sizes.
  for (uint64_t Seed : {1u, 42u, 99u, 1201u}) {
    for (size_t Nodes : {64u, 700u, 2554u}) {
      for (double BranchProbability : {0.1, 0.5}) {
        GeneratorOptions Opts;
        Opts.Seed = Seed;
        Opts.TargetNodes = Nodes;
        Opts.BranchProbability = BranchProbability;
        GeneratedWorkload W = generateTree(Opts);
        expectKernelsAgree(W.Tree, "generated");
      }
    }
  }
}

TEST(Hotpath, KernelsAgreeOnDenseTrees) {
  // DNF-dense shapes: every failing goal branches and candidates carry
  // several failing subgoals, so multi-atom conjuncts, conjunction cross
  // products, and absorption all do real work. The or2/and3 shape also
  // pushes past 128 atoms' worth of leaves, exercising duplicate-atom
  // collapsing on the way.
  struct Shape {
    size_t OrWidth, AndWidth;
    uint32_t Depth;
  };
  for (Shape S : {Shape{2, 2, 3}, Shape{3, 2, 3}, Shape{2, 3, 3},
                  Shape{2, 2, 4}}) {
    for (uint64_t Seed : {7u, 31u}) {
      GeneratorOptions Opts;
      Opts.Seed = Seed;
      Opts.TargetNodes = 2048;
      Opts.BranchProbability = 1.0;
      Opts.BranchWidth = S.OrWidth;
      Opts.FailingSubgoalsPerCandidate = S.AndWidth;
      Opts.MaxFanout = 0;
      Opts.OverflowProbability = 0.0;
      Opts.MaxFailDepth = S.Depth;
      GeneratedWorkload W = generateTree(Opts);
      expectKernelsAgree(W.Tree, "dense");
    }
  }
}

TEST(Hotpath, CandidateIndexIsInvisibleInOutput) {
  engine::SessionOptions WithIndex;
  ASSERT_TRUE(WithIndex.Solver.EnableCandidateIndex); // The default.
  engine::SessionOptions WithoutIndex;
  WithoutIndex.Solver.EnableCandidateIndex = false;

  uint64_t TotalFiltered = 0;
  for (const CorpusEntry &Entry : evaluationSuite()) {
    engine::Session On(Entry.Id, Entry.Source, WithIndex);
    engine::Session Off(Entry.Id, Entry.Source, WithoutIndex);

    // Same search: every goal evaluation the filtered run performs, the
    // unfiltered run performs too.
    On.solve();
    Off.solve();
    EXPECT_EQ(On.stats().GoalEvaluations, Off.stats().GoalEvaluations)
        << Entry.Id;
    EXPECT_EQ(Off.stats().CandidatesFiltered, 0u) << Entry.Id;
    TotalFiltered += On.stats().CandidatesFiltered;

    ASSERT_EQ(On.numTrees(), Off.numTrees()) << Entry.Id;
    for (size_t T = 0; T != On.numTrees(); ++T) {
      EXPECT_EQ(On.treeJSON(T), Off.treeJSON(T)) << Entry.Id << "#" << T;
      ArgusInterface UIOn = On.interface(T);
      ArgusInterface UIOff = Off.interface(T);
      EXPECT_EQ(viewToJSON(UIOn, On.program(), /*Pretty=*/true),
                viewToJSON(UIOff, Off.program(), /*Pretty=*/true))
          << Entry.Id << "#" << T;
    }
  }
  // The index must actually skip something somewhere on the suite,
  // otherwise the fast path is dead code.
  EXPECT_GT(TotalFiltered, 0u);
}

TEST(Hotpath, ConjunctCapTruncatesAndRecords) {
  GeneratorOptions GenOpts;
  GenOpts.Seed = 7;
  GenOpts.TargetNodes = 512;
  GenOpts.BranchProbability = 1.0;
  GenOpts.BranchWidth = 2;
  GenOpts.FailingSubgoalsPerCandidate = 2;
  GenOpts.MaxFanout = 0;
  GenOpts.OverflowProbability = 0.0;
  GenOpts.MaxFailDepth = 3;
  GeneratedWorkload W = generateTree(GenOpts);

  // Uncapped, this tree normalizes to far more than four conjuncts.
  AnalysisOptions Uncapped;
  ASSERT_GT(computeMCS(W.Tree, Uncapped).Conjuncts.size(), 4u);

  for (bool UseBitset : {true, false}) {
    AnalysisOptions Capped;
    Capped.UseBitsetKernel = UseBitset;
    Capped.MaxConjuncts = 4;
    DNFStats Stats;
    DNFFormula F = computeMCS(W.Tree, Capped, &Stats);
    EXPECT_LE(F.Conjuncts.size(), 4u) << UseBitset;
    EXPECT_GT(Stats.Truncations, 0u) << UseBitset;
    EXPECT_TRUE(Stats.truncated()) << UseBitset;
  }
}

TEST(Hotpath, SessionSurfacesAnalysisCounters) {
  // The engine plumbs AnalysisOptions through and accumulates the DNF
  // work counters; a tiny cap must surface as recorded truncations.
  const CorpusEntry *Entry = nullptr;
  for (const CorpusEntry &Candidate : evaluationSuite())
    if (Candidate.Id == "bevy-assets-mesh")
      Entry = &Candidate;
  ASSERT_NE(Entry, nullptr);

  engine::SessionOptions Opts;
  Opts.Analysis.MaxConjuncts = 1;
  engine::Session S(Entry->Id, Entry->Source, Opts);
  ASSERT_GT(S.numTrees(), 0u);
  for (size_t T = 0; T != S.numTrees(); ++T)
    S.inertia(T);
  EXPECT_GT(S.stats().DNFWordsTouched, 0u);
  EXPECT_GT(S.stats().DNFTruncations, 0u);
  EXPECT_GT(S.stats().ArenaHashLookups, 0u);
}
