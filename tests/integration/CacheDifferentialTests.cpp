//===- tests/integration/CacheDifferentialTests.cpp -----------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The goal cache's headline invariant, enforced end to end: cached and
/// uncached runs produce byte-identical diagnostics, views, and JSON at
/// any thread count — over the evaluation corpus and 200+ generated
/// programs, in every cache mode, including under fault injection, a
/// tight deadline, single-impl edits of every generated program, and
/// cross-program prelude reuse. Only rendering outputs are diffed: cache
/// counters
/// legitimately differ between modes, and shared-cache per-job hit/miss
/// splits are schedule-dependent at jobs > 1.
///
//===----------------------------------------------------------------------===//

#include "common/RandomProgram.h"
#include "corpus/Corpus.h"
#include "engine/Batch.h"
#include "solver/GoalCache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace argus;
using namespace argus::engine;

namespace {

constexpr uint64_t NumSeeds = 200;

std::vector<BatchJob> corpusJobs() {
  std::vector<BatchJob> Jobs;
  for (const CorpusEntry &Entry : evaluationSuite())
    Jobs.push_back({Entry.Id, Entry.Source});
  return Jobs;
}

std::vector<BatchJob> seededJobs() {
  std::vector<BatchJob> Jobs;
  for (uint64_t Seed = 0; Seed != NumSeeds; ++Seed)
    Jobs.push_back({"seed-" + std::to_string(Seed),
                    testgen::randomProgram(Seed)});
  return Jobs;
}

/// Every user-facing rendering of one Session, concatenated. This is
/// the byte-level artifact the differential gate diffs across modes.
std::string renderAll(engine::Session &S) {
  if (!S.parseOk())
    return S.parseErrorText();
  std::string Out;
  for (size_t T = 0; T != S.numTrees(); ++T) {
    Out += S.diagnosticText(T) + "\n";
    Out += S.bottomUpText(T) + "\n";
    Out += S.treeJSON(T) + "\n";
  }
  return Out.empty() ? "ok" : Out;
}

std::vector<BatchResult> runWith(const std::vector<BatchJob> &Jobs,
                                 CacheMode Mode, unsigned Threads,
                                 SessionOptions Opts = SessionOptions()) {
  Opts.Cache = Mode;
  return BatchDriver(Opts, Threads).run(Jobs, renderAll);
}

void expectSameOutputs(const std::vector<BatchResult> &Baseline,
                       const std::vector<BatchResult> &Other,
                       const char *What) {
  ASSERT_EQ(Baseline.size(), Other.size());
  for (size_t I = 0; I != Baseline.size(); ++I)
    EXPECT_EQ(Other[I].Output, Baseline[I].Output)
        << What << ": job " << Baseline[I].Name;
}

} // namespace

TEST(CacheDifferential, CorpusByteIdenticalAcrossModesAndThreads) {
  std::vector<BatchJob> Jobs = corpusJobs();
  std::vector<BatchResult> Baseline = runWith(Jobs, CacheMode::Off, 1);
  for (CacheMode Mode :
       {CacheMode::Off, CacheMode::Session, CacheMode::Shared})
    for (unsigned Threads : {1u, 8u}) {
      if (Mode == CacheMode::Off && Threads == 1)
        continue;
      expectSameOutputs(Baseline, runWith(Jobs, Mode, Threads), "corpus");
    }
}

TEST(CacheDifferential, GeneratedProgramsByteIdenticalAcrossModes) {
  // 200 generator seeds, the same matrix. Duplicate sources occur when
  // two seeds collapse to the same program — exactly the case where the
  // shared cache crosses job boundaries.
  std::vector<BatchJob> Jobs = seededJobs();
  std::vector<BatchResult> Baseline = runWith(Jobs, CacheMode::Off, 1);
  for (CacheMode Mode : {CacheMode::Session, CacheMode::Shared})
    for (unsigned Threads : {1u, 8u})
      expectSameOutputs(Baseline, runWith(Jobs, Mode, Threads),
                        "generated");
}

TEST(CacheDifferential, SharedCacheActuallyHits) {
  // Sanity check that the matrix above is not vacuous: replaying the
  // corpus twice through one shared cache must hit on the second pass
  // and do strictly less solver work.
  std::vector<BatchJob> Twice = corpusJobs();
  for (const BatchJob &Job : corpusJobs())
    Twice.push_back({Job.Name + "-again", Job.Source});

  std::vector<BatchResult> Off = runWith(Twice, CacheMode::Off, 1);
  std::vector<BatchResult> Shared = runWith(Twice, CacheMode::Shared, 1);
  expectSameOutputs(Off, Shared, "replay");

  uint64_t OffSteps = 0, SharedSteps = 0, Hits = 0;
  for (size_t I = 0; I != Twice.size(); ++I) {
    OffSteps += Off[I].Stats.SolverSteps;
    SharedSteps += Shared[I].Stats.SolverSteps;
    Hits += Shared[I].Stats.CacheHits;
  }
  EXPECT_GT(Hits, 0u);
  EXPECT_LT(SharedSteps, OffSteps);
}

TEST(CacheDifferential, CrossProgramPreludeReuse) {
  // Two distinct batch programs sharing a prelude and differing in one
  // same-length impl: the second job must reuse the first job's
  // prelude-dependent entries (nonzero hits), dep-miss exactly on the
  // goal that consulted the edited impl slice, and still render the
  // bytes a cold solve renders.
  const std::string Prelude = "struct A;\n"
                              "struct B;\n"
                              "struct Wrap<T>;\n"
                              "trait Show;\n"
                              "trait Side;\n"
                              "impl Show for A;\n"
                              "impl<T> Show for Wrap<T> where T: Show;\n";
  const std::string Goals = "goal Wrap<Wrap<A>>: Show;\n"
                            "goal A: Side;\n";
  std::vector<BatchJob> Jobs = {
      {"side-a", Prelude + "impl Side for A;\n" + Goals},
      {"side-b", Prelude + "impl Side for B;\n" + Goals},
  };

  std::vector<BatchResult> Cold = runWith(Jobs, CacheMode::Off, 1);
  std::vector<BatchResult> Shared = runWith(Jobs, CacheMode::Shared, 1);
  expectSameOutputs(Cold, Shared, "prelude-reuse");
  EXPECT_GT(Shared[1].Stats.CacheHits, 0u)
      << "the shared prelude's goals must cross the program boundary";
  EXPECT_GT(Shared[1].Stats.CacheDepMisses, 0u)
      << "the goal depending on the edited Side slice must re-solve";
}

TEST(CacheDifferential, EditedProgramsByteIdenticalThroughSharedCache) {
  // The edit axis: every generated program followed by its single-impl
  // edited twin, all through one shared cache. Edits that preserve goal
  // spans exercise the dependency check (key hit, dep mismatch); edits
  // that shift spans exercise clean key misses. Either way the rendered
  // bytes must match a cold solve of the same job list.
  std::vector<BatchJob> Jobs;
  for (uint64_t Seed = 0; Seed != NumSeeds; ++Seed) {
    std::string Source = testgen::randomProgram(Seed);
    Jobs.push_back({"seed-" + std::to_string(Seed), Source});
    Jobs.push_back({"seed-" + std::to_string(Seed) + "-edit",
                    testgen::editProgram(Source, Seed)});
  }

  std::vector<BatchResult> Baseline = runWith(Jobs, CacheMode::Off, 1);
  for (unsigned Threads : {1u, 8u})
    expectSameOutputs(Baseline, runWith(Jobs, CacheMode::Shared, Threads),
                      "edited");

  // Non-vacuity: across 200 edits the single-threaded pass must have
  // seen both reuse and dependency-detected invalidation.
  std::vector<BatchResult> Shared = runWith(Jobs, CacheMode::Shared, 1);
  uint64_t Hits = 0, DepMisses = 0;
  for (const BatchResult &R : Shared) {
    Hits += R.Stats.CacheHits;
    DepMisses += R.Stats.CacheDepMisses;
  }
  EXPECT_GT(Hits, 0u);
  EXPECT_GT(DepMisses, 0u);
}

TEST(CacheDifferential, ByteIdenticalUnderFaultInjection) {
  // "all" fires every applicable site in every job. cache.reject and
  // cache.depmiss are probed only when a cache mode is active, so the
  // injected fault load is identical across modes and outputs must
  // still match byte for byte (rejection changes no rendering, only
  // insert counters; a forced dep miss degrades a hit to a cold solve
  // of the same subtree).
  std::vector<BatchJob> Jobs = corpusJobs();
  SessionOptions Inject;
  Inject.Faults.Sites = "solve.overflow,dnf.truncate,cache.reject,cache.depmiss";
  std::vector<BatchResult> Baseline =
      runWith(Jobs, CacheMode::Off, 1, Inject);
  for (CacheMode Mode : {CacheMode::Session, CacheMode::Shared})
    for (unsigned Threads : {1u, 8u})
      expectSameOutputs(Baseline, runWith(Jobs, Mode, Threads, Inject),
                        "injected");
}

TEST(CacheDifferential, ByteIdenticalUnderTightDeadline) {
  // A 100ms deadline armed over programs that finish in microseconds:
  // the budget is live (every cache hit ticks it) but never fires, so
  // outputs stay deterministic and must match the ungoverned bytes.
  std::vector<BatchJob> Jobs = corpusJobs();
  std::vector<BatchResult> Baseline = runWith(Jobs, CacheMode::Off, 1);
  SessionOptions Deadline;
  Deadline.Limits.JobDeadlineSeconds = 0.1;
  for (CacheMode Mode : {CacheMode::Session, CacheMode::Shared})
    for (unsigned Threads : {1u, 8u}) {
      std::vector<BatchResult> Got = runWith(Jobs, Mode, Threads, Deadline);
      for (size_t I = 0; I != Got.size(); ++I)
        ASSERT_FALSE(Got[I].Stats.degraded())
            << Jobs[I].Name << " tripped the 100ms deadline; raise it?";
      expectSameOutputs(Baseline, Got, "deadline");
    }
}

TEST(CacheDifferential, DeadlineStoppedRunsInsertNothing) {
  // The poisoning guarantee: a solve stopped by its budget mid-subtree
  // must not leave entries behind, and a later governed-but-clean run
  // sharing the same cache must still reproduce the uncached bytes.
  const CorpusEntry *Stress = nullptr;
  for (const CorpusEntry &Entry : stressSuite())
    if (Entry.Id == "stress-solve-blowup")
      Stress = &Entry;
  ASSERT_NE(Stress, nullptr);

  GoalCache Shared;
  SessionOptions Opts;
  Opts.Cache = CacheMode::Shared;
  Opts.SharedCache = &Shared;
  Opts.Limits.JobDeadlineSeconds = 0.05;
  engine::Session Stopped(Stress->Id, Stress->Source, Opts);
  (void)Stopped.hasTraitErrors();
  EXPECT_TRUE(Stopped.stats().degraded());
  EXPECT_EQ(Stopped.stats().CacheInserts, 0u)
      << "a deadline-stopped solve must not publish entries";
  EXPECT_EQ(Shared.size(), 0u);

  // The cache stays usable afterwards: clean jobs through the same
  // instance match an uncached baseline.
  std::vector<BatchJob> Jobs = corpusJobs();
  std::vector<BatchResult> Baseline = runWith(Jobs, CacheMode::Off, 1);
  SessionOptions After;
  After.Cache = CacheMode::Shared;
  After.SharedCache = &Shared;
  std::vector<BatchResult> Got =
      BatchDriver(After, 1).run(Jobs, renderAll);
  expectSameOutputs(Baseline, Got, "post-deadline");
}

TEST(CacheDifferential, CancelledRunsInsertNothing) {
  const CorpusEntry &Entry = evaluationSuite().front();
  GoalCache Shared;
  SessionOptions Opts;
  Opts.Cache = CacheMode::Shared;
  Opts.SharedCache = &Shared;
  Opts.Faults.Sites = "solve.cancel";
  engine::Session S(Entry.Id, Entry.Source, Opts);
  (void)S.hasTraitErrors();
  EXPECT_GE(S.stats().Cancellations, 1u);
  EXPECT_EQ(S.stats().CacheInserts, 0u);
  EXPECT_EQ(Shared.size(), 0u) << "cancellation must not poison the cache";
}
