//===- tests/extract/TreeJSONTests.cpp ------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "extract/Extract.h"
#include "extract/TreeJSON.h"
#include "tlang/Parser.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

class TreeJSONTest : public ::testing::Test {
protected:
  Session S;
  Program Prog{S};

  InferenceTree failingTree(std::string Source) {
    ParseResult Result = parseSource(Prog, "test.tl", std::move(Source));
    EXPECT_TRUE(Result.Success) << Result.describe(S.sources());
    Solver Solve(Prog);
    SolveOutcome Out = Solve.solve();
    Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
    EXPECT_EQ(Ex.Trees.size(), 1u);
    return std::move(Ex.Trees[0]);
  }
};

} // namespace

TEST_F(TreeJSONTest, ContainsPredicatesAndStructure) {
  InferenceTree Tree = failingTree("struct Vec<T>;\n"
                                   "struct Timer;\n"
                                   "trait Display;\n"
                                   "impl<T> Display for Vec<T> where T: "
                                   "Display;\n"
                                   "goal Vec<Timer>: Display;");
  std::string JSON = treeToJSON(Prog, Tree);
  EXPECT_NE(JSON.find("\"root\":0"), std::string::npos);
  EXPECT_NE(JSON.find("Vec<Timer>: Display"), std::string::npos);
  EXPECT_NE(JSON.find("Timer: Display"), std::string::npos);
  EXPECT_NE(JSON.find("\"result\":\"no\""), std::string::npos);
  EXPECT_NE(JSON.find("impl<T> Display for Vec<T> where T: Display"),
            std::string::npos);
}

TEST_F(TreeJSONTest, GoalAndCandidateCountsMatch) {
  InferenceTree Tree = failingTree("struct Timer;\n"
                                   "trait Resource;\n"
                                   "goal Timer: Resource;");
  std::string JSON = treeToJSON(Prog, Tree);
  // One goal, no candidates.
  EXPECT_NE(JSON.find("\"goals\":[{"), std::string::npos);
  EXPECT_NE(JSON.find("\"candidates\":[]"), std::string::npos);
}

TEST_F(TreeJSONTest, PrettyOutputIsIndentated) {
  InferenceTree Tree = failingTree("struct Timer;\n"
                                   "trait Resource;\n"
                                   "goal Timer: Resource;");
  std::string Pretty = treeToJSON(Prog, Tree, /*Pretty=*/true);
  EXPECT_NE(Pretty.find("\n  "), std::string::npos);
}

TEST_F(TreeJSONTest, OriginLocationsIncluded) {
  InferenceTree Tree = failingTree("struct Timer;\n"
                                   "trait Resource;\n"
                                   "goal Timer: Resource;");
  std::string JSON = treeToJSON(Prog, Tree);
  EXPECT_NE(JSON.find("test.tl:3"), std::string::npos);
}
