//===- tests/extract/InferenceTreeTests.cpp -------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the idealized-tree data structure itself, on hand-built
/// trees (independent of the solver and extractor).
///
//===----------------------------------------------------------------------===//

#include "extract/InferenceTree.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

/// Builds a small AND/OR tree:
///
///   root (No)
///    +- cand0 (No)
///    |   +- a (Yes, leaf)
///    |   +- b (No)
///    |       +- cand1 (No)
///    |           +- c (No, leaf)
///    +- cand2 (No)
///        +- d (Overflow, leaf)
class TreeFixture : public ::testing::Test {
protected:
  void SetUp() override {
    Root = addGoal(ICandId::invalid(), EvalResult::No, 0);
    Tree.setRoot(Root);
    ICandId Cand0 = addCand(Root, EvalResult::No);
    A = addGoal(Cand0, EvalResult::Yes, 1);
    B = addGoal(Cand0, EvalResult::No, 1);
    ICandId Cand1 = addCand(B, EvalResult::No);
    C = addGoal(Cand1, EvalResult::No, 2);
    ICandId Cand2 = addCand(Root, EvalResult::No);
    D = addGoal(Cand2, EvalResult::Overflow, 1);
  }

  IGoalId addGoal(ICandId Parent, EvalResult Result, uint32_t Depth) {
    IGoalId Id = Tree.makeGoal();
    IdealGoal &Goal = Tree.goal(Id);
    Goal.Result = Result;
    Goal.Parent = Parent;
    Goal.Depth = Depth;
    if (Parent.isValid())
      Tree.candidate(Parent).SubGoals.push_back(Id);
    return Id;
  }

  ICandId addCand(IGoalId Parent, EvalResult Result) {
    ICandId Id = Tree.makeCandidate();
    IdealCandidate &Cand = Tree.candidate(Id);
    Cand.Result = Result;
    Cand.Parent = Parent;
    Tree.goal(Parent).Candidates.push_back(Id);
    return Id;
  }

  InferenceTree Tree;
  IGoalId Root, A, B, C, D;
};

} // namespace

TEST_F(TreeFixture, SizeCountsGoalsAndCandidates) {
  EXPECT_EQ(Tree.numGoals(), 5u);
  EXPECT_EQ(Tree.numCandidates(), 3u);
  EXPECT_EQ(Tree.size(), 8u);
}

TEST_F(TreeFixture, FailedLeavesAreTheInnermostFailures) {
  std::vector<IGoalId> Leaves = Tree.failedLeaves();
  ASSERT_EQ(Leaves.size(), 2u);
  EXPECT_EQ(Leaves[0], C);
  EXPECT_EQ(Leaves[1], D);
}

TEST_F(TreeFixture, HasFailedDescendant) {
  EXPECT_TRUE(Tree.hasFailedDescendant(Root));
  EXPECT_TRUE(Tree.hasFailedDescendant(B));
  EXPECT_FALSE(Tree.hasFailedDescendant(A));
  EXPECT_FALSE(Tree.hasFailedDescendant(C));
  EXPECT_FALSE(Tree.hasFailedDescendant(D));
}

TEST_F(TreeFixture, PathToRoot) {
  std::vector<IGoalId> Path = Tree.pathToRoot(C);
  ASSERT_EQ(Path.size(), 3u);
  EXPECT_EQ(Path[0], C);
  EXPECT_EQ(Path[1], B);
  EXPECT_EQ(Path[2], Root);
  EXPECT_EQ(Tree.pathToRoot(Root).size(), 1u);
}

TEST_F(TreeFixture, IdealFailedTreatsMaybeAsFailure) {
  EXPECT_TRUE(idealFailed(EvalResult::No));
  EXPECT_TRUE(idealFailed(EvalResult::Overflow));
  EXPECT_TRUE(idealFailed(EvalResult::Maybe));
  EXPECT_FALSE(idealFailed(EvalResult::Yes));
}

TEST(InferenceTreeEdge, EmptyTreeHasNoLeaves) {
  InferenceTree Tree;
  EXPECT_TRUE(Tree.failedLeaves().empty());
  EXPECT_EQ(Tree.size(), 0u);
}

TEST(InferenceTreeEdge, SingleFailedGoalIsItsOwnLeaf) {
  InferenceTree Tree;
  IGoalId Root = Tree.makeGoal();
  Tree.goal(Root).Result = EvalResult::No;
  Tree.setRoot(Root);
  std::vector<IGoalId> Leaves = Tree.failedLeaves();
  ASSERT_EQ(Leaves.size(), 1u);
  EXPECT_EQ(Leaves[0], Root);
}

TEST(InferenceTreeEdge, SuccessfulRootHasNoFailedLeaves) {
  InferenceTree Tree;
  IGoalId Root = Tree.makeGoal();
  Tree.goal(Root).Result = EvalResult::Yes;
  Tree.setRoot(Root);
  EXPECT_TRUE(Tree.failedLeaves().empty());
}
