//===- tests/extract/ExtractTests.cpp -------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "extract/Extract.h"
#include "tlang/Parser.h"
#include "tlang/Printer.h"

#include <gtest/gtest.h>

using namespace argus;

namespace {

class ExtractTest : public ::testing::Test {
protected:
  Session S;
  Program Prog{S};

  void load(std::string Source) {
    ParseResult Result = parseSource(Prog, "test.tl", std::move(Source));
    ASSERT_TRUE(Result.Success) << Result.describe(S.sources());
  }

  std::vector<std::string> leafStrings(const InferenceTree &Tree) {
    TypePrinter Printer(Prog);
    std::vector<std::string> Out;
    for (IGoalId Leaf : Tree.failedLeaves())
      Out.push_back(Printer.print(Tree.goal(Leaf).Pred));
    return Out;
  }

  /// Counts goals of a given predicate kind in the ideal tree.
  size_t countKind(const InferenceTree &Tree, PredicateKind Kind) {
    size_t Count = 0;
    for (size_t I = 0; I != Tree.numGoals(); ++I)
      Count += Tree.goal(IGoalId(static_cast<uint32_t>(I))).Pred.Kind == Kind;
    return Count;
  }
};

} // namespace

TEST_F(ExtractTest, SuccessfulGoalsProduceNoTreesByDefault) {
  load("struct Timer;\n"
       "trait Resource;\n"
       "impl Resource for Timer;\n"
       "goal Timer: Resource;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
  EXPECT_TRUE(Ex.Trees.empty());

  ExtractOptions KeepAll;
  KeepAll.FailingRootsOnly = false;
  Extraction All = extractTrees(Prog, Out, Solve.inferContext(), KeepAll);
  EXPECT_EQ(All.Trees.size(), 1u);
}

TEST_F(ExtractTest, InternalPredicatesHiddenByDefault) {
  load("struct Vec<T>;\n"
       "struct Timer;\n"
       "trait Display;\n"
       "impl<T> Display for Vec<T> where T: Display;\n"
       "goal Vec<Timer>: Display;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();

  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
  ASSERT_EQ(Ex.Trees.size(), 1u);
  EXPECT_EQ(countKind(Ex.Trees[0], PredicateKind::WellFormed), 0u);
  EXPECT_GT(Ex.Stats.InternalGoalsHidden, 0u);

  ExtractOptions ShowAll;
  ShowAll.ShowInternal = true;
  Extraction Full = extractTrees(Prog, Out, Solve.inferContext(), ShowAll);
  EXPECT_GT(countKind(Full.Trees[0], PredicateKind::WellFormed), 0u);
  // The toggle strictly grows the tree.
  EXPECT_GT(Full.Trees[0].size(), Ex.Trees[0].size());
}

TEST_F(ExtractTest, FailedLeavesSurviveFiltering) {
  load("struct Vec<T>;\n"
       "struct Timer;\n"
       "trait Display;\n"
       "impl<T> Display for Vec<T> where T: Display;\n"
       "goal Vec<Timer>: Display;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
  ASSERT_EQ(Ex.Trees.size(), 1u);
  auto Leaves = leafStrings(Ex.Trees[0]);
  ASSERT_EQ(Leaves.size(), 1u);
  EXPECT_EQ(Leaves[0], "Timer: Display");
}

TEST_F(ExtractTest, SnapshotDeduplicationKeepsFinalOnly) {
  load("struct A;\n"
       "struct B;\n"
       "struct Holder<T>;\n"
       "trait Display;\n"
       "impl Display for A;\n"
       "impl Display for B;\n"
       "trait Picker { type Choice; }\n"
       "impl Picker for Holder<B> { type Choice = B; }\n"
       "trait Wanted;\n"
       "goal ?T: Display;\n"
       "goal <Holder<B> as Picker>::Choice == ?T;\n"
       "goal B: Wanted;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  // Goal 0 took two snapshots (ambiguous then resolved).
  ASSERT_EQ(Out.Snapshots[0].size(), 2u);
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
  EXPECT_GE(Ex.Stats.SnapshotsDropped, 1u);
  // Only the genuinely failing goal (B: Wanted) yields a tree.
  ASSERT_EQ(Ex.Trees.size(), 1u);
  TypePrinter Printer(Prog);
  EXPECT_EQ(Printer.print(Ex.Trees[0].root().Pred), "B: Wanted");
}

TEST_F(ExtractTest, SnapshotImplicationHeuristic) {
  load("struct A;\n"
       "struct Vec<T>;\n"
       "trait Display;");
  Symbol Display = S.name("Display");
  TypeId VA = S.types().infer(0);
  InferContext Infcx(S.types(), 1);
  Predicate Earlier = Predicate::traitBound(
      S.types().adt(S.name("Vec"), {VA}), Display);
  Predicate Later = Predicate::traitBound(
      S.types().adt(S.name("Vec"), {S.types().adt(S.name("A"))}), Display);
  EXPECT_TRUE(snapshotSupersedes(Prog, Infcx, Later, Earlier));
  EXPECT_FALSE(snapshotSupersedes(
      Prog, Infcx,
      Predicate::traitBound(S.types().adt(S.name("A")), Display), Earlier));
}

TEST_F(ExtractTest, SpeculativeProbesHiddenWhenSiblingSucceeds) {
  load("struct Vec<T>;\n"
       "trait ToString;\n"
       "trait CustomToString;\n"
       "impl<T> CustomToString for Vec<T>;\n"
       "#[speculative] goal Vec<()>: ToString;\n"
       "#[speculative] goal Vec<()>: CustomToString;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
  // The failing ToString probe is hidden: the method call resolved via
  // CustomToString.
  EXPECT_TRUE(Ex.Trees.empty());
  EXPECT_EQ(Ex.Stats.SpeculativeRootsDropped, 1u);

  ExtractOptions NoFilter;
  NoFilter.FilterSpeculative = false;
  Extraction All = extractTrees(Prog, Out, Solve.inferContext(), NoFilter);
  EXPECT_EQ(All.Trees.size(), 1u);
}

TEST_F(ExtractTest, SpeculativeProbesKeptWhenAllFail) {
  load("struct Vec<T>;\n"
       "trait ToString;\n"
       "trait CustomToString;\n"
       "#[speculative] goal Vec<()>: ToString;\n"
       "#[speculative] goal Vec<()>: CustomToString;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
  EXPECT_EQ(Ex.Trees.size(), 2u);
}

TEST_F(ExtractTest, StatefulNodesElidedOnSuccessSplicedOnFailure) {
  // Success path: the projection goal's NormalizesTo machinery vanishes.
  load("struct Once;\n"
       "struct Never;\n"
       "struct users::table;\n"
       "struct posts::table;\n"
       "trait AppearsInFromClause<QS> { type Count; }\n"
       "impl AppearsInFromClause<users::table> for posts::table {\n"
       "  type Count = Never;\n"
       "}\n"
       "goal <posts::table as AppearsInFromClause<users::table>>::Count "
       "== Once;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
  ASSERT_EQ(Ex.Trees.size(), 1u);
  const InferenceTree &Tree = Ex.Trees[0];
  EXPECT_EQ(countKind(Tree, PredicateKind::NormalizesTo), 0u);
  EXPECT_GT(Ex.Stats.StatefulGoalsElided, 0u);
  // The root projection goal failed because Count == Never != Once; its
  // normalization *succeeded*, so the root is the failed leaf.
  auto Leaves = leafStrings(Tree);
  ASSERT_EQ(Leaves.size(), 1u);
  EXPECT_NE(Leaves[0].find("Count == Once"), std::string::npos);
}

TEST_F(ExtractTest, FailingNormalizationSplicesTraitGoal) {
  // posts::table has no AppearsInFromClause impl at all: normalization
  // fails, and the underlying trait goal must surface in the ideal tree.
  load("struct Once;\n"
       "struct users::table;\n"
       "struct posts::table;\n"
       "trait AppearsInFromClause<QS> { type Count; }\n"
       "goal <posts::table as AppearsInFromClause<users::table>>::Count "
       "== Once;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
  ASSERT_EQ(Ex.Trees.size(), 1u);
  auto Leaves = leafStrings(Ex.Trees[0]);
  ASSERT_EQ(Leaves.size(), 1u);
  EXPECT_EQ(Leaves[0], "table: AppearsInFromClause<table>");
  EXPECT_EQ(countKind(Ex.Trees[0], PredicateKind::NormalizesTo), 0u);
}

TEST_F(ExtractTest, ShowInternalKeepsStatefulNodes) {
  load("struct Once;\n"
       "struct users::table;\n"
       "trait AppearsInFromClause<QS> { type Count; }\n"
       "goal <users::table as AppearsInFromClause<users::table>>::Count "
       "== Once;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  ExtractOptions Opts;
  Opts.ShowInternal = true;
  Opts.ElideStatefulNodes = false;
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext(), Opts);
  ASSERT_EQ(Ex.Trees.size(), 1u);
  EXPECT_GT(countKind(Ex.Trees[0], PredicateKind::NormalizesTo), 0u);
}

TEST_F(ExtractTest, ResidualAmbiguityIsAFailedRoot) {
  load("struct A;\n"
       "struct B;\n"
       "trait Display;\n"
       "impl Display for A;\n"
       "impl Display for B;\n"
       "goal ?T: Display;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
  ASSERT_EQ(Ex.Trees.size(), 1u);
  EXPECT_EQ(Ex.Trees[0].root().Result, EvalResult::Maybe);
  EXPECT_TRUE(idealFailed(Ex.Trees[0].root().Result));
  EXPECT_GT(Ex.Trees[0].root().UnresolvedVars, 0u);
}

TEST_F(ExtractTest, PathToRootWalksParents) {
  load("struct Vec<T>;\n"
       "struct Timer;\n"
       "trait Display;\n"
       "impl<T> Display for Vec<T> where T: Display;\n"
       "goal Vec<Vec<Timer>>: Display;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
  ASSERT_EQ(Ex.Trees.size(), 1u);
  const InferenceTree &Tree = Ex.Trees[0];
  auto Leaves = Tree.failedLeaves();
  ASSERT_EQ(Leaves.size(), 1u);
  auto Path = Tree.pathToRoot(Leaves[0]);
  ASSERT_EQ(Path.size(), 3u); // Timer -> Vec<Timer> -> Vec<Vec<Timer>>.
  EXPECT_EQ(Path.back(), Tree.rootId());
  EXPECT_EQ(Tree.goal(Path[0]).Depth, 2u);
  EXPECT_EQ(Tree.goal(Path[2]).Depth, 0u);
}

TEST_F(ExtractTest, BevyTreeShowsBranchPoint) {
  load("#[external] struct ResMut<T>;\n"
       "struct Timer;\n"
       "#[external] trait Resource;\n"
       "#[external] trait SystemParam;\n"
       "#[external] impl<T> SystemParam for ResMut<T> where T: Resource;\n"
       "#[external] trait System;\n"
       "#[external, fn_trait] trait SystemParamFunction<Sig>;\n"
       "#[external] struct IsFunctionSystem;\n"
       "#[external] struct IsSystem;\n"
       "#[external] trait IntoSystem<Marker>;\n"
       "#[external] impl<P, Func> IntoSystem<(IsFunctionSystem, fn(P))> for "
       "Func\n"
       "  where Func: SystemParamFunction<fn(P)>, P: SystemParam;\n"
       "#[external] impl<Sys> IntoSystem<IsSystem> for Sys where Sys: "
       "System;\n"
       "impl Resource for Timer;\n"
       "fn run_timer(Timer);\n"
       "goal run_timer: IntoSystem<?M>;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
  ASSERT_EQ(Ex.Trees.size(), 1u);
  const InferenceTree &Tree = Ex.Trees[0];
  // The root has two impl candidates: the branch point of Figure 4c.
  EXPECT_EQ(Tree.root().Candidates.size(), 2u);
  auto Leaves = leafStrings(Tree);
  ASSERT_EQ(Leaves.size(), 2u);
  EXPECT_TRUE((Leaves[0] == "Timer: SystemParam") ||
              (Leaves[1] == "Timer: SystemParam"));
}

TEST_F(ExtractTest, OverflowLeafInAstRecursion) {
  load("trait AstAssocs: Sized { type Data: AssocData<Self>; }\n"
       "trait AssocData<A>;\n"
       "struct EmptyNode;\n"
       "impl<Data> AstAssocs for Data where Data: AssocData<Data> {\n"
       "  type Data = Data;\n"
       "}\n"
       "impl<A> AssocData<A> for EmptyNode where A: AstAssocs;\n"
       "goal EmptyNode: AstAssocs;");
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
  ASSERT_EQ(Ex.Trees.size(), 1u);
  auto Leaves = Ex.Trees[0].failedLeaves();
  ASSERT_EQ(Leaves.size(), 1u);
  EXPECT_EQ(Ex.Trees[0].goal(Leaves[0]).Result, EvalResult::Overflow);
  // The cycle: the overflow leaf repeats the root predicate.
  TypePrinter Printer(Prog);
  EXPECT_EQ(Printer.print(Ex.Trees[0].goal(Leaves[0]).Pred),
            Printer.print(Ex.Trees[0].root().Pred));
}
