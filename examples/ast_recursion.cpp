//===- examples/ast_recursion.cpp - Section 2.2 ---------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's Figure 3: the accidental infinite recursion
/// between AstAssocs and AssocData. The rustc diagnostic interleaves the
/// cycle with auxiliary text; the Argus top-down view shows the clean
/// logical loop of Figure 3c (CtxtLinks: auxiliary data lives behind
/// links, not inline).
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "engine/Session.h"

#include <cstdio>

using namespace argus;

int main() {
  const CorpusEntry *Entry = nullptr;
  for (const CorpusEntry &Candidate : evaluationSuite())
    if (Candidate.Id == "ast-assoc-recursion")
      Entry = &Candidate;
  if (!Entry)
    return 1;

  printf("=== %s ===\n%s\n\n", Entry->Id.c_str(),
         Entry->Description.c_str());

  engine::Session ES(Entry->Id, Entry->Source);
  const Program &Prog = ES.program();

  RenderedDiagnostic Diag = ES.diagnostic(0);
  printf("--- rustc-style diagnostic (cf. Figure 3b) ---\n%s\n",
         Diag.Text.c_str());
  printf("error code: %s (rustc's E0275 \"overflow evaluating the "
         "requirement\")\n\n",
         Diag.ErrorCode.c_str());

  // The top-down view makes the two-step cycle visually trackable
  // (Figure 8a): EmptyNode: AstAssocs -> EmptyNode:
  // AssocData<EmptyNode> -> EmptyNode: AstAssocs [loop].
  ArgusInterface UI = ES.interface(0);
  UI.setActiveView(ViewKind::TopDown);
  UI.expandAll();
  printf("--- Argus top-down view: the logical structure of the cycle "
         "(cf. Figure 3c) ---\n%s\n",
         UI.renderText().c_str());

  // Jump-to-definition targets for the root row: the auxiliary,
  // source-mapped data accessible on demand.
  std::vector<ViewRow> Rows = UI.rows();
  printf("--- definition links for the root predicate ---\n");
  for (const DefinitionLink &Link : UI.definitionLinks(1))
    printf("  %s -> %s\n", Link.Name.c_str(),
           Prog.session().sources().describe(Link.Target).c_str());

  printf("\nfix: constrain the blanket impl (e.g. implement AstAssocs "
         "for concrete node types instead of `impl<Data> AstAssocs for "
         "Data`)\n");
  return 0;
}
