//===- examples/argus_tui.cpp - Interactive trait debugger ----*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A terminal front end for the Argus interface model: load a .tl program
/// (or the built-in Bevy example), solve it, and explore the inference
/// tree interactively. Every gesture from Section 3.2 has a command:
///
///   view bu | view td     switch projections (TreeData)
///   x <row>               expand/collapse a row (CollapseSeq)
///   t <row>               toggle type-argument ellipsis (ShortTys)
///   h <row>               hover: full paths in the minibuffer (ShortTys)
///   i <row>               implementors popup (CtxtLinks)
///   d <row>               jump-to-definition targets (CtxtLinks)
///   f <row>               verified fix suggestions (Section 7.1)
///   html <file>           export the tree as a standalone HTML page
///   / <text>              search goals; reveals the first match
///   diag                  the rustc-style diagnostic, for contrast
///   mcs                   minimum correction subsets with scores
///   all / none            expand / collapse everything
///   tree <n>              switch to the n-th failing goal's tree
///   q                     quit
///
/// Usage: argus_tui [program.tl]
///
//===----------------------------------------------------------------------===//

#include "engine/Session.h"
#include "tlang/Printer.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

using namespace argus;

namespace {

const char *DefaultProgram = R"(
// The paper's Bevy example: run_timer takes Timer instead of
// ResMut<Timer>.
#[external] struct ResMut<T>;
struct Timer;
#[external] trait Resource;
#[external] trait SystemParam;
#[external] impl<T> SystemParam for ResMut<T> where T: Resource;
#[external] trait System;
#[external, fn_trait] trait SystemParamFunction<Sig>;
#[external] struct IsFunctionSystem;
#[external] struct IsSystem;
#[external] trait IntoSystem<Marker>;
#[external] impl<Sys> IntoSystem<IsSystem> for Sys where Sys: System;
#[external] impl<P, Func> IntoSystem<(IsFunctionSystem, fn(P))> for Func
  where Func: SystemParamFunction<fn(P)>, P: SystemParam;
impl Resource for Timer;
fn run_timer(Timer);
goal run_timer: IntoSystem<?M>;
)";

void printRows(const ArgusInterface &UI) {
  std::vector<ViewRow> Rows = UI.rows();
  for (size_t I = 0; I != Rows.size(); ++I) {
    std::string Fold = "  ";
    if (Rows[I].RowKind == ViewRow::Kind::Goal && Rows[I].Expandable)
      Fold = Rows[I].Expanded ? "v " : "> ";
    printf("%3zu %s%*s%s\n", I, Fold.c_str(),
           static_cast<int>(2 * Rows[I].Indent), "",
           Rows[I].Text.c_str());
  }
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Source = DefaultProgram;
  std::string Name = "bevy-example.tl";
  if (Argc > 1) {
    std::ifstream File(Argv[1]);
    if (!File) {
      fprintf(stderr, "cannot open %s\n", Argv[1]);
      return 1;
    }
    std::ostringstream Buffer;
    Buffer << File.rdbuf();
    Source = Buffer.str();
    Name = Argv[1];
  }

  engine::Session ES(Name, std::move(Source));
  if (!ES.parseOk()) {
    fprintf(stderr, "%s", ES.parseErrorText().c_str());
    return 1;
  }

  if (ES.numTrees() == 0) {
    printf("all goals hold; nothing to debug.\n");
    return 0;
  }
  printf("%zu failing goal(s); showing tree 0. Type '?' for help.\n\n",
         ES.numTrees());

  const Program &Prog = ES.program();
  size_t TreeIndex = 0;
  auto UI = std::make_unique<ArgusInterface>(ES.interface(TreeIndex));
  printRows(*UI);

  std::string Line;
  while (printf("argus> "), fflush(stdout), std::getline(std::cin, Line)) {
    std::istringstream In(Line);
    std::string Command;
    In >> Command;
    if (Command.empty())
      continue;
    if (Command == "q" || Command == "quit")
      break;

    if (Command == "?" || Command == "help") {
      printf("view bu|td, x <row>, t <row>, h <row>, i <row>, d <row>, "
             "f <row>, html <file>, diag, mcs, all, none, tree <n>, "
             "show, q\n");
      continue;
    }
    if (Command == "show") {
      printRows(*UI);
      continue;
    }
    if (Command == "view") {
      std::string Which;
      In >> Which;
      UI->setActiveView(Which == "td" ? ViewKind::TopDown
                                      : ViewKind::BottomUp);
      printRows(*UI);
      continue;
    }
    if (Command == "all") {
      UI->expandAll();
      printRows(*UI);
      continue;
    }
    if (Command == "none") {
      UI->collapseAll();
      printRows(*UI);
      continue;
    }
    if (Command == "diag") {
      printf("%s", ES.diagnosticText(TreeIndex).c_str());
      continue;
    }
    if (Command == "mcs") {
      const InferenceTree &Tree = ES.tree(TreeIndex);
      const InertiaResult &Inertia = ES.inertia(TreeIndex);
      TypePrinter Printer(Prog);
      for (size_t I = 0; I != Inertia.MCS.size(); ++I) {
        printf("score %zu: {", Inertia.ConjunctScores[I]);
        for (size_t J = 0; J != Inertia.MCS[I].size(); ++J)
          printf("%s%s", J ? ", " : " ",
                 Printer.print(Tree.goal(Inertia.MCS[I][J]).Pred).c_str());
        printf(" }\n");
      }
      continue;
    }
    if (Command == "/") {
      std::string Needle;
      std::getline(In, Needle);
      while (!Needle.empty() && Needle.front() == ' ')
        Needle.erase(Needle.begin());
      std::vector<IGoalId> Matches = UI->searchGoals(Needle);
      printf("%zu match(es)\n", Matches.size());
      if (!Matches.empty() && UI->revealGoal(Matches[0]))
        printRows(*UI);
      continue;
    }
    if (Command == "html") {
      std::string Path;
      In >> Path;
      if (Path.empty()) {
        printf("usage: html <file>\n");
        continue;
      }
      std::ofstream File(Path);
      if (!File) {
        printf("cannot write %s\n", Path.c_str());
        continue;
      }
      HTMLExportOptions HOpts;
      HOpts.Title = "Argus: " + Name;
      File << ES.html(TreeIndex, HOpts);
      printf("wrote %s\n", Path.c_str());
      continue;
    }
    if (Command == "tree") {
      size_t N = 0;
      In >> N;
      if (N < ES.numTrees()) {
        TreeIndex = N;
        UI = std::make_unique<ArgusInterface>(ES.interface(TreeIndex));
        printRows(*UI);
      } else {
        printf("no tree %zu (have %zu)\n", N, ES.numTrees());
      }
      continue;
    }

    // Row commands.
    size_t Row = 0;
    if (!(In >> Row)) {
      printf("unknown command '%s' (try '?')\n", Command.c_str());
      continue;
    }
    if (Command == "x") {
      if (UI->toggleExpand(Row))
        printRows(*UI);
      else
        printf("row %zu is not expandable\n", Row);
    } else if (Command == "t") {
      if (UI->toggleTypeEllipsis(Row))
        printRows(*UI);
      else
        printf("row %zu has no type to toggle\n", Row);
    } else if (Command == "h") {
      std::string Hover = UI->hoverMinibuffer(Row);
      printf("%s\n", Hover.empty() ? "(nothing to hover)" : Hover.c_str());
    } else if (Command == "i") {
      std::vector<std::string> Impls = UI->implsPopup(Row);
      if (Impls.empty())
        printf("(no implementors to list)\n");
      for (const std::string &Impl : Impls)
        printf("  %s\n", Impl.c_str());
    } else if (Command == "d") {
      for (const DefinitionLink &Link : UI->definitionLinks(Row))
        printf("  %s -> %s\n", Link.Name.c_str(),
               ES.session().sources().describe(Link.Target).c_str());
    } else if (Command == "f") {
      std::vector<ViewRow> Rows = UI->rows();
      if (Row < Rows.size() &&
          Rows[Row].RowKind == ViewRow::Kind::Goal) {
        const InferenceTree &Tree = ES.tree(TreeIndex);
        std::vector<FixSuggestion> Fixes =
            suggestFixes(Prog, Tree.goal(Rows[Row].Goal).Pred);
        if (Fixes.empty())
          printf("(no verified suggestions)\n");
        for (const FixSuggestion &Fix : Fixes)
          printf("  - %s\n", Fix.Rendered.c_str());
      } else {
        printf("row %zu is not a goal\n", Row);
      }
    } else {
      printf("unknown command '%s' (try '?')\n", Command.c_str());
    }
  }
  return 0;
}
