//===- examples/diesel_missing_join.cpp - Section 2.1 ---------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's Figure 2: a Diesel query that filters on
/// posts::id without joining the posts table. Shows (1) the rustc-style
/// diagnostic with its "redundant requirements hidden" elision — note the
/// identically-printed `table` types, (2) the inertia-ranked bottom-up
/// view, (3) CollapseSeq unfolding to the key AppearsOnTable step the
/// static text elides, and (4) the minimum correction subsets.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "engine/Session.h"
#include "tlang/Printer.h"

#include <cstdio>

using namespace argus;

int main() {
  const CorpusEntry *Entry = nullptr;
  for (const CorpusEntry &Candidate : evaluationSuite())
    if (Candidate.Id == "diesel-missing-join")
      Entry = &Candidate;
  if (!Entry)
    return 1;

  printf("=== %s ===\n%s\n\n", Entry->Id.c_str(),
         Entry->Description.c_str());

  engine::Session ES(Entry->Id, Entry->Source);
  const Program &Prog = ES.program();
  const InferenceTree &Tree = ES.tree(0);

  // (1) The static text. Both users::table and posts::table print as
  // `table` — the ShortTys problem of Section 2.1.
  RenderedDiagnostic Diag = ES.diagnostic(0);
  printf("--- rustc-style diagnostic (cf. Figure 2b) ---\n%s\n",
         Diag.Text.c_str());
  printf("(the diagnostic hid %zu intermediate requirements)\n\n",
         Diag.HiddenRequirements);

  // (2) Argus bottom-up view; Argus disambiguates the table types.
  ArgusInterface UI = ES.interface(0);
  printf("--- Argus bottom-up view ---\n%s\n", UI.renderText().c_str());

  // (3) Unfold towards the root until the Eq<...> step is visible: the
  // information the static text elided.
  for (int Step = 0; Step != 4; ++Step) {
    std::vector<ViewRow> Rows = UI.rows();
    size_t Deepest = 0;
    for (size_t I = 0; I != Rows.size(); ++I)
      if (Rows[I].RowKind == ViewRow::Kind::Goal && Rows[I].Expandable &&
          !Rows[I].Expanded)
        Deepest = I;
    if (!Deepest || !UI.toggleExpand(Deepest))
      break;
  }
  printf("--- after CollapseSeq unfolding (the Eq<...> step appears) "
         "---\n%s\n",
         UI.renderText().c_str());

  // (4) Minimum correction subsets with their inertia scores.
  const InertiaResult &Inertia = ES.inertia(0);
  TypePrinter Printer(Prog, [] {
    PrintOptions Opts;
    Opts.DisambiguateShortNames = true;
    return Opts;
  }());
  printf("--- minimum correction subsets ---\n");
  for (size_t I = 0; I != Inertia.MCS.size(); ++I) {
    printf("  score %zu: {", Inertia.ConjunctScores[I]);
    for (size_t J = 0; J != Inertia.MCS[I].size(); ++J)
      printf("%s%s", J ? ", " : " ",
             Printer.print(Tree.goal(Inertia.MCS[I][J]).Pred).c_str());
    printf(" }\n");
  }
  printf("\nfix: add the missing join — users::table"
         ".inner_join(posts::table)\n");
  return 0;
}
