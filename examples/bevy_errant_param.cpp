//===- examples/bevy_errant_param.cpp - Section 2.3 -----------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's Figures 1, 4, and 9: a Bevy system whose
/// parameter is `Timer` instead of `ResMut<Timer>`. The rustc diagnostic
/// stops at the IntoSystem branch point and never mentions SystemParam;
/// the Argus bottom-up view leads with `Timer: SystemParam`, and the
/// implementors popup (CtxtLinks) reveals the ResMut fix.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "engine/Session.h"

#include <cstdio>

using namespace argus;

int main() {
  const CorpusEntry *Entry = nullptr;
  for (const CorpusEntry &Candidate : evaluationSuite())
    if (Candidate.Id == "bevy-resmut-missing")
      Entry = &Candidate;
  if (!Entry)
    return 1;

  printf("=== %s ===\n%s\n\n", Entry->Id.c_str(),
         Entry->Description.c_str());

  engine::Session ES(Entry->Id, Entry->Source);

  // The static diagnostic (cf. Figure 4b): "something is wrong with
  // run_timer", no mention of SystemParam.
  RenderedDiagnostic Diag = ES.diagnostic(0);
  printf("--- rustc-style diagnostic (cf. Figure 4b) ---\n%s\n",
         Diag.Text.c_str());
  printf("does the text mention SystemParam? %s\n\n",
         Diag.Text.find("SystemParam") == std::string::npos ? "NO"
                                                            : "yes");

  // The bottom-up view (cf. Figures 1 and 9a): Timer: SystemParam is
  // ranked first by inertia.
  ArgusInterface UI = ES.interface(0);
  printf("--- Argus bottom-up view (cf. Figure 9a) ---\n%s\n",
         UI.renderText().c_str());

  // The top-down view (cf. Figure 9b): the branch point is explicit.
  UI.setActiveView(ViewKind::TopDown);
  UI.expandAll();
  printf("--- Argus top-down view (cf. Figure 9b) ---\n%s\n",
         UI.renderText().c_str());

  // CtxtLinks (cf. Figure 8b): query the implementors of SystemParam to
  // discover the ResMut<T> fix.
  UI.setActiveView(ViewKind::BottomUp);
  std::vector<ViewRow> Rows = UI.rows();
  for (size_t I = 0; I != Rows.size(); ++I) {
    if (Rows[I].Text.find("Timer: SystemParam") == std::string::npos)
      continue;
    printf("--- implementors of SystemParam (CtxtLinks popup) ---\n");
    for (const std::string &Impl : UI.implsPopup(I))
      printf("  %s\n", Impl.c_str());
    printf("--- hover minibuffer (full paths) ---\n%s\n",
           UI.hoverMinibuffer(I).c_str());
    break;
  }

  // Verified fix suggestions (Section 7.1): the engine solves each
  // wrapper hypothesis before proposing it.
  printf("\n--- verified fix suggestions for the top-ranked failure "
         "---\n");
  for (const FixSuggestion &Fix : ES.suggestTop(0))
    printf("  - %s\n", Fix.Rendered.c_str());

  printf("\nfix: change the parameter to ResMut<Timer> (and Timer "
         "already implements Resource)\n");
  return 0;
}
