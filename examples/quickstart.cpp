//===- examples/quickstart.cpp - The five-minute tour ---------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The smallest end-to-end use of the public API: define a trait program
/// in the DSL, solve it, and — when it fails — render both the rustc-
/// style static diagnostic and the Argus interactive views for the same
/// error, side by side.
///
//===----------------------------------------------------------------------===//

#include "diagnostics/Diagnostics.h"
#include "extract/Extract.h"
#include "extract/TreeJSON.h"
#include "interface/View.h"
#include "tlang/Parser.h"

#include <cstdio>

using namespace argus;

int main() {
  // 1. A trait program: Vec<T> is printable when T is, but Timer never
  // is. The goal models the obligation a method call would introduce.
  Session S;
  Program Prog(S);
  ParseResult Parsed = parseSource(Prog, "quickstart.tl", R"(
#[external] struct Vec<T>;
#[external] trait Display;
#[external] impl<T> Display for Vec<T> where T: Display;
struct Timer;
goal Vec<Vec<Timer>>: Display;
)");
  if (!Parsed.Success) {
    fprintf(stderr, "%s", Parsed.describe(S.sources()).c_str());
    return 1;
  }

  // 2. Solve. The solver returns the raw proof forest plus per-goal
  // results.
  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  printf("goals solved: %zu, errors: %s\n\n", Out.FinalResults.size(),
         Out.hasErrors() ? "yes" : "no");

  // 3. Extract the idealized inference tree (snapshot dedup, internal-
  // predicate filtering, stateful-node elision).
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
  if (Ex.Trees.empty()) {
    printf("nothing failed; nothing to debug.\n");
    return 0;
  }
  const InferenceTree &Tree = Ex.Trees[0];

  // 4a. What rustc would print.
  DiagnosticRenderer Renderer(Prog);
  printf("--- rustc-style static diagnostic "
         "--------------------------------\n%s\n",
         Renderer.render(Tree).Text.c_str());

  // 4b. What Argus shows: the bottom-up view, ranked by inertia, with
  // one unfolding step applied.
  ArgusInterface UI(Prog, Tree);
  UI.toggleExpand(1);
  printf("--- Argus bottom-up view (one entry unfolded) "
         "--------------------\n%s\n",
         UI.renderText().c_str());
  UI.setActiveView(ViewKind::TopDown);
  UI.expandAll();
  printf("--- Argus top-down view (fully unfolded) "
         "-------------------------\n%s\n",
         UI.renderText().c_str());

  // 5. The tree also exports as JSON for external front ends.
  printf("--- JSON export (truncated) "
         "--------------------------------------\n%.240s...\n",
         treeToJSON(Prog, Tree, /*Pretty=*/true).c_str());
  return 0;
}
