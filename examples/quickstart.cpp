//===- examples/quickstart.cpp - The five-minute tour ---------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The smallest end-to-end use of the public API: define a trait program
/// in the DSL, hand it to an engine::Session, and — when it fails —
/// render both the rustc-style static diagnostic and the Argus
/// interactive views for the same error, side by side. The Session runs
/// parse/solve/extract/rank lazily behind each accessor, so this file
/// never wires pipeline stages by hand.
///
//===----------------------------------------------------------------------===//

#include "engine/Session.h"

#include <cstdio>

using namespace argus;

int main() {
  // 1. A trait program: Vec<T> is printable when T is, but Timer never
  // is. The goal models the obligation a method call would introduce.
  engine::Session S("quickstart.tl", R"(
#[external] struct Vec<T>;
#[external] trait Display;
#[external] impl<T> Display for Vec<T> where T: Display;
struct Timer;
goal Vec<Vec<Timer>>: Display;
)");
  if (!S.parseOk()) {
    fprintf(stderr, "%s", S.parseErrorText().c_str());
    return 1;
  }

  // 2. Solve. Asking for the outcome runs the fixpoint obligation loop;
  // the raw proof forest stays available for inspection.
  printf("goals solved: %zu, errors: %s\n\n",
         S.solve().FinalResults.size(),
         S.hasTraitErrors() ? "yes" : "no");

  // 3. Extraction (snapshot dedup, internal-predicate filtering,
  // stateful-node elision) happens on first tree access.
  if (S.numTrees() == 0) {
    printf("nothing failed; nothing to debug.\n");
    return 0;
  }

  // 4a. What rustc would print.
  printf("--- rustc-style static diagnostic "
         "--------------------------------\n%s\n",
         S.diagnosticText(0).c_str());

  // 4b. What Argus shows: the bottom-up view, ranked by inertia, with
  // one unfolding step applied.
  ArgusInterface UI = S.interface(0);
  UI.toggleExpand(1);
  printf("--- Argus bottom-up view (one entry unfolded) "
         "--------------------\n%s\n",
         UI.renderText().c_str());
  UI.setActiveView(ViewKind::TopDown);
  UI.expandAll();
  printf("--- Argus top-down view (fully unfolded) "
         "-------------------------\n%s\n",
         UI.renderText().c_str());

  // 5. The tree also exports as JSON for external front ends, and the
  // Session kept per-stage wall-clock stats while we worked.
  printf("--- JSON export (truncated) "
         "--------------------------------------\n%.240s...\n\n",
         S.treeJSON(0, /*Pretty=*/true).c_str());
  printf("--- per-stage stats ----------------------------------------"
         "--\n%s\n",
         S.stats().toJSON(/*Pretty=*/true).c_str());
  return 0;
}
