//===- examples/inference_tutorial.cpp - Pedagogic mode -------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.2 notes that the Argus interface "can also be embedded in
/// other contexts, such as in an online textbook to pedagogically
/// illustrate the process of trait inference". This example is that
/// mode: it visualizes a *successful* inference (extraction with
/// FailingRootsOnly off), walking through how the solver proves a
/// Diesel-style query valid — candidate selection, where-clause
/// obligations, and projection normalization, step by step.
///
//===----------------------------------------------------------------------===//

#include "extract/Extract.h"
#include "interface/View.h"
#include "tlang/Parser.h"

#include <cstdio>

using namespace argus;

int main() {
  Session S;
  Program Prog(S);
  ParseResult Parsed = parseSource(Prog, "tutorial.tl", R"(
// A well-typed query: both columns belong to the queried table.
#[external] struct Once;
struct users::table;
struct users::columns::id;
#[external] trait diesel::AppearsInFromClause<QS> { type Count; }
#[external] trait diesel::AppearsOnTable<QS>;
impl AppearsInFromClause<users::table> for users::table {
  type Count = Once;
}
impl<QS> AppearsOnTable<QS> for users::columns::id
  where <QS as AppearsInFromClause<users::table>>::Count == Once;
goal users::columns::id: AppearsOnTable<users::table>;
)");
  if (!Parsed.Success) {
    fprintf(stderr, "%s", Parsed.describe(S.sources()).c_str());
    return 1;
  }

  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  printf("the goal %s.\n\n",
         Out.hasErrors() ? "FAILED (unexpected!)" : "holds");

  // Pedagogic extraction: keep the successful root, and keep the
  // internal machinery visible so learners see the whole process.
  ExtractOptions Opts;
  Opts.FailingRootsOnly = false;
  Opts.ShowInternal = true;
  Opts.ElideStatefulNodes = false;
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext(), Opts);
  const InferenceTree &Tree = Ex.Trees.at(0);

  ArgusInterface UI(Prog, Tree);
  UI.setActiveView(ViewKind::TopDown);
  UI.expandAll();
  printf("--- the full inference, step by step (internal obligations "
         "included) ---\n%s\n",
         UI.renderText().c_str());

  printf("reading guide:\n"
         "  [ok]   the predicate was proven\n"
         "  via    the impl block the solver selected\n"
         "  WF(..) a well-formedness obligation (normally hidden)\n"
         "  NormalizesTo(p, v) resolves an associated type and captures\n"
         "         the value v after its subtree runs (Section 4)\n\n");

  // The same tree with the debugger's defaults: far less noise.
  Extraction Clean = extractTrees(Prog, Out, Solve.inferContext(), [] {
    ExtractOptions O;
    O.FailingRootsOnly = false;
    return O;
  }());
  ArgusInterface CleanUI(Prog, Clean.Trees.at(0));
  CleanUI.setActiveView(ViewKind::TopDown);
  CleanUI.expandAll();
  printf("--- the same inference with the debugger's defaults ---\n%s\n",
         CleanUI.renderText().c_str());
  printf("nodes: %zu with internals shown, %zu with the defaults\n",
         Tree.size(), Clean.Trees.at(0).size());
  return 0;
}
