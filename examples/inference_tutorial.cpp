//===- examples/inference_tutorial.cpp - Pedagogic mode -------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.2 notes that the Argus interface "can also be embedded in
/// other contexts, such as in an online textbook to pedagogically
/// illustrate the process of trait inference". This example is that
/// mode: it visualizes a *successful* inference (extraction with
/// FailingRootsOnly off), walking through how the solver proves a
/// Diesel-style query valid — candidate selection, where-clause
/// obligations, and projection normalization, step by step.
///
//===----------------------------------------------------------------------===//

#include "engine/Session.h"

#include <cstdio>

using namespace argus;

int main() {
  // Pedagogic extraction: keep the successful root, and keep the
  // internal machinery visible so learners see the whole process.
  engine::SessionOptions Opts;
  Opts.Extract.FailingRootsOnly = false;
  Opts.Extract.ShowInternal = true;
  Opts.Extract.ElideStatefulNodes = false;

  engine::Session ES("tutorial.tl", R"(
// A well-typed query: both columns belong to the queried table.
#[external] struct Once;
struct users::table;
struct users::columns::id;
#[external] trait diesel::AppearsInFromClause<QS> { type Count; }
#[external] trait diesel::AppearsOnTable<QS>;
impl AppearsInFromClause<users::table> for users::table {
  type Count = Once;
}
impl<QS> AppearsOnTable<QS> for users::columns::id
  where <QS as AppearsInFromClause<users::table>>::Count == Once;
goal users::columns::id: AppearsOnTable<users::table>;
)",
                     Opts);
  if (!ES.parseOk()) {
    fprintf(stderr, "%s", ES.parseErrorText().c_str());
    return 1;
  }

  printf("the goal %s.\n\n",
         ES.hasTraitErrors() ? "FAILED (unexpected!)" : "holds");

  const Program &Prog = ES.program();
  const InferenceTree &Tree = ES.tree(0);

  ArgusInterface UI(Prog, Tree);
  UI.setActiveView(ViewKind::TopDown);
  UI.expandAll();
  printf("--- the full inference, step by step (internal obligations "
         "included) ---\n%s\n",
         UI.renderText().c_str());

  printf("reading guide:\n"
         "  [ok]   the predicate was proven\n"
         "  via    the impl block the solver selected\n"
         "  WF(..) a well-formedness obligation (normally hidden)\n"
         "  NormalizesTo(p, v) resolves an associated type and captures\n"
         "         the value v after its subtree runs (Section 4)\n\n");

  // The same tree with the debugger's defaults: far less noise.
  Extraction Clean = ES.extractFresh([] {
    ExtractOptions O;
    O.FailingRootsOnly = false;
    return O;
  }());
  ArgusInterface CleanUI(Prog, Clean.Trees.at(0));
  CleanUI.setActiveView(ViewKind::TopDown);
  CleanUI.expandAll();
  printf("--- the same inference with the debugger's defaults ---\n%s\n",
         CleanUI.renderText().c_str());
  printf("nodes: %zu with internals shown, %zu with the defaults\n",
         Tree.size(), Clean.Trees.at(0).size());
  return 0;
}
