//===- bench/bench_ablations.cpp - Design-choice ablations ----*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablations of the design choices DESIGN.md calls out:
///
///  1. Inertia's weight table (Appendix A.1) versus uniform weights and
///     reversed weights — measured as the Figure 12a distance metric on
///     the 17-program suite. This isolates how much of inertia's win
///     comes from the weights themselves rather than the MCS machinery.
///  2. The rustc diagnostic's chain elision: how many chain entries the
///     full (unelided) text would show, per program — the paper's
///     "100-line diagnostic" counterfactual from Section 2.1.
///
//===----------------------------------------------------------------------===//

#include "analysis/CompilerDistance.h"
#include "corpus/Corpus.h"
#include "engine/Session.h"
#include "support/Statistics.h"

#include <cstdio>

using namespace argus;

namespace {

size_t rankOfTruth(const Program &Prog, const InferenceTree &Tree,
                   const std::vector<IGoalId> &Order) {
  for (size_t I = 0; I != Order.size(); ++I)
    for (const Predicate &Truth : Prog.rootCauses())
      if (Tree.goal(Order[I]).Pred == Truth)
        return I;
  return Order.size();
}

} // namespace

int main() {
  printf("=== Ablation 1: inertia weight table vs alternatives "
         "(Figure 12a metric) ===\n\n");
  printf("%-30s %10s %9s %10s\n", "program", "appendixA1", "uniform",
         "reversed");

  // One Session per entry, kept alive across both ablations so each
  // program is parsed and solved exactly once.
  std::vector<engine::Session> Sessions;
  for (const CorpusEntry &Entry : evaluationSuite())
    Sessions.emplace_back(Entry.Id, Entry.Source);

  std::vector<double> AppendixRanks, UniformRanks, ReversedRanks;
  std::vector<size_t> ChainLengths;
  for (engine::Session &ES : Sessions) {
    const Program &Prog = ES.program();
    const InferenceTree &Tree = ES.tree(0);

    size_t Appendix = rankOfTruth(Prog, Tree, ES.inertia(0).Order);
    size_t Uniform = rankOfTruth(
        Prog, Tree, ES.inertiaWith(0, [](const GoalKind &) {
                      return size_t(1);
                    }).Order);
    // Reversed: heavy categories first (an adversarial weighting).
    size_t Reversed = rankOfTruth(
        Prog, Tree, ES.inertiaWith(0, [](const GoalKind &K) {
                      return size_t(50) - std::min<size_t>(50, K.weight());
                    }).Order);
    printf("%-30s %10zu %9zu %10zu\n", ES.name().c_str(), Appendix,
           Uniform, Reversed);
    AppendixRanks.push_back(static_cast<double>(Appendix));
    UniformRanks.push_back(static_cast<double>(Uniform));
    ReversedRanks.push_back(static_cast<double>(Reversed));

    // For ablation 2 below.
    ChainLengths.push_back(
        Tree.pathToRoot(ES.diagnostic(0).ReportedNode).size());
  }
  printf("\n%-30s %10.1f %9.1f %10.1f\n", "median",
         stats::median(AppendixRanks), stats::median(UniformRanks),
         stats::median(ReversedRanks));

  printf("\n=== Ablation 2: diagnostic chain elision ===\n\n");
  printf("%-30s %12s %12s %7s\n", "program", "chain-length",
         "shown(elided)", "hidden");
  size_t Index = 0;
  for (engine::Session &ES : Sessions) {
    RenderedDiagnostic Diag = ES.diagnostic(0);
    printf("%-30s %12zu %12zu %7zu\n", ES.name().c_str(),
           ChainLengths[Index], Diag.MentionedGoals.size(),
           Diag.HiddenRequirements);
    ++Index;
  }
  printf("\n(The hidden column is the \"N redundant requirements "
         "hidden\" of Figure 2b; Argus instead keeps every step "
         "reachable via CollapseSeq.)\n");
  return 0;
}
