//===- bench/bench_ablations.cpp - Design-choice ablations ----*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablations of the design choices DESIGN.md calls out:
///
///  1. Inertia's weight table (Appendix A.1) versus uniform weights and
///     reversed weights — measured as the Figure 12a distance metric on
///     the 17-program suite. This isolates how much of inertia's win
///     comes from the weights themselves rather than the MCS machinery.
///  2. The rustc diagnostic's chain elision: how many chain entries the
///     full (unelided) text would show, per program — the paper's
///     "100-line diagnostic" counterfactual from Section 2.1.
///
//===----------------------------------------------------------------------===//

#include "analysis/CompilerDistance.h"
#include "analysis/Inertia.h"
#include "corpus/Corpus.h"
#include "diagnostics/Diagnostics.h"
#include "extract/Extract.h"
#include "support/Statistics.h"

#include <cstdio>

using namespace argus;

namespace {

size_t rankOfTruth(const Program &Prog, const InferenceTree &Tree,
                   const std::vector<IGoalId> &Order) {
  for (size_t I = 0; I != Order.size(); ++I)
    for (const Predicate &Truth : Prog.rootCauses())
      if (Tree.goal(Order[I]).Pred == Truth)
        return I;
  return Order.size();
}

} // namespace

int main() {
  printf("=== Ablation 1: inertia weight table vs alternatives "
         "(Figure 12a metric) ===\n\n");
  printf("%-30s %10s %9s %10s\n", "program", "appendixA1", "uniform",
         "reversed");

  std::vector<double> AppendixRanks, UniformRanks, ReversedRanks;
  std::vector<size_t> ChainLengths;
  for (const CorpusEntry &Entry : evaluationSuite()) {
    LoadedProgram Loaded = loadEntry(Entry);
    const Program &Prog = *Loaded.Prog;
    Solver Solve(Prog);
    SolveOutcome Out = Solve.solve();
    Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
    const InferenceTree &Tree = Ex.Trees.at(0);

    size_t Appendix =
        rankOfTruth(Prog, Tree, rankByInertia(Prog, Tree).Order);
    size_t Uniform = rankOfTruth(
        Prog, Tree,
        rankByInertiaWith(Prog, Tree, [](const GoalKind &) {
          return size_t(1);
        }).Order);
    // Reversed: heavy categories first (an adversarial weighting).
    size_t Reversed = rankOfTruth(
        Prog, Tree, rankByInertiaWith(Prog, Tree, [](const GoalKind &K) {
                      return size_t(50) - std::min<size_t>(50, K.weight());
                    }).Order);
    printf("%-30s %10zu %9zu %10zu\n", Entry.Id.c_str(), Appendix,
           Uniform, Reversed);
    AppendixRanks.push_back(static_cast<double>(Appendix));
    UniformRanks.push_back(static_cast<double>(Uniform));
    ReversedRanks.push_back(static_cast<double>(Reversed));

    // For ablation 2 below.
    DiagnosticRenderer Renderer(Prog);
    RenderedDiagnostic Diag = Renderer.render(Tree);
    ChainLengths.push_back(Tree.pathToRoot(Diag.ReportedNode).size());
  }
  printf("\n%-30s %10.1f %9.1f %10.1f\n", "median",
         stats::median(AppendixRanks), stats::median(UniformRanks),
         stats::median(ReversedRanks));

  printf("\n=== Ablation 2: diagnostic chain elision ===\n\n");
  printf("%-30s %12s %12s %7s\n", "program", "chain-length",
         "shown(elided)", "hidden");
  size_t Index = 0;
  for (const CorpusEntry &Entry : evaluationSuite()) {
    LoadedProgram Loaded = loadEntry(Entry);
    Solver Solve(*Loaded.Prog);
    SolveOutcome Out = Solve.solve();
    Extraction Ex =
        extractTrees(*Loaded.Prog, Out, Solve.inferContext());
    DiagnosticRenderer Elided(*Loaded.Prog);
    RenderedDiagnostic Diag = Elided.render(Ex.Trees.at(0));
    printf("%-30s %12zu %12zu %7zu\n", Entry.Id.c_str(),
           ChainLengths[Index], Diag.MentionedGoals.size(),
           Diag.HiddenRequirements);
    ++Index;
  }
  printf("\n(The hidden column is the \"N redundant requirements "
         "hidden\" of Figure 2b; Argus instead keeps every step "
         "reachable via CollapseSeq.)\n");
  return 0;
}
