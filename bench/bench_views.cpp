//===- bench/bench_views.cpp - Interface responsiveness -------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interface-model operation latency on large inference trees. Not a
/// paper figure: the paper's usability argument presumes the interactive
/// views stay responsive on the biggest trees in its dataset (~37k
/// nodes), and this bench verifies that rows()/expand/hover are
/// interactive-speed there.
///
//===----------------------------------------------------------------------===//

#include "corpus/Generator.h"
#include "interface/View.h"

#include <benchmark/benchmark.h>

using namespace argus;

namespace {

GeneratedWorkload makeWorkload(size_t Nodes) {
  GeneratorOptions Opts;
  Opts.TargetNodes = Nodes;
  Opts.Seed = 77;
  Opts.BranchProbability = 0.2;
  return generateTree(Opts);
}

void BM_ViewRowsCollapsed(benchmark::State &State) {
  GeneratedWorkload Workload =
      makeWorkload(static_cast<size_t>(State.range(0)));
  ArgusInterface UI(*Workload.Prog, Workload.Tree);
  for (auto _ : State) {
    std::vector<ViewRow> Rows = UI.rows();
    benchmark::DoNotOptimize(Rows.data());
  }
  State.counters["tree_nodes"] = static_cast<double>(Workload.Tree.size());
}

void BM_ViewRowsFullyExpanded(benchmark::State &State) {
  GeneratedWorkload Workload =
      makeWorkload(static_cast<size_t>(State.range(0)));
  ArgusInterface UI(*Workload.Prog, Workload.Tree);
  UI.setActiveView(ViewKind::TopDown);
  UI.expandAll();
  for (auto _ : State) {
    std::vector<ViewRow> Rows = UI.rows();
    benchmark::DoNotOptimize(Rows.data());
  }
  State.counters["rows"] = static_cast<double>(UI.rows().size());
}

void BM_ViewToggleExpand(benchmark::State &State) {
  GeneratedWorkload Workload =
      makeWorkload(static_cast<size_t>(State.range(0)));
  ArgusInterface UI(*Workload.Prog, Workload.Tree);
  for (auto _ : State) {
    UI.toggleExpand(1);
    benchmark::DoNotOptimize(&UI);
  }
}

void BM_ViewHover(benchmark::State &State) {
  GeneratedWorkload Workload =
      makeWorkload(static_cast<size_t>(State.range(0)));
  ArgusInterface UI(*Workload.Prog, Workload.Tree);
  for (auto _ : State) {
    std::string Hover = UI.hoverMinibuffer(1);
    benchmark::DoNotOptimize(Hover.data());
  }
}

void BM_InertiaRanking(benchmark::State &State) {
  GeneratedWorkload Workload =
      makeWorkload(static_cast<size_t>(State.range(0)));
  for (auto _ : State) {
    InertiaResult Result =
        rankByInertia(*Workload.Prog, Workload.Tree);
    benchmark::DoNotOptimize(Result.Order.data());
  }
}

} // namespace

BENCHMARK(BM_ViewRowsCollapsed)->Arg(2554)->Arg(36794)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_ViewRowsFullyExpanded)->Arg(2554)->Arg(36794)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_ViewToggleExpand)->Arg(36794)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ViewHover)->Arg(36794)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InertiaRanking)->Arg(2554)->Arg(36794)->Unit(
    benchmark::kMicrosecond);

BENCHMARK_MAIN();
