//===- bench/bench_fig12b_dnf.cpp - Figure 12b ----------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 12b: DNF normalization time as a function of
/// inference-tree size. The paper's trees have a median of 2,554 nodes
/// (min 1, max 36,794) and normalize in a median 0.1ms (max 6.1ms) on an
/// M3 laptop; the claim under test is that the theoretically exponential
/// normalization stays in single-digit milliseconds at paper-scale
/// inputs. Sizes are swept with google-benchmark over synthetic trees
/// whose failing-skeleton statistics mirror real ones, plus the 17
/// corpus trees.
///
//===----------------------------------------------------------------------===//

#include "analysis/DNF.h"
#include "corpus/Corpus.h"
#include "corpus/Generator.h"
#include "engine/Session.h"

#include <benchmark/benchmark.h>

using namespace argus;

namespace {

/// Sweep the paper's size range: 1 node to ~37k nodes (their max is
/// 36,794; their median 2,554).
void BM_DNFNormalization(benchmark::State &State) {
  GeneratorOptions Opts;
  Opts.TargetNodes = static_cast<size_t>(State.range(0));
  Opts.Seed = 1201; // Fixed seed: the sweep is deterministic.
  GeneratedWorkload Workload = generateTree(Opts);

  for (auto _ : State) {
    DNFFormula Formula = computeMCS(Workload.Tree);
    benchmark::DoNotOptimize(Formula.Conjuncts.data());
  }
  State.counters["tree_nodes"] =
      static_cast<double>(Workload.Tree.size());
  State.counters["mcs_conjuncts"] =
      static_cast<double>(computeMCS(Workload.Tree).Conjuncts.size());
}

/// Branchier trees stress the cross-product step of conjoinDNF.
void BM_DNFNormalizationBranchy(benchmark::State &State) {
  GeneratorOptions Opts;
  Opts.TargetNodes = static_cast<size_t>(State.range(0));
  Opts.BranchProbability = 0.35;
  Opts.Seed = 99;
  GeneratedWorkload Workload = generateTree(Opts);
  for (auto _ : State) {
    DNFFormula Formula = computeMCS(Workload.Tree);
    benchmark::DoNotOptimize(Formula.Conjuncts.data());
  }
  State.counters["tree_nodes"] =
      static_cast<double>(Workload.Tree.size());
}

/// The 17 real corpus trees (small, like most real trait errors).
void BM_DNFCorpusTrees(benchmark::State &State) {
  const CorpusEntry &Entry =
      evaluationSuite()[static_cast<size_t>(State.range(0))];
  engine::Session ES(Entry.Id, Entry.Source);
  const InferenceTree &Tree = ES.tree(0);

  for (auto _ : State) {
    DNFFormula Formula = computeMCS(Tree);
    benchmark::DoNotOptimize(Formula.Conjuncts.data());
  }
  State.SetLabel(Entry.Id);
  State.counters["tree_nodes"] = static_cast<double>(Tree.size());
}

} // namespace

// The Figure 12b x-axis: 1 .. ~36,794 nodes, median 2,554.
BENCHMARK(BM_DNFNormalization)
    ->Arg(1)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(2554)
    ->Arg(8192)
    ->Arg(16384)
    ->Arg(36794)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_DNFNormalizationBranchy)
    ->Arg(2554)
    ->Arg(36794)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_DNFCorpusTrees)->DenseRange(0, 16)->Unit(
    benchmark::kMicrosecond);

BENCHMARK_MAIN();
