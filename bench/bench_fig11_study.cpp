//===- bench/bench_fig11_study.cpp - Figure 11 reproduction ---*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 11 of the paper: localization/fix rates and times
/// for debugging with and without Argus, with Wilson CIs, bootstrap
/// median CIs, and the chi-square / Kruskal-Wallis tests. The paper ran
/// N=25 humans; this binary runs the simulated-developer model documented
/// in src/study/Simulator.h (the substitution is recorded in DESIGN.md).
/// Absolute seconds are calibration artifacts; the claim under test is
/// the *shape* of the effects.
///
//===----------------------------------------------------------------------===//

#include "study/Simulator.h"

#include <cstdio>
#include <fstream>

using namespace argus;

int main() {
  printf("=== Figure 11: simulated user study (N=25, 4 tasks each, "
         "10-minute cap) ===\n\n");

  std::vector<StudyTask> Tasks = buildStudyTasks();
  printf("study tasks (mechanical profiles):\n");
  printf("  %-30s %5s %6s %8s %9s %6s\n", "task", "rank", "leaves",
         "in-diag", "distance", "weight");
  for (const StudyTask &Task : Tasks)
    printf("  %-30s %5zu %6zu %8s %9zu %6zu\n", Task.Id.c_str(),
           Task.TruthRank, Task.NumLeaves,
           Task.DiagnosticMentionsTruth ? "yes" : "no",
           Task.CompilerDistance, Task.FixWeight);
  printf("\n");

  StudyConfig Config;
  StudyResults Results = runStudy(Config, Tasks);
  printf("%s\n", formatStudyReport(Results).c_str());

  printf("paper vs measured (single default-seed run):\n");
  printf("  %-28s %10s %10s\n", "metric", "paper", "measured");
  auto Row = [](const char *Name, const char *Paper, double Measured,
                bool Percent) {
    if (Percent)
      printf("  %-28s %10s %9.0f%%\n", Name, Paper, 100.0 * Measured);
    else
      printf("  %-28s %10s %6dm%02ds\n", Name, Paper,
             static_cast<int>(Measured) / 60,
             static_cast<int>(Measured) % 60);
  };
  Row("localize rate (Argus)", "84%", Results.Argus.LocalizeRate, true);
  Row("localize rate (rustc)", "38%", Results.Rustc.LocalizeRate, true);
  Row("localize median (Argus)", "3m03s",
      Results.Argus.LocalizeMedianSeconds, false);
  Row("localize median (rustc)", "9m58s",
      Results.Rustc.LocalizeMedianSeconds, false);
  Row("fix rate (Argus)", "50%", Results.Argus.FixRate, true);
  Row("fix rate (rustc)", "32%", Results.Rustc.FixRate, true);
  Row("fix median (Argus)", "8m07s", Results.Argus.FixMedianSeconds,
      false);
  Row("fix median (rustc)", "10m00s", Results.Rustc.FixMedianSeconds,
      false);

  // RQ2(4): how often is the root-cause trait even visible without
  // Argus? The paper observed 29% identification on branching tasks.
  size_t BranchTasks = 0, Visible = 0;
  for (const StudyTask &Task : Tasks)
    if (!Task.DiagnosticMentionsTruth)
      ++BranchTasks;
  for (const TaskOutcome &Outcome : Results.Outcomes)
    if (!Outcome.WithArgus && !Tasks[Outcome.TaskIndex].DiagnosticMentionsTruth)
      Visible += Outcome.Localized;
  size_t BranchTrials = 0;
  for (const TaskOutcome &Outcome : Results.Outcomes)
    if (!Outcome.WithArgus &&
        !Tasks[Outcome.TaskIndex].DiagnosticMentionsTruth)
      ++BranchTrials;
  if (BranchTrials)
    printf("\nbranch-point tasks without Argus: root cause found in "
           "%zu/%zu trials (%.0f%%; the paper reports the key trait "
           "identified in 29%% of such cases)\n",
           Visible, BranchTrials,
           100.0 * static_cast<double>(Visible) /
               static_cast<double>(BranchTrials));

  // Raw per-cell data, like the paper's artifact.
  std::string CSV = outcomesToCSV(Results, Tasks);
  std::ofstream Raw("fig11_raw.csv");
  if (Raw) {
    Raw << CSV;
    printf("\nraw outcomes written to fig11_raw.csv (%zu rows)\n",
           Results.Outcomes.size());
  }
  return 0;
}
