//===- bench/bench_solver.cpp - Solver throughput + ablations -*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trait-solver throughput over the corpus, with two ablations the design
/// document calls out: result memoization (rustc's evaluation cache) and
/// the emission of internal WellFormed obligations (the noise the
/// extraction layer exists to hide). Not a paper figure; supports the
/// implementation discussion of Section 4. All pipeline wiring goes
/// through engine::Session; BM_BatchPipeline additionally measures the
/// engine::BatchDriver's parallel scaling over the whole suite.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "engine/Batch.h"
#include "engine/Session.h"

#include <benchmark/benchmark.h>

using namespace argus;

namespace {

void solveEntry(benchmark::State &State, SolverOptions Opts) {
  const CorpusEntry &Entry =
      evaluationSuite()[static_cast<size_t>(State.range(0))];
  engine::SessionOptions SessOpts;
  SessOpts.Solver = Opts;
  uint64_t Evaluations = 0;
  for (auto _ : State) {
    // Parsing is inside the loop on purpose: interner/arena state is
    // per-session, and reusing a solved program would skew candidates.
    // Only the solve stage is timed.
    State.PauseTiming();
    engine::Session S(Entry.Id, Entry.Source, SessOpts);
    S.parse();
    State.ResumeTiming();
    const SolveOutcome &Out = S.solve();
    benchmark::DoNotOptimize(Out.FinalResults.data());
    Evaluations = Out.NumEvaluations;
  }
  State.SetLabel(Entry.Id);
  State.counters["evaluations"] = static_cast<double>(Evaluations);
}

void BM_Solve(benchmark::State &State) {
  solveEntry(State, SolverOptions());
}

void BM_SolveMemoized(benchmark::State &State) {
  SolverOptions Opts;
  Opts.EnableMemoization = true;
  solveEntry(State, Opts);
}

void BM_SolveNoWellFormed(benchmark::State &State) {
  SolverOptions Opts;
  Opts.EmitWellFormedGoals = false;
  solveEntry(State, Opts);
}

/// Extraction cost on top of solving.
void BM_Extract(benchmark::State &State) {
  const CorpusEntry &Entry =
      evaluationSuite()[static_cast<size_t>(State.range(0))];
  engine::Session S(Entry.Id, Entry.Source);
  S.solve();
  for (auto _ : State) {
    Extraction Ex = S.extractFresh();
    benchmark::DoNotOptimize(Ex.Trees.data());
  }
  State.SetLabel(Entry.Id);
}

/// One full pipeline pass (parse -> ... -> inertia) through the engine
/// layer; the direct-wiring baseline this replaced did the same stages by
/// hand, so a regression here is engine overhead.
void BM_SessionPipeline(benchmark::State &State) {
  const CorpusEntry &Entry =
      evaluationSuite()[static_cast<size_t>(State.range(0))];
  for (auto _ : State) {
    engine::Session S(Entry.Id, Entry.Source);
    if (S.numTrees() != 0)
      benchmark::DoNotOptimize(S.inertia(0).Order.data());
    benchmark::DoNotOptimize(S.solve().FinalResults.data());
  }
  State.SetLabel(Entry.Id);
}

/// The whole 17-program suite through BatchDriver at 1..8 worker
/// threads. items_per_second counts programs, so the scaling curve reads
/// directly off the report.
void BM_BatchPipeline(benchmark::State &State) {
  std::vector<engine::BatchJob> Jobs;
  for (const CorpusEntry &Entry : evaluationSuite())
    Jobs.push_back({Entry.Id, Entry.Source});
  engine::BatchDriver Driver(engine::SessionOptions(),
                             static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    std::vector<engine::BatchResult> Results =
        Driver.run(Jobs, [](engine::Session &S) {
          if (S.numTrees() != 0)
            benchmark::DoNotOptimize(S.inertia(0).Order.data());
          return std::string();
        });
    benchmark::DoNotOptimize(Results.data());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Jobs.size()));
}

} // namespace

BENCHMARK(BM_Solve)->DenseRange(0, 16)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SolveMemoized)->DenseRange(0, 16)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_SolveNoWellFormed)->DenseRange(0, 16)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_Extract)->DenseRange(0, 16)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SessionPipeline)->DenseRange(0, 16)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_BatchPipeline)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond)->UseRealTime();

BENCHMARK_MAIN();
