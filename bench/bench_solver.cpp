//===- bench/bench_solver.cpp - Solver throughput + ablations -*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trait-solver throughput over the corpus, with two ablations the design
/// document calls out: result memoization (rustc's evaluation cache) and
/// the emission of internal WellFormed obligations (the noise the
/// extraction layer exists to hide). Not a paper figure; supports the
/// implementation discussion of Section 4.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "extract/Extract.h"

#include <benchmark/benchmark.h>

using namespace argus;

namespace {

void solveEntry(benchmark::State &State, SolverOptions Opts) {
  const CorpusEntry &Entry =
      evaluationSuite()[static_cast<size_t>(State.range(0))];
  uint64_t Evaluations = 0;
  for (auto _ : State) {
    // Parsing is inside the loop on purpose: interner/arena state is
    // per-session, and reusing a solved program would skew candidates.
    State.PauseTiming();
    LoadedProgram Loaded = loadEntry(Entry);
    State.ResumeTiming();
    Solver Solve(*Loaded.Prog, Opts);
    SolveOutcome Out = Solve.solve();
    benchmark::DoNotOptimize(Out.FinalResults.data());
    Evaluations = Out.NumEvaluations;
  }
  State.SetLabel(Entry.Id);
  State.counters["evaluations"] = static_cast<double>(Evaluations);
}

void BM_Solve(benchmark::State &State) {
  solveEntry(State, SolverOptions());
}

void BM_SolveMemoized(benchmark::State &State) {
  SolverOptions Opts;
  Opts.EnableMemoization = true;
  solveEntry(State, Opts);
}

void BM_SolveNoWellFormed(benchmark::State &State) {
  SolverOptions Opts;
  Opts.EmitWellFormedGoals = false;
  solveEntry(State, Opts);
}

/// Extraction cost on top of solving.
void BM_Extract(benchmark::State &State) {
  const CorpusEntry &Entry =
      evaluationSuite()[static_cast<size_t>(State.range(0))];
  LoadedProgram Loaded = loadEntry(Entry);
  Solver Solve(*Loaded.Prog);
  SolveOutcome Out = Solve.solve();
  for (auto _ : State) {
    Extraction Ex = extractTrees(*Loaded.Prog, Out, Solve.inferContext());
    benchmark::DoNotOptimize(Ex.Trees.data());
  }
  State.SetLabel(Entry.Id);
}

} // namespace

BENCHMARK(BM_Solve)->DenseRange(0, 16)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SolveMemoized)->DenseRange(0, 16)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_SolveNoWellFormed)->DenseRange(0, 16)->Unit(
    benchmark::kMicrosecond);
BENCHMARK(BM_Extract)->DenseRange(0, 16)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
