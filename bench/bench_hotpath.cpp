//===- bench/bench_hotpath.cpp - Machine-readable perf baseline -*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits BENCH_hotpath.json: the recorded perf trajectory of the
/// pipeline's hot paths, so future changes can be compared against a
/// baseline instead of a feeling. Two sections:
///
///  1. "corpus": the full engine::Session pipeline per evaluation-suite
///     program — wall-clock per stage plus the work counters
///     (goal evaluations, candidates filtered by the impl head index,
///     the dispatch_* cost-model family, DNF conjuncts/words, arena hash
///     lookups) — and, per program, a features-on vs features-off
///     speedup over the solve + extract + normalize hot path (exact
///     candidate index + Auto kernel dispatch + pooled scratch versus
///     all three pinned off). Every workload's speedup is expected to
///     stay >= 1.0x; `--check-floors` turns that expectation into the
///     exit status.
///
///  2. "dnf_kernel": the bitset DNF kernel (computeMCS, kernel forced)
///     measured against the reference vector kernel
///     (computeMCSReference) and against cost-model Auto dispatch on the
///     corpus trees and on generated trees at paper-scale sizes (median
///     2,554 nodes, max 36,794). All three must produce identical
///     conjunct sets; the bitset-vs-reference aggregate speedup is the
///     headline number and is expected to stay >= 5x.
///
///  3. "governance": the stress corpus (solver blowup, DNF blowup) under
///     a 100ms job deadline — the ISSUE acceptance scenario. Records the
///     structured failure each program degrades with, the governance
///     counters, and the observed wall clock, witnessing that a
///     pathological program costs ~deadline, not seconds.
///
///  4. "cache": repeated full solves sharing one solver::GoalCache
///     versus the same solves with the cache off, per terminating
///     workload (the evaluation corpus, deep impl chains, the DNF-dense
///     stress program). Every cached run's extracted trees must be
///     byte-identical to the uncached ones; the aggregate speedup is
///     expected to stay >= 1.5x and both are folded into the exit
///     status.
///
///  5. "solver_core": uncached candidate assembly — the coherence-time
///     prebuilt head-constructor index (with subsumption pruning) versus
///     the per-goal scan-and-filter path, on the deep impl chain (padded
///     with decoy impls the chain never matches, the shape where per-goal
///     filtering hurts most) and the diesel corpus programs. Every row
///     must render byte-identical trees and the indexed side must report
///     candidates_filtered == 0 (assembly never filters live against a
///     prebuilt bucket); the deep-chain speedup is expected to stay
///     >= 1.3x and is folded into --check-floors.
///
///  6. "incremental": an engine::EditSession replaying successive
///     revisions of a deep where-clause-chain program, each revision a
///     same-length edit of one side impl the chain never consults,
///     versus solving every revision cold. Dependency fingerprints let
///     revision 2+ splice the whole chain from the previous revision's
///     entries; the aggregate revision-2+ speedup is expected to stay
///     >= 5x with byte-identical renderings, both folded into the exit
///     status.
///
/// Usage: bench_hotpath [--check-floors] [output.json]
///        (default output: BENCH_hotpath.json; --check-floors also fails
///        the run if any corpus workload's features-on speedup < 1.0x)
///
/// See DESIGN.md for the JSON schema and EXPERIMENTS.md for how to record
/// and compare baselines.
///
//===----------------------------------------------------------------------===//

#include "analysis/DNF.h"
#include "corpus/Corpus.h"
#include "corpus/Generator.h"
#include "engine/EditSession.h"
#include "engine/Session.h"
#include "extract/Extract.h"
#include "extract/TreeJSON.h"
#include "solver/CachePersist.h"
#include "solver/GoalCache.h"
#include "solver/Index.h"
#include "solver/Solver.h"
#include "support/JSON.h"
#include "tlang/Parser.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace argus;

namespace {

double now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One DNF-kernel workload: a tree (owned elsewhere) under a name.
struct KernelWorkload {
  std::string Name;
  const InferenceTree *Tree = nullptr;
};

struct KernelMeasurement {
  std::string Name;
  size_t TreeNodes = 0;
  size_t Conjuncts = 0;
  size_t Atoms = 0;
  uint64_t Reps = 0;
  double BitsetSeconds = 0.0;
  double ReferenceSeconds = 0.0;
  double AutoSeconds = 0.0;
  bool AutoPickedBitset = false; ///< Which kernel the cost model chose.
  bool Identical = false;

  double speedup() const {
    return BitsetSeconds > 0.0 ? ReferenceSeconds / BitsetSeconds : 0.0;
  }
  /// Auto dispatch vs the always-bitset policy this bench used to
  /// measure: how much the cost model saves (or costs) per tree.
  double autoSpeedup() const {
    return AutoSeconds > 0.0 ? BitsetSeconds / AutoSeconds : 0.0;
  }
};

/// Times \p Fn over \p Reps runs, returning total seconds.
template <typename Fn> double timeReps(uint64_t Reps, Fn &&Run) {
  double Start = now();
  for (uint64_t I = 0; I != Reps; ++I)
    Run();
  return now() - Start;
}

KernelMeasurement measureKernels(const KernelWorkload &Workload) {
  KernelMeasurement M;
  M.Name = Workload.Name;
  M.TreeNodes = Workload.Tree->size();

  // The default kernel is now cost-model dispatch (Auto); this section
  // times the two underlying kernels head to head, so force the bitset
  // side explicitly and measure Auto as its own column.
  AnalysisOptions Opts; // Standard cap.
  Opts.Kernel = DNFKernel::Bitset;
  const AnalysisOptions AutoOpts; // Defaults: Auto dispatch.
  DNFStats Stats, AutoStats;
  DNFFormula Bitset = computeMCS(*Workload.Tree, Opts, &Stats);
  DNFFormula Reference = computeMCSReference(*Workload.Tree, Opts);
  DNFFormula Auto = computeMCS(*Workload.Tree, AutoOpts, &AutoStats);
  M.Conjuncts = Bitset.Conjuncts.size();
  M.Atoms = static_cast<size_t>(Stats.Atoms);
  M.AutoPickedBitset = AutoStats.DispatchBitset != 0;
  M.Identical = Bitset.IsTrue == Reference.IsTrue &&
                Bitset.Conjuncts == Reference.Conjuncts &&
                Auto.IsTrue == Reference.IsTrue &&
                Auto.Conjuncts == Reference.Conjuncts;

  // Calibrate the repetition count off the slower (reference) kernel so
  // each workload runs long enough to time stably, without making the
  // large trees take minutes.
  double Probe = timeReps(1, [&] {
    DNFFormula F = computeMCSReference(*Workload.Tree, Opts);
    (void)F;
  });
  const double TargetSeconds = 0.25;
  uint64_t Reps = Probe > 0.0
                      ? static_cast<uint64_t>(TargetSeconds / Probe)
                      : 10000;
  if (Reps < 2)
    Reps = 2;
  if (Reps > 20000)
    Reps = 20000;
  M.Reps = Reps;

  M.ReferenceSeconds = timeReps(Reps, [&] {
    DNFFormula F = computeMCSReference(*Workload.Tree, Opts);
    (void)F;
  });
  M.BitsetSeconds = timeReps(Reps, [&] {
    DNFFormula F = computeMCS(*Workload.Tree, Opts);
    (void)F;
  });
  M.AutoSeconds = timeReps(Reps, [&] {
    DNFFormula F = computeMCS(*Workload.Tree, AutoOpts);
    (void)F;
  });
  return M;
}

/// One cache-replay workload: a source solved repeatedly, once with the
/// cache off and once with every repetition sharing one GoalCache.
struct CacheWorkload {
  std::string Name;
  std::string Source;
};

struct CacheMeasurement {
  std::string Name;
  uint64_t Reps = 0;
  double OffSeconds = 0.0;
  double SharedSeconds = 0.0;
  uint64_t OffSteps = 0;     ///< solver_steps of one uncached solve.
  uint64_t WarmSteps = 0;    ///< solver_steps of one warm cached solve.
  uint64_t WarmHits = 0;     ///< cache_hits of that warm solve.
  bool Identical = false;    ///< uncached == cold == warm tree JSON.

  double speedup() const {
    return SharedSeconds > 0.0 ? OffSeconds / SharedSeconds : 0.0;
  }
};

CacheMeasurement measureCache(const CacheWorkload &Workload) {
  CacheMeasurement M;
  M.Name = Workload.Name;

  Session ArenaSess;
  Program Prog(ArenaSess);
  ParseResult Parse = parseSource(Prog, Workload.Name, Workload.Source);
  if (!Parse.Success)
    return M; // Identical stays false; a bad fixture fails the bench.

  const SolverOptions BaseOpts;
  auto solveOnce = [&](GoalCache *Cache) {
    SolverOptions Opts = BaseOpts;
    Opts.Cache = Cache;
    Solver Solve(Prog, Opts);
    return Solve.solve();
  };
  auto renderOnce = [&](GoalCache *Cache, SolveOutcome *Out = nullptr) {
    SolverOptions Opts = BaseOpts;
    Opts.Cache = Cache;
    Solver Solve(Prog, Opts);
    SolveOutcome Result = Solve.solve();
    Extraction Ex = extractTrees(Prog, Result, Solve.inferContext());
    std::string R;
    for (const InferenceTree &Tree : Ex.Trees)
      R += treeToJSON(Prog, Tree, /*Pretty=*/true) + "\n";
    if (Out)
      *Out = std::move(Result);
    return R;
  };

  // Correctness first: the uncached rendering, a cold cached run, and a
  // warm cached run must agree byte for byte.
  GoalCache ProbeCache;
  SolveOutcome OffOut, WarmOut;
  std::string OffJSON = renderOnce(nullptr, &OffOut);
  std::string ColdJSON = renderOnce(&ProbeCache);
  std::string WarmJSON = renderOnce(&ProbeCache, &WarmOut);
  M.Identical = OffJSON == ColdJSON && OffJSON == WarmJSON;
  M.OffSteps = OffOut.NumSolverSteps;
  M.WarmSteps = WarmOut.NumSolverSteps;
  M.WarmHits = WarmOut.NumCacheHits;

  // Calibrate off the uncached solve so each workload times stably.
  double Probe = timeReps(1, [&] { (void)solveOnce(nullptr); });
  const double TargetSeconds = 0.2;
  uint64_t Reps =
      Probe > 0.0 ? static_cast<uint64_t>(TargetSeconds / Probe) : 10000;
  if (Reps < 8)
    Reps = 8;
  if (Reps > 20000)
    Reps = 20000;
  M.Reps = Reps;

  M.OffSeconds = timeReps(Reps, [&] { (void)solveOnce(nullptr); });
  // The shared pass replays batch semantics: one cache, created empty,
  // shared by every repetition — the first populates, the rest splice.
  GoalCache Shared;
  M.SharedSeconds = timeReps(Reps, [&] { (void)solveOnce(&Shared); });
  return M;
}

/// One solver-core workload: a source solved repeatedly uncached, once
/// through the per-goal scan-and-filter path and once against the
/// coherence-time prebuilt candidate index (built once per Program, the
/// way engine::Session installs it).
struct CoreWorkload {
  std::string Name;
  std::string Source;
};

struct CoreMeasurement {
  std::string Name;
  uint64_t Reps = 0;
  double ScanSeconds = 0.0;    ///< Full-slice scan solves (--no-index).
  double IndexedSeconds = 0.0; ///< Prebuilt-index solves.
  double BuildSeconds = 0.0;   ///< One-time index build (not per solve).
  uint64_t IndexedFiltered = 0; ///< candidates_filtered, indexed (~0).
  uint64_t BucketHits = 0;     ///< index_bucket_hits, indexed path.
  uint64_t Subsumed = 0;       ///< Impls pruned at build time.
  bool Identical = false;      ///< Tree JSON agrees byte for byte.

  double speedup() const {
    return IndexedSeconds > 0.0 ? ScanSeconds / IndexedSeconds : 0.0;
  }
};

CoreMeasurement measureSolverCore(const CoreWorkload &Workload) {
  CoreMeasurement M;
  M.Name = Workload.Name;

  // Two Programs so the scan side never sees prebuilt (pruned) slices:
  // an installed index serves even head-less full-trait queries.
  Session ScanSess, IdxSess;
  Program ScanProg(ScanSess), IdxProg(IdxSess);
  if (!parseSource(ScanProg, Workload.Name, Workload.Source).Success ||
      !parseSource(IdxProg, Workload.Name, Workload.Source).Success)
    return M; // Identical stays false; a bad fixture fails the bench.

  SolverOptions ScanOpts;
  ScanOpts.EnableCandidateIndex = false;
  ScanOpts.EnableSubsumption = false;
  const SolverOptions IdxOpts; // Defaults: index + subsumption on.

  double BuildStart = now();
  SolverIndexStats Built = buildSolverIndex(IdxProg);
  M.BuildSeconds = now() - BuildStart;
  M.Subsumed = Built.ImplsSubsumed;

  auto renderOnce = [](Program &Prog, const SolverOptions &Opts,
                       SolveOutcome *Out) {
    Solver Solve(Prog, Opts);
    SolveOutcome Result = Solve.solve();
    Extraction Ex = extractTrees(Prog, Result, Solve.inferContext());
    std::string R;
    for (const InferenceTree &Tree : Ex.Trees)
      R += treeToJSON(Prog, Tree, /*Pretty=*/true) + "\n";
    if (Out)
      *Out = std::move(Result);
    return R;
  };

  // Correctness first: assembly routing must be invisible in the trees.
  SolveOutcome IdxOut;
  std::string ScanJSON = renderOnce(ScanProg, ScanOpts, nullptr);
  std::string IdxJSON = renderOnce(IdxProg, IdxOpts, &IdxOut);
  M.Identical = Built.Completed && ScanJSON == IdxJSON;
  M.IndexedFiltered = IdxOut.NumCandidatesFiltered;
  M.BucketHits = IdxOut.NumIndexBucketHits;

  auto solveOnce = [](Program &Prog, const SolverOptions &Opts) {
    Solver Solve(Prog, Opts);
    return Solve.solve();
  };
  double Probe = timeReps(1, [&] { (void)solveOnce(ScanProg, ScanOpts); });
  const double TargetSeconds = 0.2;
  uint64_t Reps =
      Probe > 0.0 ? static_cast<uint64_t>(TargetSeconds / Probe) : 10000;
  if (Reps < 8)
    Reps = 8;
  if (Reps > 20000)
    Reps = 20000;
  M.Reps = Reps;

  M.ScanSeconds = timeReps(Reps, [&] { (void)solveOnce(ScanProg, ScanOpts); });
  M.IndexedSeconds =
      timeReps(Reps, [&] { (void)solveOnce(IdxProg, IdxOpts); });
  return M;
}

/// The corpus perf floor: features on must never lose to features off.
/// The per-workload speedup is a median over paired interleaved timing
/// blocks, but on small programs (a few microseconds per run) the
/// residual noise on a shared machine is still a couple of percent, so
/// the enforced cutoff carries an explicit 3% measurement allowance — a
/// real regression (a disabled fast path, an accidentally quadratic
/// pass) shows up far below it.
constexpr double FeatureFloorTolerance = 0.97;

/// Features-on vs features-off comparison of the solve + extract +
/// normalize hot path on one corpus program. "Off" pins every
/// cost-model-dispatch feature to its pre-feature behaviour: no exact
/// candidate index, the always-bitset DNF policy, and no pooled scratch.
/// "On" is the shipping default: exact index, Auto kernel dispatch, and
/// Session-owned scratch buffers. Both sides run against the same parsed
/// Program so only solver/analysis work is timed.
struct FeatureMeasurement {
  std::string Name;
  uint64_t Reps = 0;
  double BaselineSeconds = 0.0; ///< Best timed block, features off.
  double FeaturedSeconds = 0.0; ///< Best timed block, features on.
  double Speedup = 0.0; ///< Median of paired per-block base/feat ratios.
  bool Identical = false;       ///< Tree JSON + MCS agree byte for byte.

  double speedup() const { return Speedup; }
};

FeatureMeasurement measureFeatures(const CorpusEntry &Entry) {
  FeatureMeasurement M;
  M.Name = Entry.Id;

  Session ArenaSess;
  Program Prog(ArenaSess);
  ParseResult Parse = parseSource(Prog, Entry.Id, Entry.Source);
  if (!Parse.Success)
    return M; // Identical stays false; a bad fixture fails the floor.

  SolverOptions BaselineSolve;
  BaselineSolve.EnableExactIndex = false;
  AnalysisOptions BaselineDNF;
  BaselineDNF.Kernel = DNFKernel::Bitset;

  const SolverOptions FeaturedSolve; // Defaults: exact index on.
  AnalysisOptions FeaturedDNF;       // Defaults: Auto dispatch...
  FeaturedDNF.Scratch = &ArenaSess.scratch(); // ...plus pooled scratch.

  auto runOnce = [&](const SolverOptions &SOpts,
                     const AnalysisOptions &AOpts, std::string *Render) {
    Solver Solve(Prog, SOpts);
    SolveOutcome Out = Solve.solve();
    Extraction Ex = extractTrees(Prog, Out, Solve.inferContext());
    for (const InferenceTree &Tree : Ex.Trees) {
      DNFFormula F = computeMCS(Tree, AOpts);
      if (Render) {
        *Render += treeToJSON(Prog, Tree, /*Pretty=*/true);
        *Render += F.IsTrue ? "|true" : "|";
        for (const auto &Conjunct : F.Conjuncts) {
          for (auto Atom : Conjunct) {
            *Render += std::to_string(Atom.value());
            *Render += ',';
          }
          *Render += ';';
        }
        *Render += '\n';
      }
    }
  };

  // Correctness first: both configurations must render the same trees
  // and normalize to the same minimal conjunct sets.
  std::string BaseRender, FeatRender;
  runOnce(BaselineSolve, BaselineDNF, &BaseRender);
  runOnce(FeaturedSolve, FeaturedDNF, &FeatRender);
  M.Identical = BaseRender == FeatRender;

  // Calibrate off the baseline, then time alternating blocks. On the
  // small programs the two sides are expected to be near-equal (the
  // floor asserts *zero overhead*, not a win) while block-to-block noise
  // on a shared machine can swing >10%, so the reported speedup is the
  // median of the paired per-block ratios: pairing adjacent blocks
  // cancels slow drift, and the median shrugs off the odd descheduled
  // block that best-of-N comparisons across sides cannot.
  double Probe =
      timeReps(1, [&] { runOnce(BaselineSolve, BaselineDNF, nullptr); });
  const double BlockTarget = 0.15;
  uint64_t Reps =
      Probe > 0.0 ? static_cast<uint64_t>(BlockTarget / Probe) : 5000;
  if (Reps < 4)
    Reps = 4;
  if (Reps > 30000)
    Reps = 30000;
  M.Reps = Reps;

  const int Blocks = 7; // Block 0 is warmup and never scored.
  double BestBase = -1.0, BestFeat = -1.0;
  std::vector<double> Ratios;
  for (int Block = 0; Block != Blocks; ++Block) {
    double Base = timeReps(
        Reps, [&] { runOnce(BaselineSolve, BaselineDNF, nullptr); });
    double Feat = timeReps(
        Reps, [&] { runOnce(FeaturedSolve, FeaturedDNF, nullptr); });
    if (Block == 0)
      continue;
    if (BestBase < 0.0 || Base < BestBase)
      BestBase = Base;
    if (BestFeat < 0.0 || Feat < BestFeat)
      BestFeat = Feat;
    if (Feat > 0.0)
      Ratios.push_back(Base / Feat);
  }
  M.BaselineSeconds = BestBase;
  M.FeaturedSeconds = BestFeat;
  if (!Ratios.empty()) {
    std::sort(Ratios.begin(), Ratios.end());
    M.Speedup = Ratios.size() % 2 == 1
                    ? Ratios[Ratios.size() / 2]
                    : 0.5 * (Ratios[Ratios.size() / 2 - 1] +
                             Ratios[Ratios.size() / 2]);
  }
  return M;
}

void writeCorpusEntry(JSONWriter &W, const engine::SessionStats &Stats,
                      const FeatureMeasurement &Features) {
  W.beginObject();
  W.keyValue("name", Stats.Name);
  W.keyValue("goal_evaluations", Stats.GoalEvaluations);
  W.keyValue("candidates_filtered", Stats.CandidatesFiltered);
  W.keyValue("dispatch_exact_prunes", Stats.DispatchExactPrunes);
  W.keyValue("dispatch_cache_skips", Stats.DispatchCacheSkips);
  W.keyValue("dispatch_reference", Stats.DispatchReference);
  W.keyValue("dispatch_bitset", Stats.DispatchBitset);
  W.keyValue("dispatch_forced", Stats.DispatchForced);
  W.keyValue("trees", static_cast<uint64_t>(Stats.TreesExtracted));
  W.keyValue("tree_goals", static_cast<uint64_t>(Stats.TreeGoals));
  W.keyValue("failed_leaves", static_cast<uint64_t>(Stats.FailedLeaves));
  W.keyValue("dnf_conjuncts", static_cast<uint64_t>(Stats.DNFConjuncts));
  W.keyValue("dnf_words_touched", Stats.DNFWordsTouched);
  W.keyValue("dnf_truncations", Stats.DNFTruncations);
  W.keyValue("arena_hash_lookups", Stats.ArenaHashLookups);
  W.key("seconds");
  W.beginObject();
  for (size_t I = 0; I != engine::NumStages; ++I)
    W.keyValue(engine::stageName(static_cast<engine::Stage>(I)),
               Stats.StageSeconds[I]);
  W.endObject();
  W.keyValue("total_seconds", Stats.totalSeconds());
  W.key("features");
  W.beginObject();
  W.keyValue("reps", Features.Reps);
  W.keyValue("baseline_seconds_per_run",
             Features.Reps
                 ? Features.BaselineSeconds /
                       static_cast<double>(Features.Reps)
                 : 0.0);
  W.keyValue("featured_seconds_per_run",
             Features.Reps
                 ? Features.FeaturedSeconds /
                       static_cast<double>(Features.Reps)
                 : 0.0);
  W.keyValue("speedup", Features.speedup());
  W.keyValue("identical", Features.Identical);
  W.endObject();
  W.endObject();
}

} // namespace

int main(int Argc, char **Argv) {
  std::string OutPath = "BENCH_hotpath.json";
  bool CheckFloors = false;
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--check-floors")
      CheckFloors = true;
    else
      OutPath = std::move(Arg);
  }

  // --- Section 1: full pipeline over the evaluation suite, plus the
  // per-workload features-on vs features-off speedup (the perf floor).
  std::vector<engine::Session> Sessions;
  Sessions.reserve(evaluationSuite().size());
  std::vector<FeatureMeasurement> Features;
  Features.reserve(evaluationSuite().size());
  bool FeaturesIdentical = true;
  double MinFeatureSpeedup = -1.0;
  for (const CorpusEntry &Entry : evaluationSuite()) {
    Sessions.emplace_back(Entry.Id, Entry.Source);
    engine::Session &S = Sessions.back();
    S.coherence();
    for (size_t T = 0; T != S.numTrees(); ++T)
      S.inertia(T);

    Features.push_back(measureFeatures(Entry));
    // One retry for a below-floor reading: on a shared machine a single
    // noisy measurement window can sink an equal-time workload below
    // the allowance; a real regression fails both passes.
    if (Features.back().Identical &&
        Features.back().speedup() < FeatureFloorTolerance) {
      FeatureMeasurement Retry = measureFeatures(Entry);
      if (Retry.Identical && Retry.speedup() > Features.back().speedup())
        Features.back() = std::move(Retry);
    }
    const FeatureMeasurement &F = Features.back();
    FeaturesIdentical &= F.Identical;
    if (MinFeatureSpeedup < 0.0 || F.speedup() < MinFeatureSpeedup)
      MinFeatureSpeedup = F.speedup();
    printf("features: %-26s reps=%-6llu off=%.3fus on=%.3fus "
           "speedup=%.2fx%s\n",
           F.Name.c_str(), static_cast<unsigned long long>(F.Reps),
           1e6 * F.BaselineSeconds / static_cast<double>(F.Reps),
           1e6 * F.FeaturedSeconds / static_cast<double>(F.Reps),
           F.speedup(), F.Identical ? "" : "  MISMATCH");
  }

  // --- Section 2: kernel comparison workloads. Corpus trees first (the
  // real, small ones), then generated trees at the paper's size range;
  // the branchy variants stress the conjunction cross product where the
  // vector kernel's quadratic absorption dominates.
  std::vector<KernelWorkload> Workloads;
  for (engine::Session &S : Sessions)
    for (size_t T = 0; T != S.numTrees(); ++T)
      Workloads.push_back({S.name() + (S.numTrees() > 1
                                           ? "#" + std::to_string(T)
                                           : std::string()),
                           &S.tree(T)});

  std::vector<GeneratedWorkload> Generated;
  Generated.reserve(16); // Workloads hold pointers into this vector.
  auto AddGenerated = [&](const char *Name, size_t Nodes, uint64_t Seed,
                          double BranchProbability) {
    GeneratorOptions GenOpts;
    GenOpts.TargetNodes = Nodes;
    GenOpts.Seed = Seed;
    GenOpts.BranchProbability = BranchProbability;
    Generated.push_back(generateTree(GenOpts));
    Workloads.push_back({Name, &Generated.back().Tree});
  };
  // Generated, like bench_fig12b: median / large / max paper sizes.
  AddGenerated("generated-2554", 2554, 1201, 0.10);
  AddGenerated("generated-8192", 8192, 1201, 0.10);
  AddGenerated("generated-36794", 36794, 1201, 0.10);
  AddGenerated("generated-branchy-2554", 2554, 99, 0.35);
  AddGenerated("generated-branchy-8192", 8192, 99, 0.35);
  AddGenerated("generated-branchy-36794", 36794, 99, 0.35);

  // Dense workloads: every failing goal branches (OR width) and every
  // failing candidate carries several failing subgoals (AND width), so
  // normalization is dominated by the conjunction cross product and
  // absorption over multi-atom conjuncts — the regime the bitset kernel
  // exists for. Shape orx<and>-d<depth>; conjunct count grows as
  // or * prev^and per level, so depth 3 already yields 10^2..10^4
  // conjuncts. The 2x3 shape exceeds 128 distinct atoms, spilling
  // ConjunctSet to its heap representation.
  auto AddDense = [&](const char *Name, size_t OrWidth, size_t AndWidth,
                      uint32_t Depth, size_t Nodes) {
    GeneratorOptions GenOpts;
    GenOpts.TargetNodes = Nodes;
    GenOpts.Seed = 7;
    GenOpts.BranchProbability = 1.0;
    GenOpts.BranchWidth = OrWidth;
    GenOpts.FailingSubgoalsPerCandidate = AndWidth;
    GenOpts.MaxFanout = 0;
    GenOpts.OverflowProbability = 0.0;
    GenOpts.MaxFailDepth = Depth;
    Generated.push_back(generateTree(GenOpts));
    Workloads.push_back({Name, &Generated.back().Tree});
  };
  AddDense("dense-or2-and2-d3", 2, 2, 3, 512);
  AddDense("dense-or3-and2-d3", 3, 2, 3, 1024);
  AddDense("dense-or2-and3-d3", 2, 3, 3, 1024);
  AddDense("dense-or2-and2-d4", 2, 2, 4, 2048);

  std::vector<KernelMeasurement> Measurements;
  Measurements.reserve(Workloads.size());
  bool AllIdentical = true;
  double TotalBitset = 0.0, TotalReference = 0.0, TotalAuto = 0.0;
  for (const KernelWorkload &Workload : Workloads) {
    Measurements.push_back(measureKernels(Workload));
    const KernelMeasurement &M = Measurements.back();
    AllIdentical &= M.Identical;
    // Totals compare per-normalization averages so every workload counts
    // once, regardless of its calibrated repetition count.
    TotalBitset += M.BitsetSeconds / static_cast<double>(M.Reps);
    TotalReference += M.ReferenceSeconds / static_cast<double>(M.Reps);
    TotalAuto += M.AutoSeconds / static_cast<double>(M.Reps);
    printf("%-28s nodes=%-6zu conjuncts=%-5zu atoms=%-4zu reps=%-6llu "
           "ref=%.3fms bitset=%.3fms auto=%.3fms[%s] speedup=%.2fx%s\n",
           M.Name.c_str(), M.TreeNodes, M.Conjuncts, M.Atoms,
           static_cast<unsigned long long>(M.Reps),
           1e3 * M.ReferenceSeconds / static_cast<double>(M.Reps),
           1e3 * M.BitsetSeconds / static_cast<double>(M.Reps),
           1e3 * M.AutoSeconds / static_cast<double>(M.Reps),
           M.AutoPickedBitset ? "bitset" : "ref", M.speedup(),
           M.Identical ? "" : "  MISMATCH");
  }
  double AggregateSpeedup =
      TotalBitset > 0.0 ? TotalReference / TotalBitset : 0.0;
  double AutoAggregateSpeedup =
      TotalAuto > 0.0 ? TotalBitset / TotalAuto : 0.0;
  printf("aggregate: ref=%.3fms bitset=%.3fms auto=%.3fms speedup=%.2fx"
         " auto_vs_bitset=%.2fx identical=%s\n",
         1e3 * TotalReference, 1e3 * TotalBitset, 1e3 * TotalAuto,
         AggregateSpeedup, AutoAggregateSpeedup,
         AllIdentical ? "yes" : "NO");

  // --- Emit the baseline.
  JSONWriter W(/*Pretty=*/true);
  W.beginObject();
  W.keyValue("schema", "argus-bench-hotpath-v1");
  W.key("corpus");
  W.beginArray();
  for (size_t I = 0; I != Sessions.size(); ++I)
    writeCorpusEntry(W, Sessions[I].stats(), Features[I]);
  W.endArray();
  W.key("corpus_features");
  W.beginObject();
  W.keyValue("min_speedup", MinFeatureSpeedup < 0.0 ? 0.0
                                                    : MinFeatureSpeedup);
  W.keyValue("identical", FeaturesIdentical);
  W.endObject();
  W.key("dnf_kernel");
  W.beginObject();
  W.key("workloads");
  W.beginArray();
  for (const KernelMeasurement &M : Measurements) {
    W.beginObject();
    W.keyValue("name", M.Name);
    W.keyValue("tree_nodes", static_cast<uint64_t>(M.TreeNodes));
    W.keyValue("mcs_conjuncts", static_cast<uint64_t>(M.Conjuncts));
    W.keyValue("atoms", static_cast<uint64_t>(M.Atoms));
    W.keyValue("reps", M.Reps);
    W.keyValue("reference_seconds_per_run",
               M.ReferenceSeconds / static_cast<double>(M.Reps));
    W.keyValue("bitset_seconds_per_run",
               M.BitsetSeconds / static_cast<double>(M.Reps));
    W.keyValue("auto_seconds_per_run",
               M.AutoSeconds / static_cast<double>(M.Reps));
    W.keyValue("auto_kernel", M.AutoPickedBitset ? "bitset" : "reference");
    W.keyValue("speedup", M.speedup());
    W.keyValue("auto_speedup", M.autoSpeedup());
    W.keyValue("identical", M.Identical);
    W.endObject();
  }
  W.endArray();
  W.key("totals");
  W.beginObject();
  W.keyValue("reference_seconds_per_pass", TotalReference);
  W.keyValue("bitset_seconds_per_pass", TotalBitset);
  W.keyValue("auto_seconds_per_pass", TotalAuto);
  W.keyValue("speedup", AggregateSpeedup);
  W.keyValue("auto_speedup", AutoAggregateSpeedup);
  W.keyValue("identical", AllIdentical);
  W.endObject();
  W.endObject();

  // --- Section 3: the stress corpus under a 100ms deadline.
  const double GovernedDeadline = 0.1;
  W.key("governance");
  W.beginObject();
  W.keyValue("job_deadline_seconds", GovernedDeadline);
  W.key("programs");
  W.beginArray();
  for (const CorpusEntry &Entry : stressSuite()) {
    engine::SessionOptions GovOpts;
    GovOpts.Limits.JobDeadlineSeconds = GovernedDeadline;
    double Start = now();
    engine::Session S(Entry.Id, Entry.Source, GovOpts);
    if (S.parseOk() && S.hasTraitErrors() && S.numTrees() != 0)
      S.inertia(0);
    double Elapsed = now() - Start;
    const engine::SessionStats &Stats = S.stats();
    W.beginObject();
    W.keyValue("name", Stats.Name);
    W.keyValue("elapsed_seconds", Elapsed);
    W.keyValue("goal_evaluations", Stats.GoalEvaluations);
    W.keyValue("dnf_truncations", Stats.DNFTruncations);
    W.keyValue("deadline_hits", Stats.DeadlineHits);
    W.keyValue("cancellations", Stats.Cancellations);
    W.keyValue("work_ceiling_hits", Stats.WorkCeilingHits);
    W.keyValue("degraded", Stats.degraded());
    W.key("failures");
    W.beginArray();
    for (const engine::Failure &F : Stats.Failures)
      F.writeJSON(W);
    W.endArray();
    W.endObject();
    printf("governance: %-26s elapsed=%.3fs evals=%llu degraded=%s"
           " failures=%zu\n",
           Stats.Name.c_str(), Elapsed,
           static_cast<unsigned long long>(Stats.GoalEvaluations),
           Stats.degraded() ? "yes" : "no", Stats.Failures.size());
  }
  W.endArray();
  W.endObject();

  // --- Section 4: goal-cache replay on terminating workloads.
  std::vector<CacheWorkload> CacheWorkloads;
  for (const CorpusEntry &Entry : evaluationSuite())
    CacheWorkloads.push_back({Entry.Id, Entry.Source});
  for (const CorpusEntry &Entry : stressSuite())
    if (Entry.Id == "stress-dnf-dense")
      CacheWorkloads.push_back({Entry.Id, Entry.Source});
  // Deep impl chains: one hit replays the whole chain, so these are the
  // workloads where the cache's subtree splice pays the most. The broken
  // variant caches a failing ("no") subtree instead of a proof. Depth is
  // capped well below the evaluation ceiling — a blanket impl over a
  // nested generic costs O(2^depth) goal evaluations uncached, and a
  // subtree that exhausts the budget is (correctly) never cached.
  auto AddChain = [&](const char *Name, unsigned Depth, bool Broken) {
    std::string S = "struct A;\nstruct B;\nstruct Wrap<T>;\ntrait Show;\n"
                    "impl Show for A;\n"
                    "impl<T> Show for Wrap<T> where T: Show;\n";
    std::string Ty = Broken ? "B" : "A";
    for (unsigned I = 0; I != Depth; ++I)
      Ty = "Wrap<" + Ty + ">";
    S += "goal " + Ty + ": Show;\n";
    CacheWorkloads.push_back({Name, std::move(S)});
  };
  AddChain("deep-chain-12", 12, /*Broken=*/false);
  AddChain("deep-chain-broken-12", 12, /*Broken=*/true);

  std::vector<CacheMeasurement> CacheMeasurements;
  CacheMeasurements.reserve(CacheWorkloads.size());
  bool CacheIdentical = true;
  double TotalOff = 0.0, TotalShared = 0.0;
  for (const CacheWorkload &Workload : CacheWorkloads) {
    CacheMeasurements.push_back(measureCache(Workload));
    const CacheMeasurement &M = CacheMeasurements.back();
    CacheIdentical &= M.Identical;
    TotalOff += M.OffSeconds / static_cast<double>(M.Reps);
    TotalShared += M.SharedSeconds / static_cast<double>(M.Reps);
    printf("cache: %-26s reps=%-6llu off=%.3fus shared=%.3fus "
           "steps=%llu->%llu hits=%llu speedup=%.2fx%s\n",
           M.Name.c_str(), static_cast<unsigned long long>(M.Reps),
           1e6 * M.OffSeconds / static_cast<double>(M.Reps),
           1e6 * M.SharedSeconds / static_cast<double>(M.Reps),
           static_cast<unsigned long long>(M.OffSteps),
           static_cast<unsigned long long>(M.WarmSteps),
           static_cast<unsigned long long>(M.WarmHits), M.speedup(),
           M.Identical ? "" : "  MISMATCH");
  }
  double CacheSpeedup = TotalShared > 0.0 ? TotalOff / TotalShared : 0.0;
  printf("cache aggregate: off=%.3fms shared=%.3fms speedup=%.2fx"
         " identical=%s\n",
         1e3 * TotalOff, 1e3 * TotalShared, CacheSpeedup,
         CacheIdentical ? "yes" : "NO");

  W.key("cache");
  W.beginObject();
  W.key("workloads");
  W.beginArray();
  for (const CacheMeasurement &M : CacheMeasurements) {
    W.beginObject();
    W.keyValue("name", M.Name);
    W.keyValue("reps", M.Reps);
    W.keyValue("off_seconds_per_solve",
               M.OffSeconds / static_cast<double>(M.Reps));
    W.keyValue("shared_seconds_per_solve",
               M.SharedSeconds / static_cast<double>(M.Reps));
    W.keyValue("solver_steps_uncached", M.OffSteps);
    W.keyValue("solver_steps_warm", M.WarmSteps);
    W.keyValue("cache_hits_warm", M.WarmHits);
    W.keyValue("speedup", M.speedup());
    W.keyValue("identical", M.Identical);
    W.endObject();
  }
  W.endArray();
  W.key("totals");
  W.beginObject();
  W.keyValue("off_seconds_per_pass", TotalOff);
  W.keyValue("shared_seconds_per_pass", TotalShared);
  W.keyValue("speedup", CacheSpeedup);
  W.keyValue("identical", CacheIdentical);
  W.endObject();
  W.endObject();

  // --- Section 5: solver-core candidate assembly, uncached. The deep
  // chain is padded with decoy impls the chain never matches — the
  // per-goal scan path pays a filter check per decoy per goal
  // evaluation, the prebuilt bucket never enumerates them. The diesel
  // programs witness the same on real corpus shapes, where subsumption
  // additionally prunes impls no declared goal can reach.
  std::vector<CoreWorkload> CoreWorkloads;
  {
    const unsigned CoreDepth = 12, CoreDecoys = 48;
    std::string S = "struct A;\nstruct Wrap<T>;\ntrait Show;\n";
    for (unsigned I = 0; I != CoreDecoys; ++I) {
      std::string D = "Decoy" + std::to_string(I);
      S += "struct " + D + ";\nimpl Show for " + D + ";\n";
    }
    S += "impl Show for A;\n"
         "impl<T> Show for Wrap<T> where T: Show;\n";
    std::string Ty = "A";
    for (unsigned I = 0; I != CoreDepth; ++I)
      Ty = "Wrap<" + Ty + ">";
    S += "goal " + Ty + ": Show;\n";
    CoreWorkloads.push_back({"deep-chain-12", std::move(S)});
  }
  for (const CorpusEntry &Entry : evaluationSuite())
    if (Entry.Family == "diesel")
      CoreWorkloads.push_back({Entry.Id, Entry.Source});

  std::vector<CoreMeasurement> CoreMeasurements;
  CoreMeasurements.reserve(CoreWorkloads.size());
  bool CoreIdentical = true;
  bool CoreFilteredClean = true;
  double DeepChainSpeedup = 0.0;
  for (const CoreWorkload &Workload : CoreWorkloads) {
    CoreMeasurements.push_back(measureSolverCore(Workload));
    const CoreMeasurement &M = CoreMeasurements.back();
    CoreIdentical &= M.Identical;
    CoreFilteredClean &= M.IndexedFiltered == 0;
    if (M.Name == "deep-chain-12")
      DeepChainSpeedup = M.speedup();
    printf("solver_core: %-26s reps=%-6llu scan=%.3fus indexed=%.3fus"
           " filtered=%llu bucket_hits=%llu subsumed=%llu"
           " speedup=%.2fx%s\n",
           M.Name.c_str(), static_cast<unsigned long long>(M.Reps),
           1e6 * M.ScanSeconds / static_cast<double>(M.Reps),
           1e6 * M.IndexedSeconds / static_cast<double>(M.Reps),
           static_cast<unsigned long long>(M.IndexedFiltered),
           static_cast<unsigned long long>(M.BucketHits),
           static_cast<unsigned long long>(M.Subsumed), M.speedup(),
           M.Identical ? "" : "  MISMATCH");
  }

  W.key("solver_core");
  W.beginObject();
  W.key("workloads");
  W.beginArray();
  for (const CoreMeasurement &M : CoreMeasurements) {
    W.beginObject();
    W.keyValue("name", M.Name);
    W.keyValue("reps", M.Reps);
    W.keyValue("scan_seconds_per_solve",
               M.ScanSeconds / static_cast<double>(M.Reps));
    W.keyValue("indexed_seconds_per_solve",
               M.IndexedSeconds / static_cast<double>(M.Reps));
    W.keyValue("index_build_seconds", M.BuildSeconds);
    W.keyValue("candidates_filtered_indexed", M.IndexedFiltered);
    W.keyValue("index_bucket_hits", M.BucketHits);
    W.keyValue("impls_subsumed", M.Subsumed);
    W.keyValue("speedup", M.speedup());
    W.keyValue("identical", M.Identical);
    W.endObject();
  }
  W.endArray();
  W.key("totals");
  W.beginObject();
  W.keyValue("deep_chain_speedup", DeepChainSpeedup);
  W.keyValue("indexed_filtering_zero", CoreFilteredClean);
  W.keyValue("identical", CoreIdentical);
  W.endObject();
  W.endObject();

  // --- Section 6: incremental edit sessions. A deep *successful*
  // where-clause chain dominates every revision's solve (each level pays
  // a quiet probe plus a loud replay, so the cold cost is O(2^depth)
  // while the recorded proof tree is linear and splices in
  // microseconds). The per-revision edit toggles one same-length side
  // impl the chain never consults, so dependency fingerprints let
  // revision 2+ splice the chain from the previous revision's entries;
  // two failing goals render trees every revision so byte-identity is
  // checked against real output.
  const unsigned IncrDepth = 12;
  const size_t IncrRevisions = 8;
  auto IncrSource = [&](bool SideB) {
    std::string S = "struct A;\nstruct B;\nstruct Wrap<T>;\ntrait Show;\n"
                    "trait Side;\n"
                    "impl Show for A;\n"
                    "impl<T> Show for Wrap<T> where T: Show;\n";
    // Same length either way: the edit moves one impl between types
    // without shifting any later span.
    S += SideB ? "impl Side for B;\n" : "impl Side for A;\n";
    std::string Ty = "A"; // Holds: A at the bottom satisfies the chain.
    for (unsigned I = 0; I != IncrDepth; ++I)
      Ty = "Wrap<" + Ty + ">";
    S += "goal " + Ty + ": Show;\n"
         "goal Wrap<Wrap<B>>: Show;\n" // Fails two levels down: a tree.
         "goal A: Side;\n";            // Flips per revision: a tree on
                                       // odd revisions.
    return S;
  };
  std::vector<std::string> IncrRevs;
  for (size_t R = 0; R != IncrRevisions; ++R)
    IncrRevs.push_back(IncrSource(/*SideB=*/R % 2 == 1));

  auto RenderSession = [](engine::Session &S) {
    std::string Out;
    if (!S.parseOk())
      return std::string("parse error\n");
    for (size_t T = 0; T != S.numTrees(); ++T)
      Out += S.bottomUpText(T) + "\n";
    if (S.numTrees() == 0)
      Out += "holds\n";
    return Out;
  };

  engine::SessionOptions IncrColdOpts; // Cache stays Off.
  engine::SessionOptions IncrWarmOpts;
  IncrWarmOpts.Cache = engine::CacheMode::Shared; // EditSession owns it.

  // Calibrate off one cold replay of the full revision sequence.
  double IncrProbe = timeReps(1, [&] {
    for (const std::string &Src : IncrRevs) {
      engine::Session S("incremental", Src, IncrColdOpts);
      (void)RenderSession(S);
    }
  });
  uint64_t IncrReps =
      IncrProbe > 0.0 ? static_cast<uint64_t>(0.4 / IncrProbe) : 64;
  if (IncrReps < 4)
    IncrReps = 4;
  if (IncrReps > 512)
    IncrReps = 512;

  std::vector<std::string> IncrColdRef(IncrRevs.size());
  double ColdFirst = 0.0, ColdRest = 0.0;
  double IncrFirst = 0.0, IncrRest = 0.0;
  bool IncrIdentical = true;
  uint64_t IncrCrossRevHits = 0, IncrDepMisses = 0, IncrInvalidated = 0;
  for (uint64_t Rep = 0; Rep != IncrReps; ++Rep) {
    for (size_t R = 0; R != IncrRevs.size(); ++R) {
      double Start = now();
      engine::Session S("incremental", IncrRevs[R], IncrColdOpts);
      std::string Rendered = RenderSession(S);
      (R == 0 ? ColdFirst : ColdRest) += now() - Start;
      if (Rep == 0)
        IncrColdRef[R] = std::move(Rendered);
    }
    engine::EditSession Edit("incremental", IncrWarmOpts);
    for (size_t R = 0; R != IncrRevs.size(); ++R) {
      double Start = now();
      engine::Session &S = Edit.apply(IncrRevs[R]);
      std::string Rendered = RenderSession(S);
      (R == 0 ? IncrFirst : IncrRest) += now() - Start;
      IncrIdentical &= Rendered == IncrColdRef[R];
      if (Rep == 0) {
        IncrCrossRevHits += S.stats().CacheCrossRevHits;
        IncrDepMisses += S.stats().CacheDepMisses;
        IncrInvalidated += S.stats().ImplsInvalidated;
      }
    }
  }
  double IncrSpeedup = IncrRest > 0.0 ? ColdRest / IncrRest : 0.0;
  double Reps = static_cast<double>(IncrReps);
  printf("incremental: revisions=%zu depth=%u reps=%llu"
         " cold_rev1=%.3fms cold_rest=%.3fms incr_rev1=%.3fms"
         " incr_rest=%.3fms cross_rev_hits=%llu impls_invalidated=%llu"
         " speedup_rest=%.2fx identical=%s\n",
         IncrRevs.size(), IncrDepth,
         static_cast<unsigned long long>(IncrReps), 1e3 * ColdFirst / Reps,
         1e3 * ColdRest / Reps, 1e3 * IncrFirst / Reps,
         1e3 * IncrRest / Reps,
         static_cast<unsigned long long>(IncrCrossRevHits),
         static_cast<unsigned long long>(IncrInvalidated), IncrSpeedup,
         IncrIdentical ? "yes" : "NO");

  W.key("incremental");
  W.beginObject();
  W.keyValue("revisions", static_cast<uint64_t>(IncrRevs.size()));
  W.keyValue("chain_depth", static_cast<uint64_t>(IncrDepth));
  W.keyValue("reps", IncrReps);
  W.keyValue("cold_rev1_seconds_per_pass", ColdFirst / Reps);
  W.keyValue("cold_rest_seconds_per_pass", ColdRest / Reps);
  W.keyValue("incremental_rev1_seconds_per_pass", IncrFirst / Reps);
  W.keyValue("incremental_rest_seconds_per_pass", IncrRest / Reps);
  W.keyValue("cache_cross_rev_hits_per_replay", IncrCrossRevHits);
  W.keyValue("cache_dep_misses_per_replay", IncrDepMisses);
  W.keyValue("impls_invalidated_per_replay", IncrInvalidated);
  W.keyValue("speedup_rest", IncrSpeedup);
  W.keyValue("identical", IncrIdentical);
  W.endObject();

  // --- Section 7: persisted-cache round-trip and warm start. The
  // deep-chain-12 workload from section 4 again: cold cost is O(2^depth)
  // goal evaluations, the recorded proof tree is linear, and the image
  // holds that tree — so a restarted process that loads the image should
  // splice the chain instead of re-proving it. Measured: serialize +
  // atomic save latency, load (read + validate + intern) latency, and
  // the end-to-end warm start (load + solve, the restarted-process
  // experience) against the cold solve. Identity is byte-level on the
  // rendered output; the warm start must also actually hit disk entries.
  std::string PersistSrc;
  {
    std::string Ty = "A";
    for (unsigned I = 0; I != 12; ++I)
      Ty = "Wrap<" + Ty + ">";
    PersistSrc = "struct A;\nstruct B;\nstruct Wrap<T>;\ntrait Show;\n"
                 "impl Show for A;\n"
                 "impl<T> Show for Wrap<T> where T: Show;\n"
                 "goal " +
                 Ty +
                 ": Show;\n"
                 "goal Wrap<Wrap<B>>: Show;\n"; // Fails: a rendered tree.
  }
  const std::string PersistImagePath = OutPath + ".persist.gc";
  engine::SessionOptions PersistColdOpts; // Cache off.
  auto PersistRender = [](engine::Session &S) {
    std::string Out;
    for (size_t T = 0; T != S.numTrees(); ++T)
      Out += S.diagnosticText(T) + "\n" + S.bottomUpText(T) + "\n" +
             S.treeJSON(T) + "\n";
    return Out;
  };

  // Populate one cache with the workload's entries and persist it once.
  GoalCache PersistWarm;
  {
    engine::SessionOptions Opts;
    Opts.Cache = engine::CacheMode::Shared;
    Opts.SharedCache = &PersistWarm;
    engine::Session S("persist", PersistSrc, Opts);
    (void)PersistRender(S);
  }
  const std::string PersistImage = serializeGoalCache(PersistWarm);
  const uint64_t PersistEntries = PersistWarm.size();
  bool PersistLoadOk = true;

  double PersistProbe = timeReps(1, [&] {
    engine::Session S("persist", PersistSrc, PersistColdOpts);
    (void)PersistRender(S);
  });
  uint64_t PersistReps =
      PersistProbe > 0.0 ? static_cast<uint64_t>(0.25 / PersistProbe) : 64;
  if (PersistReps < 4)
    PersistReps = 4;
  if (PersistReps > 2000)
    PersistReps = 2000;

  double PersistSaveSeconds = timeReps(PersistReps, [&] {
    CacheSaveResult R = saveGoalCache(PersistWarm, PersistImagePath);
    PersistLoadOk &= R.Ok;
  });
  double PersistLoadSeconds = timeReps(PersistReps, [&] {
    GoalCache Loaded;
    CacheLoadResult R = loadGoalCache(Loaded, PersistImagePath, nullptr, {});
    PersistLoadOk &= R.ok() && Loaded.size() == PersistEntries;
  });

  std::string PersistColdRef;
  double PersistColdSeconds = 0.0, PersistWarmSeconds = 0.0;
  bool PersistIdentical = true;
  uint64_t PersistDiskHits = 0, PersistColdSteps = 0, PersistWarmSteps = 0;
  for (uint64_t Rep = 0; Rep != PersistReps; ++Rep) {
    double Start = now();
    engine::Session Cold("persist", PersistSrc, PersistColdOpts);
    std::string ColdOut = PersistRender(Cold);
    PersistColdSeconds += now() - Start;
    if (Rep == 0) {
      PersistColdRef = std::move(ColdOut);
      PersistColdSteps = Cold.stats().SolverSteps;
    }

    // The warm start a restarted process pays: read + validate the image
    // into a fresh cache, then solve against it.
    Start = now();
    GoalCache Disk;
    CacheLoadResult R = loadGoalCache(Disk, PersistImagePath, nullptr, {});
    engine::SessionOptions WarmOpts;
    WarmOpts.Cache = engine::CacheMode::Shared;
    WarmOpts.SharedCache = &Disk;
    engine::Session Warm("persist", PersistSrc, WarmOpts);
    std::string WarmOut = PersistRender(Warm);
    PersistWarmSeconds += now() - Start;
    PersistLoadOk &= R.ok();
    PersistIdentical &= WarmOut == PersistColdRef;
    if (Rep == 0) {
      PersistDiskHits = Warm.stats().CacheDiskHits;
      PersistWarmSteps = Warm.stats().SolverSteps;
    }
  }
  std::remove(PersistImagePath.c_str());
  double PersistSpeedup = PersistWarmSeconds > 0.0
                              ? PersistColdSeconds / PersistWarmSeconds
                              : 0.0;
  double PersistRepsD = static_cast<double>(PersistReps);
  printf("persist: deep-chain-12 reps=%llu entries=%llu image=%lluB"
         " save=%.3fus load=%.3fus cold=%.3fus warm_start=%.3fus"
         " steps=%llu->%llu disk_hits=%llu speedup=%.2fx identical=%s\n",
         static_cast<unsigned long long>(PersistReps),
         static_cast<unsigned long long>(PersistEntries),
         static_cast<unsigned long long>(PersistImage.size()),
         1e6 * PersistSaveSeconds / PersistRepsD,
         1e6 * PersistLoadSeconds / PersistRepsD,
         1e6 * PersistColdSeconds / PersistRepsD,
         1e6 * PersistWarmSeconds / PersistRepsD,
         static_cast<unsigned long long>(PersistColdSteps),
         static_cast<unsigned long long>(PersistWarmSteps),
         static_cast<unsigned long long>(PersistDiskHits), PersistSpeedup,
         PersistIdentical ? "yes" : "NO");

  W.key("persist");
  W.beginObject();
  W.keyValue("workload", std::string("deep-chain-12"));
  W.keyValue("reps", PersistReps);
  W.keyValue("entries", PersistEntries);
  W.keyValue("image_bytes", static_cast<uint64_t>(PersistImage.size()));
  W.keyValue("save_seconds_per_image", PersistSaveSeconds / PersistRepsD);
  W.keyValue("load_seconds_per_image", PersistLoadSeconds / PersistRepsD);
  W.keyValue("cold_seconds_per_solve", PersistColdSeconds / PersistRepsD);
  W.keyValue("warm_start_seconds_per_solve",
             PersistWarmSeconds / PersistRepsD);
  W.keyValue("solver_steps_cold", PersistColdSteps);
  W.keyValue("solver_steps_warm", PersistWarmSteps);
  W.keyValue("cache_disk_hits_warm", PersistDiskHits);
  W.keyValue("warm_start_speedup", PersistSpeedup);
  W.keyValue("identical", PersistIdentical);
  W.endObject();
  W.endObject();

  std::ofstream Out(OutPath);
  if (!Out) {
    fprintf(stderr, "bench_hotpath: cannot write %s\n", OutPath.c_str());
    return 2;
  }
  Out << W.str() << "\n";
  printf("wrote %s\n", OutPath.c_str());

  // The baseline is only worth recording if the kernels agree and the
  // cache is both invisible in the output and actually faster; these are
  // the acceptance bars this bench exists to witness.
  if (!AllIdentical || !CacheIdentical || !IncrIdentical ||
      !FeaturesIdentical || !CoreIdentical || !PersistIdentical)
    return 1;
  if (!CoreFilteredClean) {
    fprintf(stderr, "bench_hotpath: prebuilt-index solves reported live"
                    " candidate filtering (expected 0)\n");
    return 1;
  }
  printf("features floor: min_speedup=%.2fx identical=%s%s\n",
         MinFeatureSpeedup, FeaturesIdentical ? "yes" : "NO",
         CheckFloors ? " (enforced)" : "");
  if (CheckFloors && MinFeatureSpeedup < FeatureFloorTolerance) {
    for (const FeatureMeasurement &F : Features)
      if (F.speedup() < FeatureFloorTolerance)
        fprintf(stderr,
                "bench_hotpath: %s features-on speedup %.2fx below the"
                " 1.0x floor (3%% noise allowance exceeded)\n",
                F.Name.c_str(), F.speedup());
    return 1;
  }
  if (CheckFloors && DeepChainSpeedup < 1.3) {
    fprintf(stderr,
            "bench_hotpath: solver-core deep-chain speedup %.2fx below"
            " the 1.3x floor\n",
            DeepChainSpeedup);
    return 1;
  }
  if (CacheSpeedup < 1.5) {
    fprintf(stderr,
            "bench_hotpath: cache aggregate speedup %.2fx below the 1.5x"
            " floor\n",
            CacheSpeedup);
    return 1;
  }
  if (IncrSpeedup < 5.0) {
    fprintf(stderr,
            "bench_hotpath: incremental revision-2+ speedup %.2fx below"
            " the 5x floor\n",
            IncrSpeedup);
    return 1;
  }
  if (IncrCrossRevHits == 0) {
    fprintf(stderr, "bench_hotpath: incremental replay produced no"
                    " cross-revision cache hits\n");
    return 1;
  }
  if (!PersistLoadOk) {
    fprintf(stderr, "bench_hotpath: persisted-cache save or load failed"
                    " during the round-trip measurement\n");
    return 1;
  }
  if (PersistDiskHits == 0) {
    fprintf(stderr, "bench_hotpath: warm start served no hits from"
                    " disk-loaded entries\n");
    return 1;
  }
  if (PersistSpeedup < 2.0) {
    fprintf(stderr,
            "bench_hotpath: persisted warm start %.2fx below the 2x"
            " floor vs the cold solve\n",
            PersistSpeedup);
    return 1;
  }
  return 0;
}
