//===- bench/bench_fig12a_distance.cpp - Figure 12a -----------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 12a: the distance to the ground-truth root cause
/// for the inertia heuristic, the two baseline rankings (predicate depth,
/// number of uninstantiated inference variables), and the Rust compiler
/// diagnostic, over the 17-program evaluation suite. For rankings the
/// metric is the index of the root cause in the sorted bottom-up list;
/// for the compiler it is the number of inference steps between its
/// blamed node and the root cause. Optimal is 0 everywhere.
///
/// Paper medians: inertia 0, depth 1, #inference-vars 1, rustc 2.
///
//===----------------------------------------------------------------------===//

#include "analysis/CompilerDistance.h"
#include "corpus/Corpus.h"
#include "engine/Session.h"
#include "support/Statistics.h"

#include <cstdio>

using namespace argus;

namespace {

struct ProgramDistances {
  std::string Id;
  size_t Inertia;
  size_t Depth;
  size_t InferVars;
  size_t Compiler;
};

/// Index of the ground truth in \p Order, matching by predicate;
/// Order.size() when the truth is not a ranked leaf.
size_t rankOfTruth(const Program &Prog, const InferenceTree &Tree,
                   const std::vector<IGoalId> &Order) {
  for (size_t I = 0; I != Order.size(); ++I)
    for (const Predicate &Truth : Prog.rootCauses())
      if (Tree.goal(Order[I]).Pred == Truth)
        return I;
  return Order.size();
}

ProgramDistances measure(const CorpusEntry &Entry) {
  engine::Session ES(Entry.Id, Entry.Source);
  const Program &Prog = ES.program();
  const InferenceTree &Tree = ES.tree(0);

  ProgramDistances Distances;
  Distances.Id = Entry.Id;
  Distances.Inertia = rankOfTruth(Prog, Tree, ES.inertia(0).Order);
  Distances.Depth = rankOfTruth(Prog, Tree, rankByDepth(Tree));
  Distances.InferVars = rankOfTruth(Prog, Tree, rankByInferVars(Tree));

  // The compiler comparison: nodes between the blamed node and the truth
  // (preferring the leaf occurrence of the truth, falling back to any).
  RenderedDiagnostic Diag = ES.diagnostic(0);
  IGoalId TruthNode;
  for (const Predicate &Truth : Prog.rootCauses()) {
    for (IGoalId Leaf : Tree.failedLeaves())
      if (Tree.goal(Leaf).Pred == Truth && !TruthNode.isValid())
        TruthNode = Leaf;
    if (!TruthNode.isValid())
      TruthNode = findGoalByPredicate(Tree, Truth);
  }
  Distances.Compiler = nodeDistance(Tree, Diag.ReportedNode, TruthNode);
  return Distances;
}

double medianOf(const std::vector<ProgramDistances> &All,
                size_t ProgramDistances::*Member) {
  std::vector<double> Values;
  for (const ProgramDistances &D : All)
    Values.push_back(static_cast<double>(D.*Member));
  return stats::median(Values);
}

} // namespace

int main() {
  printf("=== Figure 12a: distance to the root cause, 17-program suite "
         "===\n\n");
  printf("%-30s %8s %6s %10s %9s\n", "program", "inertia", "depth",
         "infer-vars", "compiler");

  std::vector<ProgramDistances> All;
  for (const CorpusEntry &Entry : evaluationSuite()) {
    ProgramDistances D = measure(Entry);
    printf("%-30s %8zu %6zu %10zu %9zu\n", D.Id.c_str(), D.Inertia,
           D.Depth, D.InferVars, D.Compiler);
    All.push_back(D);
  }

  printf("\n%-30s %8s %6s %10s %9s\n", "median (measured)", "", "", "", "");
  printf("%-30s %8.1f %6.1f %10.1f %9.1f\n", "",
         medianOf(All, &ProgramDistances::Inertia),
         medianOf(All, &ProgramDistances::Depth),
         medianOf(All, &ProgramDistances::InferVars),
         medianOf(All, &ProgramDistances::Compiler));
  printf("%-30s %8s %6s %10s %9s\n", "median (paper)", "0", "1", "1",
         "2");
  return 0;
}
