//===- bench/bench_study_sensitivity.cpp - Simulation robustness -*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sensitivity analysis for the simulated user study (our substitute for
/// Figure 11's humans): sweeps the key behavioral constants across wide
/// ranges and reports the Argus-vs-rustc effects for each setting. The
/// point: the *direction* of the paper's result — Argus localizes more
/// often and faster — must not hinge on any single calibration value.
/// Each cell averages several seeds to control Monte-Carlo noise.
///
//===----------------------------------------------------------------------===//

#include "study/Simulator.h"

#include <cstdio>
#include <functional>

using namespace argus;

namespace {

struct SweepPoint {
  double Value;
  double RateRatio;   ///< Argus localization rate / rustc rate.
  double TimeRatio;   ///< rustc median / Argus median.
  double ArgusRate;
  double RustcRate;
};

SweepPoint measure(const std::vector<StudyTask> &Tasks,
                   const std::function<void(StudyConfig &)> &Tweak,
                   double Value) {
  const int Seeds = 8;
  double ArgusRate = 0, RustcRate = 0, ArgusTime = 0, RustcTime = 0;
  for (int I = 0; I != Seeds; ++I) {
    StudyConfig Config;
    Config.Seed = 7000 + I;
    Tweak(Config);
    StudyResults Results = runStudy(Config, Tasks);
    ArgusRate += Results.Argus.LocalizeRate;
    RustcRate += Results.Rustc.LocalizeRate;
    ArgusTime += Results.Argus.LocalizeMedianSeconds;
    RustcTime += Results.Rustc.LocalizeMedianSeconds;
  }
  SweepPoint Point;
  Point.Value = Value;
  Point.ArgusRate = ArgusRate / Seeds;
  Point.RustcRate = RustcRate / Seeds;
  Point.RateRatio = Point.ArgusRate / std::max(1e-9, Point.RustcRate);
  Point.TimeRatio = (RustcTime / Seeds) /
                    std::max(1e-9, ArgusTime / Seeds);
  return Point;
}

void sweep(const char *Name, const std::vector<StudyTask> &Tasks,
           const std::vector<double> &Values,
           const std::function<void(StudyConfig &, double)> &Apply) {
  printf("%s:\n", Name);
  printf("  %10s %10s %10s %11s %11s\n", "value", "argus-loc",
         "rustc-loc", "rate-ratio", "time-ratio");
  for (double Value : Values) {
    SweepPoint Point = measure(
        Tasks, [&](StudyConfig &Config) { Apply(Config, Value); }, Value);
    printf("  %10.2f %9.0f%% %9.0f%% %10.1fx %10.1fx\n", Point.Value,
           100 * Point.ArgusRate, 100 * Point.RustcRate, Point.RateRatio,
           Point.TimeRatio);
  }
  printf("\n");
}

} // namespace

int main() {
  printf("=== Study-simulation sensitivity (8 seeds per cell; paper "
         "effects: 2.2x rate, 3.3x time) ===\n\n");
  std::vector<StudyTask> Tasks = buildStudyTasks();

  sweep("ArgusRecognizeProb (default 0.72)", Tasks,
        {0.5, 0.6, 0.72, 0.85, 0.95},
        [](StudyConfig &Config, double Value) {
          Config.ArgusRecognizeProb = Value;
        });

  sweep("RustcBlindProb (default 0.10)", Tasks,
        {0.05, 0.10, 0.20, 0.35},
        [](StudyConfig &Config, double Value) {
          Config.RustcBlindProb = Value;
        });

  sweep("RustcRoundSeconds (default 230)", Tasks,
        {120, 180, 230, 320},
        [](StudyConfig &Config, double Value) {
          Config.RustcRoundSeconds = Value;
        });

  sweep("SkillSigma (default 0.35)", Tasks, {0.1, 0.35, 0.6},
        [](StudyConfig &Config, double Value) {
          Config.SkillSigma = Value;
        });

  sweep("ArgusScanSeconds (default 55)", Tasks, {30, 55, 90, 140},
        [](StudyConfig &Config, double Value) {
          Config.ArgusScanSeconds = Value;
        });

  printf("reading: across every sweep the rate ratio stays > 1 and the "
         "time ratio stays > 1 — the Argus advantage is a consequence "
         "of the information structure (what the diagnostic omits vs. "
         "what the ranked view shows), not of one tuned constant.\n");
  return 0;
}
