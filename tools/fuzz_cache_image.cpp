//===- tools/fuzz_cache_image.cpp - Cache-image loader fuzz ---*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free fuzz smoke for the persisted-cache loader
/// (solver/CachePersist). Seed images are built by running corpus
/// programs through cache-backed Sessions and serializing the resulting
/// GoalCache; mutants are produced with a seeded argus::Rng — truncation,
/// byte flips, section swaps, block duplication, splices of two images,
/// header tampering, and pure garbage. Half the structural mutants get
/// their checksums *recomputed* after corruption, so the deep validators
/// (token grammar, cross-record indices, tree shape) face inputs the
/// checksums would otherwise have intercepted.
///
/// The contract under test is the loader's threat model: no image,
/// however mangled, may crash, hang, throw, or report success while
/// leaving the cache half-loaded. Every outcome must be a CacheLoadStatus.
/// Mutants that still load Ok are sampled into a governed end-to-end
/// check: a Session solving against the forged-but-valid cache must
/// render byte-identically to a cold solve (the dependency fingerprints
/// and splice-time checks carry that burden).
///
/// Deterministic: rerunning with the same --seed and --iterations
/// reproduces any failure exactly.
///
///   fuzz_cache_image [--iterations <n>] [--seed <n>] [--verbose]
///
/// Wired into CTest as `fuzz_cache_smoke`; also part of the
/// CHECK_SANITIZE=1 run (tools/check.sh), where ASan/UBSan watch the
/// same inputs.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "engine/Session.h"
#include "solver/CachePersist.h"
#include "solver/GoalCache.h"
#include "support/Random.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace argus;

namespace {

uint64_t fnv1a(const char *Data, size_t N) {
  uint64_t H = 14695981039346656037ull;
  for (size_t I = 0; I != N; ++I) {
    H ^= static_cast<unsigned char>(Data[I]);
    H *= 1099511628211ull;
  }
  return H;
}

uint64_t readWord(const std::string &S, size_t WordIndex) {
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(
             static_cast<unsigned char>(S[WordIndex * 8 + I]))
         << (8 * I);
  return V;
}

void writeWord(std::string &S, size_t WordIndex, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    S[WordIndex * 8 + I] = static_cast<char>((V >> (8 * I)) & 0xFF);
}

/// Recomputes every checksum of a (structurally intact) image in place,
/// so corruption planted inside a section must be caught by the
/// structural validators rather than the checksums. Returns false when
/// the image is too mangled to even locate its sections — those mutants
/// ship as-is and die at the checksum or size checks, which is also a
/// path worth fuzzing.
bool fixChecksums(std::string &Image) {
  constexpr size_t HeaderWords = 10;
  if (Image.size() < (HeaderWords + 1) * 8 || Image.size() % 8 != 0)
    return false;
  uint64_t SymWords = readWord(Image, 4);
  uint64_t EntryWords = readWord(Image, 6);
  uint64_t TotalWords = Image.size() / 8;
  if (SymWords > TotalWords || EntryWords > TotalWords ||
      HeaderWords + SymWords + EntryWords + 1 != TotalWords)
    return false;
  const char *Sym = Image.data() + HeaderWords * 8;
  const char *Entry = Sym + SymWords * 8;
  writeWord(Image, 7, fnv1a(Sym, static_cast<size_t>(SymWords) * 8));
  writeWord(Image, 8, fnv1a(Entry, static_cast<size_t>(EntryWords) * 8));
  writeWord(Image, 9, fnv1a(Image.data(), 9 * 8));
  writeWord(Image, TotalWords - 1, fnv1a(Image.data(), Image.size() - 8));
  return true;
}

std::string mutate(Rng &R, const std::vector<std::string> &Seeds) {
  std::string S = Seeds[R.below(Seeds.size())];
  int Rounds = static_cast<int>(R.range(1, 6));
  for (int I = 0; I != Rounds; ++I) {
    switch (R.below(8)) {
    case 0: { // Truncate at an arbitrary byte.
      S.resize(R.below(S.size() + 1));
      break;
    }
    case 1: { // Flip 1..8 random bytes.
      if (S.empty())
        break;
      int Flips = static_cast<int>(R.range(1, 8));
      for (int F = 0; F != Flips; ++F)
        S[R.below(S.size())] ^= static_cast<char>(R.range(1, 255));
      break;
    }
    case 2: { // Overwrite one aligned word with an adversarial value.
      if (S.size() < 8)
        break;
      static const uint64_t Nasty[] = {
          0,       1,          0xFFFFFFFFull, 0x100000000ull,
          ~0ull,   ~0ull - 1,  1ull << 32,    1ull << 63,
          0x7FFFFFFFFFFFFFFFull};
      writeWord(S, R.below(S.size() / 8),
                Nasty[R.below(sizeof(Nasty) / sizeof(Nasty[0]))]);
      break;
    }
    case 3: { // Swap two aligned blocks (section-swap at small scale).
      size_t Words = S.size() / 8;
      if (Words < 4)
        break;
      size_t Len = R.range(1, 16);
      size_t A = R.below(Words), B = R.below(Words);
      for (size_t W = 0; W != Len; ++W) {
        if (A + W >= Words || B + W >= Words)
          break;
        uint64_t Tmp = readWord(S, A + W);
        writeWord(S, A + W, readWord(S, B + W));
        writeWord(S, B + W, Tmp);
      }
      break;
    }
    case 4: { // Duplicate a span in place (grows the image).
      if (S.empty())
        break;
      size_t At = R.below(S.size());
      size_t Len = std::min<size_t>(R.below(64) + 1, S.size() - At);
      S.insert(At, S.substr(At, Len));
      break;
    }
    case 5: { // Splice: our prefix, another image's suffix.
      const std::string &Other = Seeds[R.below(Seeds.size())];
      S = S.substr(0, R.below(S.size() + 1)) +
          Other.substr(R.below(Other.size() + 1));
      break;
    }
    case 6: { // Replace with pure garbage (word-aligned half the time).
      size_t Len = R.below(512);
      if (R.below(2) == 0)
        Len &= ~size_t(7);
      S.assign(Len, '\0');
      for (size_t B = 0; B != S.size(); ++B)
        S[B] = static_cast<char>(R.below(256));
      break;
    }
    case 7: { // Tamper with one header field specifically.
      if (S.size() < 80)
        break;
      writeWord(S, R.below(10), R.next());
      break;
    }
    }
  }
  // Half the structurally plausible mutants get valid checksums, forcing
  // the deep validators to stand alone.
  if (R.below(2) == 0)
    fixChecksums(S);
  return S;
}

/// Tight limits for the sampled end-to-end check; forged entries must
/// degrade through the ordinary governance paths, never hang.
engine::SessionOptions governedOptions() {
  engine::SessionOptions Opts;
  Opts.Solver.MaxGoalEvaluations = 20000;
  for (size_t S = 0; S != engine::NumStages; ++S)
    Opts.Limits.StageWorkCeiling[S] = 50000;
  Opts.Limits.JobDeadlineSeconds = 2.0;
  return Opts;
}

std::string renderAll(engine::Session &S) {
  std::string Out;
  for (size_t T = 0; T != S.numTrees(); ++T) {
    Out += S.diagnosticText(T) + "\n";
    Out += S.bottomUpText(T) + "\n";
    Out += S.treeJSON(T) + "\n";
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Iterations = 300000;
  uint64_t Seed = 1;
  bool Verbose = false;
  for (int I = 1; I != Argc; ++I) {
    if (!strcmp(Argv[I], "--iterations") && I + 1 != Argc)
      Iterations = strtoull(Argv[++I], nullptr, 10);
    else if (!strcmp(Argv[I], "--seed") && I + 1 != Argc)
      Seed = strtoull(Argv[++I], nullptr, 10);
    else if (!strcmp(Argv[I], "--verbose"))
      Verbose = true;
    else {
      fprintf(stderr, "usage: fuzz_cache_image [--iterations <n>]"
                      " [--seed <n>] [--verbose]\n");
      return 2;
    }
  }

  // --- Seed images: solve a slice of the corpus into one shared cache
  // per program batch and serialize at a few population sizes, plus an
  // empty image and a synthetic tiny one.
  std::vector<std::string> Seeds;
  std::vector<std::string> Sources;
  for (const CorpusEntry &Entry : evaluationSuite())
    Sources.push_back(Entry.Source);
  {
    GoalCache Warm;
    engine::SessionOptions Opts = governedOptions();
    Opts.Cache = engine::CacheMode::Shared;
    Opts.SharedCache = &Warm;
    size_t Step = Sources.size() < 6 ? 1 : Sources.size() / 6;
    for (size_t I = 0; I < Sources.size(); ++I) {
      engine::Session S("seed.tl", Sources[I], Opts);
      if (S.parseOk() && S.hasTraitErrors() && S.numTrees() != 0)
        (void)S.bottomUpText(0);
      if (I % Step == 0)
        Seeds.push_back(serializeGoalCache(Warm));
    }
    Seeds.push_back(serializeGoalCache(Warm)); // Fully populated.
  }
  Seeds.push_back(serializeGoalCache(GoalCache())); // Empty cache.
  if (Seeds.back().empty()) {
    fprintf(stderr, "FAIL: empty-cache image serialized to zero bytes\n");
    return 1;
  }

  // The unmutated seeds must round-trip — the fuzz harness is meaningless
  // if its baseline images are already rejected.
  for (size_t I = 0; I != Seeds.size(); ++I) {
    GoalCache Fresh;
    CacheLoadResult R = deserializeGoalCache(Fresh, Seeds[I]);
    if (!R.ok()) {
      fprintf(stderr, "FAIL: pristine seed image %zu rejected: %s (%s)\n",
              I, cacheLoadStatusName(R.Status), R.Detail.c_str());
      return 1;
    }
  }

  Rng R(Seed);
  const engine::SessionOptions GovOpts = governedOptions();
  uint64_t Rejected = 0, LoadedOk = 0, SolveChecks = 0;
  uint64_t ByStatus[8] = {};
  std::string Current;
  for (uint64_t I = 0; I != Iterations; ++I) {
    Current = mutate(R, Seeds);
    try {
      GoalCache Target;
      CacheLoadResult Res = deserializeGoalCache(Target, Current);
      ++ByStatus[static_cast<size_t>(Res.Status) & 7];
      if (!Res.ok()) {
        ++Rejected;
        // All-or-nothing: a rejected image must leave the target
        // untouched.
        if (Target.size() != 0) {
          fprintf(stderr,
                  "FAIL: rejected image left %zu entries resident at"
                  " iteration %llu (seed %llu, status %s)\n",
                  Target.size(), static_cast<unsigned long long>(I),
                  static_cast<unsigned long long>(Seed),
                  cacheLoadStatusName(Res.Status));
          return 1;
        }
      } else {
        ++LoadedOk;
        // Sampled end-to-end robustness check: solve against the loaded
        // cache and render everything. A mutant that survives the
        // checksums (fixChecksums forged them) is by definition outside
        // the accidental-corruption threat model — byte-fidelity is only
        // promised for authentic images (persist_diff and the unit tests
        // own that bar) — but even a deliberate forgery must never make
        // the solver crash, hang, or trip a sanitizer while its entries
        // are spliced and rendered. Capped so the fuzz stays
        // loader-bound.
        if (SolveChecks < 200 && !Sources.empty()) {
          ++SolveChecks;
          engine::SessionOptions WarmOpts = GovOpts;
          WarmOpts.Cache = engine::CacheMode::Shared;
          WarmOpts.SharedCache = &Target;
          engine::Session Warm("fuzz.tl", Sources[R.below(Sources.size())],
                               WarmOpts);
          (void)renderAll(Warm);
        }
      }
    } catch (const std::exception &E) {
      fprintf(stderr,
              "FAIL: exception escaped the loader at iteration %llu"
              " (seed %llu): %s (image %zu bytes)\n",
              static_cast<unsigned long long>(I),
              static_cast<unsigned long long>(Seed), E.what(),
              Current.size());
      return 1;
    } catch (...) {
      fprintf(stderr,
              "FAIL: non-std exception escaped the loader at iteration"
              " %llu (seed %llu, image %zu bytes)\n",
              static_cast<unsigned long long>(I),
              static_cast<unsigned long long>(Seed), Current.size());
      return 1;
    }
    if (Verbose && (I + 1) % 50000 == 0)
      fprintf(stderr, "fuzz: %llu/%llu (%llu rejected, %llu ok)\n",
              static_cast<unsigned long long>(I + 1),
              static_cast<unsigned long long>(Iterations),
              static_cast<unsigned long long>(Rejected),
              static_cast<unsigned long long>(LoadedOk));
  }

  printf("fuzz_cache_image: OK — %llu mutants, %llu rejected, %llu loaded"
         " ok, %llu solve checks (seed %llu)\n",
         static_cast<unsigned long long>(Iterations),
         static_cast<unsigned long long>(Rejected),
         static_cast<unsigned long long>(LoadedOk),
         static_cast<unsigned long long>(SolveChecks),
         static_cast<unsigned long long>(Seed));
  printf("fuzz_cache_image: statuses ok=%llu io=%llu magic=%llu"
         " version=%llu trunc=%llu cksum=%llu malformed=%llu\n",
         static_cast<unsigned long long>(ByStatus[0]),
         static_cast<unsigned long long>(ByStatus[1]),
         static_cast<unsigned long long>(ByStatus[2]),
         static_cast<unsigned long long>(ByStatus[3]),
         static_cast<unsigned long long>(ByStatus[4]),
         static_cast<unsigned long long>(ByStatus[5]),
         static_cast<unsigned long long>(ByStatus[6]));
  return 0;
}
