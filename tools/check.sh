#!/usr/bin/env sh
# tools/check.sh — the repo's one-command gate.
#
# Default mode configures, builds, and runs the full test suite, then
# verifies the engine's batch determinism guarantee end to end: the CLI
# must produce byte-identical JSON over a directory of programs whether
# it runs serially or on 8 worker threads.
#
#   tools/check.sh [build-dir]
#
# The determinism check is also wired into CTest (cli_batch_determinism),
# which invokes only that step to avoid recursing into ctest:
#
#   tools/check.sh --determinism-only <argus-binary> <programs-dir>
#
# The perf smoke gate re-runs the CLI with --stats and asserts ceilings
# on the *work counters* (goal evaluations, DNF conjuncts) and floors on
# the fast-path counters (candidates filtered, arena hash lookups).
# Counters are deterministic, so unlike wall-clock thresholds this can
# never flake; it catches a silently disabled fast path or an
# accidentally quadratic search. Also wired into CTest (cli_perf_smoke):
#
#   tools/check.sh --perf-smoke-only <argus-binary> <programs-dir>
#
# The cache differential gate diffs the CLI's --json stdout across every
# goal-cache mode (off/session/shared) at 1 and 8 worker threads — plus
# fault-injected and 100ms-deadline variants of the same matrix — and
# requires the bytes to be identical. On by default in the full gate via
# CHECK_CACHE_DIFF=1; standalone:
#
#   tools/check.sh --cache-diff-only <argus-binary> <programs-dir>
#
# The index differential gate diffs the CLI's --json stdout across the
# prebuilt-candidate-index / subsumption matrix (default, --no-index,
# --no-subsume, both) at 1 and 8 worker threads and requires the bytes
# to be identical — the index and the inprocessing pass are pure
# work-savers. Wired into CTest as cli_index_diff; standalone:
#
#   tools/check.sh --index-diff-only <argus-binary> <programs-dir>
#
# The edit differential gate replays a canned three-revision edit script
# (break an example by deleting an impl, then revert) through
# `argus --edit-script`, once against the incremental shared cache and
# once with --cache off, and requires byte-identical stdout and equal
# exit codes. On by default in the full gate; standalone (also wired
# into CTest as cli_edit_diff):
#
#   tools/check.sh --edit-diff-only <argus-binary> <programs-dir>
#
# The persistence differential gate exercises the crash-safe persisted
# goal cache end to end: a cold batch run is compared byte for byte
# against a save -> restart -> --cache-load run of the same programs (at
# 1 and 8 worker threads), the load run's --stats must report
# cache_cross_rev_hits > 0 (the image actually warmed the solve), and a
# run against a deliberately truncated image must degrade to the cold
# bytes with exit 3. On by default in the full gate via
# CHECK_PERSIST_DIFF=1; standalone (also wired into CTest as
# cli_persist_diff):
#
#   tools/check.sh --persist-diff-only <argus-binary> <programs-dir>
#
# The perf floors gate runs the hot-path benchmark with --check-floors:
# every corpus workload's features-on vs features-off speedup (exact
# candidate index + Auto kernel dispatch + pooled scratch) must stay at
# or above 1.0x with byte-identical output, alongside the bench's own
# kernel-identity, cache >= 1.5x, incremental >= 5x, and solver-core
# bars (prebuilt-index deep-chain >= 1.3x, zero live candidate
# filtering on indexed solves, byte-identical trees). These are
# wall-clock measurements, so the gate is opt-in: set CHECK_PERF_FLOORS=1
# for the full gate, or run it standalone (wired into CTest as
# bench_perf_floors under the "Perf" configuration):
#
#   tools/check.sh --perf-floors-only <bench_hotpath-binary>
#
# CHECK_SANITIZE=1 switches the full gate to an ASan+UBSan build in its
# own build directory (build-sanitize by default), running the same test
# suite — including the fuzz_smoke mutation loop — under the sanitizers.
# Documented in DESIGN.md ("Failure model and resource governance").
#
#   CHECK_SANITIZE=1 tools/check.sh [build-dir]
set -eu

determinism() {
  argus_bin="$1"
  programs_dir="$2"
  serial_out="${TMPDIR:-/tmp}/argus_batch_serial_$$.json"
  parallel_out="${TMPDIR:-/tmp}/argus_batch_parallel_$$.json"
  trap 'rm -f "$serial_out" "$parallel_out"' EXIT

  "$argus_bin" --batch "$programs_dir" --jobs 1 --json >"$serial_out" || true
  "$argus_bin" --batch "$programs_dir" --jobs 8 --json >"$parallel_out" || true

  if ! cmp -s "$serial_out" "$parallel_out"; then
    echo "FAIL: --jobs 8 output differs from --jobs 1 over $programs_dir" >&2
    diff "$serial_out" "$parallel_out" >&2 || true
    exit 1
  fi
  echo "batch determinism: OK (--jobs 1 == --jobs 8 over $programs_dir)"
}

cache_diff() {
  argus_bin="$1"
  programs_dir="$2"
  cache_base="${TMPDIR:-/tmp}/argus_cache_base_$$.json"
  cache_got="${TMPDIR:-/tmp}/argus_cache_got_$$.json"
  trap 'rm -f "$cache_base" "$cache_got"' EXIT

  # Three governance settings; within each, every cache mode and thread
  # count must reproduce the cache-off serial bytes. Deadline/inject
  # variants are compared against their own baseline — governance may
  # legitimately change the output, the cache never may.
  for variant in plain inject deadline; do
    case "$variant" in
    plain) set -- ;;
    inject) set -- --inject solve.overflow,dnf.truncate,cache.reject,cache.depmiss ;;
    deadline) set -- --deadline 0.1 ;;
    esac
    "$argus_bin" --batch "$programs_dir" --jobs 1 --json --cache off \
      "$@" >"$cache_base" || true
    for mode in off session shared; do
      for jobs in 1 8; do
        [ "$mode" = off ] && [ "$jobs" = 1 ] && continue
        "$argus_bin" --batch "$programs_dir" --jobs "$jobs" --json \
          --cache "$mode" "$@" >"$cache_got" || true
        if ! cmp -s "$cache_base" "$cache_got"; then
          echo "FAIL: cache diff: --cache $mode --jobs $jobs ($variant)" \
            "differs from --cache off --jobs 1 over $programs_dir" >&2
          diff "$cache_base" "$cache_got" >&2 || true
          exit 1
        fi
      done
    done
  done
  echo "cache differential: OK (off == session == shared, jobs 1 == 8," \
    "plain/inject/deadline, over $programs_dir)"
}

index_diff() {
  argus_bin="$1"
  programs_dir="$2"
  index_base="${TMPDIR:-/tmp}/argus_index_base_$$.json"
  index_got="${TMPDIR:-/tmp}/argus_index_got_$$.json"
  trap 'rm -f "$index_base" "$index_got"' EXIT

  # The prebuilt candidate index and the subsumption pass are pure
  # work-savers: every cell of the (index x subsumption x threads)
  # matrix must reproduce the default bytes exactly.
  "$argus_bin" --batch "$programs_dir" --jobs 1 --json >"$index_base" || true
  for flags in "--no-index" "--no-subsume" "--no-index --no-subsume"; do
    for jobs in 1 8; do
      # shellcheck disable=SC2086
      "$argus_bin" --batch "$programs_dir" --jobs "$jobs" --json \
        $flags >"$index_got" || true
      if ! cmp -s "$index_base" "$index_got"; then
        echo "FAIL: index diff: $flags --jobs $jobs differs from the" \
          "default (indexed) run over $programs_dir" >&2
        diff "$index_base" "$index_got" >&2 || true
        exit 1
      fi
    done
  done
  echo "index differential: OK (default == --no-index == --no-subsume," \
    "jobs 1 == 8, over $programs_dir)"
}

# Writes the canned three-revision edit script (original, first impl
# deleted, original again) for $1 (a program file) to stdout. Deleting
# an impl changes results; the revert must be served by revision 1's
# cache entries.
make_edit_script() {
  cat "$1"
  echo "---"
  awk '!d && /^(#\[external\] )?impl/ { d = 1; next } { print }' "$1"
  echo "---"
  cat "$1"
}

edit_diff() {
  argus_bin="$1"
  programs_dir="$2"
  edit_script="${TMPDIR:-/tmp}/argus_edit_script_$$.txt"
  edit_warm="${TMPDIR:-/tmp}/argus_edit_warm_$$.txt"
  edit_cold="${TMPDIR:-/tmp}/argus_edit_cold_$$.txt"
  trap 'rm -f "$edit_script" "$edit_warm" "$edit_cold"' EXIT

  make_edit_script "$programs_dir/display_vec.tl" >"$edit_script"
  warm_status=0
  cold_status=0
  "$argus_bin" --edit-script "$edit_script" >"$edit_warm" || warm_status=$?
  "$argus_bin" --edit-script "$edit_script" --cache off >"$edit_cold" ||
    cold_status=$?
  if ! cmp -s "$edit_cold" "$edit_warm"; then
    echo "FAIL: edit diff: incremental --edit-script output differs" \
      "from --cache off over $edit_script" >&2
    diff "$edit_cold" "$edit_warm" >&2 || true
    exit 1
  fi
  if [ "$warm_status" != "$cold_status" ]; then
    echo "FAIL: edit diff: incremental exit $warm_status !=" \
      "cold exit $cold_status" >&2
    exit 1
  fi
  echo "edit differential: OK (incremental == cold over a 3-revision" \
    "edit script, exit $warm_status)"
}

persist_diff() {
  argus_bin="$1"
  programs_dir="$2"
  persist_dir="${TMPDIR:-/tmp}/argus_persist_$$"
  mkdir -p "$persist_dir"
  trap 'rm -rf "$persist_dir"' EXIT
  img="$persist_dir/cache.gc"
  cold_out="$persist_dir/cold.json"
  warm_out="$persist_dir/warm.json"

  # Cold baseline, then save an image, then pretend the process restarted
  # and load it back: stdout must be byte-identical in every cell.
  "$argus_bin" --batch "$programs_dir" --jobs 1 --json \
    --cache off >"$cold_out" || true
  "$argus_bin" --batch "$programs_dir" --jobs 1 --json \
    --cache-save "$img" >/dev/null || true
  [ -s "$img" ] || {
    echo "FAIL: persist diff: --cache-save $img wrote nothing" >&2
    exit 1
  }
  for jobs in 1 8; do
    "$argus_bin" --batch "$programs_dir" --jobs "$jobs" --json \
      --cache-load "$img" >"$warm_out" || true
    if ! cmp -s "$cold_out" "$warm_out"; then
      echo "FAIL: persist diff: --cache-load --jobs $jobs differs from" \
        "the cold run over $programs_dir" >&2
      diff "$cold_out" "$warm_out" >&2 || true
      exit 1
    fi
  done

  # The image must actually warm the solve: the restarted run's stats
  # report hits served by entries no live session recorded.
  warm_stats=$("$argus_bin" --batch "$programs_dir" --stats \
                 --cache-load "$img" 2>/dev/null |
               grep '^stats: ' | tail -n 1) || true
  persist_counter() {
    printf '%s\n' "$warm_stats" | tr ' ' '\n' | sed -n "s/^$1=//p"
  }
  cross_hits=$(persist_counter cache_cross_rev_hits)
  disk_hits=$(persist_counter cache_disk_hits)
  loaded=$(persist_counter cache_disk_entries_loaded)
  [ -n "$cross_hits" ] && [ "$cross_hits" -ge 1 ] || {
    echo "FAIL: persist diff: cache_cross_rev_hits=${cross_hits:-missing}" \
      "after restart+load; the image did not warm the solve" >&2
    exit 1
  }
  [ -n "$disk_hits" ] && [ "$disk_hits" -ge 1 ] || {
    echo "FAIL: persist diff: cache_disk_hits=${disk_hits:-missing}" \
      "after restart+load ($warm_stats)" >&2
    exit 1
  }

  # A mangled image must degrade to the cold bytes (structured rejection,
  # exit 3) — never crash, never a partial warm start.
  head -c 100 "$img" >"$persist_dir/trunc.gc"
  trunc_status=0
  "$argus_bin" --batch "$programs_dir" --jobs 1 --json \
    --cache-load "$persist_dir/trunc.gc" >"$warm_out" 2>/dev/null ||
    trunc_status=$?
  if ! cmp -s "$cold_out" "$warm_out"; then
    echo "FAIL: persist diff: truncated-image run differs from the cold" \
      "run over $programs_dir" >&2
    diff "$cold_out" "$warm_out" >&2 || true
    exit 1
  fi
  [ "$trunc_status" -eq 3 ] || {
    echo "FAIL: persist diff: truncated image exited $trunc_status," \
      "expected 3 (cache_load_rejected degradation)" >&2
    exit 1
  }
  echo "persist differential: OK (cold == save/restart/load, jobs 1 == 8," \
    "$loaded entries loaded, $disk_hits disk hits, $cross_hits cross-rev" \
    "hits, truncated image degrades to cold with exit 3)"
}

perf_smoke() {
  argus_bin="$1"
  programs_dir="$2"

  # --mcs forces the analyze stage so the DNF counters are live; the CLI
  # exits nonzero when programs have trait errors, which is the point.
  stats_line=$("$argus_bin" --batch "$programs_dir" --mcs --stats \
                 2>/dev/null | grep '^stats: ' | tail -n 1) || true
  if [ -z "$stats_line" ]; then
    echo "FAIL: no 'stats:' line from $argus_bin --batch --mcs --stats" >&2
    exit 1
  fi

  counter() {
    printf '%s\n' "$stats_line" | tr ' ' '\n' | sed -n "s/^$1=//p"
  }
  assert_le() { # name value ceiling
    [ "$2" -le "$3" ] || {
      echo "FAIL: perf smoke: $1=$2 exceeds ceiling $3 ($stats_line)" >&2
      exit 1
    }
  }
  assert_ge() { # name value floor
    [ "$2" -ge "$3" ] || {
      echo "FAIL: perf smoke: $1=$2 below floor $3 ($stats_line)" >&2
      exit 1
    }
  }

  # Ceilings are ~3x the values measured over examples/ at the time the
  # gate was added (goal_evals=145, dnf_conjuncts=4), so corpus growth
  # has headroom but a regression to quadratic search cannot hide.
  assert_le goal_evals "$(counter goal_evals)" 450
  assert_le dnf_conjuncts "$(counter dnf_conjuncts)" 16
  assert_le dnf_truncations "$(counter dnf_truncations)" 0
  # Floors: the prebuilt candidate index and the arena hash cache must
  # actually be doing something. With the index installed, trait goals
  # walk preassembled buckets (index_bucket_hits) and the lazy
  # scan-and-filter counter must read ~0 — a nonzero value means the
  # coherence-time build silently stopped installing.
  assert_ge index_bucket_hits "$(counter index_bucket_hits)" 1
  assert_le candidates_filtered "$(counter candidates_filtered)" 0
  assert_ge arena_hash_lookups "$(counter arena_hash_lookups)" 1
  echo "perf smoke: OK ($stats_line)"

  # Goal-cache effectiveness: over a batch of identical programs the
  # shared cache must *strictly* reduce solver_steps versus cache off,
  # and actually hit. Work counters, not wall clock — cannot flake. The
  # byte-level half of this guarantee lives in cache_diff().
  cache_work_dir="${TMPDIR:-/tmp}/argus_cache_perf_$$"
  mkdir -p "$cache_work_dir"
  i=0
  while [ $i -lt 8 ]; do
    cp "$programs_dir/display_vec.tl" "$cache_work_dir/copy$i.tl"
    i=$((i + 1))
  done
  cache_counter() { # mode name
    "$argus_bin" --batch "$cache_work_dir" --stats --cache "$1" \
        2>/dev/null | grep '^stats: ' | tail -n 1 |
      tr ' ' '\n' | sed -n "s/^$2=//p"
  }
  off_steps=$(cache_counter off solver_steps)
  shared_steps=$(cache_counter shared solver_steps)
  shared_hits=$(cache_counter shared cache_hits)
  rm -rf "$cache_work_dir"
  [ -n "$off_steps" ] && [ -n "$shared_steps" ] || {
    echo "FAIL: perf smoke: no solver_steps counter from --cache runs" >&2
    exit 1
  }
  [ "$shared_steps" -lt "$off_steps" ] || {
    echo "FAIL: perf smoke: --cache shared did $shared_steps solver" \
      "steps, not strictly less than $off_steps with the cache off" >&2
    exit 1
  }
  assert_ge cache_hits "$shared_hits" 1
  echo "cache perf smoke: OK (solver_steps $off_steps -> $shared_steps," \
    "$shared_hits hits over 8 identical programs)"

  # Incremental smoke: the canned edit session must actually cross
  # revisions — entries recorded at revision 1 serve revision 3 after
  # the revert, the deleted impl registers as an invalidation, and the
  # incremental replay does strictly less solver work than solving every
  # revision cold. Work counters again, so this cannot flake.
  edit_perf_script="${TMPDIR:-/tmp}/argus_edit_perf_$$.txt"
  make_edit_script "$programs_dir/display_vec.tl" >"$edit_perf_script"
  edit_counter() { # cache-mode counter-name
    "$argus_bin" --edit-script "$edit_perf_script" --cache "$1" --stats \
        2>/dev/null | grep '^stats: ' | tail -n 1 |
      tr ' ' '\n' | sed -n "s/^$2=//p"
  }
  cross_hits=$(edit_counter shared cache_cross_rev_hits)
  invalidated=$(edit_counter shared impls_invalidated)
  warm_steps=$(edit_counter shared solver_steps)
  cold_steps=$(edit_counter off solver_steps)
  rm -f "$edit_perf_script"
  [ -n "$cross_hits" ] && [ -n "$cold_steps" ] || {
    echo "FAIL: perf smoke: no counters from --edit-script --stats" >&2
    exit 1
  }
  assert_ge cache_cross_rev_hits "$cross_hits" 1
  assert_ge impls_invalidated "$invalidated" 2
  [ "$warm_steps" -lt "$cold_steps" ] || {
    echo "FAIL: perf smoke: incremental edit session did $warm_steps" \
      "solver steps, not strictly less than $cold_steps cold" >&2
    exit 1
  }
  echo "incremental perf smoke: OK (solver_steps $cold_steps ->" \
    "$warm_steps, $cross_hits cross-rev hits," \
    "$invalidated impls invalidated)"
}

perf_floors() {
  bench_bin="$1"
  floors_json="${TMPDIR:-/tmp}/argus_perf_floors_$$.json"
  trap 'rm -f "$floors_json"' EXIT

  if ! "$bench_bin" --check-floors "$floors_json"; then
    echo "FAIL: perf floors: $bench_bin --check-floors reported a" \
      "workload below 1.0x, an identity mismatch, or a bench gate" \
      "failure (see output above)" >&2
    exit 1
  fi
  echo "perf floors: OK (every corpus workload >= 1.0x features-on," \
    "solver-core and all bench identity and speedup gates passed)"
}

if [ "${1:-}" = "--perf-floors-only" ]; then
  [ $# -eq 2 ] || {
    echo "usage: $0 --perf-floors-only <bench_hotpath-binary>" >&2
    exit 2
  }
  perf_floors "$2"
  exit 0
fi

if [ "${1:-}" = "--perf-smoke-only" ]; then
  [ $# -eq 3 ] || {
    echo "usage: $0 --perf-smoke-only <argus-binary> <programs-dir>" >&2
    exit 2
  }
  perf_smoke "$2" "$3"
  exit 0
fi

if [ "${1:-}" = "--determinism-only" ]; then
  [ $# -eq 3 ] || {
    echo "usage: $0 --determinism-only <argus-binary> <programs-dir>" >&2
    exit 2
  }
  determinism "$2" "$3"
  exit 0
fi

if [ "${1:-}" = "--cache-diff-only" ]; then
  [ $# -eq 3 ] || {
    echo "usage: $0 --cache-diff-only <argus-binary> <programs-dir>" >&2
    exit 2
  }
  cache_diff "$2" "$3"
  exit 0
fi

if [ "${1:-}" = "--index-diff-only" ]; then
  [ $# -eq 3 ] || {
    echo "usage: $0 --index-diff-only <argus-binary> <programs-dir>" >&2
    exit 2
  }
  index_diff "$2" "$3"
  exit 0
fi

if [ "${1:-}" = "--edit-diff-only" ]; then
  [ $# -eq 3 ] || {
    echo "usage: $0 --edit-diff-only <argus-binary> <programs-dir>" >&2
    exit 2
  }
  edit_diff "$2" "$3"
  exit 0
fi

if [ "${1:-}" = "--persist-diff-only" ]; then
  [ $# -eq 3 ] || {
    echo "usage: $0 --persist-diff-only <argus-binary> <programs-dir>" >&2
    exit 2
  }
  persist_diff "$2" "$3"
  exit 0
fi

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
if [ "${CHECK_SANITIZE:-0}" = "1" ]; then
  build_dir="${1:-$repo_root/build-sanitize}"
  sanitize_flags="-fsanitize=address,undefined -fno-omit-frame-pointer -fno-sanitize-recover=all"
  cmake -B "$build_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="$sanitize_flags" \
    -DCMAKE_EXE_LINKER_FLAGS="$sanitize_flags"
else
  build_dir="${1:-$repo_root/build}"
  cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" -j
(cd "$build_dir" && ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 4)")

determinism "$build_dir/tools/argus" "$repo_root/examples"
if [ "${CHECK_CACHE_DIFF:-1}" = "1" ]; then
  cache_diff "$build_dir/tools/argus" "$repo_root/examples"
fi
index_diff "$build_dir/tools/argus" "$repo_root/examples"
edit_diff "$build_dir/tools/argus" "$repo_root/examples"
if [ "${CHECK_PERSIST_DIFF:-1}" = "1" ]; then
  persist_diff "$build_dir/tools/argus" "$repo_root/examples"
fi
perf_smoke "$build_dir/tools/argus" "$repo_root/examples"
if [ "${CHECK_PERF_FLOORS:-0}" = "1" ]; then
  perf_floors "$build_dir/bench/bench_hotpath"
fi
echo "all checks passed"
