#!/usr/bin/env sh
# tools/check.sh — the repo's one-command gate.
#
# Default mode configures, builds, and runs the full test suite, then
# verifies the engine's batch determinism guarantee end to end: the CLI
# must produce byte-identical JSON over a directory of programs whether
# it runs serially or on 8 worker threads.
#
#   tools/check.sh [build-dir]
#
# The determinism check is also wired into CTest (cli_batch_determinism),
# which invokes only that step to avoid recursing into ctest:
#
#   tools/check.sh --determinism-only <argus-binary> <programs-dir>
set -eu

determinism() {
  argus_bin="$1"
  programs_dir="$2"
  serial_out="${TMPDIR:-/tmp}/argus_batch_serial_$$.json"
  parallel_out="${TMPDIR:-/tmp}/argus_batch_parallel_$$.json"
  trap 'rm -f "$serial_out" "$parallel_out"' EXIT

  "$argus_bin" --batch "$programs_dir" --jobs 1 --json >"$serial_out" || true
  "$argus_bin" --batch "$programs_dir" --jobs 8 --json >"$parallel_out" || true

  if ! cmp -s "$serial_out" "$parallel_out"; then
    echo "FAIL: --jobs 8 output differs from --jobs 1 over $programs_dir" >&2
    diff "$serial_out" "$parallel_out" >&2 || true
    exit 1
  fi
  echo "batch determinism: OK (--jobs 1 == --jobs 8 over $programs_dir)"
}

if [ "${1:-}" = "--determinism-only" ]; then
  [ $# -eq 3 ] || {
    echo "usage: $0 --determinism-only <argus-binary> <programs-dir>" >&2
    exit 2
  }
  determinism "$2" "$3"
  exit 0
fi

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j
(cd "$build_dir" && ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 4)")

determinism "$build_dir/tools/argus" "$repo_root/examples"
echo "all checks passed"
