#!/usr/bin/env sh
# tools/check.sh — the repo's one-command gate.
#
# Default mode configures, builds, and runs the full test suite, then
# verifies the engine's batch determinism guarantee end to end: the CLI
# must produce byte-identical JSON over a directory of programs whether
# it runs serially or on 8 worker threads.
#
#   tools/check.sh [build-dir]
#
# The determinism check is also wired into CTest (cli_batch_determinism),
# which invokes only that step to avoid recursing into ctest:
#
#   tools/check.sh --determinism-only <argus-binary> <programs-dir>
#
# The perf smoke gate re-runs the CLI with --stats and asserts ceilings
# on the *work counters* (goal evaluations, DNF conjuncts) and floors on
# the fast-path counters (candidates filtered, arena hash lookups).
# Counters are deterministic, so unlike wall-clock thresholds this can
# never flake; it catches a silently disabled fast path or an
# accidentally quadratic search. Also wired into CTest (cli_perf_smoke):
#
#   tools/check.sh --perf-smoke-only <argus-binary> <programs-dir>
#
# CHECK_SANITIZE=1 switches the full gate to an ASan+UBSan build in its
# own build directory (build-sanitize by default), running the same test
# suite — including the fuzz_smoke mutation loop — under the sanitizers.
# Documented in DESIGN.md ("Failure model and resource governance").
#
#   CHECK_SANITIZE=1 tools/check.sh [build-dir]
set -eu

determinism() {
  argus_bin="$1"
  programs_dir="$2"
  serial_out="${TMPDIR:-/tmp}/argus_batch_serial_$$.json"
  parallel_out="${TMPDIR:-/tmp}/argus_batch_parallel_$$.json"
  trap 'rm -f "$serial_out" "$parallel_out"' EXIT

  "$argus_bin" --batch "$programs_dir" --jobs 1 --json >"$serial_out" || true
  "$argus_bin" --batch "$programs_dir" --jobs 8 --json >"$parallel_out" || true

  if ! cmp -s "$serial_out" "$parallel_out"; then
    echo "FAIL: --jobs 8 output differs from --jobs 1 over $programs_dir" >&2
    diff "$serial_out" "$parallel_out" >&2 || true
    exit 1
  fi
  echo "batch determinism: OK (--jobs 1 == --jobs 8 over $programs_dir)"
}

perf_smoke() {
  argus_bin="$1"
  programs_dir="$2"

  # --mcs forces the analyze stage so the DNF counters are live; the CLI
  # exits nonzero when programs have trait errors, which is the point.
  stats_line=$("$argus_bin" --batch "$programs_dir" --mcs --stats \
                 2>/dev/null | grep '^stats: ' | tail -n 1) || true
  if [ -z "$stats_line" ]; then
    echo "FAIL: no 'stats:' line from $argus_bin --batch --mcs --stats" >&2
    exit 1
  fi

  counter() {
    printf '%s\n' "$stats_line" | tr ' ' '\n' | sed -n "s/^$1=//p"
  }
  assert_le() { # name value ceiling
    [ "$2" -le "$3" ] || {
      echo "FAIL: perf smoke: $1=$2 exceeds ceiling $3 ($stats_line)" >&2
      exit 1
    }
  }
  assert_ge() { # name value floor
    [ "$2" -ge "$3" ] || {
      echo "FAIL: perf smoke: $1=$2 below floor $3 ($stats_line)" >&2
      exit 1
    }
  }

  # Ceilings are ~3x the values measured over examples/ at the time the
  # gate was added (goal_evals=145, dnf_conjuncts=4), so corpus growth
  # has headroom but a regression to quadratic search cannot hide.
  assert_le goal_evals "$(counter goal_evals)" 450
  assert_le dnf_conjuncts "$(counter dnf_conjuncts)" 16
  assert_le dnf_truncations "$(counter dnf_truncations)" 0
  # Floors: the solver's candidate head index and the arena hash cache
  # must actually be doing something.
  assert_ge candidates_filtered "$(counter candidates_filtered)" 1
  assert_ge arena_hash_lookups "$(counter arena_hash_lookups)" 1
  echo "perf smoke: OK ($stats_line)"
}

if [ "${1:-}" = "--perf-smoke-only" ]; then
  [ $# -eq 3 ] || {
    echo "usage: $0 --perf-smoke-only <argus-binary> <programs-dir>" >&2
    exit 2
  }
  perf_smoke "$2" "$3"
  exit 0
fi

if [ "${1:-}" = "--determinism-only" ]; then
  [ $# -eq 3 ] || {
    echo "usage: $0 --determinism-only <argus-binary> <programs-dir>" >&2
    exit 2
  }
  determinism "$2" "$3"
  exit 0
fi

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
if [ "${CHECK_SANITIZE:-0}" = "1" ]; then
  build_dir="${1:-$repo_root/build-sanitize}"
  sanitize_flags="-fsanitize=address,undefined -fno-omit-frame-pointer -fno-sanitize-recover=all"
  cmake -B "$build_dir" -S "$repo_root" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="$sanitize_flags" \
    -DCMAKE_EXE_LINKER_FLAGS="$sanitize_flags"
else
  build_dir="${1:-$repo_root/build}"
  cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" -j
(cd "$build_dir" && ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 4)")

determinism "$build_dir/tools/argus" "$repo_root/examples"
perf_smoke "$build_dir/tools/argus" "$repo_root/examples"
echo "all checks passed"
