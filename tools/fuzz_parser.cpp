//===- tools/fuzz_parser.cpp - Self-driving parser fuzz smoke -*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free fuzz smoke for the L_TRAIT front end: mutates the
/// corpus sources with a seeded argus::Rng (byte flips, span
/// deletes/duplications, token insertions, cross-program splices) and
/// feeds every mutant to the Lexer/Parser. Mutants that still parse are
/// pushed through a tightly resource-governed Session pipeline, so the
/// degradation paths run under fuzz input too. The contract under test:
/// no input may crash, hang, or escape as an exception — bad programs
/// produce ParseResult errors or structured engine Failures, nothing
/// else.
///
/// Deterministic by construction (no wall-clock in the mutation
/// schedule): rerunning with the same --seed and --iterations reproduces
/// any crash exactly.
///
///   fuzz_parser [--iterations <n>] [--seed <n>] [--verbose] [--solve]
///
/// --solve turns every surviving mutant into a differential test of the
/// goal cache: the pipeline runs twice — cache off, then against one
/// GoalCache shared across all mutants of the run — and the renderings
/// must match byte for byte whenever neither run degraded. Mutants are a
/// nastier keyspace than any hand-written program: near-identical
/// sources whose entries must never replay across an observable
/// difference (the per-entry dependency fingerprints carry the whole
/// burden of isolation), and half-broken environments that stress the
/// cacheability predicate.
///
/// --solve also exercises the candidate-index axis: each mutant draws a
/// random point off the default configuration (prebuilt index and/or
/// subsumption disabled, from a per-mutant Rng so the mutation schedule
/// is untouched) and the rendering and exit code must match the default
/// run whenever neither degraded — the index and its pruning are pure
/// work-savers, invisible in every observable byte.
///
/// Wired into CTest as `fuzz_smoke` and `fuzz_solve_smoke`; also part of
/// the CHECK_SANITIZE=1 run (tools/check.sh), where ASan/UBSan watch the
/// same inputs.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "engine/Session.h"
#include "solver/GoalCache.h"
#include "support/Random.h"
#include "tlang/Parser.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace argus;

namespace {

/// Tokens the mutator splices in, biased toward the DSL's own grammar so
/// mutants stay near the interesting parse paths instead of dying at the
/// first byte.
const char *Dictionary[] = {
    "struct", "trait",        "impl",       "where", "goal",  "root_cause",
    "for",    "type",         "Sized",      "Self",  ":",     ";",
    "<",      ">",            ",",          "::",    "#[external]",
    "#[fn_trait]",            "//",         "<<",    ">>",    "<T>",
    "\n",     "\x00\x01\xff", "\xe2\x98\x83",
};

std::string mutate(Rng &R, const std::vector<std::string> &Corpus) {
  std::string S = Corpus[R.below(Corpus.size())];
  int Rounds = static_cast<int>(R.range(1, 8));
  for (int I = 0; I != Rounds; ++I) {
    switch (R.below(6)) {
    case 0: { // Flip one byte to an arbitrary value.
      if (S.empty())
        break;
      S[R.below(S.size())] = static_cast<char>(R.below(256));
      break;
    }
    case 1: { // Delete a short span.
      if (S.empty())
        break;
      size_t At = R.below(S.size());
      S.erase(At, R.below(16) + 1);
      break;
    }
    case 2: { // Duplicate a short span in place.
      if (S.empty())
        break;
      size_t At = R.below(S.size());
      size_t Len = std::min<size_t>(R.below(32) + 1, S.size() - At);
      S.insert(At, S.substr(At, Len));
      break;
    }
    case 3: { // Insert a dictionary token.
      size_t NumTokens = sizeof(Dictionary) / sizeof(Dictionary[0]);
      const char *Token = Dictionary[R.below(NumTokens)];
      S.insert(R.below(S.size() + 1), Token);
      break;
    }
    case 4: { // Splice: our prefix, another program's suffix.
      const std::string &Other = Corpus[R.below(Corpus.size())];
      size_t Cut = R.below(S.size() + 1);
      size_t OtherCut = R.below(Other.size() + 1);
      S = S.substr(0, Cut) + Other.substr(OtherCut);
      break;
    }
    case 5: { // Truncate.
      S.resize(R.below(S.size() + 1));
      break;
    }
    }
  }
  return S;
}

/// Limits for the post-parse pipeline run: small enough that even a
/// mutant that lands on a blowup shape finishes in microseconds, with
/// the wall-clock deadline as a backstop for anything the work counters
/// miss.
engine::SessionOptions governedOptions() {
  engine::SessionOptions Opts;
  Opts.Solver.MaxGoalEvaluations = 20000;
  for (size_t S = 0; S != engine::NumStages; ++S)
    Opts.Limits.StageWorkCeiling[S] = 50000;
  Opts.Limits.JobDeadlineSeconds = 2.0;
  return Opts;
}

/// Every rendering a consumer can observe, concatenated — the byte-level
/// artifact the --solve differential compares across cache modes.
std::string renderAll(engine::Session &S) {
  std::string Out;
  for (size_t T = 0; T != S.numTrees(); ++T) {
    Out += S.diagnosticText(T) + "\n";
    Out += S.bottomUpText(T) + "\n";
    Out += S.treeJSON(T) + "\n";
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Iterations = 3000;
  uint64_t Seed = 1;
  bool Verbose = false;
  bool SolveMode = false;
  for (int I = 1; I != Argc; ++I) {
    if (!strcmp(Argv[I], "--iterations") && I + 1 != Argc)
      Iterations = strtoull(Argv[++I], nullptr, 10);
    else if (!strcmp(Argv[I], "--seed") && I + 1 != Argc)
      Seed = strtoull(Argv[++I], nullptr, 10);
    else if (!strcmp(Argv[I], "--verbose"))
      Verbose = true;
    else if (!strcmp(Argv[I], "--solve"))
      SolveMode = true;
    else {
      fprintf(stderr,
              "usage: fuzz_parser [--iterations <n>] [--seed <n>]"
              " [--verbose] [--solve]\n");
      return 2;
    }
  }

  std::vector<std::string> Corpus;
  for (const CorpusEntry &Entry : evaluationSuite())
    Corpus.push_back(Entry.Source);
  for (const CorpusEntry &Entry : stressSuite())
    Corpus.push_back(Entry.Source);

  Rng R(Seed);
  const engine::SessionOptions GovOpts = governedOptions();
  // One cache outlives the whole --solve run, so near-identical mutants
  // cross-check the per-entry dependency checks (an entry may only
  // replay into a mutant whose consulted impls are byte-identical) and
  // entries accumulate the way they would in a long-lived shared-cache
  // batch.
  GoalCache SharedCache;
  uint64_t ParsedOk = 0, PipelineRuns = 0, Degraded = 0, Compared = 0;
  uint64_t AxisCompared = 0;
  std::string Current;
  for (uint64_t I = 0; I != Iterations; ++I) {
    Current = mutate(R, Corpus);
    try {
      bool Ok = false;
      {
        Session ArenaSess;
        Program Prog(ArenaSess);
        ParseResult Result = parseSource(Prog, "fuzz.tl", Current);
        Ok = Result.Success;
      }
      if (Ok) {
        ++ParsedOk;
        // Re-parse inside a governed Session and drive the full
        // pipeline; mutants exercise solver/extract/DNF degradation.
        engine::Session S("fuzz.tl", Current, GovOpts);
        if (S.parseOk()) {
          ++PipelineRuns;
          if (S.hasTraitErrors() && S.numTrees() != 0)
            (void)S.bottomUpText(0);
          if (S.stats().failed())
            ++Degraded;
          if (SolveMode) {
            std::string Uncached = renderAll(S);
            engine::SessionOptions CacheOpts = GovOpts;
            CacheOpts.Cache = engine::CacheMode::Shared;
            CacheOpts.SharedCache = &SharedCache;
            engine::Session Cached("fuzz.tl", Current, CacheOpts);
            std::string WithCache = renderAll(Cached);
            // Compare only clean-vs-clean: a governance stop (the
            // wall-clock backstop in particular) legitimately changes
            // the rendering, independent of the cache.
            if (!S.stats().degraded() && !Cached.stats().degraded()) {
              ++Compared;
              if (WithCache != Uncached) {
                fprintf(stderr,
                        "FAIL: cached rendering diverged at iteration"
                        " %llu (seed %llu)\n--- input ---\n%s\n--- end"
                        " ---\n--- uncached ---\n%s\n--- cached ---\n%s"
                        "\n--- end ---\n",
                        static_cast<unsigned long long>(I),
                        static_cast<unsigned long long>(Seed),
                        Current.c_str(), Uncached.c_str(),
                        WithCache.c_str());
                return 1;
              }
            }

            // Index/subsumption axis: rerun under a random per-mutant
            // index configuration. A separate Rng keyed on (seed,
            // iteration) keeps the mutation schedule byte-identical to a
            // non-solve run of the same seed.
            Rng Axis(Seed * 0x9e3779b97f4a7c15ULL + I);
            engine::SessionOptions AxisOpts = GovOpts;
            AxisOpts.Solver.EnableCandidateIndex = Axis.below(2) == 0;
            AxisOpts.Solver.EnableSubsumption = Axis.below(2) == 0;
            engine::Session Scan("fuzz.tl", Current, AxisOpts);
            std::string ScanOut = renderAll(Scan);
            if (!S.stats().degraded() && !Scan.stats().degraded()) {
              ++AxisCompared;
              if (ScanOut != Uncached ||
                  Scan.stats().exitCode() != S.stats().exitCode()) {
                fprintf(stderr,
                        "FAIL: index-axis rendering diverged at iteration"
                        " %llu (seed %llu, index=%d subsume=%d, exit %d vs"
                        " %d)\n--- input ---\n%s\n--- end ---\n--- default"
                        " ---\n%s\n--- axis ---\n%s\n--- end ---\n",
                        static_cast<unsigned long long>(I),
                        static_cast<unsigned long long>(Seed),
                        AxisOpts.Solver.EnableCandidateIndex ? 1 : 0,
                        AxisOpts.Solver.EnableSubsumption ? 1 : 0,
                        S.stats().exitCode(), Scan.stats().exitCode(),
                        Current.c_str(), Uncached.c_str(), ScanOut.c_str());
                return 1;
              }
            }
          }
        }
      }
    } catch (const std::exception &E) {
      fprintf(stderr,
              "FAIL: exception escaped the pipeline at iteration %llu"
              " (seed %llu): %s\n--- input ---\n%s\n--- end ---\n",
              static_cast<unsigned long long>(I),
              static_cast<unsigned long long>(Seed), E.what(),
              Current.c_str());
      return 1;
    } catch (...) {
      fprintf(stderr,
              "FAIL: non-std exception escaped at iteration %llu"
              " (seed %llu)\n--- input ---\n%s\n--- end ---\n",
              static_cast<unsigned long long>(I),
              static_cast<unsigned long long>(Seed), Current.c_str());
      return 1;
    }
    if (Verbose && (I + 1) % 500 == 0)
      fprintf(stderr, "fuzz: %llu/%llu (%llu parsed, %llu degraded)\n",
              static_cast<unsigned long long>(I + 1),
              static_cast<unsigned long long>(Iterations),
              static_cast<unsigned long long>(ParsedOk),
              static_cast<unsigned long long>(Degraded));
  }

  printf("fuzz_parser: OK — %llu mutants, %llu parsed, %llu pipeline runs,"
         " %llu degraded (seed %llu)\n",
         static_cast<unsigned long long>(Iterations),
         static_cast<unsigned long long>(ParsedOk),
         static_cast<unsigned long long>(PipelineRuns),
         static_cast<unsigned long long>(Degraded),
         static_cast<unsigned long long>(Seed));
  if (SolveMode)
    printf("fuzz_parser: --solve compared %llu clean runs (%llu on the"
           " index axis), cache holds %zu entries\n",
           static_cast<unsigned long long>(Compared),
           static_cast<unsigned long long>(AxisCompared),
           SharedCache.size());
  return 0;
}
