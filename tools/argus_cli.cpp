//===- tools/argus_cli.cpp - The argus command-line driver ----*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch front end: run the full Argus pipeline on one .tl program —
/// or, with --batch, on every .tl program in a directory, across a
/// thread pool — and emit any combination of renderings. This is what CI
/// or an editor plugin would shell out to. All pipeline wiring lives in
/// engine::Session; this file only parses flags and routes output.
///
///   argus <program.tl> [options]
///   argus --batch <dir> [options]
///
///   --diag           rustc-style static diagnostic (default)
///   --bottom-up      inertia-ranked bottom-up view (default)
///   --top-down       fully expanded top-down view
///   --mcs            minimum correction subsets with scores
///   --suggest        verified fix suggestions for the top failure
///   --json           idealized tree as JSON
///   --html <file>    standalone interactive HTML page (single-file only)
///   --show-internal  keep internal predicates in the tree
///   --check          exit status only: 0 if all goals hold, 1 otherwise
///   --batch <dir>    run every *.tl file in <dir> (sorted by name)
///   --jobs <n>       worker threads for --batch (default 1; output is
///                    byte-identical at any thread count)
///   --trace <file>   write per-stage timings and counters as JSON
///   --stats          print one summary line of SessionStats totals
///   --deadline <s>   per-job wall-clock deadline in seconds; overruns
///                    degrade to a partial result, they never hang
///   --retry-overruns rerun deadline/ceiling-stopped batch jobs once,
///                    serially, with 8x relaxed limits (--batch only)
///   --inject <sites> deterministic fault injection (testing); comma
///                    list of sites, e.g. "solve.overflow,worker.panic"
///   --inject-seed <n>   seed for probabilistic injection (default 0)
///   --inject-prob <p>   per-site fire probability (default 1.0)
///   --cache <mode>   goal-result cache: off (default), session (one
///                    cache per program), or shared (one cache across
///                    all batch jobs); --cache=<mode> also accepted
///   --cache-shards <n>  lock stripes in the goal cache (default 16)
///   --cache-cap <n>     max cached entries before eviction (default
///                       65536)
///   --cache-load <file>  warm-start the goal cache from a persisted
///                    image before solving. A missing or mangled image
///                    is rejected atomically (cache_load_rejected note,
///                    degraded exit 3) and the run proceeds cold with
///                    byte-identical output. Implies --cache shared
///                    (an explicit --cache session is upgraded; --cache
///                    off is a usage error).
///   --cache-save <file>  persist the goal cache after the run (atomic
///                    write-to-temp + rename). Same cache-mode rules as
///                    --cache-load; an unwritable path exits 2.
///   --no-index       disable the prebuilt candidate index (and with it
///                    the subsumption pass); the solver scans and
///                    filters impls lazily. Output is identical.
///   --no-subsume     keep the prebuilt index but skip the coherence-time
///                    impl-subsumption pass. Output is identical.
///   --dnf-kernel <k> DNF normalization kernel: auto (default; the cost
///                    model picks per tree), bitset, or reference;
///                    --dnf-kernel=<k> also accepted. Output is
///                    identical for every choice.
///   --edit-script <file>  replay successive revisions of one program
///                    (separated by lines consisting of "---") through
///                    an engine::EditSession: revisions share one goal
///                    cache whose per-entry dependency fingerprints
///                    carry results across edits. --cache off solves
///                    every revision cold instead (same output).
///   --version        print the version and exit
///
/// Exit codes (documented in README.md; batch mode exits with the worst
/// code over all jobs):
///   0  clean — or all goals hold
///   1  trait errors found (a successful debugging run, not a failure)
///   2  parse error, usage error, or I/O error
///   3  degraded result (deadline/work ceiling/cancellation/truncation)
///   4  worker panic in batch mode
///
//===----------------------------------------------------------------------===//

#include "engine/Batch.h"
#include "engine/EditSession.h"
#include "engine/Session.h"
#include "solver/CachePersist.h"
#include "tlang/Printer.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

using namespace argus;

#define ARGUS_CLI_VERSION "0.2.0"

namespace {

struct Options {
  std::string InputPath;
  std::string BatchDir;
  std::string EditScriptPath;
  std::string HTMLPath;
  std::string TracePath;
  std::string InjectSites;
  uint64_t InjectSeed = 0;
  double InjectProb = 1.0;
  double Deadline = 0.0;
  bool RetryOverruns = false;
  unsigned Jobs = 1;
  DNFKernel Kernel = DNFKernel::Auto;
  engine::CacheMode Cache = engine::CacheMode::Off;
  bool CacheSet = false;
  unsigned CacheShards = 16;
  size_t CacheCap = 65536;
  std::string CacheLoadPath;
  std::string CacheSavePath;
  bool Diag = false;
  bool BottomUp = false;
  bool TopDown = false;
  bool MCS = false;
  bool Suggest = false;
  bool JSON = false;
  bool ShowInternal = false;
  bool CheckOnly = false;
  bool Stats = false;
  bool NoIndex = false;
  bool NoSubsume = false;
};

int usage() {
  fprintf(stderr,
          "usage: argus <program.tl> [--diag] [--bottom-up] [--top-down]"
          " [--mcs]\n"
          "             [--suggest] [--json] [--html <file>]"
          " [--show-internal] [--check]\n"
          "             [--trace <file>] [--stats] [--deadline <seconds>]\n"
          "             [--inject <sites>] [--inject-seed <n>]"
          " [--inject-prob <p>]\n"
          "             [--cache off|session|shared] [--cache-shards <n>]"
          " [--cache-cap <n>]\n"
          "             [--cache-load <file>] [--cache-save <file>]\n"
          "             [--no-index] [--no-subsume]\n"
          "             [--dnf-kernel auto|bitset|reference]\n"
          "             [--version]\n"
          "       argus --batch <dir> [--jobs <n>] [--retry-overruns]"
          " [other options]\n"
          "       argus --edit-script <file> [other options]\n");
  return 2;
}

/// Everything the pipeline produced for one program, ready to route to
/// stdout/stderr (single mode) or into an ordered batch block.
struct Rendered {
  std::string Warnings; ///< Coherence warnings, one per line.
  std::string Body;     ///< Requested renderings, or the parse errors.
  int Exit = 0;         ///< 0 ok, 1 trait errors, 2 parse error.
};

void appendf(std::string &Out, const char *Format, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string &Out, const char *Format, ...) {
  va_list Args;
  va_start(Args, Format);
  char Stack[512];
  int Needed = vsnprintf(Stack, sizeof(Stack), Format, Args);
  va_end(Args);
  if (Needed < static_cast<int>(sizeof(Stack))) {
    Out.append(Stack, static_cast<size_t>(Needed));
    return;
  }
  std::string Big(static_cast<size_t>(Needed) + 1, '\0');
  va_start(Args, Format);
  vsnprintf(Big.data(), Big.size(), Format, Args);
  va_end(Args);
  Big.resize(static_cast<size_t>(Needed));
  Out += Big;
}

/// Runs every requested rendering for one program. \p HTMLPath is empty
/// in batch mode (checked during flag parsing).
Rendered renderProgram(engine::Session &S, const Options &Opts) {
  Rendered R;
  if (!S.parseOk()) {
    R.Body = S.parseErrorText();
    R.Exit = 2;
    return R;
  }

  // Coherence problems are program bugs worth flagging before solving.
  for (const CoherenceError &Error : S.coherence())
    appendf(R.Warnings, "warning: %s\n", Error.Message.c_str());

  if (Opts.CheckOnly) {
    R.Exit = S.hasTraitErrors() ? 1 : 0;
    return R;
  }

  if (S.numTrees() == 0) {
    appendf(R.Body, "all %zu goal(s) hold.\n",
            S.solve().FinalResults.size());
    R.Exit = 0;
    return R;
  }

  for (size_t T = 0; T != S.numTrees(); ++T) {
    if (S.numTrees() > 1)
      appendf(R.Body, "=== failing goal %zu of %zu ===\n", T + 1,
              S.numTrees());

    if (Opts.Diag)
      appendf(R.Body, "%s\n", S.diagnosticText(T).c_str());
    if (Opts.BottomUp)
      appendf(R.Body, "%s\n", S.bottomUpText(T).c_str());
    if (Opts.TopDown)
      appendf(R.Body, "%s\n", S.topDownText(T).c_str());
    if (Opts.MCS || Opts.Suggest) {
      const InertiaResult &Inertia = S.inertia(T);
      if (Opts.MCS) {
        TypePrinter Printer(S.program());
        appendf(R.Body, "minimum correction subsets:\n");
        for (size_t I = 0; I != Inertia.MCS.size(); ++I) {
          appendf(R.Body, "  score %zu: {", Inertia.ConjunctScores[I]);
          for (size_t J = 0; J != Inertia.MCS[I].size(); ++J)
            appendf(R.Body, "%s%s", J ? ", " : " ",
                    Printer.print(S.tree(T).goal(Inertia.MCS[I][J]).Pred)
                        .c_str());
          appendf(R.Body, " }\n");
        }
        appendf(R.Body, "\n");
      }
      if (Opts.Suggest && !Inertia.Order.empty()) {
        appendf(R.Body, "verified fix suggestions:\n");
        std::vector<FixSuggestion> Fixes = S.suggestTop(T);
        if (Fixes.empty())
          appendf(R.Body, "  (none found)\n");
        for (const FixSuggestion &Fix : Fixes)
          appendf(R.Body, "  - %s\n", Fix.Rendered.c_str());
        appendf(R.Body, "\n");
      }
    }
    if (Opts.JSON)
      appendf(R.Body, "%s\n", S.treeJSON(T, /*Pretty=*/true).c_str());
    if (!Opts.HTMLPath.empty()) {
      std::string Path = Opts.HTMLPath;
      if (S.numTrees() > 1)
        Path += "." + std::to_string(T);
      std::ofstream HTML(Path);
      if (!HTML) {
        fprintf(stderr, "argus: cannot write %s\n", Path.c_str());
        R.Exit = 2;
        return R;
      }
      HTMLExportOptions HOpts;
      HOpts.Title = "Argus: " + S.name();
      HTML << S.html(T, HOpts);
      fprintf(stderr, "wrote %s\n", Path.c_str());
    }
  }
  R.Exit = 1; // Trait errors found.
  return R;
}

/// One grep-able totals line, so batch perf is visible without parsing
/// the JSON trace. tools/check.sh's perf smoke gate parses these
/// key=value pairs; renaming a key is a format change.
void printStatsLine(const std::vector<const engine::SessionStats *> &All) {
  engine::SessionStats Sum;
  for (const engine::SessionStats *Stats : All) {
    Sum.GoalEvaluations += Stats->GoalEvaluations;
    Sum.MemoHits += Stats->MemoHits;
    Sum.SolverSteps += Stats->SolverSteps;
    Sum.CacheHits += Stats->CacheHits;
    Sum.CacheMisses += Stats->CacheMisses;
    Sum.CacheInserts += Stats->CacheInserts;
    Sum.CacheInsertsRejected += Stats->CacheInsertsRejected;
    Sum.CacheCrossRevHits += Stats->CacheCrossRevHits;
    Sum.CacheDepMisses += Stats->CacheDepMisses;
    Sum.CacheDiskEntriesLoaded += Stats->CacheDiskEntriesLoaded;
    Sum.CacheLoadRejects += Stats->CacheLoadRejects;
    Sum.CacheDiskHits += Stats->CacheDiskHits;
    Sum.ImplsInvalidated += Stats->ImplsInvalidated;
    Sum.CandidatesFiltered += Stats->CandidatesFiltered;
    Sum.IndexBucketHits += Stats->IndexBucketHits;
    Sum.ImplsSubsumed += Stats->ImplsSubsumed;
    Sum.DispatchExactPrunes += Stats->DispatchExactPrunes;
    Sum.DispatchCacheSkips += Stats->DispatchCacheSkips;
    Sum.DispatchReference += Stats->DispatchReference;
    Sum.DispatchBitset += Stats->DispatchBitset;
    Sum.DispatchForced += Stats->DispatchForced;
    Sum.TreesExtracted += Stats->TreesExtracted;
    Sum.TreeGoals += Stats->TreeGoals;
    Sum.FailedLeaves += Stats->FailedLeaves;
    Sum.DNFConjuncts += Stats->DNFConjuncts;
    Sum.DNFWordsTouched += Stats->DNFWordsTouched;
    Sum.DNFTruncations += Stats->DNFTruncations;
    Sum.ArenaHashLookups += Stats->ArenaHashLookups;
    Sum.TreeGoalsTruncated += Stats->TreeGoalsTruncated;
    Sum.DeadlineHits += Stats->DeadlineHits;
    Sum.Cancellations += Stats->Cancellations;
    Sum.WorkCeilingHits += Stats->WorkCeilingHits;
    Sum.FaultsInjected += Stats->FaultsInjected;
    for (const engine::Failure &F : Stats->Failures)
      Sum.Failures.push_back(F);
    for (size_t I = 0; I != engine::NumStages; ++I)
      Sum.StageSeconds[I] += Stats->StageSeconds[I];
  }
  printf("stats: programs=%zu goal_evals=%llu memo_hits=%llu"
         " solver_steps=%llu cache_hits=%llu cache_misses=%llu"
         " cache_inserts=%llu cache_inserts_rejected=%llu"
         " cache_cross_rev_hits=%llu cache_dep_misses=%llu"
         " cache_disk_entries_loaded=%llu cache_load_rejects=%llu"
         " cache_disk_hits=%llu"
         " impls_invalidated=%llu"
         " candidates_filtered=%llu"
         " index_bucket_hits=%llu impls_subsumed=%llu"
         " dispatch_exact_prunes=%llu dispatch_cache_skips=%llu"
         " dispatch_reference=%llu dispatch_bitset=%llu"
         " dispatch_forced=%llu trees=%zu tree_goals=%zu"
         " failed_leaves=%zu dnf_conjuncts=%zu dnf_words=%llu"
         " dnf_truncations=%llu arena_hash_lookups=%llu"
         " failures=%zu deadline_hits=%llu cancellations=%llu"
         " work_ceiling_hits=%llu faults_injected=%llu"
         " tree_goals_truncated=%zu total_seconds=%.6f\n",
         All.size(), static_cast<unsigned long long>(Sum.GoalEvaluations),
         static_cast<unsigned long long>(Sum.MemoHits),
         static_cast<unsigned long long>(Sum.SolverSteps),
         static_cast<unsigned long long>(Sum.CacheHits),
         static_cast<unsigned long long>(Sum.CacheMisses),
         static_cast<unsigned long long>(Sum.CacheInserts),
         static_cast<unsigned long long>(Sum.CacheInsertsRejected),
         static_cast<unsigned long long>(Sum.CacheCrossRevHits),
         static_cast<unsigned long long>(Sum.CacheDepMisses),
         static_cast<unsigned long long>(Sum.CacheDiskEntriesLoaded),
         static_cast<unsigned long long>(Sum.CacheLoadRejects),
         static_cast<unsigned long long>(Sum.CacheDiskHits),
         static_cast<unsigned long long>(Sum.ImplsInvalidated),
         static_cast<unsigned long long>(Sum.CandidatesFiltered),
         static_cast<unsigned long long>(Sum.IndexBucketHits),
         static_cast<unsigned long long>(Sum.ImplsSubsumed),
         static_cast<unsigned long long>(Sum.DispatchExactPrunes),
         static_cast<unsigned long long>(Sum.DispatchCacheSkips),
         static_cast<unsigned long long>(Sum.DispatchReference),
         static_cast<unsigned long long>(Sum.DispatchBitset),
         static_cast<unsigned long long>(Sum.DispatchForced),
         Sum.TreesExtracted, Sum.TreeGoals, Sum.FailedLeaves,
         Sum.DNFConjuncts,
         static_cast<unsigned long long>(Sum.DNFWordsTouched),
         static_cast<unsigned long long>(Sum.DNFTruncations),
         static_cast<unsigned long long>(Sum.ArenaHashLookups),
         Sum.Failures.size(),
         static_cast<unsigned long long>(Sum.DeadlineHits),
         static_cast<unsigned long long>(Sum.Cancellations),
         static_cast<unsigned long long>(Sum.WorkCeilingHits),
         static_cast<unsigned long long>(Sum.FaultsInjected),
         Sum.TreeGoalsTruncated, Sum.totalSeconds());
}

/// Renders one "note:" line per recorded Failure, so degradation is
/// visible without the JSON trace. Clean sessions contribute nothing —
/// required for the batch byte-identity guarantee (a governed job that
/// degrades must not perturb its siblings' blocks).
std::string failureNotes(const engine::SessionStats &Stats) {
  std::string Out;
  for (const engine::Failure &F : Stats.Failures)
    appendf(Out, "note: %s during %s: %s\n",
            engine::failureCodeName(F.Code), engine::stageName(F.At),
            F.Detail.c_str());
  return Out;
}

/// What --cache-load did, for stamping into a stats record after the
/// fact. In batch and edit-script modes the stamp happens after the
/// stdout blocks are printed and the rejection note goes to stderr, so
/// a rejected image never perturbs the byte-identity of the rendered
/// output against a cold run.
struct LoadOutcome {
  bool Attempted = false;
  uint64_t EntriesLoaded = 0;
  bool Rejected = false;
  std::string Detail;
};

LoadOutcome doCacheLoad(const Options &Opts, GoalCache &Cache,
                        FaultInjector *Faults) {
  LoadOutcome O;
  if (Opts.CacheLoadPath.empty())
    return O;
  O.Attempted = true;
  CacheLoadResult R =
      loadGoalCache(Cache, Opts.CacheLoadPath, Faults, Opts.CacheLoadPath);
  O.EntriesLoaded = R.EntriesLoaded;
  if (!R.ok()) {
    O.Rejected = true;
    O.Detail = std::string(cacheLoadStatusName(R.Status)) + ": " + R.Detail;
  }
  return O;
}

/// Post-run --cache-save. Returns the exit contribution: 0, or 2 when
/// the explicitly requested image cannot be written (the writeTrace
/// precedent for a requested output file).
int doCacheSave(const Options &Opts, const GoalCache &Cache,
                FaultInjector *Faults) {
  if (Opts.CacheSavePath.empty())
    return 0;
  CacheSaveResult R =
      saveGoalCache(Cache, Opts.CacheSavePath, Faults, Opts.CacheSavePath);
  if (!R.Ok) {
    fprintf(stderr, "argus: cannot save cache image %s: %s\n",
            Opts.CacheSavePath.c_str(), R.Detail.c_str());
    return 2;
  }
  return 0;
}

/// Folds a finished --cache-load into one stats record (counters, and on
/// rejection the structured failure + a stderr note + degraded exit).
void stampLoad(const LoadOutcome &Load, engine::SessionStats &Stats,
               int &Exit) {
  if (!Load.Attempted)
    return;
  Stats.CacheDiskEntriesLoaded += Load.EntriesLoaded;
  if (Load.Rejected) {
    ++Stats.CacheLoadRejects;
    Stats.Failures.push_back({engine::FailureCode::CacheLoadRejected,
                              engine::Stage::Solve, Load.Detail});
    fprintf(stderr, "note: cache_load_rejected during solve: %s\n",
            Load.Detail.c_str());
    Exit = std::max(Exit, 3);
  }
}

bool writeTrace(const std::string &Path, const std::string &JSON) {
  std::ofstream File(Path);
  if (!File) {
    fprintf(stderr, "argus: cannot write trace file %s\n", Path.c_str());
    return false;
  }
  File << JSON << "\n";
  return true;
}

int runBatch(const Options &Opts, const engine::SessionOptions &SessOpts,
             GoalCache *PersistCache, FaultInjector *Faults) {
  std::vector<engine::BatchJob> Jobs =
      engine::BatchDriver::jobsFromDirectory(Opts.BatchDir);
  if (Jobs.empty()) {
    fprintf(stderr, "argus: no .tl programs found in %s\n",
            Opts.BatchDir.c_str());
    return 2;
  }

  // Warm-start the shared cache before any worker spins up; loaded
  // entries sit behind the same admission and dependency checks as live
  // ones, so every job sees them only when a cold solve would have
  // produced the identical subtree.
  LoadOutcome Load;
  if (PersistCache)
    Load = doCacheLoad(Opts, *PersistCache, Faults);

  engine::BatchOptions BOpts;
  BOpts.RetryOverruns = Opts.RetryOverruns;
  engine::BatchDriver Driver(SessOpts, Opts.Jobs, BOpts);
  std::vector<engine::BatchResult> Results =
      Driver.run(Jobs, [&Opts](engine::Session &S) {
        Rendered R = renderProgram(S, Opts);
        std::string Block;
        Block += R.Warnings;
        Block += R.Body;
        return Block;
      });

  // The batch exits with the worst structured-failure code over all jobs
  // (2 parse, 3 degraded, 4 panic), folding in 1 for trait errors — so
  // the exit status is non-zero iff any job failed or any goal failed.
  int Exit = engine::BatchDriver::worstExitCode(Results);
  for (const engine::BatchResult &Result : Results) {
    printf("=== %s ===\n", Result.Name.c_str());
    if (Result.failed())
      printf("error: %s\n", Result.Error.c_str());
    else
      fputs(Result.Output.c_str(), stdout);
    fputs(failureNotes(Result.Stats).c_str(), stdout);
    if (Result.Retried)
      printf("note: retried serially with relaxed limits\n");
    if (Result.HasTraitErrors && Exit < 1)
      Exit = 1;
  }

  // Stamped after the stdout blocks so a rejected image shows up in the
  // stats/trace (and on stderr) without perturbing the rendered output.
  stampLoad(Load, Results.front().Stats, Exit);

  if (Opts.Stats) {
    std::vector<const engine::SessionStats *> All;
    All.reserve(Results.size());
    for (const engine::BatchResult &Result : Results)
      All.push_back(&Result.Stats);
    printStatsLine(All);
  }

  if (!Opts.TracePath.empty() &&
      !writeTrace(Opts.TracePath,
                  engine::BatchDriver::statsTraceJSON(Results, Opts.Jobs)))
    return 2;
  if (PersistCache)
    Exit = std::max(Exit, doCacheSave(Opts, *PersistCache, Faults));
  return Exit;
}

int runSingle(const Options &Opts, const engine::SessionOptions &SessOpts,
              GoalCache *PersistCache, FaultInjector *Faults) {
  std::optional<engine::Session> S =
      engine::Session::open(Opts.InputPath, SessOpts);
  if (!S) {
    fprintf(stderr, "argus: cannot open %s\n", Opts.InputPath.c_str());
    return 2;
  }

  // Warm-start before the pipeline runs. noteCacheLoad records a
  // rejection as a structured failure, so the note reaches stderr and
  // the exit degrades to 3 through the ordinary stats plumbing.
  if (PersistCache && !Opts.CacheLoadPath.empty()) {
    LoadOutcome Load = doCacheLoad(Opts, *PersistCache, Faults);
    S->noteCacheLoad(Load.EntriesLoaded, Load.Rejected, Load.Detail);
  }

  Rendered R = renderProgram(*S, Opts);
  if (!S->parseOk()) {
    fprintf(stderr, "%s", R.Body.c_str());
    int Exit = std::max(R.Exit, S->stats().exitCode());
    if (PersistCache)
      Exit = std::max(Exit, doCacheSave(Opts, *PersistCache, Faults));
    return Exit;
  }
  fputs(R.Warnings.c_str(), stderr);
  fputs(R.Body.c_str(), stdout);
  // Degradations go to stderr so stdout stays a pure rendering.
  fputs(failureNotes(S->stats()).c_str(), stderr);

  if (Opts.Stats)
    printStatsLine({&S->stats()});

  if (!Opts.TracePath.empty()) {
    JSONWriter Writer(/*Pretty=*/true);
    Writer.beginObject();
    Writer.keyValue("jobs", static_cast<uint64_t>(1));
    Writer.keyValue("programs_total", static_cast<uint64_t>(1));
    Writer.key("programs");
    Writer.beginArray();
    S->stats().writeJSON(Writer);
    Writer.endArray();
    Writer.endObject();
    if (!writeTrace(Opts.TracePath, Writer.str()))
      return 2;
  }
  // A degraded session outranks "trait errors found" (3 > 1): the
  // rendering may be partial, and callers need to know.
  int Exit = std::max(R.Exit, S->stats().exitCode());
  if (PersistCache)
    Exit = std::max(Exit, doCacheSave(Opts, *PersistCache, Faults));
  return Exit;
}

/// Splits an edit script into revisions at each line consisting solely
/// of "---" (the separator line belongs to neither revision).
std::vector<std::string> splitRevisions(const std::string &Text) {
  std::vector<std::string> Revs(1);
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    size_t LineEnd = Eol == std::string::npos ? Text.size() : Eol;
    std::string_view Line(Text.data() + Pos, LineEnd - Pos);
    if (!Line.empty() && Line.back() == '\r')
      Line.remove_suffix(1);
    if (Line == "---") {
      Revs.emplace_back();
    } else {
      Revs.back().append(Text, Pos, LineEnd - Pos);
      Revs.back() += '\n';
    }
    if (Eol == std::string::npos)
      break;
    Pos = Eol + 1;
  }
  // A trailing separator would leave an empty final revision; drop it.
  if (Revs.size() > 1 &&
      Revs.back().find_first_not_of(" \t\r\n") == std::string::npos)
    Revs.pop_back();
  return Revs;
}

/// Replays every revision of the script through one EditSession. Output
/// is a "=== rev N of M ===" block per revision, byte-identical whether
/// the cache carries results across revisions (--cache shared, the
/// default here via EditSession) or every revision solves cold
/// (--cache off) — that identity is what tools/check.sh's edit_diff
/// gate asserts.
int runEditScript(const Options &Opts,
                  const engine::SessionOptions &SessOpts,
                  FaultInjector *Faults) {
  std::ifstream File(Opts.EditScriptPath);
  if (!File) {
    fprintf(stderr, "argus: cannot open %s\n", Opts.EditScriptPath.c_str());
    return 2;
  }
  std::string Text((std::istreambuf_iterator<char>(File)),
                   std::istreambuf_iterator<char>());
  std::vector<std::string> Revs = splitRevisions(Text);

  engine::EditSession Edit(Opts.EditScriptPath, SessOpts);
  // Load-on-start: a script restarted mid-edit resumes warm from the
  // image its earlier run saved. The load is raw (not Edit.loadCache)
  // so the outcome is stamped after the stdout blocks are printed —
  // revision output stays byte-identical to a cold replay even when the
  // image is rejected.
  LoadOutcome Load;
  if (SessOpts.Cache != engine::CacheMode::Off)
    Load = doCacheLoad(Opts, Edit.cache(), Faults);
  std::vector<engine::SessionStats> AllStats;
  AllStats.reserve(Revs.size());
  int Exit = 0;
  for (size_t R = 0; R != Revs.size(); ++R) {
    engine::Session &S = Edit.apply(std::move(Revs[R]));
    printf("=== rev %zu of %zu ===\n", R + 1, Revs.size());
    Rendered Out = renderProgram(S, Opts);
    // Like batch blocks, warnings and notes stay on stdout in revision
    // order so the whole replay is one diffable stream.
    fputs(Out.Warnings.c_str(), stdout);
    fputs(Out.Body.c_str(), stdout);
    fputs(failureNotes(S.stats()).c_str(), stdout);
    Exit = std::max(Exit, std::max(Out.Exit, S.stats().exitCode()));
    AllStats.push_back(S.stats());
  }

  if (!AllStats.empty())
    stampLoad(Load, AllStats.front(), Exit);

  if (Opts.Stats) {
    std::vector<const engine::SessionStats *> All;
    All.reserve(AllStats.size());
    for (const engine::SessionStats &Stats : AllStats)
      All.push_back(&Stats);
    printStatsLine(All);
  }

  if (!Opts.TracePath.empty()) {
    JSONWriter Writer(/*Pretty=*/true);
    Writer.beginObject();
    Writer.keyValue("jobs", static_cast<uint64_t>(1));
    Writer.keyValue("programs_total",
                    static_cast<uint64_t>(AllStats.size()));
    Writer.key("programs");
    Writer.beginArray();
    for (const engine::SessionStats &Stats : AllStats)
      Stats.writeJSON(Writer);
    Writer.endArray();
    Writer.endObject();
    if (!writeTrace(Opts.TracePath, Writer.str()))
      return 2;
  }
  // Save-on-exit: the next invocation of the script warm-starts here.
  if (!Opts.CacheSavePath.empty() &&
      SessOpts.Cache != engine::CacheMode::Off) {
    std::string Error;
    if (!Edit.saveCache(Opts.CacheSavePath, Faults, &Error)) {
      fprintf(stderr, "argus: cannot save cache image %s: %s\n",
              Opts.CacheSavePath.c_str(), Error.c_str());
      Exit = std::max(Exit, 2);
    }
  }
  return Exit;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--version") {
      printf("argus " ARGUS_CLI_VERSION "\n");
      return 0;
    }
    if (Arg == "--diag")
      Opts.Diag = true;
    else if (Arg == "--bottom-up")
      Opts.BottomUp = true;
    else if (Arg == "--top-down")
      Opts.TopDown = true;
    else if (Arg == "--mcs")
      Opts.MCS = true;
    else if (Arg == "--suggest")
      Opts.Suggest = true;
    else if (Arg == "--json")
      Opts.JSON = true;
    else if (Arg == "--show-internal")
      Opts.ShowInternal = true;
    else if (Arg == "--check")
      Opts.CheckOnly = true;
    else if (Arg == "--stats")
      Opts.Stats = true;
    else if (Arg == "--retry-overruns")
      Opts.RetryOverruns = true;
    else if (Arg == "--no-index")
      Opts.NoIndex = true;
    else if (Arg == "--no-subsume")
      Opts.NoSubsume = true;
    else if (Arg == "--deadline") {
      if (++I == Argc) {
        fprintf(stderr, "argus: --deadline requires a seconds argument\n");
        return usage();
      }
      char *End = nullptr;
      double Value = strtod(Argv[I], &End);
      if (!End || *End != '\0' || !(Value > 0.0)) {
        fprintf(stderr, "argus: invalid --deadline '%s'\n", Argv[I]);
        return usage();
      }
      Opts.Deadline = Value;
    } else if (Arg == "--inject") {
      if (++I == Argc) {
        fprintf(stderr, "argus: --inject requires a site list argument\n");
        return usage();
      }
      Opts.InjectSites = Argv[I];
    } else if (Arg == "--inject-seed") {
      if (++I == Argc) {
        fprintf(stderr, "argus: --inject-seed requires a number\n");
        return usage();
      }
      char *End = nullptr;
      unsigned long long Value = strtoull(Argv[I], &End, 10);
      if (!End || *End != '\0') {
        fprintf(stderr, "argus: invalid --inject-seed '%s'\n", Argv[I]);
        return usage();
      }
      Opts.InjectSeed = Value;
    } else if (Arg == "--inject-prob") {
      if (++I == Argc) {
        fprintf(stderr, "argus: --inject-prob requires a probability\n");
        return usage();
      }
      char *End = nullptr;
      double Value = strtod(Argv[I], &End);
      if (!End || *End != '\0' || Value < 0.0 || Value > 1.0) {
        fprintf(stderr, "argus: invalid --inject-prob '%s'\n", Argv[I]);
        return usage();
      }
      Opts.InjectProb = Value;
    } else if (Arg == "--cache" || Arg.rfind("--cache=", 0) == 0) {
      std::string Mode;
      if (Arg == "--cache") {
        if (++I == Argc) {
          fprintf(stderr, "argus: --cache requires a mode argument\n");
          return usage();
        }
        Mode = Argv[I];
      } else {
        Mode = Arg.substr(sizeof("--cache=") - 1);
      }
      Opts.CacheSet = true;
      if (Mode == "off")
        Opts.Cache = engine::CacheMode::Off;
      else if (Mode == "session")
        Opts.Cache = engine::CacheMode::Session;
      else if (Mode == "shared")
        Opts.Cache = engine::CacheMode::Shared;
      else {
        fprintf(stderr,
                "argus: invalid --cache mode '%s'"
                " (expected off, session, or shared)\n",
                Mode.c_str());
        return usage();
      }
    } else if (Arg == "--dnf-kernel" || Arg.rfind("--dnf-kernel=", 0) == 0) {
      std::string Kernel;
      if (Arg == "--dnf-kernel") {
        if (++I == Argc) {
          fprintf(stderr, "argus: --dnf-kernel requires a kernel argument\n");
          return usage();
        }
        Kernel = Argv[I];
      } else {
        Kernel = Arg.substr(sizeof("--dnf-kernel=") - 1);
      }
      if (Kernel == "auto")
        Opts.Kernel = DNFKernel::Auto;
      else if (Kernel == "bitset")
        Opts.Kernel = DNFKernel::Bitset;
      else if (Kernel == "reference")
        Opts.Kernel = DNFKernel::Reference;
      else {
        fprintf(stderr,
                "argus: invalid --dnf-kernel '%s'"
                " (expected auto, bitset, or reference)\n",
                Kernel.c_str());
        return usage();
      }
    } else if (Arg == "--cache-shards") {
      if (++I == Argc) {
        fprintf(stderr, "argus: --cache-shards requires a count argument\n");
        return usage();
      }
      char *End = nullptr;
      long Value = strtol(Argv[I], &End, 10);
      if (!End || *End != '\0' || Value < 1 || Value > 4096) {
        fprintf(stderr, "argus: invalid --cache-shards count '%s'\n",
                Argv[I]);
        return usage();
      }
      Opts.CacheShards = static_cast<unsigned>(Value);
    } else if (Arg == "--cache-cap") {
      if (++I == Argc) {
        fprintf(stderr, "argus: --cache-cap requires a count argument\n");
        return usage();
      }
      char *End = nullptr;
      unsigned long long Value = strtoull(Argv[I], &End, 10);
      if (!End || *End != '\0' || Value < 1) {
        fprintf(stderr, "argus: invalid --cache-cap count '%s'\n", Argv[I]);
        return usage();
      }
      Opts.CacheCap = static_cast<size_t>(Value);
    } else if (Arg == "--cache-load") {
      if (++I == Argc) {
        fprintf(stderr, "argus: --cache-load requires a file argument\n");
        return usage();
      }
      Opts.CacheLoadPath = Argv[I];
    } else if (Arg == "--cache-save") {
      if (++I == Argc) {
        fprintf(stderr, "argus: --cache-save requires a file argument\n");
        return usage();
      }
      Opts.CacheSavePath = Argv[I];
    } else if (Arg == "--html") {
      if (++I == Argc) {
        fprintf(stderr, "argus: --html requires a file argument\n");
        return usage();
      }
      Opts.HTMLPath = Argv[I];
    } else if (Arg == "--batch") {
      if (++I == Argc) {
        fprintf(stderr, "argus: --batch requires a directory argument\n");
        return usage();
      }
      Opts.BatchDir = Argv[I];
    } else if (Arg == "--edit-script") {
      if (++I == Argc) {
        fprintf(stderr, "argus: --edit-script requires a file argument\n");
        return usage();
      }
      Opts.EditScriptPath = Argv[I];
    } else if (Arg == "--trace") {
      if (++I == Argc) {
        fprintf(stderr, "argus: --trace requires a file argument\n");
        return usage();
      }
      Opts.TracePath = Argv[I];
    } else if (Arg == "--jobs") {
      if (++I == Argc) {
        fprintf(stderr, "argus: --jobs requires a count argument\n");
        return usage();
      }
      char *End = nullptr;
      long Value = strtol(Argv[I], &End, 10);
      if (!End || *End != '\0' || Value < 1 || Value > 1024) {
        fprintf(stderr, "argus: invalid --jobs count '%s'\n", Argv[I]);
        return usage();
      }
      Opts.Jobs = static_cast<unsigned>(Value);
    } else if (!Arg.empty() && Arg[0] == '-') {
      fprintf(stderr, "argus: unknown option %s\n", Arg.c_str());
      return usage();
    } else if (Opts.InputPath.empty()) {
      Opts.InputPath = Arg;
    } else {
      fprintf(stderr, "argus: unexpected extra argument %s\n", Arg.c_str());
      return usage();
    }
  }

  bool Batch = !Opts.BatchDir.empty();
  bool EditScript = !Opts.EditScriptPath.empty();
  if (EditScript && (Batch || !Opts.InputPath.empty())) {
    fprintf(stderr, "argus: --edit-script cannot be combined with --batch"
                    " or a program argument\n");
    return usage();
  }
  if (!EditScript && Batch == !Opts.InputPath.empty()) {
    fprintf(stderr, Batch
                        ? "argus: --batch cannot be combined with a "
                          "program argument\n"
                        : "argus: no input program\n");
    return usage();
  }
  if ((Batch || EditScript) && !Opts.HTMLPath.empty()) {
    fprintf(stderr, "argus: --html is not supported with --batch or"
                    " --edit-script\n");
    return usage();
  }
  if (!Batch && Opts.RetryOverruns) {
    fprintf(stderr, "argus: --retry-overruns requires --batch\n");
    return usage();
  }
  bool Persist = !Opts.CacheLoadPath.empty() || !Opts.CacheSavePath.empty();
  // A persisted image without a cache to fill would silently do nothing;
  // reject the contradiction like an unknown flag instead.
  if (Persist && Opts.CacheSet && Opts.Cache == engine::CacheMode::Off) {
    fprintf(stderr, "argus: --cache off cannot be combined with"
                    " --cache-load or --cache-save\n");
    return usage();
  }
  // Persistence needs one cache for the whole invocation: default the
  // mode to shared, and upgrade an explicit --cache session (per-program
  // caches cannot share one image; output is byte-identical across cache
  // modes by the solver's splice invariant, so the upgrade is free).
  if (Persist)
    Opts.Cache = engine::CacheMode::Shared;
  // Carrying results across revisions is the point of an edit session;
  // --cache off remains available as the explicit cold baseline.
  if (EditScript && !Opts.CacheSet)
    Opts.Cache = engine::CacheMode::Shared;
  if (!Opts.Diag && !Opts.BottomUp && !Opts.TopDown && !Opts.MCS &&
      !Opts.Suggest && !Opts.JSON && Opts.HTMLPath.empty() &&
      !Opts.CheckOnly) {
    Opts.Diag = true;
    Opts.BottomUp = true;
  }

  engine::SessionOptions SessOpts;
  SessOpts.Solver.EnableCandidateIndex = !Opts.NoIndex;
  SessOpts.Solver.EnableSubsumption = !Opts.NoSubsume;
  SessOpts.Extract.ShowInternal = Opts.ShowInternal;
  SessOpts.Analysis.Kernel = Opts.Kernel;
  SessOpts.Cache = Opts.Cache;
  SessOpts.CacheShards = Opts.CacheShards;
  SessOpts.CacheCap = Opts.CacheCap;
  SessOpts.Limits.JobDeadlineSeconds = Opts.Deadline;
  SessOpts.Faults.Sites = Opts.InjectSites;
  SessOpts.Faults.Seed = Opts.InjectSeed;
  SessOpts.Faults.Probability = Opts.InjectProb;

  // Persistence I/O runs outside any Session, so the cache.io /
  // cache.load_corrupt sites are probed by a CLI-owned injector built
  // from the same --inject flags (scoped by the image path).
  std::optional<FaultInjector> PersistFaults;
  if (Persist && !Opts.InjectSites.empty())
    PersistFaults.emplace(Opts.InjectSites, Opts.InjectSeed,
                          Opts.InjectProb);
  FaultInjector *PF = PersistFaults ? &*PersistFaults : nullptr;

  // One invocation-wide cache for --cache-load/--cache-save in single
  // and batch modes (edit scripts use the EditSession's own cache). The
  // BatchDriver and every Session borrow it via SharedCache.
  std::unique_ptr<GoalCache> CliCache;
  if (Persist && !EditScript) {
    GoalCache::Config Config;
    Config.Shards = Opts.CacheShards;
    Config.Capacity = Opts.CacheCap;
    CliCache = std::make_unique<GoalCache>(Config);
    SessOpts.SharedCache = CliCache.get();
  }

  if (Batch)
    return runBatch(Opts, SessOpts, CliCache.get(), PF);
  if (EditScript)
    return runEditScript(Opts, SessOpts, PF);
  return runSingle(Opts, SessOpts, CliCache.get(), PF);
}
