//===- tools/argus_cli.cpp - The argus command-line driver ----*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch front end: run the full Argus pipeline on a .tl program and
/// emit any combination of renderings. This is what CI or an editor
/// plugin would shell out to.
///
///   argus <program.tl> [options]
///
///   --diag           rustc-style static diagnostic (default)
///   --bottom-up      inertia-ranked bottom-up view (default)
///   --top-down       fully expanded top-down view
///   --mcs            minimum correction subsets with scores
///   --suggest        verified fix suggestions for the top failure
///   --json           idealized tree as JSON
///   --html <file>    standalone interactive HTML page
///   --show-internal  keep internal predicates in the tree
///   --check          exit status only: 0 if all goals hold, 1 otherwise
///
//===----------------------------------------------------------------------===//

#include "analysis/Inertia.h"
#include "analysis/Suggestions.h"
#include "diagnostics/Diagnostics.h"
#include "extract/Extract.h"
#include "extract/TreeJSON.h"
#include "interface/HTMLExport.h"
#include "interface/View.h"
#include "solver/Coherence.h"
#include "tlang/Parser.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace argus;

namespace {

struct Options {
  std::string InputPath;
  std::string HTMLPath;
  bool Diag = false;
  bool BottomUp = false;
  bool TopDown = false;
  bool MCS = false;
  bool Suggest = false;
  bool JSON = false;
  bool ShowInternal = false;
  bool CheckOnly = false;
};

int usage() {
  fprintf(stderr,
          "usage: argus <program.tl> [--diag] [--bottom-up] [--top-down]"
          " [--mcs]\n"
          "             [--suggest] [--json] [--html <file>]"
          " [--show-internal] [--check]\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--diag")
      Opts.Diag = true;
    else if (Arg == "--bottom-up")
      Opts.BottomUp = true;
    else if (Arg == "--top-down")
      Opts.TopDown = true;
    else if (Arg == "--mcs")
      Opts.MCS = true;
    else if (Arg == "--suggest")
      Opts.Suggest = true;
    else if (Arg == "--json")
      Opts.JSON = true;
    else if (Arg == "--show-internal")
      Opts.ShowInternal = true;
    else if (Arg == "--check")
      Opts.CheckOnly = true;
    else if (Arg == "--html") {
      if (++I == Argc)
        return usage();
      Opts.HTMLPath = Argv[I];
    } else if (!Arg.empty() && Arg[0] == '-') {
      fprintf(stderr, "unknown option %s\n", Arg.c_str());
      return usage();
    } else if (Opts.InputPath.empty()) {
      Opts.InputPath = Arg;
    } else {
      return usage();
    }
  }
  if (Opts.InputPath.empty())
    return usage();
  if (!Opts.Diag && !Opts.BottomUp && !Opts.TopDown && !Opts.MCS &&
      !Opts.Suggest && !Opts.JSON && Opts.HTMLPath.empty() &&
      !Opts.CheckOnly) {
    Opts.Diag = true;
    Opts.BottomUp = true;
  }

  std::ifstream File(Opts.InputPath);
  if (!File) {
    fprintf(stderr, "argus: cannot open %s\n", Opts.InputPath.c_str());
    return 2;
  }
  std::ostringstream Buffer;
  Buffer << File.rdbuf();

  Session S;
  Program Prog(S);
  ParseResult Parsed = parseSource(Prog, Opts.InputPath, Buffer.str());
  if (!Parsed.Success) {
    fprintf(stderr, "%s", Parsed.describe(S.sources()).c_str());
    return 2;
  }

  // Coherence problems are program bugs worth flagging before solving.
  for (const CoherenceError &Error : checkCoherence(Prog))
    fprintf(stderr, "warning: %s\n", Error.Message.c_str());

  Solver Solve(Prog);
  SolveOutcome Out = Solve.solve();
  ExtractOptions ExOpts;
  ExOpts.ShowInternal = Opts.ShowInternal;
  Extraction Ex = extractTrees(Prog, Out, Solve.inferContext(), ExOpts);

  if (Opts.CheckOnly)
    return Out.hasErrors() ? 1 : 0;

  if (Ex.Trees.empty()) {
    printf("all %zu goal(s) hold.\n", Out.FinalResults.size());
    return 0;
  }

  for (size_t T = 0; T != Ex.Trees.size(); ++T) {
    const InferenceTree &Tree = Ex.Trees[T];
    if (Ex.Trees.size() > 1)
      printf("=== failing goal %zu of %zu ===\n", T + 1,
             Ex.Trees.size());

    if (Opts.Diag) {
      DiagnosticRenderer Renderer(Prog);
      printf("%s\n", Renderer.render(Tree).Text.c_str());
    }
    if (Opts.BottomUp) {
      ArgusInterface UI(Prog, Tree);
      printf("%s\n", UI.renderText().c_str());
    }
    if (Opts.TopDown) {
      ArgusInterface UI(Prog, Tree);
      UI.setActiveView(ViewKind::TopDown);
      UI.expandAll();
      printf("%s\n", UI.renderText().c_str());
    }
    if (Opts.MCS || Opts.Suggest) {
      InertiaResult Inertia = rankByInertia(Prog, Tree);
      if (Opts.MCS) {
        TypePrinter Printer(Prog);
        printf("minimum correction subsets:\n");
        for (size_t I = 0; I != Inertia.MCS.size(); ++I) {
          printf("  score %zu: {", Inertia.ConjunctScores[I]);
          for (size_t J = 0; J != Inertia.MCS[I].size(); ++J)
            printf("%s%s", J ? ", " : " ",
                   Printer.print(Tree.goal(Inertia.MCS[I][J]).Pred)
                       .c_str());
          printf(" }\n");
        }
        printf("\n");
      }
      if (Opts.Suggest && !Inertia.Order.empty()) {
        printf("verified fix suggestions:\n");
        std::vector<FixSuggestion> Fixes =
            suggestFixes(Prog, Tree.goal(Inertia.Order[0]).Pred);
        if (Fixes.empty())
          printf("  (none found)\n");
        for (const FixSuggestion &Fix : Fixes)
          printf("  - %s\n", Fix.Rendered.c_str());
        printf("\n");
      }
    }
    if (Opts.JSON)
      printf("%s\n", treeToJSON(Prog, Tree, /*Pretty=*/true).c_str());
    if (!Opts.HTMLPath.empty()) {
      std::string Path = Opts.HTMLPath;
      if (Ex.Trees.size() > 1)
        Path += "." + std::to_string(T);
      std::ofstream HTML(Path);
      if (!HTML) {
        fprintf(stderr, "argus: cannot write %s\n", Path.c_str());
        return 2;
      }
      HTMLExportOptions HOpts;
      HOpts.Title = "Argus: " + Opts.InputPath;
      HTML << treeToHTML(Prog, Tree, HOpts);
      fprintf(stderr, "wrote %s\n", Path.c_str());
    }
  }
  return 1; // Trait errors found.
}
