//===- study/StudyTasks.cpp -----------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "study/StudyTasks.h"

#include "analysis/CompilerDistance.h"
#include "corpus/Corpus.h"
#include "engine/Session.h"

#include <cassert>

using namespace argus;

namespace {

/// The corpus entries used as study tasks: one per real-library family
/// plus one extra Bevy task (as in the paper's materials), the recursion
/// task, and the two synthetic libraries.
const char *StudyTaskIds[] = {
    "diesel-missing-join",   "bevy-resmut-missing",
    "bevy-assets-mesh",      "axum-handler-deserialize",
    "ast-assoc-recursion",   "brew-incompatible-ingredients",
    "space-unreachable-route",
};

StudyTask buildTask(const CorpusEntry &Entry) {
  engine::Session ES(Entry.Id + ".tl", Entry.Source);
  assert(ES.parseOk() && "corpus fixtures must parse");
  const Program &Prog = ES.program();

  assert(ES.numTrees() == 1 && "study task must fail with one tree");
  const InferenceTree &Tree = ES.tree(0);

  StudyTask Task;
  Task.Id = Entry.Id;
  Task.Family = Entry.Family;
  Task.TreeSize = Tree.size();

  const InertiaResult &Inertia = ES.inertia(0);
  Task.NumLeaves = Inertia.Order.size();

  // Locate the ground truth among the ranked leaves (by predicate).
  Task.TruthRank = Task.NumLeaves;
  IGoalId TruthNode;
  for (const Predicate &Truth : Prog.rootCauses()) {
    for (size_t I = 0; I != Inertia.Order.size(); ++I)
      if (Tree.goal(Inertia.Order[I]).Pred == Truth) {
        Task.TruthRank = std::min(Task.TruthRank, I);
        if (!TruthNode.isValid())
          TruthNode = Inertia.Order[I];
      }
    if (!TruthNode.isValid())
      TruthNode = findGoalByPredicate(Tree, Truth);
  }
  assert(TruthNode.isValid() && "ground truth must exist in the tree");

  Task.FixWeight =
      classifyGoal(Prog, Tree.goal(TruthNode).Pred).weight();

  RenderedDiagnostic Diag = ES.diagnostic(0);
  Task.CompilerDistance = nodeDistance(Tree, Diag.ReportedNode, TruthNode);
  Task.DiagnosticMentionsTruth = false;
  for (IGoalId Goal : Diag.MentionedGoals)
    if (Tree.goal(Goal).Pred == Tree.goal(TruthNode).Pred)
      Task.DiagnosticMentionsTruth = true;

  return Task;
}

} // namespace

std::vector<StudyTask> argus::buildStudyTasks() {
  std::vector<StudyTask> Tasks;
  for (const char *Id : StudyTaskIds) {
    const CorpusEntry *Found = nullptr;
    for (const CorpusEntry &Entry : evaluationSuite())
      if (Entry.Id == Id)
        Found = &Entry;
    assert(Found && "study task id missing from the corpus");
    Tasks.push_back(buildTask(*Found));
  }
  return Tasks;
}
