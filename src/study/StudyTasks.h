//===- study/StudyTasks.h - Task models for the simulated study *- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the seven debugging tasks of the user study (Section 5.1.1)
/// from corpus programs, and precomputes the *mechanical* facts that
/// drive the simulated developer: where inertia ranks the ground truth in
/// the bottom-up view, whether the rustc diagnostic text mentions the
/// root cause at all (it does not for branch-point tasks — the Bevy
/// observation), how many inference steps separate the diagnostic's
/// blamed node from the truth, and how heavy the eventual fix is.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_STUDY_STUDYTASKS_H
#define ARGUS_STUDY_STUDYTASKS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace argus {

/// The mechanical profile of one debugging task, precomputed by running
/// the full pipeline (solve, extract, rank, render) on its program.
struct StudyTask {
  std::string Id;
  std::string Family;

  /// 0-based index of the ground truth in the inertia-ranked bottom-up
  /// view; equals NumLeaves when the truth is not a leaf (overflow
  /// tasks).
  size_t TruthRank = 0;
  size_t NumLeaves = 0;

  /// True if the rustc-style diagnostic text contains the ground-truth
  /// predicate. False exactly for the branch-point tasks, where the text
  /// stops above the root cause.
  bool DiagnosticMentionsTruth = false;

  /// Goal-edges between the diagnostic's blamed node and the truth.
  size_t CompilerDistance = 0;

  /// Appendix A.1 weight of the ground truth's category: the model of
  /// fix complexity.
  size_t FixWeight = 0;

  /// Idealized tree size (information volume to navigate).
  size_t TreeSize = 0;
};

/// The seven study tasks (Section 5.1.1: three real-library families plus
/// the synthetic brew/space libraries and the recursion task), built from
/// the evaluation corpus.
std::vector<StudyTask> buildStudyTasks();

} // namespace argus

#endif // ARGUS_STUDY_STUDYTASKS_H
