//===- study/Simulator.h - The simulated user study -----------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Monte-Carlo substitute for the paper's N=25 user study (Figure 11).
/// Humans are not available in this environment, so each participant is a
/// stochastic process whose *mechanics* mirror the qualitative findings
/// of Section 5.1.2:
///
///  - With Argus, a participant scans the inertia-ranked bottom-up list;
///    each entry costs inspection time, the ground-truth entry is
///    recognized with high probability, and misses trigger deeper
///    unfolding excursions (CollapseSeq) before a retry.
///  - Without Argus, a participant reads the rustc diagnostic. If the
///    text mentions the root cause they may recognize it; if the text
///    stops above it (branch-point tasks), they must investigate
///    blind — searching source and docs — with low per-round success and
///    cost growing with the diagnostic's distance from the truth.
///  - Fixing, after localization, costs time that grows with the
///    Appendix A.1 weight of the ground-truth category.
///
/// All constants live in StudyConfig with documented defaults, calibrated
/// once and globally (never per task) so that the *shape* of Figure 11 —
/// who wins, by roughly what factor — emerges from the mechanism, not
/// from per-task tuning. Absolute seconds are calibration artifacts;
/// EXPERIMENTS.md labels them as such.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_STUDY_SIMULATOR_H
#define ARGUS_STUDY_SIMULATOR_H

#include "study/StudyTasks.h"
#include "support/Statistics.h"

#include <vector>

namespace argus {

struct StudyConfig {
  unsigned NumParticipants = 25;
  unsigned TasksPerCondition = 2;
  double CapSeconds = 600.0; ///< The 10-minute task limit.
  uint64_t Seed = 2024;

  // --- Participant variation (Section 5.1.1: medians of 11 years
  // --- programming / 3 years Rust, wide spread). Skill multiplies every
  // --- duration; sigma 0.35 spans roughly 2x between fast and slow.
  double SkillSigma = 0.35;

  // --- Shared costs.
  double SetupMeanSeconds = 90.0;  ///< Reading the program and error.
  double LogNormalSigma = 0.45;    ///< Spread of every duration draw.

  // --- With-Argus condition.
  double ArgusScanSeconds = 55.0;   ///< Inspecting one bottom-up entry.
  double ArgusRecognizeProb = 0.72; ///< Seeing the truth for what it is.
  double ArgusUnfoldSeconds = 130.0; ///< A CollapseSeq excursion after a
                                     ///< miss, before retrying the list.
  double ArgusLostProb = 0.18;  ///< Section 5.1.2: some participants got
                                ///< lost in the data and "ended up
                                ///< debugging non-issues".
  double ArgusLostRecognizeProb = 0.10; ///< Recognition while lost.

  // --- Without-Argus condition.
  double RustcReadSeconds = 70.0;    ///< Digesting the diagnostic text.
  double RustcMentionedProb = 0.22;  ///< Recognizing a truth the text
                                     ///< actually contains (the text is
                                     ///< still cryptic; Section 2.1).
  double RustcMentionedRoundFactor = 0.45; ///< Re-reading is cheaper than
                                          ///< blind investigation.
  double RustcBlindProb = 0.10;      ///< Per-round success when the text
                                     ///< stops above the truth.
  double RustcRoundSeconds = 230.0;  ///< One docs/source investigation.
  double RustcDistanceFactor = 0.30; ///< Round cost grows by this per
                                     ///< inference step of distance.

  // --- Fix phase (both conditions). Localization does not hand over a
  // --- patch (Section 7.1): picking the right fix still needs library
  // --- understanding, especially for the marker-type tasks whose
  // --- machinery also hides the root cause from the diagnostic.
  double FixBaseSeconds = 110.0;
  double FixWeightFactor = 0.25; ///< Cost grows by this per unit of the
                                 ///< ground truth's inertia weight.
  double FixSuccessProb = 0.75;  ///< Per-round probability the patch is
                                 ///< right, for straightforward tasks.
  double FixIntricateProb = 0.25; ///< Same, for tasks whose root cause
                                  ///< hides behind marker-type machinery
                                  ///< (DiagnosticMentionsTruth == false).
};

/// One (participant, task, condition) cell.
struct TaskOutcome {
  unsigned Participant = 0;
  size_t TaskIndex = 0;
  bool WithArgus = false;
  bool Localized = false;
  bool Fixed = false;
  /// Censored at CapSeconds, as in the paper's analysis.
  double LocalizeSeconds = 0.0;
  double FixSeconds = 0.0;

  // Behavioral traces, emerging from the mechanics (not sampled from
  // target percentages): the RQ2 observations of Section 5.1.2.
  unsigned InvestigationRounds = 0; ///< Unfold excursions (Argus) or
                                    ///< docs/source rounds (rustc).
  bool UsedTopDown = false;    ///< Argus: switched views after repeated
                               ///< misses in the bottom-up list.
  bool SearchedSource = false; ///< Jumped into library source.
  bool OpenedDocs = false;     ///< Fell back to documentation.
  bool OpenedImplPopup = false; ///< Argus: queried trait implementors
                                ///< while fixing (Section 7.1).
};

/// Aggregates for one condition (one bar group of Figure 11).
struct ConditionSummary {
  uint64_t Trials = 0;
  uint64_t LocalizedCount = 0;
  uint64_t FixedCount = 0;
  double LocalizeRate = 0.0;
  double FixRate = 0.0;
  double LocalizeMedianSeconds = 0.0;
  double FixMedianSeconds = 0.0;
  stats::Interval LocalizeRateCI;
  stats::Interval FixRateCI;
  stats::Interval LocalizeMedianCI;
  stats::Interval FixMedianCI;
};

/// Behavioral percentages across tasks (the RQ2 observations).
struct BehaviorSummary {
  double TopDownShare = 0.0;      ///< Argus tasks using top-down
                                  ///< (paper: 24%).
  double SourceSearchShare = 0.0; ///< All tasks searching source
                                  ///< (paper: 73%).
  double DocsShare = 0.0;         ///< All tasks opening docs
                                  ///< (paper: 31%).
  double ImplPopupShare = 0.0;    ///< Argus tasks using the popup.
};

struct StudyResults {
  std::vector<TaskOutcome> Outcomes;
  ConditionSummary Argus;
  ConditionSummary Rustc;
  BehaviorSummary Behavior;

  // Figure 11's significance tests.
  stats::TestResult LocalizeRateTest; ///< Chi-square, 2x2.
  stats::TestResult FixRateTest;      ///< Chi-square, 2x2.
  stats::TestResult LocalizeTimeTest; ///< Kruskal-Wallis.
  stats::TestResult FixTimeTest;      ///< Kruskal-Wallis.
};

/// Runs the simulated study over \p Tasks (normally buildStudyTasks()).
StudyResults runStudy(const StudyConfig &Config,
                      const std::vector<StudyTask> &Tasks);

/// Formats results as the rows of Figure 11 (rates with Wilson CIs,
/// median times with bootstrap CIs, and the test statistics).
std::string formatStudyReport(const StudyResults &Results);

/// Serializes the raw per-task outcomes as CSV (one row per participant
/// x task cell), mirroring the raw data the paper's artifact ships.
std::string outcomesToCSV(const StudyResults &Results,
                          const std::vector<StudyTask> &Tasks);

} // namespace argus

#endif // ARGUS_STUDY_SIMULATOR_H
