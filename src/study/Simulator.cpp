//===- study/Simulator.cpp ------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "study/Simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

using namespace argus;

namespace {

/// One simulated developer.
struct Participant {
  unsigned Id;
  double Skill; ///< Multiplies every duration; ~1.0 median.
};

/// Duration draw: log-normal around \p Mean (seconds) scaled by skill.
double drawSeconds(Rng &Gen, double Mean, double Sigma, double Skill) {
  // Parameterize so the median of the draw is Mean.
  return Gen.logNormal(std::log(Mean), Sigma) * Skill;
}

struct Attempt {
  bool Succeeded = false;
  double Seconds = 0.0; ///< Censored at the cap by the caller.
  unsigned Rounds = 0;  ///< Investigation rounds beyond the first look.
};

/// The with-Argus localization process: scan the ranked bottom-up list to
/// the truth, recognize it with high probability, otherwise unfold
/// context and retry.
Attempt localizeWithArgus(const StudyConfig &Config, const StudyTask &Task,
                          const Participant &P, Rng &Gen) {
  Attempt Result;
  double T =
      drawSeconds(Gen, Config.SetupMeanSeconds, Config.LogNormalSigma,
                  P.Skill);

  // First pass: inspect entries 0..TruthRank of the bottom-up view.
  size_t EntriesToInspect = std::min(Task.TruthRank + 1, Task.NumLeaves);
  for (size_t I = 0; I != EntriesToInspect; ++I)
    T += drawSeconds(Gen, Config.ArgusScanSeconds, Config.LogNormalSigma,
                     P.Skill);

  // Some participants latch onto a non-issue and explore the wrong part
  // of the tree for the rest of the task (Section 5.1.2).
  double RecognizeProb = Gen.chance(Config.ArgusLostProb)
                             ? Config.ArgusLostRecognizeProb
                             : Config.ArgusRecognizeProb;

  for (;;) {
    if (T >= Config.CapSeconds)
      break;
    if (Task.TruthRank < Task.NumLeaves && Gen.chance(RecognizeProb)) {
      Result.Succeeded = true;
      break;
    }
    // Miss: unfold the inference chain for more context, then retry.
    ++Result.Rounds;
    T += drawSeconds(Gen, Config.ArgusUnfoldSeconds, Config.LogNormalSigma,
                     P.Skill);
  }
  Result.Seconds = std::min(T, Config.CapSeconds);
  return Result;
}

/// The without-Argus localization process: read the diagnostic, then
/// either recognize a mentioned truth or investigate blind.
Attempt localizeWithoutArgus(const StudyConfig &Config,
                             const StudyTask &Task, const Participant &P,
                             Rng &Gen) {
  Attempt Result;
  double T = drawSeconds(Gen, Config.RustcReadSeconds,
                         Config.LogNormalSigma, P.Skill);

  double SuccessProb;
  double RoundMean;
  if (Task.DiagnosticMentionsTruth) {
    SuccessProb = Config.RustcMentionedProb;
    RoundMean = Config.RustcMentionedRoundFactor * Config.RustcRoundSeconds;
  } else {
    SuccessProb = Config.RustcBlindProb;
    RoundMean =
        Config.RustcRoundSeconds *
        (1.0 + Config.RustcDistanceFactor *
                   static_cast<double>(Task.CompilerDistance));
  }

  for (;;) {
    ++Result.Rounds;
    T += drawSeconds(Gen, RoundMean, Config.LogNormalSigma, P.Skill);
    if (T >= Config.CapSeconds)
      break;
    if (Gen.chance(SuccessProb)) {
      Result.Succeeded = true;
      break;
    }
  }
  Result.Seconds = std::min(T, Config.CapSeconds);
  return Result;
}

/// The fix process after localization; identical mechanics in both
/// conditions (Argus helps localize; fixing still needs domain work —
/// Section 7.1).
Attempt fixAfterLocalization(const StudyConfig &Config,
                             const StudyTask &Task, const Participant &P,
                             Rng &Gen, double LocalizeSeconds) {
  Attempt Result;
  double T = LocalizeSeconds;
  double RoundMean =
      Config.FixBaseSeconds *
      (1.0 + Config.FixWeightFactor * static_cast<double>(Task.FixWeight));
  double SuccessProb = Task.DiagnosticMentionsTruth
                           ? Config.FixSuccessProb
                           : Config.FixIntricateProb;
  for (;;) {
    T += drawSeconds(Gen, RoundMean, Config.LogNormalSigma, P.Skill);
    if (T >= Config.CapSeconds)
      break;
    if (Gen.chance(SuccessProb)) {
      Result.Succeeded = true;
      break;
    }
  }
  Result.Seconds = std::min(T, Config.CapSeconds);
  return Result;
}

ConditionSummary summarize(const std::vector<TaskOutcome> &Outcomes,
                           bool WithArgus, Rng &Gen) {
  ConditionSummary Summary;
  std::vector<double> LocalizeTimes;
  std::vector<double> FixTimes;
  for (const TaskOutcome &Outcome : Outcomes) {
    if (Outcome.WithArgus != WithArgus)
      continue;
    ++Summary.Trials;
    Summary.LocalizedCount += Outcome.Localized;
    Summary.FixedCount += Outcome.Fixed;
    LocalizeTimes.push_back(Outcome.LocalizeSeconds);
    FixTimes.push_back(Outcome.FixSeconds);
  }
  assert(Summary.Trials > 0 && "empty condition");
  Summary.LocalizeRate = static_cast<double>(Summary.LocalizedCount) /
                         static_cast<double>(Summary.Trials);
  Summary.FixRate = static_cast<double>(Summary.FixedCount) /
                    static_cast<double>(Summary.Trials);
  Summary.LocalizeRateCI =
      stats::wilsonInterval(Summary.LocalizedCount, Summary.Trials);
  Summary.FixRateCI =
      stats::wilsonInterval(Summary.FixedCount, Summary.Trials);
  Summary.LocalizeMedianSeconds = stats::median(LocalizeTimes);
  Summary.FixMedianSeconds = stats::median(FixTimes);
  Summary.LocalizeMedianCI =
      stats::bootstrapMedianInterval(LocalizeTimes, Gen);
  Summary.FixMedianCI = stats::bootstrapMedianInterval(FixTimes, Gen);
  return Summary;
}

std::vector<double> timesOf(const std::vector<TaskOutcome> &Outcomes,
                            bool WithArgus, bool Fix) {
  std::vector<double> Times;
  for (const TaskOutcome &Outcome : Outcomes)
    if (Outcome.WithArgus == WithArgus)
      Times.push_back(Fix ? Outcome.FixSeconds : Outcome.LocalizeSeconds);
  return Times;
}

} // namespace

StudyResults argus::runStudy(const StudyConfig &Config,
                             const std::vector<StudyTask> &Tasks) {
  assert(Tasks.size() >= 2 * Config.TasksPerCondition &&
         "not enough tasks for the within-subjects design");
  StudyResults Results;
  Rng Gen(Config.Seed);

  for (unsigned Id = 0; Id != Config.NumParticipants; ++Id) {
    Rng PGen = Gen.fork();
    Participant P{Id, PGen.logNormal(0.0, Config.SkillSigma)};

    // Draw 2*TasksPerCondition distinct tasks (Fisher-Yates prefix).
    std::vector<size_t> Order(Tasks.size());
    for (size_t I = 0; I != Order.size(); ++I)
      Order[I] = I;
    for (size_t I = 0; I + 1 < Order.size(); ++I)
      std::swap(Order[I],
                Order[I + PGen.below(Order.size() - I)]);

    // Conditions are blocked; which condition comes first is random
    // (Section 5.1.1).
    bool ArgusFirst = PGen.chance(0.5);
    unsigned PerCondition = Config.TasksPerCondition;
    for (unsigned Slot = 0; Slot != 2 * PerCondition; ++Slot) {
      bool WithArgus = (Slot < PerCondition) == ArgusFirst;
      const StudyTask &Task = Tasks[Order[Slot]];

      TaskOutcome Outcome;
      Outcome.Participant = Id;
      Outcome.TaskIndex = Order[Slot];
      Outcome.WithArgus = WithArgus;

      Attempt Localize =
          WithArgus ? localizeWithArgus(Config, Task, P, PGen)
                    : localizeWithoutArgus(Config, Task, P, PGen);
      Outcome.Localized = Localize.Succeeded;
      Outcome.LocalizeSeconds = Localize.Seconds;
      Outcome.InvestigationRounds = Localize.Rounds;

      if (Localize.Succeeded) {
        Attempt Fix = fixAfterLocalization(Config, Task, P, PGen,
                                           Localize.Seconds);
        Outcome.Fixed = Fix.Succeeded;
        Outcome.FixSeconds = Fix.Seconds;
        // Fixing a trait bound means looking at who implements it
        // (Section 7.1): the popup is the Argus affordance for that.
        Outcome.OpenedImplPopup = WithArgus;
      } else {
        Outcome.Fixed = false;
        Outcome.FixSeconds = Config.CapSeconds;
      }

      // Behavioral traces, derived from the process:
      //  - top-down is where Argus users go when the ranked list alone
      //    did not convince them (two or more misses);
      //  - source is searched whenever any investigation happened at
      //    all (rustc users always investigate; Argus users who
      //    recognized the first entry immediately did not need to);
      //  - docs are the fallback once source reading has failed twice.
      if (WithArgus) {
        Outcome.UsedTopDown = Localize.Rounds >= 2;
        // Recognizing the first ranked entry needs no source dive; the
        // definition links get used once any deeper investigation
        // starts.
        Outcome.SearchedSource = Localize.Rounds >= 1;
        Outcome.OpenedDocs = Localize.Rounds >= 3;
      } else {
        Outcome.SearchedSource = Localize.Rounds >= 1;
        Outcome.OpenedDocs = Localize.Rounds >= 3;
      }
      Results.Outcomes.push_back(Outcome);
    }
  }

  Rng SummaryGen(Config.Seed ^ 0x5deece66dULL);
  Results.Argus = summarize(Results.Outcomes, true, SummaryGen);
  Results.Rustc = summarize(Results.Outcomes, false, SummaryGen);

  // Behavioral shares.
  size_t ArgusTasks = 0, AllTasks = Results.Outcomes.size();
  size_t TopDown = 0, Source = 0, Docs = 0, Popup = 0;
  for (const TaskOutcome &Outcome : Results.Outcomes) {
    if (Outcome.WithArgus) {
      ++ArgusTasks;
      TopDown += Outcome.UsedTopDown;
      Popup += Outcome.OpenedImplPopup;
    }
    Source += Outcome.SearchedSource;
    Docs += Outcome.OpenedDocs;
  }
  if (ArgusTasks) {
    Results.Behavior.TopDownShare =
        static_cast<double>(TopDown) / static_cast<double>(ArgusTasks);
    Results.Behavior.ImplPopupShare =
        static_cast<double>(Popup) / static_cast<double>(ArgusTasks);
  }
  if (AllTasks) {
    Results.Behavior.SourceSearchShare =
        static_cast<double>(Source) / static_cast<double>(AllTasks);
    Results.Behavior.DocsShare =
        static_cast<double>(Docs) / static_cast<double>(AllTasks);
  }

  Results.LocalizeRateTest = stats::chiSquare2x2(
      Results.Argus.LocalizedCount,
      Results.Argus.Trials - Results.Argus.LocalizedCount,
      Results.Rustc.LocalizedCount,
      Results.Rustc.Trials - Results.Rustc.LocalizedCount);
  Results.FixRateTest = stats::chiSquare2x2(
      Results.Argus.FixedCount,
      Results.Argus.Trials - Results.Argus.FixedCount,
      Results.Rustc.FixedCount,
      Results.Rustc.Trials - Results.Rustc.FixedCount);
  Results.LocalizeTimeTest = stats::kruskalWallis(
      {timesOf(Results.Outcomes, true, false),
       timesOf(Results.Outcomes, false, false)});
  Results.FixTimeTest =
      stats::kruskalWallis({timesOf(Results.Outcomes, true, true),
                            timesOf(Results.Outcomes, false, true)});
  return Results;
}

static std::string formatMinutes(double Seconds) {
  int Whole = static_cast<int>(Seconds);
  char Buffer[32];
  snprintf(Buffer, sizeof(Buffer), "%dm%02ds", Whole / 60, Whole % 60);
  return Buffer;
}

std::string argus::formatStudyReport(const StudyResults &Results) {
  auto Pct = [](double Value) {
    char Buffer[16];
    snprintf(Buffer, sizeof(Buffer), "%.0f%%", 100.0 * Value);
    return std::string(Buffer);
  };
  auto Condition = [&](const char *Name, const ConditionSummary &S) {
    std::string Out;
    Out += std::string(Name) + ":\n";
    Out += "  localized " + Pct(S.LocalizeRate) + " of " +
           std::to_string(S.Trials) + " tasks (95% CI [" +
           Pct(S.LocalizeRateCI.Lo) + ", " + Pct(S.LocalizeRateCI.Hi) +
           "])\n";
    Out += "  median time-to-localize " +
           formatMinutes(S.LocalizeMedianSeconds) + " (CI [" +
           formatMinutes(S.LocalizeMedianCI.Lo) + ", " +
           formatMinutes(S.LocalizeMedianCI.Hi) + "])\n";
    Out += "  fixed " + Pct(S.FixRate) + " (95% CI [" +
           Pct(S.FixRateCI.Lo) + ", " + Pct(S.FixRateCI.Hi) + "])\n";
    Out += "  median time-to-fix " + formatMinutes(S.FixMedianSeconds) +
           " (CI [" + formatMinutes(S.FixMedianCI.Lo) + ", " +
           formatMinutes(S.FixMedianCI.Hi) + "])\n";
    return Out;
  };

  std::string Out;
  Out += Condition("with Argus", Results.Argus);
  Out += Condition("without Argus (rustc diagnostics)", Results.Rustc);

  char Buffer[256];
  double RateRatio = Results.Argus.LocalizeRate /
                     std::max(1e-9, Results.Rustc.LocalizeRate);
  double TimeRatio = Results.Rustc.LocalizeMedianSeconds /
                     std::max(1e-9, Results.Argus.LocalizeMedianSeconds);
  snprintf(Buffer, sizeof(Buffer),
           "effects: %.1fx localization rate, %.1fx faster localization "
           "(paper: 2.2x, 3.3x)\n",
           RateRatio, TimeRatio);
  Out += Buffer;
  snprintf(Buffer, sizeof(Buffer),
           "tests: loc rate chi2(1)=%.2f p=%.2g; loc time KW "
           "chi2(1)=%.2f p=%.2g; fix rate chi2(1)=%.2f p=%.2g; fix time "
           "KW chi2(1)=%.2f p=%.2g\n",
           Results.LocalizeRateTest.Statistic,
           Results.LocalizeRateTest.PValue,
           Results.LocalizeTimeTest.Statistic,
           Results.LocalizeTimeTest.PValue,
           Results.FixRateTest.Statistic, Results.FixRateTest.PValue,
           Results.FixTimeTest.Statistic, Results.FixTimeTest.PValue);
  Out += Buffer;
  snprintf(Buffer, sizeof(Buffer),
           "behavior: top-down used in %.0f%% of Argus tasks (paper "
           "24%%); source searched in %.0f%% of tasks (paper 73%%); "
           "docs opened in %.0f%% (paper 31%%)\n",
           100 * Results.Behavior.TopDownShare,
           100 * Results.Behavior.SourceSearchShare,
           100 * Results.Behavior.DocsShare);
  Out += Buffer;
  return Out;
}

std::string argus::outcomesToCSV(const StudyResults &Results,
                                 const std::vector<StudyTask> &Tasks) {
  std::string Out = "participant,task,condition,localized,"
                    "localize_seconds,fixed,fix_seconds,rounds,"
                    "used_top_down,searched_source,opened_docs,"
                    "opened_impl_popup\n";
  char Buffer[256];
  for (const TaskOutcome &Outcome : Results.Outcomes) {
    snprintf(Buffer, sizeof(Buffer),
             "%u,%s,%s,%d,%.1f,%d,%.1f,%u,%d,%d,%d,%d\n",
             Outcome.Participant,
             Tasks[Outcome.TaskIndex].Id.c_str(),
             Outcome.WithArgus ? "argus" : "rustc", Outcome.Localized,
             Outcome.LocalizeSeconds, Outcome.Fixed, Outcome.FixSeconds,
             Outcome.InvestigationRounds, Outcome.UsedTopDown,
             Outcome.SearchedSource, Outcome.OpenedDocs,
             Outcome.OpenedImplPopup);
    Out += Buffer;
  }
  return Out;
}
