//===- extract/TreeJSON.h - Inference tree serialization ------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes idealized inference trees to JSON, the interchange format
/// between the real Argus compiler plugin and its web UI (serialization
/// is 40% of that plugin's code; ours is smaller because L_TRAIT is the
/// idealized model rather than rustc's full type system).
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_EXTRACT_TREEJSON_H
#define ARGUS_EXTRACT_TREEJSON_H

#include "extract/InferenceTree.h"
#include "support/JSON.h"
#include "tlang/Printer.h"

namespace argus {

/// Writes \p Tree into \p Writer as one JSON object:
/// {"root": ..., "goals": [...], "candidates": [...]}. Goals and
/// candidates are stored flat and reference each other by index, matching
/// how a UI would hold them.
void writeTreeJSON(JSONWriter &Writer, const Program &Prog,
                   const InferenceTree &Tree,
                   const TypePrinter &Printer);

/// Convenience: serializes \p Tree to a standalone JSON string.
std::string treeToJSON(const Program &Prog, const InferenceTree &Tree,
                       bool Pretty = false);

} // namespace argus

#endif // ARGUS_EXTRACT_TREEJSON_H
