//===- extract/Extract.cpp ------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "extract/Extract.h"

#include <cassert>

using namespace argus;

namespace {

/// One-way structural match: \p General (possibly containing inference
/// holes) matches \p Specific if the two agree everywhere General is
/// concrete.
bool typeMatches(const TypeArena &Arena, TypeId General, TypeId Specific) {
  if (General == Specific)
    return true;
  const Type &G = Arena.get(General);
  if (G.Kind == TypeKind::Infer)
    return true; // A hole matches anything, including another hole.
  const Type &S = Arena.get(Specific);
  if (G.Kind != S.Kind || G.Name != S.Name || G.TraitName != S.TraitName ||
      G.Mutable != S.Mutable || G.Args.size() != S.Args.size())
    return false;
  for (size_t I = 0; I != G.Args.size(); ++I)
    if (!typeMatches(Arena, G.Args[I], S.Args[I]))
      return false;
  return true;
}

class Extractor {
public:
  Extractor(const Program &Prog, const SolveOutcome &Out,
            const InferContext &Infcx, const ExtractOptions &Opts,
            Extraction &Result)
      : Prog(Prog), Out(Out), Infcx(Infcx), Opts(Opts), Result(Result) {}

  void run();

private:
  IGoalId buildGoal(InferenceTree &Tree, GoalNodeId RawId, ICandId Parent,
                    uint32_t Depth);
  void addChild(InferenceTree &Tree, ICandId Parent, GoalNodeId RawSub,
                uint32_t Depth);

  const Program &Prog;
  const SolveOutcome &Out;
  const InferContext &Infcx;
  const ExtractOptions &Opts;
  Extraction &Result;
};

} // namespace

void Extractor::run() {
  Result.Stats.RawGoals = Out.Forest.numGoals();

  // Which speculation groups contain a successful member?
  std::unordered_map<uint32_t, bool> GroupSucceeded;
  for (size_t I = 0; I != Out.FinalResults.size(); ++I) {
    uint32_t Group = Out.SpeculationGroups[I];
    if (Group == UINT32_MAX)
      continue;
    GroupSucceeded[Group] =
        GroupSucceeded[Group] || Out.FinalResults[I] == EvalResult::Yes;
  }

  for (size_t I = 0; I != Out.FinalRoots.size(); ++I) {
    // Step 1: drop superseded snapshots (the implication heuristic; the
    // last snapshot is the most instantiated, which the assertion below
    // documents).
    const std::vector<GoalNodeId> &Snapshots = Out.Snapshots[I];
    if (Snapshots.empty())
      continue;
    Result.Stats.SnapshotsDropped += Snapshots.size() - 1;
#ifndef NDEBUG
    for (size_t J = 0; J + 1 < Snapshots.size(); ++J)
      assert(snapshotSupersedes(Prog, Infcx,
                                Out.Forest.goal(Snapshots.back()).Pred,
                                Out.Forest.goal(Snapshots[J]).Pred) &&
             "later snapshot must supersede earlier ones");
#endif
    GoalNodeId Root = Snapshots.back();
    EvalResult Final = Out.FinalResults[I];

    // Step 2: hide failed members of successful probe groups.
    uint32_t Group = Out.SpeculationGroups[I];
    if (Opts.FilterSpeculative && Group != UINT32_MAX &&
        GroupSucceeded[Group] && Final != EvalResult::Yes) {
      ++Result.Stats.SpeculativeRootsDropped;
      continue;
    }

    // Step 3: the debugger only visualizes failures by default.
    if (Opts.FailingRootsOnly && Final == EvalResult::Yes)
      continue;

    InferenceTree Tree;
    IGoalId RootId = buildGoal(Tree, Root, ICandId::invalid(), 0);
    Tree.setRoot(RootId);
    Result.Trees.push_back(std::move(Tree));
    Result.GoalIndices.push_back(static_cast<uint32_t>(I));
  }
}

IGoalId Extractor::buildGoal(InferenceTree &Tree, GoalNodeId RawId,
                             ICandId Parent, uint32_t Depth) {
  const GoalNode &Raw = Out.Forest.goal(RawId);
  IGoalId Id = Tree.makeGoal();
  {
    IdealGoal &Goal = Tree.goal(Id);
    Goal.Pred = Infcx.resolve(Raw.Pred);
    // Stateful nodes display the value captured after their subtree ran
    // (Section 4); the output variable itself may have been rolled back
    // with its candidate attempt.
    if (Goal.Pred.Kind == PredicateKind::NormalizesTo &&
        Raw.NormalizedValue.isValid())
      Goal.Pred.Rhs = Infcx.resolve(Raw.NormalizedValue);
    Goal.Result = Raw.Result;
    Goal.Origin = Raw.Origin;
    Goal.Parent = Parent;
    Goal.Depth = Depth;
    Goal.UnresolvedVars =
        static_cast<uint32_t>(Infcx.countUnresolved(Goal.Pred));
    Goal.RawId = RawId;
  }

  // Governance cut: keep this goal as a leaf (predicate and result are
  // set) but do not descend into its candidates.
  if ((Opts.Budget && Opts.Budget->tick()) ||
      (Opts.MaxTreeGoals != 0 && Tree.numGoals() >= Opts.MaxTreeGoals)) {
    ++Result.Stats.GoalsTruncated;
    return Id;
  }

  for (CandNodeId RawCand : Raw.Candidates) {
    const CandidateNode &RawC = Out.Forest.candidate(RawCand);
    ICandId CandId = Tree.makeCandidate();
    {
      IdealCandidate &Cand = Tree.candidate(CandId);
      Cand.Kind = RawC.Kind;
      Cand.Impl = RawC.Impl;
      Cand.BuiltinName = RawC.BuiltinName;
      Cand.Assumption = Infcx.resolve(RawC.Assumption);
      Cand.Result = RawC.Result;
      Cand.Parent = Id;
    }
    Tree.goal(Id).Candidates.push_back(CandId);
    for (GoalNodeId RawSub : RawC.SubGoals)
      addChild(Tree, CandId, RawSub, Depth);
  }
  return Id;
}

void Extractor::addChild(InferenceTree &Tree, ICandId Parent,
                         GoalNodeId RawSub, uint32_t Depth) {
  const GoalNode &Sub = Out.Forest.goal(RawSub);

  // Step 4: stateful normalization nodes. A successful one has served its
  // purpose (the value was captured); a failing one is spliced so the
  // trait failure beneath it stays visible.
  if (Opts.ElideStatefulNodes &&
      Sub.Pred.Kind == PredicateKind::NormalizesTo) {
    ++Result.Stats.StatefulGoalsElided;
    if (Sub.Result == EvalResult::Yes)
      return;
    for (CandNodeId RawCand : Sub.Candidates)
      for (GoalNodeId Nested : Out.Forest.candidate(RawCand).SubGoals)
        addChild(Tree, Parent, Nested, Depth);
    return;
  }

  // Internal predicate kinds are hidden unless they failed or the user
  // toggled "show all".
  if (!Opts.ShowInternal && !isUserFacing(Sub.Pred.Kind) &&
      Sub.Result == EvalResult::Yes) {
    ++Result.Stats.InternalGoalsHidden;
    return;
  }

  IGoalId Child = buildGoal(Tree, RawSub, Parent, Depth + 1);
  Tree.candidate(Parent).SubGoals.push_back(Child);
}

Extraction argus::extractTrees(const Program &Prog, const SolveOutcome &Out,
                               const InferContext &Infcx,
                               ExtractOptions Opts) {
  Extraction Result;
  Extractor E(Prog, Out, Infcx, Opts, Result);
  E.run();
  return Result;
}

bool argus::snapshotSupersedes(const Program &Prog, const InferContext &Infcx,
                               const Predicate &Later,
                               const Predicate &Earlier) {
  if (Later.Kind != Earlier.Kind || Later.Trait != Earlier.Trait ||
      Later.Args.size() != Earlier.Args.size())
    return false;
  const TypeArena &Arena = Prog.session().types();
  Predicate L = Infcx.resolve(Later);
  Predicate E = Infcx.resolve(Earlier);
  if (E.Subject.isValid() &&
      !typeMatches(Arena, E.Subject, L.Subject))
    return false;
  for (size_t I = 0; I != E.Args.size(); ++I)
    if (!typeMatches(Arena, E.Args[I], L.Args[I]))
      return false;
  if (E.Rhs.isValid() && L.Rhs.isValid() &&
      !typeMatches(Arena, E.Rhs, L.Rhs))
    return false;
  return true;
}
