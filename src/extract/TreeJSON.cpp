//===- extract/TreeJSON.cpp -----------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "extract/TreeJSON.h"

using namespace argus;

static const char *candidateKindName(CandidateKind Kind) {
  switch (Kind) {
  case CandidateKind::Impl:
    return "impl";
  case CandidateKind::ParamEnv:
    return "param-env";
  case CandidateKind::Builtin:
    return "builtin";
  }
  return "?";
}

void argus::writeTreeJSON(JSONWriter &Writer, const Program &Prog,
                          const InferenceTree &Tree,
                          const TypePrinter &Printer) {
  Writer.beginObject();
  Writer.keyValue("root", static_cast<uint64_t>(Tree.rootId().value()));

  Writer.key("goals");
  Writer.beginArray();
  for (size_t I = 0; I != Tree.numGoals(); ++I) {
    const IdealGoal &Goal = Tree.goal(IGoalId(static_cast<uint32_t>(I)));
    Writer.beginObject();
    Writer.keyValue("id", static_cast<uint64_t>(I));
    Writer.keyValue("predicate", Printer.print(Goal.Pred));
    Writer.keyValue("result", evalResultName(Goal.Result));
    Writer.keyValue("depth", static_cast<uint64_t>(Goal.Depth));
    Writer.keyValue("unresolvedVars",
                    static_cast<uint64_t>(Goal.UnresolvedVars));
    if (Goal.Origin.isValid())
      Writer.keyValue("origin",
                      Prog.session().sources().describe(Goal.Origin));
    Writer.key("candidates");
    Writer.beginArray();
    for (ICandId Cand : Goal.Candidates)
      Writer.value(static_cast<uint64_t>(Cand.value()));
    Writer.endArray();
    Writer.endObject();
  }
  Writer.endArray();

  Writer.key("candidates");
  Writer.beginArray();
  for (size_t I = 0; I != Tree.numCandidates(); ++I) {
    const IdealCandidate &Cand =
        Tree.candidate(ICandId(static_cast<uint32_t>(I)));
    Writer.beginObject();
    Writer.keyValue("id", static_cast<uint64_t>(I));
    Writer.keyValue("kind", candidateKindName(Cand.Kind));
    switch (Cand.Kind) {
    case CandidateKind::Impl:
      Writer.keyValue("impl",
                      Printer.printImplFull(Prog.impl(Cand.Impl)));
      break;
    case CandidateKind::Builtin:
      Writer.keyValue("builtin", Prog.session().text(Cand.BuiltinName));
      break;
    case CandidateKind::ParamEnv:
      Writer.keyValue("assumption", Printer.print(Cand.Assumption));
      break;
    }
    Writer.keyValue("result", evalResultName(Cand.Result));
    Writer.key("subgoals");
    Writer.beginArray();
    for (IGoalId Sub : Cand.SubGoals)
      Writer.value(static_cast<uint64_t>(Sub.value()));
    Writer.endArray();
    Writer.endObject();
  }
  Writer.endArray();

  Writer.endObject();
}

std::string argus::treeToJSON(const Program &Prog, const InferenceTree &Tree,
                              bool Pretty) {
  JSONWriter Writer(Pretty);
  TypePrinter Printer(Prog);
  writeTreeJSON(Writer, Prog, Tree, Printer);
  return Writer.str();
}
