//===- extract/InferenceTree.h - The idealized And/Or tree ----*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The *idealized* trait inference tree: what the paper's Figure 5 calls a
/// Predicate Evaluation, after the extraction layer has removed solver
/// artifacts (snapshots, internal predicate kinds, stateful normalization
/// plumbing). This is the data structure everything user-facing consumes:
/// the interface views, the inertia analysis, and the diagnostics
/// comparison.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_EXTRACT_INFERENCETREE_H
#define ARGUS_EXTRACT_INFERENCETREE_H

#include "solver/ProofTree.h"

#include <deque>
#include <vector>

namespace argus {

struct IGoalTag {};
using IGoalId = Id<IGoalTag>;
struct ICandTag {};
using ICandId = Id<ICandTag>;

/// A goal (predicate evaluation) in the idealized tree. All types inside
/// Pred are resolved against the final inference state.
struct IdealGoal {
  IGoalId Id;
  Predicate Pred;
  EvalResult Result = EvalResult::Maybe;
  Span Origin;
  ICandId Parent; ///< Invalid for the root.
  std::vector<ICandId> Candidates;

  /// Depth within the idealized tree (root = 0).
  uint32_t Depth = 0;

  /// Unbound inference variables remaining in Pred at the end of
  /// inference (one of the Figure 12a baseline rankings).
  uint32_t UnresolvedVars = 0;

  /// Provenance: the raw proof-forest node this goal came from.
  GoalNodeId RawId;
};

/// A candidate (OR-branch) in the idealized tree.
struct IdealCandidate {
  ICandId Id;
  CandidateKind Kind = CandidateKind::Impl;
  ImplId Impl;
  Symbol BuiltinName;
  Predicate Assumption;
  EvalResult Result = EvalResult::Maybe;
  IGoalId Parent;
  std::vector<IGoalId> SubGoals;
};

/// In the idealized tree, residual ambiguity counts as failure: inference
/// has finished, so a Maybe can never become Yes (Section 4).
inline bool idealFailed(EvalResult Result) { return Result != EvalResult::Yes; }

/// One idealized inference tree, rooted at a single evaluated predicate.
class InferenceTree {
public:
  IGoalId rootId() const { return Root; }
  const IdealGoal &root() const { return goal(Root); }

  IdealGoal &goal(IGoalId Id);
  const IdealGoal &goal(IGoalId Id) const;
  IdealCandidate &candidate(ICandId Id);
  const IdealCandidate &candidate(ICandId Id) const;

  IGoalId makeGoal();
  ICandId makeCandidate();
  void setRoot(IGoalId Id) {
    Root = Id;
    invalidateCostCache();
  }

  size_t numGoals() const { return Goals.size(); }
  size_t numCandidates() const { return Candidates.size(); }

  /// Total node count (goals + candidates).
  size_t size() const { return Goals.size() + Candidates.size(); }

  /// The innermost failing predicates: failed goals with no failed
  /// descendant goal. These seed the bottom-up view.
  std::vector<IGoalId> failedLeaves() const;

  /// True if any goal below \p Id (exclusive) failed.
  bool hasFailedDescendant(IGoalId Id) const;

  /// Walks from \p Id to the root, returning goal ids (inclusive of both
  /// ends). Used by the bottom-up view and by the compiler-distance
  /// metric.
  std::vector<IGoalId> pathToRoot(IGoalId Id) const;

  // --- Auto-dispatch cost memo. The DNF kernel cost model's pre-pass
  // --- (analysis/DNF.cpp estimateWith) walks every failed node; its
  // --- result depends only on the tree's structure and results, so
  // --- repeated dispatches over the same frozen tree (estimateDNFCost
  // --- callers plus computeMCS, benches looping per tree) pay the walk
  // --- once. Any mutating access invalidates. Raw size_t pair rather
  // --- than DNFCostEstimate to keep this header free of analysis types.

  bool costCacheValid() const { return CostCacheValid; }
  size_t cachedCostNodes() const { return CachedCostNodes; }
  size_t cachedCostConjuncts() const { return CachedCostConjuncts; }
  void cacheCost(size_t Nodes, size_t Conjuncts) const {
    CachedCostNodes = Nodes;
    CachedCostConjuncts = Conjuncts;
    CostCacheValid = true;
  }

private:
  void invalidateCostCache() { CostCacheValid = false; }

  IGoalId Root;
  std::deque<IdealGoal> Goals;
  std::deque<IdealCandidate> Candidates;
  mutable size_t CachedCostNodes = 0;
  mutable size_t CachedCostConjuncts = 0;
  mutable bool CostCacheValid = false;
};

} // namespace argus

#endif // ARGUS_EXTRACT_INFERENCETREE_H
