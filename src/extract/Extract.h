//===- extract/Extract.h - Raw forest -> idealized trees ------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extraction layer of Section 4: bridges the gap between the solver's
/// raw proof forest ("the trait solver does not actually produce the
/// beautiful AND/OR tree shown in Figure 5") and the idealized tree Argus
/// visualizes. Four responsibilities:
///
///  1. Snapshot deduplication: each fixpoint round re-evaluates ambiguous
///     goals as new root nodes; an implication heuristic keeps only the
///     final, most-instantiated snapshot of each goal.
///  2. Speculation filtering: soft predicates emitted while the type
///     checker probes alternatives (method resolution) are hidden when a
///     sibling probe succeeded.
///  3. Internal-predicate filtering: kinds outside the L_TRAIT grammar
///     (WellFormed, Sized, RegionOutlives) are hidden unless they failed
///     or the "show all" toggle is set.
///  4. Stateful-node capture: successful NormalizesTo subtrees are
///     elided (their value has been captured); failing ones are spliced
///     so the underlying trait failure surfaces in the tree.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_EXTRACT_EXTRACT_H
#define ARGUS_EXTRACT_EXTRACT_H

#include "extract/InferenceTree.h"
#include "solver/Solver.h"

namespace argus {

struct ExtractOptions {
  /// Show internal predicate kinds even when they succeeded (the Argus
  /// settings toggle described in Section 4).
  bool ShowInternal = false;

  /// Hide failed speculative goals whose probe group has a successful
  /// member.
  bool FilterSpeculative = true;

  /// Keep only failing roots (the debugger's default). When false, every
  /// final snapshot becomes a tree — useful for pedagogic visualization
  /// of successful inference.
  bool FailingRootsOnly = true;

  /// Elide successful NormalizesTo subtrees and splice failing ones.
  /// When false, stateful nodes appear verbatim (with their captured
  /// values), as rustc plugins see them.
  bool ElideStatefulNodes = true;

  /// Cap on idealized goals per tree; a goal at the cap keeps its
  /// predicate but loses its candidates (recorded in
  /// ExtractStats::GoalsTruncated). 0 means unlimited.
  size_t MaxTreeGoals = 0;

  /// Cooperative execution budget, charged one unit per idealized goal.
  /// When it stops, the in-flight tree is finished as leaves from that
  /// point down. Null means ungoverned. Not owned; must outlive the call.
  ExecutionBudget *Budget = nullptr;
};

/// Statistics about what extraction removed; used by tests and by the
/// filtering ablation bench.
struct ExtractStats {
  size_t RawGoals = 0;
  size_t SnapshotsDropped = 0;
  size_t SpeculativeRootsDropped = 0;
  size_t InternalGoalsHidden = 0;
  size_t StatefulGoalsElided = 0;
  /// Goals cut short (candidates not descended into) by MaxTreeGoals or
  /// a budget stop.
  size_t GoalsTruncated = 0;
};

struct Extraction {
  /// One idealized tree per surviving root, in program-goal order.
  std::vector<InferenceTree> Trees;
  /// The program-goal index behind each tree.
  std::vector<uint32_t> GoalIndices;
  ExtractStats Stats;
};

/// Extracts idealized inference trees from a solve.
///
/// \p Infcx must be the solver's inference context (bindings are needed to
/// resolve displayed predicates to their final forms).
Extraction extractTrees(const Program &Prog, const SolveOutcome &Out,
                        const InferContext &Infcx,
                        ExtractOptions Opts = ExtractOptions());

/// The implication heuristic on snapshots: true if \p Later (a re-
/// evaluation of the same program goal) supersedes \p Earlier, i.e. the
/// later resolved predicate is at least as instantiated. Exposed for
/// testing.
bool snapshotSupersedes(const Program &Prog, const InferContext &Infcx,
                        const Predicate &Later, const Predicate &Earlier);

} // namespace argus

#endif // ARGUS_EXTRACT_EXTRACT_H
