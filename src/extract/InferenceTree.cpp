//===- extract/InferenceTree.cpp ------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "extract/InferenceTree.h"

#include <cassert>

using namespace argus;

IdealGoal &InferenceTree::goal(IGoalId Id) {
  assert(Id.isValid() && Id.value() < Goals.size() && "bad IGoalId");
  // Handing out a mutable node may change results or edges the cached
  // cost estimate depends on.
  invalidateCostCache();
  return Goals[Id.value()];
}

const IdealGoal &InferenceTree::goal(IGoalId Id) const {
  assert(Id.isValid() && Id.value() < Goals.size() && "bad IGoalId");
  return Goals[Id.value()];
}

IdealCandidate &InferenceTree::candidate(ICandId Id) {
  assert(Id.isValid() && Id.value() < Candidates.size() && "bad ICandId");
  invalidateCostCache();
  return Candidates[Id.value()];
}

const IdealCandidate &InferenceTree::candidate(ICandId Id) const {
  assert(Id.isValid() && Id.value() < Candidates.size() && "bad ICandId");
  return Candidates[Id.value()];
}

IGoalId InferenceTree::makeGoal() {
  invalidateCostCache();
  IGoalId Id(static_cast<uint32_t>(Goals.size()));
  Goals.emplace_back();
  Goals.back().Id = Id;
  return Id;
}

ICandId InferenceTree::makeCandidate() {
  invalidateCostCache();
  ICandId Id(static_cast<uint32_t>(Candidates.size()));
  Candidates.emplace_back();
  Candidates.back().Id = Id;
  return Id;
}

bool InferenceTree::hasFailedDescendant(IGoalId Id) const {
  const IdealGoal &Node = goal(Id);
  for (ICandId CandId : Node.Candidates)
    for (IGoalId Sub : candidate(CandId).SubGoals) {
      if (idealFailed(goal(Sub).Result))
        return true;
      if (hasFailedDescendant(Sub))
        return true;
    }
  return false;
}

static void collectFailedLeaves(const InferenceTree &Tree, IGoalId Id,
                                std::vector<IGoalId> &Out) {
  const IdealGoal &Node = Tree.goal(Id);
  if (idealFailed(Node.Result) && !Tree.hasFailedDescendant(Id)) {
    Out.push_back(Id);
    return;
  }
  for (ICandId CandId : Node.Candidates)
    for (IGoalId Sub : Tree.candidate(CandId).SubGoals)
      collectFailedLeaves(Tree, Sub, Out);
}

std::vector<IGoalId> InferenceTree::failedLeaves() const {
  std::vector<IGoalId> Out;
  if (Root.isValid())
    collectFailedLeaves(*this, Root, Out);
  return Out;
}

std::vector<IGoalId> InferenceTree::pathToRoot(IGoalId Id) const {
  std::vector<IGoalId> Path;
  IGoalId Current = Id;
  for (;;) {
    Path.push_back(Current);
    const IdealGoal &Node = goal(Current);
    if (!Node.Parent.isValid())
      break;
    Current = candidate(Node.Parent).Parent;
  }
  return Path;
}
