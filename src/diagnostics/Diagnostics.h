//===- diagnostics/Diagnostics.h - rustc-style diagnostics ----*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A faithful model of the Rust compiler's *static text* trait
/// diagnostics — the baseline Argus argues against. It reproduces the
/// behaviours the paper's Section 2 documents:
///
///  - it leads with the deepest failed predicate along a single failing
///    chain (E0271 "type mismatch resolving" / E0277 "the trait bound is
///    not satisfied" / E0275 "overflow evaluating the requirement");
///  - it stops at branch points, never describing alternatives (so the
///    key bound can be entirely absent, as in the Bevy example);
///  - it prints the "required for X to implement Y" provenance chain but
///    elides the middle ("N redundant requirements hidden") — sometimes
///    hiding exactly the bound a developer needs (the Diesel example);
///  - it heuristically shortens type paths, occasionally rendering
///    distinct types identically (users::table and posts::table both as
///    `table`).
///
/// The user-study simulator's "without Argus" condition reads this
/// structure, so the modelled elisions directly drive that experiment.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_DIAGNOSTICS_DIAGNOSTICS_H
#define ARGUS_DIAGNOSTICS_DIAGNOSTICS_H

#include "extract/InferenceTree.h"
#include "tlang/Printer.h"

#include <string>
#include <vector>

namespace argus {

struct DiagnosticOptions {
  /// Chain entries shown before eliding: the first MaxChainHead entries
  /// nearest the failure plus the final MaxChainTail nearest the root.
  size_t MaxChainHead = 1;
  size_t MaxChainTail = 2;

  /// Disable elision entirely (what a 100-line diagnostic would look
  /// like; used by the ablation bench).
  bool ShowFullChains = false;
};

/// A rendered diagnostic plus the structured facts the study simulator
/// needs about what the text does and does not contain.
struct RenderedDiagnostic {
  std::string Text;
  std::string ErrorCode; ///< "E0277", "E0271", "E0275", or "E0283".

  /// The node whose predicate the diagnostic leads with.
  IGoalId ReportedNode;

  /// Goals whose predicates appear anywhere in the text, reported-first.
  std::vector<IGoalId> MentionedGoals;

  /// Chain entries hidden as "N redundant requirements hidden".
  size_t HiddenRequirements = 0;

  /// True if \p Goal's predicate is visible in the text.
  bool mentions(IGoalId Goal) const;
};

class DiagnosticRenderer {
public:
  explicit DiagnosticRenderer(const Program &Prog,
                              DiagnosticOptions Opts = DiagnosticOptions());

  /// Renders the diagnostic rustc would print for the failure \p Tree
  /// describes.
  RenderedDiagnostic render(const InferenceTree &Tree) const;

private:
  const Program *Prog;
  DiagnosticOptions Opts;
  TypePrinter Printer;
};

} // namespace argus

#endif // ARGUS_DIAGNOSTICS_DIAGNOSTICS_H
