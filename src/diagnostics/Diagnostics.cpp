//===- diagnostics/Diagnostics.cpp ----------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "diagnostics/Diagnostics.h"

#include "analysis/CompilerDistance.h"

#include <algorithm>

using namespace argus;

bool RenderedDiagnostic::mentions(IGoalId Goal) const {
  return std::find(MentionedGoals.begin(), MentionedGoals.end(), Goal) !=
         MentionedGoals.end();
}

DiagnosticRenderer::DiagnosticRenderer(const Program &Prog,
                                       DiagnosticOptions Opts)
    : Prog(&Prog), Opts(Opts), Printer(Prog) {}

/// Renders "`SelfTy` to implement `Trait<Args>`" for a trait goal, or the
/// predicate text otherwise.
static std::string requirementText(const TypePrinter &Printer,
                                   const Predicate &Pred) {
  if (Pred.Kind == PredicateKind::Trait)
    return "`" + Printer.print(Pred.Subject) + "` to implement `" +
           Printer.printTraitRef(Pred.Trait, Pred.Args) + "`";
  return "`" + Printer.print(Pred) + "` to hold";
}

RenderedDiagnostic DiagnosticRenderer::render(const InferenceTree &Tree) const {
  RenderedDiagnostic Out;
  const SourceManager &Sources = Prog->session().sources();

  IGoalId Reported = compilerReportedNode(Tree);
  Out.ReportedNode = Reported;
  const IdealGoal &Lead = Tree.goal(Reported);
  const IdealGoal &Root = Tree.root();

  // Pick the error code the way rustc does.
  std::string Headline;
  if (Lead.Result == EvalResult::Overflow) {
    Out.ErrorCode = "E0275";
    Headline = "overflow evaluating the requirement `" +
               Printer.print(Lead.Pred) + "`";
  } else if (Lead.Pred.Kind == PredicateKind::Projection) {
    Out.ErrorCode = "E0271";
    Headline = "type mismatch resolving `" + Printer.print(Lead.Pred) + "`";
  } else if (Lead.Result == EvalResult::Maybe) {
    Out.ErrorCode = "E0283";
    Headline = "type annotations needed: cannot satisfy `" +
               Printer.print(Lead.Pred) + "`";
  } else if (Lead.Pred.Kind == PredicateKind::Trait) {
    Out.ErrorCode = "E0277";
    // Library-provided #[on_unimplemented] messages replace the generic
    // headline (rustc's diagnostic attribute namespace; Section 6).
    const TraitDecl *Trait = Prog->findTrait(Lead.Pred.Trait);
    if (Trait && !Trait->OnUnimplemented.empty()) {
      Headline = Trait->OnUnimplemented;
      const std::string Placeholder = "{Self}";
      for (size_t Pos; (Pos = Headline.find(Placeholder)) !=
                       std::string::npos;)
        Headline.replace(Pos, Placeholder.size(),
                         "`" + Printer.print(Lead.Pred.Subject) + "`");
    } else {
      Headline = "the trait bound `" + Printer.print(Lead.Pred) +
                 "` is not satisfied";
    }
  } else {
    Out.ErrorCode = "E0277";
    Headline = "the requirement `" + Printer.print(Lead.Pred) +
               "` is not satisfied";
  }

  std::string Text = "error[" + Out.ErrorCode + "]: " + Headline + "\n";
  Out.MentionedGoals.push_back(Reported);

  // Primary span: where the root obligation came from.
  if (Root.Origin.isValid()) {
    LineColumn LC = Sources.lineColumn(Root.Origin.File, Root.Origin.Begin);
    Text += "  --> " + Sources.describe(Root.Origin) + "\n";
    Text += "   |\n";
    std::string Line(Sources.lineText(Root.Origin.File, LC.Line));
    Text += "   | " + Line + "\n";
    Text += "   | " + std::string(LC.Column - 1, ' ') +
            std::string(std::max<size_t>(1, Root.Origin.length()), '^') +
            " required by a bound introduced by this call\n";
  }

  // Provenance chain from the reported node up to (excluding) the root:
  // "required for X to implement Y" notes, with the middle elided.
  std::vector<IGoalId> Chain = Tree.pathToRoot(Reported);
  // Chain[0] == Reported, Chain.back() == root. The notes cover
  // Chain[1..]; rustc shows the first few and the last, hiding the rest.
  std::vector<IGoalId> Notes(Chain.begin() + 1, Chain.end());

  size_t Head = Opts.ShowFullChains ? Notes.size() : Opts.MaxChainHead;
  size_t Tail = Opts.ShowFullChains ? 0 : Opts.MaxChainTail;
  if (Head + Tail >= Notes.size()) {
    for (IGoalId Goal : Notes) {
      Text += "  = note: required for " +
              requirementText(Printer, Tree.goal(Goal).Pred) + "\n";
      Out.MentionedGoals.push_back(Goal);
    }
  } else {
    for (size_t I = 0; I != Head; ++I) {
      Text += "  = note: required for " +
              requirementText(Printer, Tree.goal(Notes[I]).Pred) + "\n";
      Out.MentionedGoals.push_back(Notes[I]);
    }
    Out.HiddenRequirements = Notes.size() - Head - Tail;
    Text += "  = note: " + std::to_string(Out.HiddenRequirements) +
            " redundant requirement" +
            (Out.HiddenRequirements == 1 ? "" : "s") + " hidden\n";
    for (size_t I = Notes.size() - Tail; I != Notes.size(); ++I) {
      Text += "  = note: required for " +
              requirementText(Printer, Tree.goal(Notes[I]).Pred) + "\n";
      Out.MentionedGoals.push_back(Notes[I]);
    }
  }

  // The bound's declaration site, when the reported node has one.
  if (Lead.Origin.isValid() && !(Lead.Origin == Root.Origin)) {
    Text += "note: required by a bound at " +
            Sources.describe(Lead.Origin) + "\n";
  }

  // E0283 gets rustc's trailing hints: the competing candidates and the
  // annotation suggestion.
  if (Out.ErrorCode == "E0283") {
    if (Lead.Pred.Kind == PredicateKind::Trait) {
      const std::vector<ImplId> &Impls = Prog->implsOf(Lead.Pred.Trait);
      if (!Impls.empty()) {
        Text += "  = note: multiple `impl`s satisfying the bound were "
                "found:\n";
        const size_t MaxShown = 4;
        for (size_t I = 0; I != Impls.size() && I != MaxShown; ++I)
          Text += "          - " +
                  Printer.printImplHeader(Prog->impl(Impls[I])) + "\n";
        if (Impls.size() > MaxShown)
          Text += "          - and " +
                  std::to_string(Impls.size() - MaxShown) + " others\n";
      }
    }
    Text += "  = help: consider giving this type an explicit annotation\n";
  }

  Out.Text = std::move(Text);
  return Out;
}
