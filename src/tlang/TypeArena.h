//===- tlang/TypeArena.h - Type interning and substitution ----*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns and interns all Type nodes of a session, and provides the
/// structural operations the solver needs: parameter substitution,
/// inference-variable collection, and occurs checks.
///
/// Every interned type carries a precomputed structural hash, built at
/// intern time from its children's cached hashes (O(arity), not
/// O(tree)). intern() itself keys its table on that hash, and
/// PredicateHasher mixes it in when given an arena, so deep types are
/// never rehashed node-by-node on the solver's hot paths.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_TLANG_TYPEARENA_H
#define ARGUS_TLANG_TYPEARENA_H

#include "tlang/Type.h"

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

namespace argus {

/// A substitution from type parameters (by name) to types.
using ParamSubst = std::unordered_map<Symbol, TypeId>;

class TypeArena {
public:
  /// Interns \p T, returning the id of the canonical copy.
  TypeId intern(Type T);

  const Type &get(TypeId Id) const;

  size_t size() const { return Types.size(); }

  /// The cached structural hash of \p Id: equal types (across arenas)
  /// hash equal, and the lookup is O(1) — the hash was computed when the
  /// type was interned.
  size_t hashOf(TypeId Id) const;

  /// Number of hashOf() calls answered from the cache, i.e. deep-hash
  /// computations avoided. Surfaced through SessionStats.
  uint64_t hashLookups() const { return HashLookups; }

  // Convenience constructors.
  TypeId unit();
  TypeId error();
  TypeId param(Symbol Name);
  TypeId infer(uint32_t Index);
  TypeId reference(Region Rgn, bool Mutable, TypeId Pointee);
  TypeId adt(Symbol Ctor, std::vector<TypeId> Args = {});
  TypeId tuple(std::vector<TypeId> Elements);
  TypeId fnPtr(std::vector<TypeId> Params, TypeId Ret);
  TypeId fnDef(Symbol Name, std::vector<TypeId> Params, TypeId Ret);
  TypeId projection(TypeId SelfTy, Symbol Trait, std::vector<TypeId> TraitArgs,
                    Symbol Assoc);

  /// Replaces Param types by their mapping in \p Subst (parameters not in
  /// the map are left untouched).
  TypeId substitute(TypeId T, const ParamSubst &Subst);

  /// Replaces Infer variables through \p Lookup; variables for which
  /// \p Lookup returns an invalid id are left in place. Used by the
  /// unifier's resolve step.
  TypeId substituteInfer(TypeId T,
                         const std::function<TypeId(uint32_t)> &Lookup);

  /// Appends the indices of all inference variables in \p T (with
  /// duplicates) to \p Out.
  void collectInferVars(TypeId T, std::vector<uint32_t> &Out) const;

  /// True if inference variable \p Index occurs in \p T.
  bool occurs(TypeId T, uint32_t Index) const;

  /// True if \p T contains any Param type (i.e. is not fully concrete).
  bool hasParams(TypeId T) const;

  /// Appends every region mentioned in \p T (on references) to \p Out.
  void collectRegions(TypeId T, std::vector<Region> &Out) const;

  /// Number of nodes in the type tree for \p T (used by complexity
  /// heuristics and the pretty printer's ellipsis decisions).
  size_t typeSize(TypeId T) const;

  /// The *match key* of \p T: the id of a canonical copy with every
  /// region erased, or invalid if \p T contains an inference variable or
  /// an Error type. For two types with valid match keys and no Param on
  /// at least one side, unification succeeds iff the keys are equal —
  /// InferContext::unify is structural equality modulo regions once no
  /// variable can bind. The candidate index uses this to skip concrete
  /// impls without instantiating them. Memoized; interns at most one new
  /// type per distinct erased shape.
  TypeId matchKey(TypeId T);

private:
  /// The structural hash of \p T, mixing the cached hashes of its
  /// (already interned) children.
  size_t computeHash(const Type &T) const;

  // A deque keeps node addresses stable while intern() grows the arena:
  // several operations hold a `const Type &` across recursive calls that
  // may intern new types. Hashes is parallel to Types.
  std::deque<Type> Types;
  std::deque<size_t> Hashes;
  // Keyed by the precomputed structural hash; collisions resolved by
  // structural equality against the stored node.
  std::unordered_multimap<size_t, TypeId> Interned;
  mutable uint64_t HashLookups = 0;
  // matchKey memo, indexed by TypeId value. State 0 = not computed;
  // 1 = computed (key may still be invalid for var/error-containing
  // types — that outcome is memoized too).
  std::vector<TypeId> MatchKeys;
  std::vector<uint8_t> MatchKeyState;
};

} // namespace argus

#endif // ARGUS_TLANG_TYPEARENA_H
