//===- tlang/Program.h - A complete L_TRAIT context -----------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Session (shared interner/arena/source manager) and Program (the ctxt of
/// Figure 5: declarations plus root goals). Programs also carry the
/// evaluation suite's ground-truth annotations (`root_cause` directives),
/// which Figure 12a's experiment consumes.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_TLANG_PROGRAM_H
#define ARGUS_TLANG_PROGRAM_H

#include "support/Arena.h"
#include "support/SourceManager.h"
#include "support/StringInterner.h"
#include "tlang/Decl.h"
#include "tlang/TypeArena.h"

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace argus {

/// Shared mutable state for one analysis session. Not thread-safe; create
/// one Session per thread in parallel benchmarks.
class Session {
public:
  StringInterner &interner() { return Interner; }
  const StringInterner &interner() const { return Interner; }
  SourceManager &sources() { return Sources; }
  const SourceManager &sources() const { return Sources; }
  TypeArena &types() { return Arena; }
  const TypeArena &types() const { return Arena; }

  /// Shorthand for interning a name.
  Symbol name(std::string_view Text) { return Interner.intern(Text); }

  /// Returns the text of \p Sym.
  const std::string &text(Symbol Sym) const { return Interner.text(Sym); }

  /// Per-solve scratch pools (bump arena, reusable encode buffers and
  /// memo slots). Each Solver borrows this and calls beginSolve(); the
  /// capacity — and any tag-validated memo contents — survive across
  /// solves, which is what makes small queries cheap in hot loops.
  SolveScratch &scratch() { return Scratch; }

private:
  StringInterner Interner;
  SourceManager Sources;
  TypeArena Arena;
  SolveScratch Scratch;
};

/// The shallow shape of a self type that unification can never change:
/// its root constructor. Two types whose head keys differ cannot unify
/// (InferContext::unify rejects on kind, name, trait name, mutability, or
/// arity before ever recursing), so the solver can skip impls whose head
/// key mismatches a goal's without instantiating them.
struct ImplHeadKey {
  TypeKind Kind = TypeKind::Unit;
  Symbol Name;      ///< Adt/FnDef ctor, Param name, Projection assoc.
  Symbol TraitName; ///< Projection only.
  uint32_t Arity = 0;
  bool Mutable = false; ///< Ref only.

  friend bool operator==(const ImplHeadKey &A, const ImplHeadKey &B) {
    return A.Kind == B.Kind && A.Name == B.Name &&
           A.TraitName == B.TraitName && A.Arity == B.Arity &&
           A.Mutable == B.Mutable;
  }
};

struct ImplHeadKeyHasher {
  size_t operator()(const ImplHeadKey &K) const;
};

/// The declaration context of Figure 5 plus the root goals to solve.
class Program {
public:
  explicit Program(Session &S) : S(&S), Uid(nextUid()) {}

  Session &session() const { return *S; }

  /// Process-unique identity of this Program. Session-scoped scratch
  /// caches (supertrait elaborations, candidate plans) tag their
  /// contents with this instead of the Program's address, which a
  /// destroyed-and-reallocated revision could reuse.
  uint64_t uid() const { return Uid; }

  // --- Declaration registration (used by the parser and by programmatic
  // --- corpus builders). Each returns a stable index.

  void addTypeCtor(TypeCtorDecl Decl);
  void addTrait(TraitDecl Decl);
  ImplId addImpl(ImplDecl Decl);
  void addFn(FnDecl Decl);
  void addGoal(GoalDecl Goal);
  void addRootCause(Predicate Pred);

  // --- Lookup.

  const TypeCtorDecl *findTypeCtor(Symbol Name) const;
  const TraitDecl *findTrait(Symbol Name) const;
  const FnDecl *findFn(Symbol Name) const;
  const ImplDecl &impl(ImplId Id) const;

  /// All impls whose trait is \p Trait, in declaration order.
  const std::vector<ImplId> &implsOf(Symbol Trait) const;

  /// The head key of \p Ty's root, or nullopt when the root is an
  /// inference variable (which can unify with any head).
  static std::optional<ImplHeadKey> headKeyOf(const TypeArena &Arena,
                                              TypeId Ty);

  /// Impls of \p Trait whose declared self type has head key \p Key, in
  /// declaration order. An impl whose self-type root is a generic
  /// parameter (or an inference variable) is a *wildcard* — it can match
  /// any head and is listed by wildcardImplsOf() instead.
  const std::vector<ImplId> &implsOfHead(Symbol Trait,
                                         const ImplHeadKey &Key) const;
  const std::vector<ImplId> &wildcardImplsOf(Symbol Trait) const;

  // --- Enumeration slices and dependency fingerprints (goal cache).
  // --- Memoized per Program; Programs are immutable once built and used
  // --- from one thread at a time, so the mutable memos need no locking.

  /// The exact candidate sequence one trait-goal enumeration walks: with
  /// a head key, the head bucket merged with the trait's blanket impls in
  /// declaration (ImplId) order; without one, the trait's full impl list.
  /// Fp caches sliceFingerprint() lazily.
  struct ImplSlice {
    std::vector<ImplId> Seq;
    mutable uint64_t Fp = 0;
    mutable bool FpValid = false;
    /// Level-2 index data (see exactPlan), built lazily.
    mutable std::vector<TypeId> ExactPlan;
    mutable bool PlanValid = false;
  };

  /// Memoized slice for (Trait, Head). The returned reference is stable
  /// for the Program's lifetime. An unknown or invalid trait yields the
  /// empty slice.
  const ImplSlice &implSlice(Symbol Trait,
                             const std::optional<ImplHeadKey> &Head) const;

  /// The second level of the candidate index, parallel to \p Slice.Seq:
  /// for each impl, the region-erased match key of its declared self
  /// type when that type is fully concrete (no generics, no inference
  /// variables, no Error), or an invalid id when the impl must always be
  /// attempted. When a goal's self type is itself concrete, an impl
  /// whose valid plan key differs from the goal's match key could only
  /// fail head unification (TypeArena::matchKey documents the
  /// equivalence), so the solver skips it without instantiating — the
  /// assembled tree is byte-identical, only the work changes. Memoized
  /// per slice, hence per Program, and reused across goals, jobs, and
  /// solver instances.
  const std::vector<TypeId> &exactPlan(const ImplSlice &Slice) const;

  /// Fingerprint of a slice: folds implFingerprint() over the sequence.
  /// The empty slice has a distinguished marker value, so "no impl could
  /// match" is itself a checkable (negative) dependency.
  uint64_t sliceFingerprint(const ImplSlice &Slice) const;

  // --- Prebuilt solver index (the tentpole). The solver layer analyses
  // --- the program at coherence time (see solver/Index.h) and installs a
  // --- whole-program candidate index here: every declared (trait, head)
  // --- bucket slice materialized up front with eager fingerprints and
  // --- exact plans, minus impls the subsumption pass proved unreachable.
  // --- Once installed, implSlice() serves from it instead of the lazy
  // --- SliceMemo; any later declaration edit invalidates it.

  /// True once finishSolverIndex() has run (and no edit invalidated it).
  bool hasSolverIndex() const { return Prebuilt != nullptr && PrebuiltLive; }

  /// Starts an install, discarding any previous prebuilt state.
  /// \p SubsumptionEnabled is recorded for introspection only; the
  /// decisions themselves arrive via markSubsumed().
  void beginSolverIndex(bool SubsumptionEnabled);

  /// Excludes \p Id from every prebuilt slice. Only sound for impls that
  /// can never assemble a candidate for any goal this program can pose
  /// (the builder proves this; see solver/Index.cpp).
  void markSubsumed(ImplId Id);

  /// Appends a human-readable inprocessing decision (surfaced in --trace).
  void addIndexNote(std::string Note);

  /// Materializes every slice and flips implSlice() over to the prebuilt
  /// path. Idempotent per beginSolverIndex().
  void finishSolverIndex();

  /// Drops a partial install (budget stop mid-build); implSlice() keeps
  /// (or returns to) the lazy path.
  void discardSolverIndex();

  /// Impls excluded by markSubsumed(), in call order.
  const std::vector<ImplId> &subsumedImpls() const;

  /// Inprocessing notes recorded by addIndexNote(), in call order. Valid
  /// whether or not the install completed.
  const std::vector<std::string> &indexNotes() const;

  /// RAII: hides an installed prebuilt index for a scope, so implSlice()
  /// serves the lazy (unpruned) path. Ad-hoc predicates — anything not
  /// derivable from the program's declared goals, like the suggestion
  /// verifier's wrapper hypotheses — sit outside the reachability
  /// closure the subsumption pass pruned against, so they must not see
  /// the pruned buckets (see solver/Index.h). No-op when no index is
  /// live. Programs are per-Session single-threaded objects, so the
  /// mutable toggle is safe.
  class SolverIndexSuspension {
  public:
    explicit SolverIndexSuspension(const Program &P)
        : P(P), Was(P.PrebuiltLive) {
      P.PrebuiltLive = false;
    }
    ~SolverIndexSuspension() { P.PrebuiltLive = Was; }
    SolverIndexSuspension(const SolverIndexSuspension &) = delete;
    SolverIndexSuspension &operator=(const SolverIndexSuspension &) = delete;

  private:
    const Program &P;
    bool Was;
  };

  /// Structural fingerprint of one impl: generics, trait, trait args,
  /// self type, where-clauses, associated-type bindings, locality, and
  /// source span, with every symbol hashed by text (stable across
  /// sessions and interners).
  uint64_t implFingerprint(ImplId Id) const;

  /// Structural fingerprint of a trait declaration (params, supertrait
  /// where-clauses, associated types with bounds and spans, fn-trait
  /// flag, on_unimplemented text, locality, span); a marker value when
  /// \p Trait is unknown or invalid — absence is a dependency too.
  uint64_t traitDeclFingerprint(Symbol Trait) const;

  const std::vector<TypeCtorDecl> &typeCtors() const { return TypeCtors; }
  const std::vector<TraitDecl> &traits() const { return Traits; }
  const std::vector<ImplDecl> &impls() const { return Impls; }
  const std::vector<FnDecl> &fns() const { return Fns; }
  const std::vector<GoalDecl> &goals() const { return Goals; }

  /// Ground-truth root-cause predicates annotated on this program (for the
  /// Figure 12a experiment). Parallel to nothing: a program-level set.
  const std::vector<Predicate> &rootCauses() const { return RootCauses; }

  /// Locality of the declaration that owns \p Name, looked up across type
  /// constructors, traits, and fns; defaults to Local for unknown names.
  Locality localityOf(Symbol Name) const;

  /// Locality of a type: External only if its head constructor (or fn
  /// item) is external. Params/inference variables count as Local since
  /// the developer controls them.
  Locality typeLocality(TypeId Ty) const;

  // --- Short-name resolution (ShortTys support). Full paths like
  // --- "users::table" resolve by last segment when unambiguous.

  /// All declared full-path names whose last segment is \p Short.
  std::vector<Symbol> resolveShortName(std::string_view Short) const;

  /// True if printing the last segment of \p Name would collide with a
  /// different declaration (e.g. users::table vs posts::table).
  bool isShortNameAmbiguous(Symbol Name) const;

  /// Last path segment of \p Name ("diesel::SelectStatement" ->
  /// "SelectStatement").
  static std::string_view lastSegment(std::string_view Path);

private:
  static uint64_t nextUid();
  void indexName(Symbol Name);

  Session *S;
  uint64_t Uid = 0;
  std::vector<TypeCtorDecl> TypeCtors;
  std::vector<TraitDecl> Traits;
  std::vector<ImplDecl> Impls;
  std::vector<FnDecl> Fns;
  std::vector<GoalDecl> Goals;
  std::vector<Predicate> RootCauses;

  std::unordered_map<Symbol, uint32_t> TypeCtorIndex;
  std::unordered_map<Symbol, uint32_t> TraitIndex;
  std::unordered_map<Symbol, uint32_t> FnIndex;
  std::unordered_map<Symbol, std::vector<ImplId>> ImplsByTrait;

  /// Per-trait candidate index: impls bucketed by self-type head key,
  /// with can-match-anything impls kept aside. Built in addImpl.
  struct TraitImplIndex {
    std::unordered_map<ImplHeadKey, std::vector<ImplId>, ImplHeadKeyHasher>
        ByHead;
    std::vector<ImplId> Wildcard;
  };
  std::unordered_map<Symbol, TraitImplIndex> ImplIndex;

  std::unordered_map<std::string, std::vector<Symbol>> ShortNames;

  // --- Slice / fingerprint memos (see implSlice). Mutable because they
  // --- are caches over an immutable Program; not thread-safe, matching
  // --- the one-Session-per-thread contract.
  struct SliceMemoKey {
    uint32_t Trait = 0; ///< Raw symbol value (sentinel for invalid).
    bool HasHead = false;
    ImplHeadKey Head;
    friend bool operator==(const SliceMemoKey &A, const SliceMemoKey &B) {
      return A.Trait == B.Trait && A.HasHead == B.HasHead &&
             A.Head == B.Head;
    }
  };
  struct SliceMemoKeyHasher {
    size_t operator()(const SliceMemoKey &K) const;
  };
  mutable std::unordered_map<SliceMemoKey, ImplSlice, SliceMemoKeyHasher>
      SliceMemo;
  mutable ImplSlice InvalidTraitSlice; ///< Shared by invalid-symbol queries.
  mutable std::vector<std::pair<uint64_t, bool>> ImplFpMemo;
  mutable std::unordered_map<uint32_t, uint64_t> TraitFpMemo;

  /// Prebuilt index storage (see hasSolverIndex). Separate from SliceMemo
  /// so a discarded install can never leak pruned slices into the lazy
  /// path. PrebuiltLive gates serving: false between beginSolverIndex()
  /// and finishSolverIndex(), and again after an invalidating edit.
  struct PrebuiltIndex {
    std::unordered_map<SliceMemoKey, ImplSlice, SliceMemoKeyHasher> Slices;
    /// Per-trait fallback for head keys with no declared bucket: the
    /// trait's wildcard impls only (what the lazy merge would produce).
    std::unordered_map<uint32_t, ImplSlice> WildcardOnly;
    std::vector<ImplId> Subsumed;
    std::vector<bool> IsSubsumed; ///< Indexed by ImplId value.
    std::vector<std::string> Notes;
    bool Subsumption = false;
  };
  std::unique_ptr<PrebuiltIndex> Prebuilt;
  /// Mutable so SolverIndexSuspension can hide the index through a const
  /// Program reference for the scope of an ad-hoc solve.
  mutable bool PrebuiltLive = false;

  /// Shared empty-note/empty-impl results for accessors with no index.
  static const std::vector<ImplId> NoSubsumed;
  static const std::vector<std::string> NoNotes;
};

} // namespace argus

#endif // ARGUS_TLANG_PROGRAM_H
