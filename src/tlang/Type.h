//===- tlang/Type.h - L_TRAIT types ---------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type grammar of L_TRAIT (Figure 5 of the paper):
///
///   tau ::= unit | alpha | &rho tau | &rho mut tau | pi
///         | S<tau...> | (tau_1, ..., tau_n) | fn(tau...) -> tau
///
/// plus function *item* types `fn(A) -> B {name}` (distinct nominal types
/// per function, as in Rust), which the inertia heuristic's FnToTrait /
/// TyAsCallable categories depend on, and inference variables created
/// during solving. Types are interned: structurally equal types share a
/// TypeId, so equality is O(1).
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_TLANG_TYPE_H
#define ARGUS_TLANG_TYPE_H

#include "support/Ids.h"
#include "support/StringInterner.h"

#include <vector>

namespace argus {

struct TypeTag {};
using TypeId = Id<TypeTag>;

/// Region (lifetime) annotations on references and outlives predicates.
enum class RegionKind : uint8_t {
  Static, ///< 'static
  Named,  ///< 'a, 'b, ... declared regions
  Erased, ///< unannotated; outlives only itself and is outlived by 'static
};

struct Region {
  RegionKind Kind = RegionKind::Erased;
  Symbol Name; ///< Only meaningful for Named.

  static Region makeStatic() { return Region{RegionKind::Static, Symbol()}; }
  static Region named(Symbol Name) {
    return Region{RegionKind::Named, Name};
  }
  static Region erased() { return Region{RegionKind::Erased, Symbol()}; }

  friend bool operator==(Region A, Region B) {
    if (A.Kind != B.Kind)
      return false;
    return A.Kind != RegionKind::Named || A.Name == B.Name;
  }
};

enum class TypeKind : uint8_t {
  Unit,       ///< unit
  Param,      ///< A universally quantified type parameter (alpha).
  Infer,      ///< An inference variable created by the solver.
  Ref,        ///< &'r T and &'r mut T
  Adt,        ///< S<tau...>: a nominal type constructor application.
  Tuple,      ///< (tau_1, ..., tau_n), n >= 2
  FnPtr,      ///< fn(tau...) -> tau
  FnDef,      ///< The unique type of a named fn item: fn(...) -> ... {name}
  Projection, ///< <tau as T<tau...>>::D
  Error,      ///< Recovery placeholder after a parse/resolution error.
};

/// The interned representation of a type. Users manipulate TypeIds; the
/// arena owns the nodes.
struct Type {
  TypeKind Kind = TypeKind::Error;

  /// Param: parameter name. Adt: constructor path. FnDef: function name.
  /// Projection: associated type name (D).
  Symbol Name;

  /// Projection: the trait (T) through which the associated type is
  /// projected.
  Symbol TraitName;

  /// Infer: the variable's index in its InferContext.
  uint32_t InferIndex = 0;

  /// Ref: mutability.
  bool Mutable = false;

  /// Ref: the region annotation.
  Region Rgn;

  /// Adt: constructor arguments. Tuple: elements. FnPtr/FnDef: parameter
  /// types followed by the return type (always non-empty; last element is
  /// the return type). Projection: the self type followed by the trait's
  /// non-self arguments.
  std::vector<TypeId> Args;

  friend bool operator==(const Type &A, const Type &B) {
    return A.Kind == B.Kind && A.Name == B.Name &&
           A.TraitName == B.TraitName && A.InferIndex == B.InferIndex &&
           A.Mutable == B.Mutable && A.Rgn == B.Rgn && A.Args == B.Args;
  }
};

} // namespace argus

#endif // ARGUS_TLANG_TYPE_H
