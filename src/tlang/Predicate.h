//===- tlang/Predicate.h - L_TRAIT predicates -----------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predicates of L_TRAIT. The paper's grammar has three user-facing
/// predicates (trait bounds, projection equalities, outlives), but notes
/// (Section 4) that the real compiler evaluates fourteen kinds, several of
/// which are internal bookkeeping that Argus hides by default. We model
/// that gap with additional internal kinds (WellFormed, Sized,
/// RegionOutlives, NormalizesTo) which our solver genuinely emits and the
/// extraction layer filters unless "show all" is toggled.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_TLANG_PREDICATE_H
#define ARGUS_TLANG_PREDICATE_H

#include "tlang/Type.h"

#include <vector>

namespace argus {

class TypeArena;

enum class PredicateKind : uint8_t {
  // User-facing kinds (the L_TRAIT grammar).
  Trait,          ///< tau: T<tau..., rho...>
  Projection,     ///< pi == tau
  Outlives,       ///< tau: 'rho

  // Internal kinds, hidden by the extractor by default.
  WellFormed,     ///< WF(tau): structural well-formedness obligation.
  Sized,          ///< tau: Sized, auto-emitted for by-value positions.
  RegionOutlives, ///< 'a: 'b between two regions.
  NormalizesTo,   ///< Stateful normalization of a projection into a fresh
                  ///< inference variable (Section 4 of the paper).
};

/// True for kinds that appear in the paper's L_TRAIT grammar and are shown
/// to developers by default.
inline bool isUserFacing(PredicateKind Kind) {
  return Kind == PredicateKind::Trait || Kind == PredicateKind::Projection ||
         Kind == PredicateKind::Outlives;
}

/// A single L_TRAIT predicate. Plain value type: cheap to copy (the types
/// inside are interned ids), structurally comparable and hashable.
struct Predicate {
  PredicateKind Kind = PredicateKind::Trait;

  /// Trait/Sized/WellFormed/Outlives: the subject type.
  /// Projection/NormalizesTo: the projection type (TypeKind::Projection).
  TypeId Subject;

  /// Trait: the trait name.
  Symbol Trait;

  /// Trait: the trait's non-self type arguments.
  std::vector<TypeId> Args;

  /// Projection: the expected type. NormalizesTo: the output inference
  /// variable.
  TypeId Rhs;

  /// Outlives/RegionOutlives: the bound region. RegionOutlives: Subject is
  /// unused and SubRegion is the left-hand region.
  Region Rgn;
  Region SubRegion;

  static Predicate traitBound(TypeId SelfTy, Symbol Trait,
                              std::vector<TypeId> Args = {}) {
    Predicate P;
    P.Kind = PredicateKind::Trait;
    P.Subject = SelfTy;
    P.Trait = Trait;
    P.Args = std::move(Args);
    return P;
  }

  static Predicate projectionEq(TypeId ProjectionTy, TypeId Expected) {
    Predicate P;
    P.Kind = PredicateKind::Projection;
    P.Subject = ProjectionTy;
    P.Rhs = Expected;
    return P;
  }

  static Predicate outlives(TypeId Ty, Region Rgn) {
    Predicate P;
    P.Kind = PredicateKind::Outlives;
    P.Subject = Ty;
    P.Rgn = Rgn;
    return P;
  }

  static Predicate wellFormed(TypeId Ty) {
    Predicate P;
    P.Kind = PredicateKind::WellFormed;
    P.Subject = Ty;
    return P;
  }

  static Predicate sized(TypeId Ty) {
    Predicate P;
    P.Kind = PredicateKind::Sized;
    P.Subject = Ty;
    return P;
  }

  static Predicate regionOutlives(Region Sub, Region Sup) {
    Predicate P;
    P.Kind = PredicateKind::RegionOutlives;
    P.SubRegion = Sub;
    P.Rgn = Sup;
    return P;
  }

  static Predicate normalizesTo(TypeId ProjectionTy, TypeId OutVar) {
    Predicate P;
    P.Kind = PredicateKind::NormalizesTo;
    P.Subject = ProjectionTy;
    P.Rhs = OutVar;
    return P;
  }

  friend bool operator==(const Predicate &A, const Predicate &B) {
    return A.Kind == B.Kind && A.Subject == B.Subject && A.Trait == B.Trait &&
           A.Args == B.Args && A.Rhs == B.Rhs && A.Rgn == B.Rgn &&
           A.SubRegion == B.SubRegion;
  }
};

/// Hash functor so predicates can key unordered containers. When
/// constructed with an arena, type ids are hashed through the arena's
/// cached structural hashes (PredicateHasher{&arena()}), which spreads
/// predicates over deep types far better than raw id values; without one
/// it falls back to hashing the ids directly. Equality is unaffected
/// either way, so the two modes only differ in bucket distribution.
struct PredicateHasher {
  const TypeArena *Arena = nullptr;

  size_t operator()(const Predicate &P) const;
};

} // namespace argus

#endif // ARGUS_TLANG_PREDICATE_H
