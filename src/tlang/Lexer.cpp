//===- tlang/Lexer.cpp ----------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tlang/Lexer.h"

#include <cctype>

using namespace argus;

static bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}

static bool isIdentContinue(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

std::vector<Token> argus::tokenize(const SourceManager &Sources,
                                   FileId File) {
  std::string_view Text = Sources.fileContents(File);
  std::vector<Token> Tokens;
  uint32_t I = 0;
  uint32_t N = static_cast<uint32_t>(Text.size());

  auto MakeSpan = [&](uint32_t Begin, uint32_t End) {
    return Span{File, Begin, End};
  };
  auto Push = [&](TokenKind Kind, uint32_t Begin, uint32_t End,
                  std::string TokenText = std::string()) {
    Tokens.push_back(Token{Kind, std::move(TokenText), MakeSpan(Begin, End)});
  };

  while (I < N) {
    char C = Text[I];
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    // Line comments.
    if (C == '/' && I + 1 < N && Text[I + 1] == '/') {
      while (I < N && Text[I] != '\n')
        ++I;
      continue;
    }
    uint32_t Begin = I;
    if (isIdentStart(C)) {
      while (I < N && isIdentContinue(Text[I]))
        ++I;
      Push(TokenKind::Ident, Begin, I,
           std::string(Text.substr(Begin, I - Begin)));
      continue;
    }
    if (C == '"') {
      ++I;
      uint32_t TextBegin = I;
      while (I < N && Text[I] != '"' && Text[I] != '\n')
        ++I;
      std::string Value(Text.substr(TextBegin, I - TextBegin));
      if (I < N && Text[I] == '"')
        ++I; // Unterminated strings surface as parse errors later.
      else
        Push(TokenKind::Error, Begin, I, "unterminated string");
      Push(TokenKind::String, Begin, I, std::move(Value));
      continue;
    }
    if (C == '\'') {
      ++I;
      uint32_t NameBegin = I;
      while (I < N && isIdentContinue(Text[I]))
        ++I;
      Push(TokenKind::Lifetime, Begin, I,
           std::string(Text.substr(NameBegin, I - NameBegin)));
      continue;
    }
    if (C == '?') {
      ++I;
      uint32_t NameBegin = I;
      while (I < N && isIdentContinue(Text[I]))
        ++I;
      Push(TokenKind::InferName, Begin, I,
           std::string(Text.substr(NameBegin, I - NameBegin)));
      continue;
    }
    // Multi-character punctuation first.
    if (C == ':' && I + 1 < N && Text[I + 1] == ':') {
      I += 2;
      Push(TokenKind::PathSep, Begin, I);
      continue;
    }
    if (C == '-' && I + 1 < N && Text[I + 1] == '>') {
      I += 2;
      Push(TokenKind::Arrow, Begin, I);
      continue;
    }
    if (C == '=' && I + 1 < N && Text[I + 1] == '=') {
      I += 2;
      Push(TokenKind::EqEq, Begin, I);
      continue;
    }
    ++I;
    switch (C) {
    case '(':
      Push(TokenKind::LParen, Begin, I);
      break;
    case ')':
      Push(TokenKind::RParen, Begin, I);
      break;
    case '{':
      Push(TokenKind::LBrace, Begin, I);
      break;
    case '}':
      Push(TokenKind::RBrace, Begin, I);
      break;
    case '[':
      Push(TokenKind::LBracket, Begin, I);
      break;
    case ']':
      Push(TokenKind::RBracket, Begin, I);
      break;
    case '<':
      Push(TokenKind::Lt, Begin, I);
      break;
    case '>':
      Push(TokenKind::Gt, Begin, I);
      break;
    case ',':
      Push(TokenKind::Comma, Begin, I);
      break;
    case ';':
      Push(TokenKind::Semi, Begin, I);
      break;
    case ':':
      Push(TokenKind::Colon, Begin, I);
      break;
    case '=':
      Push(TokenKind::Eq, Begin, I);
      break;
    case '&':
      Push(TokenKind::Amp, Begin, I);
      break;
    case '+':
      Push(TokenKind::Plus, Begin, I);
      break;
    case '#':
      Push(TokenKind::Hash, Begin, I);
      break;
    default:
      Push(TokenKind::Error, Begin, I, std::string(1, C));
      break;
    }
  }
  Push(TokenKind::Eof, N, N);
  return Tokens;
}

const char *argus::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of file";
  case TokenKind::Ident:
    return "identifier";
  case TokenKind::String:
    return "string literal";
  case TokenKind::Lifetime:
    return "lifetime";
  case TokenKind::InferName:
    return "inference placeholder";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Lt:
    return "'<'";
  case TokenKind::Gt:
    return "'>'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::PathSep:
    return "'::'";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::Eq:
    return "'='";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Hash:
    return "'#'";
  case TokenKind::Error:
    return "invalid character";
  }
  return "<token>";
}
