//===- tlang/TypeArena.cpp ------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tlang/TypeArena.h"

#include <cassert>

using namespace argus;

static size_t hashCombine(size_t Seed, size_t Value) {
  return Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

size_t TypeArena::computeHash(const Type &T) const {
  size_t H = static_cast<size_t>(T.Kind);
  H = hashCombine(H, T.Name.value());
  H = hashCombine(H, T.TraitName.value());
  H = hashCombine(H, T.InferIndex);
  H = hashCombine(H, T.Mutable ? 1 : 0);
  H = hashCombine(H, static_cast<size_t>(T.Rgn.Kind));
  if (T.Rgn.Kind == RegionKind::Named)
    H = hashCombine(H, T.Rgn.Name.value());
  // Children are interned before their parent, so their deep hashes are
  // cached: the whole tree's hash costs O(arity) here.
  for (TypeId Arg : T.Args)
    H = hashCombine(H, hashOf(Arg));
  return H;
}

TypeId TypeArena::intern(Type T) {
  size_t H = computeHash(T);
  auto [It, End] = Interned.equal_range(H);
  for (; It != End; ++It)
    if (Types[It->second.value()] == T)
      return It->second;
  TypeId Id(static_cast<uint32_t>(Types.size()));
  Interned.emplace(H, Id);
  Types.push_back(std::move(T));
  Hashes.push_back(H);
  return Id;
}

const Type &TypeArena::get(TypeId Id) const {
  assert(Id.isValid() && Id.value() < Types.size() && "bad TypeId");
  return Types[Id.value()];
}

size_t TypeArena::hashOf(TypeId Id) const {
  assert(Id.isValid() && Id.value() < Hashes.size() && "bad TypeId");
  ++HashLookups;
  return Hashes[Id.value()];
}

TypeId TypeArena::unit() {
  Type T;
  T.Kind = TypeKind::Unit;
  return intern(std::move(T));
}

TypeId TypeArena::error() {
  Type T;
  T.Kind = TypeKind::Error;
  return intern(std::move(T));
}

TypeId TypeArena::param(Symbol Name) {
  Type T;
  T.Kind = TypeKind::Param;
  T.Name = Name;
  return intern(std::move(T));
}

TypeId TypeArena::infer(uint32_t Index) {
  Type T;
  T.Kind = TypeKind::Infer;
  T.InferIndex = Index;
  return intern(std::move(T));
}

TypeId TypeArena::reference(Region Rgn, bool Mutable, TypeId Pointee) {
  Type T;
  T.Kind = TypeKind::Ref;
  T.Rgn = Rgn;
  T.Mutable = Mutable;
  T.Args = {Pointee};
  return intern(std::move(T));
}

TypeId TypeArena::adt(Symbol Ctor, std::vector<TypeId> Args) {
  Type T;
  T.Kind = TypeKind::Adt;
  T.Name = Ctor;
  T.Args = std::move(Args);
  return intern(std::move(T));
}

TypeId TypeArena::tuple(std::vector<TypeId> Elements) {
  assert(Elements.size() >= 2 && "tuples have at least two elements");
  Type T;
  T.Kind = TypeKind::Tuple;
  T.Args = std::move(Elements);
  return intern(std::move(T));
}

TypeId TypeArena::fnPtr(std::vector<TypeId> Params, TypeId Ret) {
  Type T;
  T.Kind = TypeKind::FnPtr;
  T.Args = std::move(Params);
  T.Args.push_back(Ret);
  return intern(std::move(T));
}

TypeId TypeArena::fnDef(Symbol Name, std::vector<TypeId> Params, TypeId Ret) {
  Type T;
  T.Kind = TypeKind::FnDef;
  T.Name = Name;
  T.Args = std::move(Params);
  T.Args.push_back(Ret);
  return intern(std::move(T));
}

TypeId TypeArena::projection(TypeId SelfTy, Symbol Trait,
                             std::vector<TypeId> TraitArgs, Symbol Assoc) {
  Type T;
  T.Kind = TypeKind::Projection;
  T.Name = Assoc;
  T.TraitName = Trait;
  T.Args = {SelfTy};
  T.Args.insert(T.Args.end(), TraitArgs.begin(), TraitArgs.end());
  return intern(std::move(T));
}

TypeId TypeArena::substitute(TypeId T, const ParamSubst &Subst) {
  if (Subst.empty())
    return T; // Nothing can change; skip the walk (hot for 0-generic impls).
  const Type &Node = get(T);
  if (Node.Kind == TypeKind::Param) {
    auto It = Subst.find(Node.Name);
    return It == Subst.end() ? T : It->second;
  }
  if (Node.Args.empty())
    return T;

  bool Changed = false;
  std::vector<TypeId> NewArgs;
  NewArgs.reserve(Node.Args.size());
  for (TypeId Arg : Node.Args) {
    TypeId NewArg = substitute(Arg, Subst);
    Changed |= NewArg != Arg;
    NewArgs.push_back(NewArg);
  }
  if (!Changed)
    return T;

  Type Copy = Node;
  Copy.Args = std::move(NewArgs);
  return intern(std::move(Copy));
}

TypeId TypeArena::substituteInfer(
    TypeId T, const std::function<TypeId(uint32_t)> &Lookup) {
  const Type &Node = get(T);
  if (Node.Kind == TypeKind::Infer) {
    TypeId Bound = Lookup(Node.InferIndex);
    if (!Bound.isValid())
      return T;
    // The binding itself may contain further inference variables.
    return substituteInfer(Bound, Lookup);
  }
  if (Node.Args.empty())
    return T;

  bool Changed = false;
  std::vector<TypeId> NewArgs;
  NewArgs.reserve(Node.Args.size());
  for (TypeId Arg : Node.Args) {
    TypeId NewArg = substituteInfer(Arg, Lookup);
    Changed |= NewArg != Arg;
    NewArgs.push_back(NewArg);
  }
  if (!Changed)
    return T;

  Type Copy = Node;
  Copy.Args = std::move(NewArgs);
  return intern(std::move(Copy));
}

void TypeArena::collectInferVars(TypeId T, std::vector<uint32_t> &Out) const {
  const Type &Node = get(T);
  if (Node.Kind == TypeKind::Infer) {
    Out.push_back(Node.InferIndex);
    return;
  }
  for (TypeId Arg : Node.Args)
    collectInferVars(Arg, Out);
}

bool TypeArena::occurs(TypeId T, uint32_t Index) const {
  const Type &Node = get(T);
  if (Node.Kind == TypeKind::Infer)
    return Node.InferIndex == Index;
  for (TypeId Arg : Node.Args)
    if (occurs(Arg, Index))
      return true;
  return false;
}

bool TypeArena::hasParams(TypeId T) const {
  const Type &Node = get(T);
  if (Node.Kind == TypeKind::Param)
    return true;
  for (TypeId Arg : Node.Args)
    if (hasParams(Arg))
      return true;
  return false;
}

void TypeArena::collectRegions(TypeId T, std::vector<Region> &Out) const {
  const Type &Node = get(T);
  if (Node.Kind == TypeKind::Ref)
    Out.push_back(Node.Rgn);
  for (TypeId Arg : Node.Args)
    collectRegions(Arg, Out);
}

size_t TypeArena::typeSize(TypeId T) const {
  const Type &Node = get(T);
  size_t Size = 1;
  for (TypeId Arg : Node.Args)
    Size += typeSize(Arg);
  return Size;
}

TypeId TypeArena::matchKey(TypeId T) {
  if (!T.isValid())
    return TypeId::invalid();
  if (T.value() < MatchKeyState.size() && MatchKeyState[T.value()])
    return MatchKeys[T.value()];

  TypeId Out = TypeId::invalid();
  // get() returns a deque reference, stable across the interning the
  // recursion below may perform.
  const Type &Node = get(T);
  if (Node.Kind != TypeKind::Infer && Node.Kind != TypeKind::Error) {
    Type Canon;
    Canon.Kind = Node.Kind;
    Canon.Name = Node.Name;
    Canon.TraitName = Node.TraitName;
    Canon.Mutable = Node.Mutable;
    Canon.Rgn = Region::erased();
    bool Ok = true;
    Canon.Args.reserve(Node.Args.size());
    for (TypeId Arg : Node.Args) {
      TypeId Key = matchKey(Arg);
      if (!Key.isValid()) {
        Ok = false;
        break;
      }
      Canon.Args.push_back(Key);
    }
    if (Ok)
      Out = intern(std::move(Canon));
  }

  if (T.value() >= MatchKeyState.size()) {
    MatchKeys.resize(Types.size(), TypeId::invalid());
    MatchKeyState.resize(Types.size(), 0);
  }
  MatchKeys[T.value()] = Out;
  MatchKeyState[T.value()] = 1;
  return Out;
}
