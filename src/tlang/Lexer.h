//===- tlang/Lexer.h - Tokenizer for the L_TRAIT DSL ----------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the textual form of L_TRAIT in which the evaluation
/// corpus is written. The surface syntax deliberately mirrors Rust
/// (struct/trait/impl/where/fn) so the corpus programs read like the
/// programs in the paper's figures.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_TLANG_LEXER_H
#define ARGUS_TLANG_LEXER_H

#include "support/SourceManager.h"

#include <string>
#include <vector>

namespace argus {

enum class TokenKind : uint8_t {
  Eof,
  Ident,      ///< foo, Bar (single path segment)
  String,     ///< "..." (attribute values)
  Lifetime,   ///< 'a, 'static
  InferName,  ///< ?M : a named inference-variable placeholder
  LParen,     ///< (
  RParen,     ///< )
  LBrace,     ///< {
  RBrace,     ///< }
  LBracket,   ///< [
  RBracket,   ///< ]
  Lt,         ///< <
  Gt,         ///< >
  Comma,      ///< ,
  Semi,       ///< ;
  Colon,      ///< :
  PathSep,    ///< ::
  Arrow,      ///< ->
  EqEq,       ///< ==
  Eq,         ///< =
  Amp,        ///< &
  Plus,       ///< +
  Hash,       ///< #
  Error,      ///< Unrecognized character.
};

struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text; ///< Ident/Lifetime/InferName spelling (no sigils).
  Span Sp;
};

/// Tokenizes \p File (already registered with \p Sources). Line comments
/// (`//`) are skipped. The token list always ends with an Eof token.
std::vector<Token> tokenize(const SourceManager &Sources, FileId File);

/// Human-readable token-kind name for error messages.
const char *tokenKindName(TokenKind Kind);

} // namespace argus

#endif // ARGUS_TLANG_LEXER_H
