//===- tlang/Parser.h - Parser for the L_TRAIT DSL ------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the textual L_TRAIT DSL. Grammar sketch
/// (see tests/tlang for worked examples):
///
///   program    := item*
///   item       := attrs? (struct | trait | impl | fn | goal | root_cause)
///   attrs      := '#' '[' ident (',' ident)* ']'     // external, fn_trait
///   struct     := 'struct' path generics? ';'
///   trait      := 'trait' path generics? (':' bounds)? where?
///                 ('{' ('type' ident (':' bounds)? ';')* '}' | ';')
///   impl       := 'impl' generics? traitRef 'for' type where?
///                 ('{' ('type' ident '=' type ';')* '}' | ';')
///   fn         := 'fn' path '(' types? ')' ('->' type)? ';'
///   goal       := 'goal' predicate where? ';'
///   root_cause := 'root_cause' predicate ';'
///   where      := 'where' predicate (',' predicate)*
///   predicate  := lifetime ':' lifetime
///              |  type '==' type
///              |  type ':' (lifetime | traitRef ('+' traitRef)*)
///   type       := '(' ')' | '(' type (',' type)+ ')'
///              |  '&' lifetime? 'mut'? type
///              |  'fn' '(' types? ')' ('->' type)?
///              |  '<' type 'as' traitRef '>' '::' ident
///              |  path ('<' types '>')?        // param / ctor / fn item
///              |  '?' ident                    // inference placeholder
///
/// Names must be declared before use (one pass). Identifier resolution in
/// type position: generic parameters in scope win; then fully qualified
/// declarations; then unique short-name matches.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_TLANG_PARSER_H
#define ARGUS_TLANG_PARSER_H

#include "tlang/Lexer.h"
#include "tlang/Program.h"

#include <string>
#include <vector>

namespace argus {

struct ParseError {
  Span Sp;
  std::string Message;
};

/// Result of parsing one DSL file into \p Prog (declarations are appended;
/// a Program may aggregate several files).
struct ParseResult {
  bool Success = false;
  std::vector<ParseError> Errors;

  /// Renders all errors as "file:line:col: message" lines.
  std::string describe(const SourceManager &Sources) const;
};

/// Parses \p File into \p Prog. Returns the accumulated errors; on any
/// error, declarations parsed before the error are retained but Success is
/// false.
ParseResult parseFile(Program &Prog, FileId File);

/// Convenience: registers \p Source as a file named \p Name and parses it.
ParseResult parseSource(Program &Prog, std::string Name, std::string Source);

} // namespace argus

#endif // ARGUS_TLANG_PARSER_H
