//===- tlang/Parser.cpp ---------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tlang/Parser.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace argus;

namespace {

/// Attributes recognized on items.
struct Attrs {
  bool External = false;
  bool FnTrait = false;
  bool Speculative = false;
  std::string OnUnimplemented;
};

class Parser {
public:
  Parser(Program &Prog, FileId File)
      : Prog(Prog), S(Prog.session()), File(File),
        Tokens(tokenize(S.sources(), File)) {}

  ParseResult run();

private:
  // --- Token cursor.
  const Token &peek(size_t Ahead = 0) const {
    size_t Index = std::min(Pos + Ahead, Tokens.size() - 1);
    return Tokens[Index];
  }
  const Token &advance() {
    const Token &Tok = Tokens[Pos];
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return Tok;
  }
  bool at(TokenKind Kind) const { return peek().Kind == Kind; }
  bool atIdent(std::string_view Text) const {
    return at(TokenKind::Ident) && peek().Text == Text;
  }
  bool consume(TokenKind Kind) {
    if (!at(Kind))
      return false;
    advance();
    return true;
  }
  bool expect(TokenKind Kind, const char *Context);

  void error(Span Sp, std::string Message) {
    Errors.push_back(ParseError{Sp, std::move(Message)});
  }

  /// Skips forward to the next ';' or '}' to resynchronize after an error.
  void synchronize();

  // --- Grammar productions.
  void parseItem();
  Attrs parseAttrs();
  void parseStruct(const Attrs &A);
  void parseTrait(const Attrs &A);
  void parseImpl(const Attrs &A);
  void parseFn(const Attrs &A);
  void parseGoal(const Attrs &A);
  void parseRootCause();

  /// Parses `<A, B, 'a>`; type parameter names go to \p Params.
  bool parseGenerics(std::vector<Symbol> &Params);

  /// path := ident ('::' ident)*; returns the interned full path.
  bool parsePath(Symbol &Out, Span &Sp);

  /// traitRef := path ('<' types '>')?; resolves the trait name.
  bool parseTraitRef(Symbol &Trait, std::vector<TypeId> &Args, Span &Sp);

  bool parseType(TypeId &Out);
  bool parseTypeList(std::vector<TypeId> &Out, TokenKind Terminator);

  /// Parses one predicate; `A: T1 + T2` appends multiple entries.
  bool parsePredicates(std::vector<Predicate> &Out);
  bool parseWhereClause(std::vector<Predicate> &Out);

  /// Resolves a named type application. \p Args already parsed.
  TypeId resolveNamedType(Symbol Path, Span Sp, std::vector<TypeId> Args,
                          bool SingleSegment);

  /// Resolves a trait name, allowing unique short-name matches.
  Symbol resolveTraitName(Symbol Path, Span Sp);

  /// Fresh (or reused) inference variable for a `?Name` placeholder.
  TypeId inferPlaceholder(const std::string &Name);

  Program &Prog;
  Session &S;
  FileId File;
  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::vector<ParseError> Errors;

  /// Generic parameters currently in scope (includes "Self" inside trait
  /// bodies).
  std::unordered_set<Symbol> Scope;
  std::unordered_map<std::string, uint32_t> InferNames;
  uint32_t NextInfer = 0;

  /// Forward declarations gathered by preScan(), so mutually recursive
  /// traits/types parse in one pass. Maps type names to their arity.
  std::unordered_map<Symbol, size_t> PendingCtors;
  std::unordered_set<Symbol> PendingTraits;

  /// Registers every struct/trait name (with struct arity) before the
  /// main parse.
  void preScan();
};

} // namespace

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (consume(Kind))
    return true;
  error(peek().Sp, std::string("expected ") + tokenKindName(Kind) +
                       " in " + Context + ", found " +
                       tokenKindName(peek().Kind));
  return false;
}

void Parser::synchronize() {
  while (!at(TokenKind::Eof)) {
    if (consume(TokenKind::Semi))
      return;
    if (consume(TokenKind::RBrace))
      return;
    advance();
  }
}

ParseResult Parser::run() {
  // Pre-scan existing goals so placeholder numbering does not collide when
  // multiple files are parsed into one program.
  std::vector<uint32_t> Existing;
  for (const GoalDecl &Goal : Prog.goals()) {
    S.types().collectInferVars(Goal.Pred.Subject, Existing);
    for (TypeId Arg : Goal.Pred.Args)
      S.types().collectInferVars(Arg, Existing);
    if (Goal.Pred.Rhs.isValid())
      S.types().collectInferVars(Goal.Pred.Rhs, Existing);
  }
  for (uint32_t Index : Existing)
    NextInfer = std::max(NextInfer, Index + 1);

  preScan();
  while (!at(TokenKind::Eof))
    parseItem();

  // Every forward reference must have been declared by now.
  for (const auto &[Name, Arity] : PendingCtors) {
    (void)Arity;
    if (!Prog.findTypeCtor(Name))
      error(Tokens.back().Sp,
            "type '" + S.text(Name) + "' was referenced but never declared");
  }
  for (Symbol Name : PendingTraits)
    if (!Prog.findTrait(Name))
      error(Tokens.back().Sp, "trait '" + S.text(Name) +
                                  "' was referenced but never declared");

  ParseResult Result;
  Result.Errors = std::move(Errors);
  Result.Success = Result.Errors.empty();
  return Result;
}

void Parser::preScan() {
  for (size_t I = 0; I + 1 < Tokens.size(); ++I) {
    const Token &Tok = Tokens[I];
    if (Tok.Kind != TokenKind::Ident)
      continue;
    bool IsStruct = Tok.Text == "struct" || Tok.Text == "newtype";
    bool IsTrait = Tok.Text == "trait";
    if (!IsStruct && !IsTrait)
      continue;
    // Read the path.
    size_t J = I + 1;
    if (Tokens[J].Kind != TokenKind::Ident)
      continue;
    std::string Full = Tokens[J].Text;
    ++J;
    while (J + 1 < Tokens.size() && Tokens[J].Kind == TokenKind::PathSep &&
           Tokens[J + 1].Kind == TokenKind::Ident) {
      Full += "::";
      Full += Tokens[J + 1].Text;
      J += 2;
    }
    Symbol Name = S.name(Full);
    if (IsTrait) {
      PendingTraits.insert(Name);
      continue;
    }
    // Count type-parameter arity: Ident tokens at bracket depth 1.
    size_t Arity = 0;
    if (J < Tokens.size() && Tokens[J].Kind == TokenKind::Lt) {
      int Depth = 1;
      for (++J; J < Tokens.size() && Depth > 0; ++J) {
        if (Tokens[J].Kind == TokenKind::Lt)
          ++Depth;
        else if (Tokens[J].Kind == TokenKind::Gt)
          --Depth;
        else if (Depth == 1 && Tokens[J].Kind == TokenKind::Ident)
          ++Arity;
      }
    }
    PendingCtors.emplace(Name, Arity);
  }
}

Attrs Parser::parseAttrs() {
  Attrs Result;
  while (at(TokenKind::Hash)) {
    advance();
    if (!expect(TokenKind::LBracket, "attribute"))
      return Result;
    do {
      if (!at(TokenKind::Ident)) {
        error(peek().Sp, "expected attribute name");
        break;
      }
      const Token &Name = advance();
      if (Name.Text == "external") {
        Result.External = true;
      } else if (Name.Text == "fn_trait") {
        Result.FnTrait = true;
      } else if (Name.Text == "speculative") {
        Result.Speculative = true;
      } else if (Name.Text == "on_unimplemented") {
        if (!expect(TokenKind::Eq, "attribute"))
          break;
        if (!at(TokenKind::String)) {
          error(peek().Sp, "expected a string after on_unimplemented =");
          break;
        }
        Result.OnUnimplemented = advance().Text;
      } else {
        error(Name.Sp, "unknown attribute '" + Name.Text + "'");
      }
    } while (consume(TokenKind::Comma));
    expect(TokenKind::RBracket, "attribute");
  }
  return Result;
}

void Parser::parseItem() {
  Attrs A = parseAttrs();
  if (atIdent("struct") || atIdent("newtype")) {
    parseStruct(A);
  } else if (atIdent("trait")) {
    parseTrait(A);
  } else if (atIdent("impl")) {
    parseImpl(A);
  } else if (atIdent("fn")) {
    parseFn(A);
  } else if (atIdent("goal")) {
    parseGoal(A);
  } else if (atIdent("root_cause")) {
    parseRootCause();
  } else {
    error(peek().Sp, std::string("expected an item, found ") +
                         tokenKindName(peek().Kind) +
                         (at(TokenKind::Ident) ? " '" + peek().Text + "'"
                                               : std::string()));
    synchronize();
  }
}

bool Parser::parsePath(Symbol &Out, Span &Sp) {
  if (!at(TokenKind::Ident)) {
    error(peek().Sp, "expected a path");
    return false;
  }
  const Token &First = advance();
  std::string Full = First.Text;
  Sp = First.Sp;
  while (at(TokenKind::PathSep)) {
    advance();
    if (!at(TokenKind::Ident)) {
      error(peek().Sp, "expected a path segment after '::'");
      return false;
    }
    const Token &Seg = advance();
    Full += "::";
    Full += Seg.Text;
    Sp.End = Seg.Sp.End;
  }
  Out = S.name(Full);
  return true;
}

bool Parser::parseGenerics(std::vector<Symbol> &Params) {
  if (!consume(TokenKind::Lt))
    return true; // No generics is fine.
  if (consume(TokenKind::Gt))
    return true;
  do {
    if (at(TokenKind::Lifetime)) {
      // Region parameters are accepted but need no scope entry: regions
      // are resolved by name.
      advance();
      continue;
    }
    if (!at(TokenKind::Ident)) {
      error(peek().Sp, "expected a type parameter");
      return false;
    }
    const Token &Name = advance();
    Symbol Sym = S.name(Name.Text);
    Params.push_back(Sym);
    Scope.insert(Sym);
  } while (consume(TokenKind::Comma));
  return expect(TokenKind::Gt, "generic parameter list");
}

TypeId Parser::inferPlaceholder(const std::string &Name) {
  auto [It, Inserted] = InferNames.emplace(Name, NextInfer);
  if (Inserted)
    ++NextInfer;
  return S.types().infer(It->second);
}

TypeId Parser::resolveNamedType(Symbol Path, Span Sp,
                                std::vector<TypeId> Args,
                                bool SingleSegment) {
  // Generic parameters shadow declarations, but only for bare names.
  if (SingleSegment && Scope.count(Path)) {
    if (!Args.empty())
      error(Sp, "type parameter '" + S.text(Path) +
                    "' does not take arguments");
    return S.types().param(Path);
  }

  auto Resolve = [&](Symbol Name) -> TypeId {
    if (const TypeCtorDecl *Ctor = Prog.findTypeCtor(Name)) {
      if (Ctor->Params.size() != Args.size())
        error(Sp, "wrong number of type arguments for '" + S.text(Name) +
                      "': expected " + std::to_string(Ctor->Params.size()) +
                      ", found " + std::to_string(Args.size()));
      return S.types().adt(Name, std::move(Args));
    }
    if (const FnDecl *Fn = Prog.findFn(Name)) {
      if (!Args.empty())
        error(Sp, "fn item '" + S.text(Name) + "' does not take arguments");
      return S.types().fnDef(Name, Fn->Params, Fn->Ret);
    }
    return TypeId::invalid();
  };

  if (TypeId Direct = Resolve(Path); Direct.isValid())
    return Direct;

  // Forward reference registered by preScan().
  if (auto It = PendingCtors.find(Path); It != PendingCtors.end()) {
    if (It->second != Args.size())
      error(Sp, "wrong number of type arguments for '" + S.text(Path) +
                    "': expected " + std::to_string(It->second) +
                    ", found " + std::to_string(Args.size()));
    return S.types().adt(Path, std::move(Args));
  }

  // Short-name fallback: unique last-segment match.
  std::vector<Symbol> Candidates = Prog.resolveShortName(S.text(Path));
  std::vector<Symbol> Usable;
  for (Symbol Candidate : Candidates)
    if (Prog.findTypeCtor(Candidate) || Prog.findFn(Candidate))
      Usable.push_back(Candidate);
  if (Usable.size() == 1)
    return Resolve(Usable[0]);
  if (Usable.size() > 1) {
    error(Sp, "ambiguous type name '" + S.text(Path) + "'");
    return S.types().error();
  }
  error(Sp, "unknown type '" + S.text(Path) + "'");
  return S.types().error();
}

Symbol Parser::resolveTraitName(Symbol Path, Span Sp) {
  if (Prog.findTrait(Path) || PendingTraits.count(Path))
    return Path;
  std::vector<Symbol> Candidates = Prog.resolveShortName(S.text(Path));
  std::vector<Symbol> Usable;
  for (Symbol Candidate : Candidates)
    if (Prog.findTrait(Candidate))
      Usable.push_back(Candidate);
  if (Usable.size() == 1)
    return Usable[0];
  error(Sp, (Usable.empty() ? "unknown trait '" : "ambiguous trait '") +
                S.text(Path) + "'");
  return Path; // Keep the name so downstream lookups fail gracefully.
}

bool Parser::parseTraitRef(Symbol &Trait, std::vector<TypeId> &Args,
                           Span &Sp) {
  Symbol Path;
  if (!parsePath(Path, Sp))
    return false;
  if (consume(TokenKind::Lt)) {
    if (!parseTypeList(Args, TokenKind::Gt))
      return false;
    expect(TokenKind::Gt, "trait argument list");
  }
  // "Sized" is builtin and needs no declaration.
  if (S.text(Path) != "Sized")
    Trait = resolveTraitName(Path, Sp);
  else
    Trait = Path;
  return true;
}

bool Parser::parseTypeList(std::vector<TypeId> &Out, TokenKind Terminator) {
  if (peek().Kind == Terminator)
    return true;
  do {
    TypeId Ty;
    if (!parseType(Ty))
      return false;
    Out.push_back(Ty);
  } while (consume(TokenKind::Comma));
  return true;
}

bool Parser::parseType(TypeId &Out) {
  Out = S.types().error();

  // Unit and tuples.
  if (consume(TokenKind::LParen)) {
    if (consume(TokenKind::RParen)) {
      Out = S.types().unit();
      return true;
    }
    std::vector<TypeId> Elements;
    if (!parseTypeList(Elements, TokenKind::RParen))
      return false;
    if (!expect(TokenKind::RParen, "tuple type"))
      return false;
    Out = Elements.size() == 1 ? Elements[0]
                               : S.types().tuple(std::move(Elements));
    return true;
  }

  // References.
  if (consume(TokenKind::Amp)) {
    Region Rgn = Region::erased();
    if (at(TokenKind::Lifetime)) {
      const Token &Life = advance();
      Rgn = Life.Text == "static" ? Region::makeStatic()
                                  : Region::named(S.name(Life.Text));
    }
    bool Mutable = false;
    if (atIdent("mut")) {
      advance();
      Mutable = true;
    }
    TypeId Pointee;
    if (!parseType(Pointee))
      return false;
    Out = S.types().reference(Rgn, Mutable, Pointee);
    return true;
  }

  // Projections: <T as Trait<..>>::Assoc
  if (consume(TokenKind::Lt)) {
    TypeId SelfTy;
    if (!parseType(SelfTy))
      return false;
    if (!atIdent("as")) {
      error(peek().Sp, "expected 'as' in qualified path");
      return false;
    }
    advance();
    Symbol Trait;
    std::vector<TypeId> TraitArgs;
    Span TraitSp;
    if (!parseTraitRef(Trait, TraitArgs, TraitSp))
      return false;
    if (!expect(TokenKind::Gt, "qualified path") ||
        !expect(TokenKind::PathSep, "qualified path"))
      return false;
    if (!at(TokenKind::Ident)) {
      error(peek().Sp, "expected an associated type name");
      return false;
    }
    const Token &Assoc = advance();
    Out = S.types().projection(SelfTy, Trait, std::move(TraitArgs),
                               S.name(Assoc.Text));
    return true;
  }

  // Inference placeholders.
  if (at(TokenKind::InferName)) {
    const Token &Name = advance();
    Out = Name.Text.empty() ? inferPlaceholder("_" + std::to_string(Pos))
                            : inferPlaceholder(Name.Text);
    return true;
  }

  // fn pointer types.
  if (atIdent("fn") && peek(1).Kind == TokenKind::LParen) {
    advance();
    advance(); // '('
    std::vector<TypeId> Params;
    if (!parseTypeList(Params, TokenKind::RParen))
      return false;
    if (!expect(TokenKind::RParen, "fn pointer type"))
      return false;
    TypeId Ret = S.types().unit();
    if (consume(TokenKind::Arrow)) {
      if (!parseType(Ret))
        return false;
    }
    Out = S.types().fnPtr(std::move(Params), Ret);
    return true;
  }

  // Named types: params, constructors, fn items.
  if (at(TokenKind::Ident)) {
    Symbol Path;
    Span Sp;
    bool SingleSegment = peek(1).Kind != TokenKind::PathSep;
    if (!parsePath(Path, Sp))
      return false;
    std::vector<TypeId> Args;
    if (consume(TokenKind::Lt)) {
      if (!parseTypeList(Args, TokenKind::Gt))
        return false;
      if (!expect(TokenKind::Gt, "type argument list"))
        return false;
    }
    Out = resolveNamedType(Path, Sp, std::move(Args), SingleSegment);
    return true;
  }

  error(peek().Sp, std::string("expected a type, found ") +
                       tokenKindName(peek().Kind));
  return false;
}

bool Parser::parsePredicates(std::vector<Predicate> &Out) {
  // Region outlives: 'a: 'b.
  if (at(TokenKind::Lifetime)) {
    const Token &Sub = advance();
    Region SubRgn = Sub.Text == "static" ? Region::makeStatic()
                                         : Region::named(S.name(Sub.Text));
    if (!expect(TokenKind::Colon, "outlives predicate"))
      return false;
    if (!at(TokenKind::Lifetime)) {
      error(peek().Sp, "expected a lifetime");
      return false;
    }
    const Token &Sup = advance();
    Region SupRgn = Sup.Text == "static" ? Region::makeStatic()
                                         : Region::named(S.name(Sup.Text));
    Out.push_back(Predicate::regionOutlives(SubRgn, SupRgn));
    return true;
  }

  TypeId Subject;
  if (!parseType(Subject))
    return false;

  if (consume(TokenKind::EqEq)) {
    TypeId Rhs;
    if (!parseType(Rhs))
      return false;
    Out.push_back(Predicate::projectionEq(Subject, Rhs));
    return true;
  }

  if (!expect(TokenKind::Colon, "predicate"))
    return false;

  // Type-outlives: T: 'a.
  if (at(TokenKind::Lifetime)) {
    const Token &Life = advance();
    Region Rgn = Life.Text == "static" ? Region::makeStatic()
                                       : Region::named(S.name(Life.Text));
    Out.push_back(Predicate::outlives(Subject, Rgn));
    return true;
  }

  // Trait bounds, possibly a '+'-separated list.
  do {
    Symbol Trait;
    std::vector<TypeId> Args;
    Span Sp;
    if (!parseTraitRef(Trait, Args, Sp))
      return false;
    if (S.text(Trait) == "Sized")
      Out.push_back(Predicate::sized(Subject));
    else
      Out.push_back(Predicate::traitBound(Subject, Trait, std::move(Args)));
  } while (consume(TokenKind::Plus));
  return true;
}

bool Parser::parseWhereClause(std::vector<Predicate> &Out) {
  if (!atIdent("where"))
    return true;
  advance();
  do {
    if (!parsePredicates(Out))
      return false;
  } while (consume(TokenKind::Comma));
  return true;
}

void Parser::parseStruct(const Attrs &A) {
  Span KwSp = advance().Sp; // 'struct' / 'newtype'
  Scope.clear();

  TypeCtorDecl Decl;
  Decl.Loc = A.External ? Locality::External : Locality::Local;
  Span NameSp;
  if (!parsePath(Decl.Name, NameSp)) {
    synchronize();
    return;
  }
  Decl.Sp = Span{File, KwSp.Begin, NameSp.End};
  if (!parseGenerics(Decl.Params)) {
    synchronize();
    return;
  }
  if (Prog.findTypeCtor(Decl.Name)) {
    error(NameSp, "duplicate type '" + S.text(Decl.Name) + "'");
    synchronize();
    return;
  }
  expect(TokenKind::Semi, "struct declaration");
  Prog.addTypeCtor(std::move(Decl));
}

void Parser::parseTrait(const Attrs &A) {
  Span KwSp = advance().Sp; // 'trait'
  Scope.clear();
  Scope.insert(S.name("Self"));

  TraitDecl Decl;
  Decl.Loc = A.External ? Locality::External : Locality::Local;
  Decl.IsFnTrait = A.FnTrait;
  Decl.OnUnimplemented = A.OnUnimplemented;
  Span NameSp;
  if (!parsePath(Decl.Name, NameSp)) {
    synchronize();
    return;
  }
  Decl.Sp = Span{File, KwSp.Begin, NameSp.End};
  if (!parseGenerics(Decl.Params)) {
    synchronize();
    return;
  }
  if (Prog.findTrait(Decl.Name)) {
    error(NameSp, "duplicate trait '" + S.text(Decl.Name) + "'");
    synchronize();
    return;
  }
  // The trait must be visible to its own supertrait bounds and assoc
  // bounds (e.g. `type Data: AssocData<Self>` inside AstAssocs refers to
  // projections through AstAssocs itself), so register a provisional copy
  // now and fill in the details below. We therefore parse the remainder
  // first into the local Decl and re-register at the end. Self-references
  // only need the name, which addTrait indexes immediately.
  TypeId SelfTy = S.types().param(S.name("Self"));

  // Supertraits: `trait Foo: Sized + Bar<A>` become where-clauses on Self.
  if (consume(TokenKind::Colon)) {
    do {
      Symbol Trait;
      std::vector<TypeId> Args;
      Span Sp;
      // Allow the trait itself to appear (rare but legal).
      if (!at(TokenKind::Ident)) {
        error(peek().Sp, "expected a supertrait");
        break;
      }
      if (peek().Text == "Sized" && peek(1).Kind != TokenKind::PathSep) {
        advance();
        Decl.WhereClauses.push_back(Predicate::sized(SelfTy));
        continue;
      }
      if (!parseTraitRef(Trait, Args, Sp))
        break;
      Decl.WhereClauses.push_back(
          Predicate::traitBound(SelfTy, Trait, std::move(Args)));
    } while (consume(TokenKind::Plus));
  }

  if (!parseWhereClause(Decl.WhereClauses)) {
    synchronize();
    return;
  }

  // Register before parsing the body so assoc bounds can project through
  // this trait.
  Prog.addTrait(Decl);

  if (consume(TokenKind::Semi))
    return;
  if (!expect(TokenKind::LBrace, "trait body"))
    return;

  std::vector<TypeId> ParamArgs;
  for (Symbol Param : Decl.Params)
    ParamArgs.push_back(S.types().param(Param));

  std::vector<AssocTypeDecl> AssocTypes;
  while (!at(TokenKind::RBrace) && !at(TokenKind::Eof)) {
    if (!atIdent("type")) {
      error(peek().Sp, "expected 'type' in trait body");
      synchronize();
      return;
    }
    Span TypeKw = advance().Sp;
    if (!at(TokenKind::Ident)) {
      error(peek().Sp, "expected an associated type name");
      synchronize();
      return;
    }
    const Token &Name = advance();
    AssocTypeDecl Assoc;
    Assoc.Name = S.name(Name.Text);
    Assoc.Sp = Span{File, TypeKw.Begin, Name.Sp.End};
    if (consume(TokenKind::Colon)) {
      // Bounds on the associated type: subject is the projection
      // <Self as ThisTrait<Params>>::Name.
      TypeId Projection = S.types().projection(SelfTy, Decl.Name, ParamArgs,
                                               Assoc.Name);
      do {
        Symbol Trait;
        std::vector<TypeId> Args;
        Span Sp;
        if (peek().Text == "Sized" && peek(1).Kind != TokenKind::PathSep) {
          advance();
          Assoc.Bounds.push_back(Predicate::sized(Projection));
          continue;
        }
        if (!parseTraitRef(Trait, Args, Sp))
          break;
        Assoc.Bounds.push_back(
            Predicate::traitBound(Projection, Trait, std::move(Args)));
      } while (consume(TokenKind::Plus));
    }
    expect(TokenKind::Semi, "associated type declaration");
    AssocTypes.push_back(std::move(Assoc));
  }
  expect(TokenKind::RBrace, "trait body");

  // Attach the body to the registered trait.
  // (Safe: addTrait stored a copy; we look it up and patch.)
  const TraitDecl *Registered = Prog.findTrait(Decl.Name);
  assert(Registered && "trait vanished after registration");
  const_cast<TraitDecl *>(Registered)->AssocTypes = std::move(AssocTypes);
}

void Parser::parseImpl(const Attrs &A) {
  Span KwSp = advance().Sp; // 'impl'
  Scope.clear();
  // `Self` in impl where-clauses denotes the impl's self type; it parses
  // as a parameter here and the solver substitutes the instantiated self
  // type alongside the impl generics.
  Scope.insert(S.name("Self"));

  ImplDecl Decl;
  Decl.Loc = A.External ? Locality::External : Locality::Local;
  if (!parseGenerics(Decl.Generics)) {
    synchronize();
    return;
  }
  Span TraitSp;
  if (!parseTraitRef(Decl.Trait, Decl.TraitArgs, TraitSp)) {
    synchronize();
    return;
  }
  if (!atIdent("for")) {
    error(peek().Sp, "expected 'for' in impl");
    synchronize();
    return;
  }
  advance();
  if (!parseType(Decl.SelfTy)) {
    synchronize();
    return;
  }
  Decl.Sp = Span{File, KwSp.Begin, peek().Sp.Begin};
  if (!parseWhereClause(Decl.WhereClauses)) {
    synchronize();
    return;
  }

  if (consume(TokenKind::Semi)) {
    Prog.addImpl(std::move(Decl));
    return;
  }
  if (!expect(TokenKind::LBrace, "impl body")) {
    synchronize();
    return;
  }
  while (!at(TokenKind::RBrace) && !at(TokenKind::Eof)) {
    if (!atIdent("type")) {
      error(peek().Sp, "expected 'type' in impl body");
      synchronize();
      return;
    }
    advance();
    if (!at(TokenKind::Ident)) {
      error(peek().Sp, "expected an associated type name");
      synchronize();
      return;
    }
    const Token &Name = advance();
    if (!expect(TokenKind::Eq, "associated type binding")) {
      synchronize();
      return;
    }
    TypeId Bound;
    if (!parseType(Bound)) {
      synchronize();
      return;
    }
    expect(TokenKind::Semi, "associated type binding");
    Decl.Bindings.emplace_back(S.name(Name.Text), Bound);
  }
  expect(TokenKind::RBrace, "impl body");
  Prog.addImpl(std::move(Decl));
}

void Parser::parseFn(const Attrs &A) {
  Span KwSp = advance().Sp; // 'fn'
  Scope.clear();

  FnDecl Decl;
  Decl.Loc = A.External ? Locality::External : Locality::Local;
  Span NameSp;
  if (!parsePath(Decl.Name, NameSp)) {
    synchronize();
    return;
  }
  Decl.Sp = Span{File, KwSp.Begin, NameSp.End};
  if (!expect(TokenKind::LParen, "fn declaration")) {
    synchronize();
    return;
  }
  if (!parseTypeList(Decl.Params, TokenKind::RParen)) {
    synchronize();
    return;
  }
  if (!expect(TokenKind::RParen, "fn declaration")) {
    synchronize();
    return;
  }
  Decl.Ret = S.types().unit();
  if (consume(TokenKind::Arrow)) {
    if (!parseType(Decl.Ret)) {
      synchronize();
      return;
    }
  }
  if (Prog.findFn(Decl.Name)) {
    error(NameSp, "duplicate fn '" + S.text(Decl.Name) + "'");
    synchronize();
    return;
  }
  expect(TokenKind::Semi, "fn declaration");
  Prog.addFn(std::move(Decl));
}

void Parser::parseGoal(const Attrs &A) {
  Span KwSp = advance().Sp; // 'goal'
  Scope.clear();

  std::vector<Predicate> Preds;
  if (!parsePredicates(Preds)) {
    synchronize();
    return;
  }
  std::vector<Predicate> Env;
  if (!parseWhereClause(Env)) {
    synchronize();
    return;
  }
  Span Sp{File, KwSp.Begin, peek().Sp.Begin};
  expect(TokenKind::Semi, "goal");
  for (Predicate &Pred : Preds)
    Prog.addGoal(GoalDecl{std::move(Pred), Env, Sp, A.Speculative});
}

void Parser::parseRootCause() {
  advance(); // 'root_cause'
  Scope.clear();

  std::vector<Predicate> Preds;
  if (!parsePredicates(Preds)) {
    synchronize();
    return;
  }
  expect(TokenKind::Semi, "root_cause");
  for (Predicate &Pred : Preds)
    Prog.addRootCause(std::move(Pred));
}

std::string ParseResult::describe(const SourceManager &Sources) const {
  std::string Out;
  for (const ParseError &Error : Errors) {
    Out += Sources.describe(Error.Sp);
    Out += ": ";
    Out += Error.Message;
    Out.push_back('\n');
  }
  return Out;
}

ParseResult argus::parseFile(Program &Prog, FileId File) {
  Parser P(Prog, File);
  return P.run();
}

ParseResult argus::parseSource(Program &Prog, std::string Name,
                               std::string Source) {
  FileId File =
      Prog.session().sources().addFile(std::move(Name), std::move(Source));
  return parseFile(Prog, File);
}
