//===- tlang/Predicate.cpp ------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tlang/Predicate.h"

#include "tlang/TypeArena.h"

using namespace argus;

static size_t hashCombine(size_t Seed, size_t Value) {
  return Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

static size_t hashRegion(Region R) {
  size_t H = static_cast<size_t>(R.Kind);
  if (R.Kind == RegionKind::Named)
    H = hashCombine(H, R.Name.value());
  return H;
}

size_t PredicateHasher::operator()(const Predicate &P) const {
  auto HashType = [this](TypeId Id) -> size_t {
    if (Arena && Id.isValid())
      return Arena->hashOf(Id);
    return Id.value();
  };
  size_t H = static_cast<size_t>(P.Kind);
  H = hashCombine(H, HashType(P.Subject));
  H = hashCombine(H, P.Trait.value());
  for (TypeId Arg : P.Args)
    H = hashCombine(H, HashType(Arg));
  H = hashCombine(H, HashType(P.Rhs));
  H = hashCombine(H, hashRegion(P.Rgn));
  H = hashCombine(H, hashRegion(P.SubRegion));
  return H;
}
