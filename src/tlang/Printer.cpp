//===- tlang/Printer.cpp --------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tlang/Printer.h"

#include <cassert>

using namespace argus;

TypeId TypePrinter::resolved(TypeId T) const {
  if (!Opts.Resolve)
    return T;
  return Opts.Resolve(T);
}

/// The suffix of \p Path consisting of its last \p Segments segments.
static std::string_view pathSuffix(std::string_view Path, size_t Segments) {
  size_t Pos = Path.size();
  while (Segments-- > 0) {
    size_t Sep = Path.rfind("::", Pos == Path.size() ? Pos : Pos - 2);
    if (Sep == std::string_view::npos)
      return Path;
    Pos = Sep;
  }
  return Path.substr(Pos + 2);
}

std::string TypePrinter::displayName(Symbol Name) const {
  const std::string &Full = Prog->session().text(Name);
  if (Opts.FullPaths)
    return Full;
  std::string_view Short = Program::lastSegment(Full);
  if (Opts.DisambiguateShortNames && Prog->isShortNameAmbiguous(Name)) {
    // Extend the suffix until it is unique among the colliding
    // declarations: users::columns::id vs posts::columns::id need two
    // extra segments, users::table vs posts::table need one.
    std::vector<Symbol> Collisions = Prog->resolveShortName(Short);
    for (size_t Segments = 2;; ++Segments) {
      std::string_view Suffix = pathSuffix(Full, Segments);
      bool Unique = true;
      for (Symbol Other : Collisions) {
        if (Other == Name)
          continue;
        if (pathSuffix(Prog->session().text(Other), Segments) == Suffix) {
          Unique = false;
          break;
        }
      }
      if (Unique || Suffix == std::string_view(Full))
        return std::string(Suffix);
    }
  }
  return std::string(Short);
}

std::string TypePrinter::printRegion(Region R) const {
  switch (R.Kind) {
  case RegionKind::Static:
    return "'static";
  case RegionKind::Named:
    return "'" + Prog->session().text(R.Name);
  case RegionKind::Erased:
    return "'_";
  }
  return "'_";
}

void TypePrinter::printArgsInto(const std::vector<TypeId> &Args,
                                std::string &Out, size_t Depth) const {
  if (Args.empty())
    return;
  if (Opts.ElideArgs) {
    size_t Total = 0;
    for (TypeId Arg : Args)
      Total += Prog->session().types().typeSize(resolved(Arg));
    if (Total > Opts.ElisionThreshold || Depth >= 2) {
      Out += "<...>";
      return;
    }
  }
  Out.push_back('<');
  for (size_t I = 0; I != Args.size(); ++I) {
    if (I != 0)
      Out += ", ";
    printInto(Args[I], Out, Depth + 1);
  }
  Out.push_back('>');
}

void TypePrinter::printInto(TypeId T, std::string &Out, size_t Depth) const {
  T = resolved(T);
  const Type &Node = Prog->session().types().get(T);
  switch (Node.Kind) {
  case TypeKind::Unit:
    Out += "()";
    return;
  case TypeKind::Error:
    Out += "{error}";
    return;
  case TypeKind::Param:
    Out += Prog->session().text(Node.Name);
    return;
  case TypeKind::Infer:
    Out += "_";
    return;
  case TypeKind::Ref:
    Out.push_back('&');
    if (Node.Rgn.Kind != RegionKind::Erased) {
      Out += printRegion(Node.Rgn);
      Out.push_back(' ');
    }
    if (Node.Mutable)
      Out += "mut ";
    printInto(Node.Args[0], Out, Depth);
    return;
  case TypeKind::Adt:
    Out += displayName(Node.Name);
    printArgsInto(Node.Args, Out, Depth);
    return;
  case TypeKind::Tuple: {
    Out.push_back('(');
    for (size_t I = 0; I != Node.Args.size(); ++I) {
      if (I != 0)
        Out += ", ";
      printInto(Node.Args[I], Out, Depth + 1);
    }
    Out.push_back(')');
    return;
  }
  case TypeKind::FnPtr:
  case TypeKind::FnDef: {
    Out += "fn(";
    for (size_t I = 0; I + 1 < Node.Args.size(); ++I) {
      if (I != 0)
        Out += ", ";
      printInto(Node.Args[I], Out, Depth + 1);
    }
    Out.push_back(')');
    TypeId Ret = Node.Args.back();
    if (Prog->session().types().get(resolved(Ret)).Kind != TypeKind::Unit) {
      Out += " -> ";
      printInto(Ret, Out, Depth + 1);
    }
    if (Node.Kind == TypeKind::FnDef) {
      Out += " {";
      Out += displayName(Node.Name);
      Out.push_back('}');
    }
    return;
  }
  case TypeKind::Projection: {
    Out.push_back('<');
    printInto(Node.Args[0], Out, Depth + 1);
    Out += " as ";
    Out += displayName(Node.TraitName);
    std::vector<TypeId> TraitArgs(Node.Args.begin() + 1, Node.Args.end());
    printArgsInto(TraitArgs, Out, Depth + 1);
    Out += ">::";
    Out += Prog->session().text(Node.Name);
    return;
  }
  }
}

std::string TypePrinter::print(TypeId T) const {
  std::string Out;
  printInto(T, Out, 0);
  return Out;
}

std::string TypePrinter::printTraitRef(Symbol Trait,
                                       const std::vector<TypeId> &Args) const {
  std::string Out = displayName(Trait);
  printArgsInto(Args, Out, 0);
  return Out;
}

std::string TypePrinter::print(const Predicate &P) const {
  switch (P.Kind) {
  case PredicateKind::Trait:
    return print(P.Subject) + ": " + printTraitRef(P.Trait, P.Args);
  case PredicateKind::Projection:
    return print(P.Subject) + " == " + print(P.Rhs);
  case PredicateKind::Outlives:
    return print(P.Subject) + ": " + printRegion(P.Rgn);
  case PredicateKind::WellFormed:
    return "WF(" + print(P.Subject) + ")";
  case PredicateKind::Sized:
    return print(P.Subject) + ": Sized";
  case PredicateKind::RegionOutlives:
    return printRegion(P.SubRegion) + ": " + printRegion(P.Rgn);
  case PredicateKind::NormalizesTo:
    return "NormalizesTo(" + print(P.Subject) + ", " + print(P.Rhs) + ")";
  }
  return "<unknown predicate>";
}

std::string TypePrinter::printImplHeader(const ImplDecl &Impl) const {
  std::string Out = "impl";
  if (!Impl.Generics.empty()) {
    Out.push_back('<');
    for (size_t I = 0; I != Impl.Generics.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += Prog->session().text(Impl.Generics[I]);
    }
    Out.push_back('>');
  }
  Out.push_back(' ');
  Out += printTraitRef(Impl.Trait, Impl.TraitArgs);
  Out += " for ";
  Out += print(Impl.SelfTy);
  return Out;
}

std::string TypePrinter::printImplFull(const ImplDecl &Impl) const {
  std::string Out = printImplHeader(Impl);
  if (!Impl.WhereClauses.empty()) {
    Out += " where ";
    for (size_t I = 0; I != Impl.WhereClauses.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += print(Impl.WhereClauses[I]);
    }
  }
  return Out;
}
