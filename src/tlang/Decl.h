//===- tlang/Decl.h - L_TRAIT declarations --------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declarations of L_TRAIT: type constructors (tydecl), traits (trdecl),
/// impl blocks, fn items, and top-level goals. Every declaration carries a
/// Locality (local crate vs. external library); the distinction drives the
/// orphan-rule component of the inertia heuristic, exactly as in the
/// paper's Section 3.3.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_TLANG_DECL_H
#define ARGUS_TLANG_DECL_H

#include "support/SourceManager.h"
#include "tlang/Predicate.h"

#include <optional>
#include <vector>

namespace argus {

/// Whether a declaration lives in the developer's crate or in an external
/// library (declared `#[external]` in the DSL).
enum class Locality : uint8_t { Local, External };

/// A nominal type constructor (`struct`/`newtype` in the DSL).
struct TypeCtorDecl {
  Symbol Name;                ///< Fully qualified path, e.g. "diesel::SelectStatement".
  std::vector<Symbol> Params; ///< Declared type parameters.
  Locality Loc = Locality::Local;
  Span Sp;
};

/// An associated type declared inside a trait, with optional bounds
/// (`type Data: AssocData<Self>;`). Bounds are stored with `Self` and the
/// trait's parameters in scope.
struct AssocTypeDecl {
  Symbol Name;
  std::vector<Predicate> Bounds;
  Span Sp;
};

/// A trait declaration. The Self parameter is implicit; Params are the
/// remaining parameters (multi-parameter type classes, Section 3.1).
struct TraitDecl {
  Symbol Name;
  std::vector<Symbol> Params;
  /// Where-clauses / supertrait bounds (e.g. `Self: Sized`).
  std::vector<Predicate> WhereClauses;
  std::vector<AssocTypeDecl> AssocTypes;
  Locality Loc = Locality::Local;
  Span Sp;
  /// Marked `#[fn_trait]`: the trait is Fn-like, so fn items and fn
  /// pointers of matching arity get a builtin implementation.
  bool IsFnTrait = false;

  /// `#[on_unimplemented = "..."]`: a library-provided diagnostic
  /// headline (rustc's #[diagnostic::on_unimplemented], Section 6 of the
  /// paper). "{Self}" expands to the failing self type. Empty when
  /// unset.
  std::string OnUnimplemented;

  const AssocTypeDecl *findAssoc(Symbol AssocName) const {
    for (const AssocTypeDecl &Assoc : AssocTypes)
      if (Assoc.Name == AssocName)
        return &Assoc;
    return nullptr;
  }
};

struct ImplTag {};
using ImplId = Id<ImplTag>;

/// An impl block: `impl<Generics> Trait<Args> for SelfTy where ... { type
/// D = tau; }`.
struct ImplDecl {
  ImplId Id;
  std::vector<Symbol> Generics;
  Symbol Trait;
  std::vector<TypeId> TraitArgs; ///< Excluding the self type.
  TypeId SelfTy;
  std::vector<Predicate> WhereClauses;
  /// Associated type bindings, in trait declaration order where present.
  std::vector<std::pair<Symbol, TypeId>> Bindings;
  Locality Loc = Locality::Local;
  Span Sp;

  std::optional<TypeId> findBinding(Symbol Assoc) const {
    for (const auto &[Name, Ty] : Bindings)
      if (Name == Assoc)
        return Ty;
    return std::nullopt;
  }
};

/// A named function item. Referencing its name in type position yields the
/// unique FnDef type `fn(Params) -> Ret {Name}`.
struct FnDecl {
  Symbol Name;
  std::vector<TypeId> Params;
  TypeId Ret;
  Locality Loc = Locality::Local;
  Span Sp;
};

/// A root obligation (`goal` statement): the predicate the "program" needs
/// to hold, such as the bound introduced by a method call. The optional
/// environment models the where-clauses in scope at the obligation site.
struct GoalDecl {
  Predicate Pred;
  std::vector<Predicate> Env;
  Span Sp;
  /// Marked `#[speculative]`: models a soft constraint emitted while the
  /// type checker probes alternatives (e.g. method resolution trying
  /// several traits; Section 4 of the paper). Consecutive speculative
  /// goals form one probe group; the extractor hides failed members of a
  /// group in which some member succeeded.
  bool Speculative = false;
};

} // namespace argus

#endif // ARGUS_TLANG_DECL_H
