//===- tlang/Program.cpp --------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tlang/Program.h"

#include <atomic>
#include <cassert>

using namespace argus;

uint64_t Program::nextUid() {
  static std::atomic<uint64_t> Counter{1};
  return Counter.fetch_add(1, std::memory_order_relaxed);
}

size_t ImplHeadKeyHasher::operator()(const ImplHeadKey &K) const {
  auto Combine = [](size_t Seed, size_t Value) {
    return Seed ^
           (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
  };
  size_t H = static_cast<size_t>(K.Kind);
  H = Combine(H, K.Name.value());
  H = Combine(H, K.TraitName.value());
  H = Combine(H, K.Arity);
  H = Combine(H, K.Mutable ? 1 : 0);
  return H;
}

size_t Program::SliceMemoKeyHasher::operator()(const SliceMemoKey &K) const {
  size_t H = ImplHeadKeyHasher()(K.Head);
  H ^= (static_cast<size_t>(K.Trait) + 0x9e3779b97f4a7c15ULL + (H << 6) +
        (H >> 2));
  return H ^ (K.HasHead ? 0x5851F42D4C957F2DULL : 0);
}

//===----------------------------------------------------------------------===//
// Dependency fingerprints
//===----------------------------------------------------------------------===//
//
// These hashes identify *program content*, not interner state: every
// symbol contributes its text, and spans contribute their byte offsets
// (rendered diagnostics point at them, so a cached subtree is only
// reusable when the declaration sits at the same place). Two sessions
// that parsed byte-identical declarations produce byte-identical
// fingerprints, which is exactly the goal cache's admission condition.

namespace {

constexpr uint64_t FpSeed = 0xA076'1D64'78BD'642Full;
constexpr uint64_t EmptySliceFp = 0x454D'5054'5953'4C43ull; // "EMPTYSLC"
constexpr uint64_t MissingTraitFp = 0x4E4F'5452'4149'54ull; // "NOTRAIT"

uint64_t fpMix(uint64_t H, uint64_t V) {
  H ^= V * 0x9E3779B97F4A7C15ull;
  H ^= H >> 30;
  H *= 0xBF58476D1CE4E5B9ull;
  return H;
}

uint64_t fpText(uint64_t H, std::string_view Text) {
  H = fpMix(H, Text.size());
  uint64_t Acc = 1469598103934665603ull;
  for (unsigned char C : Text)
    Acc = (Acc ^ C) * 1099511628211ull;
  return fpMix(H, Acc);
}

uint64_t fpSym(uint64_t H, const Session &S, Symbol Sym) {
  if (!Sym.isValid())
    return fpMix(H, 0);
  return fpText(fpMix(H, 1), S.text(Sym));
}

uint64_t fpSpan(uint64_t H, Span Sp) {
  H = fpMix(H, Sp.File.isValid() ? Sp.File.value() + 1 : 0);
  return fpMix(H, (static_cast<uint64_t>(Sp.Begin) << 32) | Sp.End);
}

uint64_t fpType(uint64_t H, const Session &S, TypeId T) {
  if (!T.isValid())
    return fpMix(H, 0);
  const Type &Node = S.types().get(T);
  H = fpMix(H, 1);
  H = fpMix(H, static_cast<uint64_t>(Node.Kind));
  if (Node.Kind == TypeKind::Infer)
    return fpMix(H, Node.InferIndex);
  H = fpSym(H, S, Node.Name);
  H = fpSym(H, S, Node.TraitName);
  H = fpMix(H, Node.Mutable ? 1 : 0);
  H = fpMix(H, static_cast<uint64_t>(Node.Rgn.Kind));
  H = fpSym(H, S, Node.Rgn.Name);
  H = fpMix(H, Node.Args.size());
  for (TypeId Arg : Node.Args)
    H = fpType(H, S, Arg);
  return H;
}

uint64_t fpPred(uint64_t H, const Session &S, const Predicate &P) {
  H = fpMix(H, static_cast<uint64_t>(P.Kind));
  H = fpSym(H, S, P.Trait);
  H = fpType(H, S, P.Subject);
  H = fpMix(H, P.Args.size());
  for (TypeId Arg : P.Args)
    H = fpType(H, S, Arg);
  H = fpType(H, S, P.Rhs);
  H = fpMix(H, static_cast<uint64_t>(P.Rgn.Kind));
  H = fpSym(H, S, P.Rgn.Name);
  H = fpMix(H, static_cast<uint64_t>(P.SubRegion.Kind));
  H = fpSym(H, S, P.SubRegion.Name);
  return H;
}

} // namespace

uint64_t Program::implFingerprint(ImplId Id) const {
  assert(Id.isValid() && Id.value() < Impls.size() && "bad ImplId");
  if (Id.value() >= ImplFpMemo.size())
    ImplFpMemo.resize(Impls.size(), {0, false});
  auto &Slot = ImplFpMemo[Id.value()];
  if (Slot.second)
    return Slot.first;
  const ImplDecl &Decl = Impls[Id.value()];
  uint64_t H = fpMix(FpSeed, 0x494D504Cull); // "IMPL"
  H = fpMix(H, Decl.Generics.size());
  for (Symbol Generic : Decl.Generics)
    H = fpSym(H, *S, Generic);
  H = fpSym(H, *S, Decl.Trait);
  H = fpMix(H, Decl.TraitArgs.size());
  for (TypeId Arg : Decl.TraitArgs)
    H = fpType(H, *S, Arg);
  H = fpType(H, *S, Decl.SelfTy);
  H = fpMix(H, Decl.WhereClauses.size());
  for (const Predicate &Where : Decl.WhereClauses)
    H = fpPred(H, *S, Where);
  H = fpMix(H, Decl.Bindings.size());
  for (const auto &[Name, Ty] : Decl.Bindings) {
    H = fpSym(H, *S, Name);
    H = fpType(H, *S, Ty);
  }
  H = fpMix(H, static_cast<uint64_t>(Decl.Loc));
  H = fpSpan(H, Decl.Sp);
  Slot = {H, true};
  return H;
}

uint64_t Program::traitDeclFingerprint(Symbol Trait) const {
  if (!Trait.isValid())
    return MissingTraitFp;
  auto It = TraitFpMemo.find(Trait.value());
  if (It != TraitFpMemo.end())
    return It->second;
  const TraitDecl *Decl = findTrait(Trait);
  uint64_t H = MissingTraitFp;
  if (Decl) {
    H = fpMix(FpSeed, 0x5452ull); // "TR"
    H = fpSym(H, *S, Decl->Name);
    H = fpMix(H, Decl->Params.size());
    for (Symbol Param : Decl->Params)
      H = fpSym(H, *S, Param);
    H = fpMix(H, Decl->WhereClauses.size());
    for (const Predicate &Where : Decl->WhereClauses)
      H = fpPred(H, *S, Where);
    H = fpMix(H, Decl->AssocTypes.size());
    for (const AssocTypeDecl &Assoc : Decl->AssocTypes) {
      H = fpSym(H, *S, Assoc.Name);
      H = fpMix(H, Assoc.Bounds.size());
      for (const Predicate &Bound : Assoc.Bounds)
        H = fpPred(H, *S, Bound);
      H = fpSpan(H, Assoc.Sp);
    }
    H = fpMix(H, static_cast<uint64_t>(Decl->Loc));
    H = fpSpan(H, Decl->Sp);
    H = fpMix(H, Decl->IsFnTrait ? 1 : 0);
    H = fpText(H, Decl->OnUnimplemented);
  }
  TraitFpMemo.emplace(Trait.value(), H);
  return H;
}

uint64_t Program::sliceFingerprint(const ImplSlice &Slice) const {
  if (Slice.FpValid)
    return Slice.Fp;
  uint64_t H = EmptySliceFp;
  if (!Slice.Seq.empty()) {
    H = fpMix(H, Slice.Seq.size());
    for (ImplId Id : Slice.Seq)
      H = fpMix(H, implFingerprint(Id));
  }
  Slice.Fp = H;
  Slice.FpValid = true;
  return H;
}

const Program::ImplSlice &
Program::implSlice(Symbol Trait,
                   const std::optional<ImplHeadKey> &Head) const {
  if (!Trait.isValid())
    return InvalidTraitSlice;
  SliceMemoKey Key;
  Key.Trait = Trait.value();
  Key.HasHead = Head.has_value();
  if (Head)
    Key.Head = *Head;
  if (Prebuilt && PrebuiltLive) {
    // Prebuilt path: every declared bucket was materialized up front, so
    // a miss means either an unseen head key (served by the trait's
    // wildcard-only fallback — exactly what the lazy merge would build)
    // or a trait with no impls at all (the shared empty slice).
    auto Hit = Prebuilt->Slices.find(Key);
    if (Hit != Prebuilt->Slices.end())
      return Hit->second;
    if (Head) {
      auto Wild = Prebuilt->WildcardOnly.find(Key.Trait);
      if (Wild != Prebuilt->WildcardOnly.end())
        return Wild->second;
    }
    return InvalidTraitSlice;
  }
  auto It = SliceMemo.find(Key);
  if (It != SliceMemo.end())
    return It->second;
  ImplSlice Slice;
  if (!Head) {
    Slice.Seq = implsOf(Trait);
  } else {
    // Merge the head bucket with the blanket impls in ImplId (declaration)
    // order, so enumerating the slice is byte-identical to the unindexed
    // walk restricted to candidates that could match this head.
    const std::vector<ImplId> &Bucket = implsOfHead(Trait, *Head);
    const std::vector<ImplId> &Wild = wildcardImplsOf(Trait);
    Slice.Seq.reserve(Bucket.size() + Wild.size());
    size_t BI = 0, WI = 0;
    while (BI != Bucket.size() || WI != Wild.size()) {
      bool TakeBucket = WI == Wild.size() ||
                        (BI != Bucket.size() && Bucket[BI] < Wild[WI]);
      Slice.Seq.push_back(TakeBucket ? Bucket[BI++] : Wild[WI++]);
    }
  }
  return SliceMemo.emplace(Key, std::move(Slice)).first->second;
}

const std::vector<TypeId> &Program::exactPlan(const ImplSlice &Slice) const {
  if (Slice.PlanValid)
    return Slice.ExactPlan;
  TypeArena &Arena = S->types();
  Slice.ExactPlan.reserve(Slice.Seq.size());
  for (ImplId Id : Slice.Seq) {
    const ImplDecl &Decl = Impls[Id.value()];
    // A self type mentioning a generic parameter is instantiated with
    // fresh variables per attempt and can match many shapes: no key.
    TypeId Key = Arena.hasParams(Decl.SelfTy) ? TypeId::invalid()
                                              : Arena.matchKey(Decl.SelfTy);
    Slice.ExactPlan.push_back(Key);
  }
  Slice.PlanValid = true;
  return Slice.ExactPlan;
}

//===----------------------------------------------------------------------===//
// Prebuilt solver index
//===----------------------------------------------------------------------===//

const std::vector<ImplId> Program::NoSubsumed;
const std::vector<std::string> Program::NoNotes;

void Program::beginSolverIndex(bool SubsumptionEnabled) {
  Prebuilt = std::make_unique<PrebuiltIndex>();
  Prebuilt->Subsumption = SubsumptionEnabled;
  Prebuilt->IsSubsumed.assign(Impls.size(), false);
  PrebuiltLive = false;
}

void Program::markSubsumed(ImplId Id) {
  assert(Prebuilt && "markSubsumed outside beginSolverIndex");
  assert(Id.isValid() && Id.value() < Impls.size() && "bad ImplId");
  if (Prebuilt->IsSubsumed[Id.value()])
    return;
  Prebuilt->IsSubsumed[Id.value()] = true;
  Prebuilt->Subsumed.push_back(Id);
}

void Program::addIndexNote(std::string Note) {
  assert(Prebuilt && "addIndexNote outside beginSolverIndex");
  Prebuilt->Notes.push_back(std::move(Note));
}

void Program::finishSolverIndex() {
  assert(Prebuilt && "finishSolverIndex outside beginSolverIndex");
  if (PrebuiltLive)
    return;
  auto Keep = [&](ImplId Id) { return !Prebuilt->IsSubsumed[Id.value()]; };
  auto Materialize = [&](const SliceMemoKey &Key, ImplSlice Slice) {
    // Eager fingerprint and exact plan: prebuilt slices are shared by
    // every solve over this Program, so the one-time cost replaces a
    // first-goal lazy fill on each hot path they serve.
    const ImplSlice &Stored =
        Prebuilt->Slices.emplace(Key, std::move(Slice)).first->second;
    (void)sliceFingerprint(Stored);
    (void)exactPlan(Stored);
  };
  for (const auto &[Trait, ByTrait] : ImplsByTrait) {
    SliceMemoKey Key;
    Key.Trait = Trait.value();

    // The trait's full enumeration order, minus subsumed impls.
    ImplSlice Full;
    for (ImplId Id : ByTrait)
      if (Keep(Id))
        Full.Seq.push_back(Id);
    Key.HasHead = false;
    Materialize(Key, std::move(Full));

    // One slice per declared head bucket: bucket merged with the
    // trait's blanket impls in declaration order (the lazy merge,
    // precomputed), minus subsumed impls.
    auto IndexIt = ImplIndex.find(Trait);
    if (IndexIt == ImplIndex.end())
      continue;
    const TraitImplIndex &Index = IndexIt->second;
    Key.HasHead = true;
    for (const auto &[HeadKey, Bucket] : Index.ByHead) {
      ImplSlice Merged;
      size_t BI = 0, WI = 0;
      const std::vector<ImplId> &Wild = Index.Wildcard;
      while (BI != Bucket.size() || WI != Wild.size()) {
        bool TakeBucket = WI == Wild.size() ||
                          (BI != Bucket.size() && Bucket[BI] < Wild[WI]);
        ImplId Next = TakeBucket ? Bucket[BI++] : Wild[WI++];
        if (Keep(Next))
          Merged.Seq.push_back(Next);
      }
      Key.Head = HeadKey;
      Materialize(Key, std::move(Merged));
    }

    // Fallback for head keys with no declared bucket: wildcards only.
    ImplSlice WildOnly;
    for (ImplId Id : Index.Wildcard)
      if (Keep(Id))
        WildOnly.Seq.push_back(Id);
    const ImplSlice &Stored =
        Prebuilt->WildcardOnly.emplace(Key.Trait, std::move(WildOnly))
            .first->second;
    (void)sliceFingerprint(Stored);
    (void)exactPlan(Stored);
  }
  PrebuiltLive = true;
}

void Program::discardSolverIndex() {
  Prebuilt.reset();
  PrebuiltLive = false;
}

const std::vector<ImplId> &Program::subsumedImpls() const {
  return Prebuilt ? Prebuilt->Subsumed : NoSubsumed;
}

const std::vector<std::string> &Program::indexNotes() const {
  return Prebuilt ? Prebuilt->Notes : NoNotes;
}

std::optional<ImplHeadKey> Program::headKeyOf(const TypeArena &Arena,
                                              TypeId Ty) {
  const Type &Node = Arena.get(Ty);
  if (Node.Kind == TypeKind::Infer)
    return std::nullopt;
  ImplHeadKey Key;
  Key.Kind = Node.Kind;
  Key.Name = Node.Name;
  Key.TraitName = Node.TraitName;
  Key.Arity = static_cast<uint32_t>(Node.Args.size());
  Key.Mutable = Node.Mutable;
  return Key;
}

void Program::indexName(Symbol Name) {
  std::string Short(lastSegment(S->text(Name)));
  std::vector<Symbol> &Entries = ShortNames[Short];
  for (Symbol Existing : Entries)
    if (Existing == Name)
      return;
  Entries.push_back(Name);
}

void Program::addTypeCtor(TypeCtorDecl Decl) {
  assert(!TypeCtorIndex.count(Decl.Name) && "duplicate type constructor");
  discardSolverIndex();
  TypeCtorIndex.emplace(Decl.Name,
                        static_cast<uint32_t>(TypeCtors.size()));
  indexName(Decl.Name);
  TypeCtors.push_back(std::move(Decl));
}

void Program::addTrait(TraitDecl Decl) {
  assert(!TraitIndex.count(Decl.Name) && "duplicate trait");
  discardSolverIndex();
  TraitIndex.emplace(Decl.Name, static_cast<uint32_t>(Traits.size()));
  indexName(Decl.Name);
  Traits.push_back(std::move(Decl));
}

ImplId Program::addImpl(ImplDecl Decl) {
  // Any declaration edit invalidates the prebuilt index: its slices are
  // frozen copies and its subsumption decisions were proved against the
  // goal shapes of the *previous* declaration set.
  discardSolverIndex();
  ImplId Id(static_cast<uint32_t>(Impls.size()));
  Decl.Id = Id;
  ImplsByTrait[Decl.Trait].push_back(Id);

  // Bucket by self-type head. A root generic parameter becomes a fresh
  // inference variable at instantiation time and can match any head, so
  // blanket impls go in the wildcard list.
  TraitImplIndex &Index = ImplIndex[Decl.Trait];
  const Type &Root = S->types().get(Decl.SelfTy);
  bool Blanket = Root.Kind == TypeKind::Infer;
  if (Root.Kind == TypeKind::Param)
    for (Symbol Generic : Decl.Generics)
      Blanket |= Generic == Root.Name;
  if (Blanket)
    Index.Wildcard.push_back(Id);
  else
    Index.ByHead[*headKeyOf(S->types(), Decl.SelfTy)].push_back(Id);

  Impls.push_back(std::move(Decl));
  return Id;
}

void Program::addFn(FnDecl Decl) {
  assert(!FnIndex.count(Decl.Name) && "duplicate fn");
  discardSolverIndex();
  FnIndex.emplace(Decl.Name, static_cast<uint32_t>(Fns.size()));
  indexName(Decl.Name);
  Fns.push_back(std::move(Decl));
}

void Program::addGoal(GoalDecl Goal) {
  // Goals widen the reachable goal-shape universe, so they invalidate
  // subsumption decisions just like impls do.
  discardSolverIndex();
  Goals.push_back(std::move(Goal));
}

void Program::addRootCause(Predicate Pred) {
  RootCauses.push_back(std::move(Pred));
}

const TypeCtorDecl *Program::findTypeCtor(Symbol Name) const {
  auto It = TypeCtorIndex.find(Name);
  return It == TypeCtorIndex.end() ? nullptr : &TypeCtors[It->second];
}

const TraitDecl *Program::findTrait(Symbol Name) const {
  auto It = TraitIndex.find(Name);
  return It == TraitIndex.end() ? nullptr : &Traits[It->second];
}

const FnDecl *Program::findFn(Symbol Name) const {
  auto It = FnIndex.find(Name);
  return It == FnIndex.end() ? nullptr : &Fns[It->second];
}

const ImplDecl &Program::impl(ImplId Id) const {
  assert(Id.isValid() && Id.value() < Impls.size() && "bad ImplId");
  return Impls[Id.value()];
}

const std::vector<ImplId> &Program::implsOf(Symbol Trait) const {
  static const std::vector<ImplId> Empty;
  auto It = ImplsByTrait.find(Trait);
  return It == ImplsByTrait.end() ? Empty : It->second;
}

const std::vector<ImplId> &Program::implsOfHead(Symbol Trait,
                                                const ImplHeadKey &Key) const {
  static const std::vector<ImplId> Empty;
  auto It = ImplIndex.find(Trait);
  if (It == ImplIndex.end())
    return Empty;
  auto Bucket = It->second.ByHead.find(Key);
  return Bucket == It->second.ByHead.end() ? Empty : Bucket->second;
}

const std::vector<ImplId> &Program::wildcardImplsOf(Symbol Trait) const {
  static const std::vector<ImplId> Empty;
  auto It = ImplIndex.find(Trait);
  return It == ImplIndex.end() ? Empty : It->second.Wildcard;
}

Locality Program::localityOf(Symbol Name) const {
  if (const TypeCtorDecl *Ctor = findTypeCtor(Name))
    return Ctor->Loc;
  if (const TraitDecl *Trait = findTrait(Name))
    return Trait->Loc;
  if (const FnDecl *Fn = findFn(Name))
    return Fn->Loc;
  return Locality::Local;
}

Locality Program::typeLocality(TypeId Ty) const {
  const Type &Node = S->types().get(Ty);
  switch (Node.Kind) {
  case TypeKind::Adt:
  case TypeKind::FnDef:
    return localityOf(Node.Name);
  case TypeKind::Ref:
    return typeLocality(Node.Args[0]);
  case TypeKind::Projection:
    // A projection is as movable as its self type.
    return typeLocality(Node.Args[0]);
  default:
    return Locality::Local;
  }
}

std::vector<Symbol> Program::resolveShortName(std::string_view Short) const {
  auto It = ShortNames.find(std::string(Short));
  return It == ShortNames.end() ? std::vector<Symbol>() : It->second;
}

bool Program::isShortNameAmbiguous(Symbol Name) const {
  std::string Short(lastSegment(S->text(Name)));
  auto It = ShortNames.find(Short);
  return It != ShortNames.end() && It->second.size() > 1;
}

std::string_view Program::lastSegment(std::string_view Path) {
  size_t Pos = Path.rfind("::");
  return Pos == std::string_view::npos ? Path : Path.substr(Pos + 2);
}
