//===- tlang/Program.cpp --------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "tlang/Program.h"

#include <cassert>

using namespace argus;

size_t ImplHeadKeyHasher::operator()(const ImplHeadKey &K) const {
  auto Combine = [](size_t Seed, size_t Value) {
    return Seed ^
           (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
  };
  size_t H = static_cast<size_t>(K.Kind);
  H = Combine(H, K.Name.value());
  H = Combine(H, K.TraitName.value());
  H = Combine(H, K.Arity);
  H = Combine(H, K.Mutable ? 1 : 0);
  return H;
}

std::optional<ImplHeadKey> Program::headKeyOf(const TypeArena &Arena,
                                              TypeId Ty) {
  const Type &Node = Arena.get(Ty);
  if (Node.Kind == TypeKind::Infer)
    return std::nullopt;
  ImplHeadKey Key;
  Key.Kind = Node.Kind;
  Key.Name = Node.Name;
  Key.TraitName = Node.TraitName;
  Key.Arity = static_cast<uint32_t>(Node.Args.size());
  Key.Mutable = Node.Mutable;
  return Key;
}

void Program::indexName(Symbol Name) {
  std::string Short(lastSegment(S->text(Name)));
  std::vector<Symbol> &Entries = ShortNames[Short];
  for (Symbol Existing : Entries)
    if (Existing == Name)
      return;
  Entries.push_back(Name);
}

void Program::addTypeCtor(TypeCtorDecl Decl) {
  assert(!TypeCtorIndex.count(Decl.Name) && "duplicate type constructor");
  TypeCtorIndex.emplace(Decl.Name,
                        static_cast<uint32_t>(TypeCtors.size()));
  indexName(Decl.Name);
  TypeCtors.push_back(std::move(Decl));
}

void Program::addTrait(TraitDecl Decl) {
  assert(!TraitIndex.count(Decl.Name) && "duplicate trait");
  TraitIndex.emplace(Decl.Name, static_cast<uint32_t>(Traits.size()));
  indexName(Decl.Name);
  Traits.push_back(std::move(Decl));
}

ImplId Program::addImpl(ImplDecl Decl) {
  ImplId Id(static_cast<uint32_t>(Impls.size()));
  Decl.Id = Id;
  ImplsByTrait[Decl.Trait].push_back(Id);

  // Bucket by self-type head. A root generic parameter becomes a fresh
  // inference variable at instantiation time and can match any head, so
  // blanket impls go in the wildcard list.
  TraitImplIndex &Index = ImplIndex[Decl.Trait];
  const Type &Root = S->types().get(Decl.SelfTy);
  bool Blanket = Root.Kind == TypeKind::Infer;
  if (Root.Kind == TypeKind::Param)
    for (Symbol Generic : Decl.Generics)
      Blanket |= Generic == Root.Name;
  if (Blanket)
    Index.Wildcard.push_back(Id);
  else
    Index.ByHead[*headKeyOf(S->types(), Decl.SelfTy)].push_back(Id);

  Impls.push_back(std::move(Decl));
  return Id;
}

void Program::addFn(FnDecl Decl) {
  assert(!FnIndex.count(Decl.Name) && "duplicate fn");
  FnIndex.emplace(Decl.Name, static_cast<uint32_t>(Fns.size()));
  indexName(Decl.Name);
  Fns.push_back(std::move(Decl));
}

void Program::addGoal(GoalDecl Goal) { Goals.push_back(std::move(Goal)); }

void Program::addRootCause(Predicate Pred) {
  RootCauses.push_back(std::move(Pred));
}

const TypeCtorDecl *Program::findTypeCtor(Symbol Name) const {
  auto It = TypeCtorIndex.find(Name);
  return It == TypeCtorIndex.end() ? nullptr : &TypeCtors[It->second];
}

const TraitDecl *Program::findTrait(Symbol Name) const {
  auto It = TraitIndex.find(Name);
  return It == TraitIndex.end() ? nullptr : &Traits[It->second];
}

const FnDecl *Program::findFn(Symbol Name) const {
  auto It = FnIndex.find(Name);
  return It == FnIndex.end() ? nullptr : &Fns[It->second];
}

const ImplDecl &Program::impl(ImplId Id) const {
  assert(Id.isValid() && Id.value() < Impls.size() && "bad ImplId");
  return Impls[Id.value()];
}

const std::vector<ImplId> &Program::implsOf(Symbol Trait) const {
  static const std::vector<ImplId> Empty;
  auto It = ImplsByTrait.find(Trait);
  return It == ImplsByTrait.end() ? Empty : It->second;
}

const std::vector<ImplId> &Program::implsOfHead(Symbol Trait,
                                                const ImplHeadKey &Key) const {
  static const std::vector<ImplId> Empty;
  auto It = ImplIndex.find(Trait);
  if (It == ImplIndex.end())
    return Empty;
  auto Bucket = It->second.ByHead.find(Key);
  return Bucket == It->second.ByHead.end() ? Empty : Bucket->second;
}

const std::vector<ImplId> &Program::wildcardImplsOf(Symbol Trait) const {
  static const std::vector<ImplId> Empty;
  auto It = ImplIndex.find(Trait);
  return It == ImplIndex.end() ? Empty : It->second.Wildcard;
}

Locality Program::localityOf(Symbol Name) const {
  if (const TypeCtorDecl *Ctor = findTypeCtor(Name))
    return Ctor->Loc;
  if (const TraitDecl *Trait = findTrait(Name))
    return Trait->Loc;
  if (const FnDecl *Fn = findFn(Name))
    return Fn->Loc;
  return Locality::Local;
}

Locality Program::typeLocality(TypeId Ty) const {
  const Type &Node = S->types().get(Ty);
  switch (Node.Kind) {
  case TypeKind::Adt:
  case TypeKind::FnDef:
    return localityOf(Node.Name);
  case TypeKind::Ref:
    return typeLocality(Node.Args[0]);
  case TypeKind::Projection:
    // A projection is as movable as its self type.
    return typeLocality(Node.Args[0]);
  default:
    return Locality::Local;
  }
}

std::vector<Symbol> Program::resolveShortName(std::string_view Short) const {
  auto It = ShortNames.find(std::string(Short));
  return It == ShortNames.end() ? std::vector<Symbol>() : It->second;
}

bool Program::isShortNameAmbiguous(Symbol Name) const {
  std::string Short(lastSegment(S->text(Name)));
  auto It = ShortNames.find(Short);
  return It != ShortNames.end() && It->second.size() > 1;
}

std::string_view Program::lastSegment(std::string_view Path) {
  size_t Pos = Path.rfind("::");
  return Pos == std::string_view::npos ? Path : Path.substr(Pos + 2);
}
