//===- tlang/Printer.h - Type and predicate pretty printing ---*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders types, predicates, and impl headers as text. The printer is the
/// foundation of both the rustc-style diagnostics (which heuristically
/// shorten paths, sometimes wrongly — Section 2.1) and the Argus interface
/// (ShortTys: short paths by default, full paths and elided argument
/// expansion on demand — Section 3.2.2).
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_TLANG_PRINTER_H
#define ARGUS_TLANG_PRINTER_H

#include "tlang/Program.h"

#include <functional>
#include <string>

namespace argus {

struct PrintOptions {
  /// Print fully qualified paths (diesel::SelectStatement) instead of
  /// last segments (SelectStatement).
  bool FullPaths = false;

  /// Replace the arguments of large constructor applications with "...".
  bool ElideArgs = false;

  /// When ElideArgs is set, a constructor application whose printed
  /// argument forest contains more than this many type nodes elides.
  size_t ElisionThreshold = 4;

  /// When printing short paths, add the parent segment for names whose
  /// last segment is ambiguous in this program (users::table vs
  /// posts::table). The Argus interface enables this; the rustc-style
  /// renderer deliberately does not (reproducing the "identical-looking
  /// table types" problem).
  bool DisambiguateShortNames = false;

  /// Optional hook resolving inference variables to their current
  /// binding before printing (unbound variables print as "_").
  std::function<TypeId(TypeId)> Resolve;
};

class TypePrinter {
public:
  explicit TypePrinter(const Program &P, PrintOptions Opts = PrintOptions())
      : Prog(&P), Opts(std::move(Opts)) {}

  std::string print(TypeId T) const;
  std::string print(const Predicate &P) const;
  std::string printRegion(Region R) const;

  /// "Trait" or "Trait<A, B>".
  std::string printTraitRef(Symbol Trait,
                            const std::vector<TypeId> &Args) const;

  /// "impl<T, U> Trait<A> for SelfTy" (no where clauses).
  std::string printImplHeader(const ImplDecl &Impl) const;

  /// "impl<T, U> Trait<A> for SelfTy where P1, P2".
  std::string printImplFull(const ImplDecl &Impl) const;

  /// The displayed name for a declaration path, honoring the FullPaths and
  /// DisambiguateShortNames options.
  std::string displayName(Symbol Name) const;

  const PrintOptions &options() const { return Opts; }

private:
  void printInto(TypeId T, std::string &Out, size_t Depth) const;
  void printArgsInto(const std::vector<TypeId> &Args, std::string &Out,
                     size_t Depth) const;
  TypeId resolved(TypeId T) const;

  const Program *Prog;
  PrintOptions Opts;
};

} // namespace argus

#endif // ARGUS_TLANG_PRINTER_H
