//===- engine/EditSession.h - Incremental program revisions ---*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An edit session models a developer iterating on one program: the same
/// file re-analyzed after each edit. Every revision gets a fresh
/// engine::Session (its own interner/arena/program — revisions never
/// share mutable state), but all revisions share one GoalCache owned
/// here. The cache's per-entry dependency fingerprints make reuse exact:
/// a goal replays from cache iff every impl slice and trait declaration
/// its recorded subtree consulted is byte-identical in the new revision,
/// so editing one impl invalidates exactly the goals that could see it
/// and everything else is spliced instead of re-proved. Output is
/// byte-identical to a cold solve of each revision by construction.
///
/// Per-revision counters report how well that worked:
/// cache_cross_rev_hits (goals served by a previous revision's entries)
/// and impls_invalidated (impls whose structural fingerprint changed
/// since the previous revision, computed by diffing fingerprint
/// multisets — an add, a removal, or an edit each count once).
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_ENGINE_EDITSESSION_H
#define ARGUS_ENGINE_EDITSESSION_H

#include "engine/Session.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace argus {
namespace engine {

class EditSession {
public:
  /// \p Opts configures every revision's Session identically. Any cache
  /// mode other than Off is overridden to Shared against the cache owned
  /// here; CacheMode::Off is honored, making every revision solve cold
  /// (the comparison baseline for the incremental gates).
  explicit EditSession(std::string Name,
                       SessionOptions Opts = SessionOptions());

  /// Analyzes the next revision of the program, replacing the previous
  /// one. Returns the revision's Session; it stays valid (and owns all
  /// its results) until the next apply() or the EditSession's end.
  /// The session's stats carry impls_invalidated for this transition.
  Session &apply(std::string Source);

  /// Revisions applied so far.
  uint32_t revision() const { return Revision; }

  /// The current revision's Session; null before the first apply().
  Session *current() { return Current ? &*Current : nullptr; }

  GoalCache &cache() { return Cache; }

  /// Warm-starts the owned cache from a persisted image (load-on-start):
  /// a restarted edit script resumes with every entry its earlier run
  /// saved, behind the same admission and dependency checks as live
  /// entries. EntriesLoaded is 0 and LoadRejected reports the rejection
  /// when the image is missing or mangled; the session proceeds cold.
  /// No-op under CacheMode::Off. The next apply()'s Session is stamped
  /// with the result (cache_disk_entries_loaded / cache_load_rejects).
  void loadCache(const std::string &Path, FaultInjector *Faults = nullptr);

  /// Persists the owned cache to \p Path (save-on-exit). Returns false
  /// (with the detail in \p Error if non-null) on I/O failure; no-op
  /// returning true under CacheMode::Off.
  bool saveCache(const std::string &Path, FaultInjector *Faults = nullptr,
                 std::string *Error = nullptr);

private:
  std::string Name;
  SessionOptions Opts;
  GoalCache Cache;
  uint32_t Revision = 0;
  /// Sorted impl fingerprints of the previous revision (empty when the
  /// revision failed to parse — every impl then counts as invalidated).
  std::vector<uint64_t> PrevImplFps;
  std::optional<Session> Current;
  /// Outcome of a loadCache() awaiting its first apply(): the loaded
  /// entry count and (on rejection) the failure detail are stamped onto
  /// the next revision's Session, whose stats lines report them.
  struct PendingLoad {
    uint64_t EntriesLoaded = 0;
    bool Rejected = false;
    std::string Detail;
  };
  std::optional<PendingLoad> Pending;
};

} // namespace engine
} // namespace argus

#endif // ARGUS_ENGINE_EDITSESSION_H
