//===- engine/Batch.h - Parallel batch driver -----------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs many engine::Sessions across a thread pool with deterministic
/// result ordering: results are stored by job index, so the output for
/// job i is byte-identical whether the batch ran on 1 thread or 16. This
/// is safe because every Session owns all of its mutable state (see
/// Session.h's threading contract) — workers never share anything but
/// the immutable job list.
///
/// The worker receives the Session and returns the text to record; the
/// driver fills in parse/solve status and the Session's stage statistics
/// afterwards. A worker that throws records a Failure::WorkerPanic (and
/// the exception text) instead of output — one bad program must not take
/// down a batch, and the stats of the stages that did complete are kept.
///
/// When SessionOptions::Limits sets a job deadline, a watchdog thread
/// polls the running Sessions' governors and *cancels* (never kills) any
/// job that overruns its deadline by a grace factor — the backstop for a
/// job stuck somewhere that does not tick its own budget. Overrun jobs
/// can optionally be retried once, serially, with relaxed limits
/// (BatchOptions::RetryOverruns).
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_ENGINE_BATCH_H
#define ARGUS_ENGINE_BATCH_H

#include "engine/Session.h"

#include <functional>
#include <string>
#include <vector>

namespace argus {
namespace engine {

/// One program to run: a display name (usually the file path) plus its
/// DSL source text.
struct BatchJob {
  std::string Name;
  std::string Source;
};

/// The outcome of one job, in input order.
struct BatchResult {
  std::string Name;
  bool ParseOk = false;
  /// Any failing goal (only meaningful when the worker solved; false for
  /// parse failures).
  bool HasTraitErrors = false;
  /// Whatever the worker returned.
  std::string Output;
  /// Worker exception text; empty on success.
  std::string Error;
  /// True if this result came from the serial relaxed-budget retry.
  bool Retried = false;
  SessionStats Stats;

  bool failed() const { return !Error.empty(); }
};

/// Driver-level knobs, distinct from the per-Session options.
struct BatchOptions {
  /// Rerun jobs stopped by a deadline, work ceiling, or cancellation
  /// once, serially, with limits relaxed by RetryRelaxFactor. Failures
  /// that a rerun cannot change (parse errors, solver overflow against
  /// SolverOptions ceilings) are not retried.
  bool RetryOverruns = false;
  double RetryRelaxFactor = 8.0;
};

class BatchDriver {
public:
  /// \p Jobs is the worker-thread count; 0 and 1 both mean "run serially
  /// on the calling thread".
  ///
  /// Under CacheMode::Shared (with no caller-supplied SharedCache) the
  /// driver owns one GoalCache which every job of every run() shares, so
  /// concurrent jobs reuse each other's proof subtrees.
  explicit BatchDriver(SessionOptions Opts = SessionOptions(),
                       unsigned Jobs = 1, BatchOptions BatchOpts = {});

  /// The batch-shared goal cache, or null when not in Shared mode (or
  /// when the caller supplied its own via SessionOptions::SharedCache).
  GoalCache *sharedCache() const { return OwnedCache.get(); }

  unsigned jobs() const { return NumJobs; }
  const SessionOptions &options() const { return Opts; }
  const BatchOptions &batchOptions() const { return BOpts; }

  /// Produces the per-program output; runs on a pool thread.
  using Worker = std::function<std::string(Session &)>;

  /// Runs \p Work over every job. Results are ordered like \p Jobs
  /// regardless of the thread count or completion order.
  std::vector<BatchResult> run(const std::vector<BatchJob> &Jobs,
                               const Worker &Work) const;

  /// Loads every "*.tl" file directly under \p Dir (not recursive),
  /// sorted by file name so batches are reproducible across platforms.
  /// Unreadable files abort with an error on stderr and are skipped.
  static std::vector<BatchJob> jobsFromDirectory(const std::string &Dir);

  /// Serializes the per-session statistics of a finished batch as the
  /// --trace JSON document: {"jobs": N, "programs": [SessionStats...]}.
  static std::string statsTraceJSON(const std::vector<BatchResult> &Results,
                                    unsigned Jobs, bool Pretty = true);

  /// Max SessionStats::exitCode over all results — the batch's exit code
  /// contribution from failures (0 when every job is clean).
  static int worstExitCode(const std::vector<BatchResult> &Results);

private:
  struct WatchSlot;
  void runOne(const BatchJob &Job, const SessionOptions &JobOpts,
              const Worker &Work, WatchSlot *Slot,
              BatchResult &Result) const;

  SessionOptions Opts;
  unsigned NumJobs;
  BatchOptions BOpts;
  /// Owned batch-shared cache (see the constructor comment). Declared
  /// after Opts, which points at it via SharedCache.
  std::unique_ptr<GoalCache> OwnedCache;
};

} // namespace engine
} // namespace argus

#endif // ARGUS_ENGINE_BATCH_H
