//===- engine/Stage.h - Pipeline stage identifiers ------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pipeline stage enum, split out of Session.h so that Failure.h and
/// Governor.h (which index per-stage limits by Stage) and Session.h can
/// all use it without an include cycle.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_ENGINE_STAGE_H
#define ARGUS_ENGINE_STAGE_H

#include <cstddef>
#include <cstdint>

namespace argus {
namespace engine {

/// The pipeline stages a Session times individually. Render covers every
/// user-facing serialization (diagnostic text, views, JSON, HTML,
/// suggestions) and accumulates across calls.
enum class Stage : uint8_t {
  Parse,
  Coherence,
  Solve,
  Extract,
  Analyze,
  Render,
};

inline constexpr size_t NumStages = 6;

/// Lower-case stable stage name ("parse", ..., "render"); used as JSON
/// keys, so renames are format changes.
const char *stageName(Stage S);

} // namespace engine
} // namespace argus

#endif // ARGUS_ENGINE_STAGE_H
