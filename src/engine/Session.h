//===- engine/Session.h - The unified pipeline ----------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One reusable engine layer over the whole Argus pipeline, the way the
/// paper's compiler plugin packages extraction behind a single entry
/// point. An engine::Session owns everything needed to debug one program:
///
///   source --parse--> Program --coherence--> warnings
///          --solve--> SolveOutcome (proof forest)
///          --extract--> Extraction (idealized trees)
///          --analyze--> InertiaResult per tree
///          --render--> diagnostics / views / JSON / HTML / suggestions
///
/// Stages are lazily computed and cached: asking for a later stage runs
/// (and caches) every prerequisite exactly once; asking again returns the
/// cached value. Every stage is wall-clock timed and its work counters
/// (goal evaluations, fixpoint rounds, tree nodes, DNF conjuncts, ...)
/// are accumulated into a SessionStats, which serializes to JSON for the
/// CLI's --trace emitter.
///
/// Sessions are single-threaded objects. All mutable pipeline state
/// (string interner, type arena, source manager, inference context) is
/// owned per-Session, so any number of Sessions may run concurrently on
/// different threads — that is the contract engine::BatchDriver builds
/// on. Nothing below this layer holds shared mutable globals (the corpus
/// tables are immutable after thread-safe static initialization).
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_ENGINE_SESSION_H
#define ARGUS_ENGINE_SESSION_H

#include "analysis/Inertia.h"
#include "analysis/Suggestions.h"
#include "diagnostics/Diagnostics.h"
#include "engine/Governor.h"
#include "engine/Stage.h"
#include "extract/Extract.h"
#include "interface/HTMLExport.h"
#include "interface/View.h"
#include "solver/Coherence.h"
#include "support/JSON.h"
#include "tlang/Parser.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace argus {
namespace engine {

/// Per-stage timings plus the pipeline's work counters for one Session.
struct SessionStats {
  std::string Name; ///< The program name the Session was created with.

  /// Wall-clock seconds and invocation count per stage. Cached stages run
  /// once; Render accumulates one run per render call.
  double StageSeconds[NumStages] = {};
  uint64_t StageRuns[NumStages] = {};

  // --- Parse / coherence.
  size_t ParseErrors = 0;
  size_t CoherenceErrors = 0;

  // --- Solve (mirrors SolveOutcome's statistics).
  uint64_t GoalEvaluations = 0;
  uint64_t MemoHits = 0;
  /// Impl candidates skipped by the *lazy* head-constructor index before
  /// instantiation. ~0 once the prebuilt solver index is installed —
  /// IndexBucketHits counts the served enumerations instead.
  uint64_t CandidatesFiltered = 0;
  /// Trait-goal enumerations served from a prebuilt index bucket (the
  /// coherence-time solver index; see solver/Index.h).
  uint64_t IndexBucketHits = 0;
  /// Impls pruned from the index buckets by the coherence-time
  /// subsumption pass (never assemblable by any reachable goal shape).
  uint64_t ImplsSubsumed = 0;
  /// Human-readable subsumption/shadowing decisions from the index
  /// build, surfaced by --trace. Empty when the pass is off or the
  /// build was degraded by a budget stop.
  std::vector<std::string> SubsumptionNotes;
  uint32_t FixpointRounds = 0;
  /// Goal evaluations that ran real candidate assembly (not answered by
  /// an overflow early-out or a goal-cache splice).
  uint64_t SolverSteps = 0;
  // --- Goal cache (zero when CacheMode::Off).
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheInserts = 0;
  /// Recordings rejected by the cacheability predicate (ambiguity,
  /// overflow in the subtree, budget/deadline stop, external binding, or
  /// an injected cache.reject fault).
  uint64_t CacheInsertsRejected = 0;
  /// Hits served by entries recorded before this solve began — by an
  /// earlier revision of an EditSession, another batch job, or a prior
  /// run sharing the cache. Subset of CacheHits.
  uint64_t CacheCrossRevHits = 0;
  /// Lookups whose resident entry variants all failed the dependency-
  /// fingerprint check (an impl/trait the recorded subtree consulted was
  /// edited), forcing a cold re-solve of that goal.
  uint64_t CacheDepMisses = 0;
  /// Entries materialized into the cache from a persisted image
  /// (--cache-load); stamped by the driver that performed the load.
  uint64_t CacheDiskEntriesLoaded = 0;
  /// Persisted images rejected by the hardened loader (truncation,
  /// corruption, version skew, malformed contents, or I/O failure);
  /// each rejection also records a CacheLoadRejected failure.
  uint64_t CacheLoadRejects = 0;
  /// Hits served by disk-loaded entries. Subset of CacheCrossRevHits.
  uint64_t CacheDiskHits = 0;
  /// EditSession only: impls whose fingerprint changed (added, removed,
  /// or edited) between the previous revision and this one.
  uint64_t ImplsInvalidated = 0;

  // --- Extract.
  size_t TreesExtracted = 0;
  size_t TreeGoals = 0; ///< Idealized goals summed over all trees.
  size_t SnapshotsDropped = 0;
  size_t InternalGoalsHidden = 0;

  // --- Analyze (summed over analyzed trees).
  size_t FailedLeaves = 0;
  size_t DNFConjuncts = 0;
  /// Bitset words touched by DNF kernel set operations.
  uint64_t DNFWordsTouched = 0;
  /// Intermediate DNF formulas truncated to AnalysisOptions::MaxConjuncts.
  uint64_t DNFTruncations = 0;

  // --- Cost-model dispatch (the dispatch_* counter family): where the
  // --- solver and analysis fast paths routed work this session.
  /// Impl candidates skipped by the exact self-type (level-2) index
  /// during live enumeration; splice-replayed prunes land in
  /// CandidatesFiltered instead.
  uint64_t DispatchExactPrunes = 0;
  /// Goals the cache admission pre-check never keyed: unresolved
  /// inference variables, trivially-cheap builtin kinds, or a key hash
  /// already rejected this run. Zero when the cache is off.
  uint64_t DispatchCacheSkips = 0;
  /// DNF normalizations routed to the reference vector kernel.
  uint64_t DispatchReference = 0;
  /// DNF normalizations routed to the bitset kernel.
  uint64_t DispatchBitset = 0;
  /// Dispatches forced by an explicit AnalysisOptions::Kernel override
  /// rather than decided by the Auto cost model.
  uint64_t DispatchForced = 0;

  // --- Extract governance.
  /// Goals cut short by a budget stop or ExtractOptions::MaxTreeGoals.
  size_t TreeGoalsTruncated = 0;

  // --- Arena (whole-session).
  /// Cached structural type hashes served by TypeArena::hashOf — deep
  /// rehashes avoided across interning and predicate hashing.
  uint64_t ArenaHashLookups = 0;

  // --- Governance: what kept this Session from its full result.
  /// Structured failures, deduplicated by (code, stage), in the order
  /// they were observed.
  std::vector<Failure> Failures;
  uint64_t DeadlineHits = 0;
  uint64_t Cancellations = 0;
  uint64_t WorkCeilingHits = 0;
  /// Faults the injector fired (0 unless a FaultPlan is configured).
  uint64_t FaultsInjected = 0;

  bool failed() const { return !Failures.empty(); }
  /// True if any failure is a governance degradation (partial result).
  bool degraded() const;
  /// The failure with the most severe exit code (see exitCodeFor), or
  /// null if none.
  const Failure *worst() const;
  /// Max exitCodeFor over all failures; 0 when clean.
  int exitCode() const;

  double secondsFor(Stage S) const {
    return StageSeconds[static_cast<size_t>(S)];
  }
  bool ran(Stage S) const { return StageRuns[static_cast<size_t>(S)] != 0; }
  double totalSeconds() const;

  /// Writes this record as one JSON object:
  /// {"name": ..., "stages": {"parse": {"seconds": s, "runs": n}, ...},
  ///  "counters": {...}}.
  void writeJSON(JSONWriter &Writer) const;
  std::string toJSON(bool Pretty = false) const;
};

/// Options for every stage, bundled so drivers configure a pipeline in
/// one place (the ablation benches override individual members).
/// Limits and Faults are plain values — copying SessionOptions to many
/// batch jobs keeps every job's governance independent and deterministic
/// (each Session builds its own governor from them).
/// Scope of the solver's goal-result cache.
enum class CacheMode : uint8_t {
  Off,     ///< No cache; every subtree is proved from scratch.
  Session, ///< Each Session owns a private cache (helps the fixpoint
           ///< rounds and repeated goals within one program).
  Shared,  ///< Jobs share one cache (BatchDriver owns it unless
           ///< SessionOptions::SharedCache is supplied).
};

struct SessionOptions {
  SolverOptions Solver;
  ExtractOptions Extract;
  AnalysisOptions Analysis;
  DiagnosticOptions Diagnostic;
  ResourceLimits Limits;
  FaultPlan Faults;

  // --- Goal cache.
  CacheMode Cache = CacheMode::Off;
  unsigned CacheShards = 16;
  size_t CacheCap = 65536;
  /// The shared cache for CacheMode::Shared. Not owned; must outlive
  /// every Session using it. BatchDriver fills this in for its jobs;
  /// when null under Shared mode, a standalone Session falls back to a
  /// private cache (Shared and Session are then equivalent).
  GoalCache *SharedCache = nullptr;
};

/// The full pipeline for one program. See the file comment for the stage
/// graph and threading contract.
class Session {
public:
  /// Takes ownership of \p Source, to be parsed under the file name
  /// \p Name on first use.
  Session(std::string Name, std::string Source,
          SessionOptions Opts = SessionOptions());

  /// Reads \p Path and builds a Session named after it; nullopt if the
  /// file cannot be read.
  static std::optional<Session> open(const std::string &Path,
                                     SessionOptions Opts = SessionOptions());

  Session(Session &&) = default;
  Session &operator=(Session &&) = default;
  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  const std::string &name() const { return Name; }
  const SessionOptions &options() const { return Opts; }

  // --- Governance.

  /// The governor, present iff the options set limits or enable faults.
  /// Heap-allocated, so its budget address is stable across Session
  /// moves (the batch watchdog holds it while the job runs).
  ResourceGovernor *governor() { return Gov.get(); }

  /// Thread-safe cooperative cancellation; no-op when ungoverned.
  void cancel() {
    if (Gov)
      Gov->cancel();
  }

  /// Non-forcing probes, safe on any thread state — the batch driver
  /// uses them after a worker panic, where forcing parse() could throw
  /// again.
  bool parseCompleted() const { return Parsed.has_value(); }
  bool parseSucceeded() const { return Parsed && Parsed->Success; }

  /// The latest stage that has run at least once (Parse if none).
  Stage lastStage() const;

  /// Records \p F into the stats (deduplicated by code and stage) and
  /// bumps the governance counters. Public so the batch driver can
  /// attribute worker panics.
  void noteFailure(Failure F);

  /// Stamps the edit-session invalidation count into this Session's
  /// stats (EditSession computes it by diffing revision fingerprints).
  void noteImplsInvalidated(uint64_t N) { Stats.ImplsInvalidated = N; }

  /// Stamps the outcome of a persisted-cache load performed by the
  /// driving CLI/EditSession into this Session's stats. A rejected load
  /// additionally records the CacheLoadRejected failure (degraded exit),
  /// keeping the note/exit plumbing in one place.
  void noteCacheLoad(uint64_t EntriesLoaded, bool Rejected,
                     const std::string &Detail) {
    Stats.CacheDiskEntriesLoaded += EntriesLoaded;
    if (Rejected) {
      ++Stats.CacheLoadRejects;
      noteFailure({FailureCode::CacheLoadRejected, Stage::Solve, Detail});
    }
  }

  // --- Stage accessors. Each lazily runs its prerequisites and caches.

  /// Parse stage. Parse errors do not poison the Session: declarations
  /// parsed before the first error are retained, and callers decide
  /// whether to continue (the CLI stops; tests may probe).
  const ParseResult &parse();
  bool parseOk() { return parse().Success; }
  /// "file:line:col: message" lines for every parse error.
  std::string parseErrorText();

  /// Coherence stage: overlap/orphan warnings for the parsed impls.
  const std::vector<CoherenceError> &coherence();

  /// Solve stage: the fixpoint obligation loop over every program goal.
  const SolveOutcome &solve();
  bool solved() const { return Outcome.has_value(); }

  /// True if solving found any failing goal (No/Overflow or residual
  /// ambiguity).
  bool hasTraitErrors() { return solve().hasErrors(); }

  /// Extract stage: idealized inference trees for the failing goals.
  const Extraction &extraction();
  size_t numTrees() { return extraction().Trees.size(); }
  const InferenceTree &tree(size_t Index);

  /// Analyze stage: inertia ranking + MCS for one tree, cached per tree.
  const InertiaResult &inertia(size_t Index);

  /// Uncached inertia with a custom weight function (ablations). Timed
  /// under Analyze.
  InertiaResult inertiaWith(size_t Index, const WeightFn &Weight);

  // --- Uncached re-runs, for benchmarks that time one stage in a loop.
  // --- They do not disturb the cached results or the stage counters
  // --- (only timings accumulate).

  SolveOutcome solveFresh();
  Extraction extractFresh();
  Extraction extractFresh(const ExtractOptions &ExOpts);

  // --- Render stage: user-facing serializations. Not cached (outputs
  // --- are cheap relative to solving and often parameterized); each
  // --- call accumulates Render time.

  RenderedDiagnostic diagnostic(size_t Index);
  std::string diagnosticText(size_t Index);
  std::string bottomUpText(size_t Index);
  std::string topDownText(size_t Index);
  std::string treeJSON(size_t Index, bool Pretty = true);
  std::string html(size_t Index, HTMLExportOptions HOpts = HTMLExportOptions());

  /// An interface model over \p Index's tree, ranked by the cached
  /// inertia order.
  ArgusInterface interface(size_t Index);

  /// Verified fix suggestions for the top-ranked failed leaf of \p Index;
  /// empty if no leaf is ranked.
  std::vector<FixSuggestion> suggestTop(size_t Index);

  // --- Component access for consumers that need to go deeper (tests,
  // --- the TUI). Program access forces the parse stage.

  const Program &program();
  argus::Session &session();
  InferContext &inferContext();

  /// Statistics for everything run so far.
  const SessionStats &stats() const { return Stats; }

private:
  struct StageTimer;

  /// Arms the governor's budget for \p S (no-op when ungoverned).
  void beginStage(Stage S);
  /// Records any budget stop observed during \p S as a Failure.
  void endStage(Stage S);

  /// Builds and installs the Program's prebuilt candidate index (plus
  /// the subsumption pass) once, timed under Stage::Coherence. Runs on
  /// the first of coherence()/solve() to need it; a budget stop during
  /// the build discards the index (degrading to the lazy scan path) and
  /// is recorded as a Coherence-stage failure.
  void ensureSolverIndex();

  std::string Name;
  std::string Source;
  SessionOptions Opts;

  /// Declared before the pipeline members: stage results hold budget
  /// pointers into the governor, so it must be destroyed after them.
  std::unique_ptr<ResourceGovernor> Gov;

  std::unique_ptr<argus::Session> Sess;
  std::unique_ptr<Program> Prog;
  std::optional<ParseResult> Parsed;
  std::optional<std::vector<CoherenceError>> CoherenceErrors;
  /// One-shot latch for ensureSolverIndex (set even when the build is
  /// skipped or degraded, so a failed build is not retried).
  bool IndexBuilt = false;
  /// Session-private goal cache (CacheMode::Session, or Shared with no
  /// SharedCache supplied). Declared before TheSolver, whose options
  /// point into it.
  std::unique_ptr<GoalCache> OwnCache;
  std::unique_ptr<Solver> TheSolver;
  std::optional<SolveOutcome> Outcome;
  std::optional<Extraction> Extracted;
  std::vector<std::optional<InertiaResult>> InertiaCache;

  SessionStats Stats;
};

} // namespace engine
} // namespace argus

#endif // ARGUS_ENGINE_SESSION_H
