//===- engine/Governor.h - Per-session resource governance ----*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// engine::ResourceGovernor ties one Session's worth of governance
/// together: an ExecutionBudget armed from declarative ResourceLimits at
/// each stage boundary, and a FaultInjector that can force every
/// degradation path deterministically. The Session owns the governor
/// (heap-allocated, so the budget address is stable for the batch
/// watchdog across Session moves) and consults it at stage begin/end;
/// the solver, DNF kernels, extractor and view only ever see the plain
/// ExecutionBudget pointer, keeping lower layers engine-free.
///
/// Fault sites, keyed by name (see FaultInjector):
///   parse.error        synthetic parse failure
///   solve.overflow     goal-evaluation ceiling forced to zero
///   dnf.truncate       MaxConjuncts forced to one
///   extract.truncate   MaxTreeGoals forced to one
///   cache.reject       every goal-cache insert rejected (probed only
///                      when a cache mode is active; output unchanged)
///   cache.depmiss      every goal-cache dependency check fails, so hits
///                      degrade to counted dep-misses and cold re-solves
///                      (probed only when a cache mode is active; output
///                      unchanged)
///   cache.io           persisted-cache file I/O fails: --cache-load
///                      reads report IoError (cache_load_rejected,
///                      run proceeds cold), --cache-save writes are
///                      abandoned before the temp file (probed by
///                      CachePersist, scoped by the image path)
///   cache.load_corrupt one byte of a loaded cache image is flipped
///                      after the read, driving the checksum rejection
///                      path end-to-end (cache_load_rejected, cold run)
///   <stage>.cancel     sticky cancellation at stage entry
///   <stage>.deadline   stage-scoped deadline stop at stage entry
///   <stage>.work       stage-scoped work-ceiling stop at stage entry
///   worker.panic       BatchDriver worker throws (Batch.cpp)
/// where <stage> is a stageName(): parse, coherence, solve, extract,
/// analyze, render.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_ENGINE_GOVERNOR_H
#define ARGUS_ENGINE_GOVERNOR_H

#include "engine/Failure.h"
#include "support/FaultInjector.h"
#include "support/Governance.h"

#include <optional>
#include <string>

namespace argus {
namespace engine {

/// Declarative limits; all zero (the default) means ungoverned. Value
/// type on purpose: SessionOptions copies freely between batch jobs.
struct ResourceLimits {
  /// Sticky whole-job wall-clock deadline, seconds; 0 = unlimited.
  double JobDeadlineSeconds = 0.0;
  /// Per-stage wall-clock deadlines, seconds; 0 = unlimited.
  double StageDeadlineSeconds[NumStages] = {};
  /// Per-stage work ceilings in stage-native units (solve: goal
  /// evaluations; analyze: conjunct merges; extract: goals; render:
  /// rows); 0 = unlimited.
  uint64_t StageWorkCeiling[NumStages] = {};

  bool any() const;

  double stageDeadline(Stage S) const {
    return StageDeadlineSeconds[static_cast<size_t>(S)];
  }
  uint64_t stageCeiling(Stage S) const {
    return StageWorkCeiling[static_cast<size_t>(S)];
  }

  /// A copy with every deadline and ceiling multiplied by \p Factor —
  /// the batch retry path's "relaxed budget".
  ResourceLimits relaxed(double Factor) const;
};

/// Declarative fault-injection plan; empty Sites (the default) disables
/// injection entirely. Value type for the same reason as ResourceLimits.
struct FaultPlan {
  std::string Sites; ///< Comma-separated site names, or "all".
  uint64_t Seed = 0;
  double Probability = 1.0;

  bool enabled() const { return !Sites.empty(); }
};

/// One Session's governance state. Single owner thread, except that
/// cancel() (via the budget) may arrive from the batch watchdog.
class ResourceGovernor {
public:
  /// Arms the job deadline immediately; \p Scope (the job name) keys the
  /// deterministic fault draws.
  ResourceGovernor(const ResourceLimits &Limits, const FaultPlan &Plan,
                   std::string Scope);

  ExecutionBudget &budget() { return Budget; }
  const std::string &scope() const { return Scope; }

  /// Arms the stage budget and applies the generic <stage>.cancel /
  /// .deadline / .work fault sites.
  void beginStage(Stage S);

  /// The Failure for a stop observed during \p S, if any. A sticky
  /// (job-level) stop is attributed only to the first stage that
  /// observes it; stage-scoped stops are attributed per stage.
  std::optional<Failure> stageFailure(Stage S);

  /// Deterministic fault check for the named non-budget sites
  /// (parse.error, solve.overflow, dnf.truncate, extract.truncate).
  bool shouldFail(std::string_view Site) {
    return Faults.shouldFail(Site, Scope);
  }

  /// Thread-safe sticky cancellation (watchdog entry point).
  void cancel() { Budget.cancel(StopReason::Cancelled); }

  uint64_t faultsFired() const { return Faults.fired(); }

private:
  ResourceLimits Limits;
  std::string Scope;
  ExecutionBudget Budget;
  FaultInjector Faults;
  /// Whether the sticky stop has been attributed to a stage already.
  bool HardReported = false;
};

} // namespace engine
} // namespace argus

#endif // ARGUS_ENGINE_GOVERNOR_H
