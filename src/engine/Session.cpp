//===- engine/Session.cpp -------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Session.h"

#include "extract/TreeJSON.h"
#include "solver/Index.h"

#include <cassert>
#include <chrono>
#include <fstream>
#include <sstream>

namespace argus {
namespace engine {

const char *stageName(Stage S) {
  switch (S) {
  case Stage::Parse:
    return "parse";
  case Stage::Coherence:
    return "coherence";
  case Stage::Solve:
    return "solve";
  case Stage::Extract:
    return "extract";
  case Stage::Analyze:
    return "analyze";
  case Stage::Render:
    return "render";
  }
  return "unknown";
}

double SessionStats::totalSeconds() const {
  double Total = 0.0;
  for (double Seconds : StageSeconds)
    Total += Seconds;
  return Total;
}

bool SessionStats::degraded() const {
  for (const Failure &F : Failures)
    if (isDegradation(F.Code))
      return true;
  return false;
}

const Failure *SessionStats::worst() const {
  const Failure *Worst = nullptr;
  for (const Failure &F : Failures)
    if (!Worst || exitCodeFor(F.Code) > exitCodeFor(Worst->Code))
      Worst = &F;
  return Worst;
}

int SessionStats::exitCode() const {
  const Failure *Worst = worst();
  return Worst ? exitCodeFor(Worst->Code) : 0;
}

void SessionStats::writeJSON(JSONWriter &Writer) const {
  Writer.beginObject();
  Writer.keyValue("name", Name);
  Writer.key("stages");
  Writer.beginObject();
  for (size_t I = 0; I != NumStages; ++I) {
    Writer.key(stageName(static_cast<Stage>(I)));
    Writer.beginObject();
    Writer.keyValue("seconds", StageSeconds[I]);
    Writer.keyValue("runs", StageRuns[I]);
    Writer.endObject();
  }
  Writer.endObject();
  Writer.key("counters");
  Writer.beginObject();
  Writer.keyValue("parse_errors", static_cast<uint64_t>(ParseErrors));
  Writer.keyValue("coherence_errors",
                  static_cast<uint64_t>(CoherenceErrors));
  Writer.keyValue("goal_evaluations", GoalEvaluations);
  Writer.keyValue("memo_hits", MemoHits);
  Writer.keyValue("candidates_filtered", CandidatesFiltered);
  Writer.keyValue("index_bucket_hits", IndexBucketHits);
  Writer.keyValue("impls_subsumed", ImplsSubsumed);
  Writer.keyValue("fixpoint_rounds",
                  static_cast<uint64_t>(FixpointRounds));
  Writer.keyValue("solver_steps", SolverSteps);
  Writer.keyValue("cache_hits", CacheHits);
  Writer.keyValue("cache_misses", CacheMisses);
  Writer.keyValue("cache_inserts", CacheInserts);
  Writer.keyValue("cache_inserts_rejected", CacheInsertsRejected);
  Writer.keyValue("cache_cross_rev_hits", CacheCrossRevHits);
  Writer.keyValue("cache_dep_misses", CacheDepMisses);
  Writer.keyValue("cache_disk_entries_loaded", CacheDiskEntriesLoaded);
  Writer.keyValue("cache_load_rejects", CacheLoadRejects);
  Writer.keyValue("cache_disk_hits", CacheDiskHits);
  Writer.keyValue("impls_invalidated", ImplsInvalidated);
  Writer.keyValue("trees_extracted", static_cast<uint64_t>(TreesExtracted));
  Writer.keyValue("tree_goals", static_cast<uint64_t>(TreeGoals));
  Writer.keyValue("snapshots_dropped",
                  static_cast<uint64_t>(SnapshotsDropped));
  Writer.keyValue("internal_goals_hidden",
                  static_cast<uint64_t>(InternalGoalsHidden));
  Writer.keyValue("failed_leaves", static_cast<uint64_t>(FailedLeaves));
  Writer.keyValue("dnf_conjuncts", static_cast<uint64_t>(DNFConjuncts));
  Writer.keyValue("dnf_words_touched", DNFWordsTouched);
  Writer.keyValue("dnf_truncations", DNFTruncations);
  Writer.keyValue("dispatch_exact_prunes", DispatchExactPrunes);
  Writer.keyValue("dispatch_cache_skips", DispatchCacheSkips);
  Writer.keyValue("dispatch_reference", DispatchReference);
  Writer.keyValue("dispatch_bitset", DispatchBitset);
  Writer.keyValue("dispatch_forced", DispatchForced);
  Writer.keyValue("tree_goals_truncated",
                  static_cast<uint64_t>(TreeGoalsTruncated));
  Writer.keyValue("arena_hash_lookups", ArenaHashLookups);
  Writer.keyValue("deadline_hits", DeadlineHits);
  Writer.keyValue("cancellations", Cancellations);
  Writer.keyValue("work_ceiling_hits", WorkCeilingHits);
  Writer.keyValue("faults_injected", FaultsInjected);
  Writer.endObject();
  Writer.keyValue("degraded", degraded());
  Writer.key("subsumption_notes");
  Writer.beginArray();
  for (const std::string &Note : SubsumptionNotes)
    Writer.value(Note);
  Writer.endArray();
  Writer.key("failures");
  Writer.beginArray();
  for (const Failure &F : Failures)
    F.writeJSON(Writer);
  Writer.endArray();
  Writer.endObject();
}

std::string SessionStats::toJSON(bool Pretty) const {
  JSONWriter Writer(Pretty);
  writeJSON(Writer);
  return Writer.str();
}

/// RAII accumulator: adds the scope's wall-clock to one stage.
struct Session::StageTimer {
  StageTimer(SessionStats &Stats, Stage S)
      : Stats(Stats), Index(static_cast<size_t>(S)),
        Start(std::chrono::steady_clock::now()) {}
  ~StageTimer() {
    std::chrono::duration<double> Elapsed =
        std::chrono::steady_clock::now() - Start;
    Stats.StageSeconds[Index] += Elapsed.count();
    Stats.StageRuns[Index] += 1;
  }
  SessionStats &Stats;
  size_t Index;
  std::chrono::steady_clock::time_point Start;
};

Session::Session(std::string Name, std::string Source, SessionOptions Opts)
    : Name(std::move(Name)), Source(std::move(Source)),
      Opts(std::move(Opts)) {
  Stats.Name = this->Name;
  // Constructing the governor arms the job deadline, so a batch job's
  // clock starts when its Session is created, not at first stage use.
  if (this->Opts.Limits.any() || this->Opts.Faults.enabled())
    Gov = std::make_unique<ResourceGovernor>(this->Opts.Limits,
                                             this->Opts.Faults, this->Name);
}

Stage Session::lastStage() const {
  Stage Last = Stage::Parse;
  for (size_t I = 0; I != NumStages; ++I)
    if (Stats.StageRuns[I] != 0)
      Last = static_cast<Stage>(I);
  return Last;
}

void Session::noteFailure(Failure F) {
  switch (F.Code) {
  case FailureCode::DeadlineExceeded:
    ++Stats.DeadlineHits;
    break;
  case FailureCode::Cancelled:
    ++Stats.Cancellations;
    break;
  case FailureCode::WorkExceeded:
    ++Stats.WorkCeilingHits;
    break;
  default:
    break;
  }
  for (const Failure &E : Stats.Failures)
    if (E.Code == F.Code && E.At == F.At)
      return;
  Stats.Failures.push_back(std::move(F));
}

void Session::beginStage(Stage S) {
  if (Gov)
    Gov->beginStage(S);
}

void Session::endStage(Stage S) {
  if (!Gov)
    return;
  if (std::optional<Failure> F = Gov->stageFailure(S))
    noteFailure(std::move(*F));
  Stats.FaultsInjected = Gov->faultsFired();
}

std::optional<Session> Session::open(const std::string &Path,
                                     SessionOptions Opts) {
  std::ifstream File(Path);
  if (!File)
    return std::nullopt;
  std::ostringstream Buffer;
  Buffer << File.rdbuf();
  return Session(Path, Buffer.str(), std::move(Opts));
}

const ParseResult &Session::parse() {
  if (!Parsed) {
    StageTimer Timer(Stats, Stage::Parse);
    beginStage(Stage::Parse);
    Sess = std::make_unique<argus::Session>();
    Prog = std::make_unique<Program>(*Sess);
    Parsed = parseSource(*Prog, Name, Source);
    if (Gov && Gov->shouldFail("parse.error")) {
      Parsed->Success = false;
      argus::ParseError Injected;
      Injected.Message = "injected parse fault (site parse.error)";
      Parsed->Errors.push_back(std::move(Injected));
    }
    Stats.ParseErrors = Parsed->Errors.size();
    if (!Parsed->Success)
      noteFailure({FailureCode::ParseError, Stage::Parse,
                   Parsed->Errors.empty() ? std::string("parse failed")
                                          : Parsed->Errors.front().Message});
    endStage(Stage::Parse);
  }
  return *Parsed;
}

std::string Session::parseErrorText() {
  parse();
  return Parsed->describe(Sess->sources());
}

void Session::ensureSolverIndex() {
  if (IndexBuilt)
    return;
  IndexBuilt = true;
  parse();
  // Without the candidate index the lazy scan path is the whole story;
  // nothing to precompute.
  if (!Opts.Solver.EnableCandidateIndex)
    return;
  StageTimer Timer(Stats, Stage::Coherence);
  beginStage(Stage::Coherence);
  SolverIndexOptions IOpts;
  IOpts.EnableSubsumption = Opts.Solver.EnableSubsumption;
  if (Gov)
    IOpts.Budget = &Gov->budget();
  SolverIndexStats Built = buildSolverIndex(*Prog, IOpts);
  if (Built.Completed) {
    Stats.ImplsSubsumed = Built.ImplsSubsumed;
    Stats.SubsumptionNotes = Prog->indexNotes();
  }
  // On a budget stop buildSolverIndex already discarded any partial
  // index, so the solver falls back to the (identical-output) lazy
  // path; endStage records the stop as a Coherence-stage failure.
  endStage(Stage::Coherence);
}

const std::vector<CoherenceError> &Session::coherence() {
  if (!CoherenceErrors) {
    parse();
    ensureSolverIndex();
    StageTimer Timer(Stats, Stage::Coherence);
    beginStage(Stage::Coherence);
    CoherenceErrors = checkCoherence(*Prog);
    Stats.CoherenceErrors = CoherenceErrors->size();
    endStage(Stage::Coherence);
  }
  return *CoherenceErrors;
}

const SolveOutcome &Session::solve() {
  if (!Outcome) {
    parse();
    ensureSolverIndex();
    StageTimer Timer(Stats, Stage::Solve);
    beginStage(Stage::Solve);
    SolverOptions SOpts = Opts.Solver;
    if (Gov) {
      SOpts.Budget = &Gov->budget();
      if (Gov->shouldFail("solve.overflow"))
        SOpts.MaxGoalEvaluations = 0;
    }
    if (Opts.Cache != CacheMode::Off && !SOpts.EnableMemoization) {
      if (Opts.Cache == CacheMode::Shared && Opts.SharedCache) {
        SOpts.Cache = Opts.SharedCache;
      } else {
        OwnCache = std::make_unique<GoalCache>(
            GoalCache::Config{Opts.CacheShards, Opts.CacheCap});
        SOpts.Cache = OwnCache.get();
      }
      // Only probed when the cache is on, so configured fault plans keep
      // firing the same sites (and counters) for cache-off runs.
      if (Gov && Gov->shouldFail("cache.reject"))
        SOpts.CacheRejectAll = true;
      if (Gov && Gov->shouldFail("cache.depmiss"))
        SOpts.CacheForceDepMiss = true;
    }
    TheSolver = std::make_unique<Solver>(*Prog, SOpts);
    Outcome = TheSolver->solve();
    Stats.GoalEvaluations = Outcome->NumEvaluations;
    Stats.MemoHits = Outcome->NumMemoHits;
    Stats.CandidatesFiltered = Outcome->NumCandidatesFiltered;
    Stats.IndexBucketHits = Outcome->NumIndexBucketHits;
    Stats.FixpointRounds = Outcome->RoundsUsed;
    Stats.SolverSteps = Outcome->NumSolverSteps;
    Stats.CacheHits = Outcome->NumCacheHits;
    Stats.CacheMisses = Outcome->NumCacheMisses;
    Stats.CacheInserts = Outcome->NumCacheInserts;
    Stats.CacheInsertsRejected = Outcome->NumCacheInsertsRejected;
    Stats.CacheCrossRevHits = Outcome->NumCacheCrossRevHits;
    Stats.CacheDepMisses = Outcome->NumCacheDepMisses;
    Stats.CacheDiskHits = Outcome->NumCacheDiskHits;
    Stats.DispatchExactPrunes = Outcome->NumExactPrunes;
    Stats.DispatchCacheSkips = Outcome->NumCacheAdmissionSkips;
    Stats.ArenaHashLookups = Sess->types().hashLookups();
    if (Outcome->EvalBudgetExhausted)
      noteFailure({FailureCode::SolverOverflow, Stage::Solve,
                   "goal evaluation ceiling (MaxGoalEvaluations) reached"});
    endStage(Stage::Solve);
  }
  return *Outcome;
}

SolveOutcome Session::solveFresh() {
  parse();
  ensureSolverIndex();
  StageTimer Timer(Stats, Stage::Solve);
  Solver Fresh(*Prog, Opts.Solver);
  return Fresh.solve();
}

const Extraction &Session::extraction() {
  if (!Extracted) {
    solve();
    StageTimer Timer(Stats, Stage::Extract);
    beginStage(Stage::Extract);
    ExtractOptions EOpts = Opts.Extract;
    if (Gov) {
      EOpts.Budget = &Gov->budget();
      if (Gov->shouldFail("extract.truncate"))
        EOpts.MaxTreeGoals = 1;
    }
    Extracted =
        extractTrees(*Prog, *Outcome, TheSolver->inferContext(), EOpts);
    InertiaCache.assign(Extracted->Trees.size(), std::nullopt);
    Stats.TreesExtracted = Extracted->Trees.size();
    Stats.TreeGoals = 0;
    for (const InferenceTree &Tree : Extracted->Trees)
      Stats.TreeGoals += Tree.numGoals();
    Stats.SnapshotsDropped = Extracted->Stats.SnapshotsDropped;
    Stats.InternalGoalsHidden = Extracted->Stats.InternalGoalsHidden;
    Stats.TreeGoalsTruncated = Extracted->Stats.GoalsTruncated;
    if (Extracted->Stats.GoalsTruncated > 0)
      noteFailure({FailureCode::ExtractTruncated, Stage::Extract,
                   "tree extraction cut " +
                       std::to_string(Extracted->Stats.GoalsTruncated) +
                       " goals short"});
    endStage(Stage::Extract);
  }
  return *Extracted;
}

Extraction Session::extractFresh() { return extractFresh(Opts.Extract); }

Extraction Session::extractFresh(const ExtractOptions &ExOpts) {
  solve();
  StageTimer Timer(Stats, Stage::Extract);
  return extractTrees(*Prog, *Outcome, TheSolver->inferContext(), ExOpts);
}

const InferenceTree &Session::tree(size_t Index) {
  return extraction().Trees.at(Index);
}

const InertiaResult &Session::inertia(size_t Index) {
  extraction();
  assert(Index < InertiaCache.size() && "tree index out of range");
  if (!InertiaCache[Index]) {
    StageTimer Timer(Stats, Stage::Analyze);
    beginStage(Stage::Analyze);
    AnalysisOptions AOpts = Opts.Analysis;
    AOpts.Scratch = &Sess->scratch();
    if (Gov) {
      AOpts.Budget = &Gov->budget();
      if (Gov->shouldFail("dnf.truncate"))
        AOpts.MaxConjuncts = 1;
    }
    InertiaCache[Index] =
        rankByInertia(*Prog, Extracted->Trees[Index], AOpts);
    Stats.FailedLeaves += InertiaCache[Index]->Order.size();
    Stats.DNFConjuncts += InertiaCache[Index]->MCS.size();
    Stats.DNFWordsTouched += InertiaCache[Index]->DNF.WordsTouched;
    Stats.DNFTruncations += InertiaCache[Index]->DNF.Truncations;
    Stats.DispatchReference += InertiaCache[Index]->DNF.DispatchReference;
    Stats.DispatchBitset += InertiaCache[Index]->DNF.DispatchBitset;
    Stats.DispatchForced += InertiaCache[Index]->DNF.DispatchForced;
    Stats.ArenaHashLookups = Sess->types().hashLookups();
    if (InertiaCache[Index]->DNF.Truncations > 0)
      noteFailure({FailureCode::DnfTruncated, Stage::Analyze,
                   "DNF formula truncated to MaxConjuncts"});
    endStage(Stage::Analyze);
  }
  return *InertiaCache[Index];
}

InertiaResult Session::inertiaWith(size_t Index, const WeightFn &Weight) {
  extraction();
  StageTimer Timer(Stats, Stage::Analyze);
  return rankByInertiaWith(*Prog, Extracted->Trees.at(Index), Weight,
                           Opts.Analysis);
}

RenderedDiagnostic Session::diagnostic(size_t Index) {
  const InferenceTree &T = tree(Index);
  StageTimer Timer(Stats, Stage::Render);
  DiagnosticRenderer Renderer(*Prog, Opts.Diagnostic);
  return Renderer.render(T);
}

std::string Session::diagnosticText(size_t Index) {
  return diagnostic(Index).Text;
}

std::string Session::bottomUpText(size_t Index) {
  ArgusInterface UI = interface(Index);
  StageTimer Timer(Stats, Stage::Render);
  beginStage(Stage::Render);
  std::string Text = UI.renderText();
  endStage(Stage::Render);
  return Text;
}

std::string Session::topDownText(size_t Index) {
  ArgusInterface UI = interface(Index);
  StageTimer Timer(Stats, Stage::Render);
  beginStage(Stage::Render);
  UI.setActiveView(ViewKind::TopDown);
  UI.expandAll();
  std::string Text = UI.renderText();
  endStage(Stage::Render);
  return Text;
}

std::string Session::treeJSON(size_t Index, bool Pretty) {
  const InferenceTree &T = tree(Index);
  StageTimer Timer(Stats, Stage::Render);
  return treeToJSON(*Prog, T, Pretty);
}

std::string Session::html(size_t Index, HTMLExportOptions HOpts) {
  const InferenceTree &T = tree(Index);
  StageTimer Timer(Stats, Stage::Render);
  return treeToHTML(*Prog, T, std::move(HOpts));
}

ArgusInterface Session::interface(size_t Index) {
  const InertiaResult &Ranked = inertia(Index);
  StageTimer Timer(Stats, Stage::Render);
  ArgusInterface UI(*Prog, Extracted->Trees[Index], Ranked.Order);
  if (Gov)
    UI.setBudget(&Gov->budget());
  return UI;
}

std::vector<FixSuggestion> Session::suggestTop(size_t Index) {
  const InertiaResult &Ranked = inertia(Index);
  if (Ranked.Order.empty())
    return {};
  const Predicate &Top =
      Extracted->Trees[Index].goal(Ranked.Order[0]).Pred;
  StageTimer Timer(Stats, Stage::Render);
  return suggestFixes(*Prog, Top);
}

const Program &Session::program() {
  parse();
  return *Prog;
}

argus::Session &Session::session() {
  parse();
  return *Sess;
}

InferContext &Session::inferContext() {
  solve();
  return TheSolver->inferContext();
}

} // namespace engine
} // namespace argus
