//===- engine/Failure.h - Structured failure taxonomy ---------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine's failure taxonomy. Anything that keeps a Session from
/// producing its full result is recorded as a Failure — a code, the
/// stage it hit, and a short detail string — instead of a thrown
/// exception or a silently truncated output. Failures ride in
/// SessionStats, serialize through --trace, and map onto the CLI's exit
/// codes:
///
///   0  clean, no trait errors
///   1  trait errors found (the tool's whole point — not a failure)
///   2  ParseError, bad usage, unreadable input
///   3  degraded: a governance stop or truncation yielded a partial
///      result (SolverOverflow, DnfTruncated, ExtractTruncated,
///      DeadlineExceeded, WorkExceeded, Cancelled), or a persisted
///      cache image was rejected and the run proceeded cold
///      (CacheLoadRejected)
///   4  WorkerPanic: a batch worker threw; the batch survived
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_ENGINE_FAILURE_H
#define ARGUS_ENGINE_FAILURE_H

#include "engine/Stage.h"
#include "support/Governance.h"
#include "support/JSON.h"

#include <string>

namespace argus {
namespace engine {

enum class FailureCode : uint8_t {
  None = 0,
  /// The source did not parse; later stages never ran.
  ParseError,
  /// The solver hit its goal-evaluation ceiling; remaining goals report
  /// Overflow, like rustc's recursion-limit overflow.
  SolverOverflow,
  /// DNF normalization clipped a formula at AnalysisOptions::MaxConjuncts;
  /// the MCS is computed over the kept conjuncts only.
  DnfTruncated,
  /// Tree extraction stopped early (budget or MaxTreeGoals); trees are
  /// missing goals below the cut.
  ExtractTruncated,
  /// A job or stage wall-clock deadline passed mid-stage.
  DeadlineExceeded,
  /// A stage work ceiling was reached mid-stage.
  WorkExceeded,
  /// cancel() was observed — batch watchdog or front end.
  Cancelled,
  /// A batch worker threw; Detail carries what() and the stage reached.
  WorkerPanic,
  /// A persisted cache image was rejected (unreadable, truncated,
  /// corrupt, version skew, or malformed); the load was discarded
  /// atomically and the run proceeded with a cold cache. Detail carries
  /// the CacheLoadStatus name and the image path.
  CacheLoadRejected,
};

inline constexpr size_t NumFailureCodes = 10;

/// Stable snake_case code name ("parse_error", ...); a JSON format
/// contract.
const char *failureCodeName(FailureCode Code);

/// True for the codes that mean "partial result produced under
/// governance" (exit 3): everything except None, ParseError, WorkerPanic.
bool isDegradation(FailureCode Code);

/// Maps a budget stop onto its failure code (None for StopReason::None).
FailureCode failureFromStop(StopReason Reason);

/// The CLI exit contribution of one code: 0 for None, else 2/3/4 per the
/// table above. A batch exits with the max over jobs.
int exitCodeFor(FailureCode Code);

/// One recorded failure. Detail is free-form human text (not parsed by
/// tooling; tests match on Code/At).
struct Failure {
  FailureCode Code = FailureCode::None;
  Stage At = Stage::Parse;
  std::string Detail;

  /// {"code": ..., "stage": ..., "detail": ...}
  void writeJSON(JSONWriter &Writer) const;
};

} // namespace engine
} // namespace argus

#endif // ARGUS_ENGINE_FAILURE_H
