//===- engine/EditSession.cpp ---------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/EditSession.h"

#include "solver/CachePersist.h"

#include <algorithm>

namespace argus {
namespace engine {

EditSession::EditSession(std::string Name, SessionOptions Opts)
    : Name(std::move(Name)), Opts(std::move(Opts)) {
  // CacheMode::Off is honored (every revision solves cold — the
  // comparison baseline for the incremental gates); any cache mode
  // becomes Shared against the cache owned here, which is the whole
  // point of an edit session.
  if (this->Opts.Cache != CacheMode::Off) {
    this->Opts.Cache = CacheMode::Shared;
    this->Opts.SharedCache = &Cache;
  }
}

namespace {

/// Sorted structural fingerprints of every impl in the revision's parsed
/// program; empty on parse failure.
std::vector<uint64_t> implFps(Session &S) {
  std::vector<uint64_t> Fps;
  if (!S.parseOk())
    return Fps;
  const Program &P = S.program();
  Fps.reserve(P.impls().size());
  for (uint32_t I = 0; I != P.impls().size(); ++I)
    Fps.push_back(P.implFingerprint(ImplId(I)));
  std::sort(Fps.begin(), Fps.end());
  return Fps;
}

/// Size of the symmetric multiset difference: impls present on one side
/// but not the other. An edited impl contributes to both sides but is
/// reported once (max of the two one-sided counts), so one edit, one
/// addition, or one removal each read as 1.
uint64_t fpDiff(const std::vector<uint64_t> &A,
                const std::vector<uint64_t> &B) {
  size_t I = 0, J = 0, OnlyA = 0, OnlyB = 0;
  while (I != A.size() || J != B.size()) {
    if (J == B.size() || (I != A.size() && A[I] < B[J])) {
      ++OnlyA;
      ++I;
    } else if (I == A.size() || B[J] < A[I]) {
      ++OnlyB;
      ++J;
    } else {
      ++I;
      ++J;
    }
  }
  return std::max(OnlyA, OnlyB);
}

} // namespace

void EditSession::loadCache(const std::string &Path, FaultInjector *Faults) {
  if (Opts.Cache == CacheMode::Off)
    return;
  CacheLoadResult R = loadGoalCache(Cache, Path, Faults, Path);
  PendingLoad P;
  P.EntriesLoaded = R.EntriesLoaded;
  if (!R.ok()) {
    P.Rejected = true;
    P.Detail = std::string(cacheLoadStatusName(R.Status)) + ": " + R.Detail;
  }
  Pending = std::move(P);
}

bool EditSession::saveCache(const std::string &Path, FaultInjector *Faults,
                            std::string *Error) {
  if (Opts.Cache == CacheMode::Off)
    return true;
  CacheSaveResult R = saveGoalCache(Cache, Path, Faults, Path);
  if (!R.Ok && Error)
    *Error = R.Detail;
  return R.Ok;
}

Session &EditSession::apply(std::string Source) {
  // Destroy the previous revision before building the next: Sessions are
  // single-threaded and the cache outlives both, so entries recorded by
  // revision N serve lookups in revision N+1 (their dependency
  // fingerprints decide which survive the edit).
  Current.reset();
  Current.emplace(Name, std::move(Source), Opts);
  ++Revision;
  if (Pending) {
    Current->noteCacheLoad(Pending->EntriesLoaded, Pending->Rejected,
                           Pending->Detail);
    Pending.reset();
  }

  std::vector<uint64_t> Fps = implFps(*Current);
  Current->noteImplsInvalidated(Revision == 1 ? 0
                                              : fpDiff(PrevImplFps, Fps));
  PrevImplFps = std::move(Fps);
  return *Current;
}

} // namespace engine
} // namespace argus
