//===- engine/Failure.cpp -------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Failure.h"

namespace argus {
namespace engine {

const char *failureCodeName(FailureCode Code) {
  switch (Code) {
  case FailureCode::None:
    return "none";
  case FailureCode::ParseError:
    return "parse_error";
  case FailureCode::SolverOverflow:
    return "solver_overflow";
  case FailureCode::DnfTruncated:
    return "dnf_truncated";
  case FailureCode::ExtractTruncated:
    return "extract_truncated";
  case FailureCode::DeadlineExceeded:
    return "deadline_exceeded";
  case FailureCode::WorkExceeded:
    return "work_exceeded";
  case FailureCode::Cancelled:
    return "cancelled";
  case FailureCode::WorkerPanic:
    return "worker_panic";
  case FailureCode::CacheLoadRejected:
    return "cache_load_rejected";
  }
  return "unknown";
}

bool isDegradation(FailureCode Code) {
  switch (Code) {
  case FailureCode::SolverOverflow:
  case FailureCode::DnfTruncated:
  case FailureCode::ExtractTruncated:
  case FailureCode::DeadlineExceeded:
  case FailureCode::WorkExceeded:
  case FailureCode::Cancelled:
  case FailureCode::CacheLoadRejected:
    return true;
  case FailureCode::None:
  case FailureCode::ParseError:
  case FailureCode::WorkerPanic:
    return false;
  }
  return false;
}

FailureCode failureFromStop(StopReason Reason) {
  switch (Reason) {
  case StopReason::None:
    return FailureCode::None;
  case StopReason::Cancelled:
    return FailureCode::Cancelled;
  case StopReason::DeadlineExceeded:
    return FailureCode::DeadlineExceeded;
  case StopReason::WorkExceeded:
    return FailureCode::WorkExceeded;
  }
  return FailureCode::None;
}

int exitCodeFor(FailureCode Code) {
  if (Code == FailureCode::None)
    return 0;
  if (Code == FailureCode::ParseError)
    return 2;
  if (Code == FailureCode::WorkerPanic)
    return 4;
  return 3;
}

void Failure::writeJSON(JSONWriter &Writer) const {
  Writer.beginObject();
  Writer.keyValue("code", failureCodeName(Code));
  Writer.keyValue("stage", stageName(At));
  Writer.keyValue("detail", Detail);
  Writer.endObject();
}

} // namespace engine
} // namespace argus
