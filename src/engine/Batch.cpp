//===- engine/Batch.cpp ---------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Batch.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace argus {
namespace engine {

BatchDriver::BatchDriver(SessionOptions Opts, unsigned Jobs,
                         BatchOptions BatchOpts)
    : Opts(std::move(Opts)), NumJobs(std::max(1u, Jobs)),
      BOpts(BatchOpts) {
  if (this->Opts.Cache == CacheMode::Shared && !this->Opts.SharedCache) {
    OwnedCache = std::make_unique<GoalCache>(
        GoalCache::Config{this->Opts.CacheShards, this->Opts.CacheCap});
    this->Opts.SharedCache = OwnedCache.get();
  }
}

/// One worker thread's registration with the watchdog: which governor is
/// currently running and since when. The mutex orders registration
/// against the watchdog's cancel (the governor dies with its Session).
struct BatchDriver::WatchSlot {
  std::mutex M;
  ResourceGovernor *Gov = nullptr;
  std::chrono::steady_clock::time_point Start;
};

void BatchDriver::runOne(const BatchJob &Job, const SessionOptions &JobOpts,
                         const Worker &Work, WatchSlot *Slot,
                         BatchResult &Result) const {
  Session S(Job.Name, Job.Source, JobOpts);
  Result.Name = Job.Name;
  if (Slot) {
    std::lock_guard<std::mutex> Lock(Slot->M);
    Slot->Gov = S.governor();
    Slot->Start = std::chrono::steady_clock::now();
  }
  bool Panicked = false;
  std::string What;
  try {
    if (S.governor() && S.governor()->shouldFail("worker.panic"))
      throw std::runtime_error("injected worker panic (site worker.panic)");
    Result.Output = Work(S);
  } catch (const std::exception &E) {
    Panicked = true;
    What = E.what();
  } catch (...) {
    Panicked = true;
    What = "unknown exception";
  }
  if (Slot) {
    std::lock_guard<std::mutex> Lock(Slot->M);
    Slot->Gov = nullptr;
  }
  if (Panicked) {
    Result.Error = What;
    S.noteFailure({FailureCode::WorkerPanic, S.lastStage(),
                   "worker for job '" + Job.Name + "' threw during " +
                       stageName(S.lastStage()) + ": " + What});
  }
  // After a panic the Session may be mid-stage; probe without forcing so
  // a parse exception cannot rethrow here and kill the pool thread. On
  // the success path, forcing parse keeps the old contract for workers
  // that never touched the Session.
  Result.ParseOk = S.parseCompleted() ? S.parseSucceeded()
                  : Panicked          ? false
                                      : S.parseOk();
  // Only consult solve results the worker already produced; a
  // parse-only worker should not pay for solving here.
  Result.HasTraitErrors = S.solved() && S.solve().hasErrors();
  // Stats from whatever stages completed — populated on panics too.
  Result.Stats = S.stats();
}

std::vector<BatchResult> BatchDriver::run(const std::vector<BatchJob> &Jobs,
                                          const Worker &Work) const {
  std::vector<BatchResult> Results(Jobs.size());

  unsigned Threads = std::max(
      1u, static_cast<unsigned>(std::min<size_t>(NumJobs, Jobs.size())));

  // The watchdog engages only when a job deadline is configured. Workers
  // normally observe their own deadline through budget ticks; the grace
  // factor means the watchdog cancel fires only for jobs stuck in code
  // that does not tick.
  const double JobDeadline = Opts.Limits.JobDeadlineSeconds;
  const bool UseWatchdog = JobDeadline > 0.0;
  std::vector<WatchSlot> Slots(Threads);
  std::atomic<bool> Done{false};
  std::thread Watchdog;
  if (UseWatchdog) {
    const auto Grace =
        std::chrono::duration<double>(JobDeadline * 1.5 + 0.05);
    Watchdog = std::thread([&Slots, &Done, Grace] {
      while (!Done.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        auto Now = std::chrono::steady_clock::now();
        for (WatchSlot &Slot : Slots) {
          std::lock_guard<std::mutex> Lock(Slot.M);
          if (Slot.Gov && Now - Slot.Start >= Grace)
            Slot.Gov->cancel();
        }
      }
    });
  }

  // Work-stealing by atomic index: threads race for the next job, but
  // each result lands in its input slot, so ordering (and therefore
  // output) is independent of scheduling.
  std::atomic<size_t> Next{0};
  auto RunJobs = [&](unsigned ThreadIndex) {
    WatchSlot *Slot = UseWatchdog ? &Slots[ThreadIndex] : nullptr;
    for (;;) {
      size_t Index = Next.fetch_add(1, std::memory_order_relaxed);
      if (Index >= Jobs.size())
        return;
      runOne(Jobs[Index], Opts, Work, Slot, Results[Index]);
    }
  };

  if (Threads <= 1) {
    RunJobs(0);
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Threads);
    for (unsigned I = 0; I != Threads; ++I)
      Pool.emplace_back(RunJobs, I);
    for (std::thread &T : Pool)
      T.join();
  }

  if (UseWatchdog) {
    Done.store(true, std::memory_order_relaxed);
    Watchdog.join();
  }

  // Optional second chance: jobs stopped by resource governance (not by
  // deterministic ceilings a rerun cannot change) run again, one at a
  // time with the whole machine to themselves and relaxed limits.
  if (BOpts.RetryOverruns) {
    SessionOptions Relaxed = Opts;
    Relaxed.Limits = Opts.Limits.relaxed(BOpts.RetryRelaxFactor);
    for (size_t I = 0; I != Jobs.size(); ++I) {
      bool ResourceStopped = false;
      for (const Failure &F : Results[I].Stats.Failures)
        if (F.Code == FailureCode::DeadlineExceeded ||
            F.Code == FailureCode::WorkExceeded ||
            F.Code == FailureCode::Cancelled)
          ResourceStopped = true;
      if (!ResourceStopped)
        continue;
      BatchResult Fresh;
      runOne(Jobs[I], Relaxed, Work, nullptr, Fresh);
      Fresh.Retried = true;
      Results[I] = std::move(Fresh);
    }
  }

  return Results;
}

std::vector<BatchJob>
BatchDriver::jobsFromDirectory(const std::string &Dir) {
  namespace fs = std::filesystem;
  std::vector<fs::path> Paths;
  std::error_code EC;
  for (const fs::directory_entry &Entry : fs::directory_iterator(Dir, EC)) {
    if (Entry.is_regular_file() && Entry.path().extension() == ".tl")
      Paths.push_back(Entry.path());
  }
  if (EC)
    fprintf(stderr, "argus: cannot read directory %s: %s\n", Dir.c_str(),
            EC.message().c_str());
  // directory_iterator order is unspecified; sort for reproducibility.
  std::sort(Paths.begin(), Paths.end());

  std::vector<BatchJob> Jobs;
  Jobs.reserve(Paths.size());
  for (const fs::path &Path : Paths) {
    std::ifstream File(Path);
    if (!File) {
      fprintf(stderr, "argus: cannot open %s\n", Path.c_str());
      continue;
    }
    std::ostringstream Buffer;
    Buffer << File.rdbuf();
    Jobs.push_back({Path.string(), Buffer.str()});
  }
  return Jobs;
}

std::string
BatchDriver::statsTraceJSON(const std::vector<BatchResult> &Results,
                            unsigned Jobs, bool Pretty) {
  JSONWriter Writer(Pretty);
  Writer.beginObject();
  Writer.keyValue("jobs", static_cast<uint64_t>(Jobs));
  Writer.keyValue("programs_total", static_cast<uint64_t>(Results.size()));
  Writer.key("programs");
  Writer.beginArray();
  for (const BatchResult &Result : Results)
    Result.Stats.writeJSON(Writer);
  Writer.endArray();
  Writer.endObject();
  return Writer.str();
}

int BatchDriver::worstExitCode(const std::vector<BatchResult> &Results) {
  int Code = 0;
  for (const BatchResult &Result : Results)
    Code = std::max(Code, Result.Stats.exitCode());
  return Code;
}

} // namespace engine
} // namespace argus
