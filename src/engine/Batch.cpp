//===- engine/Batch.cpp ---------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Batch.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

namespace argus {
namespace engine {

BatchDriver::BatchDriver(SessionOptions Opts, unsigned Jobs)
    : Opts(std::move(Opts)), NumJobs(std::max(1u, Jobs)) {}

std::vector<BatchResult> BatchDriver::run(const std::vector<BatchJob> &Jobs,
                                          const Worker &Work) const {
  std::vector<BatchResult> Results(Jobs.size());

  // Work-stealing by atomic index: threads race for the next job, but
  // each result lands in its input slot, so ordering (and therefore
  // output) is independent of scheduling.
  std::atomic<size_t> Next{0};
  auto RunJobs = [&] {
    for (;;) {
      size_t Index = Next.fetch_add(1, std::memory_order_relaxed);
      if (Index >= Jobs.size())
        return;
      Session S(Jobs[Index].Name, Jobs[Index].Source, Opts);
      BatchResult &Result = Results[Index];
      Result.Name = Jobs[Index].Name;
      try {
        Result.Output = Work(S);
      } catch (const std::exception &E) {
        Result.Error = E.what();
      } catch (...) {
        Result.Error = "unknown worker error";
      }
      Result.ParseOk = S.parseOk();
      // Only consult solve results the worker already produced; a
      // parse-only worker should not pay for solving here.
      Result.HasTraitErrors = S.solved() && S.solve().hasErrors();
      Result.Stats = S.stats();
    }
  };

  unsigned Threads =
      static_cast<unsigned>(std::min<size_t>(NumJobs, Jobs.size()));
  if (Threads <= 1) {
    RunJobs();
    return Results;
  }
  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I)
    Pool.emplace_back(RunJobs);
  for (std::thread &T : Pool)
    T.join();
  return Results;
}

std::vector<BatchJob>
BatchDriver::jobsFromDirectory(const std::string &Dir) {
  namespace fs = std::filesystem;
  std::vector<fs::path> Paths;
  std::error_code EC;
  for (const fs::directory_entry &Entry : fs::directory_iterator(Dir, EC)) {
    if (Entry.is_regular_file() && Entry.path().extension() == ".tl")
      Paths.push_back(Entry.path());
  }
  if (EC)
    fprintf(stderr, "argus: cannot read directory %s: %s\n", Dir.c_str(),
            EC.message().c_str());
  // directory_iterator order is unspecified; sort for reproducibility.
  std::sort(Paths.begin(), Paths.end());

  std::vector<BatchJob> Jobs;
  Jobs.reserve(Paths.size());
  for (const fs::path &Path : Paths) {
    std::ifstream File(Path);
    if (!File) {
      fprintf(stderr, "argus: cannot open %s\n", Path.c_str());
      continue;
    }
    std::ostringstream Buffer;
    Buffer << File.rdbuf();
    Jobs.push_back({Path.string(), Buffer.str()});
  }
  return Jobs;
}

std::string
BatchDriver::statsTraceJSON(const std::vector<BatchResult> &Results,
                            unsigned Jobs, bool Pretty) {
  JSONWriter Writer(Pretty);
  Writer.beginObject();
  Writer.keyValue("jobs", static_cast<uint64_t>(Jobs));
  Writer.keyValue("programs_total", static_cast<uint64_t>(Results.size()));
  Writer.key("programs");
  Writer.beginArray();
  for (const BatchResult &Result : Results)
    Result.Stats.writeJSON(Writer);
  Writer.endArray();
  Writer.endObject();
  return Writer.str();
}

} // namespace engine
} // namespace argus
