//===- engine/Governor.cpp ------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Governor.h"

#include <cmath>

namespace argus {
namespace engine {

bool ResourceLimits::any() const {
  if (JobDeadlineSeconds > 0.0)
    return true;
  for (size_t I = 0; I != NumStages; ++I)
    if (StageDeadlineSeconds[I] > 0.0 || StageWorkCeiling[I] != 0)
      return true;
  return false;
}

ResourceLimits ResourceLimits::relaxed(double Factor) const {
  ResourceLimits Out = *this;
  if (Out.JobDeadlineSeconds > 0.0)
    Out.JobDeadlineSeconds *= Factor;
  for (size_t I = 0; I != NumStages; ++I) {
    if (Out.StageDeadlineSeconds[I] > 0.0)
      Out.StageDeadlineSeconds[I] *= Factor;
    if (Out.StageWorkCeiling[I] != 0)
      Out.StageWorkCeiling[I] = static_cast<uint64_t>(
          std::ceil(static_cast<double>(Out.StageWorkCeiling[I]) * Factor));
  }
  return Out;
}

ResourceGovernor::ResourceGovernor(const ResourceLimits &Limits,
                                   const FaultPlan &Plan, std::string Scope)
    : Limits(Limits), Scope(std::move(Scope)),
      Faults(Plan.Sites, Plan.Seed, Plan.Probability) {
  Budget.armJob(Limits.JobDeadlineSeconds);
}

void ResourceGovernor::beginStage(Stage S) {
  Budget.armStage(Limits.stageDeadline(S), Limits.stageCeiling(S));
  if (!Faults.enabled())
    return;
  std::string Base = stageName(S);
  if (Faults.shouldFail(Base + ".cancel", Scope))
    Budget.cancel(StopReason::Cancelled);
  if (Faults.shouldFail(Base + ".deadline", Scope))
    Budget.forceStageStop(StopReason::DeadlineExceeded);
  if (Faults.shouldFail(Base + ".work", Scope))
    Budget.forceStageStop(StopReason::WorkExceeded);
}

std::optional<Failure> ResourceGovernor::stageFailure(Stage S) {
  // stopped() rather than reason(): a cancel or deadline that tripped
  // between the last tick and the stage boundary is still this stage's
  // stop.
  if (!Budget.stopped())
    return std::nullopt;
  StopReason Job = Budget.jobReason();
  if (Job != StopReason::None) {
    if (HardReported)
      return std::nullopt; // Attributed to the stage where it tripped.
    HardReported = true;
    Failure F{failureFromStop(Job), S, {}};
    F.Detail = std::string("job stopped during ") + stageName(S) + " after " +
               std::to_string(Budget.stageWork()) + " work units";
    return F;
  }
  StopReason StageR = Budget.stageReason();
  if (StageR == StopReason::None)
    return std::nullopt;
  Failure F{failureFromStop(StageR), S, {}};
  F.Detail = std::string("stage ") + stageName(S) + " stopped after " +
             std::to_string(Budget.stageWork()) + " work units";
  return F;
}

} // namespace engine
} // namespace argus
