//===- analysis/ConjunctSet.h - Small-buffer conjunct bitsets -*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cache-friendly conjunct representation behind the DNF kernel. A
/// conjunct is a set of atom indices (densely numbered failed-leaf
/// predicates of one tree); DNF normalization is dominated by three set
/// operations — union (conjunction of conjuncts), subset tests
/// (absorption), and equality (deduplication) — all of which become
/// word-wise AND/OR/popcount over a fixed-width bitset.
///
/// Real trees have few distinct failing predicates: two 64-bit words (128
/// atoms) cover the whole evaluation corpus, so the words are stored
/// inline and only pathological trees spill to the heap. All sets taking
/// part in one normalization share a width, fixed up front by an atom
/// pre-pass over the tree.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_ANALYSIS_CONJUNCTSET_H
#define ARGUS_ANALYSIS_CONJUNCTSET_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace argus {

class ConjunctSet {
public:
  /// Words stored inline before spilling to the heap (128 atoms).
  static constexpr size_t NumInlineWords = 2;

  ConjunctSet() = default;

  /// An empty set over a universe of \p NumBits atoms.
  explicit ConjunctSet(size_t NumBits)
      : NumWords(static_cast<uint32_t>((NumBits + 63) / 64)) {
    if (NumWords > NumInlineWords)
      Heap = new uint64_t[NumWords]();
  }

  ConjunctSet(const ConjunctSet &O) : NumWords(O.NumWords) {
    if (NumWords > NumInlineWords) {
      Heap = new uint64_t[NumWords];
      for (uint32_t I = 0; I != NumWords; ++I)
        Heap[I] = O.Heap[I];
    } else {
      Inline[0] = O.Inline[0];
      Inline[1] = O.Inline[1];
    }
  }

  ConjunctSet(ConjunctSet &&O) noexcept : NumWords(O.NumWords) {
    Inline[0] = O.Inline[0];
    Inline[1] = O.Inline[1];
    Heap = O.Heap;
    O.Heap = nullptr;
    O.NumWords = 0;
  }

  ConjunctSet &operator=(const ConjunctSet &O) {
    if (this != &O) {
      ConjunctSet Copy(O);
      *this = std::move(Copy);
    }
    return *this;
  }

  ConjunctSet &operator=(ConjunctSet &&O) noexcept {
    if (this != &O) {
      delete[] Heap;
      NumWords = O.NumWords;
      Inline[0] = O.Inline[0];
      Inline[1] = O.Inline[1];
      Heap = O.Heap;
      O.Heap = nullptr;
      O.NumWords = 0;
    }
    return *this;
  }

  ~ConjunctSet() { delete[] Heap; }

  /// Number of 64-bit words backing this set (the unit every word-wise
  /// operation below touches; work counters multiply by this).
  size_t words() const { return NumWords; }

  bool spilled() const { return Heap != nullptr; }

  void set(size_t Bit) { data()[Bit >> 6] |= uint64_t(1) << (Bit & 63); }

  bool test(size_t Bit) const {
    return (data()[Bit >> 6] >> (Bit & 63)) & 1;
  }

  /// In-place union: this |= O. Widths must match.
  void unionWith(const ConjunctSet &O) {
    const uint64_t *B = O.data();
    uint64_t *A = data();
    for (uint32_t I = 0; I != NumWords; ++I)
      A[I] |= B[I];
  }

  /// True if every atom of this set is in \p O: (this & ~O) == 0.
  bool isSubsetOf(const ConjunctSet &O) const {
    const uint64_t *A = data();
    const uint64_t *B = O.data();
    for (uint32_t I = 0; I != NumWords; ++I)
      if (A[I] & ~B[I])
        return false;
    return true;
  }

  /// Population count (conjunct size).
  size_t count() const {
    size_t Total = 0;
    const uint64_t *A = data();
    for (uint32_t I = 0; I != NumWords; ++I)
      Total += static_cast<size_t>(__builtin_popcountll(A[I]));
    return Total;
  }

  friend bool operator==(const ConjunctSet &A, const ConjunctSet &B) {
    if (A.NumWords != B.NumWords)
      return false;
    const uint64_t *WA = A.data();
    const uint64_t *WB = B.data();
    for (uint32_t I = 0; I != A.NumWords; ++I)
      if (WA[I] != WB[I])
        return false;
    return true;
  }

  friend bool operator!=(const ConjunctSet &A, const ConjunctSet &B) {
    return !(A == B);
  }

  /// Word-lexicographic order (word 0 first, low atoms in low bits); used
  /// only for deterministic internal sorting, not for output ordering.
  static int compare(const ConjunctSet &A, const ConjunctSet &B) {
    const uint64_t *WA = A.data();
    const uint64_t *WB = B.data();
    for (uint32_t I = 0; I != A.NumWords; ++I) {
      if (WA[I] != WB[I])
        return WA[I] < WB[I] ? -1 : 1;
    }
    return 0;
  }

  /// Appends the indices of all set bits, ascending.
  void appendSetBits(std::vector<uint32_t> &Out) const {
    const uint64_t *A = data();
    for (uint32_t I = 0; I != NumWords; ++I) {
      uint64_t Word = A[I];
      while (Word) {
        uint32_t Bit = static_cast<uint32_t>(__builtin_ctzll(Word));
        Out.push_back(I * 64 + Bit);
        Word &= Word - 1;
      }
    }
  }

  const uint64_t *data() const { return Heap ? Heap : Inline; }
  uint64_t *data() { return Heap ? Heap : Inline; }

private:
  uint32_t NumWords = 0;
  uint64_t Inline[NumInlineWords] = {0, 0};
  uint64_t *Heap = nullptr;
};

} // namespace argus

#endif // ARGUS_ANALYSIS_CONJUNCTSET_H
