//===- analysis/GoalKind.h - Appendix A.1 fix categories ------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The eight categories of failed predicates and their weights, ported
/// verbatim from the Rust code in the paper's Appendix A.1. A category
/// models the *kind of patch* needed to make the predicate hold, and the
/// weight models that patch's expected complexity (the "inertia" of the
/// failure).
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_ANALYSIS_GOALKIND_H
#define ARGUS_ANALYSIS_GOALKIND_H

#include "extract/InferenceTree.h"
#include "tlang/Program.h"

namespace argus {

/// Mirrors `enum GoalKind` from Appendix A.1.
struct GoalKind {
  enum class Tag : uint8_t {
    Trait,          ///< A plain trait bound; locality decides the weight.
    TyChange,       ///< An equality constraint needing a type to change.
    FnToTrait,      ///< A fn item needs to implement a non-fn trait.
    TyAsCallable,   ///< A non-fn type is used where a callable is needed.
    DeleteFnParams, ///< A function takes `delta` too many parameters.
    AddFnParams,    ///< A function takes `delta` too few parameters.
    IncorrectParams,///< Right arity, wrong parameter types.
    Misc,           ///< Anything else (region errors, internal kinds).
  };

  Tag Kind = Tag::Misc;
  Locality SelfLoc = Locality::Local;  ///< Trait.
  Locality TraitLoc = Locality::Local; ///< Trait, FnToTrait.
  size_t Arity = 0;                    ///< FnToTrait, TyAsCallable,
                                       ///< IncorrectParams.
  size_t Delta = 0;                    ///< Add/DeleteFnParams.

  /// The Appendix A.1 weight table, verbatim:
  ///   Trait{L,L} -> 0
  ///   Trait{L,E} | Trait{E,L} | FnToTrait{trait: L} -> 1
  ///   Trait{E,E} -> 2
  ///   TyChange -> 4
  ///   IncorrectParams{arity} | AddFnParams{delta}
  ///     | DeleteFnParams{delta} -> 5 * delta
  ///   FnToTrait{trait: E, arity} | TyAsCallable{arity} -> 4 + 5 * arity
  ///   Misc -> 50
  size_t weight() const;

  /// Short name for debugging and benchmark tables.
  const char *tagName() const;
};

/// Classifies a failed predicate by structure, following Section 3.3: the
/// subject/trait localities feed the orphan-rule categories; fn-item
/// subjects feed the function-trait categories; projection mismatches are
/// type changes.
GoalKind classifyGoal(const Program &Prog, const Predicate &Pred);

} // namespace argus

#endif // ARGUS_ANALYSIS_GOALKIND_H
