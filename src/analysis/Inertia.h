//===- analysis/Inertia.h - Ranking failed predicates ---------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inertia heuristic (Section 3.3) and the baseline rankings it is
/// compared against in Figure 12a. All rankings order the failed leaves
/// of an idealized inference tree; the bottom-up view presents them in
/// that order.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_ANALYSIS_INERTIA_H
#define ARGUS_ANALYSIS_INERTIA_H

#include "analysis/DNF.h"
#include "analysis/GoalKind.h"

#include <functional>
#include <vector>

namespace argus {

/// Everything inertia computes for one tree, kept for display and tests.
struct InertiaResult {
  /// Failed leaves, best (lowest inertia) first; ties keep tree order.
  std::vector<IGoalId> Order;

  /// The minimum correction subsets (DNF conjuncts).
  std::vector<std::vector<IGoalId>> MCS;

  /// Score of each MCS conjunct (sum of member predicate weights),
  /// parallel to MCS.
  std::vector<size_t> ConjunctScores;

  /// Per-leaf: the categorized kind, its weight, and the best (lowest)
  /// score among conjuncts containing it, parallel to Order.
  std::vector<GoalKind> Kinds;
  std::vector<size_t> Weights;
  std::vector<size_t> BestScores;

  /// Work counters of the DNF normalization behind MCS.
  DNFStats DNF;
};

/// Weight override hook for ablations; the default is
/// GoalKind::weight().
using WeightFn = std::function<size_t(const GoalKind &)>;

/// Ranks the failed leaves of \p Tree by inertia: enumerate MCS via DNF,
/// score each conjunct by summing its members' category weights, and
/// order each leaf by the best-scoring conjunct containing it. Leaves in
/// no minimal conjunct sort last (by their own weight).
InertiaResult rankByInertia(const Program &Prog, const InferenceTree &Tree);
InertiaResult rankByInertia(const Program &Prog, const InferenceTree &Tree,
                            const AnalysisOptions &Opts);
InertiaResult rankByInertiaWith(const Program &Prog,
                                const InferenceTree &Tree,
                                const WeightFn &Weight);
InertiaResult rankByInertiaWith(const Program &Prog,
                                const InferenceTree &Tree,
                                const WeightFn &Weight,
                                const AnalysisOptions &Opts);

/// Baseline: order by depth in the inference tree, deepest first (the
/// most specific failure is assumed most actionable).
std::vector<IGoalId> rankByDepth(const InferenceTree &Tree);

/// Baseline: order by the number of uninstantiated inference variables in
/// the predicate, fewest first (a fully concrete predicate is assumed
/// most actionable).
std::vector<IGoalId> rankByInferVars(const InferenceTree &Tree);

/// The index of \p Target in \p Order; Order.size() if absent. The
/// Figure 12a metric for ranking-based approaches (optimal value 0).
size_t rankOf(const std::vector<IGoalId> &Order, IGoalId Target);

} // namespace argus

#endif // ARGUS_ANALYSIS_INERTIA_H
