//===- analysis/DNF.cpp ---------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DNF.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace argus;

DNFFormula DNFFormula::atom(IGoalId Id) {
  DNFFormula F;
  F.Conjuncts.push_back({Id});
  return F;
}

/// True if \p Sub is a subset of \p Super (both sorted).
static bool isSubset(const std::vector<IGoalId> &Sub,
                     const std::vector<IGoalId> &Super) {
  return std::includes(Super.begin(), Super.end(), Sub.begin(), Sub.end());
}

void argus::absorb(std::vector<std::vector<IGoalId>> &Conjuncts) {
  // Sort by size so potential absorbers precede the conjuncts they
  // absorb; then keep a conjunct only if no kept conjunct is its subset.
  std::sort(Conjuncts.begin(), Conjuncts.end(),
            [](const std::vector<IGoalId> &A, const std::vector<IGoalId> &B) {
              if (A.size() != B.size())
                return A.size() < B.size();
              return A < B;
            });
  Conjuncts.erase(std::unique(Conjuncts.begin(), Conjuncts.end()),
                  Conjuncts.end());

  std::vector<std::vector<IGoalId>> Kept;
  for (std::vector<IGoalId> &Conjunct : Conjuncts) {
    bool Absorbed = false;
    for (const std::vector<IGoalId> &Smaller : Kept)
      if (isSubset(Smaller, Conjunct)) {
        Absorbed = true;
        break;
      }
    if (!Absorbed)
      Kept.push_back(std::move(Conjunct));
  }
  Conjuncts = std::move(Kept);
}

DNFFormula argus::disjoinDNF(DNFFormula A, DNFFormula B) {
  if (A.IsTrue || B.IsTrue)
    return DNFFormula::trueFormula();
  DNFFormula Out;
  Out.Conjuncts = std::move(A.Conjuncts);
  Out.Conjuncts.insert(Out.Conjuncts.end(),
                       std::make_move_iterator(B.Conjuncts.begin()),
                       std::make_move_iterator(B.Conjuncts.end()));
  absorb(Out.Conjuncts);
  return Out;
}

DNFFormula argus::conjoinDNF(const DNFFormula &A, const DNFFormula &B) {
  if (A.IsTrue)
    return B;
  if (B.IsTrue)
    return A;
  if (A.isFalse() || B.isFalse())
    return DNFFormula::falseFormula();
  DNFFormula Out;
  Out.Conjuncts.reserve(A.Conjuncts.size() * B.Conjuncts.size());
  for (const std::vector<IGoalId> &CA : A.Conjuncts)
    for (const std::vector<IGoalId> &CB : B.Conjuncts) {
      std::vector<IGoalId> Merged;
      Merged.reserve(CA.size() + CB.size());
      std::merge(CA.begin(), CA.end(), CB.begin(), CB.end(),
                 std::back_inserter(Merged));
      Merged.erase(std::unique(Merged.begin(), Merged.end()), Merged.end());
      Out.Conjuncts.push_back(std::move(Merged));
    }
  absorb(Out.Conjuncts);
  return Out;
}

namespace {

/// Atoms are *predicates*, not tree positions: the same failing predicate
/// reached through two branches is one atom, represented by its first
/// leaf occurrence.
using AtomMap = std::unordered_map<Predicate, IGoalId, PredicateHasher>;

} // namespace

static DNFFormula formulaFor(const InferenceTree &Tree, IGoalId Id,
                             AtomMap &Atoms) {
  const IdealGoal &Goal = Tree.goal(Id);
  if (!idealFailed(Goal.Result))
    return DNFFormula::trueFormula();

  // Leaf atom: nothing failed beneath this goal, so the fix is to make
  // this very predicate hold.
  if (!Tree.hasFailedDescendant(Id)) {
    auto [It, Inserted] = Atoms.emplace(Goal.Pred, Id);
    (void)Inserted;
    return DNFFormula::atom(It->second);
  }

  // Interior: the goal holds if some candidate's failing subgoals all get
  // fixed.
  DNFFormula Out = DNFFormula::falseFormula();
  for (ICandId CandId : Goal.Candidates) {
    const IdealCandidate &Cand = Tree.candidate(CandId);
    bool AnyFailingSubgoal = false;
    DNFFormula CandFormula = DNFFormula::trueFormula();
    for (IGoalId Sub : Cand.SubGoals) {
      if (!idealFailed(Tree.goal(Sub).Result))
        continue;
      AnyFailingSubgoal = true;
      CandFormula = conjoinDNF(CandFormula, formulaFor(Tree, Sub, Atoms));
    }
    // A failing candidate with no failing subgoals (e.g. a builtin
    // signature mismatch) offers no atom-level fix along this branch.
    if (!AnyFailingSubgoal)
      continue;
    Out = disjoinDNF(std::move(Out), std::move(CandFormula));
  }
  return Out;
}

DNFFormula argus::computeMCS(const InferenceTree &Tree) {
  if (!Tree.rootId().isValid())
    return DNFFormula::trueFormula();
  AtomMap Atoms;
  return formulaFor(Tree, Tree.rootId(), Atoms);
}

size_t argus::formulaTreeSize(const InferenceTree &Tree) {
  return Tree.size();
}
