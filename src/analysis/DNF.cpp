//===- analysis/DNF.cpp ---------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DNF.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace argus;

DNFFormula DNFFormula::atom(IGoalId Id) {
  DNFFormula F;
  F.Conjuncts.push_back({Id});
  return F;
}

/// True if \p Sub is a subset of \p Super (both sorted).
static bool isSubset(const std::vector<IGoalId> &Sub,
                     const std::vector<IGoalId> &Super) {
  return std::includes(Super.begin(), Super.end(), Sub.begin(), Sub.end());
}

/// The canonical output order of both kernels: by size, then
/// lexicographically by goal ids.
static bool sizeLexLess(const std::vector<IGoalId> &A,
                        const std::vector<IGoalId> &B) {
  if (A.size() != B.size())
    return A.size() < B.size();
  return A < B;
}

void argus::absorb(std::vector<std::vector<IGoalId>> &Conjuncts) {
  // Sort by size so potential absorbers precede the conjuncts they
  // absorb; then keep a conjunct only if no kept conjunct is its subset.
  std::sort(Conjuncts.begin(), Conjuncts.end(), sizeLexLess);
  Conjuncts.erase(std::unique(Conjuncts.begin(), Conjuncts.end()),
                  Conjuncts.end());

  std::vector<std::vector<IGoalId>> Kept;
  for (std::vector<IGoalId> &Conjunct : Conjuncts) {
    bool Absorbed = false;
    for (const std::vector<IGoalId> &Smaller : Kept)
      if (isSubset(Smaller, Conjunct)) {
        Absorbed = true;
        break;
      }
    if (!Absorbed)
      Kept.push_back(std::move(Conjunct));
  }
  Conjuncts = std::move(Kept);
}

DNFFormula argus::disjoinDNF(DNFFormula A, DNFFormula B) {
  if (A.IsTrue || B.IsTrue)
    return DNFFormula::trueFormula();
  // One side empty: the other is already an absorbed antichain.
  if (A.Conjuncts.empty())
    return B;
  if (B.Conjuncts.empty())
    return A;

  // One side is a single conjunct: a linear subsumption sweep replaces
  // the full (quadratic) re-absorption. This is the common shape inside
  // computeMCS, where candidate formulas join an accumulator one at a
  // time.
  if (A.Conjuncts.size() == 1 || B.Conjuncts.size() == 1) {
    DNFFormula Out =
        A.Conjuncts.size() == 1 ? std::move(B) : std::move(A);
    std::vector<IGoalId> C = A.Conjuncts.size() == 1
                                 ? std::move(A.Conjuncts.front())
                                 : std::move(B.Conjuncts.front());
    // Absorbed by an existing (smaller or equal) conjunct? Equal-size
    // subset means equality, so duplicates land here too.
    for (const std::vector<IGoalId> &Kept : Out.Conjuncts) {
      if (Kept.size() > C.size())
        break;
      if (isSubset(Kept, C))
        return Out;
    }
    // C absorbs every strictly larger superset.
    Out.Conjuncts.erase(
        std::remove_if(Out.Conjuncts.begin(), Out.Conjuncts.end(),
                       [&C](const std::vector<IGoalId> &Kept) {
                         return Kept.size() > C.size() && isSubset(C, Kept);
                       }),
        Out.Conjuncts.end());
    Out.Conjuncts.insert(std::lower_bound(Out.Conjuncts.begin(),
                                          Out.Conjuncts.end(), C,
                                          sizeLexLess),
                         std::move(C));
    return Out;
  }

  DNFFormula Out;
  Out.Conjuncts = std::move(A.Conjuncts);
  Out.Conjuncts.insert(Out.Conjuncts.end(),
                       std::make_move_iterator(B.Conjuncts.begin()),
                       std::make_move_iterator(B.Conjuncts.end()));
  absorb(Out.Conjuncts);
  return Out;
}

DNFFormula argus::conjoinDNF(const DNFFormula &A, const DNFFormula &B) {
  if (A.IsTrue)
    return B;
  if (B.IsTrue)
    return A;
  if (A.isFalse() || B.isFalse())
    return DNFFormula::falseFormula();
  DNFFormula Out;
  Out.Conjuncts.reserve(A.Conjuncts.size() * B.Conjuncts.size());
  for (const std::vector<IGoalId> &CA : A.Conjuncts)
    for (const std::vector<IGoalId> &CB : B.Conjuncts) {
      std::vector<IGoalId> Merged;
      Merged.reserve(CA.size() + CB.size());
      std::merge(CA.begin(), CA.end(), CB.begin(), CB.end(),
                 std::back_inserter(Merged));
      Merged.erase(std::unique(Merged.begin(), Merged.end()), Merged.end());
      Out.Conjuncts.push_back(std::move(Merged));
    }
  absorb(Out.Conjuncts);
  return Out;
}

//===----------------------------------------------------------------------===//
// Shared tree-walk helpers
//===----------------------------------------------------------------------===//

namespace {

/// Session-pooled staging for the analysis stage (SolveScratch::SlotDNF):
/// the per-goal failed-descendant marks and the set-bit staging vector
/// are sized by the tree, and in hot loops over many small trees the
/// allocations dominate the normalization itself. Contents are rebuilt
/// per call, so the slot tag carries no dependency identities.
struct DNFScratch {
  std::vector<uint8_t> DescState;
  std::vector<uint32_t> Bits;
  void clear() {
    DescState.clear();
    Bits.clear();
  }
};

/// Memoized hasFailedDescendant: the naive query re-walks the subtree at
/// every recursion level, turning normalization of deep chains quadratic.
/// One pass caches the bit per goal. \p Ext, when given, donates pooled
/// backing storage (the map still re-initializes it).
class FailedDescendantMap {
public:
  explicit FailedDescendantMap(const InferenceTree &Tree,
                               std::vector<uint8_t> *Ext = nullptr)
      : Tree(Tree), State(Ext ? *Ext : Own) {
    State.assign(Tree.numGoals(), Unknown);
  }

  bool query(IGoalId Id) {
    uint8_t &S = State[Id.value()];
    if (S == Unknown) {
      bool Any = false;
      for (ICandId CandId : Tree.goal(Id).Candidates) {
        for (IGoalId Sub : Tree.candidate(CandId).SubGoals)
          if (idealFailed(Tree.goal(Sub).Result) || query(Sub)) {
            Any = true;
            break;
          }
        if (Any)
          break;
      }
      S = Any ? Yes : No;
    }
    return S == Yes;
  }

private:
  enum : uint8_t { Unknown, No, Yes };
  const InferenceTree &Tree;
  std::vector<uint8_t> Own;
  std::vector<uint8_t> &State;
};

/// Saturating arithmetic for the conjunct estimator: formulas can blow up
/// exponentially and the estimate only needs to clear a small threshold.
constexpr size_t EstCap = SIZE_MAX / 2;

size_t satAdd(size_t A, size_t B) {
  return A > EstCap - B ? EstCap : A + B;
}

size_t satMul(size_t A, size_t B) {
  if (A == 0 || B == 0)
    return 0;
  return A > EstCap / B ? EstCap : A * B;
}

/// The Auto-dispatch pre-pass, mirroring the kernels' recursion exactly:
/// the same goals and candidates are visited (Nodes), and Conjuncts is
/// the size the formula would reach with no absorption (leaf = 1,
/// candidate = product over its failing subgoals, goal = sum over
/// contributing candidates).
DNFCostEstimate estimateFor(const InferenceTree &Tree,
                            FailedDescendantMap &FailedDesc, IGoalId Id,
                            size_t &Nodes) {
  const IdealGoal &Goal = Tree.goal(Id);
  ++Nodes;
  DNFCostEstimate Out;
  if (!FailedDesc.query(Id)) {
    Out.Conjuncts = 1;
    return Out;
  }
  for (ICandId CandId : Goal.Candidates) {
    ++Nodes;
    const IdealCandidate &Cand = Tree.candidate(CandId);
    bool AnyFailingSubgoal = false;
    size_t CandConjuncts = 1;
    for (IGoalId Sub : Cand.SubGoals) {
      if (!idealFailed(Tree.goal(Sub).Result))
        continue;
      AnyFailingSubgoal = true;
      DNFCostEstimate SubEst = estimateFor(Tree, FailedDesc, Sub, Nodes);
      CandConjuncts = satMul(CandConjuncts, SubEst.Conjuncts);
    }
    if (AnyFailingSubgoal)
      Out.Conjuncts = satAdd(Out.Conjuncts, CandConjuncts);
  }
  return Out;
}

DNFCostEstimate estimateWith(const InferenceTree &Tree,
                             FailedDescendantMap &FailedDesc) {
  // The estimate depends only on tree structure and results, so a
  // frozen tree pays the O(nodes) pre-pass once: later dispatches
  // (estimateDNFCost callers, computeMCS Auto runs, bench loops) read
  // the memo the tree carries. Mutating accessors invalidate it.
  if (Tree.costCacheValid()) {
    DNFCostEstimate Est;
    Est.Nodes = Tree.cachedCostNodes();
    Est.Conjuncts = Tree.cachedCostConjuncts();
    return Est;
  }
  DNFCostEstimate Est;
  if (Tree.rootId().isValid() &&
      idealFailed(Tree.goal(Tree.rootId()).Result)) {
    size_t Nodes = 0;
    Est = estimateFor(Tree, FailedDesc, Tree.rootId(), Nodes);
    Est.Nodes = Nodes;
  }
  Tree.cacheCost(Est.Nodes, Est.Conjuncts);
  return Est;
}

/// Truncates a (size-sorted) conjunct list to the configured cap, keeping
/// the smallest conjuncts, and records the event.
template <typename ConjunctT>
void truncateToCap(std::vector<ConjunctT> &Conjuncts, size_t Cap,
                   DNFStats *Stats) {
  if (Cap == 0 || Conjuncts.size() <= Cap)
    return;
  Conjuncts.resize(Cap);
  if (Stats)
    ++Stats->Truncations;
}

} // namespace

//===----------------------------------------------------------------------===//
// Reference (vector) kernel
//===----------------------------------------------------------------------===//

namespace {

/// Atoms are *predicates*, not tree positions: the same failing predicate
/// reached through two branches is one atom, represented by its first
/// leaf occurrence.
using AtomMap = std::unordered_map<Predicate, IGoalId, PredicateHasher>;

struct ReferenceKernel {
  const InferenceTree &Tree;
  const AnalysisOptions &Opts;
  DNFStats *Stats;
  FailedDescendantMap &FailedDesc;
  AtomMap Atoms;
  bool Stopped = false;

  ReferenceKernel(const InferenceTree &Tree, const AnalysisOptions &Opts,
                  DNFStats *Stats, FailedDescendantMap &FailedDesc)
      : Tree(Tree), Opts(Opts), Stats(Stats), FailedDesc(FailedDesc) {}

  /// Charges \p Amount against the budget; latches once stopped.
  bool tickStop(uint64_t Amount = 1) {
    if (Stopped)
      return true;
    if (Opts.Budget && Opts.Budget->tick(Amount)) {
      Stopped = true;
      if (Stats)
        Stats->Interrupted = true;
    }
    return Stopped;
  }

  DNFFormula formulaFor(IGoalId Id) {
    const IdealGoal &Goal = Tree.goal(Id);
    if (!idealFailed(Goal.Result))
      return DNFFormula::trueFormula();

    // Leaf atom: nothing failed beneath this goal, so the fix is to make
    // this very predicate hold.
    if (!FailedDesc.query(Id)) {
      auto [It, Inserted] = Atoms.emplace(Goal.Pred, Id);
      (void)Inserted;
      return DNFFormula::atom(It->second);
    }

    // Budget stop: give up on this subtree; FALSE is the disjoin
    // identity, so ancestors keep whatever they built before the stop.
    if (tickStop())
      return DNFFormula::falseFormula();

    // Interior: the goal holds if some candidate's failing subgoals all
    // get fixed.
    DNFFormula Out = DNFFormula::falseFormula();
    for (ICandId CandId : Goal.Candidates) {
      if (Stopped)
        break;
      const IdealCandidate &Cand = Tree.candidate(CandId);
      bool AnyFailingSubgoal = false;
      DNFFormula CandFormula = DNFFormula::trueFormula();
      for (IGoalId Sub : Cand.SubGoals) {
        if (!idealFailed(Tree.goal(Sub).Result))
          continue;
        AnyFailingSubgoal = true;
        CandFormula = conjoinDNF(CandFormula, formulaFor(Sub));
        truncateToCap(CandFormula.Conjuncts, Opts.MaxConjuncts, Stats);
        if (tickStop(CandFormula.Conjuncts.size()))
          break;
      }
      // A failing candidate with no failing subgoals (e.g. a builtin
      // signature mismatch) offers no atom-level fix along this branch.
      if (!AnyFailingSubgoal)
        continue;
      Out = disjoinDNF(std::move(Out), std::move(CandFormula));
      truncateToCap(Out.Conjuncts, Opts.MaxConjuncts, Stats);
    }
    return Out;
  }
};

} // namespace

DNFFormula argus::computeMCSReference(const InferenceTree &Tree,
                                      const AnalysisOptions &Opts,
                                      DNFStats *Stats) {
  if (!Tree.rootId().isValid())
    return DNFFormula::trueFormula();
  FailedDescendantMap FailedDesc(Tree);
  ReferenceKernel Kernel(Tree, Opts, Stats, FailedDesc);
  DNFFormula Out = Kernel.formulaFor(Tree.rootId());
  if (Stats)
    Stats->Atoms += Kernel.Atoms.size();
  return Out;
}

//===----------------------------------------------------------------------===//
// Bitset kernel
//===----------------------------------------------------------------------===//

void argus::absorbConjunctSets(std::vector<ConjunctSet> &Conjuncts,
                               DNFStats *Stats) {
  if (Conjuncts.size() <= 1)
    return;
  const uint64_t Words = Conjuncts.front().words();

  // Sort by (popcount, word-lex); precomputing the counts keeps the
  // comparator to integer compares plus one word sweep.
  struct Entry {
    size_t Count;
    ConjunctSet Set;
  };
  std::vector<Entry> Entries;
  Entries.reserve(Conjuncts.size());
  for (ConjunctSet &C : Conjuncts)
    Entries.push_back({C.count(), std::move(C)});
  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) {
              if (A.Count != B.Count)
                return A.Count < B.Count;
              return ConjunctSet::compare(A.Set, B.Set) < 0;
            });

  uint64_t Touched = Words * Entries.size(); // count() sweeps above.

  // Dedupe: equal sets are adjacent after the sort.
  size_t Unique = 1;
  for (size_t I = 1; I != Entries.size(); ++I) {
    Touched += Words;
    if (Entries[I].Set == Entries[Unique - 1].Set)
      continue;
    if (I != Unique)
      Entries[Unique] = std::move(Entries[I]);
    ++Unique;
  }
  Entries.resize(Unique);

  // Size-bucketed subsumption: kept conjuncts are sorted ascending by
  // popcount, and only a strictly smaller set can strictly absorb (equal
  // sizes were deduplicated), so each candidate only scans kept sets
  // below its own size bucket. Kept words live in one flat buffer so the
  // scan is linear memory; blocks of 64 keep the inner loop branchless
  // (vectorizable) while still exiting early once an absorber is found.
  std::vector<Entry> Kept;
  Kept.reserve(Entries.size());
  std::vector<uint64_t> KeptWords;
  KeptWords.reserve(Entries.size() * Words);
  size_t BucketStart = 0; // Kept entries before this index are strictly
                          // smaller than the current candidate.
  size_t BucketCount = size_t(-1);
  for (Entry &E : Entries) {
    if (E.Count != BucketCount) {
      BucketCount = E.Count;
      BucketStart = Kept.size();
    }
    bool Absorbed = false;
    size_t J = 0;
    if (Words == 1) {
      const uint64_t EW = E.Set.data()[0];
      while (J != BucketStart) {
        size_t BlockEnd = std::min(J + 64, BucketStart);
        uint64_t Any = 0;
        for (; J != BlockEnd; ++J)
          Any |= (KeptWords[J] & ~EW) == 0 ? uint64_t(1) : uint64_t(0);
        if (Any) {
          Absorbed = true;
          break;
        }
      }
    } else {
      const uint64_t *EW = E.Set.data();
      for (; J != BucketStart; ++J) {
        const uint64_t *KW = KeptWords.data() + J * Words;
        bool Subset = true;
        for (uint64_t W = 0; W != Words; ++W)
          if (KW[W] & ~EW[W]) {
            Subset = false;
            break;
          }
        if (Subset) {
          Absorbed = true;
          break;
        }
      }
    }
    Touched += Words * (Absorbed ? J + 1 : J);
    if (!Absorbed) {
      const uint64_t *W = E.Set.data();
      KeptWords.insert(KeptWords.end(), W, W + Words);
      Kept.push_back(std::move(E));
    }
  }

  Conjuncts.clear();
  for (Entry &K : Kept)
    Conjuncts.push_back(std::move(K.Set));
  if (Stats)
    Stats->WordsTouched += Touched;
}

namespace {

/// DNF formula whose conjuncts are bitsets over the dense atom numbering.
/// Invariant: Conjuncts is an antichain sorted by (popcount, word-lex).
struct BitsetDNF {
  bool IsTrue = false;
  std::vector<ConjunctSet> Conjuncts;

  bool isFalse() const { return !IsTrue && Conjuncts.empty(); }

  static BitsetDNF trueFormula() {
    BitsetDNF F;
    F.IsTrue = true;
    return F;
  }
  static BitsetDNF falseFormula() { return BitsetDNF(); }
};

struct BitsetKernel {
  const InferenceTree &Tree;
  const AnalysisOptions &Opts;
  DNFStats *Stats;
  FailedDescendantMap &FailedDesc;
  /// Pooled set-bit staging for toFormula (DNFScratch::Bits).
  std::vector<uint32_t> &BitsStage;
  bool Stopped = false;

  /// Dense atom numbering; AtomIds[i] is the first leaf occurrence of
  /// atom i's predicate (the id the reference kernel would use).
  std::unordered_map<Predicate, uint32_t, PredicateHasher> AtomIndex;
  std::vector<IGoalId> AtomIds;

  BitsetKernel(const InferenceTree &Tree, const AnalysisOptions &Opts,
               DNFStats *Stats, FailedDescendantMap &FailedDesc,
               std::vector<uint32_t> &BitsStage)
      : Tree(Tree), Opts(Opts), Stats(Stats), FailedDesc(FailedDesc),
        BitsStage(BitsStage) {}

  size_t numAtoms() const { return AtomIds.size(); }

  /// Charges \p Amount against the budget; latches once stopped.
  bool tickStop(uint64_t Amount = 1) {
    if (Stopped)
      return true;
    if (Opts.Budget && Opts.Budget->tick(Amount)) {
      Stopped = true;
      if (Stats)
        Stats->Interrupted = true;
    }
    return Stopped;
  }

  void touch(uint64_t Words) {
    if (Stats)
      Stats->WordsTouched += Words;
  }

  /// Pass 1: fix the atom universe. Mirrors the formula recursion exactly
  /// (every failing subgoal of a candidate is visited, whether or not the
  /// candidate contributes a disjunct), so atom identities match the
  /// reference kernel's.
  void collectAtoms(IGoalId Id) {
    const IdealGoal &Goal = Tree.goal(Id);
    if (!idealFailed(Goal.Result))
      return;
    if (!FailedDesc.query(Id)) {
      auto [It, Inserted] =
          AtomIndex.emplace(Goal.Pred, static_cast<uint32_t>(AtomIds.size()));
      (void)It;
      if (Inserted)
        AtomIds.push_back(Id);
      return;
    }
    for (ICandId CandId : Goal.Candidates)
      for (IGoalId Sub : Tree.candidate(CandId).SubGoals)
        if (idealFailed(Tree.goal(Sub).Result))
          collectAtoms(Sub);
  }

  BitsetDNF atomFormula(const Predicate &Pred) {
    BitsetDNF F;
    ConjunctSet C(numAtoms());
    C.set(AtomIndex.find(Pred)->second);
    F.Conjuncts.push_back(std::move(C));
    return F;
  }

  void capTruncate(std::vector<ConjunctSet> &Conjuncts) {
    truncateToCap(Conjuncts, Opts.MaxConjuncts, Stats);
  }

  BitsetDNF disjoin(BitsetDNF A, BitsetDNF B) {
    if (A.IsTrue || B.IsTrue)
      return BitsetDNF::trueFormula();
    if (A.Conjuncts.empty())
      return B;
    if (B.Conjuncts.empty())
      return A;

    if (A.Conjuncts.size() == 1 || B.Conjuncts.size() == 1) {
      // Linear subsumption insert, the bitset twin of disjoinDNF's fast
      // path.
      BitsetDNF Out =
          A.Conjuncts.size() == 1 ? std::move(B) : std::move(A);
      ConjunctSet C = A.Conjuncts.size() == 1
                          ? std::move(A.Conjuncts.front())
                          : std::move(B.Conjuncts.front());
      const size_t CCount = C.count();
      const uint64_t Words = C.words();
      for (const ConjunctSet &Kept : Out.Conjuncts) {
        touch(Words);
        if (Kept.count() > CCount)
          break;
        if (Kept.isSubsetOf(C))
          return Out;
      }
      Out.Conjuncts.erase(
          std::remove_if(Out.Conjuncts.begin(), Out.Conjuncts.end(),
                         [&](const ConjunctSet &Kept) {
                           touch(Words);
                           return Kept.count() > CCount &&
                                  C.isSubsetOf(Kept);
                         }),
          Out.Conjuncts.end());
      auto Pos = std::lower_bound(
          Out.Conjuncts.begin(), Out.Conjuncts.end(), C,
          [CCount](const ConjunctSet &Kept, const ConjunctSet &Value) {
            size_t KeptCount = Kept.count();
            if (KeptCount != CCount)
              return KeptCount < CCount;
            return ConjunctSet::compare(Kept, Value) < 0;
          });
      Out.Conjuncts.insert(Pos, std::move(C));
      capTruncate(Out.Conjuncts);
      return Out;
    }

    BitsetDNF Out;
    Out.Conjuncts = std::move(A.Conjuncts);
    Out.Conjuncts.insert(Out.Conjuncts.end(),
                         std::make_move_iterator(B.Conjuncts.begin()),
                         std::make_move_iterator(B.Conjuncts.end()));
    absorbConjunctSets(Out.Conjuncts, Stats);
    capTruncate(Out.Conjuncts);
    return Out;
  }

  BitsetDNF conjoin(const BitsetDNF &A, const BitsetDNF &B) {
    if (A.IsTrue)
      return B;
    if (B.IsTrue)
      return A;
    if (A.isFalse() || B.isFalse())
      return BitsetDNF::falseFormula();
    BitsetDNF Out;
    Out.Conjuncts.reserve(A.Conjuncts.size() * B.Conjuncts.size());
    // The cross product can explode quadratically before absorption gets
    // a chance to prune; compact mid-flight once it passes twice the cap.
    const size_t FlushAt =
        Opts.MaxConjuncts ? 2 * Opts.MaxConjuncts : size_t(-1);
    for (const ConjunctSet &CA : A.Conjuncts) {
      if (Stopped)
        break; // Partial product: absorbed and capped below.
      for (const ConjunctSet &CB : B.Conjuncts) {
        if (tickStop())
          break;
        ConjunctSet Merged = CA;
        Merged.unionWith(CB);
        touch(Merged.words());
        Out.Conjuncts.push_back(std::move(Merged));
        if (Out.Conjuncts.size() >= FlushAt) {
          absorbConjunctSets(Out.Conjuncts, Stats);
          capTruncate(Out.Conjuncts);
        }
      }
    }
    absorbConjunctSets(Out.Conjuncts, Stats);
    capTruncate(Out.Conjuncts);
    return Out;
  }

  /// Pass 2: the same recursion as the reference kernel, over bitsets.
  BitsetDNF formulaFor(IGoalId Id) {
    const IdealGoal &Goal = Tree.goal(Id);
    if (!idealFailed(Goal.Result))
      return BitsetDNF::trueFormula();
    if (!FailedDesc.query(Id))
      return atomFormula(Goal.Pred);
    // Budget stop: FALSE is the disjoin identity, so ancestors keep
    // whatever they accumulated before the stop.
    if (tickStop())
      return BitsetDNF::falseFormula();

    BitsetDNF Out = BitsetDNF::falseFormula();
    for (ICandId CandId : Goal.Candidates) {
      if (Stopped)
        break;
      const IdealCandidate &Cand = Tree.candidate(CandId);
      bool AnyFailingSubgoal = false;
      BitsetDNF CandFormula = BitsetDNF::trueFormula();
      for (IGoalId Sub : Cand.SubGoals) {
        if (!idealFailed(Tree.goal(Sub).Result))
          continue;
        AnyFailingSubgoal = true;
        CandFormula = conjoin(CandFormula, formulaFor(Sub));
      }
      if (!AnyFailingSubgoal)
        continue;
      Out = disjoin(std::move(Out), std::move(CandFormula));
    }
    return Out;
  }

  /// Converts a bitset formula back to the public id representation, in
  /// the canonical (size, lexicographic ids) order.
  DNFFormula toFormula(BitsetDNF F) {
    DNFFormula Out;
    Out.IsTrue = F.IsTrue;
    Out.Conjuncts.reserve(F.Conjuncts.size());
    std::vector<uint32_t> &Bits = BitsStage;
    for (const ConjunctSet &C : F.Conjuncts) {
      Bits.clear();
      C.appendSetBits(Bits);
      std::vector<IGoalId> Ids;
      Ids.reserve(Bits.size());
      for (uint32_t Bit : Bits)
        Ids.push_back(AtomIds[Bit]);
      // Atom numbering is discovery order, which need not be id order.
      std::sort(Ids.begin(), Ids.end());
      Out.Conjuncts.push_back(std::move(Ids));
    }
    std::sort(Out.Conjuncts.begin(), Out.Conjuncts.end(), sizeLexLess);
    return Out;
  }
};

} // namespace

DNFCostEstimate argus::estimateDNFCost(const InferenceTree &Tree) {
  if (!Tree.rootId().isValid())
    return DNFCostEstimate();
  FailedDescendantMap FailedDesc(Tree);
  return estimateWith(Tree, FailedDesc);
}

DNFFormula argus::computeMCS(const InferenceTree &Tree,
                             const AnalysisOptions &Opts, DNFStats *Stats) {
  if (!Tree.rootId().isValid())
    return DNFFormula::trueFormula();

  // Staging buffers: drawn from the Session scratch when provided, so a
  // hot loop over many small trees stops allocating; otherwise local.
  DNFScratch Local;
  ScratchBorrow<DNFScratch> Borrow;
  DNFScratch *Scr = &Local;
  if (Opts.Scratch) {
    Borrow.acquire(*Opts.Scratch, SolveScratch::SlotDNF, nullptr, nullptr);
    Scr = Borrow.get();
  }
  FailedDescendantMap FailedDesc(Tree, &Scr->DescState);

  // Kernel dispatch: forced by Opts.Kernel, or decided by the cost
  // model. The failed-descendant marks the estimator fills are exactly
  // the ones the chosen kernel needs, so Auto's pre-pass is work the
  // kernel would have done anyway.
  bool Forced = Opts.Kernel != DNFKernel::Auto;
  bool UseBitset = Opts.Kernel == DNFKernel::Bitset;
  if (!Forced) {
    DNFCostEstimate Est = estimateWith(Tree, FailedDesc);
    UseBitset = Est.Nodes > Opts.AutoNodeThreshold ||
                Est.Conjuncts > Opts.AutoConjunctThreshold;
  }
  if (Stats) {
    ++(UseBitset ? Stats->DispatchBitset : Stats->DispatchReference);
    if (Forced)
      ++Stats->DispatchForced;
  }

  if (!UseBitset) {
    ReferenceKernel Kernel(Tree, Opts, Stats, FailedDesc);
    DNFFormula Out = Kernel.formulaFor(Tree.rootId());
    if (Stats)
      Stats->Atoms += Kernel.Atoms.size();
    return Out;
  }

  BitsetKernel Kernel(Tree, Opts, Stats, FailedDesc, Scr->Bits);
  Kernel.collectAtoms(Tree.rootId());
  if (Stats)
    Stats->Atoms += Kernel.numAtoms();
  return Kernel.toFormula(Kernel.formulaFor(Tree.rootId()));
}

size_t argus::formulaTreeSize(const InferenceTree &Tree) {
  return Tree.size();
}
