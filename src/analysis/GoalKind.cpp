//===- analysis/GoalKind.cpp ----------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/GoalKind.h"

using namespace argus;

size_t GoalKind::weight() const {
  switch (Kind) {
  case Tag::Trait:
    if (SelfLoc == Locality::Local && TraitLoc == Locality::Local)
      return 0;
    if (SelfLoc == Locality::External && TraitLoc == Locality::External)
      return 2;
    return 1; // Mixed locality.
  case Tag::FnToTrait:
    if (TraitLoc == Locality::Local)
      return 1;
    return 4 + 5 * Arity;
  case Tag::TyAsCallable:
    return 4 + 5 * Arity;
  case Tag::TyChange:
    return 4;
  case Tag::IncorrectParams:
    return 5 * Arity;
  case Tag::AddFnParams:
  case Tag::DeleteFnParams:
    return 5 * Delta;
  case Tag::Misc:
    return 50;
  }
  return 50;
}

const char *GoalKind::tagName() const {
  switch (Kind) {
  case Tag::Trait:
    return "Trait";
  case Tag::TyChange:
    return "TyChange";
  case Tag::FnToTrait:
    return "FnToTrait";
  case Tag::TyAsCallable:
    return "TyAsCallable";
  case Tag::DeleteFnParams:
    return "DeleteFnParams";
  case Tag::AddFnParams:
    return "AddFnParams";
  case Tag::IncorrectParams:
    return "IncorrectParams";
  case Tag::Misc:
    return "Misc";
  }
  return "?";
}

/// Parameter count of a FnDef/FnPtr type (Args minus the return type).
static size_t fnArity(const TypeArena &Arena, TypeId Ty) {
  const Type &Node = Arena.get(Ty);
  if (Node.Kind != TypeKind::FnDef && Node.Kind != TypeKind::FnPtr)
    return 0;
  return Node.Args.size() - 1;
}

GoalKind argus::classifyGoal(const Program &Prog, const Predicate &Pred) {
  const TypeArena &Arena = Prog.session().types();
  GoalKind Result;

  switch (Pred.Kind) {
  case PredicateKind::Projection:
  case PredicateKind::NormalizesTo:
    // Fixing `pi == tau` means changing a type or an associated-type
    // binding.
    Result.Kind = GoalKind::Tag::TyChange;
    return Result;

  case PredicateKind::Outlives:
  case PredicateKind::RegionOutlives:
  case PredicateKind::WellFormed:
  case PredicateKind::Sized:
    Result.Kind = GoalKind::Tag::Misc;
    return Result;

  case PredicateKind::Trait:
    break;
  }

  const Type &Subject = Arena.get(Pred.Subject);
  const TraitDecl *Trait = Prog.findTrait(Pred.Trait);
  Locality TraitLoc = Prog.localityOf(Pred.Trait);
  bool SubjectIsFn =
      Subject.Kind == TypeKind::FnDef || Subject.Kind == TypeKind::FnPtr;
  bool TraitIsFnLike = Trait && Trait->IsFnTrait;

  if (SubjectIsFn && TraitIsFnLike) {
    // A function failed a function-trait bound: the signatures disagree.
    // Compare arities against the expected signature when it is visible
    // in the trait arguments.
    size_t Actual = fnArity(Arena, Pred.Subject);
    size_t Expected = Actual;
    if (Pred.Args.size() == 1) {
      const Type &Sig = Arena.get(Pred.Args[0]);
      if (Sig.Kind == TypeKind::FnPtr)
        Expected = Sig.Args.size() - 1;
    }
    if (Actual > Expected) {
      Result.Kind = GoalKind::Tag::DeleteFnParams;
      Result.Delta = Actual - Expected;
    } else if (Actual < Expected) {
      Result.Kind = GoalKind::Tag::AddFnParams;
      Result.Delta = Expected - Actual;
    } else {
      Result.Kind = GoalKind::Tag::IncorrectParams;
      Result.Arity = Actual;
    }
    return Result;
  }

  if (SubjectIsFn) {
    // A function needs to implement an ordinary trait: only possible via
    // blanket impls, or by newtype-wrapping the function.
    Result.Kind = GoalKind::Tag::FnToTrait;
    Result.TraitLoc = TraitLoc;
    Result.Arity = fnArity(Arena, Pred.Subject);
    return Result;
  }

  if (TraitIsFnLike) {
    // A non-function value is being used as a callable.
    Result.Kind = GoalKind::Tag::TyAsCallable;
    if (Pred.Args.size() == 1) {
      const Type &Sig = Arena.get(Pred.Args[0]);
      if (Sig.Kind == TypeKind::FnPtr)
        Result.Arity = Sig.Args.size() - 1;
    }
    return Result;
  }

  Result.Kind = GoalKind::Tag::Trait;
  Result.SelfLoc = Prog.typeLocality(Pred.Subject);
  Result.TraitLoc = TraitLoc;
  return Result;
}
