//===- analysis/CompilerDistance.cpp --------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/CompilerDistance.h"

#include <algorithm>

using namespace argus;

IGoalId argus::compilerReportedNode(const InferenceTree &Tree) {
  IGoalId Current = Tree.rootId();
  if (!Current.isValid())
    return Current;
  for (;;) {
    const IdealGoal &Goal = Tree.goal(Current);

    // Gather failing subgoals across candidates.
    std::vector<IGoalId> FailingSubgoals;
    size_t CandidatesWithFailures = 0;
    for (ICandId CandId : Goal.Candidates) {
      const IdealCandidate &Cand = Tree.candidate(CandId);
      bool Any = false;
      for (IGoalId Sub : Cand.SubGoals)
        if (idealFailed(Tree.goal(Sub).Result)) {
          FailingSubgoals.push_back(Sub);
          Any = true;
        }
      CandidatesWithFailures += Any;
    }

    // A branch point (more than one failing alternative) stops the
    // textual diagnostic; so does a leaf.
    if (CandidatesWithFailures != 1 || FailingSubgoals.size() != 1)
      return Current;
    Current = FailingSubgoals[0];
  }
}

size_t argus::nodeDistance(const InferenceTree &Tree, IGoalId A, IGoalId B) {
  if (A == B)
    return 0;
  std::vector<IGoalId> PathA = Tree.pathToRoot(A);
  std::vector<IGoalId> PathB = Tree.pathToRoot(B);
  // Walk back from the root until the paths diverge.
  size_t Common = 0;
  while (Common < PathA.size() && Common < PathB.size() &&
         PathA[PathA.size() - 1 - Common] == PathB[PathB.size() - 1 - Common])
    ++Common;
  return (PathA.size() - Common) + (PathB.size() - Common);
}

IGoalId argus::findGoalByPredicate(const InferenceTree &Tree,
                                   const Predicate &Pred) {
  IGoalId AnyMatch;
  for (size_t I = 0; I != Tree.numGoals(); ++I) {
    IGoalId Id(static_cast<uint32_t>(I));
    const IdealGoal &Goal = Tree.goal(Id);
    if (!(Goal.Pred == Pred))
      continue;
    if (idealFailed(Goal.Result))
      return Id;
    if (!AnyMatch.isValid())
      AnyMatch = Id;
  }
  return AnyMatch;
}
