//===- analysis/CompilerDistance.h - The rustc report model ---*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models which node of the inference tree the Rust compiler's textual
/// diagnostic reports, and measures how far that is from the true root
/// cause — the Figure 12a comparison against rustc. Per Section 2.3,
/// rustc's diagnostics follow a single failing chain and stop at branch
/// points, so the reported node can sit strictly above the root cause.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_ANALYSIS_COMPILERDISTANCE_H
#define ARGUS_ANALYSIS_COMPILERDISTANCE_H

#include "extract/InferenceTree.h"
#include "tlang/Program.h"

namespace argus {

/// The goal node a rustc-style diagnostic blames: starting at the root,
/// descend while exactly one candidate carries failing subgoals and that
/// candidate has exactly one failing subgoal; stop at the first branch
/// point (several failing alternatives) or at a leaf.
IGoalId compilerReportedNode(const InferenceTree &Tree);

/// Number of goal-to-goal edges between \p A and \p B (through their
/// lowest common ancestor). The "inference steps a developer would have
/// to manually trace" of Section 5.2.1; optimal value 0.
size_t nodeDistance(const InferenceTree &Tree, IGoalId A, IGoalId B);

/// Finds the goal whose (resolved) predicate equals \p Pred, preferring
/// failed nodes; invalid if absent. Used to locate the annotated
/// ground-truth root cause inside an extracted tree.
IGoalId findGoalByPredicate(const InferenceTree &Tree, const Predicate &Pred);

} // namespace argus

#endif // ARGUS_ANALYSIS_COMPILERDISTANCE_H
