//===- analysis/Suggestions.cpp -------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Suggestions.h"

#include "solver/Solver.h"
#include "tlang/Printer.h"

#include <unordered_set>

using namespace argus;

std::vector<FixSuggestion> argus::suggestFixes(const Program &Prog,
                                               const Predicate &FailedLeaf) {
  std::vector<FixSuggestion> Out;
  Session &S = Prog.session();
  PrintOptions Opts;
  Opts.DisambiguateShortNames = true;
  TypePrinter Printer(Prog, Opts);

  if (FailedLeaf.Kind == PredicateKind::Projection) {
    FixSuggestion Suggestion;
    Suggestion.SuggestionKind = FixSuggestion::Kind::ChangeType;
    Suggestion.Rendered =
        "make `" + Printer.print(FailedLeaf.Subject) + "` equal `" +
        Printer.print(FailedLeaf.Rhs) +
        "`: change the projected type or the associated-type binding of "
        "the impl that provides it";
    Out.push_back(std::move(Suggestion));
    return Out;
  }

  if (FailedLeaf.Kind != PredicateKind::Trait)
    return Out;

  // Wrapper hypotheses: for every impl of the trait whose self type is a
  // constructor application, plug the failing subject into each generic
  // slot and let the solver verify the result.
  std::unordered_set<uint32_t> Seen;
  for (ImplId ImplIdx : Prog.implsOf(FailedLeaf.Trait)) {
    const ImplDecl &Decl = Prog.impl(ImplIdx);
    if (S.types().get(Decl.SelfTy).Kind != TypeKind::Adt)
      continue; // Blanket and function impls do not wrap.
    for (Symbol Generic : Decl.Generics) {
      ParamSubst Subst;
      Subst.emplace(Generic, FailedLeaf.Subject);
      TypeId Hypothesis = S.types().substitute(Decl.SelfTy, Subst);
      if (Hypothesis == Decl.SelfTy)
        continue; // The generic does not occur in the self type.
      if (S.types().hasParams(Hypothesis))
        continue; // Other unknown slots remain; cannot verify.
      if (!Seen.insert(Hypothesis.value()).second)
        continue;

      // Verify the hypothesis with a fresh solve. The hypothesis is an
      // ad-hoc predicate outside the declared-goal reachability closure
      // the prebuilt index was subsumption-pruned against, so the solve
      // must see the unpruned lazy slices (see solver/Index.h).
      Program::SolverIndexSuspension Hidden(Prog);
      Predicate Goal = Predicate::traitBound(Hypothesis, FailedLeaf.Trait,
                                             FailedLeaf.Args);
      Solver Solve(Prog);
      SolveOutcome Scratch;
      GoalNodeId Root = Solve.solveOne(Scratch, Goal, {});
      if (Scratch.Forest.goal(Root).Result != EvalResult::Yes)
        continue;

      FixSuggestion Suggestion;
      Suggestion.SuggestionKind = FixSuggestion::Kind::WrapInType;
      Suggestion.SuggestedType = Hypothesis;
      Suggestion.ViaImpl = ImplIdx;
      Suggestion.Rendered = "replace `" +
                            Printer.print(FailedLeaf.Subject) +
                            "` with `" + Printer.print(Hypothesis) +
                            "` (verified: `" + Printer.print(Hypothesis) +
                            ": " +
                            Printer.printTraitRef(FailedLeaf.Trait,
                                                  FailedLeaf.Args) +
                            "` holds via " +
                            Printer.printImplHeader(Decl) + ")";
      Out.push_back(std::move(Suggestion));
    }
  }

  // Writing a new impl is possible whenever the orphan rule allows it.
  bool SubjectLocal =
      Prog.typeLocality(FailedLeaf.Subject) == Locality::Local;
  bool TraitLocal = Prog.localityOf(FailedLeaf.Trait) == Locality::Local;
  if (SubjectLocal || TraitLocal) {
    FixSuggestion Suggestion;
    Suggestion.SuggestionKind = FixSuggestion::Kind::ImplementTrait;
    Suggestion.Rendered =
        "write `impl " +
        Printer.printTraitRef(FailedLeaf.Trait, FailedLeaf.Args) +
        " for " + Printer.print(FailedLeaf.Subject) +
        "` (the orphan rule allows it: " +
        (SubjectLocal ? "the type is local" : "the trait is local") + ")";
    Out.push_back(std::move(Suggestion));
  }

  return Out;
}
