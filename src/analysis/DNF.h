//===- analysis/DNF.h - Tree -> DNF -> correction subsets -----*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inertia heuristic's first stage (Section 3.3): treat the AND/OR
/// inference tree as a propositional formula over its failed leaf
/// predicates and normalize it into disjunctive normal form. Each DNF
/// conjunct is a *correction set*: a set of failing predicates that, made
/// true, would let the root proof succeed. Absorption pruning keeps only
/// the minimal ones (the minimum correction subsets, MCS).
///
/// Normalization is worst-case exponential; Figure 12b measures that in
/// practice it stays in single-digit milliseconds at paper-scale trees.
///
/// Two kernels implement normalization:
///
///  - the *bitset kernel*: atoms are densely numbered by a pre-pass,
///    conjuncts are ConjunctSet bitsets, and conjunction / absorption run
///    on word-wise OR and subset masks with size-bucketed subsumption.
///    This is the production hot path for large or wide trees.
///  - the *reference kernel*: conjuncts are sorted `std::vector<IGoalId>`
///    with pairwise `std::includes` absorption — the original, obviously
///    correct implementation, kept as the differential-testing oracle,
///    the baseline the hot-path benchmark measures against, and the
///    cheaper choice for small trees.
///
/// By default computeMCS picks between them per tree (DNFKernel::Auto): a
/// linear pre-pass estimates the failed-region size and the un-absorbed
/// conjunct count, and only trees past the configured thresholds pay for
/// the bitset kernel's atom numbering and word buffers. The choice is
/// recorded in DNFStats' dispatch counters and never changes the output.
///
/// Both produce the same formula: the minimal antichain of correction
/// sets is unique, and both emit it sorted by (size, lexicographic goal
/// ids).
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_ANALYSIS_DNF_H
#define ARGUS_ANALYSIS_DNF_H

#include "analysis/ConjunctSet.h"
#include "extract/InferenceTree.h"
#include "support/Arena.h"
#include "support/Governance.h"

#include <vector>

namespace argus {

/// A DNF formula over failed-leaf goal ids. Each conjunct is a sorted,
/// deduplicated vector of goal ids; the formula is the disjunction of its
/// conjuncts. An empty conjunct list with IsTrue unset means "cannot be
/// fixed by atom assignments" (does not occur for trees produced by the
/// extractor).
struct DNFFormula {
  bool IsTrue = false;
  std::vector<std::vector<IGoalId>> Conjuncts;

  static DNFFormula trueFormula() {
    DNFFormula F;
    F.IsTrue = true;
    return F;
  }
  static DNFFormula falseFormula() { return DNFFormula(); }
  static DNFFormula atom(IGoalId Id);

  bool isFalse() const { return !IsTrue && Conjuncts.empty(); }
};

/// Which normalization kernel computeMCS routes through.
enum class DNFKernel : uint8_t {
  /// Cost-model dispatch (the default): an O(n) pre-pass estimates the
  /// failed-region size and the un-absorbed conjunct count, and trees
  /// under both thresholds take the reference kernel — for the
  /// single-conjunct trees that dominate real corpora, the bitset
  /// kernel's atom numbering and word buffers cost more than the whole
  /// normalization. Larger or wider trees take the bitset kernel.
  Auto,
  Bitset,    ///< Always the ConjunctSet bitset kernel.
  Reference, ///< Always the sorted-vector reference kernel.
};

/// Tuning knobs for the analysis stage, configured per engine::Session
/// the way SolverOptions configures the solve stage.
struct AnalysisOptions {
  /// Kernel selection policy (see DNFKernel). Both kernels emit the same
  /// formula, so this only moves work, never results.
  DNFKernel Kernel = DNFKernel::Auto;

  /// Auto dispatch takes the bitset kernel when the failed region
  /// exceeds this many (goal + candidate) nodes...
  size_t AutoNodeThreshold = 2048;

  /// ...or when the estimated un-absorbed conjunct count exceeds this.
  /// Estimated as leaf=1, candidate=product of failing subgoals,
  /// goal=sum over contributing candidates, saturating — an upper bound
  /// on the true (absorbed) conjunct count, cheap enough to compute on
  /// every tree.
  size_t AutoConjunctThreshold = 8;

  /// Optional Session-owned scratch; when set, the kernels draw their
  /// staging buffers (failed-descendant marks, atom bit staging) from
  /// SolveScratch::SlotDNF instead of allocating per call. Not owned.
  SolveScratch *Scratch = nullptr;

  /// Cap on the number of conjuncts any intermediate formula may hold.
  /// Adversarial trees can make normalization exponential; instead of
  /// silently exploding, the kernel truncates to the cap's best (smallest)
  /// conjuncts and records the event in DNFStats::Truncations. Truncation
  /// forfeits the minimality guarantee for the affected tree. 0 means
  /// unlimited.
  size_t MaxConjuncts = 65536;

  /// Cooperative execution budget, charged one unit per conjunct merge.
  /// When it stops, normalization returns the formula built so far
  /// (absorbed and capped) and sets DNFStats::Interrupted. Null means
  /// ungoverned. Not owned; must outlive the call.
  ExecutionBudget *Budget = nullptr;
};

/// Work counters for one normalization, surfaced through SessionStats.
struct DNFStats {
  /// 64-bit words read or written by bitset conjunct operations (union,
  /// subset, equality). The bitset kernel's unit of work.
  uint64_t WordsTouched = 0;

  /// Distinct atoms (failed-leaf predicates) in the tree.
  uint64_t Atoms = 0;

  /// Times an intermediate formula was truncated to MaxConjuncts.
  uint64_t Truncations = 0;

  // --- Kernel dispatch (one of the first two increments per computeMCS
  // --- call on a non-empty tree).

  /// Normalizations routed to the reference vector kernel.
  uint64_t DispatchReference = 0;

  /// Normalizations routed to the bitset kernel.
  uint64_t DispatchBitset = 0;

  /// Dispatches decided by an explicit Kernel override rather than the
  /// Auto cost model (subset of the two counters above).
  uint64_t DispatchForced = 0;

  /// True if AnalysisOptions::Budget stopped normalization early; the
  /// returned formula covers only the part of the tree walked so far.
  bool Interrupted = false;

  bool truncated() const { return Truncations != 0; }
};

/// Disjunction / conjunction with absorption pruning (reference kernel).
/// Inputs are assumed absorbed — sorted (size, lex) antichains, which is
/// what every function in this API produces; disjoinDNF exploits that to
/// skip full re-absorption when one side is empty or a single conjunct.
DNFFormula disjoinDNF(DNFFormula A, DNFFormula B);
DNFFormula conjoinDNF(const DNFFormula &A, const DNFFormula &B);

/// Removes duplicate conjuncts and any conjunct that is a strict superset
/// of another (absorption: X + XY = X). Leaves the conjuncts sorted by
/// (size, lexicographic ids).
void absorb(std::vector<std::vector<IGoalId>> &Conjuncts);

/// Bitset-kernel absorption over ConjunctSets: same semantics as absorb()
/// on the corresponding id sets, leaving the conjuncts sorted by
/// (popcount, word-lexicographic). Exposed for differential tests and the
/// hot-path benchmark.
void absorbConjunctSets(std::vector<ConjunctSet> &Conjuncts,
                        DNFStats *Stats = nullptr);

/// Computes the correction-set formula of \p Tree:
///  - a successful goal is TRUE;
///  - a failed goal with no failing descendants is an atom (it must
///    itself be made to hold);
///  - an interior failed goal is the OR over its candidates' AND of
///    failing subgoal formulas.
/// The result's conjuncts are the minimum correction subsets. Routed
/// through the kernel \p Opts selects; \p Stats (optional) receives the
/// work counters.
DNFFormula computeMCS(const InferenceTree &Tree,
                      const AnalysisOptions &Opts = AnalysisOptions(),
                      DNFStats *Stats = nullptr);

/// What the Auto cost model measures: the size of the failed region and
/// an upper bound on the number of conjuncts normalization can produce
/// before absorption.
struct DNFCostEstimate {
  /// Failed (goal + candidate) nodes the formula recursion would visit.
  size_t Nodes = 0;

  /// Saturating estimate of the un-absorbed conjunct count (leaf = 1,
  /// candidate = product of its failing subgoals, goal = sum over
  /// contributing candidates). Saturates at SIZE_MAX / 2.
  size_t Conjuncts = 0;
};

/// Runs the Auto dispatch pre-pass on \p Tree. Exposed so tests and the
/// hot-path benchmark can predict which kernel Auto picks.
DNFCostEstimate estimateDNFCost(const InferenceTree &Tree);

/// The reference vector-kernel normalization, regardless of
/// Opts.Kernel: the oracle differential tests and the hot-path
/// benchmark compare against. Does not count as a dispatch.
DNFFormula computeMCSReference(const InferenceTree &Tree,
                               const AnalysisOptions &Opts = AnalysisOptions(),
                               DNFStats *Stats = nullptr);

/// Counts the number of (goal, candidate) nodes visited by computeMCS —
/// the tree size reported on Figure 12b's x axis.
size_t formulaTreeSize(const InferenceTree &Tree);

} // namespace argus

#endif // ARGUS_ANALYSIS_DNF_H
