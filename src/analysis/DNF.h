//===- analysis/DNF.h - Tree -> DNF -> correction subsets -----*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inertia heuristic's first stage (Section 3.3): treat the AND/OR
/// inference tree as a propositional formula over its failed leaf
/// predicates and normalize it into disjunctive normal form. Each DNF
/// conjunct is a *correction set*: a set of failing predicates that, made
/// true, would let the root proof succeed. Absorption pruning keeps only
/// the minimal ones (the minimum correction subsets, MCS).
///
/// Normalization is worst-case exponential; Figure 12b measures that in
/// practice it stays in single-digit milliseconds at paper-scale trees.
///
/// Two kernels implement normalization:
///
///  - the *bitset kernel* (default): atoms are densely numbered by a
///    pre-pass, conjuncts are ConjunctSet bitsets, and conjunction /
///    absorption run on word-wise OR and subset masks with size-bucketed
///    subsumption. This is the production hot path.
///  - the *reference kernel*: conjuncts are sorted `std::vector<IGoalId>`
///    with pairwise `std::includes` absorption — the original, obviously
///    correct implementation, kept as the differential-testing oracle and
///    the baseline the hot-path benchmark measures against.
///
/// Both produce the same formula: the minimal antichain of correction
/// sets is unique, and both emit it sorted by (size, lexicographic goal
/// ids).
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_ANALYSIS_DNF_H
#define ARGUS_ANALYSIS_DNF_H

#include "analysis/ConjunctSet.h"
#include "extract/InferenceTree.h"
#include "support/Governance.h"

#include <vector>

namespace argus {

/// A DNF formula over failed-leaf goal ids. Each conjunct is a sorted,
/// deduplicated vector of goal ids; the formula is the disjunction of its
/// conjuncts. An empty conjunct list with IsTrue unset means "cannot be
/// fixed by atom assignments" (does not occur for trees produced by the
/// extractor).
struct DNFFormula {
  bool IsTrue = false;
  std::vector<std::vector<IGoalId>> Conjuncts;

  static DNFFormula trueFormula() {
    DNFFormula F;
    F.IsTrue = true;
    return F;
  }
  static DNFFormula falseFormula() { return DNFFormula(); }
  static DNFFormula atom(IGoalId Id);

  bool isFalse() const { return !IsTrue && Conjuncts.empty(); }
};

/// Tuning knobs for the analysis stage, configured per engine::Session
/// the way SolverOptions configures the solve stage.
struct AnalysisOptions {
  /// Normalize through the ConjunctSet bitset kernel. Off means the
  /// reference vector kernel (differential testing / ablations).
  bool UseBitsetKernel = true;

  /// Cap on the number of conjuncts any intermediate formula may hold.
  /// Adversarial trees can make normalization exponential; instead of
  /// silently exploding, the kernel truncates to the cap's best (smallest)
  /// conjuncts and records the event in DNFStats::Truncations. Truncation
  /// forfeits the minimality guarantee for the affected tree. 0 means
  /// unlimited.
  size_t MaxConjuncts = 65536;

  /// Cooperative execution budget, charged one unit per conjunct merge.
  /// When it stops, normalization returns the formula built so far
  /// (absorbed and capped) and sets DNFStats::Interrupted. Null means
  /// ungoverned. Not owned; must outlive the call.
  ExecutionBudget *Budget = nullptr;
};

/// Work counters for one normalization, surfaced through SessionStats.
struct DNFStats {
  /// 64-bit words read or written by bitset conjunct operations (union,
  /// subset, equality). The bitset kernel's unit of work.
  uint64_t WordsTouched = 0;

  /// Distinct atoms (failed-leaf predicates) in the tree.
  uint64_t Atoms = 0;

  /// Times an intermediate formula was truncated to MaxConjuncts.
  uint64_t Truncations = 0;

  /// True if AnalysisOptions::Budget stopped normalization early; the
  /// returned formula covers only the part of the tree walked so far.
  bool Interrupted = false;

  bool truncated() const { return Truncations != 0; }
};

/// Disjunction / conjunction with absorption pruning (reference kernel).
/// Inputs are assumed absorbed — sorted (size, lex) antichains, which is
/// what every function in this API produces; disjoinDNF exploits that to
/// skip full re-absorption when one side is empty or a single conjunct.
DNFFormula disjoinDNF(DNFFormula A, DNFFormula B);
DNFFormula conjoinDNF(const DNFFormula &A, const DNFFormula &B);

/// Removes duplicate conjuncts and any conjunct that is a strict superset
/// of another (absorption: X + XY = X). Leaves the conjuncts sorted by
/// (size, lexicographic ids).
void absorb(std::vector<std::vector<IGoalId>> &Conjuncts);

/// Bitset-kernel absorption over ConjunctSets: same semantics as absorb()
/// on the corresponding id sets, leaving the conjuncts sorted by
/// (popcount, word-lexicographic). Exposed for differential tests and the
/// hot-path benchmark.
void absorbConjunctSets(std::vector<ConjunctSet> &Conjuncts,
                        DNFStats *Stats = nullptr);

/// Computes the correction-set formula of \p Tree:
///  - a successful goal is TRUE;
///  - a failed goal with no failing descendants is an atom (it must
///    itself be made to hold);
///  - an interior failed goal is the OR over its candidates' AND of
///    failing subgoal formulas.
/// The result's conjuncts are the minimum correction subsets. Routed
/// through the kernel \p Opts selects; \p Stats (optional) receives the
/// work counters.
DNFFormula computeMCS(const InferenceTree &Tree,
                      const AnalysisOptions &Opts = AnalysisOptions(),
                      DNFStats *Stats = nullptr);

/// The reference vector-kernel normalization, regardless of
/// Opts.UseBitsetKernel: the oracle differential tests and the hot-path
/// benchmark compare against.
DNFFormula computeMCSReference(const InferenceTree &Tree,
                               const AnalysisOptions &Opts = AnalysisOptions(),
                               DNFStats *Stats = nullptr);

/// Counts the number of (goal, candidate) nodes visited by computeMCS —
/// the tree size reported on Figure 12b's x axis.
size_t formulaTreeSize(const InferenceTree &Tree);

} // namespace argus

#endif // ARGUS_ANALYSIS_DNF_H
