//===- analysis/DNF.h - Tree -> DNF -> correction subsets -----*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inertia heuristic's first stage (Section 3.3): treat the AND/OR
/// inference tree as a propositional formula over its failed leaf
/// predicates and normalize it into disjunctive normal form. Each DNF
/// conjunct is a *correction set*: a set of failing predicates that, made
/// true, would let the root proof succeed. Absorption pruning keeps only
/// the minimal ones (the minimum correction subsets, MCS).
///
/// Normalization is worst-case exponential; Figure 12b measures that in
/// practice it stays in single-digit milliseconds at paper-scale trees.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_ANALYSIS_DNF_H
#define ARGUS_ANALYSIS_DNF_H

#include "extract/InferenceTree.h"

#include <vector>

namespace argus {

/// A DNF formula over failed-leaf goal ids. Each conjunct is a sorted,
/// deduplicated vector of goal ids; the formula is the disjunction of its
/// conjuncts. An empty conjunct list with IsTrue unset means "cannot be
/// fixed by atom assignments" (does not occur for trees produced by the
/// extractor).
struct DNFFormula {
  bool IsTrue = false;
  std::vector<std::vector<IGoalId>> Conjuncts;

  static DNFFormula trueFormula() {
    DNFFormula F;
    F.IsTrue = true;
    return F;
  }
  static DNFFormula falseFormula() { return DNFFormula(); }
  static DNFFormula atom(IGoalId Id);

  bool isFalse() const { return !IsTrue && Conjuncts.empty(); }
};

/// Disjunction / conjunction with absorption pruning.
DNFFormula disjoinDNF(DNFFormula A, DNFFormula B);
DNFFormula conjoinDNF(const DNFFormula &A, const DNFFormula &B);

/// Removes duplicate conjuncts and any conjunct that is a strict superset
/// of another (absorption: X + XY = X).
void absorb(std::vector<std::vector<IGoalId>> &Conjuncts);

/// Computes the correction-set formula of \p Tree:
///  - a successful goal is TRUE;
///  - a failed goal with no failing descendants is an atom (it must
///    itself be made to hold);
///  - an interior failed goal is the OR over its candidates' AND of
///    failing subgoal formulas.
/// The result's conjuncts are the minimum correction subsets.
DNFFormula computeMCS(const InferenceTree &Tree);

/// Counts the number of (goal, candidate) nodes visited by computeMCS —
/// the tree size reported on Figure 12b's x axis.
size_t formulaTreeSize(const InferenceTree &Tree);

} // namespace argus

#endif // ARGUS_ANALYSIS_DNF_H
