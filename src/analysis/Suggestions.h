//===- analysis/Suggestions.h - Fix suggestions ---------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fix suggestions for failed leaf predicates — the "trait debugging
/// beyond localization" direction of the paper's Section 7.1. Given a
/// failed bound like `Timer: SystemParam`, the engine queries the trait's
/// implementors (the same data behind the CtxtLinks popup) and *solves*
/// each wrapper hypothesis: does `ResMut<Timer>: SystemParam` hold? Only
/// hypotheses the solver proves are suggested, which is exactly the
/// manual workflow the paper describes (inspect the implementors of
/// SystemParam, find ResMut<T>, check T: Resource).
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_ANALYSIS_SUGGESTIONS_H
#define ARGUS_ANALYSIS_SUGGESTIONS_H

#include "tlang/Program.h"

#include <string>
#include <vector>

namespace argus {

struct FixSuggestion {
  enum class Kind : uint8_t {
    WrapInType,     ///< Replace `T` by `W<T>`; the solver verified
                    ///< `W<T>: Trait`.
    ImplementTrait, ///< Write `impl Trait for T` (allowed by the orphan
                    ///< rule).
    ChangeType,     ///< A projection mismatch: change the type or the
                    ///< associated binding so the equality holds.
  };

  Kind SuggestionKind;
  /// Human-readable suggestion, e.g. "replace `Timer` with
  /// `ResMut<Timer>` (then `Timer: Resource` must hold — it does)".
  std::string Rendered;
  /// WrapInType: the verified replacement type.
  TypeId SuggestedType;
  /// WrapInType: the impl that makes the replacement work.
  ImplId ViaImpl;
};

/// Computes fix suggestions for one failed leaf predicate. The
/// suggestions are verified: every WrapInType candidate was re-solved
/// against \p Prog and only provable ones survive. Ordered cheapest
/// first (wrapping before implementing).
std::vector<FixSuggestion> suggestFixes(const Program &Prog,
                                        const Predicate &FailedLeaf);

} // namespace argus

#endif // ARGUS_ANALYSIS_SUGGESTIONS_H
