//===- analysis/Inertia.cpp -----------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Inertia.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

using namespace argus;

InertiaResult argus::rankByInertiaWith(const Program &Prog,
                                       const InferenceTree &Tree,
                                       const WeightFn &Weight) {
  return rankByInertiaWith(Prog, Tree, Weight, AnalysisOptions());
}

InertiaResult argus::rankByInertiaWith(const Program &Prog,
                                       const InferenceTree &Tree,
                                       const WeightFn &Weight,
                                       const AnalysisOptions &Opts) {
  InertiaResult Result;
  std::vector<IGoalId> Leaves = Tree.failedLeaves();

  // Classify and weigh every leaf.
  std::unordered_map<uint32_t, size_t> LeafWeight;
  std::unordered_map<uint32_t, GoalKind> LeafKind;
  for (IGoalId Leaf : Leaves) {
    GoalKind Kind = classifyGoal(Prog, Tree.goal(Leaf).Pred);
    LeafWeight[Leaf.value()] = Weight(Kind);
    LeafKind[Leaf.value()] = Kind;
  }

  // Enumerate the minimum correction subsets and score each conjunct.
  DNFFormula Formula = computeMCS(Tree, Opts, &Result.DNF);
  Result.MCS = Formula.Conjuncts;
  Result.ConjunctScores.reserve(Result.MCS.size());
  for (const std::vector<IGoalId> &Conjunct : Result.MCS) {
    size_t Score = 0;
    for (IGoalId Member : Conjunct) {
      auto It = LeafWeight.find(Member.value());
      Score += It != LeafWeight.end()
                   ? It->second
                   : Weight(classifyGoal(Prog, Tree.goal(Member).Pred));
    }
    Result.ConjunctScores.push_back(Score);
  }

  // Each leaf's score: the best conjunct containing its predicate (MCS
  // atoms are canonicalized by predicate, so duplicate leaves share a
  // score); predicates absent from every minimal conjunct sort after all
  // present ones.
  const size_t Absent = std::numeric_limits<size_t>::max();
  std::unordered_map<Predicate, size_t, PredicateHasher> BestScore;
  for (size_t I = 0; I != Result.MCS.size(); ++I)
    for (IGoalId Member : Result.MCS[I]) {
      const Predicate &Pred = Tree.goal(Member).Pred;
      auto [It, Inserted] = BestScore.emplace(Pred, Result.ConjunctScores[I]);
      if (!Inserted)
        It->second = std::min(It->second, Result.ConjunctScores[I]);
    }

  // Stable sort keeps tree order among ties.
  Result.Order = Leaves;
  auto ScoreOf = [&](IGoalId Leaf) {
    auto It = BestScore.find(Tree.goal(Leaf).Pred);
    return It == BestScore.end() ? Absent : It->second;
  };
  std::stable_sort(Result.Order.begin(), Result.Order.end(),
                   [&](IGoalId A, IGoalId B) {
                     size_t SA = ScoreOf(A);
                     size_t SB = ScoreOf(B);
                     if (SA != SB)
                       return SA < SB;
                     // Among equally-scored leaves (or leaves outside
                     // every MCS), lighter individual weight first.
                     return LeafWeight[A.value()] < LeafWeight[B.value()];
                   });

  for (IGoalId Leaf : Result.Order) {
    Result.Kinds.push_back(LeafKind[Leaf.value()]);
    Result.Weights.push_back(LeafWeight[Leaf.value()]);
    size_t Score = ScoreOf(Leaf);
    Result.BestScores.push_back(Score);
  }
  return Result;
}

InertiaResult argus::rankByInertia(const Program &Prog,
                                   const InferenceTree &Tree) {
  return rankByInertia(Prog, Tree, AnalysisOptions());
}

InertiaResult argus::rankByInertia(const Program &Prog,
                                   const InferenceTree &Tree,
                                   const AnalysisOptions &Opts) {
  return rankByInertiaWith(
      Prog, Tree, [](const GoalKind &Kind) { return Kind.weight(); }, Opts);
}

std::vector<IGoalId> argus::rankByDepth(const InferenceTree &Tree) {
  std::vector<IGoalId> Order = Tree.failedLeaves();
  std::stable_sort(Order.begin(), Order.end(), [&](IGoalId A, IGoalId B) {
    return Tree.goal(A).Depth > Tree.goal(B).Depth;
  });
  return Order;
}

std::vector<IGoalId> argus::rankByInferVars(const InferenceTree &Tree) {
  std::vector<IGoalId> Order = Tree.failedLeaves();
  std::stable_sort(Order.begin(), Order.end(), [&](IGoalId A, IGoalId B) {
    return Tree.goal(A).UnresolvedVars < Tree.goal(B).UnresolvedVars;
  });
  return Order;
}

size_t argus::rankOf(const std::vector<IGoalId> &Order, IGoalId Target) {
  for (size_t I = 0; I != Order.size(); ++I)
    if (Order[I] == Target)
      return I;
  return Order.size();
}
