//===- support/Random.h - Deterministic PRNG ------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (xoshiro256**) used by the workload
/// generator and the user-study simulator. Every stochastic experiment in
/// this repository takes an explicit seed so results are reproducible
/// across machines and standard-library versions (std::mt19937
/// distributions are not portable across implementations).
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_SUPPORT_RANDOM_H
#define ARGUS_SUPPORT_RANDOM_H

#include <cassert>
#include <cmath>
#include <cstdint>

namespace argus {

/// xoshiro256** seeded via splitmix64.
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    // splitmix64 expansion of the seed into the full state.
    uint64_t X = Seed;
    for (uint64_t &Word : State) {
      X += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      Word = Z ^ (Z >> 31);
    }
  }

  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "empty range");
    // Rejection sampling to avoid modulo bias.
    uint64_t Threshold = -Bound % Bound;
    for (;;) {
      uint64_t Value = next();
      if (Value >= Threshold)
        return Value % Bound;
    }
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "inverted range");
    return Lo + static_cast<int64_t>(
                    below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability \p P.
  bool chance(double P) { return uniform() < P; }

  /// Standard normal via Box-Muller (one value per call; simple and
  /// deterministic).
  double normal() {
    double U1 = uniform();
    double U2 = uniform();
    // Guard against log(0).
    if (U1 <= 0.0)
      U1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(U1)) * std::cos(6.283185307179586 * U2);
  }

  /// Log-normal draw with the given parameters of the underlying normal.
  double logNormal(double Mu, double Sigma) {
    return std::exp(Mu + Sigma * normal());
  }

  /// Derives an independent child generator; useful for giving each
  /// simulated participant or workload item its own stream.
  Rng fork() { return Rng(next() ^ 0xa0761d6478bd642fULL); }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace argus

#endif // ARGUS_SUPPORT_RANDOM_H
