//===- support/SourceManager.h - Files, spans, locations ------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tracks source files and byte spans so that diagnostics and contextual
/// links (the paper's CtxtLinks principle) can point back at the program
/// text that introduced each trait bound or impl block.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_SUPPORT_SOURCEMANAGER_H
#define ARGUS_SUPPORT_SOURCEMANAGER_H

#include "support/Ids.h"

#include <string>
#include <string_view>
#include <vector>

namespace argus {

struct FileTag {};
using FileId = Id<FileTag>;

/// A half-open byte range [Begin, End) within one file.
struct Span {
  FileId File;
  uint32_t Begin = 0;
  uint32_t End = 0;

  bool isValid() const { return File.isValid(); }
  uint32_t length() const { return End - Begin; }

  friend bool operator==(const Span &A, const Span &B) {
    return A.File == B.File && A.Begin == B.Begin && A.End == B.End;
  }
};

/// A resolved 1-based line/column position.
struct LineColumn {
  uint32_t Line = 0;
  uint32_t Column = 0;

  friend bool operator==(LineColumn A, LineColumn B) {
    return A.Line == B.Line && A.Column == B.Column;
  }
};

/// Owns the text of every source file in a session and resolves spans to
/// human-readable locations.
class SourceManager {
public:
  /// Registers a file and returns its id. \p Name need not be unique.
  FileId addFile(std::string Name, std::string Contents);

  const std::string &fileName(FileId File) const;
  std::string_view fileContents(FileId File) const;
  size_t numFiles() const { return Files.size(); }

  /// Resolves a byte offset to a 1-based line/column pair.
  LineColumn lineColumn(FileId File, uint32_t Offset) const;

  /// Returns the text covered by \p S.
  std::string_view spanText(Span S) const;

  /// Returns the full line (without trailing newline) containing \p Offset,
  /// for diagnostic snippets.
  std::string_view lineText(FileId File, uint32_t Line) const;

  /// Formats a span as "name:line:col" for diagnostics.
  std::string describe(Span S) const;

private:
  struct FileEntry {
    std::string Name;
    std::string Contents;
    /// Byte offsets at which each line starts; LineStarts[0] == 0.
    std::vector<uint32_t> LineStarts;
  };

  const FileEntry &entry(FileId File) const;

  std::vector<FileEntry> Files;
};

} // namespace argus

#endif // ARGUS_SUPPORT_SOURCEMANAGER_H
