//===- support/Arena.h - Bump allocation and per-solve scratch -*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chunked bump allocator plus the per-solve scratch pools the hot path
/// draws from. Small queries used to pay a fixed setup tax on every
/// solve — encoder memo tables, environment encodings, supertrait
/// elaborations, and assorted staging vectors were rebuilt per Solver even
/// when the Session, Program, and cache they depend on had not changed.
/// SolveScratch owns those buffers at Session scope: a Solver borrows
/// them, the capacity (and any tag-validated memo contents) survives into
/// the next solve, and reset() recycles the bump arena without returning
/// memory to the OS.
///
/// Tagging discipline: memoized contents (as opposed to raw capacity) are
/// only reusable while the objects they were computed against are alive
/// and unchanged. Each tagged cache stores the identities it depends on
/// (e.g. the goal cache's symbol registry and the Program); a borrower
/// whose identities differ clears the contents and re-tags.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_SUPPORT_ARENA_H
#define ARGUS_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace argus {

/// A chunked bump allocator. Allocation is a pointer bump within the
/// current chunk; exhausted chunks are kept and recycled by reset(), so a
/// steady-state solve loop performs no heap allocation at all. Memory is
/// only returned to the OS on destruction.
class BumpAllocator {
public:
  explicit BumpAllocator(size_t ChunkBytes = 64 * 1024)
      : ChunkBytes(ChunkBytes) {}

  BumpAllocator(const BumpAllocator &) = delete;
  BumpAllocator &operator=(const BumpAllocator &) = delete;

  /// Allocates \p Bytes with \p Align alignment (must be a power of
  /// two). Requests larger than the chunk size get a dedicated chunk.
  void *allocate(size_t Bytes, size_t Align = alignof(std::max_align_t));

  /// Typed array allocation. The memory is uninitialized; callers
  /// placement-construct. No destructors run — only use for trivially
  /// destructible T.
  template <typename T> T *allocArray(size_t Count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "bump-allocated arrays are never destroyed");
    return static_cast<T *>(allocate(Count * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty, retaining every chunk for reuse.
  void reset();

  // --- Introspection (tests and stats).
  size_t bytesAllocated() const { return Allocated; }
  size_t numChunks() const { return Chunks.size(); }
  uint64_t numResets() const { return Resets; }

private:
  struct Chunk {
    std::unique_ptr<char[]> Data;
    size_t Size = 0;
  };

  void startChunk(size_t MinBytes);

  size_t ChunkBytes;
  std::vector<Chunk> Chunks;
  size_t CurChunk = 0; ///< Index of the chunk being bumped (if any).
  char *Cur = nullptr;
  char *End = nullptr;
  size_t Allocated = 0;
  uint64_t Resets = 0;
};

/// A pool of reusable uint64_t token buffers (cache-key encodings, stack
/// hashes, DNF staging). acquire() hands out a cleared vector whose
/// capacity persists from its previous use; release() returns it.
class U64BufferPool {
public:
  std::vector<uint64_t> acquire() {
    if (Free.empty())
      return {};
    std::vector<uint64_t> Out = std::move(Free.back());
    Free.pop_back();
    Out.clear();
    return Out;
  }

  void release(std::vector<uint64_t> &&Buf) {
    Free.push_back(std::move(Buf));
  }

  size_t numFree() const { return Free.size(); }

private:
  std::vector<std::vector<uint64_t>> Free;
};

/// A cache slot whose contents are valid only for a particular pair of
/// dependency identities (e.g. a goal-cache registry and a Program).
/// Borrowers call retag(); when the identities differ from the last use
/// the slot reports "stale" and the borrower must clear the contents.
struct ScratchTag {
  const void *A = nullptr;
  const void *B = nullptr;

  /// Updates the tag; returns true when the previous contents are still
  /// valid (same identities), false when the borrower must clear.
  bool retag(const void *NewA, const void *NewB) {
    bool Same = A == NewA && B == NewB;
    A = NewA;
    B = NewB;
    return Same;
  }
};

/// Session-owned scratch state, borrowed by each Solver and reset per
/// solve. The type-erased slots hold solver-side memo structures (encode
/// memos, per-environment encodings) whose concrete types live above the
/// support layer; SolveScratch stores them as opaque boxes so the support
/// library does not depend on the solver.
class SolveScratch {
public:
  /// An opaque, owned box. The solver stashes its pooled structures here
  /// between solves.
  struct Box {
    void *Ptr = nullptr;
    void (*Deleter)(void *) = nullptr;
    ScratchTag Tag;

    Box() = default;
    Box(const Box &) = delete;
    Box &operator=(const Box &) = delete;
    ~Box() {
      if (Ptr && Deleter)
        Deleter(Ptr);
    }
  };

  BumpAllocator &arena() { return Arena; }
  U64BufferPool &u64Pool() { return U64Pool; }

  /// Named opaque slots. Fixed small set: growing it is a code change,
  /// which keeps lookups branch-free array indexing.
  enum SlotId : unsigned {
    SlotEncodeMemo = 0, ///< solver TypeEncodeMemo (tag: registry, arena)
    SlotEnvCache = 1,   ///< per-Env encodings (tag: registry, program)
    SlotElabCache = 2,  ///< supertrait elaborations (tag: program)
    SlotDNF = 3,        ///< analysis-side DNF staging buffers
    SlotIndexBuild = 4, ///< solver-index build staging (tag: none; cleared
                        ///< per build, capacity reused across revisions)
    NumSlots = 5,
  };

  Box &slot(SlotId Id) { return Slots[Id]; }

  /// Starts a new solve: recycles the bump arena. Pool and slot contents
  /// survive (their validity is governed by tags, not by solve count).
  void beginSolve() {
    Arena.reset();
    ++Solves;
  }

  uint64_t numSolves() const { return Solves; }

private:
  BumpAllocator Arena;
  U64BufferPool U64Pool;
  Box Slots[NumSlots];
  uint64_t Solves = 0;
};

/// Exclusive checkout of one SolveScratch slot. acquire() takes the boxed
/// object out of the slot (or builds a fresh one), clearing it first when
/// the dependency identities changed; the destructor returns it, tagged
/// with the identities its contents were built against. Emptying the slot
/// during the borrow means an interleaved borrower on the same Session can
/// never observe — or clear — contents this one is reading. T must be
/// default-constructible and provide clear().
template <typename T> class ScratchBorrow {
public:
  void acquire(SolveScratch &Scr, SolveScratch::SlotId Id, const void *TagA,
               const void *TagB) {
    Slot = &Scr.slot(Id);
    A = TagA;
    B = TagB;
    if (Slot->Ptr) {
      Obj.reset(static_cast<T *>(Slot->Ptr));
      Slot->Ptr = nullptr;
      Slot->Deleter = nullptr;
      if (!Slot->Tag.retag(TagA, TagB))
        Obj->clear();
    } else {
      Obj = std::make_unique<T>();
      (void)Slot->Tag.retag(TagA, TagB);
    }
  }

  T *get() { return Obj.get(); }

  ~ScratchBorrow() {
    if (!Obj || !Slot)
      return;
    if (!Slot->Ptr) {
      (void)Slot->Tag.retag(A, B);
      Slot->Ptr = Obj.release();
      Slot->Deleter = [](void *P) { delete static_cast<T *>(P); };
    }
    // Otherwise another borrower returned first; this copy is dropped.
  }

private:
  SolveScratch::Box *Slot = nullptr;
  std::unique_ptr<T> Obj;
  const void *A = nullptr;
  const void *B = nullptr;
};

/// Uids as opaque tag identities (see ScratchTag). Uids are process-
/// unique, so unlike raw addresses they can never alias a destroyed
/// object's successor.
inline const void *tagOfUid(uint64_t Uid) {
  return reinterpret_cast<const void *>(static_cast<uintptr_t>(Uid));
}

} // namespace argus

#endif // ARGUS_SUPPORT_ARENA_H
