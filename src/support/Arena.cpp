//===- support/Arena.cpp --------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

#include <cassert>
#include <cstring>

using namespace argus;

void BumpAllocator::startChunk(size_t MinBytes) {
  // Advance to the next retained chunk that fits; allocate a fresh one
  // (inserted in place, so reset() replays the same walk) if none does.
  size_t Next = Cur ? CurChunk + 1 : 0;
  for (size_t I = Next; I < Chunks.size(); ++I) {
    if (Chunks[I].Size >= MinBytes) {
      std::swap(Chunks[I], Chunks[Next]);
      CurChunk = Next;
      Cur = Chunks[Next].Data.get();
      End = Cur + Chunks[Next].Size;
      return;
    }
  }
  size_t Bytes = MinBytes > ChunkBytes ? MinBytes : ChunkBytes;
  Chunk C;
  C.Data = std::make_unique<char[]>(Bytes);
  C.Size = Bytes;
  Chunks.insert(Chunks.begin() + Next, std::move(C));
  CurChunk = Next;
  Cur = Chunks[Next].Data.get();
  End = Cur + Bytes;
}

void *BumpAllocator::allocate(size_t Bytes, size_t Align) {
  assert((Align & (Align - 1)) == 0 && "alignment must be a power of two");
  if (Bytes == 0)
    Bytes = 1;
  uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
  uintptr_t Aligned = (P + (Align - 1)) & ~(uintptr_t(Align) - 1);
  if (!Cur || Aligned + Bytes > reinterpret_cast<uintptr_t>(End)) {
    startChunk(Bytes + Align);
    P = reinterpret_cast<uintptr_t>(Cur);
    Aligned = (P + (Align - 1)) & ~(uintptr_t(Align) - 1);
  }
  Cur = reinterpret_cast<char *>(Aligned + Bytes);
  Allocated += Bytes;
  return reinterpret_cast<void *>(Aligned);
}

void BumpAllocator::reset() {
  CurChunk = 0;
  Cur = Chunks.empty() ? nullptr : Chunks[0].Data.get();
  End = Chunks.empty() ? nullptr : Cur + Chunks[0].Size;
  Allocated = 0;
  ++Resets;
}
