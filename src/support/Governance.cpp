//===- support/Governance.cpp ---------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Governance.h"

using namespace argus;

const char *argus::stopReasonName(StopReason Reason) {
  switch (Reason) {
  case StopReason::None:
    return "none";
  case StopReason::Cancelled:
    return "cancelled";
  case StopReason::DeadlineExceeded:
    return "deadline_exceeded";
  case StopReason::WorkExceeded:
    return "work_exceeded";
  }
  return "unknown";
}

void ExecutionBudget::armJob(double Seconds) {
  HasJobDeadline = Seconds > 0.0;
  if (HasJobDeadline)
    JobDeadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(Seconds));
}

void ExecutionBudget::armStage(double DeadlineSeconds, uint64_t Ceiling) {
  StageStop = 0;
  StageWork = 0;
  WorkCeiling = Ceiling;
  HasStageDeadline = DeadlineSeconds > 0.0;
  if (HasStageDeadline)
    StageDeadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(DeadlineSeconds));
  // A sticky stop survives re-arming; stage-scoped state does not.
  StopFlag = HardStop.load(std::memory_order_relaxed) != 0;
}

void ExecutionBudget::cancel(StopReason Reason) {
  uint8_t Expected = 0;
  // First reason wins: a watchdog deadline and a user cancel racing is
  // fine either way, but the recorded reason must be stable.
  HardStop.compare_exchange_strong(Expected, static_cast<uint8_t>(Reason),
                                   std::memory_order_relaxed);
}

void ExecutionBudget::forceStageStop(StopReason Reason) {
  StageStop = static_cast<uint8_t>(Reason);
  StopFlag = true;
}

bool ExecutionBudget::poll() {
  if (HardStop.load(std::memory_order_relaxed) != 0) {
    StopFlag = true;
    return true;
  }
  if (!HasJobDeadline && !HasStageDeadline)
    return StopFlag;
  Clock::time_point Now = Clock::now();
  if (HasJobDeadline && Now >= JobDeadline) {
    cancel(StopReason::DeadlineExceeded); // Sticky: poisons later stages.
    StopFlag = true;
    return true;
  }
  if (HasStageDeadline && Now >= StageDeadline) {
    StageStop = static_cast<uint8_t>(StopReason::DeadlineExceeded);
    StopFlag = true;
    return true;
  }
  return StopFlag;
}
