//===- support/FaultInjector.cpp ------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

using namespace argus;

FaultInjector::FaultInjector(std::string_view SiteList, uint64_t Seed,
                             double Probability)
    : Seed(Seed), Probability(Probability) {
  size_t Pos = 0;
  while (Pos < SiteList.size()) {
    size_t Comma = SiteList.find(',', Pos);
    if (Comma == std::string_view::npos)
      Comma = SiteList.size();
    std::string_view Site = SiteList.substr(Pos, Comma - Pos);
    while (!Site.empty() && Site.front() == ' ')
      Site.remove_prefix(1);
    while (!Site.empty() && Site.back() == ' ')
      Site.remove_suffix(1);
    if (!Site.empty()) {
      if (Site == "all")
        MatchAll = true;
      Sites.emplace_back(Site);
    }
    Pos = Comma + 1;
  }
}

bool FaultInjector::matches(std::string_view Site) const {
  if (MatchAll)
    return true;
  for (const std::string &S : Sites)
    if (S == Site)
      return true;
  return false;
}

bool FaultInjector::shouldFail(std::string_view Site, std::string_view Scope) {
  if (Sites.empty() || !matches(Site))
    return false;
  if (Probability < 1.0) {
    // FNV-1a over seed | scope | site: the draw depends only on values,
    // never on evaluation order, so parallel batches stay deterministic.
    uint64_t H = 1469598103934665603ull;
    auto Mix = [&H](const void *Data, size_t Len) {
      const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
      for (size_t I = 0; I < Len; ++I) {
        H ^= Bytes[I];
        H *= 1099511628211ull;
      }
    };
    Mix(&Seed, sizeof(Seed));
    Mix(Scope.data(), Scope.size());
    unsigned char Sep = 0;
    Mix(&Sep, 1);
    Mix(Site.data(), Site.size());
    double Draw =
        static_cast<double>(H >> 11) * (1.0 / 9007199254740992.0); // 2^-53
    if (Draw >= Probability)
      return false;
  }
  ++Fired;
  return true;
}
