//===- support/JSON.h - Streaming JSON writer -----------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer. The Argus plugin spends 40% of its code
/// serializing the Rust type system to JSON for the web UI; here the
/// analogous surface is the export of idealized inference trees and view
/// states for external consumers.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_SUPPORT_JSON_H
#define ARGUS_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace argus {

/// Writes syntactically valid JSON into an owned buffer.
///
/// The writer is a push-style API with explicit begin/end calls. In debug
/// builds it asserts on malformed usage (e.g. a value emitted inside an
/// object without a preceding key).
class JSONWriter {
public:
  explicit JSONWriter(bool Pretty = false) : Pretty(Pretty) {}

  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  /// Emits an object key; must be followed by exactly one value.
  void key(std::string_view Key);

  void value(std::string_view Str);
  void value(const char *Str) { value(std::string_view(Str)); }
  void value(int64_t Int);
  void value(uint64_t Int);
  void value(int Int) { value(static_cast<int64_t>(Int)); }
  void value(unsigned Int) { value(static_cast<uint64_t>(Int)); }
  void value(double Num);
  void value(bool Flag);
  void nullValue();

  /// Convenience: key followed by a scalar value.
  template <typename T> void keyValue(std::string_view Key, T &&Val) {
    key(Key);
    value(std::forward<T>(Val));
  }

  /// Returns the accumulated JSON text. Valid once all containers are
  /// closed.
  const std::string &str() const { return Out; }

  /// Escapes \p Str per RFC 8259 (without surrounding quotes).
  static std::string escape(std::string_view Str);

private:
  enum class ContextKind { Root, Object, Array };
  struct Context {
    ContextKind Kind;
    bool HasElements = false;
    bool AwaitingValue = false; // Object context only: key() was just called.
  };

  void prepareValue();
  void writeIndent();
  void writeEscaped(std::string_view Str);

  std::string Out;
  std::vector<Context> Stack{{ContextKind::Root}};
  bool Pretty;
};

} // namespace argus

#endif // ARGUS_SUPPORT_JSON_H
