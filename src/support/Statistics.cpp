//===- support/Statistics.cpp ---------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace argus;
using namespace argus::stats;

double stats::median(std::vector<double> Values) {
  assert(!Values.empty() && "median of empty sample");
  std::sort(Values.begin(), Values.end());
  size_t N = Values.size();
  if (N % 2 == 1)
    return Values[N / 2];
  return 0.5 * (Values[N / 2 - 1] + Values[N / 2]);
}

double stats::quantile(std::vector<double> Values, double Q) {
  assert(!Values.empty() && "quantile of empty sample");
  assert(Q >= 0.0 && Q <= 1.0 && "quantile out of range");
  std::sort(Values.begin(), Values.end());
  double Position = Q * static_cast<double>(Values.size() - 1);
  size_t Lo = static_cast<size_t>(Position);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Position - static_cast<double>(Lo);
  return Values[Lo] + Frac * (Values[Hi] - Values[Lo]);
}

double stats::mean(const std::vector<double> &Values) {
  assert(!Values.empty() && "mean of empty sample");
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

// Series expansion for P(A, X), valid for X < A + 1 (Numerical Recipes
// "gser").
static double gammaPSeries(double A, double X) {
  double Ap = A;
  double Sum = 1.0 / A;
  double Del = Sum;
  for (int I = 0; I < 500; ++I) {
    Ap += 1.0;
    Del *= X / Ap;
    Sum += Del;
    if (std::fabs(Del) < std::fabs(Sum) * 1e-15)
      break;
  }
  return Sum * std::exp(-X + A * std::log(X) - std::lgamma(A));
}

// Continued fraction for Q(A, X), valid for X >= A + 1 ("gcf").
static double gammaQContinuedFraction(double A, double X) {
  const double Tiny = 1e-300;
  double B = X + 1.0 - A;
  double C = 1.0 / Tiny;
  double D = 1.0 / B;
  double H = D;
  for (int I = 1; I <= 500; ++I) {
    double An = -static_cast<double>(I) * (static_cast<double>(I) - A);
    B += 2.0;
    D = An * D + B;
    if (std::fabs(D) < Tiny)
      D = Tiny;
    C = B + An / C;
    if (std::fabs(C) < Tiny)
      C = Tiny;
    D = 1.0 / D;
    double Del = D * C;
    H *= Del;
    if (std::fabs(Del - 1.0) < 1e-15)
      break;
  }
  return std::exp(-X + A * std::log(X) - std::lgamma(A)) * H;
}

double stats::regularizedGammaP(double A, double X) {
  assert(A > 0.0 && X >= 0.0 && "invalid incomplete gamma arguments");
  if (X == 0.0)
    return 0.0;
  if (X < A + 1.0)
    return gammaPSeries(A, X);
  return 1.0 - gammaQContinuedFraction(A, X);
}

double stats::chiSquareSurvival(double Statistic, double Dof) {
  if (Statistic <= 0.0)
    return 1.0;
  return 1.0 - regularizedGammaP(Dof / 2.0, Statistic / 2.0);
}

TestResult stats::chiSquare2x2(uint64_t A, uint64_t B, uint64_t C,
                               uint64_t D) {
  double Row1 = static_cast<double>(A + B);
  double Row2 = static_cast<double>(C + D);
  double Col1 = static_cast<double>(A + C);
  double Col2 = static_cast<double>(B + D);
  double Total = Row1 + Row2;
  TestResult Result;
  Result.Dof = 1.0;
  if (Total == 0.0 || Row1 == 0.0 || Row2 == 0.0 || Col1 == 0.0 ||
      Col2 == 0.0)
    return Result; // Degenerate table: no evidence against independence.

  double Observed[2][2] = {{static_cast<double>(A), static_cast<double>(B)},
                           {static_cast<double>(C), static_cast<double>(D)}};
  double Rows[2] = {Row1, Row2};
  double Cols[2] = {Col1, Col2};
  double Statistic = 0.0;
  for (int I = 0; I < 2; ++I)
    for (int J = 0; J < 2; ++J) {
      double Expected = Rows[I] * Cols[J] / Total;
      double Diff = Observed[I][J] - Expected;
      Statistic += Diff * Diff / Expected;
    }
  Result.Statistic = Statistic;
  Result.PValue = chiSquareSurvival(Statistic, 1.0);
  return Result;
}

TestResult stats::kruskalWallis(
    const std::vector<std::vector<double>> &Groups) {
  size_t NumGroups = Groups.size();
  assert(NumGroups >= 2 && "Kruskal-Wallis needs at least two groups");

  // Pool all observations, remembering group membership.
  struct Observation {
    double Value;
    size_t Group;
  };
  std::vector<Observation> Pooled;
  for (size_t G = 0; G != NumGroups; ++G)
    for (double V : Groups[G])
      Pooled.push_back({V, G});
  size_t N = Pooled.size();
  assert(N >= 2 && "too few observations");

  std::sort(Pooled.begin(), Pooled.end(),
            [](const Observation &X, const Observation &Y) {
              return X.Value < Y.Value;
            });

  // Midranks for ties, and the tie-correction accumulator.
  std::vector<double> Ranks(N);
  double TieSum = 0.0;
  for (size_t I = 0; I != N;) {
    size_t J = I;
    while (J != N && Pooled[J].Value == Pooled[I].Value)
      ++J;
    double MidRank = 0.5 * (static_cast<double>(I + 1) +
                            static_cast<double>(J));
    for (size_t K = I; K != J; ++K)
      Ranks[K] = MidRank;
    double TieLen = static_cast<double>(J - I);
    TieSum += TieLen * TieLen * TieLen - TieLen;
    I = J;
  }

  std::vector<double> RankSums(NumGroups, 0.0);
  std::vector<size_t> Sizes(NumGroups, 0);
  for (size_t I = 0; I != N; ++I) {
    RankSums[Pooled[I].Group] += Ranks[I];
    ++Sizes[Pooled[I].Group];
  }

  double Nd = static_cast<double>(N);
  double H = 0.0;
  for (size_t G = 0; G != NumGroups; ++G) {
    assert(Sizes[G] > 0 && "empty group");
    H += RankSums[G] * RankSums[G] / static_cast<double>(Sizes[G]);
  }
  H = 12.0 / (Nd * (Nd + 1.0)) * H - 3.0 * (Nd + 1.0);

  double TieCorrection = 1.0 - TieSum / (Nd * Nd * Nd - Nd);
  if (TieCorrection > 0.0)
    H /= TieCorrection;

  TestResult Result;
  Result.Statistic = H;
  Result.Dof = static_cast<double>(NumGroups - 1);
  Result.PValue = chiSquareSurvival(H, Result.Dof);
  return Result;
}

double stats::normalQuantile(double P) {
  assert(P > 0.0 && P < 1.0 && "quantile argument must be in (0,1)");
  // Acklam's rational approximation, relative error < 1.15e-9.
  static const double A[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double B[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double C[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double D[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double PLow = 0.02425;

  if (P < PLow) {
    double Q = std::sqrt(-2.0 * std::log(P));
    return (((((C[0] * Q + C[1]) * Q + C[2]) * Q + C[3]) * Q + C[4]) * Q +
            C[5]) /
           ((((D[0] * Q + D[1]) * Q + D[2]) * Q + D[3]) * Q + 1.0);
  }
  if (P <= 1.0 - PLow) {
    double Q = P - 0.5;
    double R = Q * Q;
    return (((((A[0] * R + A[1]) * R + A[2]) * R + A[3]) * R + A[4]) * R +
            A[5]) *
           Q /
           (((((B[0] * R + B[1]) * R + B[2]) * R + B[3]) * R + B[4]) * R +
            1.0);
  }
  double Q = std::sqrt(-2.0 * std::log(1.0 - P));
  return -(((((C[0] * Q + C[1]) * Q + C[2]) * Q + C[3]) * Q + C[4]) * Q +
           C[5]) /
         ((((D[0] * Q + D[1]) * Q + D[2]) * Q + D[3]) * Q + 1.0);
}

Interval stats::wilsonInterval(uint64_t Successes, uint64_t Trials,
                               double Confidence) {
  assert(Trials > 0 && "Wilson interval of zero trials");
  assert(Successes <= Trials && "more successes than trials");
  double Z = normalQuantile(0.5 + Confidence / 2.0);
  double N = static_cast<double>(Trials);
  double PHat = static_cast<double>(Successes) / N;
  double Z2 = Z * Z;
  double Denominator = 1.0 + Z2 / N;
  double Center = (PHat + Z2 / (2.0 * N)) / Denominator;
  double Margin =
      Z * std::sqrt(PHat * (1.0 - PHat) / N + Z2 / (4.0 * N * N)) /
      Denominator;
  return Interval{std::max(0.0, Center - Margin),
                  std::min(1.0, Center + Margin)};
}

Interval stats::bootstrapMedianInterval(const std::vector<double> &Values,
                                        Rng &Generator, unsigned Resamples,
                                        double Confidence) {
  assert(!Values.empty() && "bootstrap of empty sample");
  std::vector<double> Medians;
  Medians.reserve(Resamples);
  std::vector<double> Sample(Values.size());
  for (unsigned R = 0; R != Resamples; ++R) {
    for (double &Slot : Sample)
      Slot = Values[Generator.below(Values.size())];
    Medians.push_back(median(Sample));
  }
  double Alpha = 1.0 - Confidence;
  return Interval{quantile(Medians, Alpha / 2.0),
                  quantile(Medians, 1.0 - Alpha / 2.0)};
}
