//===- support/Governance.h - Cooperative execution budgets ---*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cooperative cancellation / deadline / work-ceiling primitive that
/// engine::ResourceGovernor threads through the pipeline's hot loops.
/// Living in support keeps the layering clean: solver, analysis, extract
/// and interface can all poll a budget without depending on the engine.
///
/// The contract mirrors rustc's recursion limits plus a cancellation
/// token:
///
///  - one *owner thread* runs the governed work and calls tick() /
///    stopped() / armStage(); ticking is a counter increment plus, every
///    64 ticks, one clock read — cheap enough for per-goal-evaluation
///    granularity;
///  - any *other* thread (the batch watchdog, a UI) may call cancel(),
///    which the owner observes at its next poll. Cancellation and the
///    job deadline are *sticky*: once tripped, every later stage of the
///    same job starts stopped and degrades immediately;
///  - stage deadlines and work ceilings are *stage-scoped*: armStage()
///    re-arms them, so one slow stage yields a partial result without
///    poisoning the stages after it.
///
/// A null ExecutionBudget pointer means "ungoverned"; callers guard with
/// `if (Budget && Budget->tick())`, so the disabled path costs one
/// branch.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_SUPPORT_GOVERNANCE_H
#define ARGUS_SUPPORT_GOVERNANCE_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace argus {

/// Why governed work was stopped mid-flight.
enum class StopReason : uint8_t {
  None = 0,
  Cancelled,        ///< cancel() — watchdog or an interactive front end.
  DeadlineExceeded, ///< A job or stage wall-clock deadline passed.
  WorkExceeded,     ///< The stage's work ceiling was reached.
};

/// Stable lower-case name ("none", "cancelled", ...).
const char *stopReasonName(StopReason Reason);

class ExecutionBudget {
public:
  ExecutionBudget() = default;
  ExecutionBudget(const ExecutionBudget &) = delete;
  ExecutionBudget &operator=(const ExecutionBudget &) = delete;

  /// Arms the sticky whole-job deadline, \p Seconds from now. Non-positive
  /// means unlimited. Called once, when the job starts.
  void armJob(double Seconds);

  /// Starts a new stage: clears any stage-scoped stop, zeroes the stage
  /// work counter, and arms the stage deadline / work ceiling (0 = off).
  /// A sticky (job-level) stop survives re-arming.
  void armStage(double DeadlineSeconds, uint64_t WorkCeiling);

  /// Requests a sticky stop. Safe to call from any thread; the owner
  /// thread observes it at its next tick()/stopped() poll.
  void cancel(StopReason Reason = StopReason::Cancelled);

  /// Forces a stage-scoped stop (fault injection uses this to simulate a
  /// tripped deadline or ceiling without waiting for one). Owner thread
  /// only.
  void forceStageStop(StopReason Reason);

  /// Charges \p Amount units of work and returns true if the owner must
  /// stop. The deadline clock is polled every 64 units; ceilings are
  /// exact.
  bool tick(uint64_t Amount = 1) {
    if (StopFlag)
      return true;
    StageWork += Amount;
    if (WorkCeiling != 0 && StageWork > WorkCeiling) {
      StageStop = static_cast<uint8_t>(StopReason::WorkExceeded);
      StopFlag = true;
      return true;
    }
    if ((StageWork & (PollInterval - 1)) < Amount)
      return poll();
    return false;
  }

  /// True if the owner must stop (polls cancellation and deadlines, so
  /// loops that do not tick can still observe a stop promptly).
  bool stopped() {
    return StopFlag || poll();
  }

  /// The current stop reason: a sticky reason wins over a stage-scoped
  /// one; None if running.
  StopReason reason() const {
    uint8_t Hard = HardStop.load(std::memory_order_relaxed);
    if (Hard != 0)
      return static_cast<StopReason>(Hard);
    return static_cast<StopReason>(StageStop);
  }

  /// The sticky (job-level) reason only; None if only a stage stop (or
  /// nothing) tripped.
  StopReason jobReason() const {
    return static_cast<StopReason>(HardStop.load(std::memory_order_relaxed));
  }

  /// The stage-scoped reason only (cleared by armStage).
  StopReason stageReason() const {
    return static_cast<StopReason>(StageStop);
  }

  /// Work units charged in the current stage.
  uint64_t stageWork() const { return StageWork; }

  /// Work units the stage ceiling can still absorb without tripping
  /// (ceilings trip strictly above the limit); UINT64_MAX when no
  /// ceiling is armed. Lets a caller about to charge a known bulk amount
  /// (e.g. a goal-cache hit standing in for a recorded subtree) refuse
  /// up front instead of diverging from the pay-as-you-go run.
  uint64_t stageWorkRemaining() const {
    if (WorkCeiling == 0)
      return UINT64_MAX;
    return WorkCeiling > StageWork ? WorkCeiling - StageWork : 0;
  }

private:
  bool poll();

  using Clock = std::chrono::steady_clock;
  static constexpr uint64_t PollInterval = 64;

  /// Sticky stop, written by cancel() from any thread.
  std::atomic<uint8_t> HardStop{0};

  // Owner-thread state.
  Clock::time_point JobDeadline{};
  Clock::time_point StageDeadline{};
  bool HasJobDeadline = false;
  bool HasStageDeadline = false;
  uint64_t WorkCeiling = 0;
  uint64_t StageWork = 0;
  uint8_t StageStop = 0; ///< Stage-scoped StopReason.
  bool StopFlag = false; ///< Cached "must stop" for the tick fast path.
};

} // namespace argus

#endif // ARGUS_SUPPORT_GOVERNANCE_H
