//===- support/Statistics.h - Tests used by the evaluation ----*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The statistical machinery used in the paper's Section 5: chi-square
/// tests on 2x2 contingency tables (localization/fix rates), the
/// Kruskal-Wallis rank test (localization/fix times), Wilson binomial
/// proportion confidence intervals (error bars in Figure 11a/11c), and
/// bootstrap confidence intervals for medians (Figure 11b/11d).
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_SUPPORT_STATISTICS_H
#define ARGUS_SUPPORT_STATISTICS_H

#include "support/Random.h"

#include <cstdint>
#include <vector>

namespace argus {
namespace stats {

/// Median of \p Values (averaging the two middle elements for even sizes).
/// Asserts on empty input.
double median(std::vector<double> Values);

/// Linear-interpolation quantile, \p Q in [0, 1].
double quantile(std::vector<double> Values, double Q);

double mean(const std::vector<double> &Values);

/// Regularized lower incomplete gamma P(A, X).
double regularizedGammaP(double A, double X);

/// Upper tail of the chi-square distribution with \p Dof degrees of
/// freedom: P(X^2 >= Statistic).
double chiSquareSurvival(double Statistic, double Dof);

/// Result of a hypothesis test.
struct TestResult {
  double Statistic = 0.0;
  double Dof = 0.0;
  double PValue = 1.0;
};

/// Pearson chi-square test of independence on a 2x2 contingency table
/// laid out as {{A, B}, {C, D}} (rows = condition, columns = outcome).
TestResult chiSquare2x2(uint64_t A, uint64_t B, uint64_t C, uint64_t D);

/// Kruskal-Wallis H test across \p Groups, with tie correction; the
/// p-value uses the chi-square approximation with k-1 dof (as in the
/// paper, which reports chi(1, 100) for its two-group comparisons).
TestResult kruskalWallis(const std::vector<std::vector<double>> &Groups);

/// A two-sided confidence interval.
struct Interval {
  double Lo = 0.0;
  double Hi = 0.0;
};

/// Wilson score interval for \p Successes out of \p Trials at the given
/// confidence level (default 95%).
Interval wilsonInterval(uint64_t Successes, uint64_t Trials,
                        double Confidence = 0.95);

/// Percentile-bootstrap confidence interval for the median, using
/// \p Resamples draws from the deterministic \p Generator.
Interval bootstrapMedianInterval(const std::vector<double> &Values,
                                 Rng &Generator, unsigned Resamples = 2000,
                                 double Confidence = 0.95);

/// Inverse of the standard normal CDF (Acklam's rational approximation);
/// exposed for testing.
double normalQuantile(double P);

} // namespace stats
} // namespace argus

#endif // ARGUS_SUPPORT_STATISTICS_H
