//===- support/Ids.h - Strongly typed index wrappers ----------*- C++ -*-===//
//
// Part of argus-cpp, a reproduction of "An Interactive Debugger for Rust
// Trait Errors" (PLDI 2025). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strongly typed integer identifiers. The compiler pipeline manipulates
/// many parallel index spaces (types, declarations, proof-tree nodes,
/// predicates); wrapping each in its own type prevents accidentally using
/// an index from one space inside another.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_SUPPORT_IDS_H
#define ARGUS_SUPPORT_IDS_H

#include <cstdint>
#include <functional>
#include <limits>

namespace argus {

/// A strongly typed index. \p Tag is an arbitrary marker type that makes
/// two instantiations incompatible with one another.
template <typename Tag> class Id {
public:
  using ValueType = uint32_t;

  constexpr Id() = default;
  constexpr explicit Id(ValueType Value) : Value(Value) {}

  /// The sentinel "no value" id.
  static constexpr Id invalid() {
    return Id(std::numeric_limits<ValueType>::max());
  }

  constexpr bool isValid() const {
    return Value != std::numeric_limits<ValueType>::max();
  }

  constexpr ValueType value() const { return Value; }

  friend constexpr bool operator==(Id A, Id B) { return A.Value == B.Value; }
  friend constexpr bool operator!=(Id A, Id B) { return A.Value != B.Value; }
  friend constexpr bool operator<(Id A, Id B) { return A.Value < B.Value; }

private:
  ValueType Value = std::numeric_limits<ValueType>::max();
};

} // namespace argus

namespace std {
template <typename Tag> struct hash<argus::Id<Tag>> {
  size_t operator()(argus::Id<Tag> Value) const {
    return std::hash<uint32_t>()(Value.value());
  }
};
} // namespace std

#endif // ARGUS_SUPPORT_IDS_H
