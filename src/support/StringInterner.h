//===- support/StringInterner.h - Symbol interning ------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings into small integer \c Symbol handles so that names can
/// be compared and hashed in O(1) throughout the pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_SUPPORT_STRINGINTERNER_H
#define ARGUS_SUPPORT_STRINGINTERNER_H

#include "support/Ids.h"

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace argus {

struct SymbolTag {};
/// An interned string handle. Cheap to copy, compare, and hash.
using Symbol = Id<SymbolTag>;

/// Owns the storage for all interned strings.
///
/// Interners are per-\c Session (not global) so that tests and parallel
/// benchmarks never share mutable state.
class StringInterner {
public:
  /// Interns \p Text, returning the existing symbol if already present.
  Symbol intern(std::string_view Text);

  /// Returns the text for \p Sym. The reference is stable for the lifetime
  /// of the interner.
  const std::string &text(Symbol Sym) const;

  /// Returns the symbol for \p Text if it was interned, Symbol::invalid()
  /// otherwise. Does not intern.
  Symbol lookup(std::string_view Text) const;

  size_t size() const { return Strings.size(); }

private:
  // A deque keeps element addresses stable on growth, so the string_view
  // keys in Map (which point into these strings) never dangle.
  std::deque<std::string> Strings;
  std::unordered_map<std::string_view, Symbol> Map;
};

} // namespace argus

#endif // ARGUS_SUPPORT_STRINGINTERNER_H
