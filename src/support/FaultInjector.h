//===- support/FaultInjector.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Site-name keyed, seeded fault injection for exercising degradation
/// paths under CTest. Each governed site in the engine asks
/// `shouldFail("solve.overflow")` once per job; whether it fires is a
/// pure function of (seed, scope, site), so a batch run injects the same
/// faults into the same jobs regardless of thread count or ordering —
/// the byte-identity gates keep holding with injection on.
///
/// Sites are free-form dotted names. The plan is a comma-separated list
/// ("parse.error,solve.deadline"), with "all" matching every site. With
/// no sites configured, shouldFail is a single bool test — the
/// injector costs nothing in production.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_SUPPORT_FAULTINJECTOR_H
#define ARGUS_SUPPORT_FAULTINJECTOR_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace argus {

class FaultInjector {
public:
  FaultInjector() = default;

  /// \p Sites is a comma-separated site list ("all" = every site).
  /// \p Probability in [0,1]: 1.0 fires on every match (the default);
  /// fractional values fire on the deterministic per-(scope,site) draw.
  FaultInjector(std::string_view Sites, uint64_t Seed,
                double Probability = 1.0);

  /// True if any site is configured.
  bool enabled() const { return !Sites.empty(); }

  /// True if \p Site should fail for \p Scope (typically the job name).
  /// Deterministic; bumps the fired counter when it fires.
  bool shouldFail(std::string_view Site, std::string_view Scope = {});

  /// How many times a fault fired.
  uint64_t fired() const { return Fired; }

private:
  bool matches(std::string_view Site) const;

  std::vector<std::string> Sites;
  uint64_t Seed = 0;
  double Probability = 1.0;
  bool MatchAll = false;
  uint64_t Fired = 0;
};

} // namespace argus

#endif // ARGUS_SUPPORT_FAULTINJECTOR_H
