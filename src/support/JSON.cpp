//===- support/JSON.cpp ---------------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/JSON.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace argus;

void JSONWriter::writeIndent() {
  if (!Pretty)
    return;
  Out.push_back('\n');
  Out.append(2 * (Stack.size() - 1), ' ');
}

void JSONWriter::prepareValue() {
  Context &Ctx = Stack.back();
  switch (Ctx.Kind) {
  case ContextKind::Root:
    assert(!Ctx.HasElements && "multiple top-level JSON values");
    break;
  case ContextKind::Object:
    assert(Ctx.AwaitingValue && "object value emitted without a key");
    Ctx.AwaitingValue = false;
    return; // The comma/indent was handled by key().
  case ContextKind::Array:
    if (Ctx.HasElements)
      Out.push_back(',');
    writeIndent();
    break;
  }
  Ctx.HasElements = true;
}

void JSONWriter::key(std::string_view Key) {
  Context &Ctx = Stack.back();
  assert(Ctx.Kind == ContextKind::Object && "key() outside of an object");
  assert(!Ctx.AwaitingValue && "two keys in a row");
  if (Ctx.HasElements)
    Out.push_back(',');
  writeIndent();
  Out.push_back('"');
  writeEscaped(Key);
  Out.append(Pretty ? "\": " : "\":");
  Ctx.HasElements = true;
  Ctx.AwaitingValue = true;
}

void JSONWriter::beginObject() {
  prepareValue();
  Out.push_back('{');
  Stack.push_back({ContextKind::Object});
}

void JSONWriter::endObject() {
  assert(Stack.back().Kind == ContextKind::Object && "mismatched endObject");
  assert(!Stack.back().AwaitingValue && "dangling key at endObject");
  bool HadElements = Stack.back().HasElements;
  Stack.pop_back();
  if (HadElements)
    writeIndent();
  Out.push_back('}');
}

void JSONWriter::beginArray() {
  prepareValue();
  Out.push_back('[');
  Stack.push_back({ContextKind::Array});
}

void JSONWriter::endArray() {
  assert(Stack.back().Kind == ContextKind::Array && "mismatched endArray");
  bool HadElements = Stack.back().HasElements;
  Stack.pop_back();
  if (HadElements)
    writeIndent();
  Out.push_back(']');
}

void JSONWriter::value(std::string_view Str) {
  prepareValue();
  Out.push_back('"');
  writeEscaped(Str);
  Out.push_back('"');
}

void JSONWriter::value(int64_t Int) {
  prepareValue();
  Out += std::to_string(Int);
}

void JSONWriter::value(uint64_t Int) {
  prepareValue();
  Out += std::to_string(Int);
}

void JSONWriter::value(double Num) {
  prepareValue();
  if (std::isnan(Num) || std::isinf(Num)) {
    // JSON has no NaN/Inf literals; null is the conventional stand-in.
    Out += "null";
    return;
  }
  char Buffer[64];
  snprintf(Buffer, sizeof(Buffer), "%.17g", Num);
  Out += Buffer;
}

void JSONWriter::value(bool Flag) {
  prepareValue();
  Out += Flag ? "true" : "false";
}

void JSONWriter::nullValue() {
  prepareValue();
  Out += "null";
}

void JSONWriter::writeEscaped(std::string_view Str) {
  Out += escape(Str);
}

std::string JSONWriter::escape(std::string_view Str) {
  std::string Result;
  Result.reserve(Str.size());
  for (char C : Str) {
    switch (C) {
    case '"':
      Result += "\\\"";
      break;
    case '\\':
      Result += "\\\\";
      break;
    case '\n':
      Result += "\\n";
      break;
    case '\t':
      Result += "\\t";
      break;
    case '\r':
      Result += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buffer[8];
        snprintf(Buffer, sizeof(Buffer), "\\u%04x", C);
        Result += Buffer;
      } else {
        Result.push_back(C);
      }
    }
  }
  return Result;
}
