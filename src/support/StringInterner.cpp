//===- support/StringInterner.cpp -----------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

#include <cassert>

using namespace argus;

Symbol StringInterner::intern(std::string_view Text) {
  auto It = Map.find(Text);
  if (It != Map.end())
    return It->second;

  Strings.push_back(std::string(Text));
  Symbol Sym(static_cast<uint32_t>(Strings.size() - 1));
  Map.emplace(std::string_view(Strings.back()), Sym);
  return Sym;
}

const std::string &StringInterner::text(Symbol Sym) const {
  assert(Sym.isValid() && Sym.value() < Strings.size() &&
         "invalid symbol for this interner");
  return Strings[Sym.value()];
}

Symbol StringInterner::lookup(std::string_view Text) const {
  auto It = Map.find(Text);
  return It == Map.end() ? Symbol::invalid() : It->second;
}
