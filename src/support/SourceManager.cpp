//===- support/SourceManager.cpp ------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/SourceManager.h"

#include <algorithm>
#include <cassert>

using namespace argus;

FileId SourceManager::addFile(std::string Name, std::string Contents) {
  FileEntry Entry;
  Entry.Name = std::move(Name);
  Entry.Contents = std::move(Contents);
  Entry.LineStarts.push_back(0);
  for (uint32_t I = 0, E = static_cast<uint32_t>(Entry.Contents.size());
       I != E; ++I)
    if (Entry.Contents[I] == '\n')
      Entry.LineStarts.push_back(I + 1);
  Files.push_back(std::move(Entry));
  return FileId(static_cast<uint32_t>(Files.size() - 1));
}

const SourceManager::FileEntry &SourceManager::entry(FileId File) const {
  assert(File.isValid() && File.value() < Files.size() && "unknown file");
  return Files[File.value()];
}

const std::string &SourceManager::fileName(FileId File) const {
  return entry(File).Name;
}

std::string_view SourceManager::fileContents(FileId File) const {
  return entry(File).Contents;
}

LineColumn SourceManager::lineColumn(FileId File, uint32_t Offset) const {
  const FileEntry &Entry = entry(File);
  assert(Offset <= Entry.Contents.size() && "offset out of range");
  auto It = std::upper_bound(Entry.LineStarts.begin(), Entry.LineStarts.end(),
                             Offset);
  uint32_t Line = static_cast<uint32_t>(It - Entry.LineStarts.begin());
  uint32_t LineStart = Entry.LineStarts[Line - 1];
  return LineColumn{Line, Offset - LineStart + 1};
}

std::string_view SourceManager::spanText(Span S) const {
  const FileEntry &Entry = entry(S.File);
  assert(S.End <= Entry.Contents.size() && S.Begin <= S.End &&
         "span out of range");
  return std::string_view(Entry.Contents).substr(S.Begin, S.length());
}

std::string_view SourceManager::lineText(FileId File, uint32_t Line) const {
  const FileEntry &Entry = entry(File);
  assert(Line >= 1 && Line <= Entry.LineStarts.size() && "line out of range");
  uint32_t Start = Entry.LineStarts[Line - 1];
  uint32_t End = Line < Entry.LineStarts.size()
                     ? Entry.LineStarts[Line] - 1
                     : static_cast<uint32_t>(Entry.Contents.size());
  return std::string_view(Entry.Contents).substr(Start, End - Start);
}

std::string SourceManager::describe(Span S) const {
  if (!S.isValid())
    return "<unknown>";
  LineColumn LC = lineColumn(S.File, S.Begin);
  return fileName(S.File) + ":" + std::to_string(LC.Line) + ":" +
         std::to_string(LC.Column);
}
