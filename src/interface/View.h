//===- interface/View.h - The Argus interface model -----------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Argus interface as a UI-toolkit-independent model (Section 3.2).
/// Each design principle appears as an operation:
///
///  - CollapseSeq: rows expand/collapse to progressively unfold the
///    inference tree; nothing is ever omitted outright.
///  - ShortTys: types render shortened by default; hovering surfaces the
///    fully-qualified paths in a minibuffer, and a per-row toggle expands
///    elided arguments in place.
///  - CtxtLinks: rows expose jump-to-definition targets and an
///    implementors popup instead of interleaving that context as text.
///  - TreeData: both a bottom-up view (ranked failed leaves first,
///    unfolding towards the root) and a top-down view (root first,
///    unfolding towards the leaves).
///
/// A real front end (the VS Code extension in the paper; the TUI example
/// here) renders rows() and maps gestures onto these operations.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_INTERFACE_VIEW_H
#define ARGUS_INTERFACE_VIEW_H

#include "analysis/Inertia.h"
#include "extract/InferenceTree.h"
#include "support/Governance.h"
#include "tlang/Printer.h"

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

namespace argus {

enum class ViewKind : uint8_t { BottomUp, TopDown };

/// One visible line of the interface.
struct ViewRow {
  enum class Kind : uint8_t { Goal, Candidate, Header };
  Kind RowKind = Kind::Goal;

  IGoalId Goal;     ///< RowKind == Goal.
  ICandId Cand;     ///< RowKind == Candidate.
  uint32_t Indent = 0;
  std::string Text; ///< Rendered with the current type options.
  EvalResult Result = EvalResult::Maybe; ///< Goal/Candidate rows.
  bool Expandable = false;
  bool Expanded = false;
};

/// A jump-to-definition target (CtxtLinks).
struct DefinitionLink {
  std::string Name; ///< Fully qualified.
  Span Target;
};

class ArgusInterface {
public:
  /// \p Ranking supplies the bottom-up ordering (normally inertia's).
  ArgusInterface(const Program &Prog, const InferenceTree &Tree,
                 std::vector<IGoalId> Ranking);

  /// Convenience: ranks with inertia.
  ArgusInterface(const Program &Prog, const InferenceTree &Tree);

  ViewKind activeView() const { return Active; }
  void setActiveView(ViewKind Kind) { Active = Kind; }

  /// The currently visible rows of the active view.
  std::vector<ViewRow> rows() const;

  // --- CollapseSeq.

  /// Toggles expansion of the goal row at \p RowIndex (no-op for rows
  /// that are not expandable). Returns true if the row state changed.
  bool toggleExpand(size_t RowIndex);
  void expandAll();
  void collapseAll();

  // --- ShortTys.

  /// Toggles in-place expansion of elided type arguments on a row.
  bool toggleTypeEllipsis(size_t RowIndex);

  /// The minibuffer contents when hovering \p RowIndex: the fully
  /// qualified path of every declared name in the row's predicate.
  std::string hoverMinibuffer(size_t RowIndex) const;

  // --- CtxtLinks.

  /// The "list all impls of this trait" popup (Figure 8b), for goal rows
  /// whose predicate is a trait bound.
  std::vector<std::string> implsPopup(size_t RowIndex) const;

  /// Jump targets for each declared name mentioned in the row.
  std::vector<DefinitionLink> definitionLinks(size_t RowIndex) const;

  // --- Search (TreeData: "a developer most often cares about finding
  // --- specific nodes in the tree", Section 3.2.4).

  /// Case-insensitive substring search over rendered goal predicates,
  /// in tree order.
  std::vector<IGoalId> searchGoals(std::string_view Needle) const;

  /// Expands the active view so \p Goal becomes visible: in top-down,
  /// unfolds every ancestor; in bottom-up, unfolds the chain of the
  /// first ranked leaf that passes through it. Returns false if the goal
  /// cannot be revealed (not on any ranked leaf's chain).
  bool revealGoal(IGoalId Goal);

  /// The current row index of \p Goal, or rows().size() if not visible.
  size_t rowOf(IGoalId Goal) const;

  // --- Rendering.

  /// Renders the active view as text (the shape of Figures 6 and 9).
  std::string renderText() const;

  const InferenceTree &tree() const { return *Tree; }

  /// Installs a cooperative budget, charged one unit per row built;
  /// when it stops, rows() returns the rows built so far. Null (the
  /// default) means ungoverned. Not owned; must outlive the interface.
  void setBudget(ExecutionBudget *B) { Budget = B; }

private:
  /// Stable key for fold state: bottom-up rows are per (leaf, goal) so
  /// two chains sharing an ancestor fold independently.
  using FoldKey = uint64_t;
  FoldKey keyFor(size_t LeafIndex, IGoalId Goal) const;

  void buildBottomUpRows(std::vector<ViewRow> &Rows) const;
  void buildTopDownRows(std::vector<ViewRow> &Rows) const;
  void appendGoalTopDown(std::vector<ViewRow> &Rows, IGoalId Goal,
                         uint32_t Indent) const;

  std::string renderGoal(IGoalId Goal) const;
  std::string renderCandidate(ICandId Cand) const;
  TypePrinter printerFor(IGoalId Goal) const;

  /// Declared names (types, traits, fns) mentioned by a goal's predicate.
  std::vector<Symbol> namesInGoal(IGoalId Goal) const;
  void collectNames(TypeId Ty, std::vector<Symbol> &Out) const;

  const Program *Prog;
  const InferenceTree *Tree;
  std::vector<IGoalId> Ranking;
  ViewKind Active = ViewKind::BottomUp;
  ExecutionBudget *Budget = nullptr;

  std::unordered_set<FoldKey> ExpandedBottomUp;
  std::unordered_set<uint32_t> ExpandedTopDown; ///< Goal ids.
  std::unordered_set<uint32_t> TypeExpanded;    ///< Goal ids.

  /// Parallel bookkeeping rebuilt by rows(): which fold key / leaf index
  /// each visible row maps to (mutable cache, rebuilt on demand).
  mutable std::vector<FoldKey> RowKeys;
  mutable std::vector<IGoalId> RowGoals;
};

} // namespace argus

#endif // ARGUS_INTERFACE_VIEW_H
