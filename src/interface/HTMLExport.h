//===- interface/HTMLExport.h - Standalone web export ---------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an inference tree as a self-contained interactive HTML page —
/// the paper's actual medium ("a web-based interface for visualizing
/// extracted trait inferences"). Native <details>/<summary> elements give
/// CollapseSeq folding with zero scripting; title attributes carry the
/// fully-qualified paths ShortTys reveals on hover; the page contains
/// both views, the ranked failure list with inertia categories, the
/// minimum correction subsets, and the rustc diagnostic for contrast.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_INTERFACE_HTMLEXPORT_H
#define ARGUS_INTERFACE_HTMLEXPORT_H

#include "extract/InferenceTree.h"
#include "tlang/Program.h"

#include <string>

namespace argus {

struct HTMLExportOptions {
  std::string Title = "Argus trait debugger";
  /// Include the rustc-style diagnostic section for comparison.
  bool IncludeDiagnostic = true;
  /// Pre-open the first levels of the top-down tree.
  uint32_t OpenDepth = 1;
};

/// Renders \p Tree as a complete HTML document.
std::string treeToHTML(const Program &Prog, const InferenceTree &Tree,
                       HTMLExportOptions Opts = HTMLExportOptions());

/// Escapes &, <, >, and quotes for safe embedding.
std::string escapeHTML(std::string_view Text);

} // namespace argus

#endif // ARGUS_INTERFACE_HTMLEXPORT_H
