//===- interface/ViewJSON.h - View-state serialization --------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes the current state of an ArgusInterface — active view,
/// visible rows with fold state, and per-row contextual data — to JSON.
/// This is the payload a GUI front end (the VS Code webview in the real
/// Argus) would render; the TUI renders the same rows() directly.
///
//===----------------------------------------------------------------------===//

#ifndef ARGUS_INTERFACE_VIEWJSON_H
#define ARGUS_INTERFACE_VIEWJSON_H

#include "interface/View.h"
#include "support/JSON.h"

namespace argus {

/// Writes {"view": "...", "rows": [...]}; each row carries its indent,
/// kind, rendered text, result, fold state, and (for goal rows) the
/// hover paths and definition links.
void writeViewJSON(JSONWriter &Writer, const ArgusInterface &UI,
                   const Program &Prog);

std::string viewToJSON(const ArgusInterface &UI, const Program &Prog,
                       bool Pretty = false);

} // namespace argus

#endif // ARGUS_INTERFACE_VIEWJSON_H
