//===- interface/ViewJSON.cpp ---------------------------------*- C++ -*-===//
//
// Part of argus-cpp. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interface/ViewJSON.h"

using namespace argus;

static const char *rowKindName(ViewRow::Kind Kind) {
  switch (Kind) {
  case ViewRow::Kind::Goal:
    return "goal";
  case ViewRow::Kind::Candidate:
    return "candidate";
  case ViewRow::Kind::Header:
    return "header";
  }
  return "?";
}

void argus::writeViewJSON(JSONWriter &Writer, const ArgusInterface &UI,
                          const Program &Prog) {
  Writer.beginObject();
  Writer.keyValue("view", UI.activeView() == ViewKind::BottomUp
                              ? "bottom-up"
                              : "top-down");
  Writer.key("rows");
  Writer.beginArray();
  std::vector<ViewRow> Rows = UI.rows();
  for (size_t I = 0; I != Rows.size(); ++I) {
    const ViewRow &Row = Rows[I];
    Writer.beginObject();
    Writer.keyValue("kind", rowKindName(Row.RowKind));
    Writer.keyValue("indent", static_cast<uint64_t>(Row.Indent));
    Writer.keyValue("text", Row.Text);
    if (Row.RowKind != ViewRow::Kind::Header) {
      Writer.keyValue("result", evalResultName(Row.Result));
      Writer.keyValue("expandable", Row.Expandable);
      Writer.keyValue("expanded", Row.Expanded);
    }
    if (Row.RowKind == ViewRow::Kind::Goal) {
      Writer.keyValue("hover", UI.hoverMinibuffer(I));
      Writer.key("definitions");
      Writer.beginArray();
      for (const DefinitionLink &Link : UI.definitionLinks(I)) {
        Writer.beginObject();
        Writer.keyValue("name", Link.Name);
        Writer.keyValue("target",
                        Prog.session().sources().describe(Link.Target));
        Writer.endObject();
      }
      Writer.endArray();
    }
    Writer.endObject();
  }
  Writer.endArray();
  Writer.endObject();
}

std::string argus::viewToJSON(const ArgusInterface &UI, const Program &Prog,
                              bool Pretty) {
  JSONWriter Writer(Pretty);
  writeViewJSON(Writer, UI, Prog);
  return Writer.str();
}
